#include "obs/churn_health.h"

namespace hcube::obs {

double ChurnHealth::completion_rate() const {
  if (join_arrivals == 0) return 1.0;
  return static_cast<double>(completed) / static_cast<double>(join_arrivals);
}

void ChurnHealth::export_to(MetricsRegistry& reg) const {
  reg.add(reg.counter(kMetricChurnProbes), probes);
  reg.add(reg.counter(kMetricChurnJoinArrivals), join_arrivals);
  reg.add(reg.counter(kMetricChurnLeaveArrivals), leave_arrivals);
  reg.add(reg.counter(kMetricChurnCompleted), completed);
  reg.add(reg.counter(kMetricChurnAbandoned), abandoned);
  reg.set(reg.gauge(kMetricChurnCompletionRate), completion_rate());
  reg.set(reg.gauge(kMetricChurnRecoveryMs), recovery_ms);
  reg.hist_restore(kMetricChurnBacklog, backlog);
  reg.hist_restore(kMetricChurnJoinLatencyMs, join_latency_ms);
}

}  // namespace hcube::obs
