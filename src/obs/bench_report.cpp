#include "obs/bench_report.h"

#include <fstream>

namespace hcube::obs {

void BenchReport::param(std::string key, std::uint64_t v) {
  params_.emplace_back(std::move(key), json_number(v));
}

void BenchReport::param(std::string key, double v) {
  params_.emplace_back(std::move(key), json_number(v));
}

void BenchReport::param(std::string key, const std::string& v) {
  params_.emplace_back(std::move(key), json_quote(v));
}

std::string BenchReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("bench");
  w.value(name_);
  w.key("params");
  w.begin_object();
  for (const auto& [key, raw] : params_) {
    w.key(key);
    w.raw(raw);
  }
  w.end_object();
  w.key("metrics");
  w.raw(metrics_.to_json());
  w.end_object();
  return w.str();
}

std::string BenchReport::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  out << to_json() << '\n';
  out.close();
  return out.fail() ? "" : path;
}

std::string validate_bench_json(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not an object";
  const JsonValue* schema = doc.get("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->text != BenchReport::kSchema)
    return "missing or unknown bench schema";
  const JsonValue* bench = doc.get("bench");
  if (bench == nullptr || !bench->is_string() || bench->text.empty())
    return "missing bench name";
  const JsonValue* params = doc.get("params");
  if (params == nullptr || !params->is_object())
    return "missing params object";
  const JsonValue* metrics = doc.get("metrics");
  if (metrics == nullptr || !metrics->is_object())
    return "missing metrics object";
  // The embedded registry must itself load: re-render it and run it
  // through the registry loader, which checks names, kinds and buckets.
  std::string error;
  if (!MetricsRegistry::from_json(json_render(*metrics), &error))
    return "bad metrics registry: " + error;
  return "";
}

std::string validate_bench_json(const std::string& text) {
  std::string error;
  const auto doc = json_parse(text, &error);
  if (!doc) return "parse error: " + error;
  return validate_bench_json(*doc);
}

}  // namespace hcube::obs
