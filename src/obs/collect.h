// Export of the simulator's stats into a MetricsRegistry.
//
// The stats structs scattered through the layers (JoinStats,
// ReliabilityStats, ConformanceStats, ChaosResult) each declare their
// canonical registry names with HCUBE_METRIC next to their fields and
// expose a for_each_metric(fn) visitor; collect_counters() pours any of
// them into a registry. collect(Overlay) adds the overlay-level view:
// network totals, per-message-type send counts, membership gauges and the
// per-join histograms (duration, notification cost, copy+wait cost) the
// benchmarks chart.
#pragma once

#include <string>

#include "util/metric.h"
#include "obs/metrics.h"
#include "proto/messages.h"

namespace hcube {
class Overlay;
}  // namespace hcube

namespace hcube::obs {

// Overlay-level canonical names.
HCUBE_METRIC(kMetricNetMessages, "net.messages");
HCUBE_METRIC(kMetricNetBytes, "net.bytes");
HCUBE_METRIC(kMetricOverlayNodes, "overlay.nodes");
HCUBE_METRIC(kMetricOverlayInSystem, "overlay.in_system");
HCUBE_METRIC(kMetricOverlayDeparted, "overlay.departed");
HCUBE_METRIC(kMetricOverlayCrashed, "overlay.crashed");
HCUBE_METRIC(kMetricJoinDurationMs, "join.duration_ms");
HCUBE_METRIC(kMetricJoinNotiSent, "join.noti_sent");
HCUBE_METRIC(kMetricJoinCopyWaitSent, "join.copy_wait_sent");

// Registry name of the network-wide send counter for one message type:
// "msg.sent." + the lowercased type name without its "Msg" suffix
// (kCpRst -> "msg.sent.cprst").
std::string send_metric_name(MessageType t);

// Pours any stats struct with a for_each_metric(fn) visitor emitting
// (canonical name, uint64 value) pairs into `reg` as counters. Counters
// accumulate, so collecting per-node structs sums across nodes.
template <class Stats>
void collect_counters(const Stats& stats, MetricsRegistry& reg) {
  stats.for_each_metric([&reg](const char* name, std::uint64_t value) {
    reg.add_named(name, value);
  });
}

// Exports the whole overlay: network totals (net.*, msg.sent.*),
// conformance rejections, summed per-node lifetime counters (join.*,
// via JoinStats::for_each_metric), membership gauges (overlay.*) and the
// per-join histograms over every join that completed.
void collect(const Overlay& overlay, MetricsRegistry& reg);

}  // namespace hcube::obs
