#include "obs/join_span.h"

#include <utility>

#include "analysis/join_cost.h"
#include "core/overlay.h"
#include "obs/metrics.h"

namespace hcube::obs {

const char* to_string(SpanTerminal t) {
  switch (t) {
    case SpanTerminal::kOpen: return "open";
    case SpanTerminal::kCompleted: return "completed";
    case SpanTerminal::kSuperseded: return "superseded";
    case SpanTerminal::kForcedDeparture: return "forced_departure";
  }
  return "?";
}

void JoinSpanTracer::attach(Overlay& overlay) {
  auto prev_status = std::move(overlay.on_status_change);
  overlay.on_status_change = [this, &overlay, prev_status = std::move(
                                                  prev_status)](
                                 const NodeId& node, NodeStatus from,
                                 NodeStatus to, std::uint32_t gen) {
    if (prev_status) prev_status(node, from, to, gen);
    record_status(overlay.queue().now(), node, to, gen);
  };

  auto prev_message = std::move(overlay.on_message);
  overlay.on_message = [this, prev_message = std::move(prev_message)](
                           const NodeId& from, const NodeId& to,
                           const MessageBody& body) {
    if (prev_message) prev_message(from, to, body);
    record_send(from, type_of(body));
  };

  auto prev_reject = std::move(overlay.on_conformance_reject);
  overlay.on_conformance_reject =
      [this, prev_reject = std::move(prev_reject)](
          const NodeId& node, NodeStatus status, MessageType type) {
        if (prev_reject) prev_reject(node, status, type);
        record_reject(node);
      };
}

JoinSpan* JoinSpanTracer::open_span(const NodeId& node) {
  const auto it = open_.find(node);
  return it == open_.end() ? nullptr : &spans_[it->second];
}

void JoinSpanTracer::close(std::size_t index, SimTime at,
                           SpanTerminal terminal) {
  JoinSpan& span = spans_[index];
  span.t_end = at;
  span.terminal = terminal;
  open_.erase(span.node);
}

void JoinSpanTracer::record_status(SimTime at, const NodeId& node,
                                   NodeStatus to, std::uint32_t gen) {
  const auto it = open_.find(node);

  if (to == NodeStatus::kCopying) {
    if (it != open_.end()) {
      if (spans_[it->second].gen == gen) {
        // Duplicate report of the attempt we are already tracking.
        spans_[it->second].transitions.push_back({at, to});
        return;
      }
      close(it->second, at, SpanTerminal::kSuperseded);
    }
    JoinSpan span;
    span.node = node;
    span.gen = gen;
    span.t_begin = at;
    span.transitions.push_back({at, to});
    open_.emplace(node, spans_.size());
    spans_.push_back(std::move(span));
    return;
  }

  if (it == open_.end()) return;  // seeds, installed members, leavers

  JoinSpan& span = spans_[it->second];
  span.transitions.push_back({at, to});
  switch (to) {
    case NodeStatus::kInSystem:
      close(it->second, at, SpanTerminal::kCompleted);
      break;
    case NodeStatus::kLeaving:
    case NodeStatus::kDeparted:
    case NodeStatus::kCrashed:
      close(it->second, at, SpanTerminal::kForcedDeparture);
      break;
    default:
      break;  // kWaiting / kNotifying: interior transitions
  }
}

void JoinSpanTracer::record_send(const NodeId& from, MessageType type) {
  JoinSpan* span = open_span(from);
  if (span != nullptr) ++span->sent[static_cast<std::size_t>(type)];
}

void JoinSpanTracer::record_reject(const NodeId& node) {
  JoinSpan* span = open_span(node);
  if (span != nullptr) ++span->conformance_rejects;
}

std::vector<const JoinSpan*> JoinSpanTracer::theorem3_violations(
    const IdParams& params) const {
  const std::uint64_t bound = theorem3_bound(params);
  std::vector<const JoinSpan*> out;
  for (const JoinSpan& span : spans_) {
    if (span.terminal != SpanTerminal::kCompleted) continue;
    if (span.copy_plus_wait() > bound) out.push_back(&span);
  }
  return out;
}

double JoinSpanTracer::mean_noti_sent() const {
  std::uint64_t total = 0, completed = 0;
  for (const JoinSpan& span : spans_) {
    if (span.terminal != SpanTerminal::kCompleted) continue;
    total += span.sent_of(MessageType::kJoinNoti);
    ++completed;
  }
  return completed == 0
             ? 0.0
             : static_cast<double>(total) / static_cast<double>(completed);
}

void JoinSpanTracer::summary_to(MetricsRegistry& reg) const {
  const auto opened = reg.counter(kMetricSpanOpened);
  const auto completed = reg.counter(kMetricSpanCompleted);
  const auto superseded = reg.counter(kMetricSpanSuperseded);
  const auto forced = reg.counter(kMetricSpanForcedDepartures);
  const auto rejects = reg.counter(kMetricSpanConformanceRejects);
  const auto duration = reg.histogram(kMetricSpanDurationMs);
  const auto copy_wait = reg.histogram(kMetricSpanCopyWaitSent);
  const auto noti = reg.histogram(kMetricSpanNotiSent);

  for (const JoinSpan& span : spans_) {
    reg.add(opened);
    reg.add(rejects, span.conformance_rejects);
    switch (span.terminal) {
      case SpanTerminal::kOpen: break;
      case SpanTerminal::kCompleted:
        reg.add(completed);
        reg.observe(duration, span.duration_ms());
        reg.observe(copy_wait, static_cast<double>(span.copy_plus_wait()));
        reg.observe(noti,
                    static_cast<double>(span.sent_of(MessageType::kJoinNoti)));
        break;
      case SpanTerminal::kSuperseded: reg.add(superseded); break;
      case SpanTerminal::kForcedDeparture: reg.add(forced); break;
    }
  }
}

}  // namespace hcube::obs
