#include "obs/collect.h"

#include <cstddef>

#include "core/node.h"
#include "core/overlay.h"

namespace hcube::obs {

std::string send_metric_name(MessageType t) {
  std::string name = "msg.sent.";
  for (const char* p = type_name(t); *p != '\0'; ++p) {
    const char c = *p;
    name.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                        : c);
  }
  // Strip the "msg" suffix every type name carries ("CpRstMsg" -> "cprst").
  name.resize(name.size() - 3);
  return name;
}

void collect(const Overlay& overlay, MetricsRegistry& reg) {
  const Overlay::Totals& totals = overlay.totals();
  reg.add_named(kMetricNetMessages, totals.messages);
  reg.add_named(kMetricNetBytes, totals.bytes);
  for (std::size_t t = 0; t < kNumMessageTypes; ++t) {
    if (totals.sent[t] == 0) continue;
    reg.add_named(send_metric_name(static_cast<MessageType>(t)),
                  totals.sent[t]);
  }
  collect_counters(overlay.conformance(), reg);

  const auto duration = reg.histogram(kMetricJoinDurationMs);
  const auto noti = reg.histogram(kMetricJoinNotiSent);
  const auto copy_wait = reg.histogram(kMetricJoinCopyWaitSent);

  std::uint64_t in_system = 0, departed = 0, crashed = 0;
  for (const auto& node : overlay.nodes()) {
    if (node->is_s_node()) ++in_system;
    if (node->has_departed()) ++departed;
    if (node->is_crashed()) ++crashed;

    const JoinStats& stats = node->join_stats();
    collect_counters(stats, reg);
    if (stats.t_begin >= 0.0 && stats.t_end >= 0.0) {
      reg.observe(duration, stats.t_end - stats.t_begin);
      reg.observe(noti,
                  static_cast<double>(stats.sent_of(MessageType::kJoinNoti)));
      reg.observe(copy_wait, static_cast<double>(stats.copy_plus_wait()));
    }
  }

  reg.set(reg.gauge(kMetricOverlayNodes),
          static_cast<double>(overlay.size()));
  reg.set(reg.gauge(kMetricOverlayInSystem), static_cast<double>(in_system));
  reg.set(reg.gauge(kMetricOverlayDeparted), static_cast<double>(departed));
  reg.set(reg.gauge(kMetricOverlayCrashed), static_cast<double>(crashed));
}

}  // namespace hcube::obs
