// The metrics registry: named counters, gauges and log-bucketed histograms
// with merge, quantile estimation and a stable JSON export schema.
//
// Design rules:
//   * Zero allocation on the hot path. Registration (counter()/gauge()/
//     histogram()) interns the name once and returns a dense MetricId;
//     add()/set()/observe() are then a vector index plus an integer or
//     float update — no hashing, no allocation. The *_named conveniences
//     exist for cold paths (collection, tooling) only.
//   * Log-bucketed histograms. Bucket 0 holds [0, 1), bucket i >= 1 holds
//     [2^(i-1), 2^i). Power-of-two edges make merge a bucket-wise add —
//     trivially associative — and give quantile estimates that are exact to
//     within one octave, which is what latency trajectories need.
//   * Stable export. to_json() sorts by name and emits the versioned
//     "hcube.metrics.v1" schema; from_json() inverts it exactly, so
//     registries round-trip and BENCH_*.json artifacts diff cleanly.
//
// Registries are per-scope: each node's stats structs export into one via
// obs/collect.h, the Overlay aggregate is the merge of all of them, and
// benches build their own. A registry is externally synchronized — exactly
// one owner (today the single-threaded simulator, tomorrow one shard)
// touches it at a time. That contract is machine-checked: every member is
// HCUBE_GUARDED_BY(owner_) and every method asserts the ownership
// capability, so a new accessor that forgets the assertion fails the CI
// thread-safety job (util/thread_safety.h, DESIGN.md §15). Cross-shard
// aggregation stays a merge of per-shard registries, never shared writes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/metric.h"
#include "util/thread_safety.h"

namespace hcube::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
const char* to_string(MetricKind k);

// Histogram over non-negative values with power-of-two bucket edges.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  // Bucket 0 covers [0, 1); bucket i >= 1 covers [2^(i-1), 2^i); the last
  // bucket absorbs everything beyond.
  static std::size_t bucket_of(double v);
  static double bucket_lo(std::size_t i);
  static double bucket_hi(std::size_t i);

  void observe(double v);
  void merge_from(const LogHistogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  // Upper edge of the bucket holding the q-quantile (clamped to the
  // observed max): exact to within one octave, and monotone in q.
  double quantile(double q) const;

  // Deserialization (from_json): add `count` observations into bucket `i`
  // and restore the exact moments alongside.
  void restore_bucket(std::size_t i, std::uint64_t count);
  void restore_moments(double sum, double mn, double mx);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  using Id = std::uint32_t;
  static constexpr const char* kSchema = "hcube.metrics.v1";

  // Register-or-look-up by name. The name must match ^[a-z0-9_.]+$ and the
  // kind must agree with any previous registration (checked).
  Id counter(std::string_view name) { return intern(name, MetricKind::kCounter); }
  Id gauge(std::string_view name) { return intern(name, MetricKind::kGauge); }
  Id histogram(std::string_view name) {
    return intern(name, MetricKind::kHistogram);
  }

  // ---- hot path: plain array updates, no allocation, no hashing ----
  // (assert_held() is a compile-time ownership claim, a no-op at runtime.)
  void add(Id id, std::uint64_t delta = 1) {
    owner_.assert_held();
    entries_[id].count += delta;
  }
  void set(Id id, double v) {
    owner_.assert_held();
    entries_[id].gauge = v;
  }
  void observe(Id id, double v) {
    owner_.assert_held();
    entries_[id].hist.observe(v);
  }

  // ---- cold-path conveniences (collection, tooling) ----
  void add_named(std::string_view name, std::uint64_t delta = 1) {
    add(counter(name), delta);
  }
  void set_named(std::string_view name, double v) { set(gauge(name), v); }
  void observe_named(std::string_view name, double v) {
    observe(histogram(name), v);
  }

  std::size_t size() const {
    owner_.assert_held();
    return entries_.size();
  }
  bool contains(std::string_view name) const;
  std::optional<MetricKind> kind_of(std::string_view name) const;
  // 0 / 0.0 / nullptr when the name is not registered (or another kind).
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  const LogHistogram* histogram_named(std::string_view name) const;

  // Counters and histograms accumulate; gauges take the other's value.
  // Names absent here are registered.
  void merge_from(const MetricsRegistry& other);
  // Zeroes every value, keeps registrations (and Ids) intact.
  void reset();

  template <class Fn>  // fn(name, kind, entry accessors) — export order
  void for_each(Fn&& fn) const {
    owner_.assert_held();
    for (const Entry& e : entries_) fn(e.name, e.kind, e.count, e.gauge, e.hist);
  }

  // Versioned, deterministic (name-sorted, compact) export.
  std::string to_json() const;
  static std::optional<MetricsRegistry> from_json(const std::string& text,
                                                  std::string* error = nullptr);

  // Deserialization helper: merges a rebuilt histogram into `name`.
  void hist_restore(std::string_view name, const LogHistogram& h);

 private:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t count = 0;  // kCounter
    double gauge = 0.0;       // kGauge
    LogHistogram hist;        // kHistogram
  };

  Id intern(std::string_view name, MetricKind kind);
  const Entry* lookup(std::string_view name) const;

  ExternallySynchronized owner_;  // single-owner capability (see header)
  std::vector<Entry> entries_ HCUBE_GUARDED_BY(owner_);
  std::unordered_map<std::string, Id> index_ HCUBE_GUARDED_BY(owner_);
};

}  // namespace hcube::obs
