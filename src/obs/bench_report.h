// The BENCH_*.json artifact schema ("hcube.bench.v1").
//
// Every benchmark builds one BenchReport: the bench name, its parameters
// (small scalars — sizes, seeds, flags), and a MetricsRegistry of results.
// write() emits BENCH_<name>.json next to the working directory, one
// compact line, deterministic (params in insertion order, metrics sorted by
// name inside the registry's own schema). tools/hcstat and the CI
// bench-trend job parse and validate these with validate_bench_json().
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace hcube::obs {

class BenchReport {
 public:
  static constexpr const char* kSchema = "hcube.bench.v1";

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Parameters recorded under "params", in insertion order.
  void param(std::string key, std::uint64_t v);
  void param(std::string key, double v);
  void param(std::string key, const std::string& v);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  std::string to_json() const;

  // Writes BENCH_<name>.json into `dir` (default: the working directory).
  // Returns the path written, or an empty string on I/O failure.
  std::string write(const std::string& dir = ".") const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;  // key, raw json
  MetricsRegistry metrics_;
};

// Validates a parsed BENCH_*.json document against the hcube.bench.v1
// schema (including its embedded hcube.metrics.v1 registry). Returns an
// empty string when valid, else a one-line reason.
std::string validate_bench_json(const JsonValue& doc);

// Convenience: parse + validate in one step.
std::string validate_bench_json(const std::string& text);

}  // namespace hcube::obs
