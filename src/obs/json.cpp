#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hcube::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  // Integral values print without a fractional part (and exactly, while
  // they fit); everything else with enough digits to reparse bit for bit.
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

void JsonWriter::begin_object() {
  separate();
  out_.push_back('{');
  first_.push_back(true);
}

void JsonWriter::end_object() {
  out_.push_back('}');
  first_.pop_back();
}

void JsonWriter::begin_array() {
  separate();
  out_.push_back('[');
  first_.push_back(true);
}

void JsonWriter::end_array() {
  out_.push_back(']');
  first_.pop_back();
}

void JsonWriter::key(std::string_view k) {
  separate();
  out_ += json_quote(k);
  out_.push_back(':');
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separate();
  out_ += json_quote(s);
}

void JsonWriter::value(double v) {
  separate();
  out_ += json_number(v);
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += json_number(v);
}

void JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
}

void JsonWriter::raw(std::string_view json) {
  separate();
  out_ += json;
}

const JsonValue* JsonValue::get(std::string_view k) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members)
    if (name == k) return &value;
  return nullptr;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty())
      error = why + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            // Sub-0x80 only; metric names and schema strings are ASCII.
            out.push_back(static_cast<char>(code & 0x7f));
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& v) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        std::string k;
        skip_ws();
        if (!parse_string(k)) return false;
        if (!expect(':')) return false;
        JsonValue member;
        if (!parse_value(member)) return false;
        v.members.emplace_back(std::move(k), std::move(member));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return expect('}');
      }
    }
    if (c == '[') {
      ++pos;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        JsonValue item;
        if (!parse_value(item)) return false;
        v.items.push_back(std::move(item));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return expect(']');
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      return parse_string(v.text);
    }
    if (text.compare(pos, 4, "true") == 0) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      v.kind = JsonValue::Kind::kNull;
      pos += 4;
      return true;
    }
    // Number: keep the raw token so integers round-trip exactly.
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' ||
            text[pos] == '+'))
      ++pos;
    if (pos == start) return fail("unexpected character");
    v.kind = JsonValue::Kind::kNumber;
    v.text = std::string(text.substr(start, pos - start));
    v.number = std::strtod(v.text.c_str(), nullptr);
    return true;
  }
};

}  // namespace

std::string json_render(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber: return v.text;
    case JsonValue::Kind::kString: return json_quote(v.text);
    case JsonValue::Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += json_render(v.items[i]);
      }
      out.push_back(']');
      return out;
    }
    case JsonValue::Kind::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += json_quote(v.members[i].first);
        out.push_back(':');
        out += json_render(v.members[i].second);
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  Parser p{text, 0, {}};
  JsonValue v;
  if (!p.parse_value(v)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr)
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return v;
}

}  // namespace hcube::obs
