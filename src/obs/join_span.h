// Join-lifecycle trace spans.
//
// One span per join attempt, keyed by (node, attempt generation): opened
// when the node (re-)enters kCopying, carried through the paper's status
// trajectory copying -> waiting -> notifying -> in_system, closed by exactly
// one terminal event. Each span records its status transitions with
// simulated timestamps (no wall clock anywhere), per-message-type send
// counts, and conformance rejections charged to the attempt — which is what
// lets the theorem-bound tests assert per-attempt message budgets (Theorem
// 3's #CpRstMsg + #JoinWaitMsg <= d+1) instead of per-node lifetime totals.
//
// Terminals:
//   kCompleted        the attempt reached kInSystem;
//   kSuperseded       a new attempt generation opened before this one
//                     finished (join-stall watchdog restart, crash rejoin);
//   kForcedDeparture  the node crashed, left, or was forced out mid-join.
//
// The tracer subscribes to Overlay hooks via attach() (chaining previously
// installed observers, like MessageTrace). The record_* methods are public
// so tests can drive synthetic trajectories — e.g. a seeded fault that
// sends one CpRstMsg too many — without standing up an overlay.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ids/node_id.h"
#include "util/metric.h"
#include "proto/conformance.h"
#include "proto/messages.h"
#include "sim/event_queue.h"

namespace hcube {
class Overlay;
}  // namespace hcube

namespace hcube::obs {

class MetricsRegistry;

// Canonical registry names for the span summary (summary_to()).
HCUBE_METRIC(kMetricSpanOpened, "span.opened");
HCUBE_METRIC(kMetricSpanCompleted, "span.completed");
HCUBE_METRIC(kMetricSpanSuperseded, "span.superseded");
HCUBE_METRIC(kMetricSpanForcedDepartures, "span.forced_departures");
HCUBE_METRIC(kMetricSpanConformanceRejects, "span.conformance_rejects");
HCUBE_METRIC(kMetricSpanDurationMs, "span.duration_ms");
HCUBE_METRIC(kMetricSpanCopyWaitSent, "span.copy_wait_sent");
HCUBE_METRIC(kMetricSpanNotiSent, "span.noti_sent");

enum class SpanTerminal : std::uint8_t {
  kOpen,
  kCompleted,
  kSuperseded,
  kForcedDeparture,
};
const char* to_string(SpanTerminal t);

struct JoinSpan {
  struct Transition {
    SimTime at = -1.0;
    NodeStatus to = NodeStatus::kCopying;
  };

  NodeId node;
  std::uint32_t gen = 0;
  SimTime t_begin = -1.0;
  SimTime t_end = -1.0;  // set by the terminal event
  SpanTerminal terminal = SpanTerminal::kOpen;
  std::array<std::uint64_t, kNumMessageTypes> sent{};
  std::uint64_t conformance_rejects = 0;
  std::vector<Transition> transitions;  // includes the opening kCopying

  std::uint64_t sent_of(MessageType t) const {
    return sent[static_cast<std::size_t>(t)];
  }
  // The Theorem 3 quantity, per attempt.
  std::uint64_t copy_plus_wait() const {
    return sent_of(MessageType::kCpRst) + sent_of(MessageType::kJoinWait);
  }
  // Simulated milliseconds from kCopying to the terminal; -1 while open.
  SimTime duration_ms() const {
    return terminal == SpanTerminal::kOpen ? -1.0 : t_end - t_begin;
  }
};

class JoinSpanTracer {
 public:
  // Subscribes to the overlay's on_status_change, on_message and
  // on_conformance_reject hooks, chaining any previously installed
  // observers (they keep firing first). The tracer must outlive the
  // overlay's use of the hooks.
  void attach(Overlay& overlay);

  // ---- manual drive (used by attach's closures and by tests) ----
  void record_status(SimTime at, const NodeId& node, NodeStatus to,
                     std::uint32_t gen);
  void record_send(const NodeId& from, MessageType type);
  void record_reject(const NodeId& node);

  // All spans, open and closed, in opening order.
  const std::vector<JoinSpan>& spans() const { return spans_; }
  std::size_t open_count() const { return open_.size(); }

  // Completed spans whose copy_plus_wait() exceeds Theorem 3's d+1 bound.
  std::vector<const JoinSpan*> theorem3_violations(
      const IdParams& params) const;

  // Mean JoinNotiMsg count across completed spans (the Theorem 4/5
  // quantity); 0 when nothing completed.
  double mean_noti_sent() const;

  // Exports span.* counters and histograms (duration, per-attempt message
  // budgets) into a registry.
  void summary_to(MetricsRegistry& reg) const;

 private:
  JoinSpan* open_span(const NodeId& node);
  void close(std::size_t index, SimTime at, SpanTerminal terminal);

  std::vector<JoinSpan> spans_;
  std::unordered_map<NodeId, std::size_t, NodeIdHash> open_;
};

}  // namespace hcube::obs
