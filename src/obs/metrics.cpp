#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "obs/json.h"
#include "util/check.h"

namespace hcube::obs {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// LogHistogram

std::size_t LogHistogram::bucket_of(double v) {
  if (!(v >= 1.0)) return 0;  // [0,1), negatives and NaN
  if (v >= 9.223372036854776e18) return kBuckets - 1;  // beyond 2^63
  const auto u = static_cast<std::uint64_t>(v);
  const auto i = static_cast<std::size_t>(std::bit_width(u));
  return std::min(i, kBuckets - 1);
}

double LogHistogram::bucket_lo(std::size_t i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

double LogHistogram::bucket_hi(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i));
}

void LogHistogram::observe(double v) {
  if (std::isnan(v)) return;
  if (v < 0.0) v = 0.0;
  ++buckets_[bucket_of(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void LogHistogram::merge_from(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::reset() { *this = LogHistogram{}; }

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum >= rank) return std::min(bucket_hi(i), max_);
  }
  return max_;
}

void LogHistogram::restore_bucket(std::size_t i, std::uint64_t count) {
  HCUBE_CHECK_MSG(i < kBuckets, "histogram bucket index out of range");
  buckets_[i] += count;
  count_ += count;
}

void LogHistogram::restore_moments(double sum, double mn, double mx) {
  sum_ = sum;
  min_ = mn;
  max_ = mx;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::Id MetricsRegistry::intern(std::string_view name,
                                            MetricKind kind) {
  owner_.assert_held();
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    HCUBE_CHECK_MSG(entries_[it->second].kind == kind,
                    "metric re-registered under a different kind");
    return it->second;
  }
  HCUBE_CHECK_MSG(is_valid_metric_name(name),
                  "metric name must match ^[a-z0-9_.]+$");
  const Id id = static_cast<Id>(entries_.size());
  Entry e;
  e.name = std::string(name);
  e.kind = kind;
  entries_.push_back(std::move(e));
  index_.emplace(entries_.back().name, id);
  return id;
}

const MetricsRegistry::Entry* MetricsRegistry::lookup(
    std::string_view name) const {
  owner_.assert_held();
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : &entries_[it->second];
}

bool MetricsRegistry::contains(std::string_view name) const {
  return lookup(name) != nullptr;
}

std::optional<MetricKind> MetricsRegistry::kind_of(
    std::string_view name) const {
  const Entry* e = lookup(name);
  if (e == nullptr) return std::nullopt;
  return e->kind;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Entry* e = lookup(name);
  return e != nullptr && e->kind == MetricKind::kCounter ? e->count : 0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const Entry* e = lookup(name);
  return e != nullptr && e->kind == MetricKind::kGauge ? e->gauge : 0.0;
}

const LogHistogram* MetricsRegistry::histogram_named(
    std::string_view name) const {
  const Entry* e = lookup(name);
  return e != nullptr && e->kind == MetricKind::kHistogram ? &e->hist
                                                           : nullptr;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  owner_.assert_held();
  other.owner_.assert_held();
  for (const Entry& e : other.entries_) {
    const Id id = intern(e.name, e.kind);
    switch (e.kind) {
      case MetricKind::kCounter: entries_[id].count += e.count; break;
      case MetricKind::kGauge: entries_[id].gauge = e.gauge; break;
      case MetricKind::kHistogram: entries_[id].hist.merge_from(e.hist); break;
    }
  }
}

void MetricsRegistry::reset() {
  owner_.assert_held();
  for (Entry& e : entries_) {
    e.count = 0;
    e.gauge = 0.0;
    e.hist.reset();
  }
}

std::string MetricsRegistry::to_json() const {
  owner_.assert_held();
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });

  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("metrics");
  w.begin_array();
  for (const Entry* e : sorted) {
    w.begin_object();
    w.key("name");
    w.value(e->name);
    w.key("kind");
    w.value(to_string(e->kind));
    switch (e->kind) {
      case MetricKind::kCounter:
        w.key("value");
        w.value(e->count);
        break;
      case MetricKind::kGauge:
        w.key("value");
        w.value(e->gauge);
        break;
      case MetricKind::kHistogram: {
        w.key("count");
        w.value(e->hist.count());
        w.key("sum");
        w.value(e->hist.sum());
        w.key("min");
        w.value(e->hist.min());
        w.key("max");
        w.value(e->hist.max());
        w.key("buckets");
        w.begin_array();
        for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
          if (e->hist.bucket(i) == 0) continue;
          w.begin_array();
          w.value(static_cast<std::uint64_t>(i));
          w.value(e->hist.bucket(i));
          w.end_array();
        }
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {

std::optional<MetricKind> kind_from(std::string_view s) {
  if (s == "counter") return MetricKind::kCounter;
  if (s == "gauge") return MetricKind::kGauge;
  if (s == "histogram") return MetricKind::kHistogram;
  return std::nullopt;
}

bool set_error(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

bool load_metric(MetricsRegistry& reg, const JsonValue& m,
                 std::string* error) {
  const JsonValue* name = m.get("name");
  const JsonValue* kind = m.get("kind");
  if (name == nullptr || !name->is_string() || kind == nullptr ||
      !kind->is_string())
    return set_error(error, "metric entry missing name/kind");
  if (!is_valid_metric_name(name->text))
    return set_error(error, "invalid metric name: " + name->text);
  const auto k = kind_from(kind->text);
  if (!k) return set_error(error, "unknown metric kind: " + kind->text);
  switch (*k) {
    case MetricKind::kCounter: {
      const JsonValue* v = m.get("value");
      if (v == nullptr || !v->is_number())
        return set_error(error, "counter without numeric value");
      reg.add(reg.counter(name->text),
              std::strtoull(v->text.c_str(), nullptr, 10));
      return true;
    }
    case MetricKind::kGauge: {
      const JsonValue* v = m.get("value");
      if (v == nullptr || !v->is_number())
        return set_error(error, "gauge without numeric value");
      reg.set(reg.gauge(name->text), v->number);
      return true;
    }
    case MetricKind::kHistogram: {
      const JsonValue* sum = m.get("sum");
      const JsonValue* mn = m.get("min");
      const JsonValue* mx = m.get("max");
      const JsonValue* buckets = m.get("buckets");
      if (sum == nullptr || !sum->is_number() || mn == nullptr ||
          !mn->is_number() || mx == nullptr || !mx->is_number() ||
          buckets == nullptr || !buckets->is_array())
        return set_error(error, "histogram missing sum/min/max/buckets");
      LogHistogram h;
      for (const JsonValue& pair : buckets->items) {
        if (!pair.is_array() || pair.items.size() != 2 ||
            !pair.items[0].is_number() || !pair.items[1].is_number())
          return set_error(error, "histogram bucket must be [index, count]");
        const auto idx =
            std::strtoull(pair.items[0].text.c_str(), nullptr, 10);
        if (idx >= LogHistogram::kBuckets)
          return set_error(error, "histogram bucket index out of range");
        h.restore_bucket(static_cast<std::size_t>(idx),
                         std::strtoull(pair.items[1].text.c_str(), nullptr,
                                       10));
      }
      h.restore_moments(sum->number, mn->number, mx->number);
      reg.hist_restore(name->text, h);
      return true;
    }
  }
  return set_error(error, "unreachable metric kind");
}

}  // namespace

std::optional<MetricsRegistry> MetricsRegistry::from_json(
    const std::string& text, std::string* error) {
  const auto doc = json_parse(text, error);
  if (!doc) return std::nullopt;
  const JsonValue* schema = doc->get("schema");
  if (schema == nullptr || !schema->is_string() || schema->text != kSchema) {
    if (error != nullptr) *error = "missing or unknown metrics schema";
    return std::nullopt;
  }
  const JsonValue* metrics = doc->get("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    if (error != nullptr) *error = "missing metrics array";
    return std::nullopt;
  }
  MetricsRegistry reg;
  for (const JsonValue& m : metrics->items) {
    if (!load_metric(reg, m, error)) return std::nullopt;
  }
  return reg;
}

void MetricsRegistry::hist_restore(std::string_view name,
                                   const LogHistogram& h) {
  owner_.assert_held();
  entries_[intern(name, MetricKind::kHistogram)].hist.merge_from(h);
}

}  // namespace hcube::obs
