// Minimal JSON support for the observability layer: a stable, deterministic
// writer (the export side of Registry::to_json and the BENCH_*.json schema)
// and a small recursive-descent parser (the import side: round-trip tests,
// tools/hcstat validation).
//
// Deliberately tiny — no external dependency, no DOM mutation API. Numbers
// round-trip exactly: the parser keeps the raw numeric token, and the
// writer prints integers without a fractional part and everything else with
// enough digits to reparse bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hcube::obs {

// Escapes and formats one JSON scalar.
std::string json_quote(std::string_view s);
std::string json_number(double v);
std::string json_number(std::uint64_t v);

// Stack-based writer producing compact (single-line) JSON. Keys and values
// are appended in call order, so output is deterministic by construction.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(bool b);
  // Embeds pre-rendered JSON (e.g. a nested document) as the next value.
  void raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void separate();
  std::string out_;
  std::vector<bool> first_;  // per open scope: no element emitted yet
  bool pending_key_ = false;
};

// Parsed JSON value. Object member order is preserved as parsed.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  // kString: the value; kNumber: the raw token
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage is an error). On failure returns nullopt and, when `error` is
// non-null, a one-line reason.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

// Renders a parsed value back to compact JSON. Numbers re-emit their raw
// parsed token, so parse -> render round-trips exactly.
std::string json_render(const JsonValue& v);

}  // namespace hcube::obs
