// Steady-state churn health accounting (equilibrium-churn tier).
//
// Under the open-loop regime there is no quiescence to audit at: health is
// a trajectory, not an end state. ChurnHealth is the accumulator for that
// trajectory — the arrival/completion/abandon ledger of the open-loop
// joiners, the in-flight backlog sampled at every probe, per-join
// completion latency, and the post-spike recovery time. The chaos engine
// fills one per equilibrium run (its scalars and histogram buckets fold
// into the run digest, so the whole trajectory is replay-pinned), and
// bench_churn exports it into BENCH_churn.json via export_to.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "util/metric.h"

namespace hcube::obs {

// Canonical registry names (export_to).
HCUBE_METRIC(kMetricChurnProbes, "churn.probes");
HCUBE_METRIC(kMetricChurnJoinArrivals, "churn.join_arrivals");
HCUBE_METRIC(kMetricChurnLeaveArrivals, "churn.leave_arrivals");
HCUBE_METRIC(kMetricChurnCompleted, "churn.completed");
HCUBE_METRIC(kMetricChurnAbandoned, "churn.abandoned");
HCUBE_METRIC(kMetricChurnCompletionRate, "churn.completion_rate");
HCUBE_METRIC(kMetricChurnBacklog, "churn.backlog");
HCUBE_METRIC(kMetricChurnJoinLatencyMs, "churn.join_latency_ms");
HCUBE_METRIC(kMetricChurnRecoveryMs, "churn.recovery_ms");

struct ChurnHealth {
  std::uint64_t probes = 0;          // steady-state probes that fired
  std::uint64_t join_arrivals = 0;   // joins started by rate windows
  std::uint64_t leave_arrivals = 0;  // leaves started by rate windows
  std::uint64_t completed = 0;       // open-loop joiners settled at the end
  std::uint64_t abandoned = 0;       // open-loop joiners whose watchdog
                                     // budget ran out (engine fail-stops
                                     // them at the drain barrier)
  LogHistogram backlog;              // in-flight joins, one sample per probe
  LogHistogram join_latency_ms;      // t_end - t_begin per completed joiner
                                     // (spans every watchdog attempt)
  double recovery_ms = -1.0;         // post-spike time for the backlog to
                                     // return to its pre-spike baseline;
                                     // -1 = no spike in the run

  // completed / join_arrivals; 1.0 when nothing arrived.
  double completion_rate() const;

  // Exports under the churn.* names above: the ledger as counters, the
  // rate/recovery as gauges, the two histograms merged in.
  void export_to(MetricsRegistry& reg) const;

  // Folds every scalar and histogram bucket through fn(uint64) in a fixed
  // order — the digest hook. Doubles are quantized to milli-units so the
  // fold is exact and platform-independent.
  template <class Fn>
  void fold(Fn&& fn) const {
    fn(probes);
    fn(join_arrivals);
    fn(leave_arrivals);
    fn(completed);
    fn(abandoned);
    fold_hist(backlog, fn);
    fold_hist(join_latency_ms, fn);
    // +2 shifts the -1 sentinel into positive range before quantizing.
    fn(static_cast<std::uint64_t>((recovery_ms + 2.0) * 1000.0));
  }

 private:
  template <class Fn>
  static void fold_hist(const LogHistogram& h, Fn& fn) {
    fn(h.count());
    fn(static_cast<std::uint64_t>(h.sum() * 1000.0));
    for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) fn(h.bucket(i));
  }
};

}  // namespace hcube::obs
