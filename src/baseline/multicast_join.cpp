#include "baseline/multicast_join.h"

#include "util/check.h"

namespace hcube {

MulticastNetwork::MulticastNetwork(const IdParams& params,
                                   const std::vector<NodeId>& ids)
    : params_(params), members_(params) {
  HCUBE_CHECK(!ids.empty());
  for (const NodeId& id : ids)
    HCUBE_CHECK_MSG(members_.insert(id), "duplicate node ID");
  for (const NodeId& id : ids) {
    auto table = std::make_unique<NeighborTable>(params_, id);
    members_.for_each_entry_candidate(
        id, [&](std::size_t level, Digit j, const NodeId& first) {
          if (j == id.digit(level)) return;
          table->set(static_cast<std::uint32_t>(level), j, first,
                     NeighborState::kS);
        });
    for (std::uint32_t i = 0; i < params_.num_digits; ++i)
      table->set(i, id.digit(i), id, NeighborState::kS);
    tables_.emplace(id, std::move(table));
    order_.push_back(id);
  }
}

NeighborTable& MulticastNetwork::table_of(const NodeId& id) {
  auto it = tables_.find(id);
  HCUBE_CHECK_MSG(it != tables_.end(), "unknown member");
  return *it->second;
}

NetworkView MulticastNetwork::view() const {
  NetworkView v(params_);
  for (const NodeId& id : order_) v.add(tables_.at(id).get());
  return v;
}

void MulticastNetwork::multicast(const NodeId& at, std::size_t class_len,
                                 const NodeId& x, std::uint32_t entry_level,
                                 MulticastJoinMetrics& m) {
  ++m.existing_nodes_touched;
  NeighborTable& t = table_of(at);
  const Digit xd = x.digit(entry_level);
  if (t.is_empty(entry_level, xd))
    t.set(entry_level, xd, x, NeighborState::kS);

  // Forward to one representative of every sub-class of our responsibility
  // class (suffix of `at` of length class_len) that branches off our own
  // digit path; each representative takes over its (one digit longer) class.
  bool has_children = false;
  for (std::size_t i = class_len; i < params_.num_digits; ++i) {
    for (std::uint32_t j = 0; j < params_.base; ++j) {
      if (j == at.digit(i)) continue;
      const NodeId* w = t.neighbor(static_cast<std::uint32_t>(i), j);
      if (w == nullptr) continue;
      // Skip the joiner itself: nodes visited earlier in this multicast may
      // already have filled x into their (entry_level, x[entry_level])
      // entry, and x is not a multicast participant.
      if (*w == x) continue;
      has_children = true;
      ++m.announce_messages;
      multicast(*w, i + 1, x, entry_level, m);
      ++m.ack_messages;  // child subtree complete -> ack flows up
    }
  }
  // Hildrum et al.: an intermediate node holds the joiner in a pending list
  // until all downstream acks arrive; leaves ack immediately.
  if (has_children) ++m.existing_nodes_with_pending_state;
}

MulticastJoinMetrics MulticastNetwork::join(const NodeId& x,
                                            const NodeId& gateway) {
  HCUBE_CHECK_MSG(!members_.contains(x), "node already a member");
  HCUBE_CHECK_MSG(tables_.contains(gateway), "gateway not a member");
  MulticastJoinMetrics m;

  // Route greedily toward x.ID; the node with no next hop is a member of
  // x's notification set with the maximal shared suffix.
  NodeId cur = gateway;
  for (;;) {
    const NeighborTable& t = table_of(cur);
    const auto k = static_cast<std::uint32_t>(cur.csuf_len(x));
    const NodeId* next = t.neighbor(k, x.digit(k));
    if (next == nullptr) break;
    HCUBE_CHECK(*next != cur);
    cur = *next;
    ++m.route_hops;
  }
  const auto k = static_cast<std::uint32_t>(cur.csuf_len(x));

  // Multicast the announcement over V_ω (all nodes sharing the rightmost k
  // digits of x), rooted at the node routing terminated at.
  multicast(cur, k, x, k, m);

  // The joiner copies one table level per hop of its copy chain, as in the
  // primary protocol: k + 1 request messages.
  m.table_copy_messages = k + 1;

  // Install the joiner's (consistent) table.
  HCUBE_CHECK(members_.insert(x));
  auto table = std::make_unique<NeighborTable>(params_, x);
  members_.for_each_entry_candidate(
      x, [&](std::size_t level, Digit j, const NodeId& first) {
        if (j == x.digit(level)) return;
        table->set(static_cast<std::uint32_t>(level), j, first,
                   NeighborState::kS);
      });
  for (std::uint32_t i = 0; i < params_.num_digits; ++i)
    table->set(i, x.digit(i), x, NeighborState::kS);
  tables_.emplace(x, std::move(table));
  order_.push_back(x);
  return m;
}

}  // namespace hcube
