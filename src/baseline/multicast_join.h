// Multicast-based join baseline (the approach of Hildrum, Kubiatowicz, Rao
// and Zhao for Tapestry, sketched in the paper's Section 1 related work).
//
// The paper's critique of this design: "Each intermediate node in the
// multicast tree keeps the joining node in a list (one list per entry
// updated by a joining node) until it has received acknowledgments from all
// downstream nodes. This approach has the disadvantage of requiring many
// existing nodes to store and process extra states as well as send and
// receive messages on behalf of joining nodes."
//
// This module implements a simplified form of that design so the claim can
// be measured (experiment E6 in DESIGN.md): the joiner routes to the root of
// its notification set, the root multicasts the announcement down the
// class-partitioned tree spanning V_ω (each node forwards to one
// representative per sub-class from its own table), every recipient holds
// the joiner in a pending list until its subtree acks, and acks flow back
// up. We count messages handled by existing nodes and peak pending state —
// the quantities the Liu-Lam protocol drives to (near) zero at existing
// nodes. Latency interleaving does not affect these counts, so the baseline
// runs as a deterministic recursive walk rather than through the DES.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/neighbor_table.h"
#include "core/view.h"
#include "ids/node_id.h"
#include "ids/suffix_trie.h"

namespace hcube {

struct MulticastJoinMetrics {
  std::uint64_t route_hops = 0;          // gateway -> multicast root
  std::uint64_t announce_messages = 0;   // multicast downstream
  std::uint64_t ack_messages = 0;        // acks upstream
  std::uint64_t table_copy_messages = 0; // building the joiner's table
  std::uint64_t existing_nodes_touched = 0;
  std::uint64_t existing_nodes_with_pending_state = 0;

  std::uint64_t total_messages() const {
    return route_hops + announce_messages + ack_messages +
           table_copy_messages;
  }
  // Messages processed by nodes other than the joiner.
  std::uint64_t messages_at_existing() const {
    return route_hops + announce_messages + ack_messages +
           table_copy_messages;
  }
};

// A self-contained network whose nodes join via the multicast scheme.
class MulticastNetwork {
 public:
  // Builds a consistent initial network over `ids` (same direct construction
  // as core's NetworkBuilder).
  MulticastNetwork(const IdParams& params, const std::vector<NodeId>& ids);

  // Joins x (one join at a time), updating all tables. `gateway` must be a
  // member.
  MulticastJoinMetrics join(const NodeId& x, const NodeId& gateway);

  std::size_t size() const { return order_.size(); }
  NetworkView view() const;

 private:
  NeighborTable& table_of(const NodeId& id);

  // Recursive class multicast over V_ω; returns (announces, acks,
  // nodes reached) for the subtree.
  void multicast(const NodeId& at, std::size_t class_len, const NodeId& x,
                 std::uint32_t entry_level, MulticastJoinMetrics& m);

  IdParams params_;
  SuffixTrie members_;
  std::unordered_map<NodeId, std::unique_ptr<NeighborTable>, NodeIdHash>
      tables_;
  std::vector<NodeId> order_;
};

}  // namespace hcube
