// End-host latency models.
//
// The simulator asks one question of the underlay: "what is the one-way
// latency between end hosts a and b?" Three models are provided:
//   - ConstantLatency: unit tests and analytic sanity checks.
//   - SyntheticLatency: cheap deterministic per-pair latencies (hash-based),
//     for mid-size tests that want heterogeneity without a router graph.
//   - TopologyLatency: hosts attached to routers of a (transit-stub) graph;
//     latency = access(a) + shortest_path(router(a), router(b)) + access(b).
//     Per-source router distances are computed lazily and cached.
//   - PlanetLatency: measured-RTT-style heterogeneous map — hosts hash into
//     geographic regions with a fixed continental inter-region delay matrix
//     plus per-host access jitter. No storage per pair, no router graph;
//     the planet-scale scenario pack's default underlay.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "topology/graph.h"
#include "topology/transit_stub.h"
#include "util/host.h"
#include "util/rng.h"

namespace hcube {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  // One-way latency in milliseconds; must be symmetric and non-negative.
  virtual double latency_ms(HostId a, HostId b) = 0;
  virtual std::uint32_t num_hosts() const = 0;
  // Lower bound on latency_ms(a, b) over all pairs a != b. The sharded
  // simulator sizes its epoch to this bound (a cross-shard send inside an
  // epoch can then never be due before the next barrier); a model that
  // cannot bound itself returns 0.0, which forces the driver to degenerate
  // to one event per epoch — correct, just slow.
  virtual double min_latency_ms() const { return 0.0; }
};

class ConstantLatency final : public LatencyModel {
 public:
  ConstantLatency(std::uint32_t num_hosts, double ms)
      : num_hosts_(num_hosts), ms_(ms) {}
  double latency_ms(HostId a, HostId b) override { return a == b ? 0.0 : ms_; }
  std::uint32_t num_hosts() const override { return num_hosts_; }
  double min_latency_ms() const override { return ms_; }

 private:
  std::uint32_t num_hosts_;
  double ms_;
};

// Deterministic pseudo-random symmetric latencies in [lo, hi], derived by
// hashing the (unordered) host pair with a seed. No storage per pair.
class SyntheticLatency final : public LatencyModel {
 public:
  SyntheticLatency(std::uint32_t num_hosts, double lo_ms, double hi_ms,
                   std::uint64_t seed)
      : num_hosts_(num_hosts), lo_(lo_ms), hi_(hi_ms), seed_(seed) {}
  double latency_ms(HostId a, HostId b) override;
  std::uint32_t num_hosts() const override { return num_hosts_; }
  double min_latency_ms() const override { return lo_; }

 private:
  std::uint32_t num_hosts_;
  double lo_, hi_;
  std::uint64_t seed_;
};

// Measured-RTT-style planet map: every host hashes (seed-deterministically)
// into one of kNumRegions geographic regions; one-way latency is
//   access(a) + inter_region(region(a), region(b)) + access(b)
// with a symmetric per-pair jitter of up to ±10% on the region base. The
// region matrix is a fixed continental-scale table (intra-region ~4 ms,
// antipodal ~150 ms one-way), so the distribution is strongly bimodal —
// near peers are 10–30 ms, far peers 100–300 ms — unlike SyntheticLatency's
// uniform band. Deterministic, symmetric, no per-pair storage.
class PlanetLatency final : public LatencyModel {
 public:
  static constexpr std::uint32_t kNumRegions = 8;

  PlanetLatency(std::uint32_t num_hosts, std::uint64_t seed)
      : num_hosts_(num_hosts), seed_(seed) {}
  double latency_ms(HostId a, HostId b) override;
  std::uint32_t num_hosts() const override { return num_hosts_; }
  // access >= 1.0 per side, region base >= 4.0 with jitter >= 0.9.
  double min_latency_ms() const override { return 2.0 + 4.0 * 0.9; }

  std::uint32_t region_of(HostId h) const;

 private:
  double access_ms(HostId h) const;

  std::uint32_t num_hosts_;
  std::uint64_t seed_;
};

// Hosts attached to routers of an underlay graph.
class TopologyLatency final : public LatencyModel {
 public:
  // Attaches num_hosts hosts to routers drawn uniformly from attach_points
  // (normally the stub routers), with per-host access-link latencies drawn
  // from [access_lo, access_hi].
  TopologyLatency(Graph graph, const std::vector<std::uint32_t>& attach_points,
                  std::uint32_t num_hosts, double access_lo, double access_hi,
                  Rng& rng);

  double latency_ms(HostId a, HostId b) override;
  std::uint32_t num_hosts() const override {
    return static_cast<std::uint32_t>(host_router_.size());
  }
  // Two hosts on the same router see just their two access links.
  double min_latency_ms() const override { return min_latency_; }

  std::uint32_t host_router(HostId h) const { return host_router_[h]; }

 private:
  const std::vector<float>& distances_from(std::uint32_t router);

  Graph graph_;
  std::vector<std::uint32_t> host_router_;
  std::vector<float> host_access_ms_;
  double min_latency_ = 0.0;
  std::unordered_map<std::uint32_t, std::vector<float>> dist_cache_;
};

// Convenience: generate a transit-stub underlay and attach hosts to its stub
// routers.
std::unique_ptr<TopologyLatency> make_transit_stub_latency(
    const TransitStubParams& params, std::uint32_t num_hosts, Rng& rng);

}  // namespace hcube
