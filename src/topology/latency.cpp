#include "topology/latency.h"

#include "util/check.h"

namespace hcube {

double SyntheticLatency::latency_ms(HostId a, HostId b) {
  if (a == b) return 0.0;
  const std::uint64_t lo_id = a < b ? a : b;
  const std::uint64_t hi_id = a < b ? b : a;
  std::uint64_t s = seed_ ^ (lo_id * 0x9e3779b97f4a7c15ULL) ^
                    (hi_id * 0xc2b2ae3d27d4eb4fULL);
  const std::uint64_t h = splitmix64_next(s);
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return lo_ + (hi_ - lo_) * unit;
}

TopologyLatency::TopologyLatency(Graph graph,
                                 const std::vector<std::uint32_t>& attach_points,
                                 std::uint32_t num_hosts, double access_lo,
                                 double access_hi, Rng& rng)
    : graph_(std::move(graph)) {
  HCUBE_CHECK(!attach_points.empty());
  HCUBE_CHECK(access_lo >= 0 && access_hi >= access_lo);
  host_router_.reserve(num_hosts);
  host_access_ms_.reserve(num_hosts);
  for (std::uint32_t h = 0; h < num_hosts; ++h) {
    host_router_.push_back(
        attach_points[rng.next_below(attach_points.size())]);
    host_access_ms_.push_back(static_cast<float>(
        access_lo + (access_hi - access_lo) * rng.next_double()));
  }
}

const std::vector<float>& TopologyLatency::distances_from(
    std::uint32_t router) {
  auto it = dist_cache_.find(router);
  if (it == dist_cache_.end())
    it = dist_cache_.emplace(router, graph_.shortest_paths_from(router)).first;
  return it->second;
}

double TopologyLatency::latency_ms(HostId a, HostId b) {
  HCUBE_CHECK(a < host_router_.size() && b < host_router_.size());
  if (a == b) return 0.0;
  // Canonicalize the Dijkstra source so latency(a, b) == latency(b, a)
  // bit-for-bit (float accumulation order differs per source otherwise).
  const std::uint32_t ra = std::min(host_router_[a], host_router_[b]);
  const std::uint32_t rb = std::max(host_router_[a], host_router_[b]);
  const double backbone =
      ra == rb ? 0.0 : static_cast<double>(distances_from(ra)[rb]);
  return static_cast<double>(host_access_ms_[a]) + backbone +
         static_cast<double>(host_access_ms_[b]);
}

std::unique_ptr<TopologyLatency> make_transit_stub_latency(
    const TransitStubParams& params, std::uint32_t num_hosts, Rng& rng) {
  TransitStubTopology topo = generate_transit_stub(params, rng);
  return std::make_unique<TopologyLatency>(
      std::move(topo.graph), topo.stub_routers, num_hosts,
      params.access_latency_min, params.access_latency_max, rng);
}

}  // namespace hcube
