#include "topology/latency.h"

#include "util/check.h"

namespace hcube {

double SyntheticLatency::latency_ms(HostId a, HostId b) {
  if (a == b) return 0.0;
  const std::uint64_t lo_id = a < b ? a : b;
  const std::uint64_t hi_id = a < b ? b : a;
  std::uint64_t s = seed_ ^ (lo_id * 0x9e3779b97f4a7c15ULL) ^
                    (hi_id * 0xc2b2ae3d27d4eb4fULL);
  const std::uint64_t h = splitmix64_next(s);
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return lo_ + (hi_ - lo_) * unit;
}

namespace {

// One-way inter-region delays in milliseconds, loosely shaped after public
// inter-continental RTT tables (RTT/2): regions 0..7 read as NA-East,
// NA-West, SA, EU-West, EU-East, Asia-East, Asia-South, Oceania. Symmetric
// by construction; only the upper triangle is authored.
constexpr double kRegionBase[PlanetLatency::kNumRegions]
                            [PlanetLatency::kNumRegions] = {
    //  NAE    NAW    SA     EUW    EUE    ASE    ASS    OC
    {4.0, 30.0, 60.0, 40.0, 55.0, 90.0, 110.0, 95.0},    // NA-East
    {30.0, 4.0, 80.0, 65.0, 80.0, 60.0, 110.0, 70.0},    // NA-West
    {60.0, 80.0, 5.0, 95.0, 110.0, 150.0, 160.0, 150.0}, // SA
    {40.0, 65.0, 95.0, 4.0, 15.0, 100.0, 70.0, 140.0},   // EU-West
    {55.0, 80.0, 110.0, 15.0, 5.0, 85.0, 60.0, 150.0},   // EU-East
    {90.0, 60.0, 150.0, 100.0, 85.0, 4.0, 45.0, 60.0},   // Asia-East
    {110.0, 110.0, 160.0, 70.0, 60.0, 45.0, 5.0, 75.0},  // Asia-South
    {95.0, 70.0, 150.0, 140.0, 150.0, 60.0, 75.0, 5.0},  // Oceania
};

std::uint64_t planet_hash(std::uint64_t seed, std::uint64_t v) {
  std::uint64_t s = seed ^ (v * 0x9e3779b97f4a7c15ULL);
  return splitmix64_next(s);
}

}  // namespace

std::uint32_t PlanetLatency::region_of(HostId h) const {
  return static_cast<std::uint32_t>(planet_hash(seed_, h) % kNumRegions);
}

double PlanetLatency::access_ms(HostId h) const {
  // Last-mile access link: 1..16 ms, skewed low (min of two draws).
  const std::uint64_t r = planet_hash(seed_ ^ 0x5bd1e995ULL, h);
  const double d1 = 1.0 + 15.0 * (static_cast<double>(r >> 43) * 0x1.0p-21);
  const double d2 =
      1.0 + 15.0 * (static_cast<double>(r & 0x1fffffULL) * 0x1.0p-21);
  return d1 < d2 ? d1 : d2;
}

double PlanetLatency::latency_ms(HostId a, HostId b) {
  if (a == b) return 0.0;
  const std::uint32_t ra = region_of(a);
  const std::uint32_t rb = region_of(b);
  const double base = kRegionBase[ra][rb];
  // Unordered-pair jitter of up to ±10% on the region base keeps distinct
  // same-region pairs from colliding at identical delays (event-order ties
  // would otherwise be common) while preserving symmetry.
  const std::uint64_t lo_id = a < b ? a : b;
  const std::uint64_t hi_id = a < b ? b : a;
  const std::uint64_t j =
      planet_hash(seed_ ^ (hi_id * 0xc2b2ae3d27d4eb4fULL), lo_id);
  const double jitter =
      0.9 + 0.2 * (static_cast<double>(j >> 11) * 0x1.0p-53);
  return access_ms(a) + base * jitter + access_ms(b);
}

TopologyLatency::TopologyLatency(Graph graph,
                                 const std::vector<std::uint32_t>& attach_points,
                                 std::uint32_t num_hosts, double access_lo,
                                 double access_hi, Rng& rng)
    : graph_(std::move(graph)) {
  HCUBE_CHECK(!attach_points.empty());
  HCUBE_CHECK(access_lo >= 0 && access_hi >= access_lo);
  host_router_.reserve(num_hosts);
  host_access_ms_.reserve(num_hosts);
  for (std::uint32_t h = 0; h < num_hosts; ++h) {
    host_router_.push_back(
        attach_points[rng.next_below(attach_points.size())]);
    host_access_ms_.push_back(static_cast<float>(
        access_lo + (access_hi - access_lo) * rng.next_double()));
  }
  float min_access = host_access_ms_.empty() ? 0.0f : host_access_ms_[0];
  for (const float a : host_access_ms_)
    if (a < min_access) min_access = a;
  min_latency_ = 2.0 * static_cast<double>(min_access);
}

const std::vector<float>& TopologyLatency::distances_from(
    std::uint32_t router) {
  auto it = dist_cache_.find(router);
  if (it == dist_cache_.end())
    it = dist_cache_.emplace(router, graph_.shortest_paths_from(router)).first;
  return it->second;
}

double TopologyLatency::latency_ms(HostId a, HostId b) {
  HCUBE_CHECK(a < host_router_.size() && b < host_router_.size());
  if (a == b) return 0.0;
  // Canonicalize the Dijkstra source so latency(a, b) == latency(b, a)
  // bit-for-bit (float accumulation order differs per source otherwise).
  const std::uint32_t ra = std::min(host_router_[a], host_router_[b]);
  const std::uint32_t rb = std::max(host_router_[a], host_router_[b]);
  const double backbone =
      ra == rb ? 0.0 : static_cast<double>(distances_from(ra)[rb]);
  return static_cast<double>(host_access_ms_[a]) + backbone +
         static_cast<double>(host_access_ms_[b]);
}

std::unique_ptr<TopologyLatency> make_transit_stub_latency(
    const TransitStubParams& params, std::uint32_t num_hosts, Rng& rng) {
  TransitStubTopology topo = generate_transit_stub(params, rng);
  return std::make_unique<TopologyLatency>(
      std::move(topo.graph), topo.stub_routers, num_hosts,
      params.access_latency_min, params.access_latency_max, rng);
}

}  // namespace hcube
