#include "topology/graph.h"

#include <limits>
#include <queue>

#include "util/check.h"

namespace hcube {

Graph::Graph(std::uint32_t num_vertices) : adj_(num_vertices) {}

void Graph::add_edge(std::uint32_t u, std::uint32_t v, float weight) {
  HCUBE_CHECK(u < adj_.size() && v < adj_.size());
  HCUBE_CHECK_MSG(u != v, "self-loops not allowed");
  HCUBE_CHECK(weight >= 0.0f);
  adj_[u].push_back({v, weight});
  adj_[v].push_back({u, weight});
  ++num_edges_;
}

std::span<const Graph::Edge> Graph::neighbors(std::uint32_t u) const {
  HCUBE_CHECK(u < adj_.size());
  return adj_[u];
}

std::vector<float> Graph::shortest_paths_from(std::uint32_t source) const {
  HCUBE_CHECK(source < adj_.size());
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> dist(adj_.size(), kInf);
  using Item = std::pair<float, std::uint32_t>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0f;
  heap.emplace(0.0f, source);
  while (!heap.empty()) {
    const auto [du, u] = heap.top();
    heap.pop();
    if (du > dist[u]) continue;  // stale entry
    for (const Edge& e : adj_[u]) {
      const float cand = du + e.weight;
      if (cand < dist[e.to]) {
        dist[e.to] = cand;
        heap.emplace(cand, e.to);
      }
    }
  }
  return dist;
}

bool Graph::is_connected() const {
  if (adj_.empty()) return true;
  const auto dist = shortest_paths_from(0);
  for (float d : dist)
    if (d == std::numeric_limits<float>::infinity()) return false;
  return true;
}

}  // namespace hcube
