// Undirected weighted graph with Dijkstra shortest paths.
//
// Vertices model routers; edge weights are link latencies in milliseconds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hcube {

class Graph {
 public:
  struct Edge {
    std::uint32_t to;
    float weight;
  };

  explicit Graph(std::uint32_t num_vertices);

  std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(adj_.size());
  }
  std::size_t num_edges() const { return num_edges_; }

  // Adds an undirected edge. Parallel edges are allowed (Dijkstra simply
  // uses the cheaper one); self-loops are rejected.
  void add_edge(std::uint32_t u, std::uint32_t v, float weight);

  std::span<const Edge> neighbors(std::uint32_t u) const;

  // Single-source shortest path distances; unreachable vertices get
  // +infinity.
  std::vector<float> shortest_paths_from(std::uint32_t source) const;

  bool is_connected() const;

 private:
  std::vector<std::vector<Edge>> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace hcube
