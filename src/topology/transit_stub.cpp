#include "topology/transit_stub.h"

#include "util/check.h"

namespace hcube {
namespace {

float uniform_latency(Rng& rng, double lo, double hi) {
  return static_cast<float>(lo + (hi - lo) * rng.next_double());
}

// Connects vertices [first, first+count) as a ring (guaranteeing domain
// connectivity) plus random chords.
void build_domain(Graph& g, Rng& rng, std::uint32_t first, std::uint32_t count,
                  double extra_prob, double lat_lo, double lat_hi) {
  if (count == 1) return;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t u = first + i;
    const std::uint32_t v = first + (i + 1) % count;
    if (count == 2 && i == 1) break;  // avoid duplicating the single edge
    g.add_edge(u, v, uniform_latency(rng, lat_lo, lat_hi));
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    for (std::uint32_t j = i + 2; j < count; ++j) {
      if (i == 0 && j == count - 1) continue;  // ring edge already present
      if (rng.next_double() < extra_prob)
        g.add_edge(first + i, first + j, uniform_latency(rng, lat_lo, lat_hi));
    }
  }
}

}  // namespace

TransitStubTopology generate_transit_stub(const TransitStubParams& p,
                                          Rng& rng) {
  HCUBE_CHECK(p.transit_domains >= 1);
  HCUBE_CHECK(p.transit_nodes_per_domain >= 1);

  const std::uint32_t n = p.total_routers();
  TransitStubTopology topo{Graph(n), std::vector<bool>(n, false), {}};

  // Vertex layout: all transit routers first (domain-major), then stub
  // routers (grouped per stub domain).
  const std::uint32_t num_transit =
      p.transit_domains * p.transit_nodes_per_domain;
  for (std::uint32_t v = 0; v < num_transit; ++v) topo.is_transit[v] = true;

  // Intra-transit-domain meshes.
  for (std::uint32_t dom = 0; dom < p.transit_domains; ++dom) {
    build_domain(topo.graph, rng, dom * p.transit_nodes_per_domain,
                 p.transit_nodes_per_domain, p.intra_domain_extra_edge_prob,
                 p.transit_latency_min, p.transit_latency_max);
  }

  // Inter-domain links: ring of domains plus extra random links. Each link
  // connects random routers of the two domains.
  auto random_transit_router = [&](std::uint32_t dom) {
    return dom * p.transit_nodes_per_domain +
           static_cast<std::uint32_t>(
               rng.next_below(p.transit_nodes_per_domain));
  };
  if (p.transit_domains > 1) {
    for (std::uint32_t dom = 0; dom < p.transit_domains; ++dom) {
      const std::uint32_t next = (dom + 1) % p.transit_domains;
      if (p.transit_domains == 2 && dom == 1) break;
      topo.graph.add_edge(random_transit_router(dom),
                          random_transit_router(next),
                          uniform_latency(rng, p.interdomain_latency_min,
                                          p.interdomain_latency_max));
    }
    for (std::uint32_t i = 0; i < p.extra_interdomain_links; ++i) {
      const auto a =
          static_cast<std::uint32_t>(rng.next_below(p.transit_domains));
      auto b = static_cast<std::uint32_t>(rng.next_below(p.transit_domains));
      if (a == b) b = (b + 1) % p.transit_domains;
      topo.graph.add_edge(random_transit_router(a), random_transit_router(b),
                          uniform_latency(rng, p.interdomain_latency_min,
                                          p.interdomain_latency_max));
    }
  }

  // Stub domains: ring+chords internally; one access link from a random
  // stub router of the domain to its parent transit router.
  std::uint32_t next_vertex = num_transit;
  for (std::uint32_t t = 0; t < num_transit; ++t) {
    for (std::uint32_t s = 0; s < p.stub_domains_per_transit_node; ++s) {
      const std::uint32_t first = next_vertex;
      next_vertex += p.stub_nodes_per_domain;
      build_domain(topo.graph, rng, first, p.stub_nodes_per_domain,
                   p.intra_domain_extra_edge_prob, p.stub_latency_min,
                   p.stub_latency_max);
      const std::uint32_t gateway =
          first + static_cast<std::uint32_t>(
                      rng.next_below(p.stub_nodes_per_domain));
      topo.graph.add_edge(t, gateway,
                          uniform_latency(rng, p.access_latency_min,
                                          p.access_latency_max));
      for (std::uint32_t v = first; v < next_vertex; ++v)
        topo.stub_routers.push_back(v);
    }
  }
  HCUBE_CHECK(next_vertex == n);
  HCUBE_CHECK_MSG(topo.graph.is_connected(),
                  "transit-stub generator must produce a connected graph");
  return topo;
}

}  // namespace hcube
