// Transit-stub router topology generator.
//
// The paper attaches simulated end hosts to router topologies produced by
// the GT-ITM package (transit-stub model, 8320 routers). GT-ITM is not
// available offline, so this module implements the transit-stub model
// itself: a top-level ring-plus-chords of transit domains, transit routers
// per domain, and stub domains hanging off transit routers. What matters for
// the reproduced experiments is that pairwise end-host latencies are
// heterogeneous and triangle-inequality-respecting (shortest path metric),
// which this construction provides. See DESIGN.md §5.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.h"
#include "util/rng.h"

namespace hcube {

struct TransitStubParams {
  std::uint32_t transit_domains = 4;
  std::uint32_t transit_nodes_per_domain = 8;
  std::uint32_t stub_domains_per_transit_node = 4;
  std::uint32_t stub_nodes_per_domain = 16;

  // Extra random chord edges (beyond the connectivity-guaranteeing rings),
  // expressed as a probability per candidate pair within a domain.
  double intra_domain_extra_edge_prob = 0.2;
  // Extra transit-domain-to-transit-domain links beyond the ring.
  std::uint32_t extra_interdomain_links = 2;

  // Link latency ranges in milliseconds.
  double interdomain_latency_min = 20.0, interdomain_latency_max = 80.0;
  double transit_latency_min = 5.0, transit_latency_max = 20.0;
  double access_latency_min = 2.0, access_latency_max = 10.0;  // transit-stub
  double stub_latency_min = 1.0, stub_latency_max = 5.0;

  std::uint32_t total_routers() const {
    return transit_domains * transit_nodes_per_domain *
               (1 + stub_domains_per_transit_node * stub_nodes_per_domain);
  }
};

struct TransitStubTopology {
  Graph graph;
  // Router classification, parallel to vertex ids.
  std::vector<bool> is_transit;
  // Stub routers, in vertex-id order (hosts are normally attached here).
  std::vector<std::uint32_t> stub_routers;
};

// Generates a connected transit-stub topology. Deterministic given the RNG
// state.
TransitStubTopology generate_transit_stub(const TransitStubParams& params,
                                          Rng& rng);

}  // namespace hcube
