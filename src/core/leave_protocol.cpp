#include "core/leave_protocol.h"

#include "util/check.h"

namespace hcube {

void LeaveProtocol::send_leave_msg(const NodeId& v) {
  // v stores us at entry (k, id[k]), whose class is our (k+1)-digit
  // suffix. Candidates are ALL our table rows at levels >= k+1: every such
  // entry shares >= k+1 digits with us, and if any other member y of the
  // class exists, our entry (|csuf(us, y)|, y-digit) is non-null and != us
  // by consistency (a). The level-(k+1) row alone is NOT enough — members
  // hiding behind our own level-(k+1) digit only appear in deeper rows.
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(v));
  LeaveMsg msg;
  if (k + 1 < core_.params.num_digits)
    msg.candidates = core_.table.snapshot(k + 1, core_.params.num_digits - 1);
  core_.send(v, std::move(msg));
}

void LeaveProtocol::send_leave_to(const NodeId& v) {
  send_leave_msg(v);
  leave_notified_.insert(v);
  leave_unacked_.insert(v);
}

void LeaveProtocol::start_leave() {
  HCUBE_CHECK_MSG(core_.status == NodeStatus::kInSystem,
                  "only an S-node may leave gracefully");
  core_.set_status(NodeStatus::kLeaving);
  ++leave_epoch_;
  leave_retries_ = 0;
  for (const NodeId& v : core_.table.reverse_neighbors()) {
    send_leave_to(v);
  }
  for (const NodeId& y : core_.table.distinct_neighbors())
    core_.send(y, NghDropMsg{});
  if (leave_unacked_.empty()) {
    core_.set_status(NodeStatus::kDeparted);
    return;
  }
  arm_watchdog();
}

void LeaveProtocol::arm_watchdog() {
  if (core_.options.leave_watchdog_ms <= 0.0) return;
  const std::uint64_t epoch = leave_epoch_;
  core_.env.schedule(core_.options.leave_watchdog_ms,
                     [this, epoch] { on_watchdog(epoch); });
}

void LeaveProtocol::on_watchdog(std::uint64_t epoch) {
  if (epoch != leave_epoch_) return;  // reset() or a newer leave superseded
  if (core_.status != NodeStatus::kLeaving) return;
  if (leave_retries_ >= core_.options.leave_max_retries) {
    // The silent peers are presumed dead (fail-stop); depart without their
    // acks. A peer that was merely unreachable now points at a silent node,
    // which the repair protocol detects and reclaims like any crash.
    ++core_.stats.forced_departures;
    leave_unacked_.clear();
    core_.set_status(NodeStatus::kDeparted);
    return;
  }
  ++leave_retries_;
  for (const NodeId& v : leave_unacked_) send_leave_msg(v);
  arm_watchdog();
}

void LeaveProtocol::on_leave(const NodeId& x, HostId x_host,
                             const LeaveMsg& m) {
  // x no longer stores us.
  core_.table.remove_reverse_neighbor(x);
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(x));
  const Digit jd = x.digit(k);
  if (core_.status == NodeStatus::kLeaving) {
    // We are on the way out ourselves: our table will never be read again,
    // and repairing it would register us as a fresh reverse neighbor of the
    // replacement — a pointer that would dangle the moment we depart.
    core_.send(x, x_host, LeaveRlyMsg{});
    return;
  }
  // The leaver is no longer a valid redundant neighbor either. (Backups
  // are repaired from the LeaveMsg candidates, not promoted: a remembered
  // backup may itself have left since — backups are not reverse-tracked.)
  core_.table.purge_backup(k, jd, x);
  if (core_.table.holds(k, jd, x)) {
    const SnapshotEntry* replacement = nullptr;
    for (const SnapshotEntry& e : m.candidates.entries) {
      if (e.node == x) continue;  // the leaver itself
      // Candidates all share the leaver's (k+1)-digit suffix, which equals
      // our entry's desired suffix; double-check defensively.
      if (e.node.csuf_len(core_.id) >= k && e.node.digit(k) == jd) {
        replacement = &e;
        if (e.state == NeighborState::kS) break;  // prefer a settled node
      }
    }
    if (replacement != nullptr) {
      const HostId host = core_.env.host_of(replacement->node);
      core_.table.set(k, jd, replacement->node, replacement->state, host);
      core_.send(replacement->node, host, RvNghNotiMsg{replacement->state});
    } else {
      // The leaver was the last member of the entry's class: null is now
      // the consistent value (Definition 3.8(b)).
      core_.table.clear(k, jd);
    }
  }
  core_.send(x, x_host, LeaveRlyMsg{});
}

void LeaveProtocol::on_leave_rly(const NodeId& v) {
  // Tolerated after departure: an ack that lost the race against the
  // leave watchdog's unilateral exit (kLeaveRly is declared legal at
  // kDeparted), or a duplicate ack for a re-sent LeaveMsg.
  if (core_.status != NodeStatus::kLeaving) return;
  leave_unacked_.erase(v);
  if (leave_unacked_.empty()) core_.set_status(NodeStatus::kDeparted);
}

void LeaveProtocol::on_ngh_drop(const NodeId& x) {
  core_.table.remove_reverse_neighbor(x);
}

}  // namespace hcube
