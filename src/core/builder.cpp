#include "core/builder.h"

#include "ids/suffix_trie.h"
#include "util/check.h"

namespace hcube {

void build_consistent_network(Overlay& overlay, const std::vector<NodeId>& ids,
                              std::uint32_t backups_per_entry) {
  HCUBE_CHECK_MSG(overlay.size() == 0,
                  "direct construction requires an empty overlay");
  HCUBE_CHECK(!ids.empty());
  const IdParams& params = overlay.params();

  SuffixTrie trie(params);
  for (const NodeId& id : ids)
    HCUBE_CHECK_MSG(trie.insert(id), "duplicate node ID");

  for (const NodeId& id : ids) {
    Node& node = overlay.add_node(id);
    trie.for_each_entry_candidate(
        id, [&](std::size_t level, Digit j, const NodeId& first) {
          if (j == id.digit(level)) return;  // own entry, set by finish
          node.install_entry(static_cast<std::uint32_t>(level), j, first);
          if (backups_per_entry > 0) {
            Suffix want = id.suffix_of_len(level);
            want.push_back(j);
            for (const NodeId& extra :
                 trie.some_with_suffix(want, backups_per_entry + 1)) {
              if (extra == first) continue;
              node.install_backup(static_cast<std::uint32_t>(level), j, extra,
                                  backups_per_entry);
            }
          }
        });
    node.finish_install();
  }

  // Complete the reverse-neighbor sets so later joiners' InSysNotiMsg /
  // RvNghNotiMsg bookkeeping starts from the same state a protocol-built
  // network would have.
  for (const auto& node : overlay.nodes()) {
    node->table().for_each_filled([&](std::uint32_t, std::uint32_t,
                                      const NodeId& neighbor, NeighborState) {
      if (neighbor == node->id()) return;
      overlay.at(neighbor).install_reverse_neighbor(node->id());
    });
  }

  // Exact-fit pass: installation is append-heavy, and the growth doubling
  // it leaves behind is ~500 bytes/node at n = 10^6 — real memory the
  // scale bench's bytes/node ceiling charges for. Tables regrow normally
  // under later protocol traffic.
  for (const auto& node : overlay.nodes()) node->compact_storage();
}

namespace {

const NodeId& random_member(const std::vector<NodeId>& members, Rng& rng) {
  HCUBE_CHECK(!members.empty());
  return members[rng.next_below(members.size())];
}

}  // namespace

void join_sequentially(Overlay& overlay, const std::vector<NodeId>& new_ids,
                       std::vector<NodeId> members, Rng& rng) {
  for (const NodeId& id : new_ids) {
    const NodeId gateway = random_member(members, rng);
    overlay.schedule_join(id, gateway, overlay.now());
    overlay.run_to_quiescence();
    HCUBE_CHECK_MSG(overlay.at(id).is_s_node(),
                    "sequential join did not complete");
    members.push_back(id);
  }
}

void join_concurrently(Overlay& overlay, const std::vector<NodeId>& new_ids,
                       const std::vector<NodeId>& members, Rng& rng,
                       SimTime window_ms) {
  HCUBE_CHECK(window_ms >= 0.0);
  for (const NodeId& id : new_ids) {
    const NodeId gateway = random_member(members, rng);
    const SimTime at = overlay.now() + window_ms * rng.next_double();
    overlay.schedule_join(id, gateway, at);
  }
  overlay.run_to_quiescence();
}

void initialize_network(Overlay& overlay, const std::vector<NodeId>& ids,
                        Rng& rng, bool concurrent) {
  HCUBE_CHECK(!ids.empty());
  HCUBE_CHECK_MSG(overlay.size() == 0,
                  "initialization requires an empty overlay");
  overlay.add_node(ids[0]).become_seed();
  const std::vector<NodeId> rest(ids.begin() + 1, ids.end());
  if (rest.empty()) return;
  if (concurrent) {
    join_concurrently(overlay, rest, {ids[0]}, rng);
  } else {
    join_sequentially(overlay, rest, {ids[0]}, rng);
  }
}

void leave_and_drain(Overlay& overlay, const NodeId& id) {
  overlay.at(id).start_leave();
  overlay.run_to_quiescence();
}

}  // namespace hcube
