#include "core/overlay.h"

#include "net/sim_transport.h"
#include "util/check.h"

namespace hcube {

Overlay::Overlay(const IdParams& params, const ProtocolOptions& options,
                 EventQueue& queue, LatencyModel& latency)
    : params_(params),
      options_(options),
      owned_transport_(std::make_unique<SimTransport>(queue, latency)),
      transport_(*owned_transport_),
      backoff_rng_(options.backoff_seed) {
  params_.validate();
}

Overlay::Overlay(const IdParams& params, const ProtocolOptions& options,
                 Transport& transport)
    : params_(params),
      options_(options),
      transport_(transport),
      backoff_rng_(options.backoff_seed) {
  params_.validate();
}

Node& Overlay::add_node(const NodeId& id) {
  HCUBE_CHECK_MSG(find(id) == nullptr, "duplicate node ID");
  auto node = std::make_unique<Node>(id, params_, options_, *this, &arena_);
  Node* raw = node.get();
  // Deliveries pass through the interception seam before the node sees
  // them; `this` is captured (not the current interceptor value) so an
  // interceptor installed after add_node still covers this endpoint.
  const HostId host =
      transport_.add_endpoint([this, raw](HostId from, const Message& msg) {
        if (delivery_interceptor && delivery_interceptor(*raw, from, msg))
          return;
        raw->handle(from, msg);
      });
  HCUBE_CHECK_MSG(host == nodes_.size(),
                  "overlay must be the transport's only endpoint registrant");
  raw->bind_host(host);
  nodes_.push_back(std::move(node));
  join_counted_.push_back(0);
  if (id.ref() >= registry_.size()) registry_.resize(id.ref() + 1, kNoHost);
  registry_[id.ref()] = host;
  return *raw;
}

void Overlay::track_join_backlog(const NodeId& node, NodeStatus to) {
  const HostId host =
      node.ref() < registry_.size() ? registry_[node.ref()] : kNoHost;
  if (host == kNoHost) return;  // transition during registration
  const bool joining = to == NodeStatus::kCopying ||
                       to == NodeStatus::kWaiting ||
                       to == NodeStatus::kNotifying;
  if (joining == (join_counted_[host] != 0)) return;
  join_counted_[host] = joining ? 1 : 0;
  join_backlog_[lane_scratch_slot()] += joining ? 1 : -1;
}

HostId Overlay::host_of(const NodeId& id) const {
  const HostId host =
      id.ref() < registry_.size() ? registry_[id.ref()] : kNoHost;
  HCUBE_CHECK_MSG(host != kNoHost, "unknown node ID");
  return host;
}

Node* Overlay::find(const NodeId& id) {
  if (!id.is_valid() || id.ref() >= registry_.size()) return nullptr;
  const HostId host = registry_[id.ref()];
  return host == kNoHost ? nullptr : nodes_[host].get();
}

const Node* Overlay::find(const NodeId& id) const {
  if (!id.is_valid() || id.ref() >= registry_.size()) return nullptr;
  const HostId host = registry_[id.ref()];
  return host == kNoHost ? nullptr : nodes_[host].get();
}

Node& Overlay::at(const NodeId& id) {
  Node* n = find(id);
  HCUBE_CHECK_MSG(n != nullptr, "unknown node ID");
  return *n;
}

const Node& Overlay::at(const NodeId& id) const {
  const Node* n = find(id);
  HCUBE_CHECK_MSG(n != nullptr, "unknown node ID");
  return *n;
}

Node& Overlay::schedule_join(const NodeId& id, const NodeId& gateway,
                             SimTime at) {
  Node& node = add_node(id);
  Node* raw = &node;
  NodeId gw = gateway;
  transport_.queue().schedule_at(at, [raw, gw]() { raw->start_join(gw); });
  return node;
}

std::uint64_t Overlay::run_to_quiescence(std::uint64_t max_events) {
  return transport_.queue().run(max_events);
}

bool Overlay::all_in_system() const {
  for (const auto& node : nodes_) {
    if (node->has_departed() || node->is_crashed()) continue;
    if (!node->is_s_node()) return false;
  }
  return true;
}

std::size_t Overlay::live_size() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (!node->has_departed() && !node->is_crashed()) ++n;
  return n;
}

void Overlay::crash(const NodeId& id) { at(id).mark_crashed(); }

void Overlay::restart(const NodeId& id, const NodeId& gateway) {
  at(id).restart(gateway);
}

void Overlay::schedule_restart(const NodeId& id, const NodeId& gateway,
                               SimTime at_ms) {
  Node* raw = &at(id);
  NodeId gw = gateway;
  transport_.queue().schedule_at(at_ms, [raw, gw]() { raw->restart(gw); });
}

std::uint64_t Overlay::repair_all(SimTime ping_timeout_ms,
                                  std::uint32_t rounds) {
  const std::uint64_t queries_before = sent_of(MessageType::kRepairQuery);
  for (std::uint32_t round = 0; round < rounds; ++round) {
    // Pull phase: detect dead neighbors, vacate their entries, query peers.
    for (const auto& node : nodes_) {
      if (node->is_s_node()) node->start_repair(ping_timeout_ms);
    }
    run_to_quiescence();
    // Push phase: survivors re-announce themselves. Running it only after
    // the pull phase quiesced guarantees no announcement can resurrect a
    // pointer to a dead node (all such entries are already vacated).
    for (const auto& node : nodes_) {
      if (node->is_s_node()) node->announce_table();
    }
    run_to_quiescence();
  }
  return sent_of(MessageType::kRepairQuery) - queries_before;
}

void Overlay::set_drop_filter(
    std::function<bool(const NodeId&, const NodeId&, const MessageBody&)>
        filter) {
  if (!filter) {
    transport_.drop_filter = nullptr;
    return;
  }
  transport_.drop_filter = [this, filter = std::move(filter)](
                               HostId /*from*/, HostId to, const Message& msg) {
    // Recover the recipient's overlay ID from the endpoint index.
    return filter(msg.sender, nodes_[to]->id(), msg.body);
  };
}

void Overlay::send_message(const NodeId& from, const NodeId& to,
                           MessageBody body, HostId from_host, HostId to_host,
                           std::uint32_t gen) {
  // Hot path: both hosts pre-resolved by the caller — no hashing below.
  if (from_host == kNoHost) from_host = host_of(from);
  if (to_host == kNoHost) to_host = host_of(to);

  Totals& totals = totals_[lane_scratch_slot()];
  ++totals.messages;
  ++totals.sent[static_cast<std::size_t>(type_of(body))];
  totals.bytes += wire_size_bytes(body, params_);
  if (on_message) on_message(from, to, body);

  transport_.send(from_host, to_host,
                  Message{from, std::move(body), /*rel_seq=*/0, gen});
}

}  // namespace hcube
