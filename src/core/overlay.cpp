#include "core/overlay.h"

#include "util/check.h"

namespace hcube {

Overlay::Overlay(const IdParams& params, const ProtocolOptions& options,
                 EventQueue& queue, LatencyModel& latency)
    : params_(params), options_(options), queue_(queue), net_(queue, latency) {
  params_.validate();
}

Node& Overlay::add_node(const NodeId& id) {
  HCUBE_CHECK_MSG(!registry_.contains(id), "duplicate node ID");
  auto node = std::make_unique<Node>(id, params_, options_, *this);
  Node* raw = node.get();
  const HostId host = net_.add_endpoint(
      [raw](HostId /*from*/, const Message& msg) { raw->handle(msg); });
  nodes_.push_back(std::move(node));
  registry_.emplace(id, std::make_pair(raw, host));
  return *raw;
}

HostId Overlay::host_of(const NodeId& id) const {
  auto it = registry_.find(id);
  HCUBE_CHECK_MSG(it != registry_.end(), "unknown node ID");
  return it->second.second;
}

Node* Overlay::find(const NodeId& id) {
  auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second.first;
}

const Node* Overlay::find(const NodeId& id) const {
  auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second.first;
}

Node& Overlay::at(const NodeId& id) {
  Node* n = find(id);
  HCUBE_CHECK_MSG(n != nullptr, "unknown node ID");
  return *n;
}

const Node& Overlay::at(const NodeId& id) const {
  const Node* n = find(id);
  HCUBE_CHECK_MSG(n != nullptr, "unknown node ID");
  return *n;
}

Node& Overlay::schedule_join(const NodeId& id, const NodeId& gateway,
                             SimTime at) {
  Node& node = add_node(id);
  Node* raw = &node;
  NodeId gw = gateway;
  queue_.schedule_at(at, [raw, gw]() { raw->start_join(gw); });
  return node;
}

std::uint64_t Overlay::run_to_quiescence(std::uint64_t max_events) {
  return queue_.run(max_events);
}

bool Overlay::all_in_system() const {
  for (const auto& node : nodes_) {
    if (node->has_departed() || node->is_crashed()) continue;
    if (!node->is_s_node()) return false;
  }
  return true;
}

std::size_t Overlay::live_size() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (!node->has_departed() && !node->is_crashed()) ++n;
  return n;
}

void Overlay::crash(const NodeId& id) { at(id).mark_crashed(); }

std::uint64_t Overlay::repair_all(SimTime ping_timeout_ms,
                                  std::uint32_t rounds) {
  const std::uint64_t queries_before = sent_of(MessageType::kRepairQuery);
  for (std::uint32_t round = 0; round < rounds; ++round) {
    // Pull phase: detect dead neighbors, vacate their entries, query peers.
    for (const auto& node : nodes_) {
      if (node->is_s_node()) node->start_repair(ping_timeout_ms);
    }
    run_to_quiescence();
    // Push phase: survivors re-announce themselves. Running it only after
    // the pull phase quiesced guarantees no announcement can resurrect a
    // pointer to a dead node (all such entries are already vacated).
    for (const auto& node : nodes_) {
      if (node->is_s_node()) node->announce_table();
    }
    run_to_quiescence();
  }
  return sent_of(MessageType::kRepairQuery) - queries_before;
}

void Overlay::set_drop_filter(
    std::function<bool(const NodeId&, const NodeId&, const MessageBody&)>
        filter) {
  if (!filter) {
    net_.drop_filter = nullptr;
    return;
  }
  net_.drop_filter = [this, filter = std::move(filter)](
                         HostId /*from*/, HostId to, const Message& msg) {
    // Recover the recipient's overlay ID from the endpoint index.
    return filter(msg.sender, nodes_[to]->id(), msg.body);
  };
}

void Overlay::send_message(const NodeId& from, const NodeId& to,
                           MessageBody body) {
  auto from_it = registry_.find(from);
  auto to_it = registry_.find(to);
  HCUBE_CHECK_MSG(from_it != registry_.end(), "send from unknown node");
  HCUBE_CHECK_MSG(to_it != registry_.end(), "send to unknown node");

  ++totals_.messages;
  ++totals_.sent[static_cast<std::size_t>(type_of(body))];
  totals_.bytes += wire_size_bytes(body, params_);
  if (on_message) on_message(from, to, body);

  net_.send(from_it->second.second, to_it->second.second,
            Message{from, std::move(body)});
}

}  // namespace hcube
