#include "core/consistency.h"

#include <sstream>

#include "core/routing.h"
#include "util/check.h"

namespace hcube {

std::string ConsistencyViolation::describe(const IdParams& params) const {
  std::ostringstream os;
  os << "node " << node.to_string(params) << " entry (" << level << ", "
     << digit << "): ";
  switch (kind) {
    case Kind::kFalseNegative:
      os << "false negative — matching node exists but entry is null";
      break;
    case Kind::kFalsePositive:
      os << "false positive — no matching node exists but entry holds "
         << present.to_string(params);
      break;
    case Kind::kUnknownNeighbor:
      os << "entry names non-member " << present.to_string(params);
      break;
    case Kind::kStaleState:
      os << "entry " << present.to_string(params) << " still in state T";
      break;
  }
  return os.str();
}

std::string ConsistencyReport::summary(const IdParams& params,
                                       std::size_t max_lines) const {
  std::ostringstream os;
  os << (consistent() ? "CONSISTENT" : "INCONSISTENT") << ": "
     << entries_checked << " entries checked, " << total_violations
     << " violations\n";
  std::size_t lines = 0;
  for (const auto& v : violations) {
    if (lines++ >= max_lines) {
      os << "  ...\n";
      break;
    }
    os << "  " << v.describe(params) << "\n";
  }
  return os.str();
}

ConsistencyReport check_consistency(const NetworkView& net,
                                    const ConsistencyCheckOptions& options) {
  const IdParams& params = net.params();
  ConsistencyReport report;

  SuffixTrie members(params);
  for (const NeighborTable* t : net.tables()) {
    const bool fresh = members.insert(t->owner());
    HCUBE_CHECK_MSG(fresh, "duplicate node ID in view");
  }

  auto add = [&](ConsistencyViolation v) {
    ++report.total_violations;
    if (report.violations.size() < options.max_violations_kept)
      report.violations.push_back(std::move(v));
  };

  Suffix suffix;  // reused buffer: j . x[i-1..0], stored LSB-first
  for (const NeighborTable* t : net.tables()) {
    const NodeId& x = t->owner();
    suffix.assign(x.digits().begin(), x.digits().end());
    for (std::uint32_t i = 0; i < params.num_digits; ++i) {
      for (std::uint32_t j = 0; j < params.base; ++j) {
        ++report.entries_checked;
        suffix[i] = static_cast<Digit>(j);
        const std::span<const Digit> want(suffix.data(), i + 1);
        const bool exists = members.contains_suffix(want);
        const NodeId* entry = t->neighbor(i, j);
        if (exists && entry == nullptr) {
          add({ConsistencyViolation::Kind::kFalseNegative, x, i, j, {}});
        } else if (!exists && entry != nullptr) {
          add({ConsistencyViolation::Kind::kFalsePositive, x, i, j, *entry});
        } else if (entry != nullptr) {
          // NeighborTable::set already enforces the suffix invariant, so a
          // filled entry matches `want`; membership is the remaining risk.
          if (!members.contains(*entry)) {
            add({ConsistencyViolation::Kind::kUnknownNeighbor, x, i, j,
                 *entry});
          } else if (options.check_states &&
                     t->state(i, j) != NeighborState::kS) {
            add({ConsistencyViolation::Kind::kStaleState, x, i, j, *entry});
          }
        }
      }
      // restore x's own digit for the next level's suffix prefix
      suffix[i] = x.digit(i);
    }
  }
  return report;
}

bool reachable(const NetworkView& net, const NodeId& from, const NodeId& to) {
  return route(net, from, to).success;
}

std::uint64_t check_reachability_sample(const NetworkView& net,
                                        std::uint64_t pairs, Rng& rng) {
  const std::size_t n = net.size();
  if (n < 2) return 0;
  std::uint64_t failures = 0;
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
  if (total <= pairs) {
    for (const NeighborTable* a : net.tables())
      for (const NeighborTable* b : net.tables())
        if (a != b && !reachable(net, a->owner(), b->owner())) ++failures;
    return failures;
  }
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    auto b = static_cast<std::size_t>(rng.next_below(n));
    if (a == b) b = (b + 1) % n;
    if (!reachable(net, net.tables()[a]->owner(), net.tables()[b]->owner()))
      ++failures;
  }
  return failures;
}

}  // namespace hcube
