// Hypercube (suffix) routing — Section 2.2 — plus PRR-style surrogate
// routing for object IDs, which the object-location layer (src/dht) uses to
// find the unique "root" node of an object.
#pragma once

#include <optional>
#include <vector>

#include "core/view.h"
#include "ids/node_id.h"

namespace hcube {

struct RouteResult {
  bool success = false;
  // Nodes visited, starting with the origin; on success the last element is
  // the destination.
  std::vector<NodeId> path;

  std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

// Routes from `from` toward node `to` by resolving one more suffix digit per
// hop (the message sent from x starts at level |csuf(x, to)|). Fails — with
// the partial path — when a required entry is empty (inconsistent network or
// nonexistent destination) or when the hop bound d is exceeded.
RouteResult route(const NetworkView& net, const NodeId& from,
                  const NodeId& to);

// Fault-tolerant routing over possibly-stale tables (Section 2.1's extra
// neighbors put to work). `net` must contain only LIVE nodes' tables; an
// entry — primary or backup — naming a node absent from the view models a
// neighbor that failed to respond and is skipped. Succeeds whenever, at
// every hop, the needed entry has at least one live candidate; never
// consults crashed nodes' tables.
RouteResult route_fault_tolerant(const NetworkView& net, const NodeId& from,
                                 const NodeId& to);

struct SurrogateResult {
  NodeId root;
  std::vector<NodeId> path;  // nodes visited, starting with the origin
};

// Surrogate routing: route toward an arbitrary ID (typically an object's
// hash) that need not name a node. At each level the next digit is resolved
// to the first non-empty entry scanning j = id[i], id[i]+1, ... (mod b).
// On a consistent network every origin reaches the same root for a given ID
// (Definition 3.8(a)+(b) make entry occupancy at level i identical across
// all nodes sharing i suffix digits). Returns nullopt on a broken network.
std::optional<SurrogateResult> surrogate_route(const NetworkView& net,
                                               const NodeId& from,
                                               const NodeId& object_id);

}  // namespace hcube
