// Protocol configuration knobs.
#pragma once

#include <cstdint>

namespace hcube {

// What a node puts into table-carrying messages (Section 6.2).
enum class SnapshotPolicy : std::uint8_t {
  // Baseline: every table-carrying message carries the full table.
  kFullTable,
  // JoinNotiMsg carries only levels noti_level .. |csuf(x, y)| (first §6.2
  // enhancement). Other table-carrying messages stay full.
  kPartialLevels,
  // kPartialLevels plus: JoinNotiMsg carries a filled-entry bit vector and
  // the JoinNotiRlyMsg table is pruned to entries the requester lacks below
  // its notification level (second §6.2 enhancement).
  kBitVector,
};

const char* to_string(SnapshotPolicy p);

struct ProtocolOptions {
  SnapshotPolicy snapshot_policy = SnapshotPolicy::kFullTable;

  // Redundant neighbors per entry (Section 2.1's "extra neighbors ... for
  // fault tolerant routing"). 0 = primary-only, as in the paper's Section 3
  // simplification. When > 0, nodes opportunistically remember up to this
  // many additional suffix-class members per entry; fault-tolerant routing
  // (route_fault_tolerant) and recovery use them as instant fallbacks.
  std::uint32_t backups_per_entry = 0;

  // Failure recovery (extension): how long a repair probe waits for a
  // PongMsg before presuming the probed neighbor dead. Used by
  // RepairProtocol when start_repair / Overlay::repair_all is driven with
  // the default timeout; size it above the transport's worst round trip
  // (plus the ARQ layer's retransmission span when one is stacked).
  double repair_ping_timeout_ms = 500.0;

  // Join-stall watchdog (robustness extension): a joining node that has not
  // become an S-node this many milliseconds after an attempt began aborts
  // the attempt and restarts it under a fresh generation tag (stale replies
  // from the dead attempt are rejected by their echoed generation). 0
  // disables the watchdog — appropriate when the transport is reliable, as
  // the paper assumes. Size it well above the reliable layer's worst-case
  // retransmission span; the watchdog is the recovery of last resort for
  // messages the transport gave up on.
  double join_watchdog_ms = 0.0;
  // Attempts abandoned before the watchdog stops restarting (so a join
  // through a permanently dead gateway cannot loop forever).
  std::uint32_t join_max_restarts = 8;

  // ---- Misbehaving-peer hardening (alive-but-wrong tier; see
  // ---- docs/PROTOCOL.md "failure model" and DESIGN.md §14). All three
  // ---- default off: the paper's fail-stop model never needs them, and the
  // ---- chaos digests of fail-stop schedules must not move.

  // Cross-validate repair candidates before installing them: a RepairRlyMsg
  // naming a candidate triggers a liveness probe (PingMsg) and the entry is
  // filled only when the candidate answers. Defends against stale-table
  // responders serving long-dead nodes as replacements; a failed validation
  // leaves the entry empty for the next repair/announce round.
  bool validate_repair_candidates = false;

  // Per-reply janitor for the notification phase: a peer that was sent a
  // JoinNotiMsg (or an SpeNotiMsg chain) and stays silent this long is
  // presumed unhelpful — it is recorded as a suspect, dropped from the
  // outstanding-reply set, and the join proceeds without it. Defends
  // against reply-droppers that would otherwise pin the joiner in
  // kNotifying until the coarse watchdog burns its whole restart budget.
  // 0 disables the janitor (the paper's reliable-delivery regime).
  double reply_timeout_ms = 0.0;

  // Watchdog gateway rotation skips peers already recorded as suspects
  // (unanswered notifications, silent copy sources) when an unsuspected
  // candidate exists. Off, rotation cycles all learned S-neighbors as
  // before.
  bool suspect_aware_rotation = false;

  // ---- Graceful join degradation (equilibrium-churn tier; see
  // ---- docs/PROTOCOL.md "churn regimes"). Both knobs default off: under
  // ---- episodic churn the immediate-restart watchdog is correct, and the
  // ---- chaos digests of existing schedules must not move.

  // Jittered exponential backoff on watchdog-driven join restarts: after
  // the k-th abort the next attempt begins base * 2^min(k-1, 6) * j
  // milliseconds later, with j drawn uniformly from [0.5, 1.5) out of the
  // environment's seeded jitter stream (NodeEnv::backoff_jitter — never a
  // private RNG, so runs stay bit-reproducible). Under sustained overload
  // this de-synchronizes the restart herd instead of hammering gateways in
  // lockstep. 0 restarts immediately, as before.
  double join_backoff_base_ms = 0.0;

  // Seed of the per-overlay jitter stream. Only drawn from when
  // join_backoff_base_ms > 0, so default runs never touch it.
  std::uint64_t backoff_seed = 0x0b5eedbacc0ffULL;

  // Gateway-side admission control: when the environment-wide in-flight
  // join backlog (NodeEnv::join_backlog) exceeds this threshold, an S-node
  // receiving a CpRstMsg defers its CpRlyMsg by overload_defer_ms instead
  // of answering immediately — shedding copy-walk load until the backlog
  // drains, at the price of slower admissions. 0 disables the deferral.
  std::uint32_t overload_defer_threshold = 0;
  double overload_defer_ms = 50.0;

  // Leave-stall watchdog (robustness extension): a leaver still missing
  // LeaveRly acks this many milliseconds after notifying its reverse
  // neighbors re-sends the unanswered LeaveMsgs (idempotent on the
  // receiver), and after leave_max_retries re-sends presumes the silent
  // peers dead and departs unilaterally — sound under fail-stop, since the
  // repair protocol reclaims any pointer left at a peer that was merely
  // unreachable. 0 disables the watchdog (graceful leaves then assume every
  // notified reverse neighbor stays alive to ack, as before).
  double leave_watchdog_ms = 0.0;
  std::uint32_t leave_max_retries = 4;
};

}  // namespace hcube
