// Neighbor-table optimization — the paper's "problem 3".
//
// The join protocol deliberately relaxes PRR's optimality assumption and
// only guarantees *consistency*; the paper points to Hildrum et al. [5] and
// Castro et al. [2] for proximity optimization. This module provides the
// optimization as an offline post-pass over a consistent overlay: for every
// table entry it rebinds the neighbor to the lowest-latency member of the
// entry's suffix class (scanning up to `max_candidates` class members).
// Consistency is preserved by construction — the replacement has the same
// required suffix — and the bench (bench_stretch) quantifies the effect on
// routing stretch (property P2 of Section 1).
#pragma once

#include <cstdint>

#include "core/overlay.h"
#include "topology/latency.h"

namespace hcube {

struct OptimizeResult {
  std::uint64_t entries_examined = 0;
  std::uint64_t entries_rebound = 0;
  std::uint64_t candidates_scanned = 0;
};

// Rebinds every (non-own) entry of every live node to the nearest class
// member found among the first `max_candidates` members (digit-order scan).
// Reverse-neighbor bookkeeping is updated in place. The latency model must
// be the one the overlay's nodes are attached to.
OptimizeResult optimize_tables(Overlay& overlay, LatencyModel& latency,
                               std::size_t max_candidates = 32);

}  // namespace hcube
