// Read-only view over a set of neighbor tables.
//
// Routing, the consistency checker and C-set tree realization all need "the
// table of node u" lookups over a snapshot of the network. A NetworkView
// decouples them from Overlay so they also work on tables produced by other
// means (e.g. the multicast-join baseline or hand-built fixtures).
#pragma once

#include <vector>

#include "core/neighbor_table.h"
#include "ids/node_id.h"
#include "ids/node_set.h"

namespace hcube {

class Overlay;

class NetworkView {
 public:
  explicit NetworkView(const IdParams& params) : params_(params) {}

  void add(const NeighborTable* table) {
    HCUBE_CHECK(table != nullptr);
    tables_.push_back(table);
    by_id_.put(table->owner(), table);
  }

  const IdParams& params() const { return params_; }
  std::size_t size() const { return tables_.size(); }
  const std::vector<const NeighborTable*>& tables() const { return tables_; }

  const NeighborTable* find(const NodeId& id) const {
    const NeighborTable* const* t = by_id_.find(id);
    return t == nullptr ? nullptr : *t;
  }
  bool contains(const NodeId& id) const { return by_id_.contains(id); }

 private:
  IdParams params_;
  std::vector<const NeighborTable*> tables_;
  FlatNodeMap<const NeighborTable*> by_id_;
};

// View over all nodes currently in an overlay.
NetworkView view_of(const Overlay& overlay);

}  // namespace hcube
