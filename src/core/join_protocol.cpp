#include "core/join_protocol.h"

#include <algorithm>

#include "proto/conformance.h"
#include "util/check.h"

namespace hcube {

// The handlers below lean on the conformance registry's contracts; pin the
// assumptions at compile time so an edit to the registry that would break
// the join protocol fails the build here, next to the code it breaks.
//
// reject_stale_reply() only works on messages that echo the request
// generation — every reply type this module consumes must be declared so.
static_assert(conformance_of(MessageType::kCpRly).echoes_gen &&
                  conformance_of(MessageType::kJoinWaitRly).echoes_gen &&
                  conformance_of(MessageType::kJoinNotiRly).echoes_gen &&
                  conformance_of(MessageType::kSpeNotiRly).echoes_gen,
              "join replies must echo the request generation");
// SpeNotiMsg is forwarded while handling a message of the announced attempt
// and must carry that attempt's generation down the chain (Figure 11).
static_assert(conformance_of(MessageType::kSpeNoti).echoes_gen,
              "SpeNotiMsg must propagate the originator's generation");
// The three requests this module sends each prescribe the reply type the
// corresponding on_* handler consumes.
static_assert(conformance_of(MessageType::kCpRst).reply == MessageType::kCpRly &&
                  conformance_of(MessageType::kJoinWait).reply ==
                      MessageType::kJoinWaitRly &&
                  conformance_of(MessageType::kJoinNoti).reply ==
                      MessageType::kJoinNotiRly,
              "join request/reply pairing must match the registry");
// A joining node can be driven back to kCopying by the watchdog while peers
// still talk to it: every join-phase type must stay legal there.
static_assert(conformance_allows(NodeStatus::kCopying, MessageType::kCpRly) &&
                  conformance_allows(NodeStatus::kCopying,
                                     MessageType::kJoinWaitRly) &&
                  conformance_allows(NodeStatus::kCopying,
                                     MessageType::kJoinNotiRly),
              "stale replies must remain deliverable after a watchdog restart");

// ---------------------------------------------------------------------------
// Figure 5: status copying

void JoinProtocol::start_join(const NodeId& g0) {
  gateway_ = g0;
  // Fresh node: 0 -> 1. Crash-restarted node: the counter survived the
  // crash (reset_for_restart keeps it) and climbs past every pre-crash
  // attempt, so stale replies to the old incarnation are rejected.
  ++core_.attempt_gen;
  begin_attempt();
  arm_watchdog();
}

void JoinProtocol::reset() {
  noti_level_ = 0;
  copy_level_ = 0;
  copy_from_ = NodeId();
  gateway_ = NodeId();
  q_replies_.clear();
  q_notified_.clear();
  q_join_waiters_.clear();
  q_spe_replies_.clear();
  q_spe_notified_.clear();
  suspects_.clear();
}

void JoinProtocol::begin_attempt() {
  core_.set_status(NodeStatus::kCopying);
  copy_level_ = 0;
  copy_from_ = gateway_;
  core_.send(gateway_, CpRstMsg{});
}

void JoinProtocol::arm_watchdog() {
  if (core_.options.join_watchdog_ms <= 0.0) return;
  const std::uint32_t gen = core_.attempt_gen;
  core_.env.schedule(core_.options.join_watchdog_ms,
                     [this, gen] { on_watchdog(gen); });
}

void JoinProtocol::on_watchdog(std::uint32_t gen) {
  // Only the watchdog armed for the current attempt may restart it, and
  // only while the join is actually stuck mid-flight.
  if (gen != core_.attempt_gen) return;
  if (core_.status != NodeStatus::kCopying &&
      core_.status != NodeStatus::kWaiting &&
      core_.status != NodeStatus::kNotifying) {
    return;
  }
  if (core_.stats.watchdog_restarts >= core_.options.join_max_restarts) return;
  ++core_.stats.watchdog_restarts;
  ++core_.attempt_gen;
  // Every peer whose reply the aborted attempt was still waiting on stayed
  // silent for a whole watchdog period: record them as suspects before the
  // queues are wiped, copy source included (a mid-walk stall means the
  // current CpRstMsg target never answered). Counting is unconditional —
  // it is pure bookkeeping — but only suspect_aware_rotation acts on it.
  for (const NodeId& p : q_replies_) note_suspect(p);
  for (const NodeId& p : q_spe_replies_) note_suspect(p);
  if (core_.status == NodeStatus::kCopying && copy_from_.is_valid())
    note_suspect(copy_from_);
  // A restart through the same gateway cannot help if the gateway itself
  // crashed mid-join; rotate deterministically through the S-state
  // neighbors the aborted attempts already learned (falling back to the
  // original gateway when none are known).
  rotate_gateway();
  // Forget the aborted attempt's conversation state. The table keeps what
  // was already learned (filled entries and reverse neighbors reflect real
  // remote state), and deferred JoinWaitMsg senders still get their replies
  // when we eventually switch.
  q_replies_.clear();
  q_notified_.clear();
  q_spe_replies_.clear();
  q_spe_notified_.clear();
  // Graceful degradation (ProtocolOptions::join_backoff_base_ms): wait out
  // a jittered exponential backoff before the next attempt, so a restart
  // herd under sustained overload de-synchronizes instead of re-hammering
  // the gateways in lockstep. The wait belongs to the generation bumped
  // above: a crash, restart, or stale-watchdog race during the wait bumps
  // attempt_gen again and the delayed closure becomes a no-op. No watchdog
  // runs during the wait — backoff time is not attempt time.
  if (core_.options.join_backoff_base_ms > 0.0) {
    const std::uint32_t k =
        std::min(core_.stats.watchdog_restarts > 0
                     ? core_.stats.watchdog_restarts - 1
                     : 0u,
                 6u);
    const double delay_ms = core_.options.join_backoff_base_ms *
                            static_cast<double>(std::uint32_t{1} << k) *
                            core_.env.backoff_jitter();
    ++core_.stats.backoff_waits;
    const std::uint32_t wait_gen = core_.attempt_gen;
    core_.env.schedule(delay_ms, [this, wait_gen] {
      if (wait_gen != core_.attempt_gen) return;
      if (core_.status != NodeStatus::kCopying &&
          core_.status != NodeStatus::kWaiting &&
          core_.status != NodeStatus::kNotifying) {
        return;
      }
      begin_attempt();
      arm_watchdog();
    });
    return;
  }
  begin_attempt();
  arm_watchdog();
}

void JoinProtocol::rotate_gateway() {
  // Candidates: every distinct S-state table neighbor plus the original
  // gateway, cycled by restart count — consecutive restarts try different
  // entry points until one answers. Table iteration order is (level,
  // digit), so the choice is deterministic.
  std::vector<NodeId> candidates;
  core_.table.for_each_filled([&](std::uint32_t, std::uint32_t,
                                  const NodeId& n, NeighborState state) {
    if (state != NeighborState::kS || n == core_.id || n == gateway_) return;
    for (const NodeId& c : candidates)
      if (c == n) return;
    candidates.push_back(n);
  });
  if (candidates.empty()) return;
  if (core_.options.suspect_aware_rotation) {
    // Skip peers already recorded silent, when anyone else is available —
    // rotating back onto a reply-dropper just burns another restart.
    std::vector<NodeId> trusted;
    for (const NodeId& c : candidates)
      if (!suspects_.contains(c)) trusted.push_back(c);
    if (!trusted.empty()) {
      if (!suspects_.contains(gateway_)) trusted.push_back(gateway_);
      gateway_ = trusted[core_.stats.watchdog_restarts % trusted.size()];
      return;
    }
  }
  candidates.push_back(gateway_);
  gateway_ = candidates[core_.stats.watchdog_restarts % candidates.size()];
}

void JoinProtocol::note_suspect(const NodeId& peer) {
  ++core_.stats.suspected_peers;
  suspects_.insert(peer);
}

void JoinProtocol::arm_reply_janitor(const NodeId& peer, bool spe) {
  if (core_.options.reply_timeout_ms <= 0.0) return;
  const std::uint32_t gen = core_.attempt_gen;
  core_.env.schedule(core_.options.reply_timeout_ms, [this, peer, gen, spe] {
    on_reply_janitor(peer, gen, spe);
  });
}

// The per-reply janitor: a notified peer still unanswered when its timer
// fires is presumed unhelpful (reply-dropper, or dead in a way the ARQ
// layer has not yet given up on). Evict it so the join can settle on the
// replies it did get; a genuinely slow reply arriving later is still
// processed (reverse-neighbor registration, table merge) — only the
// blocking dependency is severed. Scoped to the notification phase: a
// silent JoinWaitMsg target is a structural dependency (Figure 6 decides
// our notification level) that only the coarse watchdog may abandon.
void JoinProtocol::on_reply_janitor(const NodeId& peer, std::uint32_t gen,
                                    bool spe) {
  if (gen != core_.attempt_gen) return;
  if (core_.status != NodeStatus::kNotifying) return;
  NodeIdSet& q = spe ? q_spe_replies_ : q_replies_;
  if (!q.contains(peer)) return;
  note_suspect(peer);
  q.erase(peer);
  maybe_switch_to_s_node();
}

bool JoinProtocol::reject_stale_reply() {
  if (core_.handling_gen == core_.attempt_gen) return false;
  ++core_.stats.stale_rejected;
  return true;
}

void JoinProtocol::on_cp_rly(const NodeId& g, const CpRlyMsg& msg) {
  if (reject_stale_reply()) return;
  HCUBE_CHECK(core_.status == NodeStatus::kCopying);
  HCUBE_CHECK(g == copy_from_);

  // Copy level-i neighbors of g into level-i of our table. On a fresh join
  // every entry at this level is provably empty (copy_entry checks); after
  // a watchdog restart the walk revisits territory the aborted attempt
  // already copied, so only fill gaps. g's table may also hold *us* from
  // the aborted attempt — never copy ourselves.
  for (const SnapshotEntry& e : msg.table.entries) {
    if (e.level != copy_level_) continue;
    if (e.node == core_.id) continue;
    if (core_.attempt_gen > 1)
      core_.fill_if_empty(e.level, e.digit, e.node, e.state);
    else
      core_.copy_entry(e.level, e.digit, e.node, e.state);
  }

  // p = g; g = N_p(i, x[i]); s = N_p(i, x[i]).state; i++.
  const SnapshotEntry* next = nullptr;
  for (const SnapshotEntry& e : msg.table.entries) {
    if (e.level == copy_level_ && e.digit == core_.id.digit(copy_level_)) {
      next = &e;
      break;
    }
  }
  const NodeId prev = copy_from_;
  ++copy_level_;

  if (next == nullptr) {
    // No node shares the rightmost (i+1) digits with us: wait on p.
    finish_copying_and_wait(prev);
    return;
  }
  if (next->node == core_.id) {
    // Only possible after a restart: p stored us during the aborted
    // attempt, so the walk ran into ourselves. p is then the closest node
    // sharing our suffix that is not us — wait on it.
    HCUBE_CHECK_MSG(core_.attempt_gen > 1, "joining node found in a table");
    finish_copying_and_wait(prev);
    return;
  }
  if (next->state == NeighborState::kS) {
    HCUBE_CHECK_MSG(copy_level_ < core_.params.num_digits,
                    "copied all levels; duplicate ID in network?");
    copy_from_ = next->node;
    core_.send(copy_from_, CpRstMsg{});
  } else {
    // g_{k+1} exists but is still a T-node: wait on it.
    finish_copying_and_wait(next->node);
  }
}

void JoinProtocol::finish_copying_and_wait(const NodeId& target) {
  // x adds itself into its table.
  for (std::uint32_t i = 0; i < core_.params.num_digits; ++i)
    core_.table.set(i, core_.id.digit(i), core_.id, NeighborState::kT,
                    core_.self_host);
  core_.set_status(NodeStatus::kWaiting);
  core_.send(target, JoinWaitMsg{});
  q_notified_.insert(target);
  q_replies_.insert(target);
}

// ---------------------------------------------------------------------------
// Figure 6: receiving JoinWaitMsg

void JoinProtocol::on_join_wait(const NodeId& x, HostId x_host) {
  if (core_.status != NodeStatus::kInSystem) {
    // Defer; remember the request's generation so the eventual reply (sent
    // from switch_to_s_node, outside this handler) still echoes it. A
    // repeated JoinWaitMsg from a restarted attempt overwrites the tag.
    q_join_waiters_.put(x, core_.handling_gen);
    return;
  }
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(x));
  const Digit jd = x.digit(k);
  const NodeId* cur = core_.table.neighbor(k, jd);
  if (cur != nullptr && *cur != x) {
    if (core_.options.backups_per_entry > 0)
      core_.table.offer_backup(k, jd, x, core_.options.backups_per_entry);
    core_.send(x, x_host,
               JoinWaitRlyMsg{false, *cur, core_.table.snapshot_full()});
  } else {
    if (cur == nullptr)
      core_.table.set(k, jd, x, NeighborState::kT, x_host);
    // We now store x, so we are a reverse neighbor of x; x learns this from
    // the positive reply (Figure 7 adds us to R_x).
    core_.send(x, x_host,
               JoinWaitRlyMsg{true, x, core_.table.snapshot_full()});
  }
}

// ---------------------------------------------------------------------------
// Figure 7: receiving JoinWaitRlyMsg

void JoinProtocol::on_join_wait_rly(const NodeId& y,
                                    const JoinWaitRlyMsg& m) {
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(y));
  // The reply proves y is an S-node (true whatever generation it carries).
  if (core_.table.holds(k, y.digit(k), y))
    core_.table.set_state(k, y.digit(k), NeighborState::kS);
  if (reject_stale_reply()) {
    // A stale *positive* still means y stored us: y must be in R_x so our
    // InSysNotiMsg reaches it when the current attempt completes.
    if (m.positive)
      core_.table.add_reverse_neighbor(y);
    return;
  }
  q_replies_.erase(y);

  if (m.positive) {
    HCUBE_CHECK(core_.status == NodeStatus::kWaiting);
    core_.set_status(NodeStatus::kNotifying);
    noti_level_ = k;
    core_.stats.noti_level = k;
    core_.table.add_reverse_neighbor(y);
  } else {
    HCUBE_CHECK_MSG(m.u != core_.id, "negative JoinWaitRly naming the joiner");
    core_.send(m.u, JoinWaitMsg{});
    q_notified_.insert(m.u);
    q_replies_.insert(m.u);
  }
  check_ngh_table(m.table);
  maybe_switch_to_s_node();
}

// ---------------------------------------------------------------------------
// Figure 8: Check_Ngh_Table

void JoinProtocol::check_ngh_table(const TableSnapshot& snap) {
  for (const SnapshotEntry& e : snap.entries) {
    if (e.node == core_.id) continue;
    const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(e.node));
    const Digit jd = e.node.digit(k);
    core_.fill_if_empty(k, jd, e.node, e.state);
    if (core_.status == NodeStatus::kNotifying && k >= noti_level_ &&
        !q_notified_.contains(e.node)) {
      send_join_noti(e.node);
      q_notified_.insert(e.node);
      q_replies_.insert(e.node);
      arm_reply_janitor(e.node, /*spe=*/false);
    }
  }
}

void JoinProtocol::send_join_noti(const NodeId& target) {
  JoinNotiMsg msg;
  msg.sender_noti_level = static_cast<std::uint8_t>(noti_level_);
  switch (core_.options.snapshot_policy) {
    case SnapshotPolicy::kFullTable:
      msg.table = core_.table.snapshot_full();
      break;
    case SnapshotPolicy::kPartialLevels:
    case SnapshotPolicy::kBitVector: {
      // §6.2: levels noti_level .. |csuf(x, y)| suffice.
      const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(target));
      msg.table = core_.table.snapshot(std::min(noti_level_, k), k);
      if (core_.options.snapshot_policy == SnapshotPolicy::kBitVector)
        msg.filled = core_.table.filled_bitvec();
      break;
    }
  }
  core_.send(target, std::move(msg));
}

// ---------------------------------------------------------------------------
// Figure 9: receiving JoinNotiMsg

JoinNotiRlyMsg JoinProtocol::build_join_noti_rly(
    bool positive, bool flag, const JoinNotiMsg& request) const {
  JoinNotiRlyMsg reply;
  reply.positive = positive;
  reply.flag = flag;
  if (core_.options.snapshot_policy == SnapshotPolicy::kBitVector &&
      request.filled.has_value()) {
    // §6.2: below the requester's notification level include only entries
    // it lacks; at and above it include everything (the requester must
    // discover nodes to notify there even where its entries are filled).
    const BitVec& filled = *request.filled;
    core_.table.for_each_filled([&](std::uint32_t i, std::uint32_t j,
                                    const NodeId& node, NeighborState state) {
      const std::size_t bit =
          static_cast<std::size_t>(i) * core_.params.base + j;
      if (i >= request.sender_noti_level ||
          bit >= filled.size() || !filled.get(bit)) {
        reply.table.add(static_cast<std::uint8_t>(i),
                        static_cast<std::uint8_t>(j), node, state);
      }
    });
  } else {
    reply.table = core_.table.snapshot_full();
  }
  return reply;
}

void JoinProtocol::on_join_noti(const NodeId& x, HostId x_host,
                                const JoinNotiMsg& m) {
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(x));
  const Digit jd = x.digit(k);
  bool flag = false;
  core_.fill_if_empty(k, jd, x, NeighborState::kT);
  // Does x's table (as sent) hold us at (k, y[k])? If not and we are an
  // S-node, set the flag so x announces us to the occupant (Figure 10).
  const Digit our_digit = core_.id.digit(k);
  bool x_has_us = false;
  for (const SnapshotEntry& e : m.table.entries) {
    if (e.level == k && e.digit == our_digit && e.node == core_.id) {
      x_has_us = true;
      break;
    }
  }
  if (!x_has_us && core_.status == NodeStatus::kInSystem) flag = true;

  const bool positive = core_.table.holds(k, jd, x);
  core_.send(x, x_host, build_join_noti_rly(positive, flag, m));
  check_ngh_table(m.table);
}

// ---------------------------------------------------------------------------
// Figure 10: receiving JoinNotiRlyMsg

void JoinProtocol::on_join_noti_rly(const NodeId& y,
                                    const JoinNotiRlyMsg& m) {
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(y));
  if (reject_stale_reply()) {
    // As in Figure 7: a stale positive proves y stored us — keep it in R_x.
    if (m.positive)
      core_.table.add_reverse_neighbor(y);
    return;
  }
  q_replies_.erase(y);
  if (m.positive) core_.table.add_reverse_neighbor(y);
  // The kNotifying guard matters once the reply janitor exists: a reply
  // from an evicted peer can land after we already switched to S-node, and
  // opening a new SpeNoti conversation then would leak outstanding-reply
  // state forever (nothing drains Q_sr after the switch).
  if (core_.status == NodeStatus::kNotifying && m.flag && k > noti_level_ &&
      !q_spe_notified_.contains(y)) {
    const NodeId* u1 = core_.table.neighbor(k, y.digit(k));
    HCUBE_CHECK_MSG(u1 != nullptr && *u1 != y,
                    "flagged entry must hold a competitor node");
    core_.send(*u1, core_.entry_host(k, y.digit(k)), SpeNotiMsg{core_.id, y});
    q_spe_notified_.insert(y);
    q_spe_replies_.insert(y);
    arm_reply_janitor(y, /*spe=*/true);
  }
  check_ngh_table(m.table);
  maybe_switch_to_s_node();
}

// ---------------------------------------------------------------------------
// Figure 11: receiving SpeNotiMsg

void JoinProtocol::on_spe_noti(const SpeNotiMsg& m) {
  HCUBE_CHECK(m.y != core_.id);  // the forwarding chain never reaches y
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(m.y));
  const Digit jd = m.y.digit(k);
  core_.fill_if_empty(k, jd, m.y, NeighborState::kS);
  if (!core_.table.holds(k, jd, m.y)) {
    core_.send(*core_.table.neighbor(k, jd), core_.entry_host(k, jd),
               SpeNotiMsg{m.x, m.y});
  } else {
    core_.send(m.x, SpeNotiRlyMsg{m.x, m.y});
  }
}

// ---------------------------------------------------------------------------
// Figure 12: receiving SpeNotiRlyMsg

void JoinProtocol::on_spe_noti_rly(const SpeNotiRlyMsg& m) {
  if (reject_stale_reply()) return;
  q_spe_replies_.erase(m.y);
  maybe_switch_to_s_node();
}

// ---------------------------------------------------------------------------
// Figure 13: Switch_To_S_Node

void JoinProtocol::maybe_switch_to_s_node() {
  if (core_.status == NodeStatus::kNotifying && q_replies_.empty() &&
      q_spe_replies_.empty()) {
    switch_to_s_node();
  }
}

void JoinProtocol::switch_to_s_node() {
  HCUBE_CHECK(core_.status == NodeStatus::kNotifying);
  core_.set_status(NodeStatus::kInSystem);
  core_.stats.t_end = core_.env.now();
  for (std::uint32_t i = 0; i < core_.params.num_digits; ++i)
    core_.table.set_state(i, core_.id.digit(i), NeighborState::kS);
  for (const NodeId& v : core_.table.reverse_neighbors()) {
    core_.send(v, InSysNotiMsg{});
  }
  // Answer the deferred JoinWaitMsg senders, echoing each request's own
  // generation (we are outside its handler, so the automatic stamp would
  // be wrong).
  for (const auto& [u, wgen] : q_join_waiters_) {
    const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(u));
    const Digit jd = u.digit(k);
    const NodeId* cur = core_.table.neighbor(k, jd);
    if (cur == nullptr) {
      const HostId host = core_.env.host_of(u);
      core_.table.set(k, jd, u, NeighborState::kT, host);
      core_.send_with_gen(
          u, host, JoinWaitRlyMsg{true, u, core_.table.snapshot_full()}, wgen);
    } else if (*cur == u) {
      // Deviation from Figure 13 (see header comment): already storing u is
      // a positive outcome, as in Figure 6.
      core_.send_with_gen(
          u, core_.entry_host(k, jd),
          JoinWaitRlyMsg{true, u, core_.table.snapshot_full()}, wgen);
    } else {
      if (core_.options.backups_per_entry > 0)
        core_.table.offer_backup(k, jd, u, core_.options.backups_per_entry);
      core_.send_with_gen(
          u, kNoHost,
          JoinWaitRlyMsg{false, *cur, core_.table.snapshot_full()}, wgen);
    }
  }
  q_join_waiters_.clear();
}

// ---------------------------------------------------------------------------
// Figure 14 and reverse-neighbor bookkeeping

void JoinProtocol::on_in_sys_noti(const NodeId& x) {
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(x));
  if (core_.table.holds(k, x.digit(k), x))
    core_.table.set_state(k, x.digit(k), NeighborState::kS);
}

void JoinProtocol::on_rv_ngh_noti(const NodeId& x, HostId x_host,
                                  const RvNghNotiMsg& m) {
  core_.table.add_reverse_neighbor(x);
  if (core_.status == NodeStatus::kLeaving) {
    // x started storing us while we are leaving (e.g. another node handed
    // us out as a leave-repair replacement). Tell it to repair too, so our
    // departure does not strand a dangling pointer.
    if (!leave_.has_notified(x)) leave_.send_leave_to(x);
    return;
  }
  const bool am_s = (core_.status == NodeStatus::kInSystem);
  const bool recorded_s = (m.recorded_state == NeighborState::kS);
  if (recorded_s != am_s) {
    core_.send(x, x_host,
               RvNghNotiRlyMsg{am_s ? NeighborState::kS : NeighborState::kT});
  }
}

void JoinProtocol::on_rv_ngh_noti_rly(const NodeId& y,
                                      const RvNghNotiRlyMsg& m) {
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(y));
  if (core_.table.holds(k, y.digit(k), y))
    core_.table.set_state(k, y.digit(k), m.actual_state);
}

}  // namespace hcube
