// Shared state and plumbing of a protocol node.
//
// The join, leave and repair protocol modules all operate on one NodeCore:
// the node's identity, neighbor table, environment handle, status and
// per-join statistics, plus the table-write and send helpers whose behavior
// every module must share exactly (fill_if_empty's RvNghNotiMsg
// notification, wire-size accounting). Node (core/node.h) owns the core and
// the modules and routes incoming messages to them.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "core/neighbor_table.h"
#include "ids/node_set.h"
#include "core/options.h"
#include "ids/node_id.h"
#include "util/metric.h"
#include "proto/conformance.h"
#include "proto/messages.h"
#include "sim/event_queue.h"
#include "util/host.h"

namespace hcube {

// NodeStatus now lives beside the conformance registry
// (proto/conformance.h): the registry maps (NodeStatus × MessageType) to
// handling contracts, so the proto layer owns both axes of that table.

// Canonical registry names for the JoinStats lifetime counters (the
// per-type send counters export under msg.sent.* via obs/collect).
HCUBE_METRIC(kMetricJoinWatchdogRestarts, "join.watchdog_restarts");
HCUBE_METRIC(kMetricJoinStaleRejected, "join.stale_rejected");
HCUBE_METRIC(kMetricJoinForcedDepartures, "join.forced_departures");
HCUBE_METRIC(kMetricJoinBytesSent, "join.bytes_sent");
HCUBE_METRIC(kMetricJoinSuspectedPeers, "join.suspected_peers");
HCUBE_METRIC(kMetricJoinBackoffWaits, "join.backoff_waits");
HCUBE_METRIC(kMetricJoinAdmissionDeferrals, "join.admission_deferrals");

// Per-join bookkeeping the benchmarks read out (Section 5.2 quantities),
// plus the robustness counters of the fault-tolerance extension.
struct JoinStats {
  // 32-bit per-node counters: a single node's per-incarnation message
  // counts never approach 2^32, and at scale these two arrays are live on
  // every node (160 B each saved matters at n=100k). Aggregations widen.
  std::array<std::uint32_t, kNumMessageTypes> sent{};
  std::array<std::uint32_t, kNumMessageTypes> received{};
  std::uint64_t bytes_sent = 0;
  SimTime t_begin = -1.0;  // t^b_x: when the node began joining
  SimTime t_end = -1.0;    // t^e_x: when it became an S-node
  std::uint32_t noti_level = 0;
  // Robustness extension: join attempts aborted-and-restarted by the
  // join-stall watchdog, and replies rejected because they carried the
  // generation tag of an aborted attempt.
  std::uint32_t watchdog_restarts = 0;
  std::uint64_t stale_rejected = 0;
  // Departures completed unilaterally by the leave-stall watchdog after
  // its re-notification budget ran out (see ProtocolOptions).
  std::uint32_t forced_departures = 0;
  // Misbehaving-peer hardening: peers recorded as suspects because they
  // stayed silent past a generation-tagged deadline (an unanswered
  // notification at reply-janitor expiry, or the outstanding-reply set of
  // an attempt the watchdog aborted). Counts recordings, not distinct
  // peers; lifetime counter like the other robustness stats.
  std::uint32_t suspected_peers = 0;
  // Graceful degradation (equilibrium-churn tier): watchdog restarts that
  // waited out a jittered exponential backoff before re-attempting, and —
  // on the gateway side — CpRly answers deferred because the in-flight
  // join backlog was over ProtocolOptions::overload_defer_threshold.
  std::uint32_t backoff_waits = 0;
  std::uint32_t admission_deferrals = 0;

  std::uint64_t sent_of(MessageType t) const {
    return sent[static_cast<std::size_t>(t)];
  }
  // Theorem 3 counts CpRstMsg + JoinWaitMsg; Theorems 4/5 count JoinNotiMsg.
  std::uint64_t copy_plus_wait() const {
    return sent_of(MessageType::kCpRst) + sent_of(MessageType::kJoinWait);
  }

  // Crash-recovery: the new incarnation starts its message accounting from
  // zero (Theorem 3 bounds a single join attempt, and the theorem-bound
  // tests assert per-incarnation counts). The robustness counters survive —
  // the watchdog-restart budget and the stale/forced totals describe the
  // node's whole lifetime.
  void reset_for_new_incarnation() {
    sent.fill(0);
    received.fill(0);
    bytes_sent = 0;
    noti_level = 0;
  }

  // Exports the lifetime counters under their canonical registry names.
  template <class Fn>
  void for_each_metric(Fn&& fn) const {
    fn(kMetricJoinWatchdogRestarts,
       static_cast<std::uint64_t>(watchdog_restarts));
    fn(kMetricJoinStaleRejected, stale_rejected);
    fn(kMetricJoinForcedDepartures,
       static_cast<std::uint64_t>(forced_departures));
    fn(kMetricJoinBytesSent, bytes_sent);
    fn(kMetricJoinSuspectedPeers, static_cast<std::uint64_t>(suspected_peers));
    fn(kMetricJoinBackoffWaits, static_cast<std::uint64_t>(backoff_waits));
    fn(kMetricJoinAdmissionDeferrals,
       static_cast<std::uint64_t>(admission_deferrals));
  }
};

// Environment a node runs in; implemented by Overlay. Decouples the state
// machine from transport and metrics plumbing.
class NodeEnv {
 public:
  virtual ~NodeEnv() = default;
  // Delivers body from `from` to `to` (both overlay node IDs). The host
  // arguments are pre-resolved transport endpoints when the sender has them
  // cached (kNoHost = resolve in the environment); passing them keeps the
  // steady-state send path free of NodeId hash lookups.
  // `gen` is the join-attempt generation stamped into the message envelope
  // (requests carry the sender's current generation, replies echo the
  // request's; see Message in proto/messages.h).
  virtual void send_message(const NodeId& from, const NodeId& to,
                            MessageBody body, HostId from_host = kNoHost,
                            HostId to_host = kNoHost,
                            std::uint32_t gen = 0) = 0;
  // Transport endpoint of a registered node (resolved once, then cached by
  // callers in table entries / the node's own envelope).
  virtual HostId host_of(const NodeId& id) const = 0;
  virtual SimTime now() const = 0;
  // Local timer (failure-recovery ping timeouts).
  virtual void schedule(SimTime delay_ms, std::function<void()> fn) = 0;
  // A node rejected a delivery whose (status, type) pair the conformance
  // registry does not declare (proto/conformance.h). Default: no-op;
  // Overlay aggregates network-wide totals and fans out to its observation
  // hook (which MessageTrace chains onto).
  virtual void note_conformance_reject(const NodeId& node, NodeStatus status,
                                       MessageType type) {
    (void)node;
    (void)status;
    (void)type;
  }
  // A node's lifecycle status changed (NodeCore::set_status). Fired for
  // every transition — including a re-entry into the same status, which is
  // how a watchdog-triggered attempt restart (kCopying -> kCopying with a
  // bumped generation) is observable. Default: no-op; Overlay fans out to
  // its on_status_change hook (which JoinSpanTracer chains onto).
  virtual void note_status_change(const NodeId& node, NodeStatus from,
                                  NodeStatus to, std::uint32_t attempt_gen) {
    (void)node;
    (void)from;
    (void)to;
    (void)attempt_gen;
  }
  // Environment-wide count of joins currently in flight (nodes in a joining
  // status). Gateways consult it for overload-aware admission
  // (ProtocolOptions::overload_defer_threshold); the chaos engine's
  // equilibrium probes sample it. Default: 0, i.e. never overloaded.
  virtual std::uint32_t join_backlog() const { return 0; }
  // One draw from the environment's seeded backoff-jitter stream, uniform
  // in [0.5, 1.5). Lives in the environment — NOT per node — so the whole
  // run has exactly one jitter stream, seeded by
  // ProtocolOptions::backoff_seed, and replays stay bit-identical. Default:
  // no jitter (deterministic environments that never enable backoff).
  virtual double backoff_jitter() { return 1.0; }
};

// Dense insertion-ordered set (ids/node_set.h): deterministic iteration —
// protocol loops over these sets schedule same-time events, so their order
// is part of replay determinism — and no per-element heap nodes.
using NodeIdSet = FlatNodeSet;

// The state every protocol module shares. Plain struct by design: the
// modules are the behavior, this is the data they agree on.
struct NodeCore {
  NodeCore(NodeId id_arg, const IdParams& params_arg,
           const ProtocolOptions& options_arg, NodeEnv& env_arg,
           Arena* arena = nullptr);

  NodeId id;
  IdParams params;
  ProtocolOptions options;
  NodeEnv& env;

  NodeStatus status = NodeStatus::kCopying;
  NeighborTable table;
  HostId self_host = kNoHost;  // bound by Overlay at registration
  JoinStats stats;
  // Deliveries rejected by the conformance registry check in Node::handle
  // (undeclared (status, type) pairs), counted per message type.
  ConformanceStats conformance;
  bool started = false;  // join or install started

  // Generation tags (robustness extension). attempt_gen identifies the
  // node's current join attempt; the join-stall watchdog bumps it when it
  // aborts a stuck attempt, which invalidates every reply addressed to the
  // old one. handling_gen is the generation carried by the message being
  // handled right now (set by Node::handle before dispatch); replies echo
  // it, so it propagates a request's generation back to the requester.
  std::uint32_t attempt_gen = 0;
  std::uint32_t handling_gen = 0;

  bool is_s_node() const { return status == NodeStatus::kInSystem; }

  // The one write path for `status`: records the transition and reports it
  // to the environment (Overlay -> on_status_change -> span tracer). The
  // notification fires unconditionally, same-status transitions included.
  void set_status(NodeStatus next) {
    const NodeStatus prev = status;
    status = next;
    env.note_status_change(id, prev, next, attempt_gen);
  }

  // Crash-recovery lifecycle (Node::restart): wipes the table (including
  // reverse neighbors and backups) and returns the core to its pre-join
  // state. attempt_gen deliberately survives — the rejoin bumps it past
  // every pre-crash attempt, which is what invalidates replies still in
  // flight to the old incarnation. Per-attempt message counters reset with
  // the incarnation (JoinStats::reset_for_new_incarnation); the robustness
  // counters survive, so the watchdog-restart budget does not reset.
  void reset_for_restart();

  // ---- transport helpers ----
  // Counts the message in stats and hands it to the environment, stamping
  // the generation: reply-like types (echoes_request_gen) carry
  // handling_gen, everything else attempt_gen. The three-argument form
  // resolves the destination in the environment (one hash); the
  // four-argument form uses a pre-resolved endpoint (none). send_with_gen
  // overrides the stamp — for replies sent outside the request's handler
  // (the deferred JoinWaitRlyMsg of Figure 13).
  void send(const NodeId& to, MessageBody body);
  void send(const NodeId& to, HostId to_host, MessageBody body);
  void send_with_gen(const NodeId& to, HostId to_host, MessageBody body,
                     std::uint32_t gen);

  // ---- table write helpers ----
  // Fills (level, digit) := node if empty; sends RvNghNotiMsg to the node.
  // Returns true if the entry was filled by this call.
  bool fill_if_empty(std::uint32_t level, std::uint32_t digit,
                     const NodeId& node, NeighborState state);
  // Copy-phase assignment (Figure 5): entries at a level being copied are
  // empty by construction; checks that and fills.
  void copy_entry(std::uint32_t level, std::uint32_t digit,
                  const NodeId& node, NeighborState state);

  // Cached endpoint of the (level, digit) neighbor, resolving and memoizing
  // on first use (entries installed by the direct builder start unresolved).
  HostId entry_host(std::uint32_t level, std::uint32_t digit);
};

}  // namespace hcube
