#include "core/node_core.h"

#include "util/check.h"

namespace hcube {

const char* to_string(SnapshotPolicy p) {
  switch (p) {
    case SnapshotPolicy::kFullTable: return "full-table";
    case SnapshotPolicy::kPartialLevels: return "partial-levels";
    case SnapshotPolicy::kBitVector: return "bit-vector";
  }
  return "?";
}

NodeCore::NodeCore(NodeId id_arg, const IdParams& params_arg,
                   const ProtocolOptions& options_arg, NodeEnv& env_arg,
                   Arena* arena)
    : id(id_arg),
      params(params_arg),
      options(options_arg),
      env(env_arg),
      table(params, id, arena) {}

void NodeCore::reset_for_restart() {
  // In-place wipe: the table's column storage (possibly arena memory that
  // is never returned) is reused by the new incarnation.
  table.reset();
  // Direct write, not set_status: the kCrashed -> kCopying flip is part of
  // reviving the core, not a protocol transition. The span tracer sees the
  // new incarnation when the rejoin's begin_attempt() reports kCopying.
  status = NodeStatus::kCopying;
  started = false;
  handling_gen = 0;
  stats.t_end = -1.0;
  stats.reset_for_new_incarnation();
  // A builder-installed member never joined, so its generation is still 0
  // and the rejoin would run at generation 1 — the join protocol's marker
  // for a virgin first attempt whose ID provably appears in no table. This
  // node's ID is all over the network; make the rejoin look like what it
  // is, a restarted attempt (generation >= 2 after start_join's bump).
  if (attempt_gen == 0) attempt_gen = 1;
}

void NodeCore::send(const NodeId& to, MessageBody body) {
  send_with_gen(to, kNoHost, std::move(body), 0);
}

void NodeCore::send(const NodeId& to, HostId to_host, MessageBody body) {
  send_with_gen(to, to_host, std::move(body), 0);
}

void NodeCore::send_with_gen(const NodeId& to, HostId to_host,
                             MessageBody body, std::uint32_t gen) {
  const MessageType t = type_of(body);
  if (gen == 0) gen = echoes_request_gen(t) ? handling_gen : attempt_gen;
  ++stats.sent[static_cast<std::size_t>(t)];
  stats.bytes_sent += wire_size_bytes(body, params);
  env.send_message(id, to, std::move(body), self_host, to_host, gen);
}

bool NodeCore::fill_if_empty(std::uint32_t level, std::uint32_t digit,
                             const NodeId& node, NeighborState state) {
  if (!table.is_empty(level, digit)) {
    // Occupied: remember the node as a redundant neighbor if configured.
    if (options.backups_per_entry > 0 && node != id)
      table.offer_backup(level, digit, node, options.backups_per_entry);
    return false;
  }
  if (node == id) {
    table.set(level, digit, node, state, self_host);
    return true;
  }
  // Resolve the neighbor's endpoint once at fill time; every later send to
  // this entry reads the cached host instead of hashing the ID.
  const HostId host = env.host_of(node);
  table.set(level, digit, node, state, host);
  // "When any node x sets N_x(i, j) = y, y != x, x needs to send a
  // RvNghNotiMsg(y, N_x(i, j).state) to y" (Section 4).
  send(node, host, RvNghNotiMsg{state});
  return true;
}

void NodeCore::copy_entry(std::uint32_t level, std::uint32_t digit,
                          const NodeId& node, NeighborState state) {
  // During copying nobody else writes our table (no other node knows us
  // yet), and each level is copied exactly once, so the entry is empty.
  HCUBE_CHECK_MSG(table.is_empty(level, digit),
                  "copy-phase entry unexpectedly filled");
  if (node == id) {
    table.set(level, digit, node, state, self_host);
    return;
  }
  const HostId host = env.host_of(node);
  table.set(level, digit, node, state, host);
  send(node, host, RvNghNotiMsg{state});
}

HostId NodeCore::entry_host(std::uint32_t level, std::uint32_t digit) {
  const HostId cached = table.host(level, digit);
  if (cached != kNoHost) return cached;
  const NodeId* node = table.neighbor(level, digit);
  HCUBE_CHECK_MSG(node != nullptr, "entry_host() of an empty entry");
  const HostId host = env.host_of(*node);
  table.memo_host(level, digit, host);
  return host;
}

}  // namespace hcube
