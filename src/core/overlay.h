// The overlay: a set of protocol nodes bound to a message transport.
//
// Owns the Node objects, maps overlay IDs to transport endpoints exactly
// once — at registration (in a deployment the IP address rides with every
// ID; here the registry plays that role) — schedules joins, and aggregates
// message metrics. Steady-state sends carry pre-resolved endpoints (the
// sender's own host and the cached host in its table entry), so the hot
// path does no NodeId hashing; the registry is consulted only for cold
// lookups (kNoHost hints, lazy resolution of builder-installed entries,
// tooling queries).
//
// The transport is a seam (net/transport.h): the convenience constructor
// builds the latency-modelled SimTransport, and any other implementation —
// e.g. the zero-latency LoopbackTransport — can be injected instead. This
// is the top-level object examples and benchmarks drive.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/node.h"
#include "core/options.h"
#include "net/transport.h"
#include "proto/messages.h"
#include "sim/event_queue.h"
#include "sim/shard_context.h"
#include "topology/latency.h"
#include "util/rng.h"

namespace hcube {

class Overlay : public NodeEnv {
 public:
  // Convenience: builds and owns a SimTransport over queue + latency.
  Overlay(const IdParams& params, const ProtocolOptions& options,
          EventQueue& queue, LatencyModel& latency);
  // Runs over a caller-provided transport (not owned). The overlay must be
  // the transport's only endpoint registrant.
  Overlay(const IdParams& params, const ProtocolOptions& options,
          Transport& transport);

  const IdParams& params() const { return params_; }
  const ProtocolOptions& options() const { return options_; }
  EventQueue& queue() { return transport_.queue(); }
  Transport& transport() { return transport_; }

  // ---- membership ----

  // Creates a node (not yet part of the network; call become_seed(),
  // NetworkBuilder installation, or start_join / schedule_join next).
  Node& add_node(const NodeId& id);

  // Transport endpoint of a node (for latency queries by tooling).
  HostId host_of(const NodeId& id) const override;

  Node* find(const NodeId& id);
  const Node* find(const NodeId& id) const;
  Node& at(const NodeId& id);
  const Node& at(const NodeId& id) const;

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }

  // The arena every node's neighbor-table columns are drawn from (see
  // util/arena.h and DESIGN.md §13); exposed for bytes/node accounting.
  const Arena& table_arena() const { return arena_; }

  // ---- joins ----

  // Creates the node and starts its join at simulated time `at`.
  Node& schedule_join(const NodeId& id, const NodeId& gateway, SimTime at);

  // Drains the event queue (the protocol quiesces by itself: every message
  // triggers finitely many others). Returns the number of events executed;
  // check all_in_system() afterwards.
  std::uint64_t run_to_quiescence(std::uint64_t max_events = UINT64_MAX);

  // True when every node is either an S-node or has gracefully departed.
  bool all_in_system() const;

  // Number of nodes that have not departed.
  std::size_t live_size() const;

  // ---- metrics ----

  // Overlay-wide counters are striped per lane slot (sim/shard_context.h):
  // protocol code increments the slot of the lane it is executing for (the
  // spare last slot during legacy single-queue runs), so sharded workers
  // never write the same counter. Readers merge; merging is deterministic
  // because each lane's sequence of increments is, and reads happen only at
  // barriers (or after a drain) in sharded runs.
  struct Totals {
    std::array<std::uint64_t, kNumMessageTypes> sent{};
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  Totals totals() const {
    Totals sum;
    for (const Totals& t : totals_) {
      for (std::size_t i = 0; i < sum.sent.size(); ++i) sum.sent[i] += t.sent[i];
      sum.messages += t.messages;
      sum.bytes += t.bytes;
    }
    return sum;
  }
  std::uint64_t sent_of(MessageType t) const {
    std::uint64_t n = 0;
    for (const Totals& lane : totals_)
      n += lane.sent[static_cast<std::size_t>(t)];
    return n;
  }

  // Network-wide deliveries rejected by the conformance registry check
  // (undeclared (status, type) pairs; see proto/conformance.h). Per-node
  // counts live in Node::conformance_stats().
  ConformanceStats conformance() const {
    ConformanceStats sum;
    for (const ConformanceStats& c : conformance_)
      for (std::size_t i = 0; i < sum.rejected.size(); ++i)
        sum.rejected[i] += c.rejected[i];
    return sum;
  }

  // ---- failure injection & recovery (extension) ----

  // Fail-stop crash: the node silently stops responding.
  void crash(const NodeId& id);

  // Crash-recovery: revives a crashed node under its original NodeId and
  // transport endpoint and re-enters the join protocol via `gateway`
  // (Node::restart; the bumped attempt generation shields the new
  // incarnation from pre-crash replies still in flight).
  void restart(const NodeId& id, const NodeId& gateway);
  void schedule_restart(const NodeId& id, const NodeId& gateway, SimTime at);

  // Drives the pull-based recovery protocol: every live S-node probes its
  // neighbors and repairs entries pointing at dead ones, repeatedly, for
  // `rounds` rounds (clustered failures can need more than one). A
  // non-positive ping_timeout_ms means ProtocolOptions::
  // repair_ping_timeout_ms. Returns the number of repair queries issued
  // (0 = nothing dead was detected).
  std::uint64_t repair_all(SimTime ping_timeout_ms = 0.0,
                           std::uint32_t rounds = 2);

  // ---- NodeEnv ----
  void send_message(const NodeId& from, const NodeId& to, MessageBody body,
                    HostId from_host = kNoHost, HostId to_host = kNoHost,
                    std::uint32_t gen = 0) override;
  SimTime now() const override { return transport_.queue().now(); }
  void schedule(SimTime delay_ms, std::function<void()> fn) override {
    transport_.queue().schedule_after(delay_ms, std::move(fn));
  }
  void note_conformance_reject(const NodeId& node, NodeStatus status,
                               MessageType type) override {
    ++conformance_[lane_scratch_slot()]
          .rejected[static_cast<std::size_t>(type)];
    if (on_conformance_reject) on_conformance_reject(node, status, type);
  }
  void note_status_change(const NodeId& node, NodeStatus from, NodeStatus to,
                          std::uint32_t attempt_gen) override {
    track_join_backlog(node, to);
    if (on_status_change) on_status_change(node, from, to, attempt_gen);
  }
  // O(1) gauge of joins in flight: maintained by a per-host counted bit on
  // every status transition, so gateways can consult it on the admission
  // hot path and the chaos engine's equilibrium probes can sample it
  // without an O(n) scan. (A node's very first status is a member
  // initializer, not a set_status call, so entry into the count happens at
  // the kCopying transition begin_attempt fires.) Per-lane deltas (signed:
  // a node may enter the count on one slot and leave it on another across
  // a mode switch) merge to the gauge; in sharded runs protocol code must
  // not read this mid-epoch (the sharded chaos runner forbids the degrade
  // options for exactly this reason), only at barriers.
  std::uint32_t join_backlog() const override {
    std::int64_t n = 0;
    for (const std::int64_t d : join_backlog_) n += d;
    return static_cast<std::uint32_t>(n);
  }
  // [0.5, 1.5) from the overlay-wide jitter stream (seeded by
  // ProtocolOptions::backoff_seed). One stream per overlay — draws happen
  // in event-execution order, which the simulator already pins, so enabling
  // backoff keeps runs bit-reproducible.
  double backoff_jitter() override { return 0.5 + backoff_rng_.next_double(); }

  // Observation hook for tests (called for every protocol message sent).
  // Chain rather than replace when attaching a second observer
  // (MessageTrace::attach does this).
  std::function<void(const NodeId& from, const NodeId& to,
                     const MessageBody& body)>
      on_message;

  // Fired for every delivery a node rejects via the conformance registry
  // (after the overlay-wide counter is bumped). Chain rather than replace,
  // as with on_message; MessageTrace::attach chains onto both.
  std::function<void(const NodeId& node, NodeStatus status, MessageType type)>
      on_conformance_reject;

  // Fired for every node lifecycle transition (NodeCore::set_status),
  // same-status re-entries included — a kCopying -> kCopying with a bumped
  // generation is a watchdog attempt restart. Chain rather than replace;
  // obs::JoinSpanTracer::attach chains onto this.
  std::function<void(const NodeId& node, NodeStatus from, NodeStatus to,
                     std::uint32_t attempt_gen)>
      on_status_change;

  // Interposition seam at the delivery boundary: consulted for every
  // message arriving at a node's transport endpoint, before Node::handle.
  // Return true to consume the delivery (the node never sees it) — the
  // interceptor may instead answer as the node, delay it, or drop it. The
  // chaos layer's AdversaryEngine (chaos/adversary.h) installs its
  // misbehavior profiles here so honest protocol code stays untouched;
  // unset (the default) the delivery path is byte-identical to before the
  // seam existed. Chain rather than replace when attaching a second
  // interceptor.
  std::function<bool(Node& node, HostId from, const Message& msg)>
      delivery_interceptor;

  // Failure injection for tests: messages for which the filter returns true
  // are silently lost. The protocol assumes reliable delivery (assumption
  // (iii) in Section 3.1); this hook exists to demonstrate what that
  // assumption protects against and that the consistency checker detects
  // the resulting damage.
  void set_drop_filter(
      std::function<bool(const NodeId& from, const NodeId& to,
                         const MessageBody& body)>
          filter);

 private:
  // Flips the node's counted bit when it enters/leaves a joining status and
  // keeps join_backlog_ equal to the number of set bits.
  void track_join_backlog(const NodeId& node, NodeStatus to);

  IdParams params_;
  ProtocolOptions options_;
  std::unique_ptr<Transport> owned_transport_;  // convenience ctor only
  Transport& transport_;
  // Backing store for every node's neighbor-table columns. Declared before
  // nodes_ for the usual member-order reason, though nothing in a Node's
  // destructor touches column memory.
  Arena arena_;
  // nodes_ is dense, indexed by HostId; registry_ resolves NodeId -> host
  // as a dense array indexed by the ID's interner ref (no hashing even on
  // cold lookups). kNoHost = that ref is not a member of this overlay.
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<HostId> registry_;
  // Lane-striped counters (one slot per possible lane + the legacy spare;
  // see the metrics comment above). A few KB per overlay, paid once.
  std::array<Totals, kMaxShardLanes + 1> totals_;
  std::array<ConformanceStats, kMaxShardLanes + 1> conformance_;
  std::array<std::int64_t, kMaxShardLanes + 1> join_backlog_{};
  // Per-host counted bits backing join_backlog(); grows with nodes_ in
  // add_node. uint8_t, not vector<bool>: neighboring hosts may live on
  // different lanes, and bit-packing would make their flips race.
  std::vector<std::uint8_t> join_counted_;
  // Overlay-wide backoff-jitter stream (see backoff_jitter).
  Rng backoff_rng_;
};

}  // namespace hcube
