#include "core/repair_protocol.h"

#include <vector>

#include "util/check.h"

namespace hcube {

void RepairProtocol::start_repair(SimTime ping_timeout_ms) {
  HCUBE_CHECK_MSG(core_.status == NodeStatus::kInSystem,
                  "repair runs on settled S-nodes");
  if (ping_timeout_ms <= 0.0)
    ping_timeout_ms = core_.options.repair_ping_timeout_ms;
  HCUBE_CHECK(ping_timeout_ms > 0.0);
  repair_timeout_ms_ = ping_timeout_ms;
  ++ping_generation_;
  const std::uint64_t generation = ping_generation_;
  // Probe both stored neighbors (their death leaves a hole in our table)
  // and reverse neighbors (their death leaves a stale registration that a
  // later leave would wait on forever).
  NodeIdSet probe_set;
  for (const NodeId& u : core_.table.distinct_neighbors())
    probe_set.insert(u);
  for (const NodeId& v : core_.table.reverse_neighbors()) {
    probe_set.insert(v);
  }
  for (const NodeId& u : probe_set) {
    pending_pings_.put(u, generation);
    core_.send(u, PingMsg{});
    core_.env.schedule(ping_timeout_ms, [this, u, generation] {
      on_ping_timeout(u, generation);
    });
  }
}

void RepairProtocol::on_ping_timeout(const NodeId& u,
                                     std::uint64_t generation) {
  const std::uint64_t* pending = pending_pings_.find(u);
  if (pending == nullptr || *pending != generation)
    return;  // answered, or a newer probe superseded this one
  pending_pings_.erase(u);
  // u is presumed dead. It occupies exactly one entry of our table:
  // (k, u[k]) with k = |csuf|.
  core_.table.remove_reverse_neighbor(u);
  const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(u));
  const Digit jd = u.digit(k);
  core_.table.purge_backup(k, jd, u);
  if (core_.table.holds(k, jd, u)) begin_entry_repair(k, jd, u);
}

void RepairProtocol::begin_entry_repair(std::uint32_t level,
                                        std::uint32_t digit,
                                        const NodeId& dead) {
  core_.table.clear(level, digit);
  core_.table.purge_backup(level, digit, dead);
  // A remembered redundant neighbor is the fastest repair — promote it and
  // probe it immediately (backups are not reverse-tracked, so it may be
  // dead itself; the probe's timeout re-enters this repair if so).
  const NodeId promoted = core_.table.take_first_backup(level, digit);
  if (promoted.is_valid()) {
    core_.fill_if_empty(level, digit, promoted, NeighborState::kS);
    const std::uint64_t generation = ++ping_generation_;
    pending_pings_.put(promoted, generation);
    core_.send(promoted, PingMsg{});
    core_.env.schedule(repair_timeout_ms_, [this, promoted, generation] {
      on_ping_timeout(promoted, generation);
    });
    return;
  }
  // Query every other table neighbor sharing >= level suffix digits: their
  // (level, digit) entries cover the same suffix class as ours.
  std::vector<NodeId> peers;
  for (const NodeId& z : core_.table.distinct_neighbors()) {
    if (z == dead) continue;
    if (core_.id.csuf_len(z) >= level) peers.push_back(z);
  }
  if (peers.empty()) return;  // nobody to ask; entry stays empty
  const std::uint64_t key =
      static_cast<std::uint64_t>(level) << 32 | digit;
  pending_repairs_[key] = RepairState{peers.size(), dead};
  for (const NodeId& z : peers) {
    core_.send(z, RepairQueryMsg{static_cast<std::uint8_t>(level),
                                 static_cast<std::uint8_t>(digit)});
  }
}

void RepairProtocol::on_pong(const NodeId& u) {
  pending_pings_.erase(u);
  // A validated repair candidate answered its probe: it is alive, install
  // it if the slot is still vacant (another reply round or an AnnounceMsg
  // may have filled it meanwhile).
  const Validation* v = pending_validations_.find(u);
  if (v != nullptr) {
    if (core_.table.is_empty(v->level, v->digit))
      core_.fill_if_empty(v->level, v->digit, u, NeighborState::kS);
    pending_validations_.erase(u);
  }
}

void RepairProtocol::on_validation_timeout(const NodeId& candidate,
                                           std::uint64_t generation) {
  const Validation* v = pending_validations_.find(candidate);
  if (v == nullptr || v->generation != generation) return;
  // The offered candidate never answered: presumably as dead as the node
  // it was meant to replace (a stale-table responder serving from a frozen
  // snapshot). Leave the entry empty — the next repair round or a
  // neighbor's AnnounceMsg fills it from live state.
  pending_validations_.erase(candidate);
}

void RepairProtocol::reset() {
  // Outstanding ping timeouts and repair replies reference generations /
  // conversations that no longer exist in these maps; when they fire or
  // arrive they find nothing and return.
  pending_pings_.clear();
  pending_repairs_.clear();
  pending_validations_.clear();
  repair_timeout_ms_ = core_.options.repair_ping_timeout_ms;
}

void RepairProtocol::announce_table() {
  HCUBE_CHECK_MSG(core_.status == NodeStatus::kInSystem,
                  "announce runs on settled S-nodes");
  NodeIdSet targets;
  for (const NodeId& u : core_.table.distinct_neighbors()) targets.insert(u);
  for (const NodeId& v : core_.table.reverse_neighbors()) {
    targets.insert(v);
  }
  const TableSnapshot snap = core_.table.snapshot_full();
  for (const NodeId& u : targets) core_.send(u, AnnounceMsg{snap});
}

void RepairProtocol::on_announce(const NodeId& x, const AnnounceMsg& m) {
  bool sender_stores_us = false;
  for (const SnapshotEntry& e : m.table.entries) {
    if (e.node == core_.id) {
      sender_stores_us = true;
      continue;
    }
    const auto k = static_cast<std::uint32_t>(core_.id.csuf_len(e.node));
    core_.fill_if_empty(k, e.node.digit(k), e.node, e.state);
  }
  // AnnounceMsg carries the sender's full table, so it is also an exact
  // statement of whether x stores us — reconcile our reverse-neighbor
  // registration in both directions. This is what re-links a crash-
  // restarted node with its pre-crash storers (their announcements name
  // it) and what unregisters a peer that vacated our entry while a
  // partition made us look dead to it.
  if (sender_stores_us) {
    core_.table.add_reverse_neighbor(x);
    if (core_.status == NodeStatus::kLeaving && !leave_.has_notified(x)) {
      // Same cross-protocol edge as RvNghNotiMsg during a leave: a storer
      // we did not know about must be told to repair before we depart.
      leave_.send_leave_to(x);
    }
  } else {
    core_.table.remove_reverse_neighbor(x);
  }
}

void RepairProtocol::on_repair_query(const NodeId& x, HostId x_host,
                                     const RepairQueryMsg& m) {
  RepairRlyMsg reply;
  reply.level = m.level;
  reply.digit = m.digit;
  // Only meaningful if we share at least `level` digits with the asker —
  // then our (level, digit) entry covers the asker's class too.
  if (core_.id.csuf_len(x) >= m.level) {
    const NodeId* entry = core_.table.neighbor(m.level, m.digit);
    if (entry != nullptr) reply.candidate = *entry;
  }
  core_.send(x, x_host, reply);
}

void RepairProtocol::on_repair_rly(const NodeId& z, const RepairRlyMsg& m) {
  (void)z;
  const std::uint64_t key =
      static_cast<std::uint64_t>(m.level) << 32 | m.digit;
  auto it = pending_repairs_.find(key);
  if (it == pending_repairs_.end()) return;  // already repaired / stale
  HCUBE_CHECK(it->second.replies_expected > 0);
  --it->second.replies_expected;
  const bool exhausted = (it->second.replies_expected == 0);
  if (m.candidate.is_valid() && m.candidate != core_.id &&
      m.candidate != it->second.dead &&
      core_.table.is_empty(m.level, m.digit)) {
    if (!core_.options.validate_repair_candidates) {
      core_.fill_if_empty(m.level, m.digit, m.candidate, NeighborState::kS);
      pending_repairs_.erase(it);
      return;
    }
    // Hardened path: probe before installing — the replier may be serving
    // from a stale snapshot and its candidate long dead. The repair
    // conversation stays open (decremented, not erased) so replies naming
    // other candidates can race this validation; whichever candidate pongs
    // first with the slot still empty wins.
    if (!pending_validations_.contains(m.candidate)) {
      const std::uint64_t generation = ++ping_generation_;
      pending_validations_.put(
          m.candidate, Validation{m.level, m.digit, generation});
      core_.send(m.candidate, PingMsg{});
      core_.env.schedule(
          repair_timeout_ms_, [this, c = m.candidate, generation] {
            on_validation_timeout(c, generation);
          });
    }
  }
  if (exhausted) pending_repairs_.erase(it);
}

}  // namespace hcube
