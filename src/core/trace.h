// Structured message tracing.
//
// A MessageTrace attaches to an Overlay's observation hook and records
// every protocol message into a bounded ring buffer (oldest records are
// dropped first, with a drop counter — tracing must never grow without
// bound under a million-message soak). Tests and debugging sessions can
// then ask "what did node x send?", "when was the first JoinNotiMsg?", or
// dump a readable transcript.
//
// Two observation points are available. attach() sees protocol-level sends
// (one per NodeCore::send, before any transport behavior). attach_wire()
// sees transport-level emissions; attached to the transport *below* a
// ReliableTransport it additionally counts retransmissions and RelAckMsg
// traffic, which never pass the protocol-level hook.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/overlay.h"
#include "proto/messages.h"

namespace hcube {

struct TraceRecord {
  SimTime time;
  NodeId from;
  NodeId to;
  MessageType type;
  std::size_t wire_bytes;
};

class MessageTrace {
 public:
  explicit MessageTrace(std::size_t capacity = 1 << 16);

  // Subscribes to the overlay's on_message hook, chaining any previously
  // installed observer (it keeps firing, before the trace records). The
  // trace must outlive the overlay's use of the hook.
  void attach(Overlay& overlay);

  // Subscribes to a transport's on_send hook (chaining as above) and counts
  // every wire-level emission per message type — including duplicates the
  // reliable layer retransmits and the RelAckMsg stream, when attached to
  // the transport underneath a ReliableTransport. Counts only; wire
  // emissions are not recorded into the ring buffer.
  void attach_wire(Transport& transport);

  void record(SimTime time, const NodeId& from, const NodeId& to,
              MessageType type, std::size_t wire_bytes);

  std::size_t size() const { return records_.size(); }
  std::size_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }
  void clear();

  // Snapshot queries (records in arrival order).
  std::vector<TraceRecord> all() const;
  std::vector<TraceRecord> involving(const NodeId& node) const;
  std::vector<TraceRecord> of_type(MessageType type) const;
  std::uint64_t count_of(MessageType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }
  std::uint64_t wire_count_of(MessageType type) const {
    return wire_counts_[static_cast<std::size_t>(type)];
  }
  std::uint64_t total_bytes() const { return total_bytes_; }

  // Conformance rejections observed since attach(): deliveries some node
  // dropped because the registry (proto/conformance.h) declares no contract
  // for the observed (status, type) pair. Fed by the overlay's
  // on_conformance_reject hook, which attach() chains onto.
  const ConformanceStats& conformance() const { return conformance_; }
  std::uint64_t conformance_rejects() const {
    return conformance_.total_rejected();
  }

  // Human-readable transcript of the most recent `max_lines` records.
  std::string to_string(const IdParams& params,
                        std::size_t max_lines = 50) const;

 private:
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
  std::size_t dropped_ = 0;
  std::array<std::uint64_t, kNumMessageTypes> counts_{};
  std::array<std::uint64_t, kNumMessageTypes> wire_counts_{};
  std::uint64_t total_bytes_ = 0;
  ConformanceStats conformance_;
};

}  // namespace hcube
