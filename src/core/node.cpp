#include "core/node.h"

#include <algorithm>

#include "util/check.h"

namespace hcube {
namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

const char* to_string(NodeStatus s) {
  switch (s) {
    case NodeStatus::kCopying: return "copying";
    case NodeStatus::kWaiting: return "waiting";
    case NodeStatus::kNotifying: return "notifying";
    case NodeStatus::kInSystem: return "in_system";
    case NodeStatus::kLeaving: return "leaving";
    case NodeStatus::kDeparted: return "departed";
    case NodeStatus::kCrashed: return "crashed";
  }
  return "?";
}

const char* to_string(SnapshotPolicy p) {
  switch (p) {
    case SnapshotPolicy::kFullTable: return "full-table";
    case SnapshotPolicy::kPartialLevels: return "partial-levels";
    case SnapshotPolicy::kBitVector: return "bit-vector";
  }
  return "?";
}

Node::Node(NodeId id, const IdParams& params, const ProtocolOptions& options,
           NodeEnv& env)
    : id_(std::move(id)),
      params_(params),
      options_(options),
      env_(env),
      table_(params, id_) {}

void Node::send(const NodeId& to, MessageBody body) {
  ++stats_.sent[static_cast<std::size_t>(type_of(body))];
  stats_.bytes_sent += wire_size_bytes(body, params_);
  env_.send_message(id_, to, std::move(body));
}

// ---------------------------------------------------------------------------
// Construction paths for members of the initial network V

void Node::become_seed() {
  HCUBE_CHECK_MSG(!started_, "node already started");
  started_ = true;
  // Section 6.1: N_x(i, x[i]) = x with state S for all i; everything else
  // null (the network has exactly one node, so all other suffix sets are
  // empty and Definition 3.8(b) demands null).
  for (std::uint32_t i = 0; i < params_.num_digits; ++i)
    table_.set(i, id_.digit(i), id_, NeighborState::kS);
  status_ = NodeStatus::kInSystem;
  stats_.t_begin = stats_.t_end = env_.now();
}

void Node::install_entry(std::uint32_t level, std::uint32_t digit,
                         const NodeId& neighbor) {
  HCUBE_CHECK_MSG(!started_, "cannot install entries after start");
  table_.set(level, digit, neighbor, NeighborState::kS);
}

void Node::finish_install() {
  HCUBE_CHECK_MSG(!started_, "node already started");
  started_ = true;
  for (std::uint32_t i = 0; i < params_.num_digits; ++i)
    table_.set(i, id_.digit(i), id_, NeighborState::kS);
  status_ = NodeStatus::kInSystem;
  stats_.t_begin = stats_.t_end = env_.now();
}

void Node::install_reverse_neighbor(const NodeId& v, EntryRef where) {
  table_.add_reverse_neighbor(v, where);
}

void Node::rebind_entry(std::uint32_t level, std::uint32_t digit,
                        const NodeId& node) {
  HCUBE_CHECK_MSG(status_ == NodeStatus::kInSystem,
                  "optimization only applies to S-nodes");
  HCUBE_CHECK_MSG(!table_.is_empty(level, digit),
                  "optimization must not fill empty entries");
  table_.set(level, digit, node, NeighborState::kS);
}

void Node::drop_reverse_neighbor(const NodeId& v) {
  table_.remove_reverse_neighbor(v);
}

// ---------------------------------------------------------------------------
// Table write helpers

bool Node::fill_if_empty(std::uint32_t level, std::uint32_t digit,
                         const NodeId& node, NeighborState state) {
  if (!table_.is_empty(level, digit)) {
    // Occupied: remember the node as a redundant neighbor if configured.
    if (options_.backups_per_entry > 0 && node != id_)
      table_.offer_backup(level, digit, node, options_.backups_per_entry);
    return false;
  }
  table_.set(level, digit, node, state);
  // "When any node x sets N_x(i, j) = y, y != x, x needs to send a
  // RvNghNotiMsg(y, N_x(i, j).state) to y" (Section 4).
  if (node != id_) send(node, RvNghNotiMsg{state});
  return true;
}

void Node::copy_entry(std::uint32_t level, std::uint32_t digit,
                      const NodeId& node, NeighborState state) {
  // During copying nobody else writes our table (no other node knows us
  // yet), and each level is copied exactly once, so the entry is empty.
  HCUBE_CHECK_MSG(table_.is_empty(level, digit),
                  "copy-phase entry unexpectedly filled");
  table_.set(level, digit, node, state);
  if (node != id_) send(node, RvNghNotiMsg{state});
}

// ---------------------------------------------------------------------------
// Figure 5: status copying

void Node::start_join(const NodeId& g0) {
  HCUBE_CHECK_MSG(!started_, "node already started");
  HCUBE_CHECK_MSG(g0 != id_, "cannot join via self");
  started_ = true;
  stats_.t_begin = env_.now();
  status_ = NodeStatus::kCopying;
  copy_level_ = 0;
  copy_from_ = g0;
  send(g0, CpRstMsg{});
}

void Node::on_cp_rly(const NodeId& g, const CpRlyMsg& msg) {
  HCUBE_CHECK(status_ == NodeStatus::kCopying);
  HCUBE_CHECK(g == copy_from_);

  // Copy level-i neighbors of g into level-i of our table.
  for (const SnapshotEntry& e : msg.table.entries) {
    if (e.level != copy_level_) continue;
    if (e.node == id_) continue;  // cannot happen before we are known; guard
    copy_entry(e.level, e.digit, e.node, e.state);
  }

  // p = g; g = N_p(i, x[i]); s = N_p(i, x[i]).state; i++.
  const SnapshotEntry* next = nullptr;
  for (const SnapshotEntry& e : msg.table.entries) {
    if (e.level == copy_level_ && e.digit == id_.digit(copy_level_)) {
      next = &e;
      break;
    }
  }
  const NodeId prev = copy_from_;
  ++copy_level_;

  if (next == nullptr) {
    // No node shares the rightmost (i+1) digits with us: wait on p.
    finish_copying_and_wait(prev);
    return;
  }
  HCUBE_CHECK_MSG(next->node != id_, "joining node found in a table");
  if (next->state == NeighborState::kS) {
    HCUBE_CHECK_MSG(copy_level_ < params_.num_digits,
                    "copied all levels; duplicate ID in network?");
    copy_from_ = next->node;
    send(copy_from_, CpRstMsg{});
  } else {
    // g_{k+1} exists but is still a T-node: wait on it.
    finish_copying_and_wait(next->node);
  }
}

void Node::finish_copying_and_wait(const NodeId& target) {
  // x adds itself into its table.
  for (std::uint32_t i = 0; i < params_.num_digits; ++i)
    table_.set(i, id_.digit(i), id_, NeighborState::kT);
  status_ = NodeStatus::kWaiting;
  send(target, JoinWaitMsg{});
  q_notified_.insert(target);
  q_replies_.insert(target);
}

// ---------------------------------------------------------------------------
// Figure 6: receiving JoinWaitMsg

void Node::on_join_wait(const NodeId& x) {
  if (status_ != NodeStatus::kInSystem) {
    q_join_waiters_.insert(x);
    return;
  }
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(x));
  const Digit jd = x.digit(k);
  const NodeId* cur = table_.neighbor(k, jd);
  if (cur != nullptr && *cur != x) {
    if (options_.backups_per_entry > 0)
      table_.offer_backup(k, jd, x, options_.backups_per_entry);
    send(x, JoinWaitRlyMsg{false, *cur, table_.snapshot_full()});
  } else {
    if (cur == nullptr) table_.set(k, jd, x, NeighborState::kT);
    // We now store x, so we are a reverse neighbor of x; x learns this from
    // the positive reply (Figure 7 adds us to R_x).
    send(x, JoinWaitRlyMsg{true, x, table_.snapshot_full()});
  }
}

// ---------------------------------------------------------------------------
// Figure 7: receiving JoinWaitRlyMsg

void Node::on_join_wait_rly(const NodeId& y, const JoinWaitRlyMsg& m) {
  q_replies_.erase(y);
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(y));
  // The reply proves y is an S-node.
  if (table_.holds(k, y.digit(k), y))
    table_.set_state(k, y.digit(k), NeighborState::kS);

  if (m.positive) {
    HCUBE_CHECK(status_ == NodeStatus::kWaiting);
    status_ = NodeStatus::kNotifying;
    noti_level_ = k;
    stats_.noti_level = k;
    table_.add_reverse_neighbor(y, {k, id_.digit(k)});
  } else {
    HCUBE_CHECK_MSG(m.u != id_, "negative JoinWaitRly naming the joiner");
    send(m.u, JoinWaitMsg{});
    q_notified_.insert(m.u);
    q_replies_.insert(m.u);
  }
  check_ngh_table(m.table);
  maybe_switch_to_s_node();
}

// ---------------------------------------------------------------------------
// Figure 8: Check_Ngh_Table

void Node::check_ngh_table(const TableSnapshot& snap) {
  for (const SnapshotEntry& e : snap.entries) {
    if (e.node == id_) continue;
    const auto k = static_cast<std::uint32_t>(id_.csuf_len(e.node));
    const Digit jd = e.node.digit(k);
    fill_if_empty(k, jd, e.node, e.state);
    if (status_ == NodeStatus::kNotifying && k >= noti_level_ &&
        !q_notified_.contains(e.node)) {
      send_join_noti(e.node);
      q_notified_.insert(e.node);
      q_replies_.insert(e.node);
    }
  }
}

void Node::send_join_noti(const NodeId& target) {
  JoinNotiMsg msg;
  msg.sender_noti_level = static_cast<std::uint8_t>(noti_level_);
  switch (options_.snapshot_policy) {
    case SnapshotPolicy::kFullTable:
      msg.table = table_.snapshot_full();
      break;
    case SnapshotPolicy::kPartialLevels:
    case SnapshotPolicy::kBitVector: {
      // §6.2: levels noti_level .. |csuf(x, y)| suffice.
      const auto k = static_cast<std::uint32_t>(id_.csuf_len(target));
      msg.table = table_.snapshot(std::min(noti_level_, k), k);
      if (options_.snapshot_policy == SnapshotPolicy::kBitVector)
        msg.filled = table_.filled_bitvec();
      break;
    }
  }
  send(target, std::move(msg));
}

// ---------------------------------------------------------------------------
// Figure 9: receiving JoinNotiMsg

JoinNotiRlyMsg Node::build_join_noti_rly(bool positive, bool flag,
                                         const JoinNotiMsg& request) const {
  JoinNotiRlyMsg reply;
  reply.positive = positive;
  reply.flag = flag;
  if (options_.snapshot_policy == SnapshotPolicy::kBitVector &&
      request.filled.has_value()) {
    // §6.2: below the requester's notification level include only entries
    // it lacks; at and above it include everything (the requester must
    // discover nodes to notify there even where its entries are filled).
    const BitVec& filled = *request.filled;
    table_.for_each_filled([&](std::uint32_t i, std::uint32_t j,
                               const NodeId& node, NeighborState state) {
      const std::size_t bit = static_cast<std::size_t>(i) * params_.base + j;
      if (i >= request.sender_noti_level ||
          bit >= filled.size() || !filled.get(bit)) {
        reply.table.add(static_cast<std::uint8_t>(i),
                        static_cast<std::uint8_t>(j), node, state);
      }
    });
  } else {
    reply.table = table_.snapshot_full();
  }
  return reply;
}

void Node::on_join_noti(const NodeId& x, const JoinNotiMsg& m) {
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(x));
  const Digit jd = x.digit(k);
  bool flag = false;
  fill_if_empty(k, jd, x, NeighborState::kT);
  // Does x's table (as sent) hold us at (k, y[k])? If not and we are an
  // S-node, set the flag so x announces us to the occupant (Figure 10).
  const Digit our_digit = id_.digit(k);
  bool x_has_us = false;
  for (const SnapshotEntry& e : m.table.entries) {
    if (e.level == k && e.digit == our_digit && e.node == id_) {
      x_has_us = true;
      break;
    }
  }
  if (!x_has_us && status_ == NodeStatus::kInSystem) flag = true;

  const bool positive = table_.holds(k, jd, x);
  send(x, build_join_noti_rly(positive, flag, m));
  check_ngh_table(m.table);
}

// ---------------------------------------------------------------------------
// Figure 10: receiving JoinNotiRlyMsg

void Node::on_join_noti_rly(const NodeId& y, const JoinNotiRlyMsg& m) {
  q_replies_.erase(y);
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(y));
  if (m.positive) table_.add_reverse_neighbor(y, {k, id_.digit(k)});
  if (m.flag && k > noti_level_ && !q_spe_notified_.contains(y)) {
    const NodeId* u1 = table_.neighbor(k, y.digit(k));
    HCUBE_CHECK_MSG(u1 != nullptr && *u1 != y,
                    "flagged entry must hold a competitor node");
    send(*u1, SpeNotiMsg{id_, y});
    q_spe_notified_.insert(y);
    q_spe_replies_.insert(y);
  }
  check_ngh_table(m.table);
  maybe_switch_to_s_node();
}

// ---------------------------------------------------------------------------
// Figure 11: receiving SpeNotiMsg

void Node::on_spe_noti(const SpeNotiMsg& m) {
  HCUBE_CHECK(m.y != id_);  // the forwarding chain never reaches y itself
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(m.y));
  const Digit jd = m.y.digit(k);
  fill_if_empty(k, jd, m.y, NeighborState::kS);
  if (!table_.holds(k, jd, m.y)) {
    send(*table_.neighbor(k, jd), SpeNotiMsg{m.x, m.y});
  } else {
    send(m.x, SpeNotiRlyMsg{m.x, m.y});
  }
}

// ---------------------------------------------------------------------------
// Figure 12: receiving SpeNotiRlyMsg

void Node::on_spe_noti_rly(const SpeNotiRlyMsg& m) {
  q_spe_replies_.erase(m.y);
  maybe_switch_to_s_node();
}

// ---------------------------------------------------------------------------
// Figure 13: Switch_To_S_Node

void Node::maybe_switch_to_s_node() {
  if (status_ == NodeStatus::kNotifying && q_replies_.empty() &&
      q_spe_replies_.empty()) {
    switch_to_s_node();
  }
}

void Node::switch_to_s_node() {
  HCUBE_CHECK(status_ == NodeStatus::kNotifying);
  status_ = NodeStatus::kInSystem;
  stats_.t_end = env_.now();
  for (std::uint32_t i = 0; i < params_.num_digits; ++i)
    table_.set_state(i, id_.digit(i), NeighborState::kS);
  for (const auto& [v, where] : table_.reverse_neighbors()) {
    (void)where;
    send(v, InSysNotiMsg{});
  }
  // Answer the deferred JoinWaitMsg senders.
  for (const NodeId& u : q_join_waiters_) {
    const auto k = static_cast<std::uint32_t>(id_.csuf_len(u));
    const Digit jd = u.digit(k);
    const NodeId* cur = table_.neighbor(k, jd);
    if (cur == nullptr) {
      table_.set(k, jd, u, NeighborState::kT);
      send(u, JoinWaitRlyMsg{true, u, table_.snapshot_full()});
    } else if (*cur == u) {
      // Deviation from Figure 13 (see header comment): already storing u is
      // a positive outcome, as in Figure 6.
      send(u, JoinWaitRlyMsg{true, u, table_.snapshot_full()});
    } else {
      if (options_.backups_per_entry > 0)
        table_.offer_backup(k, jd, u, options_.backups_per_entry);
      send(u, JoinWaitRlyMsg{false, *cur, table_.snapshot_full()});
    }
  }
  q_join_waiters_.clear();
}

// ---------------------------------------------------------------------------
// Figure 14 and reverse-neighbor bookkeeping

void Node::on_in_sys_noti(const NodeId& x) {
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(x));
  if (table_.holds(k, x.digit(k), x))
    table_.set_state(k, x.digit(k), NeighborState::kS);
}

void Node::on_rv_ngh_noti(const NodeId& x, const RvNghNotiMsg& m) {
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(x));
  table_.add_reverse_neighbor(x, {k, id_.digit(k)});
  if (status_ == NodeStatus::kLeaving) {
    // x started storing us while we are leaving (e.g. another node handed
    // us out as a leave-repair replacement). Tell it to repair too, so our
    // departure does not strand a dangling pointer.
    if (!leave_notified_.contains(x)) send_leave_to(x);
    return;
  }
  const bool am_s = (status_ == NodeStatus::kInSystem);
  const bool recorded_s = (m.recorded_state == NeighborState::kS);
  if (recorded_s != am_s) {
    send(x, RvNghNotiRlyMsg{am_s ? NeighborState::kS : NeighborState::kT});
  }
}

void Node::on_rv_ngh_noti_rly(const NodeId& y, const RvNghNotiRlyMsg& m) {
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(y));
  if (table_.holds(k, y.digit(k), y))
    table_.set_state(k, y.digit(k), m.actual_state);
}

// ---------------------------------------------------------------------------
// Leave protocol (extension)

void Node::send_leave_to(const NodeId& v) {
  // v stores us at entry (k, id_[k]), whose class is our (k+1)-digit
  // suffix. Candidates are ALL our table rows at levels >= k+1: every such
  // entry shares >= k+1 digits with us, and if any other member y of the
  // class exists, our entry (|csuf(us, y)|, y-digit) is non-null and != us
  // by consistency (a). The level-(k+1) row alone is NOT enough — members
  // hiding behind our own level-(k+1) digit only appear in deeper rows.
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(v));
  LeaveMsg msg;
  if (k + 1 < params_.num_digits)
    msg.candidates = table_.snapshot(k + 1, params_.num_digits - 1);
  send(v, std::move(msg));
  leave_notified_.insert(v);
  ++leave_acks_pending_;
}

void Node::start_leave() {
  HCUBE_CHECK_MSG(status_ == NodeStatus::kInSystem,
                  "only an S-node may leave gracefully");
  status_ = NodeStatus::kLeaving;
  for (const auto& [v, where] : table_.reverse_neighbors()) {
    (void)where;
    send_leave_to(v);
  }
  for (const NodeId& y : table_.distinct_neighbors()) send(y, NghDropMsg{});
  if (leave_acks_pending_ == 0) status_ = NodeStatus::kDeparted;
}

void Node::on_leave(const NodeId& x, const LeaveMsg& m) {
  // x no longer stores us.
  table_.remove_reverse_neighbor(x);
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(x));
  const Digit jd = x.digit(k);
  if (status_ == NodeStatus::kLeaving) {
    // We are on the way out ourselves: our table will never be read again,
    // and repairing it would register us as a fresh reverse neighbor of the
    // replacement — a pointer that would dangle the moment we depart.
    send(x, LeaveRlyMsg{});
    return;
  }
  // The leaver is no longer a valid redundant neighbor either. (Backups
  // are repaired from the LeaveMsg candidates, not promoted: a remembered
  // backup may itself have left since — backups are not reverse-tracked.)
  table_.purge_backup(k, jd, x);
  if (table_.holds(k, jd, x)) {
    const SnapshotEntry* replacement = nullptr;
    for (const SnapshotEntry& e : m.candidates.entries) {
      if (e.node == x) continue;  // the leaver itself
      // Candidates all share the leaver's (k+1)-digit suffix, which equals
      // our entry's desired suffix; double-check defensively.
      if (e.node.csuf_len(id_) >= k && e.node.digit(k) == jd) {
        replacement = &e;
        if (e.state == NeighborState::kS) break;  // prefer a settled node
      }
    }
    if (replacement != nullptr) {
      table_.set(k, jd, replacement->node, replacement->state);
      send(replacement->node, RvNghNotiMsg{replacement->state});
    } else {
      // The leaver was the last member of the entry's class: null is now
      // the consistent value (Definition 3.8(b)).
      table_.clear(k, jd);
    }
  }
  send(x, LeaveRlyMsg{});
}

void Node::on_leave_rly(const NodeId& v) {
  HCUBE_CHECK(status_ == NodeStatus::kLeaving);
  HCUBE_CHECK(leave_acks_pending_ > 0);
  (void)v;
  if (--leave_acks_pending_ == 0) status_ = NodeStatus::kDeparted;
}

void Node::on_ngh_drop(const NodeId& x) {
  table_.remove_reverse_neighbor(x);
}

// ---------------------------------------------------------------------------
// Failure recovery (extension)

void Node::start_repair(SimTime ping_timeout_ms) {
  HCUBE_CHECK_MSG(status_ == NodeStatus::kInSystem,
                  "repair runs on settled S-nodes");
  HCUBE_CHECK(ping_timeout_ms > 0.0);
  repair_timeout_ms_ = ping_timeout_ms;
  ++ping_generation_;
  const std::uint64_t generation = ping_generation_;
  // Probe both stored neighbors (their death leaves a hole in our table)
  // and reverse neighbors (their death leaves a stale registration that a
  // later leave would wait on forever).
  IdSet probe_set;
  for (const NodeId& u : table_.distinct_neighbors()) probe_set.insert(u);
  for (const auto& [v, where] : table_.reverse_neighbors()) {
    (void)where;
    probe_set.insert(v);
  }
  for (const NodeId& u : probe_set) {
    pending_pings_[u] = generation;
    send(u, PingMsg{});
    env_.schedule(ping_timeout_ms,
                  [this, u, generation] { on_ping_timeout(u, generation); });
  }
}

void Node::on_ping_timeout(const NodeId& u, std::uint64_t generation) {
  auto it = pending_pings_.find(u);
  if (it == pending_pings_.end() || it->second != generation)
    return;  // answered, or a newer probe superseded this one
  pending_pings_.erase(it);
  // u is presumed dead. It occupies exactly one entry of our table:
  // (k, u[k]) with k = |csuf|.
  table_.remove_reverse_neighbor(u);
  const auto k = static_cast<std::uint32_t>(id_.csuf_len(u));
  const Digit jd = u.digit(k);
  table_.purge_backup(k, jd, u);
  if (table_.holds(k, jd, u)) begin_entry_repair(k, jd, u);
}

void Node::begin_entry_repair(std::uint32_t level, std::uint32_t digit,
                              const NodeId& dead) {
  table_.clear(level, digit);
  table_.purge_backup(level, digit, dead);
  // A remembered redundant neighbor is the fastest repair — promote it and
  // probe it immediately (backups are not reverse-tracked, so it may be
  // dead itself; the probe's timeout re-enters this repair if so).
  const NodeId promoted = table_.take_first_backup(level, digit);
  if (promoted.is_valid()) {
    fill_if_empty(level, digit, promoted, NeighborState::kS);
    const std::uint64_t generation = ++ping_generation_;
    pending_pings_[promoted] = generation;
    send(promoted, PingMsg{});
    env_.schedule(repair_timeout_ms_, [this, promoted, generation] {
      on_ping_timeout(promoted, generation);
    });
    return;
  }
  // Query every other table neighbor sharing >= level suffix digits: their
  // (level, digit) entries cover the same suffix class as ours.
  std::vector<NodeId> peers;
  for (const NodeId& z : table_.distinct_neighbors()) {
    if (z == dead) continue;
    if (id_.csuf_len(z) >= level) peers.push_back(z);
  }
  if (peers.empty()) return;  // nobody to ask; entry stays empty
  const std::uint64_t key =
      static_cast<std::uint64_t>(level) << 32 | digit;
  pending_repairs_[key] = RepairState{peers.size(), dead};
  for (const NodeId& z : peers) {
    send(z, RepairQueryMsg{static_cast<std::uint8_t>(level),
                           static_cast<std::uint8_t>(digit)});
  }
}

void Node::on_pong(const NodeId& u) { pending_pings_.erase(u); }

void Node::announce_table() {
  HCUBE_CHECK_MSG(status_ == NodeStatus::kInSystem,
                  "announce runs on settled S-nodes");
  IdSet targets;
  for (const NodeId& u : table_.distinct_neighbors()) targets.insert(u);
  for (const auto& [v, where] : table_.reverse_neighbors()) {
    (void)where;
    targets.insert(v);
  }
  const TableSnapshot snap = table_.snapshot_full();
  for (const NodeId& u : targets) send(u, AnnounceMsg{snap});
}

void Node::on_announce(const AnnounceMsg& m) {
  for (const SnapshotEntry& e : m.table.entries) {
    if (e.node == id_) continue;
    const auto k = static_cast<std::uint32_t>(id_.csuf_len(e.node));
    fill_if_empty(k, e.node.digit(k), e.node, e.state);
  }
}

void Node::on_repair_query(const NodeId& x, const RepairQueryMsg& m) {
  RepairRlyMsg reply;
  reply.level = m.level;
  reply.digit = m.digit;
  // Only meaningful if we share at least `level` digits with the asker —
  // then our (level, digit) entry covers the asker's class too.
  if (id_.csuf_len(x) >= m.level) {
    const NodeId* entry = table_.neighbor(m.level, m.digit);
    if (entry != nullptr) reply.candidate = *entry;
  }
  send(x, reply);
}

void Node::on_repair_rly(const NodeId& z, const RepairRlyMsg& m) {
  (void)z;
  const std::uint64_t key =
      static_cast<std::uint64_t>(m.level) << 32 | m.digit;
  auto it = pending_repairs_.find(key);
  if (it == pending_repairs_.end()) return;  // already repaired / stale
  HCUBE_CHECK(it->second.replies_expected > 0);
  --it->second.replies_expected;
  const bool exhausted = (it->second.replies_expected == 0);
  if (m.candidate.is_valid() && m.candidate != id_ &&
      m.candidate != it->second.dead && table_.is_empty(m.level, m.digit)) {
    fill_if_empty(m.level, m.digit, m.candidate, NeighborState::kS);
    pending_repairs_.erase(it);
    return;
  }
  if (exhausted) pending_repairs_.erase(it);
}

// ---------------------------------------------------------------------------
// Dispatch

void Node::handle(const Message& msg) {
  if (status_ == NodeStatus::kCrashed) return;  // fail-stop: total silence
  ++stats_.received[static_cast<std::size_t>(type_of(msg.body))];
  if (status_ == NodeStatus::kDeparted) {
    const MessageType t = type_of(msg.body);
    if (t == MessageType::kLeave) {
      // Another leaver racing our departure still needs its ack; we have
      // nothing to repair anymore.
      send(msg.sender, LeaveRlyMsg{});
      return;
    }
    // Other stragglers that need no reply are tolerated (e.g. an
    // RvNghNotiMsg racing our departure); anything else demanding an answer
    // from a departed node is a protocol-usage error.
    // A ping to a departed node deliberately goes unanswered: recovery then
    // treats it as dead, which is the right outcome.
    HCUBE_CHECK_MSG(t == MessageType::kRvNghNoti ||
                        t == MessageType::kRvNghNotiRly ||
                        t == MessageType::kNghDrop ||
                        t == MessageType::kInSysNoti ||
                        t == MessageType::kLeaveRly ||
                        t == MessageType::kPing ||
                        t == MessageType::kRepairQuery ||
                        t == MessageType::kAnnounce,
                    "departed node received a message requiring a reply");
    return;
  }
  const NodeId& from = msg.sender;
  std::visit(
      Overloaded{
          [&](const CpRstMsg&) {
            // Only S-nodes are ever asked (copy targets carry state S).
            send(from, CpRlyMsg{table_.snapshot_full()});
          },
          [&](const CpRlyMsg& m) { on_cp_rly(from, m); },
          [&](const JoinWaitMsg&) { on_join_wait(from); },
          [&](const JoinWaitRlyMsg& m) { on_join_wait_rly(from, m); },
          [&](const JoinNotiMsg& m) { on_join_noti(from, m); },
          [&](const JoinNotiRlyMsg& m) { on_join_noti_rly(from, m); },
          [&](const InSysNotiMsg&) { on_in_sys_noti(from); },
          [&](const SpeNotiMsg& m) { on_spe_noti(m); },
          [&](const SpeNotiRlyMsg& m) { on_spe_noti_rly(m); },
          [&](const RvNghNotiMsg& m) { on_rv_ngh_noti(from, m); },
          [&](const RvNghNotiRlyMsg& m) { on_rv_ngh_noti_rly(from, m); },
          [&](const LeaveMsg& m) { on_leave(from, m); },
          [&](const LeaveRlyMsg&) { on_leave_rly(from); },
          [&](const NghDropMsg&) { on_ngh_drop(from); },
          [&](const PingMsg&) { send(from, PongMsg{}); },
          [&](const PongMsg&) { on_pong(from); },
          [&](const RepairQueryMsg& m) { on_repair_query(from, m); },
          [&](const RepairRlyMsg& m) { on_repair_rly(from, m); },
          [&](const AnnounceMsg& m) { on_announce(m); },
      },
      msg.body);
}

}  // namespace hcube
