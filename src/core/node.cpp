#include "core/node.h"

#include "util/check.h"

namespace hcube {
namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

Node::Node(NodeId id, const IdParams& params, const ProtocolOptions& options,
           NodeEnv& env, Arena* arena)
    : core_(id, params, options, env, arena),
      leave_(core_),
      repair_(core_, leave_),
      join_(core_, leave_) {}

// ---------------------------------------------------------------------------
// Construction paths for members of the initial network V

void Node::become_seed() {
  HCUBE_CHECK_MSG(!core_.started, "node already started");
  core_.started = true;
  // Section 6.1: N_x(i, x[i]) = x with state S for all i; everything else
  // null (the network has exactly one node, so all other suffix sets are
  // empty and Definition 3.8(b) demands null).
  for (std::uint32_t i = 0; i < core_.params.num_digits; ++i)
    core_.table.set(i, core_.id.digit(i), core_.id, NeighborState::kS,
                    core_.self_host);
  core_.set_status(NodeStatus::kInSystem);
  core_.stats.t_begin = core_.stats.t_end = core_.env.now();
}

void Node::install_entry(std::uint32_t level, std::uint32_t digit,
                         const NodeId& neighbor) {
  HCUBE_CHECK_MSG(!core_.started, "cannot install entries after start");
  core_.table.set(level, digit, neighbor, NeighborState::kS);
}

void Node::finish_install() {
  HCUBE_CHECK_MSG(!core_.started, "node already started");
  core_.started = true;
  for (std::uint32_t i = 0; i < core_.params.num_digits; ++i)
    core_.table.set(i, core_.id.digit(i), core_.id, NeighborState::kS,
                    core_.self_host);
  core_.set_status(NodeStatus::kInSystem);
  core_.stats.t_begin = core_.stats.t_end = core_.env.now();
}

void Node::install_reverse_neighbor(const NodeId& v) {
  core_.table.add_reverse_neighbor(v);
}

void Node::rebind_entry(std::uint32_t level, std::uint32_t digit,
                        const NodeId& node) {
  HCUBE_CHECK_MSG(core_.status == NodeStatus::kInSystem,
                  "optimization only applies to S-nodes");
  HCUBE_CHECK_MSG(!core_.table.is_empty(level, digit),
                  "optimization must not fill empty entries");
  core_.table.set(level, digit, node, NeighborState::kS);
}

void Node::drop_reverse_neighbor(const NodeId& v) {
  core_.table.remove_reverse_neighbor(v);
}

void Node::start_join(const NodeId& g0) {
  HCUBE_CHECK_MSG(!core_.started, "node already started");
  HCUBE_CHECK_MSG(g0 != core_.id, "cannot join via self");
  core_.started = true;
  core_.stats.t_begin = core_.env.now();
  join_.start_join(g0);
}

void Node::restart(const NodeId& gateway) {
  HCUBE_CHECK_MSG(core_.status == NodeStatus::kCrashed,
                  "restart() revives crashed nodes only");
  HCUBE_CHECK_MSG(gateway != core_.id, "cannot rejoin via self");
  core_.reset_for_restart();
  join_.reset();
  leave_.reset();
  repair_.reset();
  core_.started = true;
  core_.stats.t_begin = core_.env.now();
  join_.start_join(gateway);
}

// ---------------------------------------------------------------------------
// Dispatch

void Node::handle(HostId from_host, const Message& msg) {
  if (core_.status == NodeStatus::kCrashed)
    return;  // fail-stop: total silence
  const MessageType type = type_of(msg.body);
  ++core_.stats.received[static_cast<std::size_t>(type)];
  // The always-on conformance check: the registry (proto/conformance.h) is
  // the spec of which (status, type) pairs a node may observe. An
  // undeclared pair — a RelAckMsg leaking past the reliable-transport
  // decorator, a join reply addressed to a node that already departed — is
  // rejected before any handler runs, and counted.
  if (!conformance_allows(core_.status, type)) {
    ++core_.conformance.rejected[static_cast<std::size_t>(type)];
    core_.env.note_conformance_reject(core_.id, core_.status, type);
    return;
  }
  if (core_.status == NodeStatus::kDeparted) {
    if (type == MessageType::kLeave) {
      // Another leaver racing our departure still needs its ack; we have
      // nothing to repair anymore.
      core_.send(msg.sender, from_host, LeaveRlyMsg{});
    }
    // Every other pair the registry declares legal in kDeparted is a
    // straggler needing no action (an RvNghNotiMsg racing our departure; a
    // ping that deliberately goes unanswered so recovery treats us as
    // dead, which is the right outcome).
    return;
  }
  const NodeId& from = msg.sender;
  // Expose the envelope's generation tag to the handlers: replies sent while
  // handling this message echo it (NodeCore::send_with_gen), and the join
  // module compares it against attempt_gen to reject stale replies.
  core_.handling_gen = msg.gen;
  std::visit(
      Overloaded{
          [&](const CpRstMsg&) {
            // Only S-nodes are ever asked (copy targets carry state S).
            // Overload-aware admission (equilibrium-churn tier): when the
            // environment-wide join backlog is over the configured
            // threshold, defer the snapshot reply instead of answering
            // immediately — copy walks are the fan-out amplifier, so
            // delaying them sheds load while the backlog drains. The
            // deferred reply echoes the request's generation (captured
            // here; handling_gen will have moved on) and is skipped if we
            // stopped being an S-node meanwhile — the joiner's watchdog
            // then rotates away, exactly as for a crashed gateway.
            const std::uint32_t threshold =
                core_.options.overload_defer_threshold;
            if (threshold > 0 && core_.env.join_backlog() > threshold) {
              ++core_.stats.admission_deferrals;
              const std::uint32_t gen = core_.handling_gen;
              const NodeId requester = from;
              core_.env.schedule(core_.options.overload_defer_ms,
                                 [this, requester, from_host, gen] {
                                   if (core_.status != NodeStatus::kInSystem)
                                     return;
                                   core_.send_with_gen(
                                       requester, from_host,
                                       CpRlyMsg{core_.table.snapshot_full()},
                                       gen);
                                 });
              return;
            }
            core_.send(from, from_host, CpRlyMsg{core_.table.snapshot_full()});
          },
          [&](const CpRlyMsg& m) { join_.on_cp_rly(from, m); },
          [&](const JoinWaitMsg&) { join_.on_join_wait(from, from_host); },
          [&](const JoinWaitRlyMsg& m) { join_.on_join_wait_rly(from, m); },
          [&](const JoinNotiMsg& m) {
            join_.on_join_noti(from, from_host, m);
          },
          [&](const JoinNotiRlyMsg& m) { join_.on_join_noti_rly(from, m); },
          [&](const InSysNotiMsg&) { join_.on_in_sys_noti(from); },
          [&](const SpeNotiMsg& m) { join_.on_spe_noti(m); },
          [&](const SpeNotiRlyMsg& m) { join_.on_spe_noti_rly(m); },
          [&](const RvNghNotiMsg& m) {
            join_.on_rv_ngh_noti(from, from_host, m);
          },
          [&](const RvNghNotiRlyMsg& m) { join_.on_rv_ngh_noti_rly(from, m); },
          [&](const LeaveMsg& m) { leave_.on_leave(from, from_host, m); },
          [&](const LeaveRlyMsg&) { leave_.on_leave_rly(from); },
          [&](const NghDropMsg&) { leave_.on_ngh_drop(from); },
          [&](const PingMsg&) { core_.send(from, from_host, PongMsg{}); },
          [&](const PongMsg&) { repair_.on_pong(from); },
          [&](const RepairQueryMsg& m) {
            repair_.on_repair_query(from, from_host, m);
          },
          [&](const RepairRlyMsg& m) { repair_.on_repair_rly(from, m); },
          [&](const AnnounceMsg& m) { repair_.on_announce(from, m); },
          [&](const RelAckMsg&) {
            // Unreachable: the registry declares no legal status for
            // RelAckMsg, so the conformance check above rejects every
            // delivery (acks belong to the reliable-transport decorator).
            HCUBE_CHECK_MSG(false, "RelAckMsg reached the protocol layer");
          },
      },
      msg.body);
}

}  // namespace hcube
