// Network construction helpers.
//
// Two ways to obtain a consistent network <V, N(V)>:
//   1. build_consistent_network: omniscient direct construction from the
//      full membership (a suffix trie yields, for every node and entry, a
//      matching member in O(1) amortized). Used to erect the large initial
//      networks of the paper's simulations (n = 3096 / 7192) quickly, and
//      as a reference for what the protocol must reproduce.
//   2. The join protocol itself, per Section 6.1: seed one node, then have
//      every other node execute the join protocol (join_sequentially /
//      join_concurrently).
#pragma once

#include <vector>

#include "core/overlay.h"
#include "ids/node_id.h"
#include "util/rng.h"

namespace hcube {

// Directly installs consistent tables (including complete reverse-neighbor
// sets) for `ids` into an empty overlay. All nodes end up in_system.
// backups_per_entry > 0 additionally installs up to that many redundant
// neighbors per entry (Section 2.1's extras for fault-tolerant routing).
void build_consistent_network(Overlay& overlay, const std::vector<NodeId>& ids,
                              std::uint32_t backups_per_entry = 0);

// Joins `new_ids` one at a time (strictly sequential joining periods): each
// node picks a uniformly random gateway among the members present when it
// starts, and the event queue drains before the next join begins.
void join_sequentially(Overlay& overlay, const std::vector<NodeId>& new_ids,
                       std::vector<NodeId> members, Rng& rng);

// Schedules all of `new_ids` to start joining within [now, now + window_ms]
// (window 0 = all at the same instant, as in the paper's simulations), each
// via a uniformly random gateway from `members`, then runs to quiescence.
void join_concurrently(Overlay& overlay, const std::vector<NodeId>& new_ids,
                       const std::vector<NodeId>& members, Rng& rng,
                       SimTime window_ms = 0.0);

// Section 6.1 network initialization: ids[0] becomes the seed; the rest join
// sequentially (via random gateways) when `concurrent` is false, or all at
// once via the seed when true.
void initialize_network(Overlay& overlay, const std::vector<NodeId>& ids,
                        Rng& rng, bool concurrent = false);

// Closed-loop departure: starts the leave protocol for `id` and drains the
// event queue, so the caller observes the post-departure fixpoint. This is
// the quiescence-barrier regime (one membership change at a time) — the
// open-loop equilibrium engine in chaos/ deliberately never calls it.
void leave_and_drain(Overlay& overlay, const NodeId& id);

}  // namespace hcube
