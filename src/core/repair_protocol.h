// Failure-recovery protocol (extension; the paper defers failure recovery
// alongside leaving, Section 7).
//
// Fail-stop model: a crashed node silently drops everything. Recovery is
// pull-based and round-oriented: start_repair() pings every stored neighbor
// and reverse neighbor; a neighbor that does not answer within
// ping_timeout_ms is presumed dead, its entry is vacated, and the node
// queries every other table neighbor sharing at least `level` suffix digits
// for a replacement (their (level, digit) entries cover the same suffix
// class). One round repairs every entry whose class has a live member known
// to the query set; clustered failures may need further rounds
// (Overlay::repair_all drives them, alternating with the announce_table
// push phase). Not concurrent-safe with joins or leaves, matching the
// regime split the paper uses.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/leave_protocol.h"
#include "core/node_core.h"

namespace hcube {

class RepairProtocol {
 public:
  // Needs the leave module for one cross-protocol edge (mirroring
  // JoinProtocol's RvNghNotiMsg handling): an AnnounceMsg revealing a new
  // storer while this node is leaving must trigger a LeaveMsg to it.
  RepairProtocol(NodeCore& core, LeaveProtocol& leave)
      : core_(core),
        leave_(leave),
        repair_timeout_ms_(core.options.repair_ping_timeout_ms) {}

  // ping_timeout_ms <= 0 uses ProtocolOptions::repair_ping_timeout_ms.
  void start_repair(SimTime ping_timeout_ms);

  // Crash-recovery lifecycle: forgets every outstanding probe and repair
  // conversation (their timers become stale and ignore themselves).
  void reset();
  // True while pings, repair queries or candidate validations are
  // outstanding.
  bool in_progress() const {
    return !pending_pings_.empty() || !pending_repairs_.empty() ||
           !pending_validations_.empty();
  }
  // Push phase of a repair round: sends AnnounceMsg(table) to every
  // neighbor and reverse neighbor so they can fill entries whose class
  // lost its only inbound pointer. Run after the ping phase quiesces.
  void announce_table();

  // ---- message handlers ----
  void on_pong(const NodeId& u);
  void on_repair_query(const NodeId& x, HostId x_host,
                       const RepairQueryMsg& m);
  void on_repair_rly(const NodeId& z, const RepairRlyMsg& m);
  void on_announce(const NodeId& x, const AnnounceMsg& m);

 private:
  void on_ping_timeout(const NodeId& u, std::uint64_t generation);
  void begin_entry_repair(std::uint32_t level, std::uint32_t digit,
                          const NodeId& dead);
  void on_validation_timeout(const NodeId& candidate,
                             std::uint64_t generation);

  NodeCore& core_;
  LeaveProtocol& leave_;
  // pending_pings_ maps a probed neighbor to the generation of the
  // outstanding probe (stale timeouts compare generations);
  // pending_repairs_ maps a vacated entry to the number of repair replies
  // still expected plus the node presumed dead (candidates naming it are
  // rejected).
  struct RepairState {
    std::size_t replies_expected;
    NodeId dead;
  };
  // Insertion-ordered: start_repair schedules every probe's timeout at the
  // same instant, so this map's order is the timeout firing order.
  FlatNodeMap<std::uint64_t> pending_pings_;
  // Keyed by packed entry slot (not NodeId) and never iterated, so a heap
  // hash map costs nothing deterministic here; it is transient repair state.
  std::unordered_map<std::uint64_t, RepairState> pending_repairs_;
  // Misbehaving-peer hardening (ProtocolOptions::validate_repair_candidates,
  // DESIGN.md §14): candidates offered by RepairRlyMsg awaiting their
  // liveness probe before installation. Keyed by candidate — a candidate
  // covers exactly one of our slots, (|csuf|, candidate[|csuf|]) — with the
  // slot and probe generation as the value.
  struct Validation {
    std::uint32_t level;
    std::uint32_t digit;
    std::uint64_t generation;
  };
  FlatNodeMap<Validation> pending_validations_;
  std::uint64_t ping_generation_ = 0;
  // Last effective ping timeout; seeded from ProtocolOptions::
  // repair_ping_timeout_ms and overridden by explicit start_repair args.
  SimTime repair_timeout_ms_;
};

}  // namespace hcube
