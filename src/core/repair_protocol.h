// Failure-recovery protocol (extension; the paper defers failure recovery
// alongside leaving, Section 7).
//
// Fail-stop model: a crashed node silently drops everything. Recovery is
// pull-based and round-oriented: start_repair() pings every stored neighbor
// and reverse neighbor; a neighbor that does not answer within
// ping_timeout_ms is presumed dead, its entry is vacated, and the node
// queries every other table neighbor sharing at least `level` suffix digits
// for a replacement (their (level, digit) entries cover the same suffix
// class). One round repairs every entry whose class has a live member known
// to the query set; clustered failures may need further rounds
// (Overlay::repair_all drives them, alternating with the announce_table
// push phase). Not concurrent-safe with joins or leaves, matching the
// regime split the paper uses.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/node_core.h"

namespace hcube {

class RepairProtocol {
 public:
  explicit RepairProtocol(NodeCore& core) : core_(core) {}

  void start_repair(SimTime ping_timeout_ms);
  // True while pings or repair queries are outstanding.
  bool in_progress() const {
    return !pending_pings_.empty() || !pending_repairs_.empty();
  }
  // Push phase of a repair round: sends AnnounceMsg(table) to every
  // neighbor and reverse neighbor so they can fill entries whose class
  // lost its only inbound pointer. Run after the ping phase quiesces.
  void announce_table();

  // ---- message handlers ----
  void on_pong(const NodeId& u);
  void on_repair_query(const NodeId& x, HostId x_host,
                       const RepairQueryMsg& m);
  void on_repair_rly(const NodeId& z, const RepairRlyMsg& m);
  void on_announce(const AnnounceMsg& m);

 private:
  void on_ping_timeout(const NodeId& u, std::uint64_t generation);
  void begin_entry_repair(std::uint32_t level, std::uint32_t digit,
                          const NodeId& dead);

  NodeCore& core_;
  // pending_pings_ maps a probed neighbor to the generation of the
  // outstanding probe (stale timeouts compare generations);
  // pending_repairs_ maps a vacated entry to the number of repair replies
  // still expected plus the node presumed dead (candidates naming it are
  // rejected).
  struct RepairState {
    std::size_t replies_expected;
    NodeId dead;
  };
  std::unordered_map<NodeId, std::uint64_t, NodeIdHash> pending_pings_;
  std::unordered_map<std::uint64_t, RepairState> pending_repairs_;
  std::uint64_t ping_generation_ = 0;
  SimTime repair_timeout_ms_ = 500.0;  // last start_repair's ping timeout
};

}  // namespace hcube
