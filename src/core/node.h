// A protocol node: the join-protocol state machine of Section 4
// (Figures 5 through 14), plus S-node message handling.
//
// The pseudo-code in the paper reads neighbor tables of remote nodes
// directly; here every remote read is an explicit message exchange over the
// simulated network (CpRstMsg/CpRlyMsg for the copying loop of Figure 5).
// The RvNghNotiMsg bookkeeping that the paper's figures elide "for clarity
// of presentation" is implemented in full: whenever a node fills a non-self
// neighbor into an entry it notifies that neighbor, so reverse-neighbor sets
// are complete and InSysNotiMsg (Figure 13) reaches every node that stored a
// joiner while it was still a T-node.
//
// Documented deviation: in Switch_To_S_Node (Figure 13) the paper replies
// negative when N_x(k, u[k]) is non-null, even if the entry already holds u
// itself; a negative reply naming u would make u send a JoinWaitMsg to
// itself. We treat "entry already holds u" as positive, mirroring the
// receiving-side logic of Figure 6 (whose negative branch explicitly
// excludes N_y(k, x[k]) == x).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "core/neighbor_table.h"
#include "core/options.h"
#include "ids/node_id.h"
#include "proto/messages.h"
#include "sim/event_queue.h"

namespace hcube {

// Node status (Section 4), extended with the leave states of this
// library's leave protocol (the paper defers leaving to future work). A
// node is an S-node iff status is kInSystem; kLeaving/kDeparted are
// extension states outside the paper's model.
enum class NodeStatus : std::uint8_t {
  kCopying,
  kWaiting,
  kNotifying,
  kInSystem,
  kLeaving,
  kDeparted,
  kCrashed,  // fail-stop (extension): the node silently stops responding
};

const char* to_string(NodeStatus s);

// Per-join bookkeeping the benchmarks read out (Section 5.2 quantities).
struct JoinStats {
  std::array<std::uint64_t, kNumMessageTypes> sent{};
  std::array<std::uint64_t, kNumMessageTypes> received{};
  std::uint64_t bytes_sent = 0;
  SimTime t_begin = -1.0;  // t^b_x: when the node began joining
  SimTime t_end = -1.0;    // t^e_x: when it became an S-node
  std::uint32_t noti_level = 0;

  std::uint64_t sent_of(MessageType t) const {
    return sent[static_cast<std::size_t>(t)];
  }
  // Theorem 3 counts CpRstMsg + JoinWaitMsg; Theorems 4/5 count JoinNotiMsg.
  std::uint64_t copy_plus_wait() const {
    return sent_of(MessageType::kCpRst) + sent_of(MessageType::kJoinWait);
  }
};

// Environment a node runs in; implemented by Overlay. Decouples the state
// machine from transport and metrics plumbing.
class NodeEnv {
 public:
  virtual ~NodeEnv() = default;
  // Delivers body from `from` to `to` (both overlay node IDs).
  virtual void send_message(const NodeId& from, const NodeId& to,
                            MessageBody body) = 0;
  virtual SimTime now() const = 0;
  // Local timer (failure-recovery ping timeouts).
  virtual void schedule(SimTime delay_ms, std::function<void()> fn) = 0;
};

class Node {
 public:
  Node(NodeId id, const IdParams& params, const ProtocolOptions& options,
       NodeEnv& env);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const NodeId& id() const { return id_; }
  NodeStatus status() const { return status_; }
  bool is_s_node() const { return status_ == NodeStatus::kInSystem; }
  std::uint32_t noti_level() const { return noti_level_; }
  const NeighborTable& table() const { return table_; }
  const JoinStats& join_stats() const { return stats_; }

  // ---- Construction paths for members of the initial network V ----

  // Section 6.1: the single initial node of a network. Fills only its own
  // entries and is immediately an S-node.
  void become_seed();

  // Direct installation of a (consistent) table entry by NetworkBuilder;
  // node must not have started joining. State is S (builder-made networks
  // contain only S-nodes).
  void install_entry(std::uint32_t level, std::uint32_t digit,
                     const NodeId& neighbor);
  // Installs a redundant neighbor (direct construction only).
  void install_backup(std::uint32_t level, std::uint32_t digit,
                      const NodeId& neighbor, std::uint32_t max_backups) {
    table_.offer_backup(level, digit, neighbor, max_backups);
  }

  // Marks the node in_system after install_entry calls; fills own entries.
  void finish_install();

  // Registers a reverse neighbor directly (used by NetworkBuilder so that
  // pre-built networks have complete reverse-neighbor sets).
  void install_reverse_neighbor(const NodeId& v, EntryRef where);

  // ---- Offline optimization hooks (core/optimize.h) ----
  // Rebinds a filled entry to another member of the same suffix class and
  // drops a stale reverse-neighbor registration. Only valid on S-nodes;
  // reverse bookkeeping is the optimizer's responsibility.
  void rebind_entry(std::uint32_t level, std::uint32_t digit,
                    const NodeId& node);
  void drop_reverse_neighbor(const NodeId& v);

  // ---- The join protocol ----

  // Figure 5: begin joining via gateway g0 (assumed to be an S-node of V).
  void start_join(const NodeId& g0);

  // ---- The leave protocol (extension; see leave-protocol notes below) ----
  //
  // Graceful departure of an S-node. The leaver sends each reverse neighbor
  // v a LeaveMsg carrying its level-(k+1) table row (k = |csuf|), which by
  // consistency of the leaver's table contains a replacement for v's entry
  // whenever one exists anywhere in the network; v repairs (or nulls) the
  // entry locally and acks. The leaver's own neighbors get an NghDropMsg so
  // their reverse-neighbor sets stay exact. Departure completes (status
  // kDeparted) when every ack arrived. Supported under the same regime the
  // paper assumes for joins: no concurrent membership change touching the
  // same suffix classes (sequential leaves are always safe).
  void start_leave();
  bool has_departed() const { return status_ == NodeStatus::kDeparted; }

  // ---- Failure recovery (extension) ----
  //
  // Fail-stop model: a crashed node silently drops everything. Recovery is
  // pull-based and round-oriented: start_repair() pings every stored
  // neighbor; a neighbor that does not answer within ping_timeout_ms is
  // presumed dead, its entry is vacated, and the node queries every other
  // table neighbor sharing at least `level` suffix digits for a
  // replacement (their (level, digit) entries cover the same suffix class).
  // One round repairs every entry whose class has a live member known to
  // the query set; clustered failures may need further rounds
  // (Overlay::repair_all drives them). Not concurrent-safe with joins or
  // leaves, matching the regime split the paper uses.
  void mark_crashed() { status_ = NodeStatus::kCrashed; }
  bool is_crashed() const { return status_ == NodeStatus::kCrashed; }
  void start_repair(SimTime ping_timeout_ms);
  // True while pings or repair queries are outstanding.
  bool repair_in_progress() const {
    return !pending_pings_.empty() || !pending_repairs_.empty();
  }
  // Push phase of a repair round: sends AnnounceMsg(table) to every
  // neighbor and reverse neighbor so they can fill entries whose class
  // lost its only inbound pointer. Run after the ping phase quiesces.
  void announce_table();

  // Message dispatch; `from` is the sender's overlay ID (the envelope).
  void handle(const Message& msg);

 private:
  using IdSet = std::unordered_set<NodeId, NodeIdHash>;

  // --- transport helpers ---
  void send(const NodeId& to, MessageBody body);

  // --- table write helpers ---
  // Fills (level, digit) := node if empty; sends RvNghNotiMsg to the node.
  // Returns true if the entry was filled by this call.
  bool fill_if_empty(std::uint32_t level, std::uint32_t digit,
                     const NodeId& node, NeighborState state);
  // Copy-phase assignment (Figure 5): entries at a level being copied are
  // empty by construction; checks that and fills.
  void copy_entry(std::uint32_t level, std::uint32_t digit,
                  const NodeId& node, NeighborState state);

  // --- join-phase steps ---
  void on_cp_rly(const NodeId& g, const CpRlyMsg& msg);   // copying loop body
  void finish_copying_and_wait(const NodeId& target);     // tail of Figure 5
  void on_join_wait(const NodeId& x);                     // Figure 6
  void on_join_wait_rly(const NodeId& y, const JoinWaitRlyMsg& m);  // Fig. 7
  void check_ngh_table(const TableSnapshot& snap);        // Figure 8
  void on_join_noti(const NodeId& x, const JoinNotiMsg& m);         // Fig. 9
  void on_join_noti_rly(const NodeId& y, const JoinNotiRlyMsg& m);  // Fig. 10
  void on_spe_noti(const SpeNotiMsg& m);                  // Figure 11
  void on_spe_noti_rly(const SpeNotiRlyMsg& m);           // Figure 12
  void switch_to_s_node();                                // Figure 13
  void on_in_sys_noti(const NodeId& x);                   // Figure 14
  void on_rv_ngh_noti(const NodeId& x, const RvNghNotiMsg& m);
  void on_rv_ngh_noti_rly(const NodeId& y, const RvNghNotiRlyMsg& m);

  // --- leave protocol ---
  void send_leave_to(const NodeId& v);
  void on_leave(const NodeId& x, const LeaveMsg& m);
  void on_leave_rly(const NodeId& v);
  void on_ngh_drop(const NodeId& x);

  // --- failure recovery ---
  void on_ping_timeout(const NodeId& u, std::uint64_t generation);
  void begin_entry_repair(std::uint32_t level, std::uint32_t digit,
                          const NodeId& dead);
  void on_pong(const NodeId& u);
  void on_repair_query(const NodeId& x, const RepairQueryMsg& m);
  void on_repair_rly(const NodeId& z, const RepairRlyMsg& m);
  void on_announce(const AnnounceMsg& m);

  void maybe_switch_to_s_node();
  void send_join_noti(const NodeId& target);
  JoinNotiRlyMsg build_join_noti_rly(bool positive, bool flag,
                                     const JoinNotiMsg& request) const;

  NodeId id_;
  IdParams params_;
  ProtocolOptions options_;
  NodeEnv& env_;

  NodeStatus status_ = NodeStatus::kCopying;
  NeighborTable table_;
  std::uint32_t noti_level_ = 0;

  // Copying-phase cursor (Figure 5's i, g, p).
  std::uint32_t copy_level_ = 0;
  NodeId copy_from_;

  // Figure 3 state variables.
  IdSet q_replies_;        // Q_r: nodes we await replies from
  IdSet q_notified_;       // Q_n: nodes we sent notifications to
  IdSet q_join_waiters_;   // Q_j: deferred JoinWaitMsg senders
  IdSet q_spe_replies_;    // Q_sr: SpeNoti replies outstanding (keyed by y)
  IdSet q_spe_notified_;   // Q_sn: nodes announced via SpeNotiMsg

  // Leave-protocol state (extension).
  IdSet leave_notified_;            // reverse neighbors sent a LeaveMsg
  std::size_t leave_acks_pending_ = 0;

  // Failure-recovery state (extension). pending_pings_ maps a probed
  // neighbor to the generation of the outstanding probe (stale timeouts
  // compare generations); pending_repairs_ maps a vacated entry to the
  // number of repair replies still expected plus the node presumed dead
  // (candidates naming it are rejected).
  struct RepairState {
    std::size_t replies_expected;
    NodeId dead;
  };
  std::unordered_map<NodeId, std::uint64_t, NodeIdHash> pending_pings_;
  std::unordered_map<std::uint64_t, RepairState> pending_repairs_;
  std::uint64_t ping_generation_ = 0;
  SimTime repair_timeout_ms_ = 500.0;  // last start_repair's ping timeout

  JoinStats stats_;
  bool started_ = false;  // join or install started
};

}  // namespace hcube
