// A protocol node: one NodeCore (identity, table, stats) plus the three
// protocol modules that animate it —
//
//   JoinProtocol   (join_protocol.h)   Section 4, Figures 5-14
//   LeaveProtocol  (leave_protocol.h)  graceful departure (extension)
//   RepairProtocol (repair_protocol.h) fail-stop recovery (extension)
//
// Node owns the pieces, exposes the construction paths used by
// NetworkBuilder and the offline optimizer, and routes every incoming
// message to the right module in handle(). Protocol semantics live in the
// modules; this file is wiring.
#pragma once

#include <cstdint>

#include "core/join_protocol.h"
#include "core/leave_protocol.h"
#include "core/node_core.h"
#include "core/repair_protocol.h"

namespace hcube {

class Node {
 public:
  // `arena` backs the neighbor table's columns when given (Overlay passes
  // its own); null = the table owns a private exact-fit buffer.
  Node(NodeId id, const IdParams& params, const ProtocolOptions& options,
       NodeEnv& env, Arena* arena = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const NodeId& id() const { return core_.id; }
  NodeStatus status() const { return core_.status; }
  bool is_s_node() const { return core_.is_s_node(); }
  std::uint32_t noti_level() const { return core_.stats.noti_level; }
  const NeighborTable& table() const { return core_.table; }
  const JoinStats& join_stats() const { return core_.stats; }
  // Silent-past-deadline peers of the current join attempt (join_protocol.h;
  // read by the chaos quarantine oracle for abandon attribution).
  const NodeIdSet& join_suspects() const { return join_.suspects(); }
  // Deliveries this node rejected because their (status, type) pair is not
  // declared by the conformance registry (proto/conformance.h).
  const ConformanceStats& conformance_stats() const {
    return core_.conformance;
  }

  // Records the node's own transport endpoint; called by Overlay at
  // registration, before any message flows.
  void bind_host(HostId host) { core_.self_host = host; }

  // ---- Construction paths for members of the initial network V ----

  // Section 6.1: the single initial node of a network. Fills only its own
  // entries and is immediately an S-node.
  void become_seed();

  // Direct installation of a (consistent) table entry by NetworkBuilder;
  // node must not have started joining. State is S (builder-made networks
  // contain only S-nodes). The neighbor's endpoint is resolved lazily on
  // first send — the builder may install entries naming nodes it has not
  // registered yet.
  void install_entry(std::uint32_t level, std::uint32_t digit,
                     const NodeId& neighbor);
  // Installs a redundant neighbor (direct construction only).
  void install_backup(std::uint32_t level, std::uint32_t digit,
                      const NodeId& neighbor, std::uint32_t max_backups) {
    core_.table.offer_backup(level, digit, neighbor, max_backups);
  }

  // Marks the node in_system after install_entry calls; fills own entries.
  void finish_install();

  // Registers a reverse neighbor directly (used by NetworkBuilder so that
  // pre-built networks have complete reverse-neighbor sets).
  void install_reverse_neighbor(const NodeId& v);

  // Releases growth slack in the table's variable-size storage; the
  // builder's final pass over a directly-constructed network (see
  // NeighborTable::shrink_to_fit).
  void compact_storage() { core_.table.shrink_to_fit(); }

  // ---- Offline optimization hooks (core/optimize.h) ----
  // Rebinds a filled entry to another member of the same suffix class and
  // drops a stale reverse-neighbor registration. Only valid on S-nodes;
  // reverse bookkeeping is the optimizer's responsibility.
  void rebind_entry(std::uint32_t level, std::uint32_t digit,
                    const NodeId& node);
  void drop_reverse_neighbor(const NodeId& v);

  // ---- The join protocol ----

  // Figure 5: begin joining via gateway g0 (assumed to be an S-node of V).
  void start_join(const NodeId& g0);

  // No join-conversation state outstanding (chaos oracle: leaked state).
  bool join_idle() const { return join_.idle(); }

  // ---- The leave protocol (extension; see leave_protocol.h) ----
  void start_leave() { leave_.start_leave(); }
  bool has_departed() const { return core_.status == NodeStatus::kDeparted; }

  // ---- Failure recovery (extension; see repair_protocol.h) ----
  void mark_crashed() { core_.set_status(NodeStatus::kCrashed); }
  bool is_crashed() const { return core_.status == NodeStatus::kCrashed; }

  // Crash-recovery lifecycle: brings a crashed node back with the same
  // NodeId. Every piece of pre-crash protocol state is wiped — table,
  // reverse neighbors, per-module conversation state — but the attempt-
  // generation counter survives and the rejoin bumps it past every
  // pre-crash attempt, so in-flight replies addressed to the old
  // incarnation (they echo a pre-crash generation) are rejected as stale.
  // The node then re-enters the join protocol via `gateway` (a live
  // S-node). Its transport endpoint stays bound: same NodeId, same host.
  void restart(const NodeId& gateway);

  // ping_timeout_ms <= 0 uses ProtocolOptions::repair_ping_timeout_ms.
  void start_repair(SimTime ping_timeout_ms = 0.0) {
    repair_.start_repair(ping_timeout_ms);
  }
  bool repair_in_progress() const { return repair_.in_progress(); }
  void announce_table() { repair_.announce_table(); }

  // Message dispatch; `msg.sender` is the sender's overlay ID (the
  // envelope) and `from_host` its transport endpoint, handed through from
  // the delivery so replies need no hash lookup.
  void handle(HostId from_host, const Message& msg);

 private:
  NodeCore core_;
  LeaveProtocol leave_;    // before join_: JoinProtocol holds a reference
  RepairProtocol repair_;
  JoinProtocol join_;
};

}  // namespace hcube
