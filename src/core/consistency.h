// Consistency checking against Definition 3.8.
//
// A network <V, N(V)> is consistent iff for every node x and entry (i, j):
//   (a) if V_{j . x[i-1..0]} is non-empty, the entry holds some node with
//       that suffix (false-negative free — by Lemma 3.1 this is equivalent
//       to all-pairs reachability), and
//   (b) if it is empty, the entry is null (false-positive free).
// The checker builds a suffix trie over the actual member IDs as ground
// truth and audits every entry of every table, so it is an oracle that does
// not depend on any protocol invariant it is meant to verify. It also
// reports entries naming nodes that are not members (the stronger form of a
// false positive) and — optionally — neighbor states that are still T after
// quiescence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/view.h"
#include "ids/node_id.h"
#include "ids/suffix_trie.h"

namespace hcube {

struct ConsistencyViolation {
  enum class Kind {
    kFalseNegative,   // suffix exists in the network but entry is null
    kFalsePositive,   // no such suffix but entry is filled
    kUnknownNeighbor, // entry names a node that is not a member
    kStaleState,      // entry state still T (only if check_states)
  };
  Kind kind;
  NodeId node;            // owner of the offending table
  std::uint32_t level = 0;
  std::uint32_t digit = 0;
  NodeId present;         // the entry's content, when filled

  std::string describe(const IdParams& params) const;
};

struct ConsistencyReport {
  std::vector<ConsistencyViolation> violations;  // capped at max_violations
  std::uint64_t total_violations = 0;
  std::uint64_t entries_checked = 0;

  bool consistent() const { return total_violations == 0; }
  std::string summary(const IdParams& params, std::size_t max_lines = 20) const;
};

struct ConsistencyCheckOptions {
  // Also flag entries whose recorded neighbor state is still T; at
  // quiescence every neighbor is an S-node, so T states are stale.
  bool check_states = false;
  std::size_t max_violations_kept = 64;
};

ConsistencyReport check_consistency(const NetworkView& net,
                                    const ConsistencyCheckOptions& options = {});

// Definition 3.7: is `to` reachable from `from` following (i, to[i]) entries?
// (Single-pair reachability; route() in routing.h returns the path.)
bool reachable(const NetworkView& net, const NodeId& from, const NodeId& to);

// Samples `pairs` ordered pairs and verifies mutual reachability via
// route(); exhaustive when size^2 <= pairs. Returns the number of failures.
std::uint64_t check_reachability_sample(const NetworkView& net,
                                        std::uint64_t pairs, Rng& rng);

}  // namespace hcube
