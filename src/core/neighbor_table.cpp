#include "core/neighbor_table.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>

#include "sim/shard_context.h"
#include "util/check.h"

namespace hcube {
namespace {

// Column sizes for a d*b table, padded so each column is 8-byte aligned
// inside one contiguous block.
std::size_t aligned(std::size_t bytes) { return (bytes + 7) & ~std::size_t{7}; }

}  // namespace

NeighborTable::NeighborTable(const IdParams& params, NodeId owner,
                             Arena* arena)
    : params_(params), owner_(owner) {
  params_.validate();
  HCUBE_CHECK(owner_.is_valid());
  HCUBE_CHECK(owner_.num_digits() == params_.num_digits);
  const std::size_t n =
      static_cast<std::size_t>(params_.num_digits) * params_.base;
  if (arena != nullptr) {
    ent_node_ = arena->alloc_array<NodeId>(n);
    ent_state_ = arena->alloc_array<NeighborState>(n);
    ent_host_ = arena->alloc_array<HostId>(n);
  } else {
    const std::size_t bytes = aligned(n * sizeof(NodeId)) +
                              aligned(n * sizeof(NeighborState)) +
                              aligned(n * sizeof(HostId));
    self_storage_ = std::make_unique<std::byte[]>(bytes);
    std::byte* p = self_storage_.get();
    ent_node_ = reinterpret_cast<NodeId*>(p);
    p += aligned(n * sizeof(NodeId));
    ent_state_ = reinterpret_cast<NeighborState*>(p);
    p += aligned(n * sizeof(NeighborState));
    ent_host_ = reinterpret_cast<HostId*>(p);
  }
  reset();
}

void NeighborTable::reset() {
  const std::size_t n =
      static_cast<std::size_t>(params_.num_digits) * params_.base;
  std::fill_n(ent_node_, n, NodeId());
  std::fill_n(ent_state_, n, NeighborState::kT);
  std::fill_n(ent_host_, n, kNoHost);
  filled_ = 0;
  reverse_.clear();
  backup_slot_.clear();
  backup_node_.clear();
}

NeighborState NeighborTable::state(std::uint32_t level,
                                   std::uint32_t digit) const {
  const std::size_t k = index(level, digit);
  HCUBE_CHECK_MSG(ent_node_[k].is_valid(), "state() of an empty entry");
  return ent_state_[k];
}

void NeighborTable::set(std::uint32_t level, std::uint32_t digit,
                        const NodeId& node, NeighborState state,
                        HostId host) {
  HCUBE_CHECK(node.is_valid());
  // Suffix invariant of Section 2.1: the entry's desired suffix is
  // digit · owner[level-1 .. 0].
  HCUBE_CHECK_MSG(node.csuf_len(owner_) >= level || node == owner_,
                  "neighbor does not share the required suffix");
  HCUBE_CHECK_MSG(node.digit(level) == digit,
                  "neighbor's level-th digit does not match the entry digit");
  const std::size_t k = index(level, digit);
  if (!ent_node_[k].is_valid()) ++filled_;
  ent_node_[k] = node;
  ent_state_[k] = state;
  ent_host_[k] = host;
}

void NeighborTable::memo_host(std::uint32_t level, std::uint32_t digit,
                              HostId host) {
  const std::size_t k = index(level, digit);
  HCUBE_CHECK_MSG(ent_node_[k].is_valid(), "memo_host() of an empty entry");
  ent_host_[k] = host;
}

void NeighborTable::set_state(std::uint32_t level, std::uint32_t digit,
                              NeighborState state) {
  const std::size_t k = index(level, digit);
  HCUBE_CHECK_MSG(ent_node_[k].is_valid(), "set_state() of an empty entry");
  ent_state_[k] = state;
}

void NeighborTable::clear(std::uint32_t level, std::uint32_t digit) {
  const std::size_t k = index(level, digit);
  if (!ent_node_[k].is_valid()) return;
  ent_node_[k] = NodeId();
  ent_state_[k] = NeighborState::kT;
  ent_host_[k] = kNoHost;
  --filled_;
}

void NeighborTable::backup_range(std::uint32_t slot, std::size_t* lo,
                                 std::size_t* hi) const {
  std::size_t i = 0;
  while (i < backup_slot_.size() && backup_slot_[i] != slot) ++i;
  *lo = i;
  while (i < backup_slot_.size() && backup_slot_[i] == slot) ++i;
  *hi = i;
}

bool NeighborTable::offer_backup(std::uint32_t level, std::uint32_t digit,
                                 const NodeId& node,
                                 std::size_t max_backups) {
  HCUBE_CHECK(node.is_valid());
  if (max_backups == 0 || node == owner_) return false;
  HCUBE_CHECK_MSG(node.csuf_len(owner_) >= level,
                  "backup does not share the required suffix");
  HCUBE_CHECK_MSG(node.digit(level) == digit,
                  "backup's level-th digit does not match the entry digit");
  const std::uint32_t slot = static_cast<std::uint32_t>(index(level, digit));
  if (ent_node_[slot] == node) return false;
  std::size_t lo, hi;
  backup_range(slot, &lo, &hi);
  if (hi - lo >= max_backups) return false;
  for (std::size_t i = lo; i < hi; ++i)
    if (backup_node_[i] == node) return false;
  backup_slot_.insert(backup_slot_.begin() + hi, slot);
  backup_node_.insert(backup_node_.begin() + hi, node);
  return true;
}

std::span<const NodeId> NeighborTable::backups(std::uint32_t level,
                                               std::uint32_t digit) const {
  std::size_t lo, hi;
  backup_range(static_cast<std::uint32_t>(index(level, digit)), &lo, &hi);
  return {backup_node_.data() + lo, hi - lo};
}

void NeighborTable::purge_backup(std::uint32_t level, std::uint32_t digit,
                                 const NodeId& node) {
  std::size_t lo, hi;
  backup_range(static_cast<std::uint32_t>(index(level, digit)), &lo, &hi);
  for (std::size_t i = hi; i > lo; --i) {
    if (backup_node_[i - 1] == node) {
      backup_node_.erase(backup_node_.begin() + (i - 1));
      backup_slot_.erase(backup_slot_.begin() + (i - 1));
    }
  }
}

NodeId NeighborTable::take_first_backup(std::uint32_t level,
                                        std::uint32_t digit) {
  std::size_t lo, hi;
  backup_range(static_cast<std::uint32_t>(index(level, digit)), &lo, &hi);
  if (lo == hi) return NodeId();
  const NodeId first = backup_node_[lo];
  backup_node_.erase(backup_node_.begin() + lo);
  backup_slot_.erase(backup_slot_.begin() + lo);
  return first;
}

void NeighborTable::for_each_filled(
    const std::function<void(std::uint32_t, std::uint32_t, const NodeId&,
                             NeighborState)>& fn) const {
  for (std::uint32_t i = 0; i < params_.num_digits; ++i) {
    for (std::uint32_t j = 0; j < params_.base; ++j) {
      const std::size_t k = index(i, j);
      if (ent_node_[k].is_valid()) fn(i, j, ent_node_[k], ent_state_[k]);
    }
  }
}

TableSnapshot NeighborTable::snapshot(std::uint32_t level_lo,
                                      std::uint32_t level_hi) const {
  HCUBE_CHECK(level_lo <= level_hi && level_hi < params_.num_digits);
  TableSnapshot snap;
  for (std::uint32_t i = level_lo; i <= level_hi; ++i) {
    for (std::uint32_t j = 0; j < params_.base; ++j) {
      const std::size_t k = index(i, j);
      if (ent_node_[k].is_valid())
        snap.add(static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j),
                 ent_node_[k], ent_state_[k]);
    }
  }
  return snap;
}

BitVec NeighborTable::filled_bitvec() const {
  const std::size_t n =
      static_cast<std::size_t>(params_.num_digits) * params_.base;
  BitVec bits(n);
  for (std::size_t k = 0; k < n; ++k)
    if (ent_node_[k].is_valid()) bits.set(k);
  return bits;
}

void NeighborTable::add_reverse_neighbor(const NodeId& v) {
  HCUBE_CHECK(v.is_valid());
  if (v == owner_) return;  // a node is trivially its own neighbor
  reverse_.insert(v);
}

std::span<const NodeId> NeighborTable::distinct_neighbors() const {
  // Level-major first-appearance order: deterministic, and O(k^2) on the
  // handful of distinct 8-byte handles a table holds (k <= d*b, typically
  // far fewer) — no hashing, no allocation once the scratch has grown.
  // The scratch is shared by every table on the same LANE (a per-table
  // buffer costs ~0.5 KB per node at scale for data that is dead between
  // calls); the returned span is invalidated by the next call on any table
  // of the same lane. Slots are per-lane, not merely per-thread: the
  // sharded driver thread impersonates several lanes back to back at a
  // barrier (LaneScope), and a single thread_local buffer would let lane
  // B's call clobber the span lane A's repair pass is still iterating.
  // The spare last slot serves every call outside a lane scope — the
  // sequential engine and plain tests — preserving the original contract
  // there. A span must never cross an epoch barrier (the lane may resume
  // on a different thread); hclint's scratch-no-escape rule pins the
  // consume-in-place discipline at every call site.
  static thread_local std::array<std::vector<NodeId>, kMaxShardLanes + 1>
      scratch;
  std::vector<NodeId>& buf = scratch[lane_scratch_slot()];
  buf.clear();
  const std::size_t n =
      static_cast<std::size_t>(params_.num_digits) * params_.base;
  for (std::size_t k = 0; k < n; ++k) {
    const NodeId& node = ent_node_[k];
    if (!node.is_valid() || node == owner_) continue;
    bool seen = false;
    for (const NodeId& s : buf)
      if (s == node) {
        seen = true;
        break;
      }
    if (!seen) buf.push_back(node);
  }
  return scratch[lane_scratch_slot()];
}

std::size_t NeighborTable::bytes_used() const {
  const std::size_t n =
      static_cast<std::size_t>(params_.num_digits) * params_.base;
  return n * (sizeof(NodeId) + sizeof(NeighborState) + sizeof(HostId)) +
         reverse_.bytes_used() +
         backup_slot_.capacity() * sizeof(std::uint32_t) +
         backup_node_.capacity() * sizeof(NodeId);
}

void NeighborTable::shrink_to_fit() {
  reverse_.shrink_to_fit();
  backup_slot_.shrink_to_fit();
  backup_node_.shrink_to_fit();
}

std::string NeighborTable::to_string() const {
  std::ostringstream os;
  os << "table of " << owner_.to_string(params_) << "\n";
  for (std::uint32_t i = 0; i < params_.num_digits; ++i) {
    os << "  level " << i << ":";
    for (std::uint32_t j = 0; j < params_.base; ++j) {
      const std::size_t k = index(i, j);
      if (!ent_node_[k].is_valid()) continue;
      os << " (" << j << ")=" << ent_node_[k].to_string(params_)
         << (ent_state_[k] == NeighborState::kS ? "/S" : "/T");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hcube
