#include "core/neighbor_table.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/check.h"

namespace hcube {

NeighborTable::NeighborTable(const IdParams& params, NodeId owner)
    : params_(params), owner_(std::move(owner)) {
  params_.validate();
  HCUBE_CHECK(owner_.is_valid());
  HCUBE_CHECK(owner_.num_digits() == params_.num_digits);
  entries_.resize(static_cast<std::size_t>(params_.num_digits) *
                  params_.base);
}

std::size_t NeighborTable::index(std::uint32_t level,
                                 std::uint32_t digit) const {
  HCUBE_DCHECK(level < params_.num_digits);
  HCUBE_DCHECK(digit < params_.base);
  return static_cast<std::size_t>(level) * params_.base + digit;
}

const NodeId* NeighborTable::neighbor(std::uint32_t level,
                                      std::uint32_t digit) const {
  const Entry& e = entries_[index(level, digit)];
  return e.node.is_valid() ? &e.node : nullptr;
}

NeighborState NeighborTable::state(std::uint32_t level,
                                   std::uint32_t digit) const {
  const Entry& e = entries_[index(level, digit)];
  HCUBE_CHECK_MSG(e.node.is_valid(), "state() of an empty entry");
  return e.state;
}

bool NeighborTable::holds(std::uint32_t level, std::uint32_t digit,
                          const NodeId& node) const {
  const Entry& e = entries_[index(level, digit)];
  return e.node.is_valid() && e.node == node;
}

void NeighborTable::set(std::uint32_t level, std::uint32_t digit,
                        const NodeId& node, NeighborState state,
                        HostId host) {
  HCUBE_CHECK(node.is_valid());
  // Suffix invariant of Section 2.1: the entry's desired suffix is
  // digit · owner[level-1 .. 0].
  HCUBE_CHECK_MSG(node.csuf_len(owner_) >= level || node == owner_,
                  "neighbor does not share the required suffix");
  HCUBE_CHECK_MSG(node.digit(level) == digit,
                  "neighbor's level-th digit does not match the entry digit");
  Entry& e = entries_[index(level, digit)];
  if (!e.node.is_valid()) ++filled_;
  e.node = node;
  e.state = state;
  e.host = host;
}

HostId NeighborTable::host(std::uint32_t level, std::uint32_t digit) const {
  return entries_[index(level, digit)].host;
}

void NeighborTable::memo_host(std::uint32_t level, std::uint32_t digit,
                              HostId host) {
  Entry& e = entries_[index(level, digit)];
  HCUBE_CHECK_MSG(e.node.is_valid(), "memo_host() of an empty entry");
  e.host = host;
}

void NeighborTable::set_state(std::uint32_t level, std::uint32_t digit,
                              NeighborState state) {
  Entry& e = entries_[index(level, digit)];
  HCUBE_CHECK_MSG(e.node.is_valid(), "set_state() of an empty entry");
  e.state = state;
}

void NeighborTable::clear(std::uint32_t level, std::uint32_t digit) {
  Entry& e = entries_[index(level, digit)];
  if (!e.node.is_valid()) return;
  e.node = NodeId();
  e.state = NeighborState::kT;
  e.host = kNoHost;
  --filled_;
}

bool NeighborTable::offer_backup(std::uint32_t level, std::uint32_t digit,
                                 const NodeId& node,
                                 std::size_t max_backups) {
  HCUBE_CHECK(node.is_valid());
  if (max_backups == 0 || node == owner_) return false;
  HCUBE_CHECK_MSG(node.csuf_len(owner_) >= level,
                  "backup does not share the required suffix");
  HCUBE_CHECK_MSG(node.digit(level) == digit,
                  "backup's level-th digit does not match the entry digit");
  const Entry& primary = entries_[index(level, digit)];
  if (primary.node.is_valid() && primary.node == node) return false;
  auto& list = backups_[index(level, digit)];
  if (list.size() >= max_backups) return false;
  for (const NodeId& b : list)
    if (b == node) return false;
  list.push_back(node);
  ++total_backups_;
  return true;
}

std::span<const NodeId> NeighborTable::backups(std::uint32_t level,
                                               std::uint32_t digit) const {
  auto it = backups_.find(index(level, digit));
  if (it == backups_.end()) return {};
  return it->second;
}

void NeighborTable::purge_backup(std::uint32_t level, std::uint32_t digit,
                                 const NodeId& node) {
  auto it = backups_.find(index(level, digit));
  if (it == backups_.end()) return;
  auto& list = it->second;
  for (auto bit = list.begin(); bit != list.end();) {
    if (*bit == node) {
      bit = list.erase(bit);
      --total_backups_;
    } else {
      ++bit;
    }
  }
  if (list.empty()) backups_.erase(it);
}

NodeId NeighborTable::take_first_backup(std::uint32_t level,
                                        std::uint32_t digit) {
  auto it = backups_.find(index(level, digit));
  if (it == backups_.end()) return NodeId();
  NodeId first = it->second.front();
  it->second.erase(it->second.begin());
  --total_backups_;
  if (it->second.empty()) backups_.erase(it);
  return first;
}

void NeighborTable::for_each_filled(
    const std::function<void(std::uint32_t, std::uint32_t, const NodeId&,
                             NeighborState)>& fn) const {
  for (std::uint32_t i = 0; i < params_.num_digits; ++i) {
    for (std::uint32_t j = 0; j < params_.base; ++j) {
      const Entry& e = entries_[index(i, j)];
      if (e.node.is_valid()) fn(i, j, e.node, e.state);
    }
  }
}

TableSnapshot NeighborTable::snapshot(std::uint32_t level_lo,
                                      std::uint32_t level_hi) const {
  HCUBE_CHECK(level_lo <= level_hi && level_hi < params_.num_digits);
  TableSnapshot snap;
  for (std::uint32_t i = level_lo; i <= level_hi; ++i) {
    for (std::uint32_t j = 0; j < params_.base; ++j) {
      const Entry& e = entries_[index(i, j)];
      if (e.node.is_valid())
        snap.add(static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j),
                 e.node, e.state);
    }
  }
  return snap;
}

BitVec NeighborTable::filled_bitvec() const {
  BitVec bits(entries_.size());
  for (std::size_t k = 0; k < entries_.size(); ++k)
    if (entries_[k].node.is_valid()) bits.set(k);
  return bits;
}

void NeighborTable::add_reverse_neighbor(const NodeId& v, EntryRef where) {
  HCUBE_CHECK(v.is_valid());
  if (v == owner_) return;  // a node is trivially its own neighbor
  reverse_[v] = where;
}

std::vector<NodeId> NeighborTable::distinct_neighbors() const {
  std::unordered_set<NodeId, NodeIdHash> seen;
  for_each_filled([&](std::uint32_t, std::uint32_t, const NodeId& node,
                      NeighborState) {
    if (node != owner_) seen.insert(node);
  });
  return {seen.begin(), seen.end()};
}

std::string NeighborTable::to_string() const {
  std::ostringstream os;
  os << "table of " << owner_.to_string(params_) << "\n";
  for (std::uint32_t i = 0; i < params_.num_digits; ++i) {
    os << "  level " << i << ":";
    for (std::uint32_t j = 0; j < params_.base; ++j) {
      const Entry& e = entries_[index(i, j)];
      if (!e.node.is_valid()) continue;
      os << " (" << j << ")=" << e.node.to_string(params_)
         << (e.state == NeighborState::kS ? "/S" : "/T");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hcube
