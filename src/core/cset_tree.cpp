#include "core/cset_tree.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace hcube {

Suffix notify_suffix(const SuffixTrie& v_trie, const NodeId& x) {
  return x.suffix_of_len(v_trie.notify_suffix_len(x));
}

std::vector<std::pair<Suffix, std::vector<NodeId>>> group_by_notify_set(
    const SuffixTrie& v_trie, const std::vector<NodeId>& w) {
  std::vector<std::pair<Suffix, std::vector<NodeId>>> groups;
  for (const NodeId& x : w) {
    const Suffix omega = notify_suffix(v_trie, x);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == omega; });
    if (it == groups.end()) {
      groups.push_back({omega, {x}});
    } else {
      it->second.push_back(x);
    }
  }
  return groups;
}

namespace {

// Is a a suffix of b (or equal)? Suffixes are stored LSB-first, so this is
// a prefix test on the digit vectors.
bool suffix_contains(const Suffix& a, const Suffix& b) {
  if (a.size() > b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

bool comparable(const Suffix& a, const Suffix& b) {
  return suffix_contains(a, b) || suffix_contains(b, a);
}

struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t i) {
    while (parent[i] != i) i = parent[i] = parent[parent[i]];
    return i;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
  std::vector<std::size_t> parent;
};

}  // namespace

std::vector<std::vector<NodeId>> group_dependent(
    const SuffixTrie& v_trie, const std::vector<NodeId>& w) {
  // V_ω1 ∩ V_ω2 != ∅ iff one notification suffix extends the other (the
  // longer suffix set is non-empty by Definition 3.4). Definition 3.6's
  // second clause (a common u in W whose notification set contains both) is
  // subsumed transitively: both x and y would be unioned with u directly.
  std::vector<Suffix> omega(w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    omega[i] = notify_suffix(v_trie, w[i]);

  UnionFind uf(w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    for (std::size_t j = i + 1; j < w.size(); ++j)
      if (comparable(omega[i], omega[j])) uf.unite(i, j);

  std::vector<std::vector<NodeId>> groups;
  std::vector<std::size_t> root_to_group(w.size(), SIZE_MAX);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const std::size_t r = uf.find(i);
    if (root_to_group[r] == SIZE_MAX) {
      root_to_group[r] = groups.size();
      groups.emplace_back();
    }
    groups[root_to_group[r]].push_back(w[i]);
  }
  return groups;
}

// ---------------------------------------------------------------------------

CSetTree CSetTree::make_template(const IdParams& params, const Suffix& omega,
                                 const std::vector<NodeId>& w) {
  CSetTree tree;
  tree.omega_ = omega;

  SuffixTrie w_trie(params);
  for (const NodeId& x : w) {
    HCUBE_CHECK_MSG(x.has_suffix(omega),
                    "joiner lacks the group's notification suffix");
    HCUBE_CHECK_MSG(w_trie.insert(x), "duplicate joiner ID");
  }

  // Breadth-first over suffix extensions with a non-empty W subset.
  struct Work {
    Suffix suffix;
    std::size_t parent;  // SIZE_MAX = root
  };
  std::vector<Work> queue;
  for (std::uint32_t l = 0; l < params.base; ++l) {
    Suffix s = omega;
    s.push_back(static_cast<Digit>(l));
    if (w_trie.contains_suffix(s)) queue.push_back({std::move(s), SIZE_MAX});
  }
  for (std::size_t q = 0; q < queue.size(); ++q) {
    const Suffix s = queue[q].suffix;  // copy: queue may reallocate below
    CSet cset;
    cset.suffix = s;
    cset.members = w_trie.all_with_suffix(s);
    const std::size_t index = tree.sets_.size();
    tree.sets_.push_back(std::move(cset));
    if (queue[q].parent == SIZE_MAX) {
      tree.root_children_.push_back(index);
    } else {
      tree.sets_[queue[q].parent].children.push_back(index);
    }
    if (s.size() < params.num_digits) {
      for (std::uint32_t l = 0; l < params.base; ++l) {
        Suffix child = s;
        child.push_back(static_cast<Digit>(l));
        if (w_trie.contains_suffix(child))
          queue.push_back({std::move(child), index});
      }
    }
  }
  return tree;
}

CSetTree CSetTree::realize(const NetworkView& net, const SuffixTrie& v_trie,
                           const Suffix& omega, const std::vector<NodeId>& w) {
  const IdParams& params = net.params();
  CSetTree tree = make_template(params, omega, w);
  tree.root_members_ = v_trie.all_with_suffix(omega);

  SuffixTrie w_trie(params);
  for (const NodeId& x : w) w_trie.insert(x);

  // Recompute members level by level per Definition 5.1: x ∈ C_s iff
  // x ∈ W_s and some member of the parent set stores x in the entry
  // (|s| - 1, s.back()).
  // make_template produced sets_ in BFS order, so parents precede children.
  auto realized_members = [&](const std::vector<NodeId>& parent_members,
                              const Suffix& s) {
    std::vector<NodeId> members;
    const auto level = static_cast<std::uint32_t>(s.size() - 1);
    const std::uint32_t digit = s.back();
    for (const NodeId& u : parent_members) {
      const NeighborTable* t = net.find(u);
      HCUBE_CHECK_MSG(t != nullptr, "C-set member missing from view");
      const NodeId* stored = t->neighbor(level, digit);
      if (stored != nullptr && w_trie.contains(*stored) &&
          stored->has_suffix(s)) {
        members.push_back(*stored);
      }
    }
    // Lexicographically sorted and deduplicated, matching the ordered-set
    // semantics the checkers compare against.
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    return members;
  };

  // Map from set index to realized members; root children read V_ω.
  for (std::size_t i = 0; i < tree.sets_.size(); ++i) {
    // Find the parent's realized members.
    const Suffix& s = tree.sets_[i].suffix;
    if (s.size() == omega.size() + 1) {
      tree.sets_[i].members = realized_members(tree.root_members_, s);
    }
    for (const std::size_t child : tree.sets_[i].children) {
      tree.sets_[child].members =
          realized_members(tree.sets_[i].members, tree.sets_[child].suffix);
    }
  }
  return tree;
}

bool CSetTree::all_nonempty() const {
  for (const CSet& s : sets_)
    if (s.members.empty()) return false;
  return true;
}

bool CSetTree::same_structure(const CSetTree& other) const {
  if (omega_ != other.omega_) return false;
  if (sets_.size() != other.sets_.size()) return false;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    if (sets_[i].suffix != other.sets_[i].suffix) return false;
    if (sets_[i].children != other.sets_[i].children) return false;
  }
  return root_children_ == other.root_children_;
}

std::string CSetTree::to_string(const IdParams& params) const {
  std::ostringstream os;
  os << "C-set tree rooted at V_" << suffix_to_string(omega_, params) << " ("
     << root_members_.size() << " root members)\n";
  for (const CSet& s : sets_) {
    os << "  C_" << suffix_to_string(s.suffix, params) << " = {";
    for (std::size_t i = 0; i < s.members.size(); ++i) {
      if (i) os << ", ";
      os << s.members[i].to_string(params);
    }
    os << "}\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------

std::vector<std::string> check_cset_conditions(const NetworkView& net,
                                               const SuffixTrie& v_trie,
                                               const Suffix& omega,
                                               const std::vector<NodeId>& w) {
  const IdParams& params = net.params();
  std::vector<std::string> violations;
  auto flag = [&](std::string msg) { violations.push_back(std::move(msg)); };

  const CSetTree realized = CSetTree::realize(net, v_trie, omega, w);

  // Condition (1): every C-set of the (template-shaped) realized tree is
  // non-empty.
  for (const auto& s : realized.sets()) {
    if (s.members.empty())
      flag("condition (1): realized C-set C_" +
           suffix_to_string(s.suffix, params) + " is empty");
  }

  // Condition (2): every root member stores a W-node with the suffix of
  // every child C-set of the root.
  const auto level0 = static_cast<std::uint32_t>(omega.size());
  for (const NodeId& y : realized.root_members()) {
    const NeighborTable* t = net.find(y);
    HCUBE_CHECK(t != nullptr);
    for (const std::size_t ci : realized.root_children()) {
      const Suffix& s = realized.sets()[ci].suffix;
      const NodeId* stored = t->neighbor(level0, s.back());
      if (stored == nullptr || !stored->has_suffix(s))
        flag("condition (2): root member " + y.to_string(params) +
             " does not store a node with suffix " +
             suffix_to_string(s, params));
    }
  }

  // Condition (3): for each joiner x, walk the path from the root to the
  // leaf whose suffix is x.ID; for every sibling C-set branching off the
  // path, x stores a node with the sibling's suffix.
  for (const NodeId& x : w) {
    // children of the current path node (start: root children)
    const std::vector<std::size_t>* children = &realized.root_children();
    std::size_t depth = omega.size();
    while (children != nullptr && !children->empty() &&
           depth < params.num_digits) {
      const std::vector<std::size_t>* next_children = nullptr;
      for (const std::size_t ci : *children) {
        const CSetTree::CSet& cs = realized.sets()[ci];
        if (cs.suffix.back() == x.digit(depth)) {
          next_children = &cs.children;
          continue;  // on x's path
        }
        // Sibling: x must store a node with cs.suffix.
        const NeighborTable* t = net.find(x);
        HCUBE_CHECK(t != nullptr);
        const NodeId* stored =
            t->neighbor(static_cast<std::uint32_t>(depth), cs.suffix.back());
        if (stored == nullptr || !stored->has_suffix(cs.suffix))
          flag("condition (3): joiner " + x.to_string(params) +
               " does not store a node with sibling suffix " +
               suffix_to_string(cs.suffix, params));
      }
      children = next_children;
      ++depth;
    }
  }
  return violations;
}

}  // namespace hcube
