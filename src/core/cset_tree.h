// C-set trees (Section 3.3, Definitions 3.9 and 5.1).
//
// The paper stresses that C-set trees are conceptual — "not implemented in
// any node". Here they are implemented *outside* the nodes, as an auditing
// instrument: given the initial membership V and the joiner set W, we build
// the tree template C(V, W) (Definition 3.9), realize cset(V, W) from the
// final neighbor tables (Definition 5.1), and check the three conditions of
// Section 3.3 that the correctness proof rests on. Tests use this to verify
// not only that the protocol's outcome is consistent but that it is
// consistent for the reason the paper argues.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/view.h"
#include "ids/node_id.h"
#include "ids/suffix_trie.h"

namespace hcube {

// x's notification suffix ω w.r.t. V: V_ω = V^Notify_x (Definition 3.4).
// Empty suffix means the notification set is all of V.
Suffix notify_suffix(const SuffixTrie& v_trie, const NodeId& x);

// Groups joiners by notification suffix; each group belongs to one C-set
// tree. Groups are ordered by first appearance in W.
std::vector<std::pair<Suffix, std::vector<NodeId>>> group_by_notify_set(
    const SuffixTrie& v_trie, const std::vector<NodeId>& w);

// Partitions W into maximal groups of (transitively) dependent joins, per
// the construction in the proof of Lemma 5.5. Joins in different groups are
// mutually independent (Definition 3.5).
std::vector<std::vector<NodeId>> group_dependent(const SuffixTrie& v_trie,
                                                 const std::vector<NodeId>& w);

class CSetTree {
 public:
  struct CSet {
    Suffix suffix;                      // l_j ... l_1 . ω
    std::vector<NodeId> members;        // template: W_suffix; realized: per
                                        // Definition 5.1 (sorted, distinct)
    std::vector<std::size_t> children;  // indices into sets()
  };

  // Definition 3.9: the template determined by V_ω and W (all of W must
  // have notification suffix omega w.r.t. the V the caller grouped by).
  static CSetTree make_template(const IdParams& params, const Suffix& omega,
                                const std::vector<NodeId>& w);

  // Definition 5.1: the realized tree read off the final neighbor tables.
  // Has the same suffix skeleton as the template; condition (1) reduces to
  // all_nonempty().
  static CSetTree realize(const NetworkView& net, const SuffixTrie& v_trie,
                          const Suffix& omega, const std::vector<NodeId>& w);

  const Suffix& root_suffix() const { return omega_; }
  const std::vector<NodeId>& root_members() const { return root_members_; }
  const std::vector<CSet>& sets() const { return sets_; }
  const std::vector<std::size_t>& root_children() const {
    return root_children_;
  }

  bool all_nonempty() const;
  bool same_structure(const CSetTree& other) const;

  std::string to_string(const IdParams& params) const;

 private:
  Suffix omega_;
  std::vector<NodeId> root_members_;  // V_ω (realized trees only)
  std::vector<CSet> sets_;
  std::vector<std::size_t> root_children_;
};

// Checks conditions (1)-(3) of Section 3.3 for the C-set tree of the group
// (omega, w) against the final tables. Returns human-readable violations
// (empty = all conditions hold).
std::vector<std::string> check_cset_conditions(const NetworkView& net,
                                               const SuffixTrie& v_trie,
                                               const Suffix& omega,
                                               const std::vector<NodeId>& w);

}  // namespace hcube
