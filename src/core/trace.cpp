#include "core/trace.h"

#include <sstream>

#include "util/check.h"

namespace hcube {

MessageTrace::MessageTrace(std::size_t capacity) : capacity_(capacity) {
  HCUBE_CHECK(capacity_ > 0);
}

void MessageTrace::attach(Overlay& overlay) {
  // The hook fires synchronously inside send_message, so overlay.now() is
  // the send time. Chain rather than replace: an observer installed before
  // us (another trace, a test probe) keeps firing.
  const IdParams params = overlay.params();
  Overlay* ov = &overlay;
  overlay.on_message = [this, params, ov, prev = std::move(overlay.on_message)](
                           const NodeId& from, const NodeId& to,
                           const MessageBody& body) {
    if (prev) prev(from, to, body);
    record(ov->now(), from, to, type_of(body), wire_size_bytes(body, params));
  };
  overlay.on_conformance_reject =
      [this, prev = std::move(overlay.on_conformance_reject)](
          const NodeId& node, NodeStatus status, MessageType type) {
        if (prev) prev(node, status, type);
        ++conformance_.rejected[static_cast<std::size_t>(type)];
      };
}

void MessageTrace::attach_wire(Transport& transport) {
  transport.on_send = [this, prev = std::move(transport.on_send)](
                          HostId from, HostId to, const Message& msg) {
    if (prev) prev(from, to, msg);
    ++wire_counts_[static_cast<std::size_t>(type_of(msg.body))];
  };
}

void MessageTrace::record(SimTime time, const NodeId& from, const NodeId& to,
                          MessageType type, std::size_t wire_bytes) {
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back({time, from, to, type, wire_bytes});
  ++counts_[static_cast<std::size_t>(type)];
  total_bytes_ += wire_bytes;
}

void MessageTrace::clear() {
  records_.clear();
  dropped_ = 0;
  counts_.fill(0);
  wire_counts_.fill(0);
  total_bytes_ = 0;
  conformance_ = ConformanceStats{};
}

std::vector<TraceRecord> MessageTrace::all() const {
  return {records_.begin(), records_.end()};
}

std::vector<TraceRecord> MessageTrace::involving(const NodeId& node) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_)
    if (r.from == node || r.to == node) out.push_back(r);
  return out;
}

std::vector<TraceRecord> MessageTrace::of_type(MessageType type) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_)
    if (r.type == type) out.push_back(r);
  return out;
}

std::string MessageTrace::to_string(const IdParams& params,
                                    std::size_t max_lines) const {
  std::ostringstream os;
  const std::size_t skip =
      records_.size() > max_lines ? records_.size() - max_lines : 0;
  if (dropped_ > 0 || skip > 0)
    os << "... (" << dropped_ + skip << " earlier records omitted)\n";
  std::size_t index = 0;
  for (const auto& r : records_) {
    if (index++ < skip) continue;
    os << r.time << "ms  " << type_name(r.type) << "  "
       << r.from.to_string(params) << " -> " << r.to.to_string(params) << " ("
       << r.wire_bytes << "B)\n";
  }
  return os.str();
}

}  // namespace hcube
