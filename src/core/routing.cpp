#include "core/routing.h"

#include "core/overlay.h"
#include "util/check.h"

namespace hcube {

NetworkView view_of(const Overlay& overlay) {
  NetworkView view(overlay.params());
  for (const auto& node : overlay.nodes())
    if (!node->has_departed() && !node->is_crashed())
      view.add(&node->table());
  return view;
}

RouteResult route(const NetworkView& net, const NodeId& from,
                  const NodeId& to) {
  RouteResult result;
  result.path.push_back(from);
  const std::size_t d = net.params().num_digits;

  NodeId cur = from;
  while (cur != to) {
    if (result.hops() >= d) return result;  // hop bound exceeded: failure
    const NeighborTable* table = net.find(cur);
    if (table == nullptr) return result;  // path led outside the view
    const auto k = static_cast<std::uint32_t>(cur.csuf_len(to));
    const NodeId* next = table->neighbor(k, to.digit(k));
    if (next == nullptr) return result;  // required entry empty
    HCUBE_CHECK_MSG(next->csuf_len(to) > k,
                    "neighbor table entry does not extend the suffix match");
    cur = *next;
    result.path.push_back(cur);
  }
  result.success = true;
  return result;
}

RouteResult route_fault_tolerant(const NetworkView& net, const NodeId& from,
                                 const NodeId& to) {
  RouteResult result;
  result.path.push_back(from);
  const std::size_t d = net.params().num_digits;

  NodeId cur = from;
  while (cur != to) {
    if (result.hops() >= d) return result;
    const NeighborTable* table = net.find(cur);
    if (table == nullptr) return result;  // origin itself is not live
    const auto k = static_cast<std::uint32_t>(cur.csuf_len(to));
    const Digit jd = to.digit(k);
    // Try the primary, then the redundant neighbors, skipping dead ones.
    const NodeId* next = nullptr;
    const NodeId* primary = table->neighbor(k, jd);
    if (primary != nullptr && net.contains(*primary)) next = primary;
    if (next == nullptr) {
      for (const NodeId& b : table->backups(k, jd)) {
        if (net.contains(b)) {
          next = &b;
          break;
        }
      }
    }
    if (next == nullptr) return result;  // no live candidate at this hop
    HCUBE_CHECK(next->csuf_len(to) > k);
    cur = *next;
    result.path.push_back(cur);
  }
  result.success = true;
  return result;
}

std::optional<SurrogateResult> surrogate_route(const NetworkView& net,
                                               const NodeId& from,
                                               const NodeId& object_id) {
  const std::uint32_t b = net.params().base;
  const std::size_t d = net.params().num_digits;

  NodeId cur = from;
  std::vector<NodeId> path{cur};
  std::size_t level = cur.csuf_len(object_id);
  while (level < d) {
    const NeighborTable* table = net.find(cur);
    if (table == nullptr) return std::nullopt;
    const NodeId* next = nullptr;
    for (std::uint32_t probe = 0; probe < b; ++probe) {
      const auto j = static_cast<std::uint32_t>(
          (object_id.digit(level) + probe) % b);
      next = table->neighbor(static_cast<std::uint32_t>(level), j);
      if (next != nullptr) break;
    }
    // A member node always has itself at (level, own digit), so some entry
    // at every level is non-empty.
    if (next == nullptr) return std::nullopt;
    if (*next == cur) {
      ++level;  // we are the best match at this level; go deeper locally
    } else {
      cur = *next;
      path.push_back(cur);
      // The suffix class is now one digit longer; resume at the next level.
      ++level;
    }
  }
  return SurrogateResult{cur, std::move(path)};
}

}  // namespace hcube
