// Neighbor table of the hypercube routing scheme (Section 2.1).
//
// d levels × b entries. The (i, j)-entry of node x holds a neighbor whose ID
// shares the rightmost i digits with x.ID and whose i-th digit is j (digits
// counted from the right). Following Section 3 we keep one (primary)
// neighbor per entry, plus the paper's per-neighbor state (T = not yet an
// S-node, S = in system) and the reverse-neighbor bookkeeping that
// InSysNotiMsg delivery needs.
//
// Storage layout (DESIGN.md §13): the d*b entries are structure-of-arrays —
// three parallel level-major columns (node handle, state, host) allocated
// from the owning overlay's arena (or a private exact-fit buffer when the
// table is built standalone, as tests do). IDs are 8-byte interned handles;
// the reverse side is a dense insertion-ordered FlatNodeSet and backups are
// two parallel grouped vectors. Nothing in the table hashes NodeIds through
// std::unordered_* — iteration order is insertion/level order everywhere,
// which the deterministic-replay digests rely on.
//
// The class enforces the suffix invariant on every write: a table can never
// hold a node in an entry whose required suffix the node's ID does not have.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ids/node_id.h"
#include "ids/node_set.h"
#include "proto/messages.h"
#include "util/arena.h"
#include "util/host.h"

namespace hcube {

struct EntryRef {
  std::uint32_t level;  // i
  std::uint32_t digit;  // j
};

class NeighborTable {
 public:
  // Columns come from `arena` when given (Overlay passes its own); a null
  // arena means a private exact-fit allocation (standalone tables).
  NeighborTable(const IdParams& params, NodeId owner, Arena* arena = nullptr);

  NeighborTable(NeighborTable&&) = default;
  NeighborTable& operator=(NeighborTable&&) = default;

  const IdParams& params() const { return params_; }
  const NodeId& owner() const { return owner_; }

  // Re-empties the table in place (crash/restart path). Keeps the column
  // storage — arena memory is never returned.
  void reset();

  // The paper's N_x(i, j); nullptr when the entry is empty.
  const NodeId* neighbor(std::uint32_t level, std::uint32_t digit) const {
    const NodeId& n = ent_node_[index(level, digit)];
    return n.is_valid() ? &n : nullptr;
  }
  NeighborState state(std::uint32_t level, std::uint32_t digit) const;
  bool is_empty(std::uint32_t level, std::uint32_t digit) const {
    return !ent_node_[index(level, digit)].is_valid();
  }

  // Returns true if entry (level, digit) holds exactly this node.
  bool holds(std::uint32_t level, std::uint32_t digit,
             const NodeId& node) const {
    return ent_node_[index(level, digit)] == node && node.is_valid();
  }

  // Sets N_x(level, digit) = node with the given state. Checks the suffix
  // invariant: csuf(node, owner) >= level and node[level] == digit.
  // `host` is the neighbor's transport endpoint when the writer has already
  // resolved it (kNoHost = not resolved yet; memo_host fills it in lazily).
  void set(std::uint32_t level, std::uint32_t digit, const NodeId& node,
           NeighborState state, HostId host = kNoHost);

  // Cached transport endpoint of the entry's neighbor (the envelope a
  // deployment would store alongside the ID); kNoHost when never resolved.
  HostId host(std::uint32_t level, std::uint32_t digit) const {
    return ent_host_[index(level, digit)];
  }
  // Memoizes the host of a filled entry after a lazy resolve.
  void memo_host(std::uint32_t level, std::uint32_t digit, HostId host);

  // Updates only the recorded state; entry must hold `node`.
  void set_state(std::uint32_t level, std::uint32_t digit,
                 NeighborState state);

  // Empties an entry (leave-protocol repair when the departing node was the
  // last member of the entry's suffix class). No-op on an empty entry.
  // Backups of the entry are kept (clear is followed either by a promote or
  // by the entry's class being empty, in which case purge_backup applies).
  void clear(std::uint32_t level, std::uint32_t digit);

  // ---- Redundant neighbors (Section 2.1: "a subset of these nodes ...
  // may be stored in the entry", extras used for fault-tolerant routing) --
  //
  // Backups are opportunistic: offered when a fill finds the entry already
  // occupied. They satisfy the same suffix invariant as the primary but are
  // NOT reverse-tracked (a stale backup is skipped by fault-tolerant
  // routing and recovery, never trusted blindly).

  // Records `node` as a backup for the entry if it is distinct from the
  // primary, the owner, and existing backups, and the backup list has room.
  // Returns true if stored.
  bool offer_backup(std::uint32_t level, std::uint32_t digit,
                    const NodeId& node, std::size_t max_backups);

  // Backups for an entry, in offer order (empty span if none). The span is
  // invalidated by the next backup mutation on this table.
  std::span<const NodeId> backups(std::uint32_t level,
                                  std::uint32_t digit) const;

  // Removes one backup / all backups equal to `node` across the entry.
  void purge_backup(std::uint32_t level, std::uint32_t digit,
                    const NodeId& node);

  // Pops the first backup of the entry (invalid NodeId if none).
  NodeId take_first_backup(std::uint32_t level, std::uint32_t digit);

  std::size_t total_backups() const { return backup_node_.size(); }

  std::size_t filled_count() const { return filled_; }

  // Iterates over non-empty entries in (level, digit) order.
  void for_each_filled(
      const std::function<void(std::uint32_t level, std::uint32_t digit,
                               const NodeId& node, NeighborState state)>& fn)
      const;

  // Snapshot of the non-empty entries with level in [level_lo, level_hi]
  // (inclusive), as carried in protocol messages.
  TableSnapshot snapshot(std::uint32_t level_lo, std::uint32_t level_hi) const;
  TableSnapshot snapshot_full() const {
    return snapshot(0, params_.num_digits - 1);
  }

  // Bit vector with one bit per entry, '1' = filled (Section 6.2).
  BitVec filled_bitvec() const;

  // ---- Reverse neighbors ----
  // v is a reverse neighbor of x when v stores x (x learns this from
  // RvNghNotiMsg or by filling v in response to a JoinWaitMsg). A given v
  // stores x in exactly one entry — (k, x[k]) with k = |csuf(v, x)| — so
  // the entry location is derivable from the two IDs and only the set of
  // storers is kept (8 bytes per storer; an EntryRef value would double
  // that for data no reader uses). Iteration is in insertion order
  // (deterministic).
  void add_reverse_neighbor(const NodeId& v);
  // v stopped storing the owner (leave protocol). No-op if unknown.
  void remove_reverse_neighbor(const NodeId& v) { reverse_.erase(v); }
  const FlatNodeSet& reverse_neighbors() const { return reverse_; }

  // The set of distinct nodes (other than the owner) appearing in the
  // table, in level-major first-appearance order. The span aliases a
  // per-lane scratch buffer shared by all tables executing on the same
  // lane (the spare slot, outside any LaneScope, plays that role for the
  // sequential engine and tests): it is invalidated by the next call to
  // distinct_neighbors() on ANY table of the same lane, and must never be
  // held across an epoch barrier — the lane may resume on another thread
  // whose scratch is a different object (callers that need the set across
  // table mutations copy it, e.g. into a FlatNodeSet). hclint's
  // scratch-no-escape rule flags call sites that let the span outlive a
  // statement (returning it, stashing it in a member); the invalidation is
  // pinned by the SecondCallInvalidatesFirstSpan regression test and the
  // lane isolation by LaneScopedCallsDoNotClobberOtherLanes.
  std::span<const NodeId> distinct_neighbors() const;

  // Approximate heap/arena bytes behind this table (columns + reverse +
  // backups + scratch), for bytes/node accounting.
  std::size_t bytes_used() const;

  // Releases growth slack on the variable-size sides (reverse set, backup
  // vectors); the arena-backed columns are exact-fit already. Called by
  // the offline builder after the last install — the slack is harmless on
  // one table and ~500 bytes/node across an n = 10^6 build.
  void shrink_to_fit();

  std::string to_string() const;

 private:
  std::size_t index(std::uint32_t level, std::uint32_t digit) const {
    HCUBE_DCHECK(level < params_.num_digits);
    HCUBE_DCHECK(digit < params_.base);
    return static_cast<std::size_t>(level) * params_.base + digit;
  }

  // Locates the backup group for an entry slot: [lo, hi) in backup_node_.
  void backup_range(std::uint32_t slot, std::size_t* lo, std::size_t* hi) const;

  IdParams params_;
  NodeId owner_;

  // SoA columns, level-major, d*b each. Either arena memory or
  // self_storage_; raw pointers are stable for the table's lifetime.
  NodeId* ent_node_ = nullptr;
  NeighborState* ent_state_ = nullptr;
  HostId* ent_host_ = nullptr;
  std::unique_ptr<std::byte[]> self_storage_;  // null when arena-backed

  std::size_t filled_ = 0;
  FlatNodeSet reverse_;
  // Backups, grouped by entry slot: backup_slot_[k] is the level*b+digit
  // slot of backup_node_[k], groups contiguous in first-offer order.
  // Sparse and tiny in practice (most entries have none), so two parallel
  // vectors beat any per-entry structure.
  std::vector<std::uint32_t> backup_slot_;
  std::vector<NodeId> backup_node_;
};

}  // namespace hcube
