// Neighbor table of the hypercube routing scheme (Section 2.1).
//
// d levels × b entries. The (i, j)-entry of node x holds a neighbor whose ID
// shares the rightmost i digits with x.ID and whose i-th digit is j (digits
// counted from the right). Following Section 3 we keep one (primary)
// neighbor per entry, plus the paper's per-neighbor state (T = not yet an
// S-node, S = in system) and the reverse-neighbor bookkeeping that
// InSysNotiMsg delivery needs.
//
// The class enforces the suffix invariant on every write: a table can never
// hold a node in an entry whose required suffix the node's ID does not have.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ids/node_id.h"
#include "proto/messages.h"
#include "util/host.h"

namespace hcube {

struct EntryRef {
  std::uint32_t level;  // i
  std::uint32_t digit;  // j
};

class NeighborTable {
 public:
  NeighborTable(const IdParams& params, NodeId owner);

  const IdParams& params() const { return params_; }
  const NodeId& owner() const { return owner_; }

  // The paper's N_x(i, j); nullptr when the entry is empty.
  const NodeId* neighbor(std::uint32_t level, std::uint32_t digit) const;
  NeighborState state(std::uint32_t level, std::uint32_t digit) const;
  bool is_empty(std::uint32_t level, std::uint32_t digit) const {
    return neighbor(level, digit) == nullptr;
  }

  // Returns true if entry (level, digit) holds exactly this node.
  bool holds(std::uint32_t level, std::uint32_t digit,
             const NodeId& node) const;

  // Sets N_x(level, digit) = node with the given state. Checks the suffix
  // invariant: csuf(node, owner) >= level and node[level] == digit.
  // `host` is the neighbor's transport endpoint when the writer has already
  // resolved it (kNoHost = not resolved yet; memo_host fills it in lazily).
  void set(std::uint32_t level, std::uint32_t digit, const NodeId& node,
           NeighborState state, HostId host = kNoHost);

  // Cached transport endpoint of the entry's neighbor (the envelope a
  // deployment would store alongside the ID); kNoHost when never resolved.
  HostId host(std::uint32_t level, std::uint32_t digit) const;
  // Memoizes the host of a filled entry after a lazy resolve.
  void memo_host(std::uint32_t level, std::uint32_t digit, HostId host);

  // Updates only the recorded state; entry must hold `node`.
  void set_state(std::uint32_t level, std::uint32_t digit,
                 NeighborState state);

  // Empties an entry (leave-protocol repair when the departing node was the
  // last member of the entry's suffix class). No-op on an empty entry.
  // Backups of the entry are kept (clear is followed either by a promote or
  // by the entry's class being empty, in which case purge_backup applies).
  void clear(std::uint32_t level, std::uint32_t digit);

  // ---- Redundant neighbors (Section 2.1: "a subset of these nodes ...
  // may be stored in the entry", extras used for fault-tolerant routing) --
  //
  // Backups are opportunistic: offered when a fill finds the entry already
  // occupied. They satisfy the same suffix invariant as the primary but are
  // NOT reverse-tracked (a stale backup is skipped by fault-tolerant
  // routing and recovery, never trusted blindly).

  // Records `node` as a backup for the entry if it is distinct from the
  // primary, the owner, and existing backups, and the backup list has room.
  // Returns true if stored.
  bool offer_backup(std::uint32_t level, std::uint32_t digit,
                    const NodeId& node, std::size_t max_backups);

  // Backups for an entry, in offer order (empty span if none).
  std::span<const NodeId> backups(std::uint32_t level,
                                  std::uint32_t digit) const;

  // Removes one backup / all backups equal to `node` across the entry.
  void purge_backup(std::uint32_t level, std::uint32_t digit,
                    const NodeId& node);

  // Pops the first backup of the entry (invalid NodeId if none).
  NodeId take_first_backup(std::uint32_t level, std::uint32_t digit);

  std::size_t total_backups() const { return total_backups_; }

  std::size_t filled_count() const { return filled_; }

  // Iterates over non-empty entries in (level, digit) order.
  void for_each_filled(
      const std::function<void(std::uint32_t level, std::uint32_t digit,
                               const NodeId& node, NeighborState state)>& fn)
      const;

  // Snapshot of the non-empty entries with level in [level_lo, level_hi]
  // (inclusive), as carried in protocol messages.
  TableSnapshot snapshot(std::uint32_t level_lo, std::uint32_t level_hi) const;
  TableSnapshot snapshot_full() const {
    return snapshot(0, params_.num_digits - 1);
  }

  // Bit vector with one bit per entry, '1' = filled (Section 6.2).
  BitVec filled_bitvec() const;

  // ---- Reverse neighbors ----
  // v is a reverse neighbor of x when v stores x (x learns this from
  // RvNghNotiMsg or by filling v in response to a JoinWaitMsg). A given v
  // stores x in exactly one entry, so a flat map suffices.
  void add_reverse_neighbor(const NodeId& v, EntryRef where);
  // v stopped storing the owner (leave protocol). No-op if unknown.
  void remove_reverse_neighbor(const NodeId& v) { reverse_.erase(v); }
  const std::unordered_map<NodeId, EntryRef, NodeIdHash>& reverse_neighbors()
      const {
    return reverse_;
  }

  // The set of distinct nodes (other than the owner) appearing in the table.
  std::vector<NodeId> distinct_neighbors() const;

  std::string to_string() const;

 private:
  struct Entry {
    NodeId node;  // invalid (default) = empty
    NeighborState state = NeighborState::kT;
    HostId host = kNoHost;  // resolved transport endpoint of `node`
  };

  std::size_t index(std::uint32_t level, std::uint32_t digit) const;

  IdParams params_;
  NodeId owner_;
  std::vector<Entry> entries_;  // level-major, d*b
  std::size_t filled_ = 0;
  std::unordered_map<NodeId, EntryRef, NodeIdHash> reverse_;
  // Sparse backup store: most entries have none, so a side map keyed by
  // entry index beats a per-entry vector (which would dominate the table's
  // memory at paper scale).
  std::unordered_map<std::size_t, std::vector<NodeId>> backups_;
  std::size_t total_backups_ = 0;
};

}  // namespace hcube
