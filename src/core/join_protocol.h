// The join-protocol state machine of Section 4 (Figures 5 through 14).
//
// The pseudo-code in the paper reads neighbor tables of remote nodes
// directly; here every remote read is an explicit message exchange over the
// simulated network (CpRstMsg/CpRlyMsg for the copying loop of Figure 5).
// The RvNghNotiMsg bookkeeping that the paper's figures elide "for clarity
// of presentation" is implemented in full: whenever a node fills a non-self
// neighbor into an entry it notifies that neighbor, so reverse-neighbor sets
// are complete and InSysNotiMsg (Figure 13) reaches every node that stored a
// joiner while it was still a T-node.
//
// Documented deviation: in Switch_To_S_Node (Figure 13) the paper replies
// negative when N_x(k, u[k]) is non-null, even if the entry already holds u
// itself; a negative reply naming u would make u send a JoinWaitMsg to
// itself. We treat "entry already holds u" as positive, mirroring the
// receiving-side logic of Figure 6 (whose negative branch explicitly
// excludes N_y(k, x[k]) == x).
//
// Robustness extension (the paper assumes reliable delivery): a join-stall
// watchdog. Each join attempt carries a generation tag (NodeCore::
// attempt_gen, echoed by replies); if the node is still not an S-node
// join_watchdog_ms after an attempt began — e.g. the reliable transport
// exhausted its retry budget on some message — the watchdog aborts the
// attempt, bumps the generation and restarts the copy walk from the
// original gateway. Replies tagged with an aborted attempt's generation are
// rejected (except that a stale *positive* reply still registers the
// replier as a reverse neighbor: the peer really did store us, and must
// get our InSysNotiMsg when we eventually switch). Restarted copying
// tolerates the leftovers of the aborted attempt: entries already filled
// are kept (fill_if_empty instead of the fresh-join empty-entry invariant)
// and a copy walk that runs into ourselves — a peer stored us during the
// aborted attempt — ends by waiting on that peer.
#pragma once

#include <cstdint>

#include "core/leave_protocol.h"
#include "core/node_core.h"

namespace hcube {

class JoinProtocol {
 public:
  // Needs the leave module for one cross-protocol edge: a RvNghNotiMsg
  // arriving while this node is leaving must trigger a LeaveMsg to the new
  // reverse neighbor (otherwise our departure strands a dangling pointer).
  JoinProtocol(NodeCore& core, LeaveProtocol& leave)
      : core_(core), leave_(leave) {}

  // Figure 5: begin joining via gateway g0 (assumed to be an S-node of V).
  // Bumps the attempt generation rather than resetting it, so a node
  // rejoining after a crash (Node::restart) starts beyond every pre-crash
  // attempt and its generation filter rejects stale in-flight replies.
  void start_join(const NodeId& g0);

  // Crash-recovery lifecycle: forgets every conversation of the previous
  // incarnation. The attempt generation is NodeCore state and survives.
  void reset();

  // The notification start level is published to JoinStats::noti_level
  // (the registry's one source of truth); read it via Node::noti_level().

  // True when no conversation state is outstanding: no reply awaited, no
  // deferred JoinWaitMsg sender unanswered. The chaos oracles assert this
  // on every in-system node at quiescence — leaked entries there are
  // replies that will never come or waiters never answered. (q_notified_ /
  // q_spe_notified_ are deliberately NOT included: those are the paper's
  // Q_n / Q_sn, permanent dedup memory of who was already notified.)
  bool idle() const {
    return q_replies_.empty() && q_join_waiters_.empty() &&
           q_spe_replies_.empty();
  }

  // ---- message handlers ----
  void on_cp_rly(const NodeId& g, const CpRlyMsg& msg);   // copying loop body
  void on_join_wait(const NodeId& x, HostId x_host);      // Figure 6
  void on_join_wait_rly(const NodeId& y, const JoinWaitRlyMsg& m);  // Fig. 7
  void on_join_noti(const NodeId& x, HostId x_host,
                    const JoinNotiMsg& m);                // Figure 9
  void on_join_noti_rly(const NodeId& y, const JoinNotiRlyMsg& m);  // Fig. 10
  void on_spe_noti(const SpeNotiMsg& m);                  // Figure 11
  void on_spe_noti_rly(const SpeNotiRlyMsg& m);           // Figure 12
  void on_in_sys_noti(const NodeId& x);                   // Figure 14
  void on_rv_ngh_noti(const NodeId& x, HostId x_host, const RvNghNotiMsg& m);
  void on_rv_ngh_noti_rly(const NodeId& y, const RvNghNotiRlyMsg& m);

  // The current attempt's silent-past-deadline peers (see suspects_). The
  // chaos engine's quarantine oracle reads this to attribute an abandoned
  // join: a joiner whose suspects include a genuinely crashed node can
  // abandon without any misbehaving peer's help.
  const NodeIdSet& suspects() const { return suspects_; }

 private:
  void begin_attempt();                                   // (re)start Figure 5
  void arm_watchdog();
  void on_watchdog(std::uint32_t gen);
  void rotate_gateway();                                  // see on_watchdog
  // Misbehaving-peer hardening (ProtocolOptions::reply_timeout_ms /
  // suspect_aware_rotation; DESIGN.md §14). note_suspect records a peer
  // that stayed silent past a deadline; the janitor is a per-notification
  // timer that evicts such a peer from the outstanding-reply set so a
  // reply-dropper cannot pin the join in kNotifying.
  void note_suspect(const NodeId& peer);
  void arm_reply_janitor(const NodeId& peer, bool spe);
  void on_reply_janitor(const NodeId& peer, std::uint32_t gen, bool spe);
  // True (and counted) when the message being handled carries the
  // generation of an aborted attempt.
  bool reject_stale_reply();
  void finish_copying_and_wait(const NodeId& target);     // tail of Figure 5
  void check_ngh_table(const TableSnapshot& snap);        // Figure 8
  void send_join_noti(const NodeId& target);
  JoinNotiRlyMsg build_join_noti_rly(bool positive, bool flag,
                                     const JoinNotiMsg& request) const;
  void maybe_switch_to_s_node();
  void switch_to_s_node();                                // Figure 13

  NodeCore& core_;
  LeaveProtocol& leave_;

  std::uint32_t noti_level_ = 0;

  // Copying-phase cursor (Figure 5's i, g, p) and the original gateway the
  // watchdog restarts from.
  std::uint32_t copy_level_ = 0;
  NodeId copy_from_;
  NodeId gateway_;

  // Figure 3 state variables.
  NodeIdSet q_replies_;        // Q_r: nodes we await replies from
  NodeIdSet q_notified_;       // Q_n: nodes we sent notifications to
  // Q_j: deferred JoinWaitMsg senders, each with the generation its request
  // carried (the eventual reply must echo it). Insertion-ordered: the
  // switch_to_s_node drain answers waiters in arrival order.
  FlatNodeMap<std::uint32_t> q_join_waiters_;
  NodeIdSet q_spe_replies_;    // Q_sr: SpeNoti replies outstanding (key: y)
  NodeIdSet q_spe_notified_;   // Q_sn: nodes announced via SpeNotiMsg

  // Peers recorded silent-past-deadline (reply-janitor expiry, or left in
  // an outstanding-reply set when the watchdog aborted an attempt).
  // Persists across watchdog restarts — that persistence is what lets
  // suspect-aware rotation route the next attempt around them — and is
  // wiped only by a crash-restart (reset()). The lifetime count exports as
  // JoinStats::suspected_peers ("join.suspected_peers").
  NodeIdSet suspects_;
};

}  // namespace hcube
