#include "core/optimize.h"

#include "ids/suffix_trie.h"
#include "util/check.h"

namespace hcube {

OptimizeResult optimize_tables(Overlay& overlay, LatencyModel& latency,
                               std::size_t max_candidates) {
  HCUBE_CHECK(max_candidates >= 1);
  OptimizeResult result;

  SuffixTrie members(overlay.params());
  for (const auto& node : overlay.nodes())
    if (!node->has_departed()) members.insert(node->id());

  for (const auto& node : overlay.nodes()) {
    if (node->has_departed()) continue;
    HCUBE_CHECK_MSG(node->is_s_node(),
                    "optimize_tables requires a quiescent overlay");
    const NodeId& x = node->id();
    const HostId x_host = overlay.host_of(x);

    // Collect the rebinds first: mutating while iterating the table is
    // undefined for for_each_filled.
    struct Rebind {
      std::uint32_t level, digit;
      NodeId from, to;
    };
    std::vector<Rebind> rebinds;
    node->table().for_each_filled([&](std::uint32_t i, std::uint32_t j,
                                      const NodeId& current, NeighborState) {
      if (current == x) return;  // own entries stay self-pointing
      ++result.entries_examined;
      Suffix want = x.suffix_of_len(i);
      want.push_back(static_cast<Digit>(j));
      const auto candidates = members.some_with_suffix(want, max_candidates);
      double best_latency = latency.latency_ms(x_host, overlay.host_of(current));
      const NodeId* best = nullptr;
      for (const NodeId& c : candidates) {
        ++result.candidates_scanned;
        if (c == current || c == x) continue;
        const double l = latency.latency_ms(x_host, overlay.host_of(c));
        if (l < best_latency) {
          best_latency = l;
          best = &c;
        }
      }
      if (best != nullptr) rebinds.push_back({i, j, current, *best});
    });

    for (const Rebind& r : rebinds) {
      node->rebind_entry(r.level, r.digit, r.to);
      ++result.entries_rebound;
      // Reverse bookkeeping: the old neighbor may no longer be stored by x
      // anywhere; re-derive instead of guessing.
      bool still_stored = false;
      node->table().for_each_filled(
          [&](std::uint32_t, std::uint32_t, const NodeId& n, NeighborState) {
            if (n == r.from) still_stored = true;
          });
      if (!still_stored) overlay.at(r.from).drop_reverse_neighbor(x);
      overlay.at(r.to).install_reverse_neighbor(x);
    }
  }
  return result;
}

}  // namespace hcube
