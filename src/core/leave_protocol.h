// Graceful-departure protocol (extension; the paper defers leaving to
// future work, Section 7).
//
// The leaver sends each reverse neighbor v a LeaveMsg carrying its table
// rows at levels >= k+1 (k = |csuf|), which by consistency of the leaver's
// table contain a replacement for v's entry whenever one exists anywhere in
// the network; v repairs (or nulls) the entry locally and acks. The
// leaver's own neighbors get an NghDropMsg so their reverse-neighbor sets
// stay exact. Departure completes (status kDeparted) when every ack
// arrived. Supported under the same regime the paper assumes for joins: no
// concurrent membership change touching the same suffix classes.
#pragma once

#include <cstddef>

#include "core/node_core.h"

namespace hcube {

class LeaveProtocol {
 public:
  explicit LeaveProtocol(NodeCore& core) : core_(core) {}

  void start_leave();

  // Sends a LeaveMsg to one reverse neighbor (also used by the join module
  // when a node registers as a reverse neighbor mid-leave).
  void send_leave_to(const NodeId& v);
  bool has_notified(const NodeId& v) const {
    return leave_notified_.contains(v);
  }

  // ---- message handlers ----
  void on_leave(const NodeId& x, HostId x_host, const LeaveMsg& m);
  void on_leave_rly(const NodeId& v);
  void on_ngh_drop(const NodeId& x);

 private:
  NodeCore& core_;
  NodeIdSet leave_notified_;  // reverse neighbors sent a LeaveMsg
  std::size_t leave_acks_pending_ = 0;
};

}  // namespace hcube
