// Graceful-departure protocol (extension; the paper defers leaving to
// future work, Section 7).
//
// The leaver sends each reverse neighbor v a LeaveMsg carrying its table
// rows at levels >= k+1 (k = |csuf|), which by consistency of the leaver's
// table contain a replacement for v's entry whenever one exists anywhere in
// the network; v repairs (or nulls) the entry locally and acks. The
// leaver's own neighbors get an NghDropMsg so their reverse-neighbor sets
// stay exact. Departure completes (status kDeparted) when every ack
// arrived. Supported under the same regime the paper assumes for joins: no
// concurrent membership change touching the same suffix classes.
//
// Robustness extension: a leave-stall watchdog. A reverse neighbor that
// crashes between receiving our LeaveMsg and acking it would otherwise
// strand the leaver in kLeaving forever. When ProtocolOptions::
// leave_watchdog_ms > 0, unanswered LeaveMsgs are re-sent (they are
// idempotent: the receiver's entry is already repaired, so it just acks
// again) up to leave_max_retries times; after that the leaver presumes the
// silent peers dead and departs unilaterally. That is sound under the
// fail-stop model: a dead peer needs no notification, and a peer that was
// merely unreachable still holds a pointer to a now-silent node — exactly
// the dangling state the repair protocol detects (ping timeout) and
// reclaims.
#pragma once

#include <cstdint>

#include "core/node_core.h"

namespace hcube {

class LeaveProtocol {
 public:
  explicit LeaveProtocol(NodeCore& core) : core_(core) {}

  void start_leave();

  // Crash-recovery lifecycle: forgets a half-finished departure of the
  // previous incarnation (its pending acks will be rejected upstream).
  void reset() {
    leave_notified_.clear();
    leave_unacked_.clear();
    ++leave_epoch_;
    leave_retries_ = 0;
  }

  // Sends a LeaveMsg to one reverse neighbor (also used by the join module
  // when a node registers as a reverse neighbor mid-leave).
  void send_leave_to(const NodeId& v);
  bool has_notified(const NodeId& v) const {
    return leave_notified_.contains(v);
  }

  // ---- message handlers ----
  void on_leave(const NodeId& x, HostId x_host, const LeaveMsg& m);
  void on_leave_rly(const NodeId& v);
  void on_ngh_drop(const NodeId& x);

 private:
  void send_leave_msg(const NodeId& v);  // the wire send, no bookkeeping
  void arm_watchdog();
  void on_watchdog(std::uint64_t epoch);

  NodeCore& core_;
  NodeIdSet leave_notified_;  // reverse neighbors sent a LeaveMsg
  NodeIdSet leave_unacked_;   // subset of the above still owing a LeaveRly
  // Guards pending watchdog timers across reset()/re-leave: a timer fires
  // inert when its captured epoch is stale.
  std::uint64_t leave_epoch_ = 0;
  std::uint32_t leave_retries_ = 0;
};

}  // namespace hcube
