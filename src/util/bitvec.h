// Compact bit vector.
//
// Section 6.2 of the paper proposes shrinking JoinNotiMsg replies by sending
// a bit vector with one bit per neighbor-table entry ('1' = entry already
// filled at the sender). This is that bit vector; it also serves as the
// presence bitmap in our wire-size model for table snapshots.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace hcube {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const { return nbits_; }
  std::size_t size_bytes() const { return (nbits_ + 7) / 8; }

  bool get(std::size_t i) const {
    HCUBE_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i, bool value = true) {
    HCUBE_DCHECK(i < nbits_);
    if (value)
      words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
    else
      words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  std::size_t popcount() const;

  bool operator==(const BitVec& other) const = default;

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hcube
