// Host (transport endpoint) identity.
//
// A HostId is the dense index of an end host: its slot in the latency model,
// in the transport's endpoint table and in Overlay's node vector. In a
// deployment this is the role an IP address plays; keeping it a dense index
// lets every per-host lookup be an array access instead of a hash.
#pragma once

#include <cstdint>

namespace hcube {

using HostId = std::uint32_t;

// Sentinel for "host not resolved yet" (e.g. a neighbor-table entry whose
// owner has not needed to send to that neighbor).
inline constexpr HostId kNoHost = 0xffffffffu;

}  // namespace hcube
