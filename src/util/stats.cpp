#include "util/stats.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace hcube {

void StreamingStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double StreamingStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double EmpiricalDistribution::mean() const {
  if (n_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [v, c] : counts_)
    sum += static_cast<double>(v) * static_cast<double>(c);
  return sum / static_cast<double>(n_);
}

std::int64_t EmpiricalDistribution::min() const {
  HCUBE_CHECK(n_ > 0);
  return counts_.begin()->first;
}

std::int64_t EmpiricalDistribution::max() const {
  HCUBE_CHECK(n_ > 0);
  return counts_.rbegin()->first;
}

double EmpiricalDistribution::cdf(std::int64_t value) const {
  if (n_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (const auto& [v, c] : counts_) {
    if (v > value) break;
    acc += c;
  }
  return static_cast<double>(acc) / static_cast<double>(n_);
}

std::int64_t EmpiricalDistribution::quantile(double q) const {
  HCUBE_CHECK(n_ > 0);
  HCUBE_CHECK(q > 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(n_);
  std::uint64_t acc = 0;
  for (const auto& [v, c] : counts_) {
    acc += c;
    if (static_cast<double>(acc) >= target) return v;
  }
  return counts_.rbegin()->first;
}

std::vector<std::pair<std::int64_t, double>>
EmpiricalDistribution::cdf_points() const {
  std::vector<std::pair<std::int64_t, double>> out;
  out.reserve(counts_.size());
  std::uint64_t acc = 0;
  for (const auto& [v, c] : counts_) {
    acc += c;
    out.emplace_back(v, static_cast<double>(acc) / static_cast<double>(n_));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  HCUBE_CHECK(hi > lo);
  HCUBE_CHECK(bins > 0);
}

void Histogram::add(double x) {
  ++n_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(bins_.size()));
  ++bins_[idx < bins_.size() ? idx : bins_.size() - 1];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::to_string(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : bins_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") ";
    const auto stars = static_cast<std::size_t>(
        static_cast<double>(bins_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    os << std::string(stars, '#') << " " << bins_[i] << "\n";
  }
  if (underflow_) os << "underflow: " << underflow_ << "\n";
  if (overflow_) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

}  // namespace hcube
