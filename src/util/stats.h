// Streaming statistics, histograms and empirical CDFs used by the benchmark
// harness (Figure 15(b) reproduces a CDF of per-join message counts).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace hcube {

// Welford one-pass mean/variance plus min/max.
class StreamingStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Empirical distribution over integer-valued observations (e.g. message
// counts). Exact: keeps one bucket per distinct value.
class EmpiricalDistribution {
 public:
  void add(std::int64_t value) { ++counts_[value]; ++n_; }

  std::uint64_t count() const { return n_; }
  double mean() const;
  std::int64_t min() const;
  std::int64_t max() const;

  // P[X <= value].
  double cdf(std::int64_t value) const;
  // Smallest value v with P[X <= v] >= q, q in (0, 1].
  std::int64_t quantile(double q) const;

  // (value, cumulative probability) points, one per distinct value, suitable
  // for plotting a CDF curve.
  std::vector<std::pair<std::int64_t, double>> cdf_points() const;

  const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return counts_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t n_ = 0;
};

// Fixed-width histogram over doubles, for latency-style data.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t count() const { return n_; }
  const std::vector<std::uint64_t>& bins() const { return bins_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::string to_string(std::size_t bar_width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0, overflow_ = 0;
  std::uint64_t n_ = 0;
};

}  // namespace hcube
