// Bump-allocating arena for dense per-overlay storage.
//
// NeighborTable's SoA columns are fixed-size at construction and live until
// the overlay dies; allocating them from one arena packs every table's
// columns into a handful of large chunks (cache-dense, one malloc per
// chunk) instead of thousands of small heap blocks. Nothing is ever freed
// individually — the arena releases everything at once on destruction, so
// allocations must not outlive it (Overlay owns the arena and the nodes
// whose tables point into it; see DESIGN.md §13 for the lifetime rules).
//
// Pointers handed out are stable: chunks are never moved or reallocated.
//
// Ownership: an arena belongs to exactly one overlay, and in the sharded
// simulator one shard owns that overlay — so the arena is externally
// synchronized. Members are HCUBE_GUARDED_BY(owner_) and every method
// asserts the ownership capability (a no-op at runtime), which makes any
// future cross-shard access a `-Wthread-safety` error instead of a data
// race (util/thread_safety.h, DESIGN.md §15).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.h"
#include "util/thread_safety.h"

namespace hcube {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 1u << 20;  // 1 MiB

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized storage for n objects of T. T must be trivially
  // destructible (nothing runs destructors on arena memory).
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  void* allocate(std::size_t bytes, std::size_t align) {
    owner_.assert_held();
    HCUBE_DCHECK((align & (align - 1)) == 0);
    std::uintptr_t p = (cursor_ + align - 1) & ~(std::uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      grow(bytes + align);
      p = (cursor_ + align - 1) & ~(std::uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  // Bytes handed out / bytes reserved from the heap (for accounting).
  std::size_t bytes_used() const {
    owner_.assert_held();
    return used_;
  }
  std::size_t bytes_reserved() const {
    owner_.assert_held();
    return reserved_;
  }

 private:
  void grow(std::size_t min_bytes) HCUBE_REQUIRES(owner_) {
    const std::size_t size = min_bytes > chunk_bytes_ ? min_bytes
                                                      : chunk_bytes_;
    chunks_.push_back(std::make_unique<std::byte[]>(size));
    cursor_ = reinterpret_cast<std::uintptr_t>(chunks_.back().get());
    limit_ = cursor_ + size;
    reserved_ += size;
  }

  const std::size_t chunk_bytes_;
  ExternallySynchronized owner_;  // single-owner capability (see header)
  std::vector<std::unique_ptr<std::byte[]>> chunks_ HCUBE_GUARDED_BY(owner_);
  std::uintptr_t cursor_ HCUBE_GUARDED_BY(owner_) = 0;
  std::uintptr_t limit_ HCUBE_GUARDED_BY(owner_) = 0;
  std::size_t used_ HCUBE_GUARDED_BY(owner_) = 0;
  std::size_t reserved_ HCUBE_GUARDED_BY(owner_) = 0;
};

}  // namespace hcube
