#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace hcube {

double Rng::next_exponential(double mean) {
  HCUBE_CHECK(mean > 0);
  // 1 - next_double() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - next_double());
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  HCUBE_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected insertions.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  for (std::uint64_t j = n - k; j < n; ++j) {
    std::uint64_t t = next_below(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<std::uint64_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hcube
