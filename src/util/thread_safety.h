// Clang thread-safety capabilities for the structures the sharded
// simulator will share.
//
// The simulator is single-threaded today, but ROADMAP item 1's per-shard
// event queues put threads underneath state that was audited only for
// single-threaded determinism. This header makes the sharing contracts
// machine-checkable *before* the sharding PR lands: every shared mutable
// structure either carries a real lock (IdTable's writer mutex) or an
// ownership capability that documents — and lets `-Wthread-safety`
// enforce — that exactly one shard touches it at a time.
//
// All macros expand to Clang's thread-safety attributes under Clang and to
// nothing elsewhere, so the g++ build is unchanged and the CI
// `thread-safety` job (clang, `-Wthread-safety -Werror`) is the gate.
// See DESIGN.md §15 for the capability model.
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define HCUBE_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define HCUBE_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

// A class that is a lockable capability ("mutex", "shard", ...).
#define HCUBE_CAPABILITY(x) HCUBE_TS_ATTRIBUTE(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor.
#define HCUBE_SCOPED_CAPABILITY HCUBE_TS_ATTRIBUTE(scoped_lockable)

// Data members: reads and writes require holding the named capability.
#define HCUBE_GUARDED_BY(x) HCUBE_TS_ATTRIBUTE(guarded_by(x))
// Pointer members: dereferencing the pointee requires the capability
// (the pointer itself is unguarded).
#define HCUBE_PT_GUARDED_BY(x) HCUBE_TS_ATTRIBUTE(pt_guarded_by(x))

// Functions: the caller must hold the capability (exclusively / shared).
#define HCUBE_REQUIRES(...) \
  HCUBE_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define HCUBE_REQUIRES_SHARED(...) \
  HCUBE_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// Functions: acquire / release the capability (lock() and unlock() style).
#define HCUBE_ACQUIRE(...) HCUBE_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define HCUBE_RELEASE(...) HCUBE_TS_ATTRIBUTE(release_capability(__VA_ARGS__))

// Functions: assert the capability is held without acquiring it — the
// single-owner idiom (see ExternallySynchronized below).
#define HCUBE_ASSERT_CAPABILITY(...) \
  HCUBE_TS_ATTRIBUTE(assert_capability(__VA_ARGS__))

// The caller must NOT hold the capability (deadlock prevention).
#define HCUBE_EXCLUDES(...) HCUBE_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Returns a reference to the named capability.
#define HCUBE_RETURN_CAPABILITY(x) HCUBE_TS_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables the analysis for one function. Use only in
// init/teardown code the analysis cannot model; every use is a waiver the
// sharding PR has to re-audit, and src/ids/ + src/obs/ must stay free of
// them (CI acceptance).
#define HCUBE_NO_THREAD_SAFETY_ANALYSIS \
  HCUBE_TS_ATTRIBUTE(no_thread_safety_analysis)

// Marks a file-scope/static object whose *type* synchronizes internally
// (e.g. the IdTable singleton: annotated writer lock + lock-free readers).
// Expands to nothing; the hclint rule `shared-state-annotated` accepts it
// as the required annotation.
#define HCUBE_INTERNALLY_SYNCHRONIZED

namespace hcube {

// std::mutex with the capability attribute so members can be
// HCUBE_GUARDED_BY(mu_) and functions HCUBE_REQUIRES(mu_).
class HCUBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HCUBE_ACQUIRE() { mu_.lock(); }
  void unlock() HCUBE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock for Mutex.
class HCUBE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HCUBE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HCUBE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Capability for single-owner ("externally synchronized") structures: the
// per-shard EventQueue, each scope's MetricsRegistry, the per-overlay
// Arena. These take no lock — the sharding design gives every instance
// exactly one owning shard — but their members are HCUBE_GUARDED_BY(sync_)
// so that every access must flow through a method that asserted ownership.
// Adding an accessor that forgets owner().assert_held() is a
// -Wthread-safety error, which is exactly the audit trail the sharding PR
// needs: the set of entry points into shared-able state stays explicit.
//
// When sharding lands, assert_held() is the seam where a real owner check
// (HCUBE_DCHECK(current_shard == owner_shard)) slots in.
class HCUBE_CAPABILITY("owner") ExternallySynchronized {
 public:
  // Copyable on purpose: hosts keep their value semantics (a registry
  // round-tripped through from_json is a fresh instance with a fresh
  // owner), and the capability itself carries no runtime state.

  // The calling thread claims (not negotiates) ownership: a no-op at
  // runtime today, a static fact for the analysis.
  void assert_held() const HCUBE_ASSERT_CAPABILITY(this) {}
};

}  // namespace hcube
