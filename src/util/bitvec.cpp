#include "util/bitvec.h"

#include <bit>

namespace hcube {

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

}  // namespace hcube
