#include "util/logmath.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace hcube {

double log_factorial(std::uint64_t k) {
  return std::lgamma(static_cast<double>(k) + 1.0);
}

double log_binomial(double N, std::uint64_t k) {
  HCUBE_CHECK(N >= 0.0);
  if (k == 0) return 0.0;
  if (static_cast<double>(k) > N)
    return -std::numeric_limits<double>::infinity();
  // For N much larger than k, log(N - j) is essentially flat across
  // j = 0..k-1; summing term by term stays exact for small N too. Kahan
  // compensation matters here: naive accumulation of 1e5 terms of
  // magnitude ~1e2 costs ~1e-6 absolute error in the log, which is visible
  // after exponentiation (Theorem 4 evaluates differences of such sums).
  double sum = 0.0, comp = 0.0;
  for (std::uint64_t j = 0; j < k; ++j) {
    const double term = std::log(N - static_cast<double>(j)) - comp;
    const double next = sum + term;
    comp = (next - sum) - term;
    sum = next;
  }
  return sum - log_factorial(k);
}

double log_add_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  return hi + std::log1p(std::exp(lo - hi));
}

double log_sum_exp(const std::vector<double>& v) {
  double acc = -std::numeric_limits<double>::infinity();
  for (double x : v) acc = log_add_exp(acc, x);
  return acc;
}

unsigned __int128 binomial_exact(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  unsigned __int128 result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // result * (n - k + i) must not overflow; check before multiplying.
    const unsigned __int128 factor = n - k + i;
    HCUBE_CHECK_MSG(result <= ~static_cast<unsigned __int128>(0) / factor,
                    "binomial_exact overflow");
    result = result * factor / i;  // divisible at each step
  }
  return result;
}

}  // namespace hcube
