// Log-space combinatorics.
//
// Theorem 4 of the paper evaluates hypergeometric-style terms such as
//   C(B, k) * C(b^d - b^{d-i}, n - k) / C(b^d - 1, n)
// with b = 16, d = 40, i.e. population sizes around 1.46e48. Those binomial
// coefficients overflow any fixed-width type and lgamma differencing loses
// all precision at that magnitude, so everything here works with
// log C(N, k) computed as  sum_{j=0}^{k-1} log(N - j)  -  log k! ,
// which is accurate for huge N and the moderate k (<= a few 1e5) we need.
#pragma once

#include <cstdint>
#include <vector>

namespace hcube {

// log(k!) via lgamma. Exact enough for all k we use.
double log_factorial(std::uint64_t k);

// log C(N, k) for real-valued population size N >= 0 and integer k.
// Returns -infinity when k > N (no way to choose). N is a double because the
// population sizes (b^d - ...) exceed uint64 range; they are integers whose
// double representation carries ~16 significant digits, which dominates all
// other error terms here.
double log_binomial(double N, std::uint64_t k);

// log(exp(a) + exp(b)) without overflow.
double log_add_exp(double a, double b);

// log(sum_i exp(v_i)); -infinity for an empty vector.
double log_sum_exp(const std::vector<double>& v);

// Exact binomial coefficient for small arguments (used to validate the
// log-space code in tests). Checks for overflow of unsigned __int128.
unsigned __int128 binomial_exact(std::uint64_t n, std::uint64_t k);

}  // namespace hcube
