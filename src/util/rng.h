// Deterministic, seedable pseudo-random number generation.
//
// The simulator and workload generators must be exactly reproducible across
// runs and platforms, so we implement xoshiro256** (Blackman & Vigna) seeded
// via splitmix64 rather than relying on std::mt19937 + distribution objects,
// whose outputs are not specified identically across standard libraries for
// floating-point distributions.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace hcube {

// splitmix64: used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound), bound > 0. Lemire-style rejection to
  // avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    HCUBE_CHECK(bound > 0);
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    HCUBE_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  // Exponentially distributed with the given mean (for latency jitter).
  double next_exponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) in increasing order (Floyd).
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

  // Derive an independent child generator (for per-node streams).
  Rng fork() { return Rng((*this)() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace hcube
