// Canonical metric-name declarations.
//
// Every stats struct that exports values into the observability layer
// declares its registry names with HCUBE_METRIC right next to the fields
// they describe — the name and the field can only drift apart in one place.
// Names are dotted, lowercase, and globally unique across the source tree:
// the character set is enforced at compile time here, uniqueness by the
// hclint rule `obs-metric-registered` (tools/hclint).
//
// This header is dependency-free on purpose and lives in util/ (not obs/)
// so any layer (proto, net, core, chaos) may declare names without linking
// against the obs library — and without creating a back-edge in the layer
// DAG that hclint's `layering-acyclic-includes` rule pins (DESIGN.md §15).
#pragma once

#include <string_view>

namespace hcube::obs {

// The registry name grammar: ^[a-z0-9_.]+$ (nonempty).
constexpr bool is_valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace hcube::obs

// Declares a canonical metric name. The name must be a string literal (the
// hclint rule reads it textually) and match ^[a-z0-9_.]+$.
#define HCUBE_METRIC(ident, name)                                        \
  inline constexpr const char* ident = name;                             \
  static_assert(::hcube::obs::is_valid_metric_name(name),                \
                "metric name must match ^[a-z0-9_.]+$")
