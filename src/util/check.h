// Lightweight contract checks used throughout the library.
//
// HCUBE_CHECK is always on (protocol invariants whose violation indicates a
// bug that would silently corrupt neighbor tables); HCUBE_DCHECK compiles out
// in NDEBUG builds (hot-path sanity checks).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hcube {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "HCUBE_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace hcube

#define HCUBE_CHECK(expr)                                        \
  do {                                                           \
    if (!(expr)) ::hcube::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HCUBE_CHECK_MSG(expr, msg)                                \
  do {                                                            \
    if (!(expr)) ::hcube::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define HCUBE_DCHECK(expr) ((void)0)
#else
#define HCUBE_DCHECK(expr) HCUBE_CHECK(expr)
#endif
