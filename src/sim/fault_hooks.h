// Shared observation/fault-injection seam of every message-moving component.
//
// SimNetwork and the net/ transports used to carry their own copy-pasted
// on_send / drop_filter plumbing; this template is that logic, written once.
// A component inherits FaultHooks<Msg> publicly (so `t.on_send = ...` and
// `t.drop_filter = ...` keep working) and calls admit() at the top of its
// send path: admit fires the observation hook, consults the drop filter,
// then asks the fault injector — if one is installed — what to do with the
// message. FaultPlan (net/fault_plan.h) is the seeded, reproducible injector
// built on this seam; ad-hoc test lambdas plug into the same three hooks.
#pragma once

#include <functional>

#include "util/host.h"

namespace hcube {

enum class FaultAction : std::uint8_t {
  kDeliver,    // deliver normally (possibly with extra delay)
  kDrop,       // silently lose the message
  kDuplicate,  // deliver twice (the copy also gets the extra delay)
};

struct FaultDecision {
  FaultAction action = FaultAction::kDeliver;
  double extra_delay_ms = 0.0;  // added on top of the modelled latency
};

template <typename Msg>
class FaultHooks {
 public:
  // Observation hook: called for every send attempt (before drop filtering).
  std::function<void(HostId from, HostId to, const Msg& msg)> on_send;
  // Failure injection: return true to drop the message. Kept alongside the
  // richer fault_injector because a plain predicate is the right tool for
  // "lose exactly these messages" tests; when both are set the drop filter
  // is consulted first.
  std::function<bool(HostId from, HostId to, const Msg& msg)> drop_filter;
  // Rich failure injection: decides drop/duplicate/extra-delay per message.
  // Installed by FaultPlan::attach; only consulted when the drop filter
  // (if any) let the message through.
  std::function<FaultDecision(HostId from, HostId to, const Msg& msg)>
      fault_injector;

 protected:
  ~FaultHooks() = default;

  // The send-path preamble every implementation shares.
  FaultDecision admit(HostId from, HostId to, const Msg& msg) const {
    if (on_send) on_send(from, to, msg);
    if (drop_filter && drop_filter(from, to, msg))
      return {FaultAction::kDrop, 0.0};
    if (fault_injector) return fault_injector(from, to, msg);
    return {};
  }
};

}  // namespace hcube
