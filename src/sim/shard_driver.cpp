#include "sim/shard_driver.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/shard_context.h"
#include "util/check.h"

namespace hcube {

ShardDriver::ShardDriver(std::vector<EventQueue*> lanes, double epoch_ms,
                         std::function<void()> commit)
    : queues_(std::move(lanes)), epoch_ms_(epoch_ms),
      commit_(std::move(commit)) {
  HCUBE_CHECK(!queues_.empty() && queues_.size() <= kMaxShardLanes);
  HCUBE_CHECK_MSG(epoch_ms_ > 0.0, "epoch must have positive length");
  HCUBE_CHECK(commit_ != nullptr);
  if (queues_.size() > 1) {
    workers_.reserve(queues_.size());
    for (std::uint32_t lane = 0; lane < queues_.size(); ++lane)
      workers_.emplace_back([this, lane] { worker_main(lane); });
  }
}

ShardDriver::~ShardDriver() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ShardDriver::schedule_action(SimTime t, std::function<void()> fn) {
  HCUBE_CHECK_MSG(t >= floor_, "cannot schedule an action into the past");
  actions_.push_back(PendingAction{t, next_action_seq_++, std::move(fn)});
  std::push_heap(actions_.begin(), actions_.end(), ActionAfter{});
}

SimTime ShardDriver::min_pending_event_time() const {
  SimTime t = std::numeric_limits<SimTime>::infinity();
  for (EventQueue* q : queues_) t = std::min(t, q->next_event_time());
  return t;
}

void ShardDriver::drain() {
  const SimTime kInf = std::numeric_limits<SimTime>::infinity();
  for (;;) {
    // Pick up sends issued at the previous barrier (by driver actions):
    // their deliveries may be due before the boundary the pending-event
    // scan alone would pick, so commit them first.
    commit_();

    const SimTime t_evt = min_pending_event_time();
    const SimTime t_act = actions_.empty() ? kInf : actions_.front().t;
    if (t_evt == kInf && t_act == kInf) return;

    // Gap-jump to the next action when nothing is pending before it;
    // otherwise advance one epoch from the earliest pending event.
    const SimTime boundary =
        t_act <= t_evt ? t_act : std::min(t_act, t_evt + epoch_ms_);

    run_epoch(boundary);
    ++epochs_;
    for (EventQueue* q : queues_)
      last_time_ = std::max(last_time_, q->last_processed_time());
    floor_ = last_time_;

    // Canonical barrier: committed deliveries (due >= boundary) are
    // scheduled before actions at the boundary run, so they take lower
    // sequence numbers than anything those actions schedule — the same
    // tie-break order the sequential queue produces.
    commit_();
    if (!actions_.empty() && actions_.front().t == boundary) {
      // Actions run protocol code outside any event: synchronize every
      // lane's clock to the action instant first, so their sends compute
      // the delivery times a sequential run would (event_queue.h,
      // advance_to).
      for (EventQueue* q : queues_) q->advance_to(boundary);
    }
    while (!actions_.empty() && actions_.front().t == boundary) {
      std::pop_heap(actions_.begin(), actions_.end(), ActionAfter{});
      PendingAction act = std::move(actions_.back());
      actions_.pop_back();
      act.fn();
      ++actions_run_;
      last_time_ = std::max(last_time_, act.t);
      floor_ = last_time_;
    }
  }
}

std::uint64_t ShardDriver::events_processed() const {
  std::uint64_t n = actions_run_;
  for (EventQueue* q : queues_) n += q->events_processed();
  return n;
}

void ShardDriver::run_epoch(SimTime boundary) {
  if (queues_.size() == 1) {
    // Single lane: no worker threads; run the epoch inline.
    LaneScope scope(queues_[0], 0);
    queues_[0]->run_before(boundary);
    return;
  }
  mu_.lock();
  boundary_ = boundary;
  workers_running_ = static_cast<std::uint32_t>(queues_.size());
  ++epoch_gen_;
  cv_.notify_all();
  while (workers_running_ != 0) cv_.wait(mu_);
  mu_.unlock();
}

void ShardDriver::worker_main(std::uint32_t lane) {
  EventQueue* queue = queues_[lane];
  LaneScope scope(queue, lane);
  std::uint64_t seen = 0;
  for (;;) {
    SimTime boundary;
    mu_.lock();
    while (!shutdown_ && epoch_gen_ == seen) cv_.wait(mu_);
    if (shutdown_) {
      mu_.unlock();
      return;
    }
    seen = epoch_gen_;
    boundary = boundary_;
    mu_.unlock();

    queue->run_before(boundary);

    mu_.lock();
    const bool last = --workers_running_ == 0;
    mu_.unlock();
    if (last) cv_.notify_all();
  }
}

}  // namespace hcube
