// Simulated message network.
//
// Delivers messages between endpoints (end hosts) through an EventQueue with
// per-pair latencies from a LatencyModel. Latency per ordered pair is
// constant within a run and ties break by send order, so per-pair delivery
// is FIFO — a stronger guarantee than the paper needs (it only assumes
// reliable delivery).
//
// Templated on the message payload so the simulator core stays independent
// of the protocol message definitions.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/fault_hooks.h"
#include "topology/latency.h"
#include "util/check.h"

namespace hcube {

template <typename Msg>
class SimNetwork : public FaultHooks<Msg> {
 public:
  using Handler = std::function<void(HostId from, const Msg& msg)>;

  SimNetwork(EventQueue& queue, LatencyModel& latency)
      : queue_(queue), latency_(latency) {}

  // Registers an endpoint; returns its host id (also its index in the
  // latency model). Endpoints must be registered before any send to them.
  HostId add_endpoint(Handler handler) {
    HCUBE_CHECK_MSG(handlers_.size() < latency_.num_hosts(),
                    "more endpoints than hosts in the latency model");
    handlers_.push_back(std::move(handler));
    return static_cast<HostId>(handlers_.size() - 1);
  }

  std::uint32_t num_endpoints() const {
    return static_cast<std::uint32_t>(handlers_.size());
  }

  // Sends msg from -> to; delivery is scheduled at now + latency(from, to)
  // plus whatever extra delay the fault seam decides. Returns false if the
  // message was dropped by the drop filter or the fault injector.
  bool send(HostId from, HostId to, Msg msg) {
    HCUBE_CHECK(from < handlers_.size() && to < handlers_.size());
    const FaultDecision d = this->admit(from, to, msg);
    if (d.action == FaultAction::kDrop) {
      ++messages_dropped_;
      return false;
    }
    const double delay = latency_.latency_ms(from, to) + d.extra_delay_ms;
    if (d.action == FaultAction::kDuplicate) {
      ++messages_sent_;
      queue_.schedule_after(delay, [this, from, to, m = msg]() {
        ++messages_delivered_;
        handlers_[to](from, m);
      });
    }
    ++messages_sent_;
    queue_.schedule_after(delay, [this, from, to, m = std::move(msg)]() {
      ++messages_delivered_;
      handlers_[to](from, m);
    });
    return true;
  }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }

  EventQueue& queue() { return queue_; }

 private:
  EventQueue& queue_;
  LatencyModel& latency_;
  std::vector<Handler> handlers_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace hcube
