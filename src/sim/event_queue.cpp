#include "sim/event_queue.h"

#include "util/check.h"

namespace hcube {

void EventQueue::schedule_at(SimTime t, std::function<void()> fn) {
  HCUBE_CHECK_MSG(t >= now_, "cannot schedule into the past");
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_after(SimTime delay, std::function<void()> fn) {
  HCUBE_CHECK(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the function handle out of a popped element instead.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && run_next()) ++n;
  return n;
}

std::uint64_t EventQueue::run_until(SimTime t_end) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().time <= t_end && run_next()) ++n;
  if (t_end > now_) now_ = t_end;
  return n;
}

}  // namespace hcube
