#include "sim/event_queue.h"

#include <limits>
#include <utility>

#include "util/check.h"

namespace hcube {

void EventQueue::push_event(Event ev) {
  heap_.push_back(ev);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

EventQueue::Event EventQueue::pop_event() {
  HCUBE_DCHECK(!heap_.empty());
  const Event top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t best = i;
    if (l < n && earlier(heap_[l], heap_[best])) best = l;
    if (r < n && earlier(heap_[r], heap_[best])) best = r;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

std::uint32_t EventQueue::acquire_timer_slot(std::function<void()> fn) {
  if (!timer_free_.empty()) {
    const std::uint32_t slot = timer_free_.back();
    timer_free_.pop_back();
    timer_pool_[slot] = std::move(fn);
    return slot;
  }
  timer_pool_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(timer_pool_.size() - 1);
}

void EventQueue::schedule_at(SimTime t, std::function<void()> fn) {
  owner_.assert_held();
  HCUBE_CHECK_MSG(t >= now_, "cannot schedule into the past");
  const std::uint32_t slot = acquire_timer_slot(std::move(fn));
  push_event(Event{t, next_seq_++, nullptr, 0, 0, slot, EventKind::kClosure});
}

void EventQueue::schedule_after(SimTime delay, std::function<void()> fn) {
  owner_.assert_held();
  HCUBE_CHECK(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::schedule_delivery_at(SimTime t, DeliverySink* sink,
                                      HostId from, HostId to,
                                      std::uint32_t payload_slot) {
  owner_.assert_held();
  HCUBE_CHECK_MSG(t >= now_, "cannot schedule into the past");
  HCUBE_DCHECK(sink != nullptr);
  push_event(
      Event{t, next_seq_++, sink, from, to, payload_slot, EventKind::kDelivery});
}

void EventQueue::schedule_delivery_after(SimTime delay, DeliverySink* sink,
                                         HostId from, HostId to,
                                         std::uint32_t payload_slot) {
  owner_.assert_held();
  HCUBE_CHECK(delay >= 0.0);
  schedule_delivery_at(now_ + delay, sink, from, to, payload_slot);
}

void EventQueue::schedule_timer_at(SimTime t, TimerSink* sink, std::uint32_t a,
                                   std::uint32_t b, std::uint32_t c) {
  owner_.assert_held();
  HCUBE_CHECK_MSG(t >= now_, "cannot schedule into the past");
  HCUBE_DCHECK(sink != nullptr);
  push_event(Event{t, next_seq_++, sink, a, b, c, EventKind::kTimer});
}

void EventQueue::schedule_timer_after(SimTime delay, TimerSink* sink,
                                      std::uint32_t a, std::uint32_t b,
                                      std::uint32_t c) {
  owner_.assert_held();
  HCUBE_CHECK(delay >= 0.0);
  schedule_timer_at(now_ + delay, sink, a, b, c);
}

void EventQueue::dispatch(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kDelivery:
      static_cast<DeliverySink*>(ev.sink)->deliver(ev.a, ev.b, ev.slot);
      return;
    case EventKind::kTimer:
      static_cast<TimerSink*>(ev.sink)->on_timer(ev.a, ev.b, ev.slot);
      return;
    case EventKind::kClosure: {
      // Move the closure out before running it: the callback may schedule
      // new timers (recycling this very slot) without invalidating itself.
      std::function<void()> fn = std::move(timer_pool_[ev.slot]);
      timer_pool_[ev.slot] = nullptr;
      timer_free_.push_back(ev.slot);
      fn();
      return;
    }
  }
}

bool EventQueue::run_next() {
  owner_.assert_held();
  if (heap_.empty()) return false;
  const Event ev = pop_event();
  now_ = ev.time;
  last_processed_ = ev.time;
  ++processed_;
  dispatch(ev);
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  owner_.assert_held();
  std::uint64_t n = 0;
  while (n < max_events && run_next()) ++n;
  return n;
}

std::uint64_t EventQueue::run_until(SimTime t_end) {
  owner_.assert_held();
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().time <= t_end && run_next()) ++n;
  if (t_end > now_) now_ = t_end;
  return n;
}

std::uint64_t EventQueue::run_before(SimTime t_end) {
  owner_.assert_held();
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().time < t_end && run_next()) ++n;
  return n;
}

void EventQueue::advance_to(SimTime t) {
  owner_.assert_held();
  HCUBE_CHECK_MSG(t >= now_, "cannot rewind the simulated clock");
  now_ = t;
}

SimTime EventQueue::next_event_time() const {
  owner_.assert_held();
  if (heap_.empty()) return std::numeric_limits<SimTime>::infinity();
  return heap_.front().time;
}

}  // namespace hcube
