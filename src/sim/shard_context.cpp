#include "sim/shard_context.h"

#include "util/check.h"

namespace hcube {

namespace {
// Written only through LaneScope on the owning thread; thread_local, so the
// shared-state capability rules don't apply.
thread_local LaneContext g_lane_context;
}  // namespace

LaneContext current_lane_context() {
  const LaneContext ctx = g_lane_context;
  return ctx;
}

EventQueue* current_lane_queue() {
  EventQueue* queue = g_lane_context.queue;
  return queue;
}

std::uint32_t current_lane_or(std::uint32_t fallback) {
  const LaneContext ctx = g_lane_context;
  if (ctx.queue == nullptr) return fallback;
  return ctx.lane;
}

std::uint32_t lane_scratch_slot() {
  const LaneContext ctx = g_lane_context;
  if (ctx.queue == nullptr) return kMaxShardLanes;
  HCUBE_DCHECK(ctx.lane < kMaxShardLanes);
  return ctx.lane;
}

LaneScope::LaneScope(EventQueue* queue, std::uint32_t lane)
    : prev_(g_lane_context) {
  HCUBE_DCHECK(queue == nullptr || lane < kMaxShardLanes);
  g_lane_context = LaneContext{queue, lane};
}

LaneScope::~LaneScope() { g_lane_context = prev_; }

}  // namespace hcube
