// Discrete-event simulation core.
//
// A single-threaded event queue with a simulated clock. Events scheduled for
// the same instant execute in scheduling order (monotonic sequence-number
// tie-break), which makes every simulation run bit-reproducible for a given
// seed — essential for the protocol tests, which assert properties of
// specific interleavings.
//
// Events come in three flavors, two of them typed so per-message and
// per-retransmission hot paths are allocation-free:
//   - Message deliveries carry only {sink, from, to, payload slot} — plain
//     data, no closure. The payload itself lives in a slab owned by the
//     transport (see net/pooled_transport.h); the queue never touches it.
//   - Typed timers carry {sink, a, b, c} — plain data again. Components with
//     recurring timers (the reliable transport's retransmission clock)
//     implement TimerSink and interpret the three words themselves.
//   - Closure timers keep a std::function, but the closures live in a pooled
//     slab whose slots are recycled, so a steady stream of timers reuses
//     storage instead of growing the heap.
// All flavors share one sequence counter, so the relative order of timers
// and deliveries scheduled for the same instant is exactly the order in
// which they were scheduled — the same tie-break the closure-based queue
// had, which keeps pre-refactor event sequences intact.
//
// Sharding contract: the queue is externally synchronized PER SHARD — each
// shard owns one EventQueue, and cross-shard sends go through the epoch/
// barrier handoff, never by scheduling into another shard's queue. Members
// are HCUBE_GUARDED_BY(owner_) and every method asserts the ownership
// capability (a no-op at runtime), so a direct cross-shard schedule_*()
// call is a `-Wthread-safety` error, not a heisenbug (util/thread_safety.h,
// DESIGN.md §15).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/host.h"
#include "util/thread_safety.h"

namespace hcube {

using SimTime = double;  // milliseconds of simulated time

// Receiver of a pooled message-delivery event. Implemented by transports:
// the queue hands back (from, to, payload_slot) at delivery time and the
// sink looks the payload up in its own slab.
class DeliverySink {
 public:
  virtual void deliver(HostId from, HostId to, std::uint32_t payload_slot) = 0;

 protected:
  ~DeliverySink() = default;  // never deleted through this interface
};

// Receiver of a typed timer event: three plain words of payload, no closure.
// Cancellation is the sink's business — a fired timer whose work was
// obsoleted (e.g. the tracked message was acked) checks its own state and
// returns.
class TimerSink {
 public:
  virtual void on_timer(std::uint32_t a, std::uint32_t b, std::uint32_t c) = 0;

 protected:
  ~TimerSink() = default;  // never deleted through this interface
};

class EventQueue {
 public:
  SimTime now() const {
    owner_.assert_held();
    return now_;
  }
  bool empty() const {
    owner_.assert_held();
    return heap_.empty();
  }
  std::size_t pending() const {
    owner_.assert_held();
    return heap_.size();
  }
  std::uint64_t events_processed() const {
    owner_.assert_held();
    return processed_;
  }

  // Schedules fn at absolute simulated time t (>= now).
  void schedule_at(SimTime t, std::function<void()> fn);
  // Schedules fn after the given delay (>= 0).
  void schedule_after(SimTime delay, std::function<void()> fn);

  // Schedules a message delivery: at time t, sink->deliver(from, to, slot)
  // runs. Allocation-free once the heap's capacity has warmed up.
  void schedule_delivery_at(SimTime t, DeliverySink* sink, HostId from,
                            HostId to, std::uint32_t payload_slot);
  void schedule_delivery_after(SimTime delay, DeliverySink* sink, HostId from,
                               HostId to, std::uint32_t payload_slot);

  // Schedules a typed timer: at time t, sink->on_timer(a, b, c) runs.
  // Allocation-free once the heap's capacity has warmed up.
  void schedule_timer_at(SimTime t, TimerSink* sink, std::uint32_t a,
                         std::uint32_t b, std::uint32_t c = 0);
  void schedule_timer_after(SimTime delay, TimerSink* sink, std::uint32_t a,
                            std::uint32_t b, std::uint32_t c = 0);

  // Executes the earliest pending event. Returns false if none.
  bool run_next();

  // Runs until the queue drains or max_events have executed; returns the
  // number executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  // Runs events with time <= t_end, then advances the clock to t_end.
  std::uint64_t run_until(SimTime t_end);

  // Runs events with time strictly < t_end. Unlike run_until, the clock is
  // NOT advanced past the last executed event: the sequential engine's
  // now() always reads "time of the thing currently/last happening", and
  // sharded lanes must preserve exactly that so sends issued outside event
  // execution (driver actions, barrier-phase protocol calls) compute the
  // same delivery times a single-queue run would. The driver advances the
  // clock explicitly (advance_to) at the instants such calls run. This is
  // the epoch body of the sharded driver: every event inside the window
  // [now, t_end) executes, while events scheduled exactly at the epoch
  // boundary wait for the barrier (where cross-shard mailbox commits
  // precede them in canonical order). See sim/shard_driver.h.
  std::uint64_t run_before(SimTime t_end);

  // Explicit clock advance (>= now) with no event execution. The sharded
  // driver synchronizes every lane's clock to an action's time before
  // running it, and the chaos runner to the global last-event time before
  // barrier-phase protocol calls, so out-of-event sends are stamped with
  // the same times as in a sequential run.
  void advance_to(SimTime t);

  // Time of the earliest pending event, or +infinity when the queue is
  // empty. The sharded driver uses this to pick the next epoch boundary
  // (gap-jumping over idle stretches).
  SimTime next_event_time() const;

  // Simulated time of the most recently executed event (0.0 before any
  // event has run). Unlike now(), this is never force-advanced by
  // run_until/run_before, so the sharded driver can report "time of the
  // last thing that actually happened" exactly as the sequential queue's
  // now() would after a full drain.
  SimTime last_processed_time() const {
    owner_.assert_held();
    return last_processed_;
  }

  // Pool introspection (tests and benches assert steady-state reuse).
  std::size_t timer_pool_size() const {
    owner_.assert_held();
    return timer_pool_.size();
  }
  std::size_t timer_pool_free() const {
    owner_.assert_held();
    return timer_free_.size();
  }

 private:
  enum class EventKind : std::uint8_t { kClosure, kDelivery, kTimer };

  // Trivially copyable: sift operations move plain data, never closures.
  struct Event {
    SimTime time;
    std::uint64_t seq;
    void* sink;  // DeliverySink* / TimerSink* per kind; unused for closures
    std::uint32_t a;     // delivery: from host   | timer: payload a
    std::uint32_t b;     // delivery: to host     | timer: payload b
    std::uint32_t slot;  // delivery: payload slot| timer: payload c
                         // closure: timer_pool_ slot
    EventKind kind;
  };

  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void push_event(Event ev) HCUBE_REQUIRES(owner_);
  Event pop_event() HCUBE_REQUIRES(owner_);
  void dispatch(const Event& ev) HCUBE_REQUIRES(owner_);

  std::uint32_t acquire_timer_slot(std::function<void()> fn)
      HCUBE_REQUIRES(owner_);

  ExternallySynchronized owner_;  // per-shard ownership (see header)

  // Manual binary min-heap over a vector: push/pop never allocate once
  // capacity has grown to the high-water mark of pending events.
  std::vector<Event> heap_ HCUBE_GUARDED_BY(owner_);
  std::vector<std::function<void()>> timer_pool_ HCUBE_GUARDED_BY(owner_);
  std::vector<std::uint32_t> timer_free_ HCUBE_GUARDED_BY(owner_);
  SimTime now_ HCUBE_GUARDED_BY(owner_) = 0.0;
  SimTime last_processed_ HCUBE_GUARDED_BY(owner_) = 0.0;
  std::uint64_t next_seq_ HCUBE_GUARDED_BY(owner_) = 0;
  std::uint64_t processed_ HCUBE_GUARDED_BY(owner_) = 0;
};

}  // namespace hcube
