// Discrete-event simulation core.
//
// A single-threaded event queue with a simulated clock. Events scheduled for
// the same instant execute in scheduling order (monotonic sequence-number
// tie-break), which makes every simulation run bit-reproducible for a given
// seed — essential for the protocol tests, which assert properties of
// specific interleavings.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hcube {

using SimTime = double;  // milliseconds of simulated time

class EventQueue {
 public:
  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  // Schedules fn at absolute simulated time t (>= now).
  void schedule_at(SimTime t, std::function<void()> fn);
  // Schedules fn after the given delay (>= 0).
  void schedule_after(SimTime delay, std::function<void()> fn);

  // Executes the earliest pending event. Returns false if none.
  bool run_next();

  // Runs until the queue drains or max_events have executed; returns the
  // number executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  // Runs events with time <= t_end, then advances the clock to t_end.
  std::uint64_t run_until(SimTime t_end);

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace hcube
