// Epoch/barrier driver for the sharded discrete-event simulator.
//
// K lanes (shards), each owning a private EventQueue, advance in lockstep
// epochs. An epoch is the half-open window [T, B): every lane runs its
// events with time strictly < B (EventQueue::run_before), then parks at the
// barrier. The driver picks each boundary as
//
//   B = min(next_action_time, t_min_pending_event + epoch_ms)
//
// with epoch_ms <= the latency model's min_latency_ms(). A cross-shard send
// issued by an event at time s inside the epoch is due at s + latency >=
// (B - epoch_ms) + epoch_ms = B, i.e. never before the next barrier — so
// routing it through a mailbox and committing it at the barrier cannot
// reorder it relative to any event that already ran. Boundaries gap-jump:
// when lanes go idle the next boundary snaps forward to the next action or
// pending event, so sparse timelines cost epochs proportional to events,
// not to simulated time.
//
// Barrier sequence (driver thread, workers parked):
//   1. commit mailboxes (canonical order: for dst lane ascending, for src
//      lane ascending, FIFO within the pair — i.e. (epoch, src_shard, seq)),
//   2. run every driver action scheduled at exactly B, in scheduling order.
// Driver actions are the sharded analogue of the sequential runner's
// top-level closures (script steps, probes, heal markers); they run on the
// driver thread, which impersonates lanes via LaneScope as needed. A second
// commit pass before the next boundary selection picks up sends issued by
// the actions themselves (their deliveries can be due before the boundary
// the pending-event scan alone would choose).
//
// Determinism: each lane's intra-epoch execution is sequential on one
// thread; the commit order and action order at every barrier are canonical;
// and no cross-lane communication happens outside barriers. Hence the
// merged event sequence — and every digest derived from it — is a pure
// function of the inputs, independent of K and of thread scheduling (the
// differential-determinism tier in tests/sim/ proves this against the
// sequential simulator). See DESIGN.md §16.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/event_queue.h"
#include "util/thread_safety.h"

namespace hcube {

class ShardDriver {
 public:
  // `lanes` are borrowed (caller keeps ownership; must outlive the driver).
  // `epoch_ms` must be > 0 and <= the minimum cross-shard latency.
  // `commit` drains all cross-shard mailboxes in canonical order; called
  // only on the driver thread with every worker parked.
  ShardDriver(std::vector<EventQueue*> lanes, double epoch_ms,
              std::function<void()> commit);
  // Condvar shutdown handshake; the analysis cannot model
  // condition_variable_any waits over the Mutex capability.
  ~ShardDriver() HCUBE_NO_THREAD_SAFETY_ANALYSIS;

  ShardDriver(const ShardDriver&) = delete;
  ShardDriver& operator=(const ShardDriver&) = delete;

  std::uint32_t lanes() const {
    return static_cast<std::uint32_t>(queues_.size());
  }

  // Schedules a driver action at absolute time t (>= every boundary already
  // passed). Actions at equal t run in scheduling order at the barrier.
  void schedule_action(SimTime t, std::function<void()> fn);

  // Runs epochs until every lane queue is empty, every mailbox has been
  // committed, and no actions remain. Callable repeatedly (the chaos
  // runner drains at each script barrier and between repair rounds).
  void drain();

  // Simulated time of the last lane event or driver action executed —
  // the sharded equivalent of the sequential queue's now() after a drain.
  SimTime last_event_time() const { return last_time_; }

  // Lane events executed plus driver actions executed: each sequential
  // top-level closure maps 1:1 to a driver action, so this matches the
  // sequential queue's events_processed().
  std::uint64_t events_processed() const;
  std::uint64_t actions_executed() const { return actions_run_; }
  std::uint64_t epochs_run() const { return epochs_; }

 private:
  struct PendingAction {
    SimTime t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct ActionAfter {  // max-heap comparator -> earliest (t, seq) on top
    bool operator()(const PendingAction& a, const PendingAction& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  SimTime min_pending_event_time() const;
  // Generation-barrier rendezvous (condvar waits the analysis cannot
  // model); the mutex/condvar handshake provides the real synchronization.
  void run_epoch(SimTime boundary) HCUBE_NO_THREAD_SAFETY_ANALYSIS;
  void worker_main(std::uint32_t lane) HCUBE_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<EventQueue*> queues_;
  double epoch_ms_;
  std::function<void()> commit_;

  std::vector<PendingAction> actions_;  // heap via std::push_heap/pop_heap
  std::uint64_t next_action_seq_ = 0;
  std::uint64_t actions_run_ = 0;
  std::uint64_t epochs_ = 0;
  SimTime last_time_ = 0.0;
  SimTime floor_ = 0.0;  // last event/action time; actions must be >= this

  // Worker rendezvous: a generation barrier. The driver publishes
  // {boundary_, epoch_gen_} and waits for workers_running_ to hit zero;
  // each worker runs one epoch per generation. The mutex + condvar give the
  // happens-before edges that make the driver's barrier-phase access to the
  // lane queues (and the workers' next-epoch access to driver-committed
  // state) race-free.
  Mutex mu_;
  std::condition_variable_any cv_;
  std::uint64_t epoch_gen_ HCUBE_GUARDED_BY(mu_) = 0;
  SimTime boundary_ HCUBE_GUARDED_BY(mu_) = 0.0;
  std::uint32_t workers_running_ HCUBE_GUARDED_BY(mu_) = 0;
  bool shutdown_ HCUBE_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace hcube
