// Per-thread lane context for the sharded simulator.
//
// When the sharded driver (sim/shard_driver.h) runs an epoch, each worker
// thread executes exactly one lane's events, and the driver thread itself
// impersonates a lane while running barrier actions on a node's behalf.
// Code deep inside the protocol stack (Overlay counters, per-lane scratch
// buffers, the transport facade's queue() accessor) needs to know *which*
// lane the current thread is acting for without threading a parameter
// through every call. That is this context: a thread-local {queue, lane}
// pair, set via the RAII LaneScope and empty (queue == nullptr) during
// legacy single-queue execution.
#pragma once

#include <cstdint>

namespace hcube {

class EventQueue;

// Upper bound on lanes a sharded run may use. Per-lane scratch buffers are
// statically sized to kMaxShardLanes + 1 slots (one spare for the "no lane
// context" legacy path, see lane_scratch_slot()).
inline constexpr std::uint32_t kMaxShardLanes = 16;

struct LaneContext {
  EventQueue* queue = nullptr;  // null = legacy single-queue execution
  std::uint32_t lane = 0;
};

// The calling thread's current lane context (a copy; cheap POD).
LaneContext current_lane_context();

// Queue of the current lane, or nullptr outside any LaneScope.
EventQueue* current_lane_queue();

// Lane index of the current context, or `fallback` outside any LaneScope.
std::uint32_t current_lane_or(std::uint32_t fallback);

// Slot index for per-lane scratch arrays: the lane index inside a LaneScope,
// kMaxShardLanes (the spare last slot) outside one. Always a valid index
// into an array of kMaxShardLanes + 1 entries.
std::uint32_t lane_scratch_slot();

// RAII lane context: saves the calling thread's context, installs
// {queue, lane}, and restores the previous context on destruction (scopes
// nest — the driver thread re-scopes per node while running barrier
// actions).
class LaneScope {
 public:
  LaneScope(EventQueue* queue, std::uint32_t lane);
  ~LaneScope();

  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  LaneContext prev_;
};

}  // namespace hcube
