// SPSC epoch mailbox for cross-shard event handoff.
//
// One mailbox per ordered (src_lane, dst_lane) pair. During an epoch the
// src lane's worker pushes cross-shard deliveries; at the barrier the driver
// (with every worker parked) drains all mailboxes in the canonical
// (epoch, src_shard, seq) order: barriers already order epochs, the driver
// iterates src lanes in ascending index, and each mailbox preserves push
// order (seq) — see sim/shard_driver.h and DESIGN.md §16.
//
// Memory model:
//   - The fast path is a fixed-capacity ring with acquire/release head/tail
//     indices — safe for one concurrent producer and one concurrent
//     consumer, no locks, no allocation.
//   - When the ring fills, pushes spill into a mutex-guarded overflow
//     vector, and a sticky `overflowed_` flag keeps *subsequent* pushes
//     spilling too, so FIFO order is preserved (every ring entry precedes
//     every overflow entry). The flag resets only when a drain empties the
//     overflow.
//   - Once overflowed, pop() must not run concurrently with push(). The
//     epoch barrier provides exactly this: producers push only inside an
//     epoch, the driver drains only at barriers with all workers parked
//     (and the barrier's mutex gives the necessary happens-before edges).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/thread_safety.h"

namespace hcube {

template <typename T>
class SpscMailbox {
 public:
  explicit SpscMailbox(std::size_t capacity = 1024)
      : ring_(round_up_pow2(capacity)), mask_(ring_.size() - 1) {}

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  // Producer side (one thread at a time).
  void push(T v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (!overflowed_.load(std::memory_order_acquire) &&
        tail - head_.load(std::memory_order_acquire) < ring_.size()) {
      ring_[tail & mask_] = std::move(v);
      tail_.store(tail + 1, std::memory_order_release);
      ++pushed_;
      return;
    }
    // Ring full (or already spilling): append under the lock and make the
    // sticky flag visible only after the element is in place.
    MutexLock lock(mu_);
    overflow_.push_back(std::move(v));
    overflowed_.store(true, std::memory_order_release);
    ++pushed_;
  }

  // Consumer side. FIFO across ring and overflow.
  bool pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head != tail_.load(std::memory_order_acquire)) {
      out = std::move(ring_[head & mask_]);
      head_.store(head + 1, std::memory_order_release);
      return true;
    }
    if (!overflowed_.load(std::memory_order_acquire)) return false;
    MutexLock lock(mu_);
    if (overflow_next_ == overflow_.size()) {
      overflow_.clear();
      overflow_next_ = 0;
      overflowed_.store(false, std::memory_order_release);
      return false;
    }
    out = std::move(overflow_[overflow_next_++]);
    return true;
  }

  bool empty() const {
    if (head_.load(std::memory_order_acquire) !=
        tail_.load(std::memory_order_acquire))
      return false;
    return !overflowed_.load(std::memory_order_acquire);
  }

  // Total elements ever pushed. Producer-written; read at barriers (the
  // barrier provides the happens-before edge).
  std::uint64_t pushed() const { return pushed_; }
  std::size_t ring_capacity() const { return ring_.size(); }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<T> ring_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<bool> overflowed_{false};
  std::uint64_t pushed_ = 0;

  Mutex mu_;
  std::vector<T> overflow_ HCUBE_GUARDED_BY(mu_);
  std::size_t overflow_next_ HCUBE_GUARDED_BY(mu_) = 0;
};

}  // namespace hcube
