#include "chaos/engine.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "chaos/adversary.h"
#include "chaos/oracles.h"
#include "core/builder.h"
#include "net/fault_plan.h"
#include "net/reliable_transport.h"
#include "net/sharded_net.h"
#include "net/sim_transport.h"
#include "sim/shard_context.h"
#include "topology/latency.h"
#include "util/check.h"

namespace hcube::chaos {

std::string ChaosResult::first_failure() const {
  for (const BarrierVerdict& b : barriers)
    if (!b.failures.empty()) return b.failures.front();
  return "";
}

std::string ChaosResult::summary() const {
  std::ostringstream out;
  out << "chaos: " << (ok ? "PASS" : "FAIL") << "\n";
  out << "  steps: " << counts.joins << " joins, " << counts.leaves
      << " leaves, " << counts.crashes << " crashes, " << counts.restarts
      << " restarts, " << counts.partitions << " partitions, "
      << counts.misbehaves << " misbehaves, " << counts.rate_windows
      << " rate windows, " << counts.spikes << " spikes, " << counts.noops
      << " no-ops\n";
  out << "  membership: " << settled << " settled, " << departed
      << " departed, " << crashed << " crashed, " << abandoned_joins
      << " abandoned join(s)\n";
  if (eq.probes > 0 || eq.join_arrivals > 0) {
    char rate_buf[32];
    std::snprintf(rate_buf, sizeof rate_buf, "%.4f", eq.completion_rate());
    out << "  equilibrium: " << eq.join_arrivals << " join / "
        << eq.leave_arrivals << " leave arrivals, " << eq.completed
        << " completed (rate " << rate_buf << "), " << eq.abandoned
        << " abandoned, backlog p99 " << eq.backlog.quantile(0.99) << " over "
        << eq.probes << " probes";
    if (eq.recovery_ms >= 0.0)
      out << ", spike recovery " << eq.recovery_ms << "ms";
    out << "\n";
  }
  if (adversaries > 0) {
    out << "  adversary: " << adversaries << " marked, " << adv_intercepted
        << " intercepted, " << adv_stale_replies << " stale replies, "
        << adv_swallowed << " swallowed, " << adv_delayed << " delayed\n";
  }
  out << "  traffic: " << messages << " messages, " << bytes << " bytes, "
      << events << " events\n";
  out << "  faults: " << faults_injected << " injected, " << partition_drops
      << " partition drops, " << retransmits << " retransmits, " << give_ups
      << " give-ups\n";
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(digest));
  out << "  digest: " << digest_hex << "\n";
  // Failing verdicts: barrier oracles and (in equilibrium runs) the
  // steady-state probes, both recorded against their step index.
  for (const BarrierVerdict& b : barriers) {
    if (b.ok()) continue;
    out << "  verdict @step " << b.step_index << " (t=" << b.at_ms << "ms):\n";
    for (const std::string& f : b.failures) out << "    " << f << "\n";
  }
  return out.str();
}

namespace {

std::uint64_t mix(std::uint64_t x) { return splitmix64_next(x); }

// FNV-1a accumulator for the run digest.
struct Digest {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void add_byte(unsigned char b) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) add_byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void add(const std::string& s) {
    for (char c : s) add_byte(static_cast<unsigned char>(c));
    add_byte(0xff);  // terminator: {"a","b"} != {"ab",""}
  }
};

// The engine's execution seam: with config.shards <= 1 the original
// sequential stack runs — one EventQueue, SimTransport + FaultPlan,
// ReliableTransport — byte-identical to before sharding existed (every
// pinned digest is such a run). With shards > 1 the same step walk drives a
// ShardedNet: per-lane queues/transports/ARQ decorators under the
// epoch-barrier driver (sim/shard_driver.h), with the *same* step, arrival,
// probe and barrier logic expressed as driver actions. Determinism across
// shard counts rests on three rules enforced here:
//   * every top-level closure the sequential walk would schedule becomes
//     exactly one driver action (so event counts and action times match),
//   * barrier-phase protocol calls run with every lane clock synchronized
//     to the global last-event time (sync_lane_clocks), as the sequential
//     queue's now() would read,
//   * configs whose faults or options read cross-lane state mid-epoch
//     (probabilistic drop/duplicate streams, the degrade tier's backlog
//     reads) are rejected up front.
class Runner {
 public:
  explicit Runner(const ChurnScript& script)
      : script_(script),
        cfg_(script.config),
        num_hosts_(cfg_.n_seed + script.num_join_ids()),
        sharded_(cfg_.shards > 1),
        latency_(make_latency(cfg_, num_hosts_)),
        overlay_(cfg_.params, protocol_options(cfg_), build_stack()),
        adversary_(overlay_) {
    if (!sharded_) {
      FaultPlan::Spec base;
      base.drop = cfg_.drop;
      base.duplicate = cfg_.duplicate;
      plan_->set_default(base);
      plan_->attach(*inner_);
    }
    if (cfg_.adv_drop_mask != 0) adversary_.set_drop_mask(cfg_.adv_drop_mask);
  }

  ChaosResult run(const ObserveOverlay& observe) {
    if (observe) observe(overlay_);
    seed_world();
    SimTime cursor = 0.0;
    for (std::uint32_t i = 0; i < script_.steps.size(); ++i) {
      const ChurnStep& step = script_.steps[i];
      cursor = std::max(cursor, sim_now()) + std::max(0.0, step.gap_ms);
      if (step.kind == StepKind::kBarrier) {
        barrier(i);
        continue;
      }
      if (is_rate_window(step.kind)) {
        // Open-loop: schedule the whole window (arrivals + probes) and move
        // the cursor past it without draining — no quiescence anywhere.
        schedule_rate_window(i, step, cursor);
        cursor += std::max(0.0, step.duration_ms);
        continue;
      }
      at_time(cursor, [this, &step] { execute(step); });
    }
    if (script_.steps.empty() ||
        script_.steps.back().kind != StepKind::kBarrier) {
      barrier(static_cast<std::uint32_t>(script_.steps.size()));
    }
    finish();
    return std::move(result_);
  }

 private:
  static ProtocolOptions protocol_options(const ChaosConfig& cfg) {
    ProtocolOptions o;
    o.join_watchdog_ms = cfg.join_watchdog_ms;
    o.join_max_restarts = cfg.join_max_restarts;
    o.leave_watchdog_ms = cfg.leave_watchdog_ms;
    o.leave_max_retries = cfg.leave_max_retries;
    if (cfg.defend != 0) {
      // Misbehaving-peer hardening (core/options.h): ping-validate repair
      // candidates, evict notification-phase peers that never reply (a
      // quarter of the watchdog interval, so several janitor rounds fit in
      // one watchdog attempt), and rotate gateways away from suspects.
      o.validate_repair_candidates = true;
      o.reply_timeout_ms =
          cfg.join_watchdog_ms > 0 ? cfg.join_watchdog_ms / 4.0 : 1000.0;
      o.suspect_aware_rotation = true;
    }
    if (cfg.degrade != 0) {
      // Graceful-degradation tier: watchdog restarts back off with jitter
      // (one RTO base doubling up to 64x) and settled gateways defer
      // copy-requests while the overlay-wide join backlog is above half the
      // configured bound. The jitter stream is seeded from the script's
      // fault seed, so a replay pins it but distinct scripts differ.
      o.join_backoff_base_ms = cfg.rto_ms;
      o.overload_defer_threshold =
          cfg.max_backlog > 0 ? std::max(1u, cfg.max_backlog / 2) : 8;
      o.overload_defer_ms = cfg.rto_ms;
      o.backoff_seed = mix(cfg.fault_seed ^ 0x6a17e2b5c3d4ULL);
    }
    return o;
  }

  // latency_model 0 = the classic synthetic band; 1 = the planet map the
  // adversary/flashcrowd scenario pack runs on.
  static std::unique_ptr<LatencyModel> make_latency(const ChaosConfig& cfg,
                                                    std::uint32_t num_hosts) {
    if (cfg.latency_model == 1)
      return std::make_unique<PlanetLatency>(num_hosts, cfg.latency_seed);
    return std::make_unique<SyntheticLatency>(num_hosts, 5.0, 120.0,
                                              cfg.latency_seed);
  }

  // Builds the simulation stack for the configured mode and returns the
  // Transport the Overlay runs over. Runs in the overlay_ member
  // initializer; everything it assigns is declared before overlay_.
  Transport& build_stack() {
    const ReliabilityConfig rel_cfg{cfg_.rto_ms, cfg_.backoff,
                                    cfg_.max_retries};
    if (!sharded_) {
      queue_ = std::make_unique<EventQueue>();
      inner_ = std::make_unique<SimTransport>(*queue_, *latency_);
      plan_ = std::make_unique<FaultPlan>(cfg_.fault_seed);
      rel_ = std::make_unique<ReliableTransport>(*inner_, rel_cfg);
      return *rel_;
    }
    // Probabilistic fault streams draw one global RNG in event-execution
    // order — an order sharded lanes deliberately do not share. Partition
    // windows are fine (a pure predicate of (hosts, time), replicated onto
    // every lane plan below); drop/duplicate probabilities are not.
    HCUBE_CHECK_MSG(cfg_.drop == 0.0 && cfg_.duplicate == 0.0,
                    "sharded runs require drop = dup = 0 (probabilistic "
                    "fault streams are single-queue)");
    // The degrade tier's gateways read the overlay-wide join backlog on the
    // admission hot path — a cross-lane read mid-epoch, racy and
    // order-dependent. Backlog reads are barrier-only under sharding.
    HCUBE_CHECK_MSG(cfg_.degrade == 0,
                    "sharded runs forbid the degrade tier (mid-epoch "
                    "backlog reads are single-queue)");
    ShardedNet::Params p;
    p.lanes = cfg_.shards;
    p.rel = rel_cfg;
    net_ = std::make_unique<ShardedNet>(p, *latency_);
    lane_plans_.reserve(cfg_.shards);
    for (std::uint32_t i = 0; i < cfg_.shards; ++i) {
      // One plan clone per lane, all from the same seed: with zero
      // probabilities the RNG is never drawn, so the clones stay in
      // lockstep and each lane's partition predicate (evaluated against
      // its own clock, which at any send instant reads the same time a
      // sequential run would) makes the identical decision.
      lane_plans_.push_back(std::make_unique<FaultPlan>(cfg_.fault_seed));
      lane_plans_.back()->attach(net_->lane_transport(i));
    }
    return net_->transport();
  }

  // ---- mode seam: the sequential queue vs the sharded driver ----

  // Time of the last thing that actually happened (== the sequential
  // queue's now() after a drain / between walk steps).
  SimTime sim_now() const {
    return sharded_ ? net_->driver().last_event_time() : queue_->now();
  }

  // Current time *inside* a scheduled action: the sequential queue's clock
  // reads the executing event's time; sharded lanes were advanced to the
  // action instant by the driver before it ran.
  SimTime action_now() const {
    return sharded_ ? net_->lane_queue(0).now() : queue_->now();
  }

  // One top-level closure of the walk: a queue event sequentially, a driver
  // action (mini-barrier at t: every lane has processed exactly the events
  // before t) sharded. 1:1, so event counts match across modes.
  void at_time(SimTime t, std::function<void()> fn) {
    if (sharded_)
      net_->driver().schedule_action(t, std::move(fn));
    else
      queue_->schedule_at(t, std::move(fn));
  }

  void drain_queue() {
    if (sharded_)
      net_->driver().drain();
    else
      queue_->run();
  }

  // Barrier-phase protocol calls (abandon crashes, repair rounds) run
  // outside any event; their sends must be stamped with the global
  // last-event time, exactly where the sequential clock sits after run().
  void sync_lane_clocks() {
    if (!sharded_) return;
    const SimTime t = sim_now();
    for (std::uint32_t i = 0; i < net_->num_lanes(); ++i)
      net_->lane_queue(i).advance_to(t);
  }

  // Runs fn as lane-side protocol code for the node living on `host`: its
  // env calls (schedule, queue().now(), lane-striped counters) resolve to
  // the owning lane. Sequentially the scope is a no-op indirection.
  template <typename Fn>
  void on_lane_of(HostId host, Fn&& fn) {
    if (!sharded_) {
      fn();
      return;
    }
    const std::uint32_t lane = net_->lane_of_host(host);
    LaneScope scope(&net_->lane_queue(lane), lane);
    fn();
  }

  template <typename Fn>
  void on_lane_of_node(const Node& node, Fn&& fn) {
    on_lane_of(overlay_.host_of(node.id()), std::forward<Fn>(fn));
  }

  void seed_world() {
    UniqueIdGenerator gen(cfg_.params, cfg_.id_seed);
    std::vector<NodeId> seed_ids;
    seed_ids.reserve(cfg_.n_seed);
    for (std::uint32_t i = 0; i < cfg_.n_seed; ++i)
      seed_ids.push_back(gen.next());
    const std::uint32_t joiners = script_.num_join_ids();
    join_ids_.reserve(joiners);
    for (std::uint32_t i = 0; i < joiners; ++i) join_ids_.push_back(gen.next());
    if (sharded_) {
      // finish_install stamps t_begin via env.now(); every lane sits at
      // t = 0 here, so any lane's clock reads what the sequential one would.
      LaneScope scope(&net_->lane_queue(0), 0);
      build_consistent_network(overlay_, seed_ids);
    } else {
      build_consistent_network(overlay_, seed_ids);
    }
  }

  // Deterministic victim selection: the step's pick indexes the current
  // candidate set (overlay iteration order is registration order).
  template <typename Pred>
  Node* pick_node(std::uint64_t pick, Pred&& pred) {
    std::vector<Node*> candidates;
    for (const auto& node : overlay_.nodes())
      if (pred(*node)) candidates.push_back(node.get());
    if (candidates.empty()) return nullptr;
    return candidates[pick % candidates.size()];
  }

  void execute(const ChurnStep& step) {
    switch (step.kind) {
      case StepKind::kJoin: {
        const NodeId& id = join_ids_[step.id_index];
        Node* gateway = pick_node(step.pick,
                                  [](const Node& n) { return n.is_s_node(); });
        if (overlay_.find(id) != nullptr || gateway == nullptr) {
          ++result_.counts.noops;
          return;
        }
        Node& joiner = overlay_.add_node(id);
        on_lane_of_node(joiner, [&] { joiner.start_join(gateway->id()); });
        ++result_.counts.joins;
        return;
      }
      case StepKind::kLeave: {
        Node* victim = churn_victim(step.pick);
        if (victim == nullptr) return;
        on_lane_of_node(*victim, [&] { victim->start_leave(); });
        ++result_.counts.leaves;
        return;
      }
      case StepKind::kCrash: {
        Node* victim = churn_victim(step.pick);
        if (victim == nullptr) return;
        on_lane_of_node(*victim, [&] { victim->mark_crashed(); });
        ++result_.counts.crashes;
        return;
      }
      case StepKind::kRestart: {
        Node* victim = pick_node(
            step.pick, [](const Node& n) { return n.is_crashed(); });
        Node* gateway = pick_node(mix(step.pick),
                                  [](const Node& n) { return n.is_s_node(); });
        if (victim == nullptr || gateway == nullptr) {
          ++result_.counts.noops;
          return;
        }
        on_lane_of_node(*victim, [&] { victim->restart(gateway->id()); });
        ++result_.counts.restarts;
        return;
      }
      case StepKind::kPartition: {
        // Cut the host space in two by a keyed hash; both sides must be
        // non-empty for the cut to mean anything.
        std::vector<std::vector<HostId>> groups(2);
        for (HostId h = 0; h < overlay_.size(); ++h)
          groups[mix(step.pick ^ h) & 1].push_back(h);
        if (groups[0].empty() || groups[1].empty()) {
          ++result_.counts.noops;
          return;
        }
        const SimTime t0 = action_now();
        const SimTime t1 = t0 + step.duration_ms;
        if (sharded_) {
          // Every lane evaluates the identical pure predicate against its
          // own clock; senders of either side see the cut exactly as one
          // global plan would.
          for (auto& plan : lane_plans_) plan->partition(groups, t0, t1);
        } else {
          plan_->partition(groups, t0, t1);
        }
        partition_end_ = std::max(partition_end_, t1);
        ++result_.counts.partitions;
        return;
      }
      case StepKind::kMisbehave: {
        // Mark a live settled node misbehaving; id_index carries the profile
        // mask, duration_ms (when > 0) overrides the slow-peer delay. Picks
        // resolve against the *unmarked* settled population so a script's
        // k-th misbehave step marks a k-th distinct node, and shrunk
        // subsets stay meaningful.
        Node* victim = pick_node(step.pick, [this](const Node& n) {
          return n.is_s_node() && !adversary_.is_marked(n.id());
        });
        const double slow =
            step.duration_ms > 0.0 ? step.duration_ms : cfg_.adv_slow_ms;
        bool marked = false;
        if (victim != nullptr) {
          on_lane_of_node(*victim, [&] {
            marked = adversary_.mark(*victim, step.id_index, slow);
          });
        }
        if (!marked) {
          ++result_.counts.noops;
          return;
        }
        ++result_.counts.misbehaves;
        return;
      }
      case StepKind::kRateWindow:
      case StepKind::kSpike:
        HCUBE_CHECK_MSG(false, "rate windows are scheduled inline by run()");
        return;
      case StepKind::kBarrier:
        HCUBE_CHECK_MSG(false, "barriers are not scheduled as events");
        return;
    }
  }

  // Common guard for leaves and crashes: keep a minimum live population.
  Node* churn_victim(std::uint64_t pick) {
    if (overlay_.live_size() <= cfg_.min_live) {
      ++result_.counts.noops;
      return nullptr;
    }
    Node* victim =
        pick_node(pick, [](const Node& n) { return n.is_s_node(); });
    if (victim == nullptr) ++result_.counts.noops;
    return victim;
  }

  // Schedules a rate window's entire Poisson arrival train plus its
  // steady-state health probes at absolute times in [start, start + dur).
  // A spike window additionally snapshots the pre-spike backlog at its
  // opening edge and lays out a fixed series of recovery probes past its
  // close (covering the rest of the script plus a few watchdog periods), so
  // recovery_ms is measured without any self-rescheduling loop.
  void schedule_rate_window(std::uint32_t step_index, const ChurnStep& step,
                            SimTime start) {
    if (step.kind == StepKind::kSpike)
      ++result_.counts.spikes;
    else
      ++result_.counts.rate_windows;
    for (const Arrival& a : window_arrivals(step)) {
      at_time(start + a.at_ms, [this, &step, a] { execute_arrival(step, a); });
    }
    const double period =
        cfg_.probe_every_ms > 0.0 ? cfg_.probe_every_ms : step.duration_ms;
    if (period <= 0.0) return;  // degenerate (shrunk) window: nothing to do
    for (double t = period; t <= step.duration_ms; t += period)
      at_time(start + t, [this, step_index] { probe(step_index); });
    if (step.kind == StepKind::kSpike && !spike_seen_) {
      spike_seen_ = true;
      spike_end_ = start + step.duration_ms;
      at_time(start,
              [this] { spike_baseline_backlog_ = overlay_.join_backlog(); });
      double tail = 4.0 * std::max(cfg_.join_watchdog_ms, 1000.0);
      for (std::uint32_t j = step_index + 1;
           j < static_cast<std::uint32_t>(script_.steps.size()); ++j) {
        tail += std::max(0.0, script_.steps[j].gap_ms) +
                std::max(0.0, script_.steps[j].duration_ms);
      }
      const auto n_probes = static_cast<std::uint32_t>(tail / period) + 1;
      for (std::uint32_t k = 1; k <= n_probes; ++k)
        at_time(spike_end_ + k * period, [this] { recovery_probe(); });
    }
  }

  void execute_arrival(const ChurnStep& step, const Arrival& a) {
    if (a.is_join) {
      const NodeId& id = join_ids_[step.id_index + a.join_ordinal];
      Node* gateway =
          pick_node(a.pick, [](const Node& n) { return n.is_s_node(); });
      if (overlay_.find(id) != nullptr || gateway == nullptr) {
        ++result_.counts.noops;
        return;
      }
      Node& joiner = overlay_.add_node(id);
      on_lane_of_node(joiner, [&] { joiner.start_join(gateway->id()); });
      eq_joiners_.insert(id);
      ++result_.counts.joins;
      ++result_.eq.join_arrivals;
      return;
    }
    Node* victim = churn_victim(a.pick);
    if (victim == nullptr) return;
    on_lane_of_node(*victim, [&] { victim->start_leave(); });
    ++result_.counts.leaves;
    ++result_.eq.leave_arrivals;
  }

  // One steady-state health probe: sample the in-flight join backlog, bound
  // it against the configured ceiling, and run the relaxed mid-churn
  // consistency audit. Only failing probes produce verdicts. As a driver
  // action this is a mini-barrier: every lane has quiesced up to the probe
  // instant, so the backlog gauge and the audited snapshot are exact.
  void probe(std::uint32_t step_index) {
    ++result_.eq.probes;
    const std::uint32_t backlog = overlay_.join_backlog();
    result_.eq.backlog.observe(static_cast<double>(backlog));
    std::vector<std::string> failures;
    if (cfg_.max_backlog > 0 && backlog > cfg_.max_backlog) {
      failures.push_back(
          "equilibrium: in-flight join backlog " + std::to_string(backlog) +
          " exceeds the configured bound " + std::to_string(cfg_.max_backlog));
    }
    for (std::string& f :
         run_probe_oracles(overlay_, adversary_.marked()).failures)
      failures.push_back(std::move(f));
    if (failures.empty()) return;
    BarrierVerdict v;
    v.step_index = step_index;
    v.at_ms = action_now();
    v.failures = std::move(failures);
    result_.ok = false;
    result_.barriers.push_back(std::move(v));
  }

  void recovery_probe() {
    if (recovered_ || overlay_.join_backlog() > spike_baseline_backlog_)
      return;
    recovered_ = true;
    result_.eq.recovery_ms = action_now() - spike_end_;
  }

  // Barrier-phase repair: Overlay::repair_all sequentially; the identical
  // pull/announce/quiesce cadence under lane scopes sharded (the overlay's
  // own helper would drain via the facade queue, which has no meaning on
  // the driver thread).
  void repair_world(std::uint32_t rounds) {
    if (!sharded_) {
      overlay_.repair_all(0.0, rounds);
      return;
    }
    for (std::uint32_t round = 0; round < rounds; ++round) {
      // Pull phase: detect dead neighbors, vacate their entries, query
      // peers.
      for (const auto& node : overlay_.nodes()) {
        if (node->is_s_node())
          on_lane_of_node(*node, [&] { node->start_repair(0.0); });
      }
      drain_queue();
      sync_lane_clocks();
      // Push phase: survivors re-announce themselves, only after the pull
      // phase quiesced (same no-resurrection argument as Overlay::
      // repair_all).
      for (const auto& node : overlay_.nodes()) {
        if (node->is_s_node())
          on_lane_of_node(*node, [&] { node->announce_table(); });
      }
      drain_queue();
      sync_lane_clocks();
    }
  }

  void barrier(std::uint32_t step_index) {
    drain_queue();
    // Heal: advance simulated time past any open partition window, so the
    // ARQ layer's buffered retransmissions flow across the former cut.
    if (sim_now() < partition_end_) {
      at_time(partition_end_, [] {});
      drain_queue();
    }
    sync_lane_clocks();
    // Abandon joins whose watchdog budget ran out: the process gives up
    // and exits, i.e. fail-stops. Repair then reclaims any pointer other
    // nodes still hold to it (it would keep answering pings otherwise).
    std::vector<std::string> quarantine_failures;
    for (const auto& node : overlay_.nodes()) {
      const NodeStatus st = node->status();
      const bool joining = st == NodeStatus::kCopying ||
                           st == NodeStatus::kWaiting ||
                           st == NodeStatus::kNotifying;
      if (joining &&
          node->join_stats().watchdog_restarts >= cfg_.join_max_restarts) {
        // Under quarantine, an *honest* join that burned its whole restart
        // budget is a convergence-around-faults failure: the adversary tier
        // must degrade latency, never liveness. Attribution first, though —
        // a joiner whose silent-past-deadline suspects include a node that
        // genuinely fail-stopped can abandon without any adversary's help
        // (the clean-abort contract retry_exhaustion_test pins), so only
        // the abandons crashes cannot explain are charged to the tier.
        if (!adversary_.marked().empty() &&
            !adversary_.is_marked(node->id())) {
          bool crash_explains = false;
          for (const NodeId& s : node->join_suspects()) {
            const Node* peer = overlay_.find(s);
            if (peer == nullptr || peer->status() == NodeStatus::kCrashed) {
              crash_explains = true;
              break;
            }
          }
          if (!crash_explains) {
            quarantine_failures.push_back(
                "quarantine: honest join " +
                node->id().to_string(overlay_.params()) +
                " exhausted its watchdog restart budget");
          }
        }
        on_lane_of_node(*node, [&] { node->mark_crashed(); });
        ++result_.abandoned_joins;
        if (eq_joiners_.contains(node->id())) ++result_.eq.abandoned;
      }
    }
    if (cfg_.heal_rounds > 0) repair_world(cfg_.heal_rounds);
    drain_queue();

    BarrierVerdict verdict;
    verdict.step_index = step_index;
    verdict.at_ms = sim_now();
    verdict.failures = run_oracles(overlay_, adversary_.marked()).failures;
    for (std::string& f : quarantine_failures)
      verdict.failures.push_back(std::move(f));
    const std::uint64_t in_flight =
        sharded_ ? net_->rel_in_flight() : rel_->in_flight();
    if (in_flight != 0) {
      verdict.failures.push_back(
          "transport: " + std::to_string(in_flight) +
          " message(s) still in flight at quiescence");
    }
    if (!verdict.failures.empty()) result_.ok = false;
    result_.barriers.push_back(std::move(verdict));
  }

  void finish() {
    result_.events = sharded_ ? net_->driver().events_processed()
                              : queue_->events_processed();
    result_.messages = overlay_.totals().messages;
    result_.bytes = overlay_.totals().bytes;
    if (sharded_) {
      for (const auto& plan : lane_plans_) {
        result_.faults_injected += plan->drops_injected() +
                                   plan->duplicates_injected() +
                                   plan->delays_injected();
        result_.partition_drops += plan->partition_drops();
      }
      result_.retransmits = net_->rel_stats().retransmits;
      result_.give_ups = net_->rel_stats().give_ups;
    } else {
      result_.faults_injected = plan_->drops_injected() +
                                plan_->duplicates_injected() +
                                plan_->delays_injected();
      result_.partition_drops = plan_->partition_drops();
      result_.retransmits = rel_->rstats().retransmits;
      result_.give_ups = rel_->rstats().give_ups;
    }
    for (const auto& node : overlay_.nodes()) {
      if (node->is_s_node()) ++result_.settled;
      if (node->has_departed()) ++result_.departed;
      if (node->is_crashed()) ++result_.crashed;
    }
    // Equilibrium ledger: settle the open-loop joiners' fates. Completed
    // means the join protocol finished (t_end set) — under sustained
    // turnover a completed joiner may well have been picked as a later
    // leave arrival's victim, and that departure is not the join's failure.
    // Latency is t_end - t_begin, spanning every watchdog attempt (and any
    // backoff waits between them) — the latency a user of the overlay sees.
    for (const NodeId& id : eq_joiners_) {
      const Node* n = overlay_.find(id);
      if (n == nullptr || n->join_stats().t_end < 0.0) continue;
      ++result_.eq.completed;
      result_.eq.join_latency_ms.observe(n->join_stats().t_end -
                                         n->join_stats().t_begin);
    }
    result_.adversaries = adversary_.marked().size();
    const AdversaryEngine::Counters& ac = adversary_.counters();
    result_.adv_intercepted = ac.intercepted;
    result_.adv_stale_replies = ac.stale_replies;
    result_.adv_swallowed = ac.swallowed;
    result_.adv_delayed = ac.delayed;
    result_.shards = sharded_ ? cfg_.shards : 1;
    result_.cross_shard_messages =
        sharded_ ? net_->cross_shard_messages() : 0;
    Digest d;
    d.add(result_.events);
    d.add(result_.messages);
    d.add(result_.bytes);
    d.add(result_.faults_injected);
    d.add(result_.partition_drops);
    d.add(result_.retransmits);
    d.add(result_.give_ups);
    d.add(result_.settled);
    d.add(result_.departed);
    d.add(result_.crashed);
    d.add(result_.abandoned_joins);
    d.add(result_.adversaries);
    d.add(result_.adv_intercepted);
    d.add(result_.adv_stale_replies);
    d.add(result_.adv_swallowed);
    d.add(result_.adv_delayed);
    // Rate-step scripts fold the whole equilibrium trajectory in too; the
    // guard keeps every fail-stop schedule's pinned digest unchanged.
    if (script_.has_rate_steps())
      result_.eq.fold([&d](std::uint64_t v) { d.add(v); });
    for (const BarrierVerdict& b : result_.barriers) {
      d.add(b.step_index);
      d.add(static_cast<std::uint64_t>(b.at_ms * 1000.0));
      for (const std::string& f : b.failures) d.add(f);
    }
    result_.digest = d.h;
  }

  const ChurnScript& script_;
  const ChaosConfig& cfg_;
  std::uint32_t num_hosts_;
  const bool sharded_;
  std::unique_ptr<LatencyModel> latency_;
  // Sequential stack (shards <= 1) — the original engine, same
  // construction order, behind pointers only so build_stack can pick a
  // mode. Null when sharded.
  std::unique_ptr<EventQueue> queue_;
  std::unique_ptr<SimTransport> inner_;
  std::unique_ptr<FaultPlan> plan_;
  std::unique_ptr<ReliableTransport> rel_;
  // Sharded stack (shards > 1): the lane bundle and one fault-plan clone
  // per lane. Null/empty sequentially.
  std::unique_ptr<ShardedNet> net_;
  std::vector<std::unique_ptr<FaultPlan>> lane_plans_;
  Overlay overlay_;
  AdversaryEngine adversary_;
  std::vector<NodeId> join_ids_;
  SimTime partition_end_ = 0.0;
  // Equilibrium-mode state: the open-loop joiners (for the completion
  // ledger) and the spike recovery measurement.
  FlatNodeSet eq_joiners_;
  bool spike_seen_ = false;
  bool recovered_ = false;
  SimTime spike_end_ = 0.0;
  std::uint32_t spike_baseline_backlog_ = 0;
  ChaosResult result_;
};

}  // namespace

ChaosResult run_script(const ChurnScript& script,
                       const ObserveOverlay& observe) {
  Runner runner(script);
  return runner.run(observe);
}

}  // namespace hcube::chaos
