// The deterministic chaos engine: executes a ChurnScript against a fresh
// simulated world and reports every oracle verdict.
//
// The world is rebuilt per run from the script's config alone — event
// queue, synthetic latencies, a lossy SimTransport with an attached
// FaultPlan (seeded drops/duplicates plus partition windows), a
// ReliableTransport ARQ decorator healing those faults, and an Overlay with
// the join- and leave-stall watchdogs enabled. Every source of
// nondeterminism is a seeded Rng drawn through the script, so a run is a
// pure function of the script: run_script(s) twice yields byte-identical
// results, including the digest. That is the property replay artifacts and
// the schedule shrinker stand on.
//
// Execution walks the step list once. Non-barrier steps schedule their
// action at a monotonically advancing cursor time without draining the
// queue, so the churn between two barriers genuinely overlaps (concurrent
// joins racing a partition window, crashes mid-join, ...). A barrier then
//   1. drains the queue (the protocols quiesce by themselves),
//   2. heals: advances simulated time past any open partition window and
//      drains again (the ARQ layer's buffered traffic flows across the
//      former cut),
//   3. repairs: Overlay::repair_all for config.heal_rounds rounds (0
//      disables healing — the deliberately-broken fixture mode that the
//      shrinker tests minimize against),
//   4. runs the invariant oracles (chaos/oracles.h) and records a verdict.
// A final barrier is appended implicitly when the script does not end with
// one, so every run terminates in a checked state.
//
// Open-loop equilibrium mode (rate-window steps): a kRateWindow/kSpike step
// schedules its whole Poisson arrival train (window_arrivals) plus periodic
// health probes, then advances the cursor past the window WITHOUT draining —
// sustained turnover with no quiescence anywhere before the final barrier.
// Each probe samples the overlay's in-flight join backlog (bound-checked
// against config.max_backlog), and runs the relaxed mid-churn consistency
// audit (run_probe_oracles); failing probes record BarrierVerdicts against
// the window's step index. A kSpike window additionally snapshots the
// pre-spike backlog and measures how long after the window closes the
// backlog first returns to that baseline (ChurnHealth::recovery_ms). The
// equilibrium ledger folds into the digest only when the script contains
// rate steps, so every fail-stop schedule's digest is unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/schedule.h"
#include "obs/churn_health.h"
#include "util/metric.h"

namespace hcube {
class Overlay;
}  // namespace hcube

namespace hcube::chaos {

struct BarrierVerdict {
  std::uint32_t step_index = 0;  // index of the barrier in script.steps
                                 // (== steps.size() for the implicit final)
  SimTime at_ms = 0.0;           // simulated time the oracles ran
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }
};

// How many of each step kind actually acted vs. no-op'd (a restart with
// nobody crashed, churn at the min_live floor, a one-sided partition cut).
struct StepCounts {
  std::uint32_t joins = 0;
  std::uint32_t leaves = 0;
  std::uint32_t crashes = 0;
  std::uint32_t restarts = 0;
  std::uint32_t partitions = 0;
  std::uint32_t misbehaves = 0;
  std::uint32_t rate_windows = 0;
  std::uint32_t spikes = 0;
  std::uint32_t noops = 0;
};

// Canonical registry names for the end-of-run accounting
// (obs::collect_counters exports them; see ChaosResult::for_each_metric).
HCUBE_METRIC(kMetricChaosEvents, "chaos.events");
HCUBE_METRIC(kMetricChaosMessages, "chaos.messages");
HCUBE_METRIC(kMetricChaosBytes, "chaos.bytes");
HCUBE_METRIC(kMetricChaosFaultsInjected, "chaos.faults_injected");
HCUBE_METRIC(kMetricChaosPartitionDrops, "chaos.partition_drops");
HCUBE_METRIC(kMetricChaosRetransmits, "chaos.retransmits");
HCUBE_METRIC(kMetricChaosGiveUps, "chaos.give_ups");
HCUBE_METRIC(kMetricChaosSettled, "chaos.settled");
HCUBE_METRIC(kMetricChaosDeparted, "chaos.departed");
HCUBE_METRIC(kMetricChaosCrashed, "chaos.crashed");
HCUBE_METRIC(kMetricChaosAbandonedJoins, "chaos.abandoned_joins");
HCUBE_METRIC(kMetricChaosAdversaries, "chaos.adversaries");
HCUBE_METRIC(kMetricChaosAdvIntercepted, "chaos.adv_intercepted");
HCUBE_METRIC(kMetricChaosAdvStaleReplies, "chaos.adv_stale_replies");
HCUBE_METRIC(kMetricChaosAdvSwallowed, "chaos.adv_swallowed");
HCUBE_METRIC(kMetricChaosAdvDelayed, "chaos.adv_delayed");

struct ChaosResult {
  bool ok = true;  // every barrier passed every oracle
  std::vector<BarrierVerdict> barriers;
  StepCounts counts;
  // End-of-run accounting (all deterministic, all folded into the digest).
  std::uint64_t events = 0;           // simulator events executed
  std::uint64_t messages = 0;         // protocol messages sent
  std::uint64_t bytes = 0;            // protocol bytes sent
  std::uint64_t faults_injected = 0;  // drops + duplicates + delays
  std::uint64_t partition_drops = 0;  // messages cut by partition windows
  std::uint64_t retransmits = 0;      // ARQ retransmissions
  std::uint64_t give_ups = 0;         // ARQ retry budgets exhausted
  std::uint64_t settled = 0;          // nodes in_system at the end
  std::uint64_t departed = 0;
  std::uint64_t crashed = 0;
  // Joins abandoned at a barrier after exhausting the watchdog's restart
  // budget (the engine fail-stops them so repair reclaims references).
  std::uint64_t abandoned_joins = 0;
  // Misbehaving-node tier (chaos/adversary.h): nodes marked, and the
  // AdversaryEngine interception counters.
  std::uint64_t adversaries = 0;
  std::uint64_t adv_intercepted = 0;
  std::uint64_t adv_stale_replies = 0;
  std::uint64_t adv_swallowed = 0;
  std::uint64_t adv_delayed = 0;
  // Equilibrium-churn ledger: filled only by rate-window steps, and folded
  // into the digest only when the script has any (so fail-stop schedules
  // keep their pinned digests).
  obs::ChurnHealth eq;
  // FNV-1a over every verdict and counter above: two runs of the same
  // script produce the same digest, byte for byte.
  std::uint64_t digest = 0;
  // Sharded-execution introspection (config.shards > 1 runs). Deliberately
  // NOT folded into the digest and NOT exported by for_each_metric:
  // cross_shard_messages depends on the shard count, while the digest and
  // the metrics JSON are invariant across it (the property
  // shard_determinism_test pins). Tests use these to assert a sharded run
  // genuinely exercised the mailbox path.
  std::uint32_t shards = 1;
  std::uint64_t cross_shard_messages = 0;

  // First failing oracle line, or "" when ok.
  std::string first_failure() const;
  // Multi-line human-readable report.
  std::string summary() const;

  // Exports the end-of-run counters under their canonical registry names.
  template <class Fn>
  void for_each_metric(Fn&& fn) const {
    fn(kMetricChaosEvents, events);
    fn(kMetricChaosMessages, messages);
    fn(kMetricChaosBytes, bytes);
    fn(kMetricChaosFaultsInjected, faults_injected);
    fn(kMetricChaosPartitionDrops, partition_drops);
    fn(kMetricChaosRetransmits, retransmits);
    fn(kMetricChaosGiveUps, give_ups);
    fn(kMetricChaosSettled, settled);
    fn(kMetricChaosDeparted, departed);
    fn(kMetricChaosCrashed, crashed);
    fn(kMetricChaosAbandonedJoins, abandoned_joins);
    fn(kMetricChaosAdversaries, adversaries);
    fn(kMetricChaosAdvIntercepted, adv_intercepted);
    fn(kMetricChaosAdvStaleReplies, adv_stale_replies);
    fn(kMetricChaosAdvSwallowed, adv_swallowed);
    fn(kMetricChaosAdvDelayed, adv_delayed);
  }
};

// Observation hook: called with the freshly built overlay before the first
// step runs, so callers can attach observers (obs::JoinSpanTracer,
// MessageTrace) to a world the engine otherwise keeps internal. Attaching
// must not perturb the run — the digest of an observed run is identical to
// an unobserved one.
using ObserveOverlay = std::function<void(Overlay& overlay)>;

ChaosResult run_script(const ChurnScript& script,
                       const ObserveOverlay& observe = {});

}  // namespace hcube::chaos
