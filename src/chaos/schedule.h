// Churn schedules for the deterministic chaos engine.
//
// A ChurnScript is the complete, self-contained description of one chaos
// run: the world configuration (ID-space shape, seed-network size, fault
// probabilities, ARQ and watchdog knobs, RNG seeds) plus an ordered list of
// churn steps (joins, graceful leaves, crashes, restarts, partition
// windows, oracle barriers). Everything an execution does is a pure
// function of the script — no wall clock, no global RNG — which is what
// makes replay exact and schedule shrinking sound: any subset of the steps
// is itself an executable script.
//
// Two design rules keep subsets executable:
//   * A step names its victim by a sampled 64-bit `pick`, resolved against
//     the network state at execution time (pick % candidates). Removing an
//     earlier step changes the candidate set, not the step's validity.
//   * A step whose action is impossible at execution time (no crashed node
//     to restart, the live-node floor reached) executes as a no-op rather
//     than an error.
// Join identities are pre-bound (`id_index` into the script's ID pool), so
// the same step always joins the same NodeId regardless of which other
// steps survived shrinking.
//
// Scripts serialize to a line-oriented text form (serialize / parse) used
// as the replay artifact emitted by tools/hchaos and uploaded by CI when a
// seed sweep fails.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ids/node_id.h"
#include "sim/event_queue.h"

namespace hcube::chaos {

enum class StepKind : std::uint8_t {
  kJoin,       // add a node (id_index into the ID pool), join via a random
               // live S-node gateway
  kLeave,      // a random live S-node departs gracefully
  kCrash,      // a random live S-node fail-stops
  kRestart,    // a random crashed node rejoins via a random live S-node
  kPartition,  // cut the hosts into two groups for duration_ms
  kMisbehave,  // mark a live honest S-node misbehaving: id_index is the
               // AdversaryEngine profile mask, duration_ms the slow-peer
               // delay (0 = ChaosConfig::adv_slow_ms)
  kBarrier,    // quiesce, heal, repair, then run the invariant oracles
};
inline constexpr std::size_t kNumStepKinds = 7;

const char* to_string(StepKind k);
std::optional<StepKind> step_kind_from(std::string_view token);

struct ChurnStep {
  StepKind kind = StepKind::kBarrier;
  SimTime gap_ms = 0.0;       // delay after the previous step's action time
  std::uint32_t id_index = 0; // kJoin: which pool ID joins
                              // kMisbehave: adversary profile mask
  std::uint64_t pick = 0;     // deterministic victim/gateway/cut selector
  SimTime duration_ms = 0.0;  // kPartition: window length
                              // kMisbehave: slow-peer delay (0 = config)
};

// World configuration of a run. Every field is serialized with the script,
// so a replay rebuilds the identical world.
struct ChaosConfig {
  IdParams params;                   // ID-space shape (b, d)
  std::uint32_t n_seed = 24;         // size of the direct-built seed network
  std::uint64_t id_seed = 1;         // ID-pool generator seed
  std::uint64_t latency_seed = 42;   // SyntheticLatency seed
  std::uint64_t fault_seed = 7;      // FaultPlan RNG seed
  double drop = 0.02;                // default-rule drop probability
  double duplicate = 0.01;           // default-rule duplication probability
  double rto_ms = 100.0;             // ARQ initial retransmission timeout
  double backoff = 2.0;              // ARQ RTO multiplier
  std::uint32_t max_retries = 8;     // ARQ retransmissions before give-up
  double join_watchdog_ms = 4000.0;  // join-stall watchdog period
  std::uint32_t join_max_restarts = 8;
  double leave_watchdog_ms = 2000.0; // leave-stall watchdog period
  std::uint32_t leave_max_retries = 4;
  std::uint32_t heal_rounds = 2;     // repair_all rounds at each barrier
  std::uint32_t min_live = 4;        // leave/crash no-op below this floor

  // ---- misbehaving-node tier (chaos/adversary.h) ----
  // Parser-optional keys with these defaults, so every pre-adversary
  // artifact still parses (and an adversary-free script serializes to a
  // superset of the old form).
  //
  // defend != 0 turns on the defensive-hardening ProtocolOptions
  // (validate_repair_candidates, the reply janitor, suspect-aware gateway
  // rotation; see DESIGN.md §14) for every node in the run.
  std::uint32_t defend = 0;
  // kReplyDropper's swallowed inbound type mask; 0 means
  // AdversaryEngine::kDefaultDropMask.
  std::uint32_t adv_drop_mask = 0;
  // kSlowPeer delay for kMisbehave steps whose duration_ms is 0.
  double adv_slow_ms = 40.0;
  // Which LatencyModel the runner builds: 0 = SyntheticLatency (uniform
  // i.i.d., the original), 1 = PlanetLatency (region-clustered
  // measured-RTT-style map, topology/latency.h).
  std::uint32_t latency_model = 0;
};

struct ChurnScript {
  ChaosConfig config;
  std::vector<ChurnStep> steps;

  // Size of the join-ID pool the script needs: 1 + the largest id_index
  // over its join steps (0 when it has none).
  std::uint32_t num_join_ids() const;

  std::string serialize() const;
  // Parses serialize() output. On failure returns nullopt and, when `error`
  // is non-null, stores a one-line reason.
  static std::optional<ChurnScript> parse(const std::string& text,
                                          std::string* error = nullptr);
};

// A named step mix the sampler draws from.
struct ChurnProfile {
  const char* name;
  // Relative step-kind weights (joins, leaves, crashes, restarts,
  // partition windows, misbehave markings) in enum order.
  std::uint32_t w_join = 1;
  std::uint32_t w_leave = 0;
  std::uint32_t w_crash = 0;
  std::uint32_t w_restart = 0;
  std::uint32_t w_partition = 0;
  std::uint32_t w_misbehave = 0;
  double mean_gap_ms = 30.0;        // exponential inter-step gap
  double partition_ms = 1200.0;     // partition window length
  std::uint32_t barrier_every = 12; // oracle barrier after this many steps
  ChaosConfig config;
};

// Built-in profiles: "mixed" (all churn kinds, light loss), "partition"
// (partition-heavy), "adversary" (mixed churn plus misbehave markings with
// the defensive hardening on, planet latency), and "flashcrowd" (pure join
// flood onto a tiny seed overlay — steps=4·n_seed gives the m ≫ n regime —
// planet latency). Pointers stay valid for the program lifetime.
const std::vector<ChurnProfile>& profiles();
const ChurnProfile* find_profile(std::string_view name);

// Samples a script of `num_steps` churn steps (plus interleaved barriers)
// from (seed, profile). Identical inputs yield the identical script.
ChurnScript sample_script(std::uint64_t seed, const ChurnProfile& profile,
                          std::uint32_t num_steps);

}  // namespace hcube::chaos
