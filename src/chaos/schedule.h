// Churn schedules for the deterministic chaos engine.
//
// A ChurnScript is the complete, self-contained description of one chaos
// run: the world configuration (ID-space shape, seed-network size, fault
// probabilities, ARQ and watchdog knobs, RNG seeds) plus an ordered list of
// churn steps (joins, graceful leaves, crashes, restarts, partition
// windows, oracle barriers). Everything an execution does is a pure
// function of the script — no wall clock, no global RNG — which is what
// makes replay exact and schedule shrinking sound: any subset of the steps
// is itself an executable script.
//
// Two design rules keep subsets executable:
//   * A step names its victim by a sampled 64-bit `pick`, resolved against
//     the network state at execution time (pick % candidates). Removing an
//     earlier step changes the candidate set, not the step's validity.
//   * A step whose action is impossible at execution time (no crashed node
//     to restart, the live-node floor reached) executes as a no-op rather
//     than an error.
// Join identities are pre-bound (`id_index` into the script's ID pool), so
// the same step always joins the same NodeId regardless of which other
// steps survived shrinking.
//
// Scripts serialize to a line-oriented text form (serialize / parse) used
// as the replay artifact emitted by tools/hchaos and uploaded by CI when a
// seed sweep fails.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ids/node_id.h"
#include "sim/event_queue.h"

namespace hcube::chaos {

enum class StepKind : std::uint8_t {
  kJoin,       // add a node (id_index into the ID pool), join via a random
               // live S-node gateway
  kLeave,      // a random live S-node departs gracefully
  kCrash,      // a random live S-node fail-stops
  kRestart,    // a random crashed node rejoins via a random live S-node
  kPartition,  // cut the hosts into two groups for duration_ms
  kMisbehave,  // mark a live honest S-node misbehaving: id_index is the
               // AdversaryEngine profile mask, duration_ms the slow-peer
               // delay (0 = ChaosConfig::adv_slow_ms)
  kBarrier,    // quiesce, heal, repair, then run the invariant oracles

  // ---- equilibrium-churn tier (open-loop rate windows) ----
  // Appended after kBarrier so pre-equilibrium artifacts keep their kind
  // tokens; the parser dispatches on the token, and rate-window step lines
  // carry two extra trailing fields (rate_join, rate_leave).
  kRateWindow,  // open-loop window: seeded Poisson join/leave arrivals at
                // rate_join/rate_leave events per second for duration_ms,
                // with no quiescence barrier. id_index is the base into the
                // join-ID pool, pick seeds the window-local arrival stream.
  kSpike,       // same mechanics as kRateWindow, but flagged as a rate
                // spike: the engine snapshots the pre-spike backlog and
                // measures recovery time after the window closes.
};
inline constexpr std::size_t kNumStepKinds = 9;

inline bool is_rate_window(StepKind k) {
  return k == StepKind::kRateWindow || k == StepKind::kSpike;
}

const char* to_string(StepKind k);
std::optional<StepKind> step_kind_from(std::string_view token);

struct ChurnStep {
  StepKind kind = StepKind::kBarrier;
  SimTime gap_ms = 0.0;       // delay after the previous step's action time
  std::uint32_t id_index = 0; // kJoin: which pool ID joins
                              // kMisbehave: adversary profile mask
                              // rate windows: base index into the ID pool
  std::uint64_t pick = 0;     // deterministic victim/gateway/cut selector
                              // rate windows: arrival-stream seed
  SimTime duration_ms = 0.0;  // kPartition / rate windows: window length
                              // kMisbehave: slow-peer delay (0 = config)
  // Rate windows only (serialized as trailing fields on those step lines):
  // Poisson arrival rates in events per second.
  double rate_join = 0.0;
  double rate_leave = 0.0;
};

// One arrival of a rate window, at an offset from the window's start time.
// Joins bind the pool ID join_ordinal slots past the window's id_index;
// pick selects the gateway (joins) or victim (leaves) at execution time,
// exactly like the point-step rules above.
struct Arrival {
  SimTime at_ms = 0.0;
  bool is_join = false;
  std::uint32_t join_ordinal = 0;
  std::uint64_t pick = 0;
};

// The merged Poisson arrival process of one rate window — a pure function
// of the step alone (the stream is seeded from step.pick), so dropping or
// reordering *other* steps during shrinking never perturbs this window's
// arrivals. Returns an empty vector for non-rate steps or zero rates.
std::vector<Arrival> window_arrivals(const ChurnStep& step);

// Number of join arrivals window_arrivals(step) yields (0 for non-rate
// steps): the step consumes pool IDs [id_index, id_index + count).
std::uint32_t window_join_count(const ChurnStep& step);

// World configuration of a run. Every field is serialized with the script,
// so a replay rebuilds the identical world.
struct ChaosConfig {
  IdParams params;                   // ID-space shape (b, d)
  std::uint32_t n_seed = 24;         // size of the direct-built seed network
  std::uint64_t id_seed = 1;         // ID-pool generator seed
  std::uint64_t latency_seed = 42;   // SyntheticLatency seed
  std::uint64_t fault_seed = 7;      // FaultPlan RNG seed
  double drop = 0.02;                // default-rule drop probability
  double duplicate = 0.01;           // default-rule duplication probability
  double rto_ms = 100.0;             // ARQ initial retransmission timeout
  double backoff = 2.0;              // ARQ RTO multiplier
  std::uint32_t max_retries = 8;     // ARQ retransmissions before give-up
  double join_watchdog_ms = 4000.0;  // join-stall watchdog period
  std::uint32_t join_max_restarts = 8;
  double leave_watchdog_ms = 2000.0; // leave-stall watchdog period
  std::uint32_t leave_max_retries = 4;
  std::uint32_t heal_rounds = 2;     // repair_all rounds at each barrier
  std::uint32_t min_live = 4;        // leave/crash no-op below this floor

  // ---- misbehaving-node tier (chaos/adversary.h) ----
  // Parser-optional keys with these defaults, so every pre-adversary
  // artifact still parses (and an adversary-free script serializes to a
  // superset of the old form).
  //
  // defend != 0 turns on the defensive-hardening ProtocolOptions
  // (validate_repair_candidates, the reply janitor, suspect-aware gateway
  // rotation; see DESIGN.md §14) for every node in the run.
  std::uint32_t defend = 0;
  // kReplyDropper's swallowed inbound type mask; 0 means
  // AdversaryEngine::kDefaultDropMask.
  std::uint32_t adv_drop_mask = 0;
  // kSlowPeer delay for kMisbehave steps whose duration_ms is 0.
  double adv_slow_ms = 40.0;
  // Which LatencyModel the runner builds: 0 = SyntheticLatency (uniform
  // i.i.d., the original), 1 = PlanetLatency (region-clustered
  // measured-RTT-style map, topology/latency.h).
  std::uint32_t latency_model = 0;

  // ---- equilibrium-churn tier (parser-optional keys, same compatibility
  // ---- contract as the adversary block above) ----
  // degrade != 0 turns on the graceful-degradation ProtocolOptions for
  // every node: jittered exponential backoff on watchdog join restarts and
  // gateway-side admission deferral under backlog (see core/options.h and
  // the engine's protocol_options mapping).
  std::uint32_t degrade = 0;
  // Steady-state backlog oracle: a probe observing more than this many
  // in-flight joins is an equilibrium failure. 0 = unchecked.
  std::uint32_t max_backlog = 0;
  // Period of the steady-state health probes scheduled across every rate
  // window (backlog sample + bound check + relaxed consistency audit over
  // the settled snapshot). 0 disables probing.
  double probe_every_ms = 0.0;

  // ---- sharded execution (parser-optional key, same compatibility
  // ---- contract) ----
  // Number of simulator shards (worker lanes) the run executes on. 0 or 1 =
  // the sequential single-queue engine, byte-identical to before this knob
  // existed (every pinned digest is a shards<=1 run). Values > 1 partition
  // the hosts across per-lane event queues under the epoch/barrier scheme
  // (sim/shard_driver.h); the digest is invariant across shard counts, but
  // such runs require drop = dup = 0 and degrade = 0 — probabilistic fault
  // streams and mid-epoch backlog reads are inherently single-queue (the
  // runner rejects the combination).
  std::uint32_t shards = 1;
};

struct ChurnScript {
  ChaosConfig config;
  std::vector<ChurnStep> steps;

  // Size of the join-ID pool the script needs: 1 + the largest id_index
  // over its join steps, and past the end of every rate window's join
  // allotment (0 when it has neither).
  std::uint32_t num_join_ids() const;

  // True when any step is a rate window (the script runs the open-loop
  // equilibrium regime somewhere). The engine folds the equilibrium
  // counters into the digest only for such scripts, so fail-stop digests
  // stay pinned.
  bool has_rate_steps() const;

  std::string serialize() const;
  // Parses serialize() output. On failure returns nullopt and, when `error`
  // is non-null, stores a one-line reason.
  static std::optional<ChurnScript> parse(const std::string& text,
                                          std::string* error = nullptr);
};

// A named step mix the sampler draws from.
struct ChurnProfile {
  const char* name;
  // Relative step-kind weights (joins, leaves, crashes, restarts,
  // partition windows, misbehave markings) in enum order.
  std::uint32_t w_join = 1;
  std::uint32_t w_leave = 0;
  std::uint32_t w_crash = 0;
  std::uint32_t w_restart = 0;
  std::uint32_t w_partition = 0;
  std::uint32_t w_misbehave = 0;
  double mean_gap_ms = 30.0;        // exponential inter-step gap
  double partition_ms = 1200.0;     // partition window length
  std::uint32_t barrier_every = 12; // oracle barrier after this many steps
  ChaosConfig config;
};

// Built-in profiles: "mixed" (all churn kinds, light loss), "partition"
// (partition-heavy), "adversary" (mixed churn plus misbehave markings with
// the defensive hardening on, planet latency), and "flashcrowd" (pure join
// flood onto a tiny seed overlay — steps=4·n_seed gives the m ≫ n regime —
// planet latency). Pointers stay valid for the program lifetime.
const std::vector<ChurnProfile>& profiles();
const ChurnProfile* find_profile(std::string_view name);

// Samples a script of `num_steps` churn steps (plus interleaved barriers)
// from (seed, profile). Identical inputs yield the identical script.
ChurnScript sample_script(std::uint64_t seed, const ChurnProfile& profile,
                          std::uint32_t num_steps);

// Shape of an open-loop equilibrium run: a linear rate ramp, a steady
// phase, an optional rate spike, and (after a spike) steady recovery
// windows, all back to back with no interior barriers. One final kBarrier
// closes the script — that is the drain where the strict oracles and the
// zero-leaked-state audit run; in between, only the periodic probes watch.
struct EquilibriumSpec {
  double rate_join = 10.0;           // steady-state joins per second
  double rate_leave = 5.0;           // steady-state leaves per second
  SimTime window_ms = 1000.0;        // length of each rate window
  std::uint32_t ramp_windows = 2;    // linear ramp up to the steady rates
  std::uint32_t steady_windows = 4;
  double spike_mult = 0.0;           // > 1: one kSpike window at this
                                     // multiple of the steady rates
  std::uint32_t recovery_windows = 2;  // steady windows after the spike
  ChaosConfig config;                // world; degrade / max_backlog /
                                     // probe_every_ms ride here
};

// Samples an equilibrium script from (seed, spec): world seeds derive from
// the run seed exactly like sample_script, every window gets its own
// arrival-stream seed, and join-ID bases are assigned cumulatively so each
// window owns a disjoint slice of the pool. When spec.config.probe_every_ms
// is 0 a default of window_ms / 4 is used, and when spec.config.max_backlog
// is 0 a generous runaway bound (8x the expected arrivals per window + 16)
// is installed — the steady-state oracles are the point of the regime.
ChurnScript sample_equilibrium_script(std::uint64_t seed,
                                      const EquilibriumSpec& spec);

}  // namespace hcube::chaos
