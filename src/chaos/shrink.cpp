#include "chaos/shrink.h"

#include <algorithm>

namespace hcube::chaos {

namespace {

ChurnScript with_steps(const ChurnScript& base, std::vector<ChurnStep> steps) {
  ChurnScript s;
  s.config = base.config;
  s.steps = std::move(steps);
  return s;
}

// The steps of `all` minus the half-open chunk [begin, end).
std::vector<ChurnStep> without_chunk(const std::vector<ChurnStep>& all,
                                     std::size_t begin, std::size_t end) {
  std::vector<ChurnStep> kept;
  kept.reserve(all.size() - (end - begin));
  for (std::size_t i = 0; i < all.size(); ++i)
    if (i < begin || i >= end) kept.push_back(all[i]);
  return kept;
}

}  // namespace

ShrinkResult shrink_script(const ChurnScript& failing,
                           const ShrinkOptions& options) {
  ShrinkResult out;
  out.minimal = failing;
  out.minimal_result = run_script(failing);
  ++out.runs;
  if (out.minimal_result.ok) return out;  // input does not fail: nothing to do
  out.input_failed = true;

  std::vector<ChurnStep> steps = failing.steps;
  std::size_t granularity = 2;
  while (steps.size() >= 2 && out.runs < options.max_runs) {
    const std::size_t n = std::min(granularity, steps.size());
    const std::size_t chunk = (steps.size() + n - 1) / n;  // ceil
    bool reduced = false;
    for (std::size_t begin = 0;
         begin < steps.size() && out.runs < options.max_runs; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, steps.size());
      std::vector<ChurnStep> candidate = without_chunk(steps, begin, end);
      if (candidate.empty()) continue;
      const ChurnScript script = with_steps(failing, std::move(candidate));
      ChaosResult result = run_script(script);
      ++out.runs;
      if (!result.ok) {
        // The complement still fails: adopt it and re-coarsen.
        steps = script.steps;
        out.minimal = script;
        out.minimal_result = std::move(result);
        granularity = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    if (n >= steps.size()) break;  // 1-minimal at single-step granularity
    granularity = std::min(steps.size(), n * 2);
  }
  return out;
}

}  // namespace hcube::chaos
