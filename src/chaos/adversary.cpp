#include "chaos/adversary.h"

#include <atomic>

#include <utility>

namespace hcube {

namespace {

// Linear scan of a frozen snapshot for one slot. Frozen tables are small
// (n_digits × base entries at most) and consulted only on intercepted
// requests, so no index is worth building.
const SnapshotEntry* frozen_at(const TableSnapshot& snap, std::uint32_t level,
                               std::uint32_t digit) {
  for (const SnapshotEntry& e : snap.entries)
    if (e.level == level && e.digit == digit) return &e;
  return nullptr;
}

}  // namespace

AdversaryEngine::AdversaryEngine(Overlay& overlay) : overlay_(overlay) {
  auto prev = std::move(overlay_.delivery_interceptor);
  overlay_.delivery_interceptor = [this, prev = std::move(prev)](
                                      Node& node, HostId from,
                                      const Message& msg) {
    if (prev && prev(node, from, msg)) return true;
    return intercept(node, from, msg);
  };
}

bool AdversaryEngine::mark(Node& node, std::uint32_t profiles,
                           double slow_ms) {
  profiles &= kAllProfiles;
  if (profiles == 0) return false;
  if (node.status() != NodeStatus::kInSystem) return false;
  const HostId host = overlay_.host_of(node.id());
  if (host >= specs_.size()) specs_.resize(host + 1);
  Spec& spec = specs_[host];
  if ((profiles & kStaleTable) && !(spec.flags & kStaleTable))
    spec.frozen = node.table().snapshot_full();
  if (profiles & kSlowPeer) spec.slow_ms = slow_ms;
  spec.flags |= profiles;
  marked_.insert(node.id());
  return true;
}

bool AdversaryEngine::intercept(Node& node, HostId from, const Message& msg) {
  if (marked_.empty()) return false;
  const HostId self = overlay_.host_of(node.id());
  if (self >= specs_.size() || specs_[self].flags == 0) return false;
  // Misbehavior is a property of a live settled node; any other lifecycle
  // state keeps its honest semantics (crash silence, departed acks).
  if (node.status() != NodeStatus::kInSystem) return false;
  const Spec& spec = specs_[self];
  if ((spec.flags & kSlowPeer) && spec.slow_ms > 0.0) {
    counters_.intercepted.fetch_add(1, std::memory_order_relaxed);
    counters_.delayed.fetch_add(1, std::memory_order_relaxed);
    Node* raw = &node;
    overlay_.queue().schedule_after(spec.slow_ms, [this, raw, from, msg] {
      if (!process(*raw, from, msg)) raw->handle(from, msg);
    });
    return true;
  }
  return process(node, from, msg);
}

bool AdversaryEngine::process(Node& node, HostId from, const Message& msg) {
  // Re-checked because a slow peer may have crashed or begun leaving while
  // the delivery sat in its delay queue.
  if (node.status() != NodeStatus::kInSystem) return false;
  const HostId self = overlay_.host_of(node.id());
  const Spec& spec = specs_[self];
  const MessageType type = type_of(msg.body);
  const std::uint32_t bit = 1u << static_cast<std::uint32_t>(type);

  if ((spec.flags & kReplyDropper) && (drop_mask_ & bit)) {
    counters_.intercepted.fetch_add(1, std::memory_order_relaxed);
    counters_.swallowed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if ((spec.flags & kSelectiveMute) && type == MessageType::kRvNghNoti) {
    counters_.intercepted.fetch_add(1, std::memory_order_relaxed);
    counters_.swallowed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (spec.flags & kStaleTable) {
    const NodeId& x = msg.sender;
    switch (type) {
      case MessageType::kCpRst:
        reply_stale(node, from, msg, CpRlyMsg{spec.frozen});
        return true;
      case MessageType::kJoinWait: {
        // Figure 6 against the frozen table. The positive branch is the
        // lie that matters: the adversary claims it stored x without ever
        // writing its real table, so x proceeds to notify believing this
        // peer anchors its suffix class.
        const auto k = static_cast<std::uint32_t>(node.id().csuf_len(x));
        const SnapshotEntry* cur = frozen_at(spec.frozen, k, x.digit(k));
        if (cur != nullptr && cur->node != x) {
          reply_stale(node, from, msg,
                      JoinWaitRlyMsg{false, cur->node, spec.frozen});
        } else {
          reply_stale(node, from, msg, JoinWaitRlyMsg{true, x, spec.frozen});
        }
        return true;
      }
      case MessageType::kJoinNoti: {
        // Figure 9 against the frozen table: the joiner is (almost) never
        // in the snapshot, so the reply is negative and never flags a
        // competitor — but it still carries the whole stale table for the
        // joiner to merge.
        const auto k = static_cast<std::uint32_t>(node.id().csuf_len(x));
        const SnapshotEntry* cur = frozen_at(spec.frozen, k, x.digit(k));
        const bool positive = cur != nullptr && cur->node == x;
        reply_stale(node, from, msg,
                    JoinNotiRlyMsg{positive, spec.frozen, false});
        return true;
      }
      case MessageType::kRepairQuery: {
        // Serves whatever the frozen table held in the queried slot — a
        // candidate that may have been dead for the whole run, which is
        // exactly what validate_repair_candidates defends against.
        const auto& m = std::get<RepairQueryMsg>(msg.body);
        RepairRlyMsg reply;
        reply.level = m.level;
        reply.digit = m.digit;
        if (node.id().csuf_len(x) >= m.level) {
          const SnapshotEntry* cur = frozen_at(spec.frozen, m.level, m.digit);
          if (cur != nullptr) reply.candidate = cur->node;
        }
        reply_stale(node, from, msg, std::move(reply));
        return true;
      }
      default:
        break;  // everything else (pings included) stays honest
    }
  }
  return false;
}

void AdversaryEngine::reply_stale(Node& node, HostId to_host,
                                  const Message& request, MessageBody body) {
  counters_.intercepted.fetch_add(1, std::memory_order_relaxed);
  counters_.stale_replies.fetch_add(1, std::memory_order_relaxed);
  // Sent as the node's own identity, echoing the request generation — a
  // stale reply must be indistinguishable from an honest one on the wire.
  overlay_.send_message(node.id(), request.sender, std::move(body),
                        overlay_.host_of(node.id()), to_host, request.gen);
}

}  // namespace hcube
