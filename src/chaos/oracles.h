// Invariant oracles the chaos engine runs at every barrier.
//
// An oracle inspects a quiesced (and healed) overlay and reports
// human-readable failures; an empty report is a pass. The oracles are
// deliberately independent of the protocol machinery they audit — the
// consistency oracle rebuilds ground truth from the membership (a suffix
// trie), the symmetry oracle cross-checks tables pairwise — so a protocol
// bug cannot hide by corrupting its own bookkeeping.
//
// What is checked, and why each check is sound at a healed barrier:
//   * Definition 3.8 consistency over the settled membership (every
//     kInSystem node). Nodes mid-join, mid-leave, crashed or departed are
//     not members; an S-node entry naming one of them surfaces as an
//     unknown-neighbor / false-positive violation.
//   * Reverse-neighbor completeness: x stores y (both settled) implies y
//     lists x as a reverse neighbor. Repair and leave both walk reverse
//     sets, so a missing registration is a future repair that cannot
//     happen. Announce-driven reconciliation restores this after crash-
//     restart and partition windows, which is why it can be an invariant
//     here rather than a best-effort property.
//   * Liveness: every node that started a join has terminated — settled,
//     departed, crashed — or was cleanly aborted (the join-stall watchdog
//     exhausted ProtocolOptions::join_max_restarts). Anything else is a
//     stuck join the watchdog failed to unstick.
//   * Zero leaked join state: a settled node holds no outstanding join
//     conversation (Figure 3 queues all empty).
//   * Transport layering: no RelAck ever reached a protocol handler
//     (ConformanceStats); the ARQ decorator must consume them all.
//
// Quarantine mode (misbehaving-node tier, DESIGN.md §14): when a run marks
// adversaries, run_oracles takes the marked set and asserts that the
// *honest remainder* converges around it. Membership ground truth becomes
// the honest settled nodes; honest tables are permitted to point at a live
// settled adversary (it is a real, routable node — its table is wrong, not
// its existence), so violations whose named entry is a live marked node are
// excused. Entries naming a *dead* adversary stay violations: honest repair
// must purge dead pointers whoever they name. Symmetry skips edges touching
// the marked set (an adversary's reverse bookkeeping is exactly what the
// mute profile rots), and the leaked-state audit skips marked nodes.
#pragma once

#include <string>
#include <vector>

#include "core/overlay.h"
#include "core/view.h"
#include "ids/node_set.h"

namespace hcube::chaos {

struct OracleReport {
  std::vector<std::string> failures;  // empty = every oracle passed
  bool ok() const { return failures.empty(); }
};

// View over the settled membership only (every kInSystem node): the ground
// truth Definition 3.8 is audited against at a chaos barrier. view_of
// (core/view.h) also includes nodes mid-join and mid-leave, whose tables
// are legitimately partial; under churn only the settled subnetwork is
// required to be consistent. A non-null `quarantined` set further excludes
// those nodes — the honest settled view of quarantine mode.
NetworkView view_of_settled(const Overlay& overlay,
                            const FlatNodeSet* quarantined = nullptr);

OracleReport run_oracles(const Overlay& overlay);
// Quarantine oracles: audits the honest remainder around the marked set
// (AdversaryEngine::marked()). An empty set is exactly run_oracles.
OracleReport run_oracles(const Overlay& overlay,
                         const FlatNodeSet& quarantined);

// Steady-state probe oracle (equilibrium-churn tier): a *relaxed*
// Definition 3.8 audit over the settled snapshot, sound in the middle of
// open-loop turnover where the barrier oracles are not. At a probe instant
// nothing has quiesced, so transient states are legal and excused:
//   * false negatives (an empty entry whose suffix class is non-empty) —
//     the repair/notification traffic that fills it is still in flight;
//   * entries naming a node that exists in any non-settled state — it is
//     mid-join, mid-leave, or awaiting repair, all transients the final
//     drain resolves.
// What can NEVER be right, even mid-churn, is a settled table naming a node
// the overlay has no record of: that pointer can only be protocol damage,
// and it is the one violation class this audit fails on. Quarantine excusal
// applies as at barriers.
OracleReport run_probe_oracles(const Overlay& overlay,
                               const FlatNodeSet& quarantined);

}  // namespace hcube::chaos
