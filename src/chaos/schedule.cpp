#include "chaos/schedule.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"

namespace hcube::chaos {

const char* to_string(StepKind k) {
  switch (k) {
    case StepKind::kJoin: return "join";
    case StepKind::kLeave: return "leave";
    case StepKind::kCrash: return "crash";
    case StepKind::kRestart: return "restart";
    case StepKind::kPartition: return "partition";
    case StepKind::kMisbehave: return "misbehave";
    case StepKind::kBarrier: return "barrier";
    case StepKind::kRateWindow: return "rate";
    case StepKind::kSpike: return "spike";
  }
  return "?";
}

std::optional<StepKind> step_kind_from(std::string_view token) {
  for (std::size_t i = 0; i < kNumStepKinds; ++i) {
    const auto k = static_cast<StepKind>(i);
    if (token == to_string(k)) return k;
  }
  return std::nullopt;
}

std::uint32_t ChurnScript::num_join_ids() const {
  std::uint32_t n = 0;
  for (const ChurnStep& s : steps) {
    if (s.kind == StepKind::kJoin && s.id_index + 1 > n) n = s.id_index + 1;
    if (is_rate_window(s.kind)) {
      const std::uint32_t joins = window_join_count(s);
      if (joins > 0 && s.id_index + joins > n) n = s.id_index + joins;
    }
  }
  return n;
}

bool ChurnScript::has_rate_steps() const {
  for (const ChurnStep& s : steps)
    if (is_rate_window(s.kind)) return true;
  return false;
}

std::vector<Arrival> window_arrivals(const ChurnStep& step) {
  std::vector<Arrival> out;
  if (!is_rate_window(step.kind)) return out;
  const double total = step.rate_join + step.rate_leave;
  if (total <= 0.0 || step.duration_ms <= 0.0) return out;
  // Window-local stream: the merged Poisson process (exponential gaps at
  // the combined rate, each arrival a join with probability
  // rate_join/total) depends on this step alone.
  std::uint64_t sm = step.pick ^ 0xeb41b71a5e11ULL;
  Rng rng(splitmix64_next(sm));
  const double mean_gap_ms = 1000.0 / total;
  std::uint32_t joins = 0;
  double t = rng.next_exponential(mean_gap_ms);
  while (t < step.duration_ms) {
    Arrival a;
    a.at_ms = t;
    a.is_join = rng.next_double() * total < step.rate_join;
    if (a.is_join) a.join_ordinal = joins++;
    a.pick = rng();
    out.push_back(a);
    t += rng.next_exponential(mean_gap_ms);
  }
  return out;
}

std::uint32_t window_join_count(const ChurnStep& step) {
  std::uint32_t joins = 0;
  for (const Arrival& a : window_arrivals(step))
    if (a.is_join) ++joins;
  return joins;
}

namespace {

// %.17g round-trips every finite double through the text form.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string ChurnScript::serialize() const {
  std::ostringstream out;
  out << "hchaos v1\n";
  out << "base " << config.params.base << "\n";
  out << "digits " << config.params.num_digits << "\n";
  out << "nseed " << config.n_seed << "\n";
  out << "idseed " << config.id_seed << "\n";
  out << "latencyseed " << config.latency_seed << "\n";
  out << "faultseed " << config.fault_seed << "\n";
  out << "drop " << fmt(config.drop) << "\n";
  out << "dup " << fmt(config.duplicate) << "\n";
  out << "rto " << fmt(config.rto_ms) << "\n";
  out << "backoff " << fmt(config.backoff) << "\n";
  out << "retries " << config.max_retries << "\n";
  out << "joinwatchdog " << fmt(config.join_watchdog_ms) << "\n";
  out << "joinrestarts " << config.join_max_restarts << "\n";
  out << "leavewatchdog " << fmt(config.leave_watchdog_ms) << "\n";
  out << "leaveretries " << config.leave_max_retries << "\n";
  out << "healrounds " << config.heal_rounds << "\n";
  out << "minlive " << config.min_live << "\n";
  // Misbehaving-node tier (parser-optional keys, appended after the
  // original set so pre-adversary tooling diffs stay aligned).
  out << "defend " << config.defend << "\n";
  out << "advdropmask " << config.adv_drop_mask << "\n";
  out << "advslow " << fmt(config.adv_slow_ms) << "\n";
  out << "latencymodel " << config.latency_model << "\n";
  // Equilibrium-churn tier (parser-optional keys, same contract).
  out << "degrade " << config.degrade << "\n";
  out << "maxbacklog " << config.max_backlog << "\n";
  out << "probeevery " << fmt(config.probe_every_ms) << "\n";
  // Sharded-execution tier (parser-optional key, same contract).
  out << "shards " << config.shards << "\n";
  for (const ChurnStep& s : steps) {
    out << "step " << to_string(s.kind) << " " << fmt(s.gap_ms) << " "
        << s.id_index << " " << s.pick << " " << fmt(s.duration_ms);
    // Rate-window lines carry their arrival rates as trailing fields; the
    // kind-token dispatch keeps pre-equilibrium parsers' line shape intact
    // for every other kind.
    if (is_rate_window(s.kind))
      out << " " << fmt(s.rate_join) << " " << fmt(s.rate_leave);
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

std::optional<ChurnScript> ChurnScript::parse(const std::string& text,
                                              std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<ChurnScript> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "hchaos v1")
    return fail("missing 'hchaos v1' header");
  ChurnScript script;
  bool ended = false;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    const std::string where = "line " + std::to_string(line_no);
    const auto want = [&](auto& field) {
      ls >> field;
      return !ls.fail();
    };
    if (key == "end") {
      ended = true;
      break;
    } else if (key == "step") {
      std::string kind_token;
      ChurnStep s;
      if (!want(kind_token)) return fail(where + ": step kind missing");
      const auto kind = step_kind_from(kind_token);
      if (!kind) return fail(where + ": unknown step kind " + kind_token);
      s.kind = *kind;
      if (!want(s.gap_ms) || !want(s.id_index) || !want(s.pick) ||
          !want(s.duration_ms))
        return fail(where + ": malformed step fields");
      if (is_rate_window(s.kind) &&
          (!want(s.rate_join) || !want(s.rate_leave)))
        return fail(where + ": rate step missing rate fields");
      script.steps.push_back(s);
    } else {
      ChaosConfig& c = script.config;
      bool ok = false;
      if (key == "base") ok = want(c.params.base);
      else if (key == "digits") ok = want(c.params.num_digits);
      else if (key == "nseed") ok = want(c.n_seed);
      else if (key == "idseed") ok = want(c.id_seed);
      else if (key == "latencyseed") ok = want(c.latency_seed);
      else if (key == "faultseed") ok = want(c.fault_seed);
      else if (key == "drop") ok = want(c.drop);
      else if (key == "dup") ok = want(c.duplicate);
      else if (key == "rto") ok = want(c.rto_ms);
      else if (key == "backoff") ok = want(c.backoff);
      else if (key == "retries") ok = want(c.max_retries);
      else if (key == "joinwatchdog") ok = want(c.join_watchdog_ms);
      else if (key == "joinrestarts") ok = want(c.join_max_restarts);
      else if (key == "leavewatchdog") ok = want(c.leave_watchdog_ms);
      else if (key == "leaveretries") ok = want(c.leave_max_retries);
      else if (key == "healrounds") ok = want(c.heal_rounds);
      else if (key == "minlive") ok = want(c.min_live);
      else if (key == "defend") ok = want(c.defend);
      else if (key == "advdropmask") ok = want(c.adv_drop_mask);
      else if (key == "advslow") ok = want(c.adv_slow_ms);
      else if (key == "latencymodel") ok = want(c.latency_model);
      else if (key == "degrade") ok = want(c.degrade);
      else if (key == "maxbacklog") ok = want(c.max_backlog);
      else if (key == "probeevery") ok = want(c.probe_every_ms);
      else if (key == "shards") ok = want(c.shards);
      else return fail(where + ": unknown key " + key);
      if (!ok) return fail(where + ": bad value for " + key);
    }
  }
  if (!ended) return fail("missing 'end' terminator");
  if (script.config.n_seed == 0) return fail("nseed must be positive");
  return script;
}

const std::vector<ChurnProfile>& profiles() {
  static const std::vector<ChurnProfile> kProfiles = [] {
    std::vector<ChurnProfile> v;
    {
      ChurnProfile p;
      p.name = "mixed";
      p.w_join = 5;
      p.w_leave = 2;
      p.w_crash = 2;
      p.w_restart = 2;
      p.w_partition = 1;
      p.mean_gap_ms = 30.0;
      p.partition_ms = 1200.0;
      p.barrier_every = 12;
      v.push_back(p);
    }
    {
      ChurnProfile p;
      p.name = "partition";
      p.w_join = 3;
      p.w_leave = 1;
      p.w_crash = 1;
      p.w_restart = 1;
      p.w_partition = 4;
      p.mean_gap_ms = 25.0;
      p.partition_ms = 1500.0;
      p.barrier_every = 10;
      p.config.n_seed = 28;
      p.config.drop = 0.01;
      p.config.duplicate = 0.005;
      v.push_back(p);
    }
    {
      // Mixed churn with a misbehaving-node tier: settled S-nodes are
      // progressively marked stale-responder/reply-dropper while joins,
      // leaves and crashes continue around them. Defensive hardening is on
      // (the quarantine oracles require the honest remainder to converge),
      // partitions are off (a partitioned dropper is indistinguishable
      // from a partition), latency is the planet map.
      ChurnProfile p;
      p.name = "adversary";
      p.w_join = 5;
      p.w_leave = 2;
      p.w_crash = 2;
      p.w_restart = 1;
      p.w_partition = 0;
      p.w_misbehave = 2;
      p.mean_gap_ms = 30.0;
      p.barrier_every = 12;
      p.config.n_seed = 30;
      p.config.drop = 0.01;
      p.config.duplicate = 0.005;
      p.config.defend = 1;
      p.config.latency_model = 1;
      v.push_back(p);
    }
    {
      // Flash crowd: a pure join flood onto a tiny seed overlay over
      // planet-scale latencies. --steps 4·n_seed gives the m ≫ n regime
      // (the CI quick mode runs --steps 32 against n_seed = 8).
      ChurnProfile p;
      p.name = "flashcrowd";
      p.w_join = 1;
      p.mean_gap_ms = 8.0;
      p.barrier_every = 16;
      p.config.n_seed = 8;
      p.config.drop = 0.01;
      p.config.duplicate = 0.005;
      p.config.latency_model = 1;
      v.push_back(p);
    }
    {
      // Equilibrium: the open-loop sustained-turnover regime. The step
      // weights are irrelevant (tools/hchaos feeds this config to
      // sample_equilibrium_script, not sample_script); what the profile
      // carries is the world: planet latency, light loss, the defensive
      // hardening AND the graceful-degradation knobs on, and a watchdog
      // short enough that restarts genuinely happen mid-window.
      ChurnProfile p;
      p.name = "equilibrium";
      p.w_join = 1;
      p.config.n_seed = 32;
      p.config.drop = 0.01;
      p.config.duplicate = 0.005;
      p.config.join_watchdog_ms = 2000.0;
      p.config.defend = 1;
      p.config.degrade = 1;
      p.config.latency_model = 1;
      v.push_back(p);
    }
    return v;
  }();
  return kProfiles;
}

const ChurnProfile* find_profile(std::string_view name) {
  for (const ChurnProfile& p : profiles())
    if (name == p.name) return &p;
  return nullptr;
}

ChurnScript sample_script(std::uint64_t seed, const ChurnProfile& profile,
                          std::uint32_t num_steps) {
  ChurnScript script;
  script.config = profile.config;
  // Derive every world seed from the run seed so distinct seeds vary the
  // latencies and fault draws along with the churn, while (seed, profile)
  // still pins the whole script.
  std::uint64_t sm = seed;
  script.config.id_seed = splitmix64_next(sm);
  script.config.latency_seed = splitmix64_next(sm);
  script.config.fault_seed = splitmix64_next(sm);
  Rng rng(splitmix64_next(sm));

  // Enum order (the drawn index casts straight to StepKind). Profiles with
  // w_misbehave = 0 draw exactly as they did before the misbehave kind
  // existed — the total is unchanged and the new weight is never reached.
  const std::uint64_t weights[] = {profile.w_join,      profile.w_leave,
                                   profile.w_crash,     profile.w_restart,
                                   profile.w_partition, profile.w_misbehave};
  std::uint64_t total = 0;
  for (std::uint64_t w : weights) total += w;
  HCUBE_CHECK_MSG(total > 0, "churn profile has no step weights");

  std::uint32_t next_join_id = 0;
  std::uint32_t since_barrier = 0;
  script.steps.reserve(num_steps + num_steps / std::max(1u, profile.barrier_every) + 1);
  for (std::uint32_t i = 0; i < num_steps; ++i) {
    std::uint64_t draw = rng.next_below(total);
    std::size_t kind_index = 0;
    while (draw >= weights[kind_index]) {
      draw -= weights[kind_index];
      ++kind_index;
    }
    ChurnStep s;
    s.kind = static_cast<StepKind>(kind_index);
    s.gap_ms = rng.next_exponential(profile.mean_gap_ms);
    s.pick = rng();
    if (s.kind == StepKind::kJoin) s.id_index = next_join_id++;
    if (s.kind == StepKind::kPartition) s.duration_ms = profile.partition_ms;
    if (s.kind == StepKind::kMisbehave) {
      // Profile mask draw, 2:1 stale-responder (mask 1) to reply-dropper
      // (mask 2) — matching AdversaryEngine::kStaleTable/kReplyDropper.
      s.id_index = rng.next_below(3) < 2 ? 1u : 2u;
    }
    script.steps.push_back(s);
    if (profile.barrier_every > 0 && ++since_barrier >= profile.barrier_every) {
      since_barrier = 0;
      script.steps.push_back(
          ChurnStep{StepKind::kBarrier, profile.mean_gap_ms, 0, 0, 0.0});
    }
  }
  if (script.steps.empty() || script.steps.back().kind != StepKind::kBarrier)
    script.steps.push_back(
        ChurnStep{StepKind::kBarrier, profile.mean_gap_ms, 0, 0, 0.0});
  return script;
}

ChurnScript sample_equilibrium_script(std::uint64_t seed,
                                      const EquilibriumSpec& spec) {
  ChurnScript script;
  script.config = spec.config;
  std::uint64_t sm = seed;
  script.config.id_seed = splitmix64_next(sm);
  script.config.latency_seed = splitmix64_next(sm);
  script.config.fault_seed = splitmix64_next(sm);
  Rng rng(splitmix64_next(sm));

  if (script.config.probe_every_ms <= 0.0)
    script.config.probe_every_ms = spec.window_ms / 4.0;
  if (script.config.max_backlog == 0) {
    // Runaway bound, not a tail bound: 8x the expected arrivals per steady
    // window. At equilibrium the in-flight backlog hovers around
    // rate x latency — far below a whole window's worth of arrivals — so
    // only a genuinely stuck regime (joins arriving faster than they ever
    // complete) trips this.
    const double per_window =
        (spec.rate_join + spec.rate_leave) * spec.window_ms / 1000.0;
    script.config.max_backlog = static_cast<std::uint32_t>(
        8.0 * std::max(1.0, per_window) * std::max(1.0, spec.spike_mult)) + 16;
  }

  std::uint32_t next_join_id = 0;
  const auto push_window = [&](StepKind kind, double rj, double rl) {
    ChurnStep s;
    s.kind = kind;
    s.gap_ms = 0.0;
    s.id_index = next_join_id;
    s.pick = rng();
    s.duration_ms = spec.window_ms;
    s.rate_join = rj;
    s.rate_leave = rl;
    next_join_id += window_join_count(s);
    script.steps.push_back(s);
  };
  // Linear ramp: window w of R runs at (w+1)/R of the steady rates, ending
  // exactly at them so the steady phase starts from a warmed-up backlog.
  for (std::uint32_t w = 0; w < spec.ramp_windows; ++w) {
    const double f = static_cast<double>(w + 1) /
                     static_cast<double>(spec.ramp_windows + 1);
    push_window(StepKind::kRateWindow, spec.rate_join * f,
                spec.rate_leave * f);
  }
  for (std::uint32_t w = 0; w < spec.steady_windows; ++w)
    push_window(StepKind::kRateWindow, spec.rate_join, spec.rate_leave);
  if (spec.spike_mult > 1.0) {
    push_window(StepKind::kSpike, spec.rate_join * spec.spike_mult,
                spec.rate_leave * spec.spike_mult);
    for (std::uint32_t w = 0; w < spec.recovery_windows; ++w)
      push_window(StepKind::kRateWindow, spec.rate_join, spec.rate_leave);
  }
  // The one barrier: final drain, strict oracles, leaked-state audit.
  script.steps.push_back(ChurnStep{StepKind::kBarrier, 0.0, 0, 0, 0.0});
  return script;
}

}  // namespace hcube::chaos
