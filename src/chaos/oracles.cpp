#include "chaos/oracles.h"

#include <string>

#include "core/consistency.h"
#include "core/view.h"

namespace hcube::chaos {

NetworkView view_of_settled(const Overlay& overlay,
                            const FlatNodeSet* quarantined) {
  NetworkView view(overlay.params());
  for (const auto& node : overlay.nodes()) {
    if (!node->is_s_node()) continue;
    if (quarantined != nullptr && quarantined->contains(node->id())) continue;
    view.add(&node->table());
  }
  return view;
}

namespace {

// Cap per-oracle detail lines so one systemic failure does not flood the
// report (the count always reflects the full damage).
constexpr std::size_t kMaxDetails = 3;

std::string name_of(const Node& n, const IdParams& params) {
  return n.id().to_string(params);
}

// True when the entry a violation names may be excused under quarantine:
// honest tables are allowed to point at a live settled adversary (it exists
// and routes; only its table lies). A dead or mid-transition adversary must
// still be purged by honest repair, so those stay violations.
bool excused_by_quarantine(const ConsistencyViolation& v,
                           const Overlay& overlay,
                           const FlatNodeSet& quarantined) {
  if (!v.present.is_valid() || !quarantined.contains(v.present)) return false;
  const Node* peer = overlay.find(v.present);
  return peer != nullptr && peer->is_s_node();
}

void check_consistency_oracle(const Overlay& overlay,
                              const FlatNodeSet& quarantined,
                              OracleReport& report) {
  if (quarantined.empty()) {
    const ConsistencyReport rep = check_consistency(view_of_settled(overlay));
    if (rep.consistent()) return;
    std::string line = "consistency: " + std::to_string(rep.total_violations) +
                       " violation(s) across " +
                       std::to_string(rep.entries_checked) + " entries";
    for (std::size_t i = 0; i < rep.violations.size() && i < kMaxDetails; ++i)
      line += "; " + rep.violations[i].describe(overlay.params());
    report.failures.push_back(std::move(line));
    return;
  }
  // Quarantine mode: audit the honest settled view, then drop violations
  // whose named entry is a live settled adversary (see header). Keep every
  // violation so the excusal filter sees the full set, not a capped sample.
  ConsistencyCheckOptions opts;
  opts.max_violations_kept = std::size_t{1} << 16;
  const ConsistencyReport rep =
      check_consistency(view_of_settled(overlay, &quarantined), opts);
  if (rep.consistent()) return;
  std::vector<const ConsistencyViolation*> kept;
  for (const ConsistencyViolation& v : rep.violations)
    if (!excused_by_quarantine(v, overlay, quarantined)) kept.push_back(&v);
  // The excusal filter only sees the retained sample; if the checker
  // overflowed its (raised) cap, surface that rather than under-count.
  const std::uint64_t overflow =
      rep.total_violations - static_cast<std::uint64_t>(rep.violations.size());
  if (kept.empty() && overflow == 0) return;
  std::string line =
      "consistency: " + std::to_string(kept.size() + overflow) +
      " honest violation(s) across " + std::to_string(rep.entries_checked) +
      " entries (quarantine of " + std::to_string(quarantined.size()) +
      " applied)";
  for (std::size_t i = 0; i < kept.size() && i < kMaxDetails; ++i)
    line += "; " + kept[i]->describe(overlay.params());
  report.failures.push_back(std::move(line));
}

void check_symmetry_oracle(const Overlay& overlay,
                           const FlatNodeSet& quarantined,
                           OracleReport& report) {
  std::uint64_t missing = 0;
  std::string first;
  for (const auto& node : overlay.nodes()) {
    if (!node->is_s_node()) continue;
    if (quarantined.contains(node->id())) continue;
    node->table().for_each_filled([&](std::uint32_t level, std::uint32_t digit,
                                      const NodeId& y, NeighborState) {
      if (y == node->id()) return;
      // An adversary's reverse bookkeeping is exactly what the selective-
      // mute profile rots; edges touching the marked set are exempt.
      if (quarantined.contains(y)) return;
      const Node* peer = overlay.find(y);
      // Entries naming non-settled nodes are the consistency oracle's
      // domain; symmetry audits only settled-to-settled edges.
      if (peer == nullptr || !peer->is_s_node()) return;
      if (peer->table().reverse_neighbors().contains(node->id())) return;
      ++missing;
      if (first.empty()) {
        first = name_of(*node, overlay.params()) + " stores " +
                name_of(*peer, overlay.params()) + " at (" +
                std::to_string(level) + "," + std::to_string(digit) +
                ") but is not in its reverse set";
      }
    });
  }
  if (missing > 0) {
    report.failures.push_back("reverse-symmetry: " + std::to_string(missing) +
                              " unregistered storer(s); first: " + first);
  }
}

void check_liveness_oracle(const Overlay& overlay, OracleReport& report) {
  const std::uint32_t restart_budget = overlay.options().join_max_restarts;
  for (const auto& node : overlay.nodes()) {
    const NodeStatus st = node->status();
    if (st == NodeStatus::kInSystem || st == NodeStatus::kDeparted ||
        st == NodeStatus::kCrashed) {
      continue;
    }
    if (node->join_stats().t_begin < 0.0) continue;  // never started
    if (st == NodeStatus::kLeaving) {
      report.failures.push_back("liveness: " +
                                name_of(*node, overlay.params()) +
                                " stuck in kLeaving at quiescence");
      continue;
    }
    // Joining (kCopying / kWaiting / kNotifying): acceptable only as a
    // clean abort — the watchdog spent its whole restart budget.
    if (node->join_stats().watchdog_restarts >= restart_budget) continue;
    report.failures.push_back(
        "liveness: " + name_of(*node, overlay.params()) + " stuck joining (" +
        std::to_string(node->join_stats().watchdog_restarts) + "/" +
        std::to_string(restart_budget) + " watchdog restarts used)");
  }
}

void check_leaked_state_oracle(const Overlay& overlay,
                               const FlatNodeSet& quarantined,
                               OracleReport& report) {
  std::uint64_t leaked = 0;
  std::string first;
  for (const auto& node : overlay.nodes()) {
    if (!node->is_s_node() || node->join_idle()) continue;
    if (quarantined.contains(node->id())) continue;
    ++leaked;
    if (first.empty()) first = name_of(*node, overlay.params());
  }
  if (leaked > 0) {
    report.failures.push_back(
        "leaked-join-state: " + std::to_string(leaked) +
        " settled node(s) with outstanding join conversations; first: " +
        first);
  }
}

void check_layering_oracle(const Overlay& overlay, OracleReport& report) {
  const std::uint64_t leaks =
      overlay.conformance().rejected_of(MessageType::kRelAck);
  if (leaks > 0) {
    report.failures.push_back(
        "layering: " + std::to_string(leaks) +
        " RelAck(s) reached protocol handlers (ARQ decorator bypassed)");
  }
}

}  // namespace

OracleReport run_oracles(const Overlay& overlay) {
  static const FlatNodeSet kNoQuarantine;
  return run_oracles(overlay, kNoQuarantine);
}

OracleReport run_oracles(const Overlay& overlay,
                         const FlatNodeSet& quarantined) {
  OracleReport report;
  check_consistency_oracle(overlay, quarantined, report);
  check_symmetry_oracle(overlay, quarantined, report);
  check_liveness_oracle(overlay, report);
  check_leaked_state_oracle(overlay, quarantined, report);
  check_layering_oracle(overlay, report);
  return report;
}

OracleReport run_probe_oracles(const Overlay& overlay,
                               const FlatNodeSet& quarantined) {
  OracleReport report;
  // Mid-churn, most Definition 3.8 violations are legal transients: a false
  // negative is a fill still in flight, and an entry naming a joiner,
  // leaver, or not-yet-repaired crashed node resolves at the final drain.
  // Two classes no amount of in-flight churn can produce (see header):
  //   * an entry naming an ID this overlay never registered, and
  //   * a false positive whose named node is itself a settled member — the
  //     member exists, so if it really had the entry's suffix the class
  //     could not be empty; the entry is corrupt.
  ConsistencyCheckOptions opts;
  opts.max_violations_kept = std::size_t{1} << 16;
  const ConsistencyReport rep = check_consistency(
      view_of_settled(overlay, quarantined.empty() ? nullptr : &quarantined),
      opts);
  if (rep.consistent()) return report;
  std::vector<const ConsistencyViolation*> hard;
  for (const ConsistencyViolation& v : rep.violations) {
    if (!v.present.is_valid()) continue;  // false negative: fill in flight
    if (quarantined.contains(v.present)) continue;  // adversary's entry
    const Node* peer = overlay.find(v.present);
    const bool never_registered = peer == nullptr;
    const bool corrupt_positive =
        v.kind == ConsistencyViolation::Kind::kFalsePositive &&
        peer != nullptr && peer->is_s_node() &&
        !quarantined.contains(peer->id());
    if (never_registered || corrupt_positive) hard.push_back(&v);
  }
  if (hard.empty()) return report;
  std::string line = "probe-consistency: " + std::to_string(hard.size()) +
                     " non-transient violation(s) across " +
                     std::to_string(rep.entries_checked) + " entries";
  for (std::size_t i = 0; i < hard.size() && i < 3; ++i)
    line += "; " + hard[i]->describe(overlay.params());
  report.failures.push_back(std::move(line));
  return report;
}

}  // namespace hcube::chaos
