// Delta-debugging schedule minimizer (Zeller's ddmin over churn steps).
//
// Given a script whose execution fails an oracle, the shrinker searches for
// a 1-minimal sub-schedule that still fails: removing any single remaining
// chunk at the final granularity makes the failure disappear. Each
// candidate is a plain subset of the original steps executed by the
// deterministic engine from scratch, so the search is sound: a candidate's
// verdict is a pure function of the candidate, never of execution history.
// The two schedule design rules that keep subsets executable (pick-based
// victim resolution, impossible steps degrade to no-ops) are what make the
// subset space total — ddmin never has to repair a candidate.
//
// The predicate is "some oracle fails", not "the same oracle fails": like
// classic ddmin this may slide to a different (smaller) failure, which is
// the desired behavior for a reproducer artifact.
#pragma once

#include <cstdint>

#include "chaos/engine.h"
#include "chaos/schedule.h"

namespace hcube::chaos {

struct ShrinkOptions {
  // Hard cap on candidate executions (each one is a full chaos run).
  std::uint32_t max_runs = 128;
};

struct ShrinkResult {
  ChurnScript minimal;          // smallest failing script found
  ChaosResult minimal_result;   // its execution result
  std::uint32_t runs = 0;       // candidate executions performed
  // False when the input script did not fail to begin with (then `minimal`
  // is the input, unshrunk).
  bool input_failed = false;
};

ShrinkResult shrink_script(const ChurnScript& failing,
                           const ShrinkOptions& options = {});

}  // namespace hcube::chaos
