// Misbehaving-node tier of the chaos engine (DESIGN.md §14).
//
// The fail-stop schedules of chaos/schedule.h model nodes that die; this
// layer models nodes that are *alive and wrong*. A seeded subset of settled
// S-nodes is marked misbehaving with composable profiles:
//
//   kStaleTable    — answers join/repair requests (CpRst, JoinWait,
//                    JoinNoti, RepairQuery) from a table snapshot frozen at
//                    marking time: plausible, well-formed, and wrong. The
//                    node claims to store joiners it never stores and hands
//                    out long-dead repair candidates.
//   kReplyDropper  — swallows a configurable set of inbound message types
//                    without ever responding (default: the notification and
//                    repair-query requests, so honest joins can still walk
//                    and wait through the dropper but never get its
//                    replies).
//   kSelectiveMute — swallows RvNghNotiMsg: peers that start storing the
//                    node are never registered, so its reverse-neighbor set
//                    silently rots.
//   kSlowPeer      — defers every delivery by a per-node delay before the
//                    remaining profiles (and then the honest handler) see
//                    it.
//
// Implementation is an interposition seam at the Overlay delivery boundary
// (Overlay::delivery_interceptor): inbound deliveries to a marked node are
// consumed or answered here, and the honest protocol code in src/core/ is
// never touched. Interception is inbound-only by design — a marked node's
// own outbound protocol activity (its repair probes, its announces) stays
// honest, which is exactly the profile of a node with a wedged request path
// but a live event loop. Misbehavior is also a property of a *live settled*
// node: deliveries to a crashed/departed/joining adversary fall through to
// the real handler so lifecycle semantics (crash silence, leave acks) stay
// exact.
//
// Everything is deterministic: marking comes from ChurnScript kMisbehave
// steps, crafted replies are pure functions of the frozen snapshot and the
// request, and the engine folds the counters into the run digest.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/overlay.h"
#include "ids/node_set.h"
#include "proto/messages.h"

namespace hcube {

class AdversaryEngine {
 public:
  // Composable misbehavior profiles (ChurnStep::id_index carries the mask
  // of a kMisbehave step).
  static constexpr std::uint32_t kStaleTable = 1u << 0;
  static constexpr std::uint32_t kReplyDropper = 1u << 1;
  static constexpr std::uint32_t kSelectiveMute = 1u << 2;
  static constexpr std::uint32_t kSlowPeer = 1u << 3;
  static constexpr std::uint32_t kAllProfiles =
      kStaleTable | kReplyDropper | kSelectiveMute | kSlowPeer;

  // Default kReplyDropper victim set: notification + repair-query requests.
  // Deliberately excludes CpRstMsg and JoinWaitMsg — a dropper that
  // swallows the copy walk or the structural wait is indistinguishable
  // from a crashed gateway (the watchdog tier already covers that); what
  // this tier exercises is joins that *reach* the notify phase and must
  // still complete around silent peers.
  static constexpr std::uint32_t kDefaultDropMask =
      (1u << static_cast<std::uint32_t>(MessageType::kJoinNoti)) |
      (1u << static_cast<std::uint32_t>(MessageType::kSpeNoti)) |
      (1u << static_cast<std::uint32_t>(MessageType::kRepairQuery));

  // Installs itself on overlay.delivery_interceptor (chaining onto any
  // interceptor already present). With no nodes marked the interceptor is
  // a single empty-set test — digest-neutral by construction.
  explicit AdversaryEngine(Overlay& overlay);

  // The inbound types a kReplyDropper swallows (one mask per engine, as
  // serialized in ChaosConfig::adv_drop_mask).
  void set_drop_mask(std::uint32_t mask) { drop_mask_ = mask; }
  std::uint32_t drop_mask() const { return drop_mask_; }

  // Marks a settled S-node with the given profile mask; freezes its table
  // snapshot if kStaleTable is in the mask (first marking wins), records
  // the slow-peer delay if kSlowPeer is. Returns false (no-op) for an
  // empty mask or a node that is not currently in-system — kMisbehave
  // steps on impossible victims degrade to no-ops, like every other
  // schedule step, which keeps ddmin subsets sound.
  bool mark(Node& node, std::uint32_t profiles, double slow_ms);

  bool is_marked(const NodeId& id) const { return marked_.contains(id); }
  // The quarantine set the oracles exclude (chaos/oracles.h).
  const FlatNodeSet& marked() const { return marked_; }

  struct Counters {
    std::uint64_t intercepted = 0;    // deliveries touched (sum of below)
    std::uint64_t stale_replies = 0;  // crafted from a frozen snapshot
    std::uint64_t swallowed = 0;      // dropped without reply
    std::uint64_t delayed = 0;        // deferred by a slow peer
  };
  // Snapshot by value: interception runs on lane threads under sharded
  // execution, so the live counters are relaxed atomics (each lane's
  // increment sequence is deterministic, hence so is the sum; read only at
  // barriers or after a drain).
  Counters counters() const {
    Counters c;
    c.intercepted = counters_.intercepted.load(std::memory_order_relaxed);
    c.stale_replies = counters_.stale_replies.load(std::memory_order_relaxed);
    c.swallowed = counters_.swallowed.load(std::memory_order_relaxed);
    c.delayed = counters_.delayed.load(std::memory_order_relaxed);
    return c;
  }

 private:
  bool intercept(Node& node, HostId from, const Message& msg);
  // The profile pipeline after any slow-peer deferral; true = consumed.
  bool process(Node& node, HostId from, const Message& msg);
  void reply_stale(Node& node, HostId to_host, const Message& request,
                   MessageBody body);

  struct Spec {
    std::uint32_t flags = 0;
    double slow_ms = 0.0;
    TableSnapshot frozen;  // kStaleTable only
  };

  struct AtomicCounters {
    std::atomic<std::uint64_t> intercepted{0};
    std::atomic<std::uint64_t> stale_replies{0};
    std::atomic<std::uint64_t> swallowed{0};
    std::atomic<std::uint64_t> delayed{0};
  };

  Overlay& overlay_;
  std::uint32_t drop_mask_ = kDefaultDropMask;
  // Written only at barriers (kMisbehave steps run as driver actions);
  // read by lane threads during epochs — the barrier orders the two.
  std::vector<Spec> specs_;  // dense, indexed by HostId
  FlatNodeSet marked_;
  AtomicCounters counters_;
};

}  // namespace hcube
