// Sharded network stack: per-lane transports + reliable decorators behind
// one Transport facade, with cross-shard deliveries routed through SPSC
// mailboxes and committed at the epoch barrier.
//
// Host ids stay GLOBAL everywhere in the API — the reliable layer's acks
// must address the remote's global id no matter which lane it lives on.
// Each lane owns dense *local* storage for its own endpoints, found via the
// facade-owned local-index vector (see ReliableTransport's lane mode).
//
// Topology (K lanes, hash-assigned by shard_of):
//
//   Overlay -> ShardedTransport (facade: decorator-level hooks, routing)
//            -> ReliableTransport[lane(from)]   (acks/retransmit, lane state)
//             -> LaneTransport[lane(from)]      (latency, faults, slab)
//                 |-- same-lane dest: schedule on the lane's own EventQueue
//                 '-- cross-lane dest: push RemoteDelivery{deliver_at, ...}
//                     into mailbox[lane(from)][lane(to)]; the driver commits
//                     it into lane(to)'s queue at the next barrier.
//
// LaneTransport::send replicates PooledTransport's send semantics exactly
// (drop/duplicate/extra-delay handling, duplicate scheduled before the
// primary, one slab slot per in-flight copy), so a fault plan attached to a
// lane behaves bit-identically to one attached to the sequential
// SimTransport. Correctness of the deferred commit rests on the epoch
// invariant: epoch length <= the latency model's min cross-shard latency,
// so deliver_at = send_time + latency is never earlier than the barrier
// that commits it (sim/shard_driver.h).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/reliable_transport.h"
#include "net/transport.h"
#include "sim/mailbox.h"
#include "sim/shard_driver.h"
#include "topology/latency.h"

namespace hcube {

class ShardedNet;

// A cross-shard delivery parked in a mailbox until the next barrier. The
// delivery time is computed at send time (the sender's clock + modelled
// latency + injected extra delay), so committing late never distorts it.
struct RemoteDelivery {
  SimTime deliver_at = 0.0;
  HostId from = kNoHost;
  HostId to = kNoHost;
  Message msg;
};

// One lane's latency-modelled transport: same send semantics as
// SimTransport, but destinations on other lanes go through a mailbox
// instead of the (foreign, untouchable) destination queue.
class LaneTransport final : public Transport, private DeliverySink {
 public:
  LaneTransport(std::uint32_t lane, EventQueue& queue, LatencyModel& latency)
      : lane_(lane), queue_(queue), latency_(latency) {}

  // Routing tables (facade-owned, borrowed) and outgoing mailboxes
  // (net-owned, one per destination lane; self entry unused). Wired by
  // ShardedNet after construction.
  void set_routing(const std::vector<std::uint32_t>* lane_of,
                   const std::vector<std::uint32_t>* local_of,
                   std::vector<SpscMailbox<RemoteDelivery>*> out) {
    lane_of_ = lane_of;
    local_of_ = local_of;
    out_ = std::move(out);
  }

  // Capacity hint for the lane's handler column (see
  // ReliableTransport::reserve_endpoints).
  void reserve_endpoints(std::size_t n) { handlers_.reserve(n); }

  HostId add_endpoint(Handler handler) override;
  HostId add_endpoint_as(HostId global, Handler handler) override;
  std::uint32_t num_endpoints() const override {
    return static_cast<std::uint32_t>(handlers_.size());
  }

  bool send(HostId from, HostId to, Message msg) override;

  EventQueue& queue() override { return queue_; }

  std::uint64_t messages_sent() const override { return messages_sent_; }
  std::uint64_t messages_delivered() const override {
    return messages_delivered_;
  }
  std::uint64_t messages_dropped() const override { return messages_dropped_; }

  // Driver-side (barrier phase): schedules a mailbox entry into this lane's
  // queue. deliver_at is never in the past — see the epoch invariant.
  void commit_remote(RemoteDelivery r);

  std::uint64_t cross_shard_sent() const { return cross_shard_sent_; }

 private:
  void deliver(HostId from, HostId to, std::uint32_t payload_slot) override;
  std::uint32_t park(Message msg);
  void dispatch_one(HostId from, HostId to, SimTime deliver_at, Message msg);

  std::uint32_t lane_;
  EventQueue& queue_;
  LatencyModel& latency_;
  const std::vector<std::uint32_t>* lane_of_ = nullptr;
  const std::vector<std::uint32_t>* local_of_ = nullptr;
  std::vector<SpscMailbox<RemoteDelivery>*> out_;

  std::vector<Handler> handlers_;  // dense, lane-local index
  // Deque slab, same invalidation contract as PooledTransport.
  std::deque<Message> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t cross_shard_sent_ = 0;
};

// The Transport the Overlay sees. Registration assigns global ids and lane
// homes; send routes to the owning lane's reliable decorator; decorator-
// level fault hooks (the Overlay's drop filter) fire here — a drop is
// "never sent", exactly as on the sequential ReliableTransport.
class ShardedTransport final : public Transport {
 public:
  explicit ShardedTransport(ShardedNet& net) : net_(net) {}

  HostId add_endpoint(Handler handler) override;
  std::uint32_t num_endpoints() const override;

  bool send(HostId from, HostId to, Message msg) override;

  // The queue of the lane the calling thread is executing for. Only valid
  // inside a LaneScope (worker epoch or driver action); protocol code
  // reaches its own lane's clock and timers through this.
  EventQueue& queue() override;

  std::uint64_t messages_sent() const override;
  std::uint64_t messages_delivered() const override;
  std::uint64_t messages_dropped() const override;

 private:
  ShardedNet& net_;
  std::uint64_t dropped_here_ = 0;
};

// Owns the lanes: queues, transports, reliable decorators, mailboxes, the
// epoch driver, and the facade. The chaos runner and bench build on this.
class ShardedNet {
 public:
  struct Params {
    std::uint32_t lanes = 2;
    // Epoch length; must be > 0 and <= latency.min_latency_ms().
    // 0 = use latency.min_latency_ms().
    double epoch_ms = 0.0;
    ReliabilityConfig rel;
    std::size_t mailbox_capacity = 1024;
  };

  ShardedNet(const Params& params, LatencyModel& latency);

  Transport& transport() { return facade_; }
  ShardDriver& driver() { return *driver_; }

  std::uint32_t num_lanes() const {
    return static_cast<std::uint32_t>(queues_.size());
  }
  double epoch_ms() const { return epoch_ms_; }

  // Lane assignment of a (future) global host id: a seeded hash, so lane
  // populations stay balanced for any join order.
  std::uint32_t shard_of(HostId h) const;
  // Lane of an already-registered endpoint.
  std::uint32_t lane_of_host(HostId h) const { return lane_of_[h]; }

  EventQueue& lane_queue(std::uint32_t lane) { return *queues_[lane]; }
  LaneTransport& lane_transport(std::uint32_t lane) {
    return *transports_[lane];
  }
  ReliableTransport& lane_rel(std::uint32_t lane) { return *rels_[lane]; }

  // Drains every mailbox in canonical order — for each destination lane
  // (ascending), sources ascending, FIFO within a pair — scheduling the
  // entries into the destination queues. The driver's commit callback;
  // runs on the driver thread with all workers parked.
  void commit_mailboxes();

  // Aggregates over lanes (deterministic: each addend is deterministic).
  ReliabilityStats rel_stats() const;
  std::uint64_t rel_in_flight() const;
  std::uint64_t cross_shard_messages() const;

 private:
  friend class ShardedTransport;

  HostId register_endpoint(Transport::Handler handler);

  std::uint64_t salt_;
  double epoch_ms_;
  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<std::unique_ptr<LaneTransport>> transports_;
  std::vector<std::unique_ptr<ReliableTransport>> rels_;
  // mail_[src][dst]; diagonal unused.
  std::vector<std::vector<std::unique_ptr<SpscMailbox<RemoteDelivery>>>> mail_;
  std::vector<std::uint32_t> lane_of_;   // global host -> lane
  std::vector<std::uint32_t> local_of_;  // global host -> lane-local index
  ShardedTransport facade_;
  std::unique_ptr<ShardDriver> driver_;
};

}  // namespace hcube
