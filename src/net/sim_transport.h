// Latency-modelled transport: the semantics the templated SimNetwork
// established (per-pair latencies from a LatencyModel, per-pair FIFO, ties
// by send order), on the pooled allocation-free delivery path.
#pragma once

#include "net/pooled_transport.h"
#include "topology/latency.h"

namespace hcube {

class SimTransport final : public PooledTransport {
 public:
  SimTransport(EventQueue& queue, LatencyModel& latency)
      : PooledTransport(queue, latency.num_hosts()), latency_(latency) {}

 protected:
  SimTime delay_ms(HostId from, HostId to) override {
    return latency_.latency_ms(from, to);
  }

 private:
  LatencyModel& latency_;
};

}  // namespace hcube
