// Reliable-delivery decorator: acks, retransmission, dedup.
//
// Wraps any Transport and gives the layers above at-least-once delivery
// with receiver-side duplicate suppression — i.e. the reliable delivery the
// paper assumes (Section 3.1, assumption (iii)) — even when the inner
// transport drops, duplicates or delays messages (FaultPlan,
// net/fault_plan.h). Per ordered host pair, every outgoing data message is
// stamped with a sequence number (Message::rel_seq) and kept in an
// in-flight slab until the receiver's RelAckMsg arrives; a per-pair
// retransmission timer (one typed TimerSink timer per pair, not per
// message) rescans the pair's unacked window when it fires, retransmitting
// expired entries with exponential backoff until a bounded retry budget is
// exhausted. Receivers ack every tracked message — including duplicates,
// whose ack may have been the thing that was lost — and suppress redelivery
// via a cumulative counter plus an out-of-order set, so protocol handlers
// are idempotent by construction. FIFO is *not* restored (a retransmitted
// message arrives after its successors); the protocols only assume
// reliable delivery, not ordering.
//
// Fault injection must be installed on the *inner* transport: this layer
// exists to heal those faults. Hooks installed on the decorator itself
// fire before sequence numbering, so a decorator-level drop is "the app
// never sent it" — no retransmission.
//
// The clean-network fast path is allocation-free in steady state: in-flight
// records live in a recycled slab, per-pair state in maps that stop
// growing once every pair has communicated, and the retransmission clock
// is a typed pooled timer event. With no faults injected, no retransmission
// and no duplicate suppression ever happens (the initial RTO exceeds the
// in-process transports' max round trip).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "util/metric.h"
#include "sim/event_queue.h"

namespace hcube {

struct ReliabilityConfig {
  SimTime rto_ms = 500.0;        // initial per-message retransmission timeout
  double backoff = 2.0;          // RTO multiplier per retransmission
  std::uint32_t max_retries = 8; // retransmissions before giving up
};

// Canonical registry names for ReliabilityStats (obs/collect exports them).
HCUBE_METRIC(kMetricRelTrackedSent, "rel.tracked_sent");
HCUBE_METRIC(kMetricRelRetransmits, "rel.retransmits");
HCUBE_METRIC(kMetricRelDupSuppressed, "rel.dup_suppressed");
HCUBE_METRIC(kMetricRelAcksSent, "rel.acks_sent");
HCUBE_METRIC(kMetricRelGiveUps, "rel.give_ups");

struct ReliabilityStats {
  std::uint64_t tracked_sent = 0;    // data messages given a sequence number
  std::uint64_t retransmits = 0;     // copies re-sent after an RTO expiry
  std::uint64_t dup_suppressed = 0;  // deliveries suppressed as duplicates
  std::uint64_t acks_sent = 0;
  std::uint64_t give_ups = 0;        // messages abandoned, budget exhausted

  // Exports every counter under its canonical registry name.
  template <class Fn>
  void for_each_metric(Fn&& fn) const {
    fn(kMetricRelTrackedSent, tracked_sent);
    fn(kMetricRelRetransmits, retransmits);
    fn(kMetricRelDupSuppressed, dup_suppressed);
    fn(kMetricRelAcksSent, acks_sent);
    fn(kMetricRelGiveUps, give_ups);
  }
};

class ReliableTransport final : public Transport, private TimerSink {
 public:
  // `local_index` (borrowed, may grow behind the pointer) switches the
  // decorator into lane mode for the sharded transport: the public API
  // keeps speaking *global* host ids (acks must address the remote's global
  // id), while per-endpoint storage is indexed by (*local_index)[global] —
  // the dense per-lane slot the ShardedTransport facade assigned at
  // registration. Endpoints then register via add_endpoint_as. With the
  // default nullptr, ids and indices coincide and behavior is unchanged.
  explicit ReliableTransport(
      Transport& inner, ReliabilityConfig cfg = {},
      const std::vector<std::uint32_t>* local_index = nullptr);

  HostId add_endpoint(Handler handler) override;
  HostId add_endpoint_as(HostId global, Handler handler) override;
  std::uint32_t num_endpoints() const override {
    return static_cast<std::uint32_t>(handlers_.size());
  }

  bool send(HostId from, HostId to, Message msg) override;

  EventQueue& queue() override { return inner_.queue(); }

  // Decorator-level accounting: sent counts accepted data sends, delivered
  // counts fresh (non-duplicate) deliveries to handlers, dropped counts
  // rejections by this layer's own hooks. Transport-internal traffic (acks,
  // retransmissions) shows up only in the inner transport's counters and in
  // rstats().
  std::uint64_t messages_sent() const override { return sent_; }
  std::uint64_t messages_delivered() const override { return delivered_; }
  std::uint64_t messages_dropped() const override { return dropped_; }

  const ReliabilityStats& rstats() const { return stats_; }
  // Data messages currently awaiting an ack.
  std::uint64_t in_flight() const { return in_flight_; }

  // Capacity hint for the per-endpoint handler column — callers that know
  // the final population (ShardedNet sizes lanes from the latency model)
  // avoid growth-doubling slack, which is measurable at n = 10^6 in
  // bench_scale's bytes/node.
  void reserve_endpoints(std::size_t n) { handlers_.reserve(n); }

  // Slab introspection (tests assert steady-state reuse).
  std::size_t inflight_pool_size() const { return inflight_.size(); }
  std::size_t inflight_pool_free() const { return free_.size(); }

  // Called when a message exhausts its retry budget and is abandoned. The
  // protocols' own end-to-end recovery (the join-stall watchdog) is what
  // turns a give-up into progress; this hook is for tests and diagnostics.
  std::function<void(HostId from, HostId to, const Message& msg)> on_give_up;

 private:
  struct InFlight {
    Message msg;              // retransmission copy
    std::uint32_t seq = 0;
    std::uint32_t retries = 0;
    SimTime rto = 0.0;        // current timeout (grows by backoff)
    SimTime deadline = 0.0;   // when the next retransmission is due
  };
  struct SendPair {
    std::uint32_t next_seq = 0;
    std::vector<std::uint32_t> window;  // inflight_ slots, unordered
    bool timer_armed = false;
  };
  struct RecvPair {
    std::uint32_t cum = 0;            // every seq <= cum was delivered
    std::vector<std::uint32_t> ooo;   // delivered seqs beyond cum + 1
  };

  void on_timer(std::uint32_t from, std::uint32_t to, std::uint32_t) override;
  void on_deliver(HostId from, HostId self, const Message& msg);
  void on_ack(HostId self, HostId from, std::uint32_t seq);
  bool note_fresh(RecvPair& p, std::uint32_t seq);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void arm_timer(HostId from, HostId to, SendPair& p, SimTime deadline);

  // Dense storage index of a global host id owned by this instance.
  std::uint32_t lx(HostId h) const {
    return local_index_ ? (*local_index_)[h] : h;
  }

  // Pair-state key: (local endpoint slot, remote global id). Keeping ONE
  // flat map per direction — not a map per endpoint — matters at scale: an
  // empty unordered_map object is ~56 bytes, so a vector of them charges
  // every registered endpoint for pairs it never talks to (~112 bytes/node
  // at n = 10^6, most of it dead). Entries still appear only on first
  // contact of a pair, and the maps are never iterated — all access is
  // keyed lookup — so their unordered layout cannot leak into any digest.
  static std::uint64_t pair_key(std::uint32_t local, HostId remote) {
    return (static_cast<std::uint64_t>(local) << 32) |
           static_cast<std::uint64_t>(remote);
  }

  Transport& inner_;
  ReliabilityConfig cfg_;
  const std::vector<std::uint32_t>* local_index_;
  std::vector<Handler> handlers_;
  std::unordered_map<std::uint64_t, SendPair> send_;
  std::unordered_map<std::uint64_t, RecvPair> recv_;
  // In-flight slab: recycled slots, stable references while growing.
  std::deque<InFlight> inflight_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> giveup_scratch_;
  ReliabilityStats stats_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hcube
