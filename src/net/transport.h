// Transport seam between the overlay and whatever moves its messages.
//
// Overlay (and through it the protocol modules) depends only on this
// interface: register an endpoint with a delivery handler, send a Message
// from one endpoint to another. What "sending" means — latency-modelled
// simulation, zero-latency loopback, eventually a real network backend — is
// the implementation's business. Two implementations ship today:
//   - SimTransport (net/sim_transport.h): per-pair latencies from a
//     LatencyModel, the semantics the templated SimNetwork established.
//   - LoopbackTransport (net/loopback_transport.h): zero latency, for
//     protocol-logic tests and micro-benchmarks.
// Both guarantee reliable, per-pair FIFO delivery (delivery time is
// constant per ordered pair within a run and ties break by send order).
#pragma once

#include <cstdint>
#include <functional>

#include "proto/messages.h"
#include "sim/event_queue.h"

namespace hcube {

class Transport {
 public:
  using Handler = std::function<void(HostId from, const Message& msg)>;

  virtual ~Transport() = default;

  // Registers an endpoint; returns its host id (a dense index). Endpoints
  // must be registered before any send to them.
  virtual HostId add_endpoint(Handler handler) = 0;
  virtual std::uint32_t num_endpoints() const = 0;

  // Sends msg from -> to. Returns false if the message was dropped by the
  // drop filter.
  virtual bool send(HostId from, HostId to, Message msg) = 0;

  virtual EventQueue& queue() = 0;

  virtual std::uint64_t messages_sent() const = 0;
  virtual std::uint64_t messages_delivered() const = 0;
  virtual std::uint64_t messages_dropped() const = 0;

  // Observation hook: called for every send attempt (before drop filtering).
  std::function<void(HostId from, HostId to, const Message& msg)> on_send;
  // Failure injection: return true to drop the message. The join protocol
  // assumes reliable delivery; this hook exists for tests that verify the
  // consistency checker *detects* the damage done by losses.
  std::function<bool(HostId from, HostId to, const Message& msg)> drop_filter;
};

}  // namespace hcube
