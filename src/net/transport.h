// Transport seam between the overlay and whatever moves its messages.
//
// Overlay (and through it the protocol modules) depends only on this
// interface: register an endpoint with a delivery handler, send a Message
// from one endpoint to another. What "sending" means — latency-modelled
// simulation, zero-latency loopback, eventually a real network backend — is
// the implementation's business. Three implementations ship today:
//   - SimTransport (net/sim_transport.h): per-pair latencies from a
//     LatencyModel, the semantics the templated SimNetwork established.
//   - LoopbackTransport (net/loopback_transport.h): zero latency, for
//     protocol-logic tests and micro-benchmarks.
//   - ReliableTransport (net/reliable_transport.h): a decorator adding
//     acks, retransmission and dedup on top of either, so the protocols
//     get the reliable delivery they assume even when the inner transport
//     is lossy (FaultPlan, net/fault_plan.h).
// The in-process transports guarantee per-pair FIFO delivery on a clean
// network (delivery time is constant per ordered pair within a run and ties
// break by send order); under injected faults only ReliableTransport's
// at-least-once-then-dedup guarantee holds, and ordering may be disturbed —
// which is all the paper assumes (reliable delivery, not FIFO).
//
// Every transport inherits the FaultHooks seam (sim/fault_hooks.h): tests
// observe traffic via on_send and inject losses via drop_filter or a seeded
// FaultPlan via fault_injector.
#pragma once

#include <cstdint>
#include <functional>

#include "proto/messages.h"
#include "sim/event_queue.h"
#include "sim/fault_hooks.h"
#include "util/check.h"

namespace hcube {

class Transport : public FaultHooks<Message> {
 public:
  using Handler = std::function<void(HostId from, const Message& msg)>;

  virtual ~Transport() = default;

  // Registers an endpoint; returns its host id (a dense index). Endpoints
  // must be registered before any send to them.
  virtual HostId add_endpoint(Handler handler) = 0;

  // Registers an endpoint under a caller-chosen global host id. The default
  // requires the id to coincide with the next dense index (so decorators
  // like ReliableTransport work unchanged over ordinary transports); the
  // sharded lane transport overrides this to map a global id onto its own
  // lane-local dense storage (net/sharded_net.h).
  virtual HostId add_endpoint_as(HostId global, Handler handler) {
    HCUBE_CHECK_MSG(global == num_endpoints(),
                    "global id must be the next dense index here");
    return add_endpoint(std::move(handler));
  }
  virtual std::uint32_t num_endpoints() const = 0;

  // Sends msg from -> to. Returns false if the message was dropped by the
  // drop filter or the fault injector.
  virtual bool send(HostId from, HostId to, Message msg) = 0;

  virtual EventQueue& queue() = 0;

  virtual std::uint64_t messages_sent() const = 0;
  virtual std::uint64_t messages_delivered() const = 0;
  virtual std::uint64_t messages_dropped() const = 0;
};

}  // namespace hcube
