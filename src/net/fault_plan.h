// Seeded, reproducible fault injection for transports.
//
// A FaultPlan decides, per message, whether the network drops it,
// duplicates it, or delays it — drawing every decision from one seeded RNG
// so a run is exactly reproducible from (seed, workload). Rules come in
// three precedence tiers: a per-host-pair rule beats a per-message-type
// rule beats the default rule. attach() installs the plan as a transport's
// fault_injector (the FaultHooks seam, sim/fault_hooks.h); the transport
// then consults it on every send attempt.
//
// With a ReliableTransport layered on top of the faulty transport, the
// protocols survive whatever a plan injects (up to the retry budget); used
// directly under a plain transport, a plan demonstrates what the paper's
// reliable-delivery assumption protects against. The counters record what
// was actually injected, so tests can assert the run was genuinely lossy.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "sim/fault_hooks.h"
#include "util/rng.h"

namespace hcube {

class FaultPlan {
 public:
  // Fault probabilities for one rule. Drop wins over duplicate; delay is
  // decided independently and also applies to duplicated messages.
  struct Spec {
    double drop = 0.0;       // P(message is lost)
    double duplicate = 0.0;  // P(message is delivered twice)
    double delay = 0.0;      // P(message gets extra_delay_ms added)
    double extra_delay_ms = 0.0;
    // Budgets: at most this many faults charged to this rule (UINT64_MAX =
    // unlimited). A budget of K with probability 1.0 hits exactly the first
    // K matching messages — the deterministic fault-choreography tests.
    std::uint64_t max_drops = UINT64_MAX;
    std::uint64_t max_duplicates = UINT64_MAX;
    std::uint64_t max_delays = UINT64_MAX;
    std::uint64_t drops_charged = 0;       // running counts against budgets
    std::uint64_t duplicates_charged = 0;
    std::uint64_t delays_charged = 0;
  };

  explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}

  // Default rule for messages no per-pair / per-type rule matches.
  void set_default(const Spec& spec) { default_ = spec; }
  // Rule for one message type (matched after per-pair rules).
  void set_for_type(MessageType t, const Spec& spec);
  // Rule for one ordered host pair (highest precedence).
  void set_for_pair(HostId from, HostId to, const Spec& spec);

  // Installs the plan as the transport's fault_injector, replacing any
  // previous injector. The plan must outlive the transport's use of it.
  void attach(Transport& transport);

  // Decision procedure; exposed for transports/tests that drive it
  // directly.
  FaultDecision decide(HostId from, HostId to, const Message& msg);

  // What was actually injected.
  std::uint64_t drops_injected() const { return drops_; }
  std::uint64_t duplicates_injected() const { return duplicates_; }
  std::uint64_t delays_injected() const { return delays_; }

 private:
  FaultDecision apply(Spec& spec);

  Rng rng_;
  Spec default_;
  std::vector<std::pair<MessageType, Spec>> by_type_;
  std::unordered_map<std::uint64_t, Spec> by_pair_;  // key: from << 32 | to
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t delays_ = 0;
};

}  // namespace hcube
