// Seeded, reproducible fault injection for transports.
//
// A FaultPlan decides, per message, whether the network drops it,
// duplicates it, or delays it — drawing every decision from one seeded RNG
// so a run is exactly reproducible from (seed, workload). Rules come in
// three precedence tiers: a per-host-pair rule beats a per-message-type
// rule beats the default rule. Every rule can additionally be confined to a
// simulated-time window [active_from_ms, active_until_ms); outside its
// window a rule is skipped during matching and the next tier applies, so a
// "5% loss between t=1000 and t=2000" rule composes with an always-on
// default. attach() installs the plan as a transport's fault_injector (the
// FaultHooks seam, sim/fault_hooks.h) and binds the transport's event-queue
// clock; the transport then consults the plan on every send attempt.
//
// On top of the per-message rules the plan models network partitions as a
// first-class primitive: partition() cuts a set of hosts into groups for
// [t0, t1), and while the window is active every message between hosts of
// different groups is dropped (counted separately — a partition is a
// property of the network, not a per-rule fault budget). When the window
// ends the partition heals by itself; with a ReliableTransport layered on
// top, traffic buffered by the ARQ layer then flows across the former cut.
//
// With a ReliableTransport layered on the faulty transport, the protocols
// survive whatever a plan injects (up to the retry budget); used directly
// under a plain transport, a plan demonstrates what the paper's
// reliable-delivery assumption protects against. The counters record what
// was actually injected, so tests can assert the run was genuinely lossy;
// stats() additionally breaks the charges down per rule for choreographed
// fault scripts that must verify each rule actually fired.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "sim/fault_hooks.h"
#include "util/rng.h"

namespace hcube {

// Ordered host pair, used as the per-pair rule key. A dedicated struct (not
// a packed 64-bit word) so the map stays collision-free by construction
// even if HostId ever widens; the hash packs both ids into one word and
// pins that assumption with a static_assert right where it is made.
struct HostPair {
  HostId from = kNoHost;
  HostId to = kNoHost;
  bool operator==(const HostPair&) const = default;
};

struct HostPairHash {
  std::size_t operator()(const HostPair& p) const {
    static_assert(sizeof(HostId) * 2 <= sizeof(std::uint64_t),
                  "HostPairHash packs two HostIds into a 64-bit word; widen "
                  "the mix below if HostId outgrows 32 bits");
    std::uint64_t mixed = (static_cast<std::uint64_t>(p.from)
                           << (8 * sizeof(HostId))) |
                          p.to;
    return static_cast<std::size_t>(splitmix64_next(mixed));
  }
};

class FaultPlan {
 public:
  // "No end": a window that never closes.
  static constexpr SimTime kNoEnd = std::numeric_limits<SimTime>::infinity();

  // Fault probabilities for one rule. Drop wins over duplicate; delay is
  // decided independently and also applies to duplicated messages.
  struct Spec {
    double drop = 0.0;       // P(message is lost)
    double duplicate = 0.0;  // P(message is delivered twice)
    double delay = 0.0;      // P(message gets extra_delay_ms added)
    double extra_delay_ms = 0.0;
    // Simulated-time window in which the rule participates in matching.
    // Outside [active_from_ms, active_until_ms) the rule is skipped and the
    // next precedence tier applies.
    SimTime active_from_ms = 0.0;
    SimTime active_until_ms = kNoEnd;
    // Budgets: at most this many faults charged to this rule (UINT64_MAX =
    // unlimited). A budget of K with probability 1.0 hits exactly the first
    // K matching messages — the deterministic fault-choreography tests.
    std::uint64_t max_drops = UINT64_MAX;
    std::uint64_t max_duplicates = UINT64_MAX;
    std::uint64_t max_delays = UINT64_MAX;
    std::uint64_t drops_charged = 0;       // running counts against budgets
    std::uint64_t duplicates_charged = 0;
    std::uint64_t delays_charged = 0;
  };

  // Per-rule view of what was charged, for tests that must verify each rule
  // of a choreographed fault script actually fired.
  struct RuleStats {
    std::string scope;  // "default", "type <name>", "pair <from>-><to>"
    std::uint64_t drops_charged = 0;
    std::uint64_t duplicates_charged = 0;
    std::uint64_t delays_charged = 0;
  };
  struct Stats {
    std::uint64_t drops = 0;       // injected via rules (not partitions)
    std::uint64_t duplicates = 0;
    std::uint64_t delays = 0;
    std::uint64_t partition_drops = 0;
    std::vector<RuleStats> rules;  // default, by-type, by-pair (sorted)
  };

  explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}

  // The one time-window containment rule of the whole plan, shared by rule
  // activation windows and partition windows: half-open [from, until). A
  // rule is active at exactly t == from and inactive at exactly t == until,
  // so back-to-back windows [a, b) + [b, c) compose with neither a gap nor
  // a double-match at the seam. Pinned by fault_plan_test's
  // WindowEdgesAreHalfOpen regression.
  static bool window_contains(SimTime t, SimTime from, SimTime until) {
    return t >= from && t < until;
  }

  // Default rule for messages no per-pair / per-type rule matches.
  void set_default(const Spec& spec) { default_ = spec; }
  // Rule for one message type (matched after per-pair rules).
  void set_for_type(MessageType t, const Spec& spec);
  // Rule for one ordered host pair (highest precedence).
  void set_for_pair(HostId from, HostId to, const Spec& spec);

  // Cuts the listed hosts into groups for simulated time [t0, t1): while
  // the window is active, a message whose endpoints sit in different groups
  // is dropped. Hosts absent from every group are unaffected. Windows may
  // overlap; a message is dropped if any active window separates its
  // endpoints. The partition heals itself when the window closes.
  void partition(const std::vector<std::vector<HostId>>& groups, SimTime t0,
                 SimTime t1);

  // True when some active window separates a and b right now.
  bool partitioned(HostId a, HostId b) const;

  // Installs the plan as the transport's fault_injector, replacing any
  // previous injector, and binds the transport's clock (time-windowed rules
  // and partitions are evaluated against it). The plan must outlive the
  // transport's use of it.
  void attach(Transport& transport);

  // Clock for window evaluation when the plan is driven directly rather
  // than via attach() (tests). Unset, windows see t = 0.
  void bind_clock(const EventQueue& queue) { clock_ = &queue; }

  // Decision procedure; exposed for transports/tests that drive it
  // directly.
  FaultDecision decide(HostId from, HostId to, const Message& msg);

  // What was actually injected.
  std::uint64_t drops_injected() const { return drops_; }
  std::uint64_t duplicates_injected() const { return duplicates_; }
  std::uint64_t delays_injected() const { return delays_; }
  std::uint64_t partition_drops() const { return partition_drops_; }

  // Snapshot of the injection totals plus per-rule charges, in a
  // deterministic order (default rule, then by-type rules in insertion
  // order, then by-pair rules sorted by (from, to)).
  Stats stats() const;

 private:
  struct PartitionWindow {
    SimTime t0 = 0.0;
    SimTime t1 = 0.0;
    std::unordered_map<HostId, std::uint32_t> group;  // host -> group index
  };

  SimTime now() const;
  static bool active(const Spec& spec, SimTime t) {
    return window_contains(t, spec.active_from_ms, spec.active_until_ms);
  }
  FaultDecision apply(Spec& spec);

  Rng rng_;
  Spec default_;
  std::vector<std::pair<MessageType, Spec>> by_type_;
  std::unordered_map<HostPair, Spec, HostPairHash> by_pair_;
  std::vector<PartitionWindow> partitions_;
  const EventQueue* clock_ = nullptr;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t delays_ = 0;
  std::uint64_t partition_drops_ = 0;
};

}  // namespace hcube
