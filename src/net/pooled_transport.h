// Shared machinery of the in-process transports: a payload slab plus the
// event queue's typed delivery events.
//
// send() parks the Message in a recycled slab slot and schedules a
// {sink, from, to, slot} event — no closure, no per-message heap traffic.
// Once the slab and the queue's heap have grown to the workload's
// high-water mark, a steady-state send+delivery does zero allocations
// (payloads that carry table snapshots still own their vectors, but that
// memory belongs to the protocol layer, not to the transport).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/transport.h"

namespace hcube {

class PooledTransport : public Transport, private DeliverySink {
 public:
  HostId add_endpoint(Handler handler) override;
  std::uint32_t num_endpoints() const override {
    return static_cast<std::uint32_t>(handlers_.size());
  }

  bool send(HostId from, HostId to, Message msg) override;

  EventQueue& queue() override { return queue_; }

  std::uint64_t messages_sent() const override { return messages_sent_; }
  std::uint64_t messages_delivered() const override {
    return messages_delivered_;
  }
  std::uint64_t messages_dropped() const override {
    return messages_dropped_;
  }

  // Slab introspection (tests and benches assert steady-state reuse).
  std::size_t payload_pool_size() const { return slots_.size(); }
  std::size_t payload_pool_free() const { return free_slots_.size(); }

 protected:
  // max_endpoints bounds add_endpoint calls; the handler table is reserved
  // up front so registration never reallocates it mid-run.
  PooledTransport(EventQueue& queue, std::uint32_t max_endpoints);

  // One-way delivery delay for an ordered pair; must be deterministic
  // within a run (per-pair FIFO relies on it being constant per pair).
  virtual SimTime delay_ms(HostId from, HostId to) = 0;

 private:
  void deliver(HostId from, HostId to, std::uint32_t payload_slot) override;
  // Parks the message in a recycled slab slot; returns the slot.
  std::uint32_t park(Message msg);

  EventQueue& queue_;
  std::uint32_t max_endpoints_;
  std::vector<Handler> handlers_;
  // Deque, not vector: growing the slab mid-delivery (a handler that sends)
  // must not invalidate the reference the in-flight delivery handed out.
  std::deque<Message> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace hcube
