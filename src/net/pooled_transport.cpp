#include "net/pooled_transport.h"

#include <utility>

#include "util/check.h"

namespace hcube {

PooledTransport::PooledTransport(EventQueue& queue,
                                 std::uint32_t max_endpoints)
    : queue_(queue), max_endpoints_(max_endpoints) {
  handlers_.reserve(max_endpoints_);
}

HostId PooledTransport::add_endpoint(Handler handler) {
  HCUBE_CHECK_MSG(handlers_.size() < max_endpoints_,
                  "more endpoints than the transport was sized for");
  handlers_.push_back(std::move(handler));
  return static_cast<HostId>(handlers_.size() - 1);
}

std::uint32_t PooledTransport::park(Message msg) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(msg);
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(std::move(msg));
  return slot;
}

bool PooledTransport::send(HostId from, HostId to, Message msg) {
  HCUBE_CHECK(from < handlers_.size() && to < handlers_.size());
  const FaultDecision d = admit(from, to, msg);
  if (d.action == FaultAction::kDrop) {
    ++messages_dropped_;
    return false;
  }
  const SimTime delay = delay_ms(from, to) + d.extra_delay_ms;
  if (d.action == FaultAction::kDuplicate) {
    // The duplicate gets its own slab slot (both copies are in flight at
    // once) and the same delivery time.
    ++messages_sent_;
    const std::uint32_t dup_slot = park(msg);
    queue_.schedule_delivery_after(delay, this, from, to, dup_slot);
  }
  ++messages_sent_;
  const std::uint32_t slot = park(std::move(msg));
  queue_.schedule_delivery_after(delay, this, from, to, slot);
  return true;
}

void PooledTransport::deliver(HostId from, HostId to,
                              std::uint32_t payload_slot) {
  // The payload is handed to the handler in place — the slab is a deque, so
  // a handler that sends (growing the slab or recycling other slots) cannot
  // invalidate this reference, and the slot is released only afterwards.
  ++messages_delivered_;
  handlers_[to](from, slots_[payload_slot]);
  free_slots_.push_back(payload_slot);
}

}  // namespace hcube
