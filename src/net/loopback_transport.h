// Zero-latency transport for protocol-logic tests and micro-benchmarks.
//
// Every message is delivered at the send instant (through the event queue,
// so causality and per-pair FIFO order are preserved via the sequence-number
// tie-break — delivery is *asynchronous*, just not delayed). Protocol runs
// over loopback exercise exactly the same state machines with none of the
// latency-model cost, which is what makes it the fast path for logic tests
// and the upper-bound path for throughput benchmarks.
#pragma once

#include "net/pooled_transport.h"

namespace hcube {

class LoopbackTransport final : public PooledTransport {
 public:
  LoopbackTransport(EventQueue& queue, std::uint32_t max_endpoints)
      : PooledTransport(queue, max_endpoints) {}

 protected:
  SimTime delay_ms(HostId /*from*/, HostId /*to*/) override { return 0.0; }
};

}  // namespace hcube
