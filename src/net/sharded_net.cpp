#include "net/sharded_net.h"

#include <utility>

#include "sim/shard_context.h"
#include "util/check.h"
#include "util/rng.h"

namespace hcube {

namespace {
// Fixed lane-assignment salt: lane homes are part of no digest (behavior is
// K-independent by construction), but a stable hash keeps populations
// balanced and runs reproducible across builds.
constexpr std::uint64_t kShardSalt = 0x51ab7e93d2c46f01ULL;
}  // namespace

// ---------------------------------------------------------------- lanes --

HostId LaneTransport::add_endpoint(Handler) {
  HCUBE_CHECK_MSG(false, "lane endpoints register via add_endpoint_as");
  return kNoHost;
}

HostId LaneTransport::add_endpoint_as(HostId global, Handler handler) {
  HCUBE_DCHECK(local_of_ != nullptr &&
               (*local_of_)[global] == handlers_.size());
  handlers_.push_back(std::move(handler));
  return global;
}

std::uint32_t LaneTransport::park(Message msg) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(msg);
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(std::move(msg));
  return slot;
}

void LaneTransport::dispatch_one(HostId from, HostId to, SimTime deliver_at,
                                 Message msg) {
  const std::uint32_t dst = (*lane_of_)[to];
  if (dst == lane_) {
    const std::uint32_t slot = park(std::move(msg));
    queue_.schedule_delivery_at(deliver_at, this, from, to, slot);
    return;
  }
  ++cross_shard_sent_;
  out_[dst]->push(RemoteDelivery{deliver_at, from, to, std::move(msg)});
}

bool LaneTransport::send(HostId from, HostId to, Message msg) {
  // Exactly PooledTransport::send, with the destination-lane fork folded
  // into dispatch_one: drop short-circuits, a duplicate takes its own slab
  // slot (or mailbox entry) and is dispatched *before* the primary, both
  // share one delivery time.
  const FaultDecision d = admit(from, to, msg);
  if (d.action == FaultAction::kDrop) {
    ++messages_dropped_;
    return false;
  }
  const SimTime deliver_at =
      queue_.now() + latency_.latency_ms(from, to) + d.extra_delay_ms;
  if (d.action == FaultAction::kDuplicate) {
    ++messages_sent_;
    dispatch_one(from, to, deliver_at, msg);
  }
  ++messages_sent_;
  dispatch_one(from, to, deliver_at, std::move(msg));
  return true;
}

void LaneTransport::deliver(HostId from, HostId to,
                            std::uint32_t payload_slot) {
  ++messages_delivered_;
  handlers_[(*local_of_)[to]](from, slots_[payload_slot]);
  free_slots_.push_back(payload_slot);
}

void LaneTransport::commit_remote(RemoteDelivery r) {
  const std::uint32_t slot = park(std::move(r.msg));
  queue_.schedule_delivery_at(r.deliver_at, this, r.from, r.to, slot);
}

// --------------------------------------------------------------- facade --

HostId ShardedTransport::add_endpoint(Handler handler) {
  return net_.register_endpoint(std::move(handler));
}

std::uint32_t ShardedTransport::num_endpoints() const {
  return static_cast<std::uint32_t>(net_.lane_of_.size());
}

bool ShardedTransport::send(HostId from, HostId to, Message msg) {
  // Decorator-level hooks with sequential parity: a drop here is "never
  // sent" (no sequence number, no retransmission), exactly as hooks on the
  // sequential ReliableTransport behave. Duplicate/delay decisions are
  // ignored at this layer — install fault plans on the lane transports.
  const FaultDecision d = admit(from, to, msg);
  if (d.action == FaultAction::kDrop) {
    ++dropped_here_;
    return false;
  }
  return net_.rels_[net_.lane_of_[from]]->send(from, to, std::move(msg));
}

EventQueue& ShardedTransport::queue() {
  EventQueue* q = current_lane_queue();
  HCUBE_CHECK_MSG(q != nullptr,
                  "sharded transport queue() outside a lane scope");
  return *q;
}

std::uint64_t ShardedTransport::messages_sent() const {
  std::uint64_t n = 0;
  for (const auto& rel : net_.rels_) n += rel->messages_sent();
  return n;
}

std::uint64_t ShardedTransport::messages_delivered() const {
  std::uint64_t n = 0;
  for (const auto& rel : net_.rels_) n += rel->messages_delivered();
  return n;
}

std::uint64_t ShardedTransport::messages_dropped() const {
  std::uint64_t n = dropped_here_;
  for (const auto& rel : net_.rels_) n += rel->messages_dropped();
  return n;
}

// ------------------------------------------------------------------ net --

ShardedNet::ShardedNet(const Params& params, LatencyModel& latency)
    : salt_(kShardSalt),
      epoch_ms_(params.epoch_ms > 0.0 ? params.epoch_ms
                                      : latency.min_latency_ms()),
      facade_(*this) {
  HCUBE_CHECK(params.lanes >= 1 && params.lanes <= kMaxShardLanes);
  HCUBE_CHECK_MSG(epoch_ms_ > 0.0,
                  "latency model cannot bound cross-shard latency");
  HCUBE_CHECK_MSG(epoch_ms_ <= latency.min_latency_ms(),
                  "epoch longer than the minimum cross-shard latency");
  const std::uint32_t k = params.lanes;
  // Size the per-host columns for the latency model's full population up
  // front: growth doubling on million-entry vectors would otherwise leave
  // ~2x capacity slack, which bench_scale's bytes/node ceiling charges to
  // every node. Per-lane columns get the expected share plus a ~1.5%
  // imbalance margin (the hash split's deviation at n = 10^6 is well under
  // 0.1%); an overflow merely falls back to doubling from there.
  const std::size_t expected = latency.num_hosts();
  const std::size_t per_lane = expected / k + expected / 64 + 64;
  lane_of_.reserve(expected);
  local_of_.reserve(expected);
  queues_.reserve(k);
  transports_.reserve(k);
  rels_.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i)
    queues_.push_back(std::make_unique<EventQueue>());
  for (std::uint32_t i = 0; i < k; ++i)
    transports_.push_back(
        std::make_unique<LaneTransport>(i, *queues_[i], latency));
  for (std::uint32_t i = 0; i < k; ++i)
    rels_.push_back(std::make_unique<ReliableTransport>(
        *transports_[i], params.rel, &local_of_));
  for (std::uint32_t i = 0; i < k; ++i) {
    transports_[i]->reserve_endpoints(per_lane);
    rels_[i]->reserve_endpoints(per_lane);
  }
  mail_.resize(k);
  for (std::uint32_t src = 0; src < k; ++src) {
    mail_[src].resize(k);
    for (std::uint32_t dst = 0; dst < k; ++dst)
      if (src != dst)
        mail_[src][dst] =
            std::make_unique<SpscMailbox<RemoteDelivery>>(
                params.mailbox_capacity);
  }
  for (std::uint32_t i = 0; i < k; ++i) {
    std::vector<SpscMailbox<RemoteDelivery>*> out(k, nullptr);
    for (std::uint32_t j = 0; j < k; ++j)
      if (j != i) out[j] = mail_[i][j].get();
    transports_[i]->set_routing(&lane_of_, &local_of_, std::move(out));
  }
  std::vector<EventQueue*> lanes;
  lanes.reserve(k);
  for (auto& q : queues_) lanes.push_back(q.get());
  driver_ = std::make_unique<ShardDriver>(std::move(lanes), epoch_ms_,
                                          [this] { commit_mailboxes(); });
}

std::uint32_t ShardedNet::shard_of(HostId h) const {
  std::uint64_t s = salt_ ^ (static_cast<std::uint64_t>(h) *
                             0x9e3779b97f4a7c15ULL);
  return static_cast<std::uint32_t>(splitmix64_next(s) % num_lanes());
}

HostId ShardedNet::register_endpoint(Transport::Handler handler) {
  const HostId g = static_cast<HostId>(lane_of_.size());
  const std::uint32_t lane = shard_of(g);
  lane_of_.push_back(lane);
  local_of_.push_back(rels_[lane]->num_endpoints());
  const HostId got = rels_[lane]->add_endpoint_as(g, std::move(handler));
  HCUBE_CHECK(got == g);
  return g;
}

void ShardedNet::commit_mailboxes() {
  // Canonical (epoch, src_shard, seq) order: barriers order the epochs,
  // this loop orders sources, each mailbox preserves push order.
  const std::uint32_t k = num_lanes();
  for (std::uint32_t dst = 0; dst < k; ++dst) {
    for (std::uint32_t src = 0; src < k; ++src) {
      if (src == dst) continue;
      SpscMailbox<RemoteDelivery>& mb = *mail_[src][dst];
      RemoteDelivery r;
      while (mb.pop(r)) transports_[dst]->commit_remote(std::move(r));
    }
  }
}

ReliabilityStats ShardedNet::rel_stats() const {
  ReliabilityStats sum;
  for (const auto& rel : rels_) {
    const ReliabilityStats& s = rel->rstats();
    sum.tracked_sent += s.tracked_sent;
    sum.retransmits += s.retransmits;
    sum.dup_suppressed += s.dup_suppressed;
    sum.acks_sent += s.acks_sent;
    sum.give_ups += s.give_ups;
  }
  return sum;
}

std::uint64_t ShardedNet::rel_in_flight() const {
  std::uint64_t n = 0;
  for (const auto& rel : rels_) n += rel->in_flight();
  return n;
}

std::uint64_t ShardedNet::cross_shard_messages() const {
  std::uint64_t n = 0;
  for (const auto& t : transports_) n += t->cross_shard_sent();
  return n;
}

}  // namespace hcube
