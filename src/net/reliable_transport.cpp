#include "net/reliable_transport.h"

#include <limits>
#include <utility>

#include "util/check.h"

namespace hcube {

ReliableTransport::ReliableTransport(
    Transport& inner, ReliabilityConfig cfg,
    const std::vector<std::uint32_t>* local_index)
    : inner_(inner), cfg_(cfg), local_index_(local_index) {
  HCUBE_CHECK(cfg_.rto_ms > 0.0 && cfg_.backoff >= 1.0);
  HCUBE_CHECK_MSG(inner_.num_endpoints() == 0,
                  "decorate the inner transport before registering endpoints");
}

HostId ReliableTransport::add_endpoint(Handler handler) {
  HCUBE_CHECK_MSG(local_index_ == nullptr,
                  "lane-mode endpoints must register via add_endpoint_as");
  const auto self = static_cast<HostId>(handlers_.size());
  handlers_.push_back(std::move(handler));
  const HostId inner_host =
      inner_.add_endpoint([this, self](HostId from, const Message& msg) {
        on_deliver(from, self, msg);
      });
  HCUBE_CHECK_MSG(inner_host == self,
                  "reliable layer must be the inner transport's only user");
  return self;
}

HostId ReliableTransport::add_endpoint_as(HostId global, Handler handler) {
  if (local_index_ == nullptr)
    return Transport::add_endpoint_as(global, std::move(handler));
  // The facade assigns lane-local indices in registration order, so the
  // global id's local slot must be exactly the next dense index here.
  HCUBE_CHECK_MSG((*local_index_)[global] == handlers_.size(),
                  "endpoint registered out of lane order");
  handlers_.push_back(std::move(handler));
  const HostId inner_host =
      inner_.add_endpoint_as(global, [this, global](HostId from,
                                                    const Message& msg) {
        on_deliver(from, global, msg);
      });
  HCUBE_CHECK_MSG(inner_host == global,
                  "reliable layer must be the inner transport's only user");
  return global;
}

std::uint32_t ReliableTransport::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  inflight_.emplace_back();
  return static_cast<std::uint32_t>(inflight_.size() - 1);
}

void ReliableTransport::release_slot(std::uint32_t slot) {
  free_.push_back(slot);
  --in_flight_;
}

void ReliableTransport::arm_timer(HostId from, HostId to, SendPair& p,
                                  SimTime deadline) {
  // One outstanding timer per pair. If it is already pending it fires at or
  // before this deadline (earlier sends have earlier deadlines) and will
  // rearm itself at the window's minimum.
  if (p.timer_armed) return;
  p.timer_armed = true;
  inner_.queue().schedule_timer_at(deadline, this, from, to);
}

bool ReliableTransport::send(HostId from, HostId to, Message msg) {
  // Hooks on the decorator fire before sequence numbering: a drop here is
  // "never sent", not a network fault to heal. Duplicate/delay decisions
  // are ignored at this layer — install the FaultPlan on the inner
  // transport instead.
  const FaultDecision d = admit(from, to, msg);
  if (d.action == FaultAction::kDrop) {
    ++dropped_;
    return false;
  }
  SendPair& p = send_[pair_key(lx(from), to)];
  msg.rel_seq = ++p.next_seq;
  ++sent_;
  ++stats_.tracked_sent;

  const std::uint32_t slot = acquire_slot();
  InFlight& f = inflight_[slot];
  f.msg = msg;  // copy into the recycled slot; capacity is reused
  f.seq = msg.rel_seq;
  f.retries = 0;
  f.rto = cfg_.rto_ms;
  f.deadline = inner_.queue().now() + f.rto;
  p.window.push_back(slot);
  ++in_flight_;
  arm_timer(from, to, p, f.deadline);

  inner_.send(from, to, std::move(msg));
  return true;
}

void ReliableTransport::on_timer(std::uint32_t from, std::uint32_t to,
                                 std::uint32_t) {
  SendPair& p = send_[pair_key(lx(from), to)];
  p.timer_armed = false;
  const SimTime now = inner_.queue().now();
  SimTime next = std::numeric_limits<SimTime>::infinity();
  for (std::size_t i = 0; i < p.window.size();) {
    const std::uint32_t slot = p.window[i];
    InFlight& f = inflight_[slot];
    if (f.deadline <= now) {
      if (f.retries >= cfg_.max_retries) {
        ++stats_.give_ups;
        giveup_scratch_.push_back(slot);
        p.window[i] = p.window.back();
        p.window.pop_back();
        continue;
      }
      ++f.retries;
      ++stats_.retransmits;
      f.rto *= cfg_.backoff;
      f.deadline = now + f.rto;
      inner_.send(from, to, f.msg);
    }
    if (f.deadline < next) next = f.deadline;
    ++i;
  }
  if (!p.window.empty()) {
    p.timer_armed = true;
    inner_.queue().schedule_timer_at(next, this, from, to);
  }
  // Give-up notifications run last: the callback may send (acquiring fresh
  // slots, touching the pair maps) without invalidating anything above.
  while (!giveup_scratch_.empty()) {
    const std::uint32_t slot = giveup_scratch_.back();
    giveup_scratch_.pop_back();
    if (on_give_up) on_give_up(from, to, inflight_[slot].msg);
    release_slot(slot);
  }
}

bool ReliableTransport::note_fresh(RecvPair& p, std::uint32_t seq) {
  if (seq <= p.cum) return false;
  if (seq == p.cum + 1) {
    ++p.cum;
    // Absorb out-of-order arrivals that are now contiguous.
    bool advanced = true;
    while (advanced && !p.ooo.empty()) {
      advanced = false;
      for (std::size_t i = 0; i < p.ooo.size(); ++i) {
        if (p.ooo[i] == p.cum + 1) {
          ++p.cum;
          p.ooo[i] = p.ooo.back();
          p.ooo.pop_back();
          advanced = true;
          break;
        }
      }
    }
    return true;
  }
  for (const std::uint32_t s : p.ooo)
    if (s == seq) return false;
  p.ooo.push_back(seq);
  return true;
}

void ReliableTransport::on_deliver(HostId from, HostId self,
                                   const Message& msg) {
  if (const auto* ack = std::get_if<RelAckMsg>(&msg.body)) {
    on_ack(self, from, ack->acked_seq);
    return;
  }
  if (msg.rel_seq == 0) {
    // Untracked message (sent straight through the inner transport by some
    // other party); hand it up as-is.
    handlers_[lx(self)](from, msg);
    return;
  }
  // Ack first and unconditionally — for a duplicate, the lost ack is
  // exactly what the sender is retransmitting to get.
  ++stats_.acks_sent;
  inner_.send(self, from, Message{NodeId{}, RelAckMsg{msg.rel_seq}});
  RecvPair& p = recv_[pair_key(lx(self), from)];
  if (!note_fresh(p, msg.rel_seq)) {
    ++stats_.dup_suppressed;
    return;
  }
  ++delivered_;
  handlers_[lx(self)](from, msg);
}

void ReliableTransport::on_ack(HostId self, HostId from, std::uint32_t seq) {
  const auto it = send_.find(pair_key(lx(self), from));
  if (it == send_.end()) return;
  SendPair& p = it->second;
  for (std::size_t i = 0; i < p.window.size(); ++i) {
    InFlight& f = inflight_[p.window[i]];
    if (f.seq == seq) {
      release_slot(p.window[i]);
      p.window[i] = p.window.back();
      p.window.pop_back();
      return;
    }
  }
  // Ack for a message no longer tracked: already acked (the inner network
  // duplicated data or ack), or already given up. Nothing to do.
}

}  // namespace hcube
