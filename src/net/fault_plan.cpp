#include "net/fault_plan.h"

namespace hcube {
namespace {

std::uint64_t pair_key(HostId from, HostId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

void FaultPlan::set_for_type(MessageType t, const Spec& spec) {
  for (auto& [type, existing] : by_type_) {
    if (type == t) {
      existing = spec;
      return;
    }
  }
  by_type_.emplace_back(t, spec);
}

void FaultPlan::set_for_pair(HostId from, HostId to, const Spec& spec) {
  by_pair_[pair_key(from, to)] = spec;
}

void FaultPlan::attach(Transport& transport) {
  transport.fault_injector = [this](HostId from, HostId to,
                                    const Message& msg) {
    return decide(from, to, msg);
  };
}

FaultDecision FaultPlan::decide(HostId from, HostId to, const Message& msg) {
  if (!by_pair_.empty()) {
    auto it = by_pair_.find(pair_key(from, to));
    if (it != by_pair_.end()) return apply(it->second);
  }
  const MessageType t = type_of(msg.body);
  for (auto& [type, spec] : by_type_) {
    if (type == t) return apply(spec);
  }
  return apply(default_);
}

FaultDecision FaultPlan::apply(Spec& spec) {
  FaultDecision d;
  if (spec.drop > 0.0 && spec.drops_charged < spec.max_drops &&
      rng_.next_bool(spec.drop)) {
    ++spec.drops_charged;
    ++drops_;
    d.action = FaultAction::kDrop;
    return d;
  }
  if (spec.duplicate > 0.0 && spec.duplicates_charged < spec.max_duplicates &&
      rng_.next_bool(spec.duplicate)) {
    ++spec.duplicates_charged;
    ++duplicates_;
    d.action = FaultAction::kDuplicate;
  }
  if (spec.delay > 0.0 && spec.delays_charged < spec.max_delays &&
      rng_.next_bool(spec.delay)) {
    ++spec.delays_charged;
    ++delays_;
    d.extra_delay_ms = spec.extra_delay_ms;
  }
  return d;
}

}  // namespace hcube
