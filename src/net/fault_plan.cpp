#include "net/fault_plan.h"

#include <algorithm>

#include "util/check.h"

namespace hcube {

void FaultPlan::set_for_type(MessageType t, const Spec& spec) {
  for (auto& [type, existing] : by_type_) {
    if (type == t) {
      existing = spec;
      return;
    }
  }
  by_type_.emplace_back(t, spec);
}

void FaultPlan::set_for_pair(HostId from, HostId to, const Spec& spec) {
  by_pair_[HostPair{from, to}] = spec;
}

void FaultPlan::partition(const std::vector<std::vector<HostId>>& groups,
                          SimTime t0, SimTime t1) {
  HCUBE_CHECK_MSG(t0 < t1, "partition window must be non-empty");
  PartitionWindow w;
  w.t0 = t0;
  w.t1 = t1;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const HostId h : groups[g]) {
      const auto [it, inserted] =
          w.group.emplace(h, static_cast<std::uint32_t>(g));
      HCUBE_CHECK_MSG(inserted || it->second == g,
                      "host listed in two partition groups");
    }
  }
  partitions_.push_back(std::move(w));
}

bool FaultPlan::partitioned(HostId a, HostId b) const {
  const SimTime t = now();
  for (const PartitionWindow& w : partitions_) {
    if (!window_contains(t, w.t0, w.t1)) continue;
    const auto ga = w.group.find(a);
    if (ga == w.group.end()) continue;
    const auto gb = w.group.find(b);
    if (gb != w.group.end() && ga->second != gb->second) return true;
  }
  return false;
}

void FaultPlan::attach(Transport& transport) {
  clock_ = &transport.queue();
  transport.fault_injector = [this](HostId from, HostId to,
                                    const Message& msg) {
    return decide(from, to, msg);
  };
}

SimTime FaultPlan::now() const { return clock_ ? clock_->now() : 0.0; }

FaultDecision FaultPlan::decide(HostId from, HostId to, const Message& msg) {
  const SimTime t = now();
  // Partitions first: a cut network loses the message no matter what the
  // per-message rules would have decided.
  if (!partitions_.empty() && partitioned(from, to)) {
    ++partition_drops_;
    return {FaultAction::kDrop, 0.0};
  }
  if (!by_pair_.empty()) {
    auto it = by_pair_.find(HostPair{from, to});
    if (it != by_pair_.end() && active(it->second, t))
      return apply(it->second);
  }
  const MessageType mt = type_of(msg.body);
  for (auto& [type, spec] : by_type_) {
    if (type == mt && active(spec, t)) return apply(spec);
  }
  if (active(default_, t)) return apply(default_);
  return {};
}

FaultDecision FaultPlan::apply(Spec& spec) {
  FaultDecision d;
  if (spec.drop > 0.0 && spec.drops_charged < spec.max_drops &&
      rng_.next_bool(spec.drop)) {
    ++spec.drops_charged;
    ++drops_;
    d.action = FaultAction::kDrop;
    return d;
  }
  if (spec.duplicate > 0.0 && spec.duplicates_charged < spec.max_duplicates &&
      rng_.next_bool(spec.duplicate)) {
    ++spec.duplicates_charged;
    ++duplicates_;
    d.action = FaultAction::kDuplicate;
  }
  if (spec.delay > 0.0 && spec.delays_charged < spec.max_delays &&
      rng_.next_bool(spec.delay)) {
    ++spec.delays_charged;
    ++delays_;
    d.extra_delay_ms = spec.extra_delay_ms;
  }
  return d;
}

FaultPlan::Stats FaultPlan::stats() const {
  Stats s;
  s.drops = drops_;
  s.duplicates = duplicates_;
  s.delays = delays_;
  s.partition_drops = partition_drops_;
  auto charges_of = [](const char* scope, const Spec& spec) {
    RuleStats r;
    r.scope = scope;
    r.drops_charged = spec.drops_charged;
    r.duplicates_charged = spec.duplicates_charged;
    r.delays_charged = spec.delays_charged;
    return r;
  };
  s.rules.push_back(charges_of("default", default_));
  for (const auto& [type, spec] : by_type_) {
    RuleStats r = charges_of("type ", spec);
    r.scope += type_name(type);
    s.rules.push_back(std::move(r));
  }
  std::vector<const std::pair<const HostPair, Spec>*> pairs;
  pairs.reserve(by_pair_.size());
  for (const auto& entry : by_pair_) pairs.push_back(&entry);
  std::sort(pairs.begin(), pairs.end(), [](const auto* a, const auto* b) {
    if (a->first.from != b->first.from) return a->first.from < b->first.from;
    return a->first.to < b->first.to;
  });
  for (const auto* entry : pairs) {
    RuleStats r = charges_of("pair ", entry->second);
    r.scope += std::to_string(entry->first.from) + "->" +
               std::to_string(entry->first.to);
    s.rules.push_back(std::move(r));
  }
  return s;
}

}  // namespace hcube
