// Suffix trie over node IDs.
//
// A digit trie keyed on the RIGHTMOST digits of IDs: depth-t edges consume
// digit(t). It answers "does any node with suffix ω exist?", "how many?",
// "give me one / all of them" in O(|ω|) — exactly the V_ω suffix-set queries
// of the paper (Table 1). Used by:
//   - the consistency checker (ground truth for Definition 3.8),
//   - the direct consistent-network builder,
//   - notification-set computation (Definition 3.4) and C-set trees.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "ids/node_id.h"

namespace hcube {

class SuffixTrie {
 public:
  explicit SuffixTrie(IdParams params);

  const IdParams& params() const { return params_; }

  // Inserts an ID; returns false (and leaves the trie unchanged) if the
  // exact ID was already present.
  bool insert(const NodeId& id);

  std::size_t size() const { return ids_.size(); }
  const std::vector<NodeId>& ids() const { return ids_; }

  // Number of inserted IDs with the given suffix (|V_ω|).
  std::size_t count_with_suffix(std::span<const Digit> suffix) const;
  bool contains_suffix(std::span<const Digit> suffix) const {
    return count_with_suffix(suffix) > 0;
  }
  bool contains(const NodeId& id) const {
    return contains_suffix(id.digits());
  }

  // An arbitrary (deterministic: first-inserted) ID with the suffix.
  std::optional<NodeId> any_with_suffix(std::span<const Digit> suffix) const;

  // All IDs with the suffix, ordered by digit sequence (LSB-first).
  std::vector<NodeId> all_with_suffix(std::span<const Digit> suffix) const;

  // Up to max_count IDs with the suffix (digit-order DFS, early-stopped).
  std::vector<NodeId> some_with_suffix(std::span<const Digit> suffix,
                                       std::size_t max_count) const;

  // Walks down x's own digit path from the root; at each depth i reached,
  // calls fn(i, j, first) for every child digit j of the depth-i trie node,
  // where `first` is the first-inserted ID with suffix j . x[i-1..0]. This
  // enumerates, in O(d + total children), exactly the non-empty table
  // entries (i, j) that a consistent table for x must fill. The walk follows
  // x's digits as far as they exist in the trie (all the way when x itself
  // is inserted).
  void for_each_entry_candidate(
      const NodeId& x,
      const std::function<void(std::size_t level, Digit digit,
                               const NodeId& first)>& fn) const;

  // The length k of the suffix defining x's notification set w.r.t. this
  // set V (Definition 3.4): the largest k with V_{x[k-1..0]} != empty and
  // V_{x[k]...x[0]} = empty. Returns 0 when no node shares x's rightmost
  // digit (then the notification set is all of V). Precondition: x itself
  // is not in the trie.
  std::size_t notify_suffix_len(const NodeId& x) const;

 private:
  struct TrieNode {
    // Sorted-by-digit child list; b <= 256 and fan-out shrinks fast with
    // depth, so a flat vector beats a per-node array or hash map.
    std::vector<std::pair<Digit, std::uint32_t>> children;
    std::uint32_t count = 0;           // IDs in this subtree
    std::uint32_t first_id = UINT32_MAX;  // first inserted ID index
  };

  std::uint32_t child(std::uint32_t node, Digit d) const;  // UINT32_MAX if none
  std::uint32_t walk(std::span<const Digit> suffix) const;  // UINT32_MAX if none
  void collect(std::uint32_t node, std::size_t depth, std::size_t max_count,
               std::vector<NodeId>& out) const;

  IdParams params_;
  std::vector<TrieNode> nodes_;   // nodes_[0] is the root
  std::vector<NodeId> ids_;
};

}  // namespace hcube
