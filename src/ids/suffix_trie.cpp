#include "ids/suffix_trie.h"

#include <algorithm>

namespace hcube {

SuffixTrie::SuffixTrie(IdParams params) : params_(params) {
  params_.validate();
  nodes_.emplace_back();  // root
}

std::uint32_t SuffixTrie::child(std::uint32_t node, Digit d) const {
  const auto& ch = nodes_[node].children;
  auto it = std::lower_bound(
      ch.begin(), ch.end(), d,
      [](const auto& pair, Digit key) { return pair.first < key; });
  if (it != ch.end() && it->first == d) return it->second;
  return UINT32_MAX;
}

bool SuffixTrie::insert(const NodeId& id) {
  HCUBE_CHECK(id.num_digits() == params_.num_digits);
  // First pass: detect exact duplicates without mutating.
  if (contains(id)) return false;

  const auto id_index = static_cast<std::uint32_t>(ids_.size());
  ids_.push_back(id);

  std::uint32_t cur = 0;
  auto bump = [&](std::uint32_t node) {
    ++nodes_[node].count;
    if (nodes_[node].first_id == UINT32_MAX) nodes_[node].first_id = id_index;
  };
  bump(0);
  for (std::size_t depth = 0; depth < params_.num_digits; ++depth) {
    const Digit dg = id.digit(depth);
    std::uint32_t next = child(cur, dg);
    if (next == UINT32_MAX) {
      next = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
      auto& ch = nodes_[cur].children;
      auto it = std::lower_bound(
          ch.begin(), ch.end(), dg,
          [](const auto& pair, Digit key) { return pair.first < key; });
      ch.insert(it, {dg, next});
    }
    bump(next);
    cur = next;
  }
  return true;
}

std::uint32_t SuffixTrie::walk(std::span<const Digit> suffix) const {
  std::uint32_t cur = 0;
  for (Digit dg : suffix) {
    cur = child(cur, dg);
    if (cur == UINT32_MAX) return UINT32_MAX;
  }
  return cur;
}

std::size_t SuffixTrie::count_with_suffix(
    std::span<const Digit> suffix) const {
  const std::uint32_t node = walk(suffix);
  return node == UINT32_MAX ? 0 : nodes_[node].count;
}

std::optional<NodeId> SuffixTrie::any_with_suffix(
    std::span<const Digit> suffix) const {
  const std::uint32_t node = walk(suffix);
  if (node == UINT32_MAX) return std::nullopt;
  return ids_[nodes_[node].first_id];
}

void SuffixTrie::collect(std::uint32_t node, std::size_t depth,
                         std::size_t max_count,
                         std::vector<NodeId>& out) const {
  if (out.size() >= max_count) return;  // early stop at the cap
  if (depth == params_.num_digits) {
    out.push_back(ids_[nodes_[node].first_id]);
    return;
  }
  for (const auto& [dg, next] : nodes_[node].children)
    collect(next, depth + 1, max_count, out);
}

std::vector<NodeId> SuffixTrie::some_with_suffix(std::span<const Digit> suffix,
                                                 std::size_t max_count) const {
  std::vector<NodeId> out;
  if (max_count == 0) return out;
  const std::uint32_t node = walk(suffix);
  if (node == UINT32_MAX) return out;
  out.reserve(std::min<std::size_t>(max_count, nodes_[node].count));
  collect(node, suffix.size(), max_count, out);
  return out;
}

std::vector<NodeId> SuffixTrie::all_with_suffix(
    std::span<const Digit> suffix) const {
  std::vector<NodeId> out;
  const std::uint32_t node = walk(suffix);
  if (node == UINT32_MAX) return out;
  out.reserve(nodes_[node].count);
  collect(node, suffix.size(), nodes_[node].count, out);
  return out;
}

void SuffixTrie::for_each_entry_candidate(
    const NodeId& x,
    const std::function<void(std::size_t, Digit, const NodeId&)>& fn) const {
  std::uint32_t cur = 0;
  for (std::size_t level = 0; level < params_.num_digits; ++level) {
    for (const auto& [dg, next] : nodes_[cur].children)
      fn(level, dg, ids_[nodes_[next].first_id]);
    const std::uint32_t next = child(cur, x.digit(level));
    if (next == UINT32_MAX) break;
    cur = next;
  }
}

std::size_t SuffixTrie::notify_suffix_len(const NodeId& x) const {
  HCUBE_CHECK_MSG(!contains(x), "notify_suffix_len: x must not be in V");
  std::uint32_t cur = 0;
  std::size_t k = 0;
  while (k < params_.num_digits) {
    const std::uint32_t next = child(cur, x.digit(k));
    if (next == UINT32_MAX) break;
    cur = next;
    ++k;
  }
  return k;
}

}  // namespace hcube
