#include "ids/sha1.h"

#include <bit>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

namespace hcube {
namespace {

std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

struct Sha1State {
  std::uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                        0xC3D2E1F0u};

  void process_block(const std::uint8_t* block) {
    std::uint32_t w[80];
    for (int t = 0; t < 16; ++t) {
      w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
             (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(block[t * 4 + 3]);
    }
    for (int t = 16; t < 80; ++t)
      w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int t = 0; t < 80; ++t) {
      std::uint32_t f, k;
      if (t < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999u;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
      e = d;
      d = c;
      c = rotl32(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
};

}  // namespace

Sha1Digest sha1(std::string_view data) {
  Sha1State state;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t len = data.size();

  std::size_t full_blocks = len / 64;
  for (std::size_t i = 0; i < full_blocks; ++i)
    state.process_block(bytes + i * 64);

  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  std::uint8_t tail[128] = {0};
  const std::size_t rem = len - full_blocks * 64;
  std::memcpy(tail, bytes + full_blocks * 64, rem);
  tail[rem] = 0x80;
  const std::size_t tail_len = (rem + 9 <= 64) ? 64 : 128;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i)
    tail[tail_len - 1 - i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  state.process_block(tail);
  if (tail_len == 128) state.process_block(tail + 64);

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<std::uint8_t>(state.h[i] >> 24);
    digest[i * 4 + 1] = static_cast<std::uint8_t>(state.h[i] >> 16);
    digest[i * 4 + 2] = static_cast<std::uint8_t>(state.h[i] >> 8);
    digest[i * 4 + 3] = static_cast<std::uint8_t>(state.h[i]);
  }
  return digest;
}

std::string sha1_hex(std::string_view data) {
  static const char* kHex = "0123456789abcdef";
  const Sha1Digest d = sha1(data);
  std::string out;
  out.reserve(40);
  for (std::uint8_t byte : d) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

NodeId id_from_name(std::string_view name, const IdParams& params) {
  params.validate();
  std::vector<Digit> digits;
  digits.reserve(params.num_digits);

  // Bit stream drawn from SHA-1(name), SHA-1(name || "#1"), ... as needed.
  std::string base_input(name);
  std::uint32_t counter = 0;
  Sha1Digest digest = sha1(base_input);
  std::size_t byte_pos = 0;
  int bit_pos = 0;

  const int bits_per_digit = std::bit_width(params.base - 1);
  auto next_bits = [&](int nbits) -> std::uint32_t {
    std::uint32_t v = 0;
    for (int i = 0; i < nbits; ++i) {
      if (byte_pos == digest.size()) {
        ++counter;
        digest = sha1(base_input + "#" + std::to_string(counter));
        byte_pos = 0;
        bit_pos = 0;
      }
      const int bit = (digest[byte_pos] >> (7 - bit_pos)) & 1;
      v = (v << 1) | static_cast<std::uint32_t>(bit);
      if (++bit_pos == 8) {
        bit_pos = 0;
        ++byte_pos;
      }
    }
    return v;
  };

  while (digits.size() < params.num_digits) {
    const std::uint32_t v = next_bits(bits_per_digit);
    if (v < params.base) digits.push_back(static_cast<Digit>(v));
    // else: rejection sampling for non-power-of-two bases
  }
  return NodeId(std::move(digits), params);
}

}  // namespace hcube
