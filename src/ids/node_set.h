// Dense-index set/map keyed by interned NodeIds.
//
// The protocol layers keep many small per-node collections (reverse
// neighbors, ping books, join waiters). std::unordered_* containers cost a
// heap node plus bucket array per collection and — worse — iterate in
// hash-bucket order, which leaks libstdc++ internals into event ordering
// wherever same-time callbacks are scheduled from a loop. These containers
// store elements in ONE contiguous vector in insertion order (iteration is
// deterministic and allocation-dense) with an open-addressed index of
// positions on the side, hashed on the interned ref (ids are canonical, so
// ref equality is id equality).
//
// Erase preserves insertion order (vector erase + index rebuild): these
// collections are bounded by O(d*b) in practice and erases are rare
// (leave/drop paths), so O(n) there buys determinism everywhere else.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ids/node_id.h"
#include "util/check.h"

namespace hcube {

namespace detail {

// Fibonacci hashing on the interned ref: cheap and well-spread for the
// dense, small ref values the interner hands out.
inline std::uint32_t ref_hash(IdTable::Ref r) { return r * 2654435769u; }

inline constexpr std::uint32_t kEmptySlot = 0xffffffffu;

}  // namespace detail

// Insertion-ordered set of NodeIds. O(1) expected insert/contains, O(n)
// erase (order-preserving). Iteration yields NodeId in insertion order.
class FlatNodeSet {
 public:
  FlatNodeSet() = default;

  bool insert(const NodeId& id) {
    HCUBE_DCHECK(id.is_valid());
    if (find_slot(id.ref()) != detail::kEmptySlot) return false;
    maybe_grow();
    place(id.ref(), static_cast<std::uint32_t>(items_.size()));
    items_.push_back(id);
    return true;
  }

  bool contains(const NodeId& id) const {
    return find_slot(id.ref()) != detail::kEmptySlot;
  }
  std::size_t count(const NodeId& id) const { return contains(id) ? 1 : 0; }

  bool erase(const NodeId& id) {
    const std::uint32_t pos = find_slot(id.ref());
    if (pos == detail::kEmptySlot) return false;
    items_.erase(items_.begin() + pos);
    rebuild_index();
    return true;
  }

  void clear() {
    items_.clear();
    slots_.clear();
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  // The elements as a contiguous span, insertion order.
  std::span<const NodeId> items() const { return items_; }

  std::size_t bytes_used() const {
    return items_.capacity() * sizeof(NodeId) +
           slots_.capacity() * sizeof(std::uint32_t);
  }

  // Puts the set into its at-rest representation: the element vector is
  // shrunk to exact fit and the open-addressed index is DROPPED — lookups
  // fall back to a linear scan over items_ until the next insert rebuilds
  // the index at its load-factor size. Offline builders call this once per
  // collection after the last insert: across an n = 10^6 build the
  // doubling slack plus the index are ~1000 bytes/node of memory that
  // mostly belongs to tables no later event ever mutates (bench_scale's
  // bytes/node ceiling charges it in full), while a table the protocol
  // does touch re-pays its index on first mutation. Scan and hash lookup
  // return identical positions, so nothing observable depends on which
  // representation a set is in.
  void shrink_to_fit() {
    items_.shrink_to_fit();
    slots_.clear();
    slots_.shrink_to_fit();
  }

 private:
  // Returns the position of `ref` in items_, or kEmptySlot.
  std::uint32_t find_slot(IdTable::Ref ref) const {
    if (slots_.empty()) {
      // Unindexed (empty, or at-rest after shrink_to_fit): linear scan.
      for (std::uint32_t p = 0; p < items_.size(); ++p)
        if (items_[p].ref() == ref) return p;
      return detail::kEmptySlot;
    }
    const std::uint32_t mask = static_cast<std::uint32_t>(slots_.size()) - 1;
    std::uint32_t i = detail::ref_hash(ref) & mask;
    while (slots_[i] != detail::kEmptySlot) {
      if (items_[slots_[i]].ref() == ref) return slots_[i];
      i = (i + 1) & mask;
    }
    return detail::kEmptySlot;
  }

  void place(IdTable::Ref ref, std::uint32_t pos) {
    const std::uint32_t mask = static_cast<std::uint32_t>(slots_.size()) - 1;
    std::uint32_t i = detail::ref_hash(ref) & mask;
    while (slots_[i] != detail::kEmptySlot) i = (i + 1) & mask;
    slots_[i] = pos;
  }

  void maybe_grow() {
    if (!slots_.empty() && (items_.size() + 1) * 10 < slots_.size() * 7)
      return;
    // Sizing loop (not just double): an at-rest set re-indexing on its
    // first post-shrink insert starts from empty with items_ full.
    std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
    while ((items_.size() + 1) * 10 >= cap * 7) cap *= 2;
    rebuild_index(cap);
  }

  void rebuild_index(std::size_t cap = 0) {
    if (cap == 0) cap = slots_.size();
    if (cap == 0) return;  // erase on an at-rest set: stay unindexed
    slots_.assign(cap, detail::kEmptySlot);
    for (std::uint32_t p = 0; p < items_.size(); ++p)
      place(items_[p].ref(), p);
  }

  std::vector<NodeId> items_;
  std::vector<std::uint32_t> slots_;  // power-of-two; position+sentinel
};

// Insertion-ordered map NodeId -> V. Iteration yields entries with public
// members {key, value}, so structured bindings `for (auto& [v, x] : map)`
// read exactly like the unordered_map call sites they replace.
template <typename V>
class FlatNodeMap {
 public:
  struct Entry {
    NodeId key;
    V value;
  };

  FlatNodeMap() = default;

  // Inserts or overwrites.
  void put(const NodeId& id, V value) {
    HCUBE_DCHECK(id.is_valid());
    const std::uint32_t pos = find_slot(id.ref());
    if (pos != detail::kEmptySlot) {
      items_[pos].value = std::move(value);
      return;
    }
    maybe_grow();
    place(id.ref(), static_cast<std::uint32_t>(items_.size()));
    items_.push_back(Entry{id, std::move(value)});
  }

  V* find(const NodeId& id) {
    const std::uint32_t pos = find_slot(id.ref());
    return pos == detail::kEmptySlot ? nullptr : &items_[pos].value;
  }
  const V* find(const NodeId& id) const {
    const std::uint32_t pos = find_slot(id.ref());
    return pos == detail::kEmptySlot ? nullptr : &items_[pos].value;
  }

  const V& at(const NodeId& id) const {
    const V* v = find(id);
    HCUBE_CHECK_MSG(v != nullptr, "FlatNodeMap::at: missing key");
    return *v;
  }

  bool contains(const NodeId& id) const {
    return find_slot(id.ref()) != detail::kEmptySlot;
  }
  std::size_t count(const NodeId& id) const { return contains(id) ? 1 : 0; }

  bool erase(const NodeId& id) {
    const std::uint32_t pos = find_slot(id.ref());
    if (pos == detail::kEmptySlot) return false;
    items_.erase(items_.begin() + pos);
    rebuild_index();
    return true;
  }

  void clear() {
    items_.clear();
    slots_.clear();
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  std::size_t bytes_used() const {
    return items_.capacity() * sizeof(Entry) +
           slots_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::uint32_t find_slot(IdTable::Ref ref) const {
    if (slots_.empty()) return detail::kEmptySlot;
    const std::uint32_t mask = static_cast<std::uint32_t>(slots_.size()) - 1;
    std::uint32_t i = detail::ref_hash(ref) & mask;
    while (slots_[i] != detail::kEmptySlot) {
      if (items_[slots_[i]].key.ref() == ref) return slots_[i];
      i = (i + 1) & mask;
    }
    return detail::kEmptySlot;
  }

  void place(IdTable::Ref ref, std::uint32_t pos) {
    const std::uint32_t mask = static_cast<std::uint32_t>(slots_.size()) - 1;
    std::uint32_t i = detail::ref_hash(ref) & mask;
    while (slots_[i] != detail::kEmptySlot) i = (i + 1) & mask;
    slots_[i] = pos;
  }

  void maybe_grow() {
    if (slots_.empty() || (items_.size() + 1) * 10 >= slots_.size() * 7)
      rebuild_index(slots_.empty() ? 8 : slots_.size() * 2);
  }

  void rebuild_index(std::size_t cap = 0) {
    if (cap == 0) cap = slots_.size();
    slots_.assign(cap, detail::kEmptySlot);
    for (std::uint32_t p = 0; p < items_.size(); ++p)
      place(items_[p].key.ref(), p);
  }

  std::vector<Entry> items_;
  std::vector<std::uint32_t> slots_;
};

}  // namespace hcube
