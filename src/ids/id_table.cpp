#include "ids/id_table.h"

#include <cstring>

namespace hcube {

IdTable& IdTable::instance() {
  // Internally synchronized: annotated writer lock, lock-free readers.
  static IdTable table HCUBE_INTERNALLY_SYNCHRONIZED;
  return table;
}

std::uint64_t IdTable::hash_digits(std::span<const Digit> digits) {
  // FNV-1a, the same function NodeId::hash() historically used.
  std::uint64_t h = 1469598103934665603ULL;
  for (Digit d : digits) {
    h ^= d;
    h *= 1099511628211ULL;
  }
  // Mix the length so "0" and "00" (same byte prefix) split cleanly.
  h ^= digits.size();
  h *= 1099511628211ULL;
  return h;
}

void IdTable::grow_index() {
  const std::size_t new_cap = slots_.empty() ? 1024 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_cap, Slot{});
  const std::size_t mask = new_cap - 1;
  for (const Slot& s : old) {
    if (s.ref == kInvalidRef) continue;
    const EntryLoc& loc = loc_of(s.ref);
    const std::uint64_t h =
        hash_digits(std::span<const Digit>(loc.ptr, loc.len));
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i].ref != kInvalidRef) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

IdTable::Ref IdTable::intern(std::span<const Digit> digits) {
  HCUBE_CHECK(!digits.empty() && digits.size() <= 255);
  MutexLock lock(mu_);
  // count_ is only written under mu_, so a relaxed read is exact here.
  const Ref count = count_.load(std::memory_order_relaxed);
  if (slots_.empty() || std::size_t{count} * 10 >= slots_.size() * 7)
    grow_index();

  const std::uint64_t h = hash_digits(digits);
  const std::uint8_t tag = static_cast<std::uint8_t>(h >> 56);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  for (;;) {
    Slot& s = slots_[i];
    if (s.ref == kInvalidRef) {
      // New string: append to the current slab (never straddling one).
      const std::uint32_t len = static_cast<std::uint32_t>(digits.size());
      if ((next_off_ & kBlockMask) + len > kBlockSize)
        next_off_ = (next_off_ | kBlockMask) + 1;  // pad to the next slab
      while ((next_off_ >> kBlockShift) >= blocks_.size())
        blocks_.push_back(std::make_unique<Digit[]>(kBlockSize));
      Digit* dst =
          blocks_[next_off_ >> kBlockShift].get() + (next_off_ & kBlockMask);
      std::memcpy(dst, digits.data(), len);
      next_off_ += len;

      // Publish the entry record, then the count that covers it. Levels
      // are allocated once and never touched again, so readers that
      // acquire `count_` (or the level pointer) see a complete record.
      const Ref ref = count;
      HCUBE_CHECK(ref < level_base(kLevels));
      const std::uint32_t level = level_of(ref);
      if (levels_[level].load(std::memory_order_relaxed) == nullptr) {
        level_storage_.push_back(
            std::make_unique<EntryLoc[]>(level_capacity(level)));
        level_bytes_ += level_capacity(level) * sizeof(EntryLoc);
        levels_[level].store(level_storage_.back().get(),
                             std::memory_order_release);
      }
      EntryLoc* entries = const_cast<EntryLoc*>(
          levels_[level].load(std::memory_order_relaxed));
      entries[ref - level_base(level)] =
          EntryLoc{dst, static_cast<std::uint8_t>(len)};
      count_.store(ref + 1, std::memory_order_release);

      s = Slot{ref, tag};
      return ref;
    }
    if (s.tag == tag && loc_of(s.ref).len == digits.size() &&
        std::memcmp(loc_of(s.ref).ptr, digits.data(), digits.size()) == 0)
      return s.ref;
    i = (i + 1) & mask;
  }
}

std::size_t IdTable::bytes_used() const {
  MutexLock lock(mu_);
  return blocks_.size() * kBlockSize + slots_.size() * sizeof(Slot) +
         level_bytes_ + blocks_.size() * sizeof(void*);
}

}  // namespace hcube
