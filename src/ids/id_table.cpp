#include "ids/id_table.h"

#include <algorithm>
#include <cstring>

namespace hcube {

IdTable& IdTable::instance() {
  static IdTable table;
  return table;
}

std::uint64_t IdTable::hash_digits(std::span<const Digit> digits) {
  // FNV-1a, the same function NodeId::hash() historically used.
  std::uint64_t h = 1469598103934665603ULL;
  for (Digit d : digits) {
    h ^= d;
    h *= 1099511628211ULL;
  }
  // Mix the length so "0" and "00" (same byte prefix) split cleanly.
  h ^= digits.size();
  h *= 1099511628211ULL;
  return h;
}

void IdTable::grow_index() {
  const std::size_t new_cap = slots_.empty() ? 1024 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_cap, Slot{});
  const std::size_t mask = new_cap - 1;
  for (const Slot& s : old) {
    if (s.ref == kInvalidRef) continue;
    const std::uint64_t h = hash_digits(
        std::span<const Digit>(digits_of(s.ref), locs_[s.ref].len));
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i].ref != kInvalidRef) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

IdTable::Ref IdTable::intern(std::span<const Digit> digits) {
  HCUBE_CHECK(!digits.empty() && digits.size() <= 255);
  if (slots_.empty() || locs_.size() * 10 >= slots_.size() * 7) grow_index();

  const std::uint64_t h = hash_digits(digits);
  const std::uint8_t tag = static_cast<std::uint8_t>(h >> 56);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  for (;;) {
    Slot& s = slots_[i];
    if (s.ref == kInvalidRef) {
      // New string: append to the current slab (never straddling one).
      const std::uint32_t len = static_cast<std::uint32_t>(digits.size());
      if ((next_off_ & kBlockMask) + len > kBlockSize)
        next_off_ = (next_off_ | kBlockMask) + 1;  // pad to the next slab
      while ((next_off_ >> kBlockShift) >= blocks_.size()) {
        blocks_.push_back(std::make_unique<Digit[]>(kBlockSize));
        block_ptrs_.push_back(blocks_.back().get());
      }
      const Ref ref = static_cast<Ref>(locs_.size());
      std::memcpy(blocks_[next_off_ >> kBlockShift].get() +
                      (next_off_ & kBlockMask),
                  digits.data(), len);
      locs_.push_back(EntryLoc{next_off_, static_cast<std::uint8_t>(len)});
      next_off_ += len;
      s = Slot{ref, tag};
      return ref;
    }
    if (s.tag == tag && locs_[s.ref].len == digits.size() &&
        std::memcmp(digits_of(s.ref), digits.data(), digits.size()) == 0)
      return s.ref;
    i = (i + 1) & mask;
  }
}

}  // namespace hcube
