// The ID interner: every distinct digit string lives exactly once in an
// arena of append-only slabs, and a NodeId is an 8-byte handle into it.
//
// Rationale (ROADMAP item 1): at paper scale the old 65-byte inline-array
// NodeId dominated table memory — d*b entries × 65 bytes before any
// bookkeeping. Interning makes the per-entry cost the handle (4-byte ref +
// length), turns equality into an integer compare (interning is canonical:
// equal digit strings always receive equal refs), and keeps digit reads a
// contiguous slab access for csuf scans.
//
// Properties the rest of the codebase relies on:
//   * Stability — slabs are never moved or freed, so a digit span obtained
//     from a handle stays valid for the life of the process. A node that
//     crashes, restarts and rejoins re-interns the same digit string and
//     gets the same ref back (pinned by id_table_test).
//   * Determinism — refs are assigned in first-intern order; no pointer
//     values or randomized hashing enter the data structure, so runs are
//     reproducible (the chaos digest tests depend on this).
//   * Single-threaded — the process-global table is not locked. The
//     simulator is single-threaded by design; sharding the table is the
//     sharded-simulator PR's problem, not this one's.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/check.h"

namespace hcube {

using Digit = std::uint8_t;

class IdTable {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kInvalidRef = 0xffffffffu;

  // The process-global instance every NodeId resolves against.
  static IdTable& instance();

  // Returns the canonical ref for this digit string, interning it on first
  // sight. Refs are DENSE: the k-th distinct string interned gets ref k,
  // so a per-overlay side table indexed by ref is an exact-fit array.
  // len must be in [1, 255].
  Ref intern(std::span<const Digit> digits);

  // Digits of an interned string. O(1): entry record + slab load.
  const Digit* digits_of(Ref ref) const {
    HCUBE_DCHECK(ref < locs_.size());
    const EntryLoc loc = locs_[ref];
    return block_ptrs_[loc.off >> kBlockShift] + (loc.off & kBlockMask);
  }

  std::uint8_t len_of(Ref ref) const {
    HCUBE_DCHECK(ref < locs_.size());
    return locs_[ref].len;
  }

  // Number of distinct strings interned == the exclusive upper bound of
  // all refs handed out so far.
  std::size_t size() const { return locs_.size(); }

  // Heap footprint (slabs + entry records + hash index), for bytes/node
  // accounting.
  std::size_t bytes_used() const {
    return blocks_.size() * kBlockSize + slots_.size() * sizeof(Slot) +
           locs_.capacity() * sizeof(EntryLoc) +
           blocks_.size() * sizeof(void*);
  }

  IdTable(const IdTable&) = delete;
  IdTable& operator=(const IdTable&) = delete;

 private:
  // 64 KiB of digits per slab: large enough that per-slab overhead is
  // noise, small enough that a test process interning a handful of IDs
  // doesn't pin megabytes.
  static constexpr std::uint32_t kBlockShift = 16;
  static constexpr std::uint32_t kBlockSize = 1u << kBlockShift;
  static constexpr std::uint32_t kBlockMask = kBlockSize - 1;

  // Where an interned string's digits live in the slabs.
  struct EntryLoc {
    std::uint32_t off;  // global digit offset (block | offset-in-block)
    std::uint8_t len;
  };

  // Open-addressed index slot: ref + a hash tag so most probe misses never
  // touch the slab.
  struct Slot {
    Ref ref = kInvalidRef;
    std::uint8_t tag = 0;
  };

  IdTable() = default;

  static std::uint64_t hash_digits(std::span<const Digit> digits);
  void grow_index();

  std::vector<std::unique_ptr<Digit[]>> blocks_;
  std::vector<const Digit*> block_ptrs_;  // blocks_[i].get(), flat for reads
  std::uint32_t next_off_ = 0;            // next free global digit offset
  std::vector<EntryLoc> locs_;            // ref -> digit location
  std::vector<Slot> slots_;               // power-of-two OA index
};

}  // namespace hcube
