// The ID interner: every distinct digit string lives exactly once in an
// arena of append-only slabs, and a NodeId is an 8-byte handle into it.
//
// Rationale (ROADMAP item 1): at paper scale the old 65-byte inline-array
// NodeId dominated table memory — d*b entries × 65 bytes before any
// bookkeeping. Interning makes the per-entry cost the handle (4-byte ref +
// length), turns equality into an integer compare (interning is canonical:
// equal digit strings always receive equal refs), and keeps digit reads a
// contiguous slab access for csuf scans.
//
// Properties the rest of the codebase relies on:
//   * Stability — slabs and entry records are never moved or freed, so a
//     digit span obtained from a handle stays valid for the life of the
//     process. A node that crashes, restarts and rejoins re-interns the
//     same digit string and gets the same ref back (pinned by
//     id_table_test).
//   * Determinism — refs are assigned in first-intern order; no pointer
//     values or randomized hashing enter the data structure, so runs are
//     reproducible (the chaos digest tests depend on this).
//   * Concurrent readers, single annotated writer — the process-global
//     table is shared by every shard of the sharded simulator (ROADMAP
//     item 1). intern() serializes writers behind `mu_` (clang
//     thread-safety annotations make the guard machine-checked); readers
//     (digits_of/len_of/size) are lock-free. Publication is safe because
//     nothing a reader touches is ever reallocated: digit slabs are
//     append-only, entry records live in power-of-two level arrays whose
//     pointers are published once with release ordering, and `count_` is
//     release-stored after the entry it covers is fully written. A ref
//     below size() therefore always resolves to a complete entry. (Refs
//     that travel between shards additionally ride the cross-shard
//     handoff barrier, which orders them after their publication.)
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/check.h"
#include "util/thread_safety.h"

namespace hcube {

using Digit = std::uint8_t;

class IdTable {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kInvalidRef = 0xffffffffu;

  // The process-global instance every NodeId resolves against.
  static IdTable& instance();

  // Returns the canonical ref for this digit string, interning it on first
  // sight. Refs are DENSE: the k-th distinct string interned gets ref k,
  // so a per-overlay side table indexed by ref is an exact-fit array.
  // len must be in [1, 255]. Thread-safe: writers serialize on mu_.
  Ref intern(std::span<const Digit> digits) HCUBE_EXCLUDES(mu_);

  // Digits of an interned string. O(1), lock-free: level pointer + entry
  // record + slab load.
  const Digit* digits_of(Ref ref) const { return loc_of(ref).ptr; }

  std::uint8_t len_of(Ref ref) const { return loc_of(ref).len; }

  // Number of distinct strings interned == the exclusive upper bound of
  // all refs handed out so far. Lock-free.
  std::size_t size() const { return count_.load(std::memory_order_acquire); }

  // Heap footprint (slabs + entry levels + hash index), for bytes/node
  // accounting. Takes the writer lock (cold path).
  std::size_t bytes_used() const HCUBE_EXCLUDES(mu_);

  IdTable(const IdTable&) = delete;
  IdTable& operator=(const IdTable&) = delete;

 private:
  // 64 KiB of digits per slab: large enough that per-slab overhead is
  // noise, small enough that a test process interning a handful of IDs
  // doesn't pin megabytes.
  static constexpr std::uint32_t kBlockShift = 16;
  static constexpr std::uint32_t kBlockSize = 1u << kBlockShift;
  static constexpr std::uint32_t kBlockMask = kBlockSize - 1;

  // Where an interned string's digits live. Records are grouped into
  // power-of-two "levels" (level 0 holds 2^kL0Shift entries, level l holds
  // 2^(kL0Shift+l)) so the table can grow without ever moving a record —
  // the property lock-free readers depend on. 22 levels cover every
  // possible ref.
  struct EntryLoc {
    const Digit* ptr;
    std::uint8_t len;
  };
  static constexpr std::uint32_t kL0Shift = 10;
  static constexpr std::uint32_t kLevels = 22;

  static std::uint32_t level_of(Ref ref) {
    return static_cast<std::uint32_t>(
               std::bit_width(ref + (1u << kL0Shift))) -
           kL0Shift - 1;
  }
  static std::uint32_t level_base(std::uint32_t level) {
    return (1u << (kL0Shift + level)) - (1u << kL0Shift);
  }
  static std::uint32_t level_capacity(std::uint32_t level) {
    return 1u << (kL0Shift + level);
  }

  const EntryLoc& loc_of(Ref ref) const {
    HCUBE_DCHECK(ref < size());
    const std::uint32_t level = level_of(ref);
    const EntryLoc* entries = levels_[level].load(std::memory_order_acquire);
    return entries[ref - level_base(level)];
  }

  // Open-addressed index slot: ref + a hash tag so most probe misses never
  // touch the slab.
  struct Slot {
    Ref ref = kInvalidRef;
    std::uint8_t tag = 0;
  };

  IdTable() = default;

  static std::uint64_t hash_digits(std::span<const Digit> digits);
  void grow_index() HCUBE_REQUIRES(mu_);

  // ---- reader-visible state: atomics, never reallocated ----
  std::atomic<const EntryLoc*> levels_[kLevels] = {};
  std::atomic<std::uint32_t> count_{0};

  // ---- writer-only state, serialized by mu_ ----
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Digit[]>> blocks_ HCUBE_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<EntryLoc[]>> level_storage_
      HCUBE_GUARDED_BY(mu_);
  std::uint32_t next_off_ HCUBE_GUARDED_BY(mu_) = 0;  // next free offset
  std::size_t level_bytes_ HCUBE_GUARDED_BY(mu_) = 0;
  std::vector<Slot> slots_ HCUBE_GUARDED_BY(mu_);  // power-of-two OA index
};

}  // namespace hcube
