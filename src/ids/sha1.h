// Minimal SHA-1 (FIPS 180-1).
//
// The paper notes that node and object IDs "are typically generated using a
// hash function, such as MD5 or SHA-1". We implement SHA-1 from scratch so
// applications can derive IDs from names (see ids/sha1 id_from_name) without
// external dependencies. This is for ID derivation, not for security.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "ids/node_id.h"

namespace hcube {

using Sha1Digest = std::array<std::uint8_t, 20>;

Sha1Digest sha1(std::string_view data);

std::string sha1_hex(std::string_view data);

// Derives a d-digit base-b ID from a name by drawing digits from the SHA-1
// bitstream (rejection-sampling digits >= b for non-power-of-two bases;
// the stream is extended by re-hashing with a counter when exhausted).
NodeId id_from_name(std::string_view name, const IdParams& params);

}  // namespace hcube
