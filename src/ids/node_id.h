// Node / object identifiers for the hypercube routing scheme.
//
// Following PRR and the paper, an ID is d digits of base b, and digits are
// counted from the RIGHT: digit(0) is the rightmost digit. Routing matches
// successively longer suffixes. Digits are stored least-significant first:
// digits()[i] == the paper's x[i].
//
// A NodeId is an 8-byte handle (ref + length) into the process-global
// IdTable interner; the digit bytes live once in the interner's slabs.
// Interning is canonical, so equality is a single integer compare and a
// NodeId is trivially copyable — message envelopes and table writes stay
// allocation-free, and a d*b neighbor table stores d*b*8 bytes of IDs
// instead of d*b*65 (see id_table.h for the layout and lifetime rules).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "ids/id_table.h"
#include "util/check.h"
#include "util/rng.h"

namespace hcube {

// Shape of the ID space. b and d are runtime parameters: the paper's
// experiments use b = 16 with d = 8 and d = 40.
struct IdParams {
  std::uint32_t base = 16;        // b, in [2, 256]
  std::uint32_t num_digits = 8;   // d, in [1, 64]

  void validate() const {
    HCUBE_CHECK_MSG(base >= 2 && base <= 256, "base must be in [2,256]");
    HCUBE_CHECK_MSG(num_digits >= 1 && num_digits <= 64,
                    "num_digits must be in [1,64]");  // <= NodeId::kMaxDigits
  }

  // log2(number of possible IDs); the ID space size b^d itself may exceed
  // any integer type (16^40 = 2^160).
  double log2_space_size() const {
    return static_cast<double>(num_digits) *
           std::log2(static_cast<double>(base));
  }

  bool operator==(const IdParams&) const = default;
};

// A suffix is a (possibly empty) sequence of digits, least-significant
// first: suffix[0] is the rightmost digit. "y has suffix s" means
// y.digit(i) == s[i] for all i < s.size().
using Suffix = std::vector<Digit>;

class NodeId {
 public:
  // Upper bound of IdParams::num_digits.
  static constexpr std::size_t kMaxDigits = 64;

  NodeId() = default;  // empty/invalid; use is_valid() to test

  NodeId(std::span<const Digit> digits_lsb_first, const IdParams& params) {
    HCUBE_CHECK(digits_lsb_first.size() == params.num_digits);
    for (std::size_t i = 0; i < digits_lsb_first.size(); ++i)
      HCUBE_CHECK(digits_lsb_first[i] < params.base);
    ref_ = IdTable::instance().intern(digits_lsb_first);
    len_ = static_cast<std::uint8_t>(digits_lsb_first.size());
  }

  NodeId(const std::vector<Digit>& digits_lsb_first, const IdParams& params)
      : NodeId(std::span<const Digit>(digits_lsb_first), params) {}

  bool is_valid() const { return len_ != 0; }
  std::size_t num_digits() const { return len_; }

  // The interner handle; dense, first-intern-order. Used as an array index
  // by the dense-index containers (FlatNodeSet/FlatNodeMap, Overlay's
  // registry).
  IdTable::Ref ref() const { return ref_; }

  // The paper's x[i]: the i-th digit counted from the right.
  Digit digit(std::size_t i) const {
    HCUBE_DCHECK(i < len_);
    return IdTable::instance().digits_of(ref_)[i];
  }

  // Digit bytes in the interner slab: stable for the life of the process.
  std::span<const Digit> digits() const {
    if (len_ == 0) return {};
    return {IdTable::instance().digits_of(ref_), len_};
  }

  // Length of the longest common suffix with another ID: the paper's
  // |csuf(x.ID, y.ID)|.
  std::size_t csuf_len(const NodeId& other) const;

  bool has_suffix(std::span<const Digit> suffix) const;

  // The suffix made of this ID's rightmost `len` digits.
  Suffix suffix_of_len(std::size_t len) const;

  // MSB-first textual form, e.g. "21233" for the paper's examples. Uses
  // 0-9a-z for bases up to 36, otherwise dot-separated decimal digits.
  std::string to_string(const IdParams& params) const;
  static std::optional<NodeId> from_string(const std::string& text,
                                           const IdParams& params);

  // Canonical interning: equal digit strings hold equal refs.
  bool operator==(const NodeId& o) const { return ref_ == o.ref_; }
  // Same ordering semantics as the historical std::vector storage:
  // lexicographic over the LSB-first digit sequences.
  std::strong_ordering operator<=>(const NodeId& o) const;

  std::size_t hash() const;

 private:
  IdTable::Ref ref_ = IdTable::kInvalidRef;
  std::uint8_t len_ = 0;
};

static_assert(sizeof(NodeId) == 8, "NodeId must stay a dense 8-byte handle");
static_assert(std::is_trivially_copyable_v<NodeId>);

// Uniform random ID.
NodeId random_id(Rng& rng, const IdParams& params);

// Generates distinct IDs (the paper requires unique node IDs).
class UniqueIdGenerator {
 public:
  explicit UniqueIdGenerator(IdParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {
    params_.validate();
  }

  NodeId next();
  // Registers an externally created ID so next() will never collide with it.
  // Returns false if the ID was already known.
  bool reserve(const NodeId& id);

  const IdParams& params() const { return params_; }

 private:
  IdParams params_;
  Rng rng_;
  // Interned refs are canonical, so uniqueness tracking is a set of ints.
  std::unordered_set<IdTable::Ref> used_;
};

struct NodeIdHash {
  std::size_t operator()(const NodeId& id) const { return id.hash(); }
};

std::string suffix_to_string(const Suffix& s, const IdParams& params);

}  // namespace hcube
