#include "ids/node_id.h"

#include <algorithm>
#include <sstream>

namespace hcube {
namespace {

char digit_to_char(Digit d) {
  return d < 10 ? static_cast<char>('0' + d) : static_cast<char>('a' + d - 10);
}

int char_to_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'z') return c - 'a' + 10;
  if (c >= 'A' && c <= 'Z') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::size_t NodeId::csuf_len(const NodeId& other) const {
  HCUBE_DCHECK(num_digits() == other.num_digits());
  if (ref_ == other.ref_) return num_digits();
  const auto a = digits();
  const auto b = other.digits();
  std::size_t k = 0;
  while (k < a.size() && a[k] == b[k]) ++k;
  return k;
}

bool NodeId::has_suffix(std::span<const Digit> suffix) const {
  const auto ds = digits();
  if (suffix.size() > ds.size()) return false;
  return std::equal(suffix.begin(), suffix.end(), ds.begin());
}

Suffix NodeId::suffix_of_len(std::size_t len) const {
  HCUBE_DCHECK(len <= num_digits());
  const auto ds = digits();
  return Suffix(ds.begin(), ds.begin() + static_cast<std::ptrdiff_t>(len));
}

std::strong_ordering NodeId::operator<=>(const NodeId& o) const {
  if (ref_ == o.ref_) return std::strong_ordering::equal;
  const auto a = digits();
  const auto b = o.digits();
  return std::lexicographical_compare_three_way(a.begin(), a.end(), b.begin(),
                                                b.end());
}

std::string NodeId::to_string(const IdParams& params) const {
  std::ostringstream os;
  const auto ds = digits();
  if (params.base <= 36) {
    for (auto it = ds.rbegin(); it != ds.rend(); ++it)
      os << digit_to_char(*it);
  } else {
    for (auto it = ds.rbegin(); it != ds.rend(); ++it) {
      if (it != ds.rbegin()) os << '.';
      os << static_cast<int>(*it);
    }
  }
  return os.str();
}

std::optional<NodeId> NodeId::from_string(const std::string& text,
                                          const IdParams& params) {
  std::vector<Digit> digits;
  if (params.base <= 36) {
    if (text.size() != params.num_digits) return std::nullopt;
    digits.reserve(text.size());
    // Text is MSB-first; store LSB-first.
    for (auto it = text.rbegin(); it != text.rend(); ++it) {
      int d = char_to_digit(*it);
      if (d < 0 || static_cast<std::uint32_t>(d) >= params.base)
        return std::nullopt;
      digits.push_back(static_cast<Digit>(d));
    }
  } else {
    std::istringstream is(text);
    std::string part;
    std::vector<Digit> msb_first;
    while (std::getline(is, part, '.')) {
      int v = -1;
      try {
        v = std::stoi(part);
      } catch (...) {
        return std::nullopt;
      }
      if (v < 0 || static_cast<std::uint32_t>(v) >= params.base)
        return std::nullopt;
      msb_first.push_back(static_cast<Digit>(v));
    }
    if (msb_first.size() != params.num_digits) return std::nullopt;
    digits.assign(msb_first.rbegin(), msb_first.rend());
  }
  return NodeId(std::move(digits), params);
}

std::size_t NodeId::hash() const {
  // FNV-1a over the digit bytes (the historical NodeId hash, kept so
  // digit-keyed hashing outside the dense-index containers is unchanged).
  std::size_t h = 1469598103934665603ULL;
  for (Digit d : digits()) {
    h ^= d;
    h *= 1099511628211ULL;
  }
  return h;
}

NodeId random_id(Rng& rng, const IdParams& params) {
  std::vector<Digit> digits(params.num_digits);
  for (auto& d : digits)
    d = static_cast<Digit>(rng.next_below(params.base));
  return NodeId(std::move(digits), params);
}

NodeId UniqueIdGenerator::next() {
  for (;;) {
    NodeId id = random_id(rng_, params_);
    if (used_.insert(id.ref()).second) return id;
  }
}

bool UniqueIdGenerator::reserve(const NodeId& id) {
  return used_.insert(id.ref()).second;
}

std::string suffix_to_string(const Suffix& s, const IdParams& params) {
  std::ostringstream os;
  if (s.empty()) return "(empty)";
  if (params.base <= 36) {
    for (auto it = s.rbegin(); it != s.rend(); ++it)
      os << (*it < 10 ? static_cast<char>('0' + *it)
                      : static_cast<char>('a' + *it - 10));
  } else {
    for (auto it = s.rbegin(); it != s.rend(); ++it) {
      if (it != s.rbegin()) os << '.';
      os << static_cast<int>(*it);
    }
  }
  return os.str();
}

}  // namespace hcube
