// Join-protocol messages (Figure 4 of the paper) and table snapshots.
//
// Every message type from the paper is represented, including the
// reverse-neighbor notifications (RvNghNotiMsg / RvNghNotiRlyMsg) whose
// send/receive the paper's pseudo-code elides "for clarity" but which the
// protocol depends on (InSysNotiMsg goes to reverse neighbors).
//
// Messages that carry a neighbor table carry a TableSnapshot: the list of
// non-null entries at the sender at send time. Section 6.2's size
// reductions (partial levels, bit-vector-pruned replies) shrink what the
// sender includes; wire_size_bytes() models the resulting message sizes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ids/node_id.h"
#include "util/bitvec.h"

namespace hcube {

// State a node records for each stored neighbor: S = the neighbor is known
// to be in status in_system (an S-node), T = not yet.
enum class NeighborState : std::uint8_t { kT, kS };

// One non-null neighbor-table entry as carried in a message.
struct SnapshotEntry {
  std::uint8_t level;   // i
  std::uint8_t digit;   // j
  NodeId node;          // the (i, j)-neighbor
  NeighborState state;  // sender's recorded state for it
};

struct TableSnapshot {
  std::vector<SnapshotEntry> entries;

  void add(std::uint8_t level, std::uint8_t digit, NodeId node,
           NeighborState state) {
    entries.push_back({level, digit, std::move(node), state});
  }
  std::size_t size() const { return entries.size(); }
};

// ---- Message bodies (names follow Figure 4) ----

struct CpRstMsg {};  // request a copy of the receiver's table

struct CpRlyMsg {  // reply with the table
  TableSnapshot table;
};

struct JoinWaitMsg {};  // "x is waiting to be stored in your table"

struct JoinWaitRlyMsg {
  bool positive;  // r in the paper: positive = receiver stored the sender
  NodeId u;       // on negative: the node already occupying the entry
  TableSnapshot table;
};

struct JoinNotiMsg {
  TableSnapshot table;  // x.table (possibly only levels noti_level..k, §6.2)
  // x's notification level; the §6.2 bit-vector reply includes all entries
  // at levels >= this unconditionally (x must *discover* nodes there, not
  // just fill holes).
  std::uint8_t sender_noti_level = 0;
  // §6.2 enhancement: bit vector of x's filled entries ('1' = filled), so
  // the receiver can prune its reply. Not sent in the baseline policy.
  std::optional<BitVec> filled;
};

struct JoinNotiRlyMsg {
  bool positive;        // r: receiver stores (or already stored) the sender
  TableSnapshot table;  // y.table (possibly pruned by the bit vector)
  bool flag;            // f: triggers SpeNotiMsg (see Figure 10)
};

struct InSysNotiMsg {};  // "I have become an S-node"

struct SpeNotiMsg {  // inform receiver of the existence of y
  NodeId x;  // initial sender (collects the final reply)
  NodeId y;  // the node being announced
};

struct SpeNotiRlyMsg {
  NodeId x;
  NodeId y;
};

struct RvNghNotiMsg {  // "I stored you in my table" (sender is a reverse
                       // neighbor of the receiver)
  NeighborState recorded_state;  // s: state the sender recorded
};

struct RvNghNotiRlyMsg {
  NeighborState actual_state;  // S iff the replier is in status in_system
};

// ---- Leave-protocol messages (this library's extension; the paper defers
// ---- the leave protocol to future work, see Section 7) ----

struct LeaveMsg {  // "I am leaving; here are replacement candidates"
  // The leaver's level-(k+1) table row, where k = |csuf(leaver, receiver)|:
  // by consistency of the leaver's table this row contains a representative
  // of every non-empty sub-class of the suffix class the receiver's entry
  // covers, so the receiver can repair locally (or correctly null the
  // entry when the leaver was the last member).
  TableSnapshot candidates;
};

struct LeaveRlyMsg {};  // ack: receiver repaired (or didn't need to)

struct NghDropMsg {};  // "forget me as your reverse neighbor"

// ---- Failure-recovery messages (extension; the paper defers failure
// ---- recovery alongside leaving, Section 7) ----

struct PingMsg {};  // liveness probe
struct PongMsg {};

struct RepairQueryMsg {  // "what does your (level, digit) entry hold?"
  std::uint8_t level;
  std::uint8_t digit;
};

struct RepairRlyMsg {
  std::uint8_t level;
  std::uint8_t digit;
  NodeId candidate;  // invalid = no candidate (entry empty or not shared)
};

// Push-phase re-announcement: after a repair round clears every entry that
// pointed at a dead node, each survivor pushes its table to its neighbors
// and reverse neighbors; receivers fill empty entries (the same fill rule
// as the join protocol's Check_Ngh_Table). This rediscovers class members
// that lost their only inbound pointer when a crashed node died. No reply.
struct AnnounceMsg {
  TableSnapshot table;
};

// ---- Reliable-delivery message (transport-internal; see
// ---- net/reliable_transport.h) ----

struct RelAckMsg {  // acknowledges receipt of the message numbered acked_seq
  std::uint32_t acked_seq = 0;
};

using MessageBody =
    std::variant<CpRstMsg, CpRlyMsg, JoinWaitMsg, JoinWaitRlyMsg, JoinNotiMsg,
                 JoinNotiRlyMsg, InSysNotiMsg, SpeNotiMsg, SpeNotiRlyMsg,
                 RvNghNotiMsg, RvNghNotiRlyMsg, LeaveMsg, LeaveRlyMsg,
                 NghDropMsg, PingMsg, PongMsg, RepairQueryMsg, RepairRlyMsg,
                 AnnounceMsg, RelAckMsg>;

// Envelope: in a deployment the sender's (ID, IP) rides in every message;
// here the sender ID is explicit and the "IP address" is the simulator host
// id carried by the transport. Two envelope words ride in the wire header's
// reserved bytes:
//   rel_seq — per-(sender host, receiver host) sequence number stamped by
//             ReliableTransport (0 = untracked, e.g. on a plain transport);
//   gen     — the sender's join-attempt generation. Requests carry the
//             sender's current generation; replies echo the request's, so a
//             joiner that aborted and restarted its join (join-stall
//             watchdog) can reject replies addressed to the dead attempt.
struct Message {
  NodeId sender;
  MessageBody body;
  std::uint32_t rel_seq = 0;
  std::uint32_t gen = 0;
};

enum class MessageType : std::uint8_t {
  kCpRst,
  kCpRly,
  kJoinWait,
  kJoinWaitRly,
  kJoinNoti,
  kJoinNotiRly,
  kInSysNoti,
  kSpeNoti,
  kSpeNotiRly,
  kRvNghNoti,
  kRvNghNotiRly,
  kLeave,
  kLeaveRly,
  kNghDrop,
  kPing,
  kPong,
  kRepairQuery,
  kRepairRly,
  kAnnounce,
  kRelAck,
};
inline constexpr std::size_t kNumMessageTypes = 20;

MessageType type_of(const MessageBody& body);
const char* type_name(MessageType t);

// Is this one of the three "big" message types of §5.2 (those that may carry
// a table)? Their replies are big too; the paper's analysis counts requests
// only since replies are 1:1.
bool is_big_request(MessageType t);

// Does a message of this type answer (or forward on behalf of) a specific
// incoming message, and therefore echo that message's generation tag rather
// than carry the sender's own? True for the six join replies, Pong,
// LeaveRlyMsg and RepairRlyMsg — and for SpeNotiMsg, which is originated and
// forwarded while handling a message of the announced attempt, so the echo
// carries the originator's generation down the chain to its reply.
bool echoes_request_gen(MessageType t);

// ---- Wire-size model ----
//
// header: 40 bytes (IP + UDP + message type + join-protocol header)
// node id: ceil(d * ceil(log2 b) / 8) bytes
// node reference (id + IPv4:port): id bytes + 6
// table snapshot: d*b-bit presence bitmap + one node reference + state byte
//                 per present entry
// bit vector (when present): d*b bits

std::size_t id_wire_bytes(const IdParams& params);
std::size_t node_ref_wire_bytes(const IdParams& params);
std::size_t snapshot_wire_bytes(const TableSnapshot& snap,
                                const IdParams& params);
std::size_t wire_size_bytes(const MessageBody& body, const IdParams& params);
std::size_t wire_size_bytes(const Message& msg, const IdParams& params);

}  // namespace hcube
