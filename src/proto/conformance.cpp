#include "proto/conformance.h"

namespace hcube {

const char* to_string(NodeStatus s) {
  switch (s) {
    case NodeStatus::kCopying: return "copying";
    case NodeStatus::kWaiting: return "waiting";
    case NodeStatus::kNotifying: return "notifying";
    case NodeStatus::kInSystem: return "in_system";
    case NodeStatus::kLeaving: return "leaving";
    case NodeStatus::kDeparted: return "departed";
    case NodeStatus::kCrashed: return "crashed";
  }
  return "?";
}

}  // namespace hcube
