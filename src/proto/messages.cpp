#include "proto/messages.h"

#include <bit>

#include "proto/conformance.h"
#include "util/check.h"

namespace hcube {
namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

constexpr std::size_t kHeaderBytes = 40;

}  // namespace

MessageType type_of(const MessageBody& body) {
  return std::visit(
      Overloaded{
          [](const CpRstMsg&) { return MessageType::kCpRst; },
          [](const CpRlyMsg&) { return MessageType::kCpRly; },
          [](const JoinWaitMsg&) { return MessageType::kJoinWait; },
          [](const JoinWaitRlyMsg&) { return MessageType::kJoinWaitRly; },
          [](const JoinNotiMsg&) { return MessageType::kJoinNoti; },
          [](const JoinNotiRlyMsg&) { return MessageType::kJoinNotiRly; },
          [](const InSysNotiMsg&) { return MessageType::kInSysNoti; },
          [](const SpeNotiMsg&) { return MessageType::kSpeNoti; },
          [](const SpeNotiRlyMsg&) { return MessageType::kSpeNotiRly; },
          [](const RvNghNotiMsg&) { return MessageType::kRvNghNoti; },
          [](const RvNghNotiRlyMsg&) { return MessageType::kRvNghNotiRly; },
          [](const LeaveMsg&) { return MessageType::kLeave; },
          [](const LeaveRlyMsg&) { return MessageType::kLeaveRly; },
          [](const NghDropMsg&) { return MessageType::kNghDrop; },
          [](const PingMsg&) { return MessageType::kPing; },
          [](const PongMsg&) { return MessageType::kPong; },
          [](const RepairQueryMsg&) { return MessageType::kRepairQuery; },
          [](const RepairRlyMsg&) { return MessageType::kRepairRly; },
          [](const AnnounceMsg&) { return MessageType::kAnnounce; },
          [](const RelAckMsg&) { return MessageType::kRelAck; },
      },
      body);
}

const char* type_name(MessageType t) {
  switch (t) {
    case MessageType::kCpRst: return "CpRstMsg";
    case MessageType::kCpRly: return "CpRlyMsg";
    case MessageType::kJoinWait: return "JoinWaitMsg";
    case MessageType::kJoinWaitRly: return "JoinWaitRlyMsg";
    case MessageType::kJoinNoti: return "JoinNotiMsg";
    case MessageType::kJoinNotiRly: return "JoinNotiRlyMsg";
    case MessageType::kInSysNoti: return "InSysNotiMsg";
    case MessageType::kSpeNoti: return "SpeNotiMsg";
    case MessageType::kSpeNotiRly: return "SpeNotiRlyMsg";
    case MessageType::kRvNghNoti: return "RvNghNotiMsg";
    case MessageType::kRvNghNotiRly: return "RvNghNotiRlyMsg";
    case MessageType::kLeave: return "LeaveMsg";
    case MessageType::kLeaveRly: return "LeaveRlyMsg";
    case MessageType::kNghDrop: return "NghDropMsg";
    case MessageType::kPing: return "PingMsg";
    case MessageType::kPong: return "PongMsg";
    case MessageType::kRepairQuery: return "RepairQueryMsg";
    case MessageType::kRepairRly: return "RepairRlyMsg";
    case MessageType::kAnnounce: return "AnnounceMsg";
    case MessageType::kRelAck: return "RelAckMsg";
  }
  return "UnknownMsg";
}

// Both predicates are lookups into the conformance registry
// (proto/conformance.h): the registry is the single source of truth for a
// message type's handling contract, and its static_asserts keep the table
// in enumerator order with exactly kNumMessageTypes entries.
bool is_big_request(MessageType t) { return conformance_of(t).big_request; }

bool echoes_request_gen(MessageType t) { return conformance_of(t).echoes_gen; }

std::size_t id_wire_bytes(const IdParams& params) {
  const unsigned bits_per_digit = std::bit_width(params.base - 1);
  return (params.num_digits * bits_per_digit + 7) / 8;
}

std::size_t node_ref_wire_bytes(const IdParams& params) {
  return id_wire_bytes(params) + 6;  // IPv4 address + port
}

std::size_t snapshot_wire_bytes(const TableSnapshot& snap,
                                const IdParams& params) {
  const std::size_t bitmap_bytes =
      (static_cast<std::size_t>(params.num_digits) * params.base + 7) / 8;
  return bitmap_bytes + snap.size() * (node_ref_wire_bytes(params) + 1);
}

std::size_t wire_size_bytes(const Message& msg, const IdParams& params) {
  return wire_size_bytes(msg.body, params);
}

std::size_t wire_size_bytes(const MessageBody& body, const IdParams& params) {
  const std::size_t ref = node_ref_wire_bytes(params);
  std::size_t size = kHeaderBytes + ref;  // envelope carries sender ref
  size += std::visit(
      Overloaded{
          [&](const CpRstMsg&) -> std::size_t { return 0; },
          [&](const CpRlyMsg& m) {
            return snapshot_wire_bytes(m.table, params);
          },
          [&](const JoinWaitMsg&) -> std::size_t { return 0; },
          [&](const JoinWaitRlyMsg& m) {
            return 1 + ref + snapshot_wire_bytes(m.table, params);
          },
          [&](const JoinNotiMsg& m) {
            return snapshot_wire_bytes(m.table, params) +
                   (m.filled ? m.filled->size_bytes() : 0);
          },
          [&](const JoinNotiRlyMsg& m) {
            return std::size_t{2} + snapshot_wire_bytes(m.table, params);
          },
          [&](const InSysNotiMsg&) -> std::size_t { return 0; },
          [&](const SpeNotiMsg&) -> std::size_t { return 2 * ref; },
          [&](const SpeNotiRlyMsg&) -> std::size_t { return 2 * ref; },
          [&](const RvNghNotiMsg&) -> std::size_t { return 1; },
          [&](const RvNghNotiRlyMsg&) -> std::size_t { return 1; },
          [&](const LeaveMsg& m) {
            return snapshot_wire_bytes(m.candidates, params);
          },
          [&](const LeaveRlyMsg&) -> std::size_t { return 0; },
          [&](const NghDropMsg&) -> std::size_t { return 0; },
          [&](const PingMsg&) -> std::size_t { return 0; },
          [&](const PongMsg&) -> std::size_t { return 0; },
          [&](const RepairQueryMsg&) -> std::size_t { return 2; },
          [&](const RepairRlyMsg& m) -> std::size_t {
            return 3 + (m.candidate.is_valid() ? ref : 0);
          },
          [&](const AnnounceMsg& m) {
            return snapshot_wire_bytes(m.table, params);
          },
          [&](const RelAckMsg&) -> std::size_t { return 4; },
      },
      body);
  return size;
}

}  // namespace hcube
