#include "proto/codec.h"

#include <bit>
#include <cstring>

#include "util/check.h"

namespace hcube {
namespace {

constexpr std::uint8_t kMagic[4] = {'H', 'C', 'U', 'B'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kOffType = 5;
constexpr std::size_t kOffAux = 6;
constexpr std::size_t kOffFlags = 7;
// Envelope words in the (formerly all-reserved) header tail.
constexpr std::size_t kOffRelSeq = 8;
constexpr std::size_t kOffGen = 12;
constexpr std::uint8_t kFlagHasBitvec = 0x01;

std::uint32_t read_u32_at(const std::vector<std::uint8_t>& bytes,
                          std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(bytes[off + i]) << (8 * i);
  return v;
}

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

  // Packs `nbits` of v at the current bit cursor (little-endian bit order).
  void bits(std::uint32_t v, unsigned nbits) {
    for (unsigned i = 0; i < nbits; ++i) {
      if (bit_pos_ == 0) out_.push_back(0);
      if ((v >> i) & 1) out_.back() |= static_cast<std::uint8_t>(1 << bit_pos_);
      bit_pos_ = (bit_pos_ + 1) % 8;
    }
  }
  void align_byte() { bit_pos_ = 0; }

 private:
  std::vector<std::uint8_t>& out_;
  unsigned bit_pos_ = 0;
};

class Reader {
 public:
  Reader(const std::vector<std::uint8_t>& in, std::size_t pos)
      : in_(in), pos_(pos) {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }

  std::uint8_t u8() {
    if (pos_ >= in_.size()) return fail_u8();
    return in_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  void skip(std::size_t n) {
    if (pos_ + n > in_.size()) {
      ok_ = false;
      pos_ = in_.size();
    } else {
      pos_ += n;
    }
  }

  std::uint32_t bits(unsigned nbits) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < nbits; ++i) {
      if (bit_pos_ == 0) {
        if (pos_ >= in_.size()) {
          ok_ = false;
          return 0;
        }
        cur_ = in_[pos_++];
      }
      v |= static_cast<std::uint32_t>((cur_ >> bit_pos_) & 1) << i;
      bit_pos_ = (bit_pos_ + 1) % 8;
    }
    return v;
  }
  void align_byte() { bit_pos_ = 0; }

 private:
  std::uint8_t fail_u8() {
    ok_ = false;
    return 0;
  }
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_;
  bool ok_ = true;
  unsigned bit_pos_ = 0;
  std::uint8_t cur_ = 0;
};

unsigned bits_per_digit(const IdParams& params) {
  return static_cast<unsigned>(std::bit_width(params.base - 1));
}

void write_node_ref(Writer& w, const NodeId& id, const IdParams& params,
                    const WireAddress& addr) {
  HCUBE_CHECK_MSG(id.is_valid(), "cannot encode an invalid node ID");
  const unsigned bpd = bits_per_digit(params);
  for (std::size_t i = 0; i < params.num_digits; ++i) w.bits(id.digit(i), bpd);
  w.align_byte();
  // Pad to the model's ceil(d * bpd / 8): Writer::bits already emitted
  // exactly that many bytes.
  w.u32(addr.ipv4);
  w.u16(addr.port);
}

std::optional<NodeId> read_node_ref(Reader& r, const IdParams& params) {
  const unsigned bpd = bits_per_digit(params);
  std::vector<Digit> digits(params.num_digits);
  for (auto& d : digits) {
    const std::uint32_t v = r.bits(bpd);
    if (!r.ok() || v >= params.base) return std::nullopt;
    d = static_cast<Digit>(v);
  }
  r.align_byte();
  r.u32();  // address (opaque here)
  r.u16();  // port
  if (!r.ok()) return std::nullopt;
  return NodeId(std::move(digits), params);
}

void write_snapshot(Writer& w, const TableSnapshot& snap,
                    const IdParams& params) {
  // Presence bitmap, level-major.
  const std::size_t nbits =
      static_cast<std::size_t>(params.num_digits) * params.base;
  BitVec bitmap(nbits);
  for (const SnapshotEntry& e : snap.entries) {
    HCUBE_CHECK(e.level < params.num_digits && e.digit < params.base);
    const std::size_t bit =
        static_cast<std::size_t>(e.level) * params.base + e.digit;
    HCUBE_CHECK_MSG(!bitmap.get(bit), "duplicate snapshot entry");
    bitmap.set(bit);
  }
  for (std::size_t i = 0; i < nbits; ++i) w.bits(bitmap.get(i) ? 1 : 0, 1);
  w.align_byte();
  // Entries in bitmap order.
  std::vector<const SnapshotEntry*> ordered(nbits, nullptr);
  for (const SnapshotEntry& e : snap.entries)
    ordered[static_cast<std::size_t>(e.level) * params.base + e.digit] = &e;
  for (const SnapshotEntry* e : ordered) {
    if (e == nullptr) continue;
    write_node_ref(w, e->node, params, {});
    w.u8(e->state == NeighborState::kS ? 1 : 0);
  }
}

std::optional<TableSnapshot> read_snapshot(Reader& r, const IdParams& params) {
  const std::size_t nbits =
      static_cast<std::size_t>(params.num_digits) * params.base;
  BitVec bitmap(nbits);
  for (std::size_t i = 0; i < nbits; ++i)
    if (r.bits(1)) bitmap.set(i);
  r.align_byte();
  if (!r.ok()) return std::nullopt;

  TableSnapshot snap;
  for (std::size_t i = 0; i < nbits; ++i) {
    if (!bitmap.get(i)) continue;
    auto node = read_node_ref(r, params);
    const std::uint8_t state = r.u8();
    if (!node || !r.ok() || state > 1) return std::nullopt;
    const auto level = static_cast<std::uint8_t>(i / params.base);
    const auto digit = static_cast<std::uint8_t>(i % params.base);
    // The entry must respect the bitmap slot's digit.
    if (node->digit(level) != digit) return std::nullopt;
    snap.add(level, digit, std::move(*node),
             state ? NeighborState::kS : NeighborState::kT);
  }
  return snap;
}

void write_bitvec(Writer& w, const BitVec& bits) {
  for (std::size_t i = 0; i < bits.size(); ++i) w.bits(bits.get(i) ? 1 : 0, 1);
  w.align_byte();
}

BitVec read_bitvec(Reader& r, std::size_t nbits) {
  BitVec bits(nbits);
  for (std::size_t i = 0; i < nbits; ++i)
    if (r.bits(1)) bits.set(i);
  r.align_byte();
  return bits;
}

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& msg,
                                         const IdParams& params,
                                         const WireAddress& sender_addr) {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size_bytes(msg, params));
  Writer w(out);

  // Header.
  for (std::uint8_t c : kMagic) w.u8(c);
  w.u8(kVersion);
  const MessageType type = type_of(msg.body);
  w.u8(static_cast<std::uint8_t>(type));
  std::uint8_t aux = 0, flags = 0;
  if (const auto* jn = std::get_if<JoinNotiMsg>(&msg.body)) {
    aux = jn->sender_noti_level;
    if (jn->filled.has_value()) flags |= kFlagHasBitvec;
  }
  w.u8(aux);
  w.u8(flags);
  w.u32(msg.rel_seq);
  w.u32(msg.gen);
  w.zeros(kHeaderBytes - 16);

  write_node_ref(w, msg.sender, params, sender_addr);

  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, CpRlyMsg>) {
          write_snapshot(w, body.table, params);
        } else if constexpr (std::is_same_v<T, JoinWaitRlyMsg>) {
          w.u8(body.positive ? 1 : 0);
          write_node_ref(w, body.u, params, {});
          write_snapshot(w, body.table, params);
        } else if constexpr (std::is_same_v<T, JoinNotiMsg>) {
          write_snapshot(w, body.table, params);
          if (body.filled.has_value()) write_bitvec(w, *body.filled);
        } else if constexpr (std::is_same_v<T, JoinNotiRlyMsg>) {
          w.u8(body.positive ? 1 : 0);
          w.u8(body.flag ? 1 : 0);
          write_snapshot(w, body.table, params);
        } else if constexpr (std::is_same_v<T, SpeNotiMsg> ||
                             std::is_same_v<T, SpeNotiRlyMsg>) {
          write_node_ref(w, body.x, params, {});
          write_node_ref(w, body.y, params, {});
        } else if constexpr (std::is_same_v<T, RvNghNotiMsg>) {
          w.u8(body.recorded_state == NeighborState::kS ? 1 : 0);
        } else if constexpr (std::is_same_v<T, RvNghNotiRlyMsg>) {
          w.u8(body.actual_state == NeighborState::kS ? 1 : 0);
        } else if constexpr (std::is_same_v<T, LeaveMsg>) {
          write_snapshot(w, body.candidates, params);
        } else if constexpr (std::is_same_v<T, RepairQueryMsg>) {
          w.u8(body.level);
          w.u8(body.digit);
        } else if constexpr (std::is_same_v<T, RepairRlyMsg>) {
          w.u8(body.level);
          w.u8(body.digit);
          w.u8(body.candidate.is_valid() ? 1 : 0);
          if (body.candidate.is_valid())
            write_node_ref(w, body.candidate, params, {});
        } else if constexpr (std::is_same_v<T, AnnounceMsg>) {
          write_snapshot(w, body.table, params);
        } else if constexpr (std::is_same_v<T, RelAckMsg>) {
          w.u32(body.acked_seq);
        }
        // CpRstMsg, JoinWaitMsg, InSysNotiMsg: empty bodies.
      },
      msg.body);

  HCUBE_CHECK_MSG(out.size() == wire_size_bytes(msg, params),
                  "codec and size model disagree");
  return out;
}

std::optional<Message> decode_message(const std::vector<std::uint8_t>& bytes,
                                      const IdParams& params) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) return std::nullopt;
  if (bytes[4] != kVersion) return std::nullopt;
  const std::uint8_t type = bytes[kOffType];
  if (type >= kNumMessageTypes) return std::nullopt;
  const std::uint8_t aux = bytes[kOffAux];
  const std::uint8_t flags = bytes[kOffFlags];

  Reader r(bytes, kHeaderBytes);
  auto sender = read_node_ref(r, params);
  if (!sender) return std::nullopt;

  Message msg;
  msg.sender = std::move(*sender);
  msg.rel_seq = read_u32_at(bytes, kOffRelSeq);
  msg.gen = read_u32_at(bytes, kOffGen);

  switch (static_cast<MessageType>(type)) {
    case MessageType::kCpRst:
      msg.body = CpRstMsg{};
      break;
    case MessageType::kCpRly: {
      auto snap = read_snapshot(r, params);
      if (!snap) return std::nullopt;
      msg.body = CpRlyMsg{std::move(*snap)};
      break;
    }
    case MessageType::kJoinWait:
      msg.body = JoinWaitMsg{};
      break;
    case MessageType::kJoinWaitRly: {
      const std::uint8_t positive = r.u8();
      auto u = read_node_ref(r, params);
      auto snap = read_snapshot(r, params);
      if (!r.ok() || positive > 1 || !u || !snap) return std::nullopt;
      msg.body = JoinWaitRlyMsg{positive != 0, std::move(*u),
                                std::move(*snap)};
      break;
    }
    case MessageType::kJoinNoti: {
      auto snap = read_snapshot(r, params);
      if (!snap) return std::nullopt;
      JoinNotiMsg body;
      body.table = std::move(*snap);
      body.sender_noti_level = aux;
      if (flags & kFlagHasBitvec) {
        body.filled = read_bitvec(
            r, static_cast<std::size_t>(params.num_digits) * params.base);
        if (!r.ok()) return std::nullopt;
      }
      msg.body = std::move(body);
      break;
    }
    case MessageType::kJoinNotiRly: {
      const std::uint8_t positive = r.u8();
      const std::uint8_t flag = r.u8();
      auto snap = read_snapshot(r, params);
      if (!r.ok() || positive > 1 || flag > 1 || !snap) return std::nullopt;
      msg.body = JoinNotiRlyMsg{positive != 0, std::move(*snap), flag != 0};
      break;
    }
    case MessageType::kInSysNoti:
      msg.body = InSysNotiMsg{};
      break;
    case MessageType::kSpeNoti:
    case MessageType::kSpeNotiRly: {
      auto x = read_node_ref(r, params);
      auto y = read_node_ref(r, params);
      if (!x || !y) return std::nullopt;
      if (static_cast<MessageType>(type) == MessageType::kSpeNoti)
        msg.body = SpeNotiMsg{std::move(*x), std::move(*y)};
      else
        msg.body = SpeNotiRlyMsg{std::move(*x), std::move(*y)};
      break;
    }
    case MessageType::kRvNghNoti: {
      const std::uint8_t s = r.u8();
      if (!r.ok() || s > 1) return std::nullopt;
      msg.body = RvNghNotiMsg{s ? NeighborState::kS : NeighborState::kT};
      break;
    }
    case MessageType::kRvNghNotiRly: {
      const std::uint8_t s = r.u8();
      if (!r.ok() || s > 1) return std::nullopt;
      msg.body = RvNghNotiRlyMsg{s ? NeighborState::kS : NeighborState::kT};
      break;
    }
    case MessageType::kLeave: {
      auto snap = read_snapshot(r, params);
      if (!snap) return std::nullopt;
      msg.body = LeaveMsg{std::move(*snap)};
      break;
    }
    case MessageType::kLeaveRly:
      msg.body = LeaveRlyMsg{};
      break;
    case MessageType::kNghDrop:
      msg.body = NghDropMsg{};
      break;
    case MessageType::kPing:
      msg.body = PingMsg{};
      break;
    case MessageType::kPong:
      msg.body = PongMsg{};
      break;
    case MessageType::kRepairQuery: {
      const std::uint8_t level = r.u8();
      const std::uint8_t digit = r.u8();
      if (!r.ok() || level >= params.num_digits || digit >= params.base)
        return std::nullopt;
      msg.body = RepairQueryMsg{level, digit};
      break;
    }
    case MessageType::kRepairRly: {
      RepairRlyMsg body;
      body.level = r.u8();
      body.digit = r.u8();
      const std::uint8_t has = r.u8();
      if (!r.ok() || has > 1 || body.level >= params.num_digits ||
          body.digit >= params.base)
        return std::nullopt;
      if (has) {
        auto c = read_node_ref(r, params);
        if (!c) return std::nullopt;
        body.candidate = std::move(*c);
      }
      msg.body = std::move(body);
      break;
    }
    case MessageType::kAnnounce: {
      auto snap = read_snapshot(r, params);
      if (!snap) return std::nullopt;
      msg.body = AnnounceMsg{std::move(*snap)};
      break;
    }
    case MessageType::kRelAck:
      msg.body = RelAckMsg{r.u32()};
      break;
  }
  if (!r.ok()) return std::nullopt;
  if (r.pos() != bytes.size()) return std::nullopt;  // trailing garbage
  return msg;
}

}  // namespace hcube
