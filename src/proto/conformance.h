// Protocol conformance registry: the (NodeStatus × MessageType) surface as
// a single compile-time table.
//
// Theorems 1-2 of the paper assume every node handles every message
// correctly in every status. Before this registry that surface was scattered
// across node.cpp's dispatch, join_protocol.cpp's handlers, codec.cpp and
// messages.cpp, so adding a message type could silently miss a case and only
// dynamic fuzzing would notice. Here the per-status action table IS the
// spec: kConformance maps each MessageType to its handling contract —
//
//   legal_statuses  receiver statuses in which delivery is declared legal
//                   (including statuses where only a *stale* instance can
//                   arrive, e.g. a CpRlyMsg reaching a node that already
//                   finished joining under a later generation);
//   echoes_gen      replies/forwards echo the request's generation tag
//                   instead of carrying the sender's own (the lookup behind
//                   echoes_request_gen());
//   big_request     one of the three §5.2 table-carrying request types (the
//                   lookup behind is_big_request());
//   reply           the message type sent in answer, when the contract
//                   prescribes one.
//
// static_asserts pin the table to exactly kNumMessageTypes entries in
// enumerator order and cross-check it against itself (every declared reply
// echoes the request generation, exactly three big requests, RelAck never
// legal at the protocol layer). Deleting or reordering an entry fails the
// build. At runtime Node::handle consults conformance_allows() before
// dispatch: an undeclared (status, type) pair is rejected — dropped and
// counted in ConformanceStats — never handled.
//
// tools/hclint enforces the cross-file half of the contract (codec switch
// coverage, type_name arms, NodeStatus to_string arms) that the compiler
// cannot see; see DESIGN.md §10.
#pragma once

#include <array>
#include <cstdint>
#include <variant>

#include "util/metric.h"
#include "proto/messages.h"

namespace hcube {

// Node status (Section 4), extended with the leave states of this library's
// leave protocol (the paper defers leaving to future work). A node is an
// S-node iff status is kInSystem; kLeaving/kDeparted are extension states
// outside the paper's model.
enum class NodeStatus : std::uint8_t {
  kCopying,
  kWaiting,
  kNotifying,
  kInSystem,
  kLeaving,
  kDeparted,
  kCrashed,  // fail-stop (extension): the node silently stops responding
};
inline constexpr std::size_t kNumNodeStatuses = 7;

const char* to_string(NodeStatus s);

// One bit per NodeStatus, in enumerator order.
using StatusMask = std::uint8_t;

constexpr StatusMask status_bit(NodeStatus s) {
  return static_cast<StatusMask>(StatusMask{1} << static_cast<unsigned>(s));
}

template <class... Statuses>
constexpr StatusMask statuses(Statuses... s) {
  return static_cast<StatusMask>((status_bit(s) | ...));
}

struct MessageContract {
  MessageType type;          // pinned to the entry's index by static_assert
  StatusMask legal_statuses; // receiver statuses in which delivery is legal
  bool echoes_gen;           // reply/forward: echoes the request's gen tag
  bool big_request;          // §5.2 table-carrying request
  bool has_reply;            // the contract prescribes an answer
  MessageType reply;         // meaningful iff has_reply
};

namespace conformance_detail {

constexpr NodeStatus kC = NodeStatus::kCopying;
constexpr NodeStatus kW = NodeStatus::kWaiting;
constexpr NodeStatus kN = NodeStatus::kNotifying;
constexpr NodeStatus kS = NodeStatus::kInSystem;
constexpr NodeStatus kL = NodeStatus::kLeaving;
constexpr NodeStatus kD = NodeStatus::kDeparted;

// Every joining status plus in_system/leaving: the set in which join-phase
// traffic can legitimately arrive. A watchdog restart can put a node back
// in kCopying while peers still converse with it, and stale replies of an
// aborted attempt can trail in long after the node settled, so reply types
// are legal wherever the generation filter that rejects them runs.
constexpr StatusMask kJoinPhase = statuses(kC, kW, kN, kS, kL);
// Statuses in which bookkeeping notifications (reverse-neighbor traffic,
// drops, announcements) are tolerated — including kDeparted, where they
// race the departure and need no answer.
constexpr StatusMask kAnyLive = statuses(kC, kW, kN, kS, kL, kD);

}  // namespace conformance_detail

inline constexpr std::array<MessageContract, kNumMessageTypes> kConformance = {{
    // type             legal_statuses            echoes big   has_reply reply
    {MessageType::kCpRst,
     statuses(conformance_detail::kS, conformance_detail::kL),
     false, true, true, MessageType::kCpRly},
    {MessageType::kCpRly, conformance_detail::kJoinPhase,
     true, false, false, MessageType::kCpRly},
    {MessageType::kJoinWait, conformance_detail::kJoinPhase,
     false, true, true, MessageType::kJoinWaitRly},
    {MessageType::kJoinWaitRly, conformance_detail::kJoinPhase,
     true, false, false, MessageType::kJoinWaitRly},
    {MessageType::kJoinNoti, conformance_detail::kJoinPhase,
     false, true, true, MessageType::kJoinNotiRly},
    {MessageType::kJoinNotiRly, conformance_detail::kJoinPhase,
     true, false, false, MessageType::kJoinNotiRly},
    {MessageType::kInSysNoti, conformance_detail::kAnyLive,
     false, false, false, MessageType::kInSysNoti},
    // SpeNotiMsg is originated and forwarded while handling a message of the
    // announced attempt, so it echoes that attempt's generation down the
    // forwarding chain to its reply (see echoes_request_gen()).
    {MessageType::kSpeNoti, conformance_detail::kJoinPhase,
     true, false, true, MessageType::kSpeNotiRly},
    {MessageType::kSpeNotiRly, conformance_detail::kJoinPhase,
     true, false, false, MessageType::kSpeNotiRly},
    // RvNghNotiRlyMsg is sent only when the recorded state disagrees with
    // the actual one, but the contract still names it as the reply type.
    {MessageType::kRvNghNoti, conformance_detail::kAnyLive,
     false, false, true, MessageType::kRvNghNotiRly},
    {MessageType::kRvNghNotiRly, conformance_detail::kAnyLive,
     true, false, false, MessageType::kRvNghNotiRly},
    {MessageType::kLeave, conformance_detail::kAnyLive,
     false, false, true, MessageType::kLeaveRly},
    {MessageType::kLeaveRly,
     statuses(conformance_detail::kL, conformance_detail::kD),
     true, false, false, MessageType::kLeaveRly},
    {MessageType::kNghDrop, conformance_detail::kAnyLive,
     false, false, false, MessageType::kNghDrop},
    {MessageType::kPing, conformance_detail::kAnyLive,
     false, false, true, MessageType::kPong},
    {MessageType::kPong,
     statuses(conformance_detail::kS, conformance_detail::kL),
     true, false, false, MessageType::kPong},
    {MessageType::kRepairQuery, conformance_detail::kAnyLive,
     false, false, true, MessageType::kRepairRly},
    {MessageType::kRepairRly,
     statuses(conformance_detail::kS, conformance_detail::kL),
     true, false, false, MessageType::kRepairRly},
    {MessageType::kAnnounce, conformance_detail::kAnyLive,
     false, false, false, MessageType::kAnnounce},
    // Delivery acknowledgements belong to the reliable-transport decorator;
    // one surfacing at the protocol layer means the overlay was wired to a
    // transport stack without that decorator. Never legal: every delivery
    // is rejected and counted.
    {MessageType::kRelAck, StatusMask{0},
     false, false, false, MessageType::kRelAck},
}};

constexpr const MessageContract& conformance_of(MessageType t) {
  return kConformance[static_cast<std::size_t>(t)];
}

// The always-on conformance check: is delivery of `t` to a node in status
// `s` declared legal by the registry?
constexpr bool conformance_allows(NodeStatus s, MessageType t) {
  return (conformance_of(t).legal_statuses & status_bit(s)) != 0;
}

// ---- Compile-time self-checks: the registry covers the whole enum, in
// ---- order, and agrees with itself. Deleting any entry fails the build.

static_assert(kConformance.size() == kNumMessageTypes,
              "conformance registry must cover every MessageType");
static_assert(std::variant_size_v<MessageBody> == kNumMessageTypes,
              "MessageBody variant and MessageType enum must stay in sync");

namespace conformance_detail {

constexpr bool entries_in_enum_order() {
  for (std::size_t i = 0; i < kConformance.size(); ++i)
    if (kConformance[i].type != static_cast<MessageType>(i)) return false;
  return true;
}

constexpr bool replies_echo_request_gen() {
  for (const MessageContract& c : kConformance)
    if (c.has_reply && !conformance_of(c.reply).echoes_gen) return false;
  return true;
}

constexpr std::size_t count_big_requests() {
  std::size_t n = 0;
  for (const MessageContract& c : kConformance)
    if (c.big_request) ++n;
  return n;
}

constexpr bool big_requests_have_replies() {
  for (const MessageContract& c : kConformance)
    if (c.big_request && (!c.has_reply || c.echoes_gen)) return false;
  return true;
}

constexpr bool only_relack_is_unhandleable() {
  for (const MessageContract& c : kConformance) {
    const bool never_legal = c.legal_statuses == 0;
    if (never_legal != (c.type == MessageType::kRelAck)) return false;
  }
  return true;
}

constexpr bool crashed_receives_nothing() {
  for (const MessageContract& c : kConformance)
    if ((c.legal_statuses & status_bit(NodeStatus::kCrashed)) != 0)
      return false;
  return true;
}

}  // namespace conformance_detail

static_assert(conformance_detail::entries_in_enum_order(),
              "conformance entries must appear in MessageType order");
static_assert(conformance_detail::replies_echo_request_gen(),
              "every declared reply type must echo the request generation");
static_assert(conformance_detail::count_big_requests() == 3,
              "§5.2 names exactly three big request types");
static_assert(conformance_detail::big_requests_have_replies(),
              "big requests are requests: they prescribe a reply and carry "
              "their own generation");
static_assert(conformance_detail::only_relack_is_unhandleable(),
              "every protocol-layer type needs at least one legal status; "
              "only RelAck is transport-internal");
static_assert(conformance_detail::crashed_receives_nothing(),
              "crashed nodes are fail-stop silent; no delivery is legal");

// ---- Runtime rejection counters ----
//
// A delivery whose (status, type) pair the registry does not declare is
// dropped before dispatch and counted here, per message type. NodeCore
// keeps one per node; Overlay aggregates across the network and offers an
// observation hook that MessageTrace::attach chains onto.
// Canonical registry name for the network-wide rejection total
// (obs/collect exports it; per-type counts ride under it as a histogram-free
// scalar because rejections are rare by design).
HCUBE_METRIC(kMetricConformanceRejected, "conformance.rejected");

struct ConformanceStats {
  // 32-bit: rejection counts are tiny (ideally zero) even network-wide,
  // and one of these lives on every node. Accessors widen to 64 bits.
  std::array<std::uint32_t, kNumMessageTypes> rejected{};

  std::uint64_t rejected_of(MessageType t) const {
    return rejected[static_cast<std::size_t>(t)];
  }
  std::uint64_t total_rejected() const {
    std::uint64_t n = 0;
    for (std::uint64_t r : rejected) n += r;
    return n;
  }

  // Exports the total under its canonical registry name.
  template <class Fn>
  void for_each_metric(Fn&& fn) const {
    fn(kMetricConformanceRejected, total_rejected());
  }
};

}  // namespace hcube
