// Wire codec for protocol messages.
//
// The simulator passes Message objects by value, but a real deployment
// ships bytes; this codec defines the byte format and guarantees that
// encode() produces exactly wire_size_bytes(msg, params) bytes — the size
// model used throughout the benchmarks is therefore not an estimate but
// the definition of the format.
//
// Layout (all integers little-endian):
//   header (40 bytes):
//     magic "HCUB" (4) | version (1) | type (1) | aux (1) | flags (1)
//     rel_seq (4) | gen (4) — reliable-delivery sequence number and
//                      join-attempt generation (Message envelope fields)
//     reserved (24)  — stands in for the IP/UDP overhead the paper's
//                      size analysis includes in a "big message"
//   sender node-ref
//   body (per message type; see messages.h size model)
//
// A node-ref is the ID's digits packed at ceil(log2 b) bits per digit
// (digit 0 first), followed by an IPv4 address (4) and port (2). A table
// snapshot is a d*b-bit presence bitmap in (level-major, digit-minor)
// order followed by (node-ref, state byte) pairs for each set bit, in
// bitmap order.
//
// The aux header byte carries JoinNotiMsg's sender_noti_level (0
// otherwise); flags bit 0 marks the presence of the optional §6.2 bit
// vector.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/messages.h"

namespace hcube {

// Placeholder endpoint; real deployments would carry the sender's actual
// address. The simulator uses host ids.
struct WireAddress {
  std::uint32_t ipv4 = 0;
  std::uint16_t port = 0;
};

// Serializes the message. Output size is exactly
// wire_size_bytes(msg, params).
std::vector<std::uint8_t> encode_message(const Message& msg,
                                         const IdParams& params,
                                         const WireAddress& sender_addr = {});

// Parses a message. Returns nullopt on any malformed input (bad magic,
// truncation, digit out of range, bitmap/payload mismatch, unknown type).
std::optional<Message> decode_message(const std::vector<std::uint8_t>& bytes,
                                      const IdParams& params);

}  // namespace hcube
