#include "analysis/join_cost.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/logmath.h"

namespace hcube {
namespace {

// b^e as a double (exact for small exponents, ~1e-16 relative error at the
// top of the range, which is far below the other error terms here).
double pow_base(std::uint32_t b, std::uint32_t e) {
  return std::pow(static_cast<double>(b), static_cast<double>(e));
}

}  // namespace

std::vector<double> notification_level_distribution(const IdParams& params,
                                                    std::uint64_t n) {
  params.validate();
  HCUBE_CHECK(n >= 1);
  const std::uint32_t b = params.base;
  const std::uint32_t d = params.num_digits;
  const double space = pow_base(b, d);
  HCUBE_CHECK_MSG(static_cast<double>(n) < space,
                  "more nodes than the ID space holds");

  std::vector<double> p(d, 0.0);
  if (d == 1) {
    // Every other node shares the (empty) suffix of length 0 and none can
    // share 1 digit (IDs are unique single digits)... but with d = 1 the
    // notification level is always 0.
    p[0] = 1.0;
    return p;
  }

  const double total = space - 1.0;  // candidate IDs for V (excluding x)
  const double log_c_total_n = log_binomial(total, n);

  // P_0(n) = C(b^d - b^{d-1}, n) / C(b^d - 1, n): no node shares x's
  // rightmost digit.
  p[0] = std::exp(log_binomial(space - pow_base(b, d - 1), n) -
                  log_c_total_n);

  double tail = p[0];
  for (std::uint32_t i = 1; i + 1 < d; ++i) {
    // B = (b-1) b^{d-1-i}: IDs sharing exactly i suffix digits with x.
    // M = b^d - b^{d-i}:   IDs sharing fewer than i suffix digits.
    const double big_b = static_cast<double>(b - 1) * pow_base(b, d - 1 - i);
    const double big_m = space - pow_base(b, d - i);

    // Sum over k >= 1 of C(B, k) C(M, n-k) / C(total, n), via the term
    // ratio  t_k / t_{k-1} = (B-k+1)(n-k+1) / (k (M-n+k)).
    const auto k_max = static_cast<std::uint64_t>(
        std::min(static_cast<double>(n), big_b));
    // t_1 = C(B,1) C(M, n-1) / C(total, n); zero when infeasible
    // (log_binomial returns -inf for k > population).
    double term = std::exp(std::log(big_b) + log_binomial(big_m, n - 1) -
                           log_c_total_n);
    double sum = term;
    for (std::uint64_t k = 2; k <= k_max && term > 0.0; ++k) {
      const double ratio =
          (big_b - static_cast<double>(k) + 1.0) *
          (static_cast<double>(n) - static_cast<double>(k) + 1.0) /
          (static_cast<double>(k) *
           (big_m - static_cast<double>(n) + static_cast<double>(k)));
      if (!(ratio > 0.0)) break;  // remaining terms are infeasible (zero)
      term *= ratio;
      sum += term;
      if (term < sum * 1e-16) break;  // converged
    }
    p[i] = sum;
    tail += sum;
  }
  p[d - 1] = std::max(0.0, 1.0 - tail);
  return p;
}

double expected_join_noti_single(const IdParams& params, std::uint64_t n) {
  const std::vector<double> p = notification_level_distribution(params, n);
  double e = 0.0;
  for (std::uint32_t i = 0; i < params.num_digits; ++i)
    e += static_cast<double>(n) / pow_base(params.base, i) * p[i];
  return e - 1.0;
}

double expected_join_noti_concurrent_bound(const IdParams& params,
                                           std::uint64_t n, std::uint64_t m) {
  const std::vector<double> p = notification_level_distribution(params, n);
  double e = 0.0;
  for (std::uint32_t i = 0; i < params.num_digits; ++i)
    e += static_cast<double>(n + m) / pow_base(params.base, i) * p[i];
  return e;
}

std::vector<double> notification_level_distribution_mc(const IdParams& params,
                                                       std::uint64_t n,
                                                       std::uint64_t trials,
                                                       Rng& rng) {
  params.validate();
  std::vector<double> p(params.num_digits, 0.0);
  for (std::uint64_t t = 0; t < trials; ++t) {
    UniqueIdGenerator gen(params, rng());
    const NodeId x = gen.next();
    // The notification level is the longest suffix x shares with any member.
    std::size_t level = 0;
    for (std::uint64_t i = 0; i < n; ++i)
      level = std::max(level, gen.next().csuf_len(x));
    ++p[level];
  }
  for (double& v : p) v /= static_cast<double>(trials);
  return p;
}

}  // namespace hcube
