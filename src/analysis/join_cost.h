// Analytic communication-cost model (Section 5.2, Theorems 3-5).
//
// Theorem 3:  per joining node, #CpRstMsg + #JoinWaitMsg <= d + 1.
// Theorem 4:  for a single join into <V, N(V)> with |V| = n, the expected
//             number of JoinNotiMsg is
//                E[J] = sum_{i=0}^{d-1} (n / b^i) P_i(n)  -  1,
//             where P_i(n) is the probability that the joiner's notification
//             level is i:
//                P_0(n)     = C(b^d - b^{d-1}, n) / C(b^d - 1, n)
//                P_i(n)     = sum_{k=1}^{min(n,B)} C(B, k) *
//                             C(b^d - b^{d-i}, n-k) / C(b^d - 1, n),
//                             B = (b-1) b^{d-1-i},   for 1 <= i < d-1
//                P_{d-1}(n) = 1 - sum_{j<d-1} P_j(n).
// Theorem 5:  under m concurrent joins, an upper bound is
//                E[J] <= sum_{i=0}^{d-1} ((n+m) / b^i) P_i(n).
//
// Population sizes are on the order of b^d (up to 16^40 ~ 1.46e48), so all
// binomials are evaluated in log space (util/logmath.h) with a term-ratio
// recurrence across k to keep the per-P_i cost at O(n + d).
#pragma once

#include <cstdint>
#include <vector>

#include "ids/node_id.h"
#include "util/rng.h"

namespace hcube {

// Theorem 3's bound.
inline std::uint64_t theorem3_bound(const IdParams& params) {
  return params.num_digits + 1;
}

// P_i(n) for i in [0, d); the vector sums to 1.
std::vector<double> notification_level_distribution(const IdParams& params,
                                                    std::uint64_t n);

// Theorem 4: E[#JoinNotiMsg] for a single join into n nodes.
double expected_join_noti_single(const IdParams& params, std::uint64_t n);

// Theorem 5: upper bound on E[#JoinNotiMsg] per joiner when m nodes join a
// network of n concurrently.
double expected_join_noti_concurrent_bound(const IdParams& params,
                                           std::uint64_t n, std::uint64_t m);

// Monte-Carlo cross-check of notification_level_distribution: draws `trials`
// random (joiner, V) configurations and returns the empirical distribution
// of the notification level. Used by tests to validate the log-space math.
std::vector<double> notification_level_distribution_mc(const IdParams& params,
                                                       std::uint64_t n,
                                                       std::uint64_t trials,
                                                       Rng& rng);

}  // namespace hcube
