// A minimal location-independent object store on top of hypercube routing.
//
// This is the application the paper's introduction motivates: objects are
// addressed by name, names hash to IDs in the node ID space, and each object
// lives at its "root" — the node surrogate routing converges to for the
// object's ID. On a consistent network every origin reaches the same root
// (deterministic location, property P1), which the examples demonstrate and
// the tests verify. Replication/proximity (PRR's directory machinery) is out
// of scope here, as it is in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/routing.h"
#include "core/view.h"
#include "ids/node_id.h"

namespace hcube {

class ObjectStore {
 public:
  explicit ObjectStore(NetworkView view) : view_(std::move(view)) {}

  struct OpResult {
    bool success = false;
    NodeId root;             // the object's root node
    std::size_t hops = 0;    // overlay hops the operation took
  };

  // Publishes name -> value from the given origin node: surrogate-routes to
  // the object's root and stores the value there.
  OpResult publish(const NodeId& origin, const std::string& name,
                   std::string value);

  // Looks the object up from the given origin.
  OpResult lookup(const NodeId& origin, const std::string& name,
                  std::string* value_out = nullptr);

  // The ID an object name hashes to.
  NodeId object_id(const std::string& name) const;

  std::size_t objects_stored() const;
  // How many objects the given node is root of (load-balance inspection).
  std::size_t load_of(const NodeId& node) const;

  // Membership changed (joins/leaves/recovery): adopt the new view and move
  // every object whose surrogate root moved to its new root (the handoff a
  // deployed system would perform when a closer node appears or a root
  // departs). Returns the number of objects migrated. Objects rooted at a
  // node no longer in the view are always moved.
  std::size_t rebalance(NetworkView new_view);

 private:
  NetworkView view_;
  // root node -> (name -> value)
  std::unordered_map<NodeId,
                     std::unordered_map<std::string, std::string>, NodeIdHash>
      storage_;
};

}  // namespace hcube
