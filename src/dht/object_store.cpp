#include "dht/object_store.h"

#include "ids/sha1.h"
#include "util/check.h"

namespace hcube {

NodeId ObjectStore::object_id(const std::string& name) const {
  return id_from_name(name, view_.params());
}

ObjectStore::OpResult ObjectStore::publish(const NodeId& origin,
                                           const std::string& name,
                                           std::string value) {
  OpResult result;
  const auto routed = surrogate_route(view_, origin, object_id(name));
  if (!routed) return result;
  result.success = true;
  result.root = routed->root;
  result.hops = routed->path.size() - 1;
  storage_[routed->root][name] = std::move(value);
  return result;
}

ObjectStore::OpResult ObjectStore::lookup(const NodeId& origin,
                                          const std::string& name,
                                          std::string* value_out) {
  OpResult result;
  const auto routed = surrogate_route(view_, origin, object_id(name));
  if (!routed) return result;
  result.root = routed->root;
  result.hops = routed->path.size() - 1;
  auto node_it = storage_.find(routed->root);
  if (node_it == storage_.end()) return result;
  auto obj_it = node_it->second.find(name);
  if (obj_it == node_it->second.end()) return result;
  result.success = true;
  if (value_out != nullptr) *value_out = obj_it->second;
  return result;
}

std::size_t ObjectStore::objects_stored() const {
  std::size_t total = 0;
  for (const auto& [node, objects] : storage_) total += objects.size();
  return total;
}

std::size_t ObjectStore::load_of(const NodeId& node) const {
  auto it = storage_.find(node);
  return it == storage_.end() ? 0 : it->second.size();
}

std::size_t ObjectStore::rebalance(NetworkView new_view) {
  view_ = std::move(new_view);
  HCUBE_CHECK_MSG(view_.size() > 0, "cannot rebalance onto an empty view");
  const NodeId& origin = view_.tables().front()->owner();

  std::vector<std::pair<NodeId, std::string>> moves;  // (old root, name)
  for (const auto& [root, objects] : storage_) {
    for (const auto& [name, value] : objects) {
      const auto routed = surrogate_route(view_, origin, object_id(name));
      HCUBE_CHECK_MSG(routed.has_value(),
                      "surrogate routing failed during rebalance");
      if (routed->root != root) moves.emplace_back(root, name);
    }
  }
  for (const auto& [old_root, name] : moves) {
    auto node_it = storage_.find(old_root);
    auto obj_it = node_it->second.find(name);
    std::string value = std::move(obj_it->second);
    node_it->second.erase(obj_it);
    if (node_it->second.empty()) storage_.erase(node_it);
    const auto routed = surrogate_route(view_, origin, object_id(name));
    storage_[routed->root][name] = std::move(value);
  }
  return moves.size();
}

}  // namespace hcube
