#include "ids/sha1.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace hcube {
namespace {

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  EXPECT_EQ(sha1_hex(std::string(1000000, 'a')),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, PaddingBoundaries) {
  // Lengths around the 55/56/63/64-byte padding edges must all hash without
  // corruption; verify determinism and pairwise distinctness.
  std::set<std::string> digests;
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u,
                          128u}) {
    const std::string input(len, 'x');
    const std::string digest = sha1_hex(input);
    EXPECT_EQ(digest, sha1_hex(input));
    EXPECT_TRUE(digests.insert(digest).second) << "collision at len " << len;
  }
}

TEST(IdFromName, DeterministicAndInRange) {
  const IdParams params{16, 40};
  const NodeId a = id_from_name("alice", params);
  const NodeId b = id_from_name("alice", params);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.num_digits(), 40u);
  for (std::size_t i = 0; i < 40; ++i) ASSERT_LT(a.digit(i), 16);
}

TEST(IdFromName, DifferentNamesDiffer) {
  const IdParams params{16, 8};
  EXPECT_NE(id_from_name("alice", params), id_from_name("bob", params));
}

TEST(IdFromName, NonPowerOfTwoBaseRejectionSampling) {
  const IdParams params{10, 20};
  const NodeId id = id_from_name("object/1234", params);
  for (std::size_t i = 0; i < 20; ++i) ASSERT_LT(id.digit(i), 10);
  EXPECT_EQ(id, id_from_name("object/1234", params));
}

TEST(IdFromName, LongIdsNeedRehashing) {
  // 64 digits of base 256 need 64 bytes > one 20-byte digest, forcing the
  // counter-extension path.
  const IdParams params{256, 64};
  const NodeId id = id_from_name("needs-three-digests", params);
  EXPECT_EQ(id, id_from_name("needs-three-digests", params));
  // Not all digits equal (overwhelmingly likely for a sane implementation).
  bool all_same = true;
  for (std::size_t i = 1; i < id.num_digits(); ++i)
    if (id.digit(i) != id.digit(0)) all_same = false;
  EXPECT_FALSE(all_same);
}

TEST(IdFromName, DigitsLookUniform) {
  // Chi-squared-ish sanity: across many names, first digits spread over the
  // base.
  const IdParams params{16, 8};
  std::array<int, 16> counts{};
  for (int i = 0; i < 1600; ++i)
    ++counts[id_from_name("name" + std::to_string(i), params).digit(0)];
  for (int c : counts) EXPECT_GT(c, 50);  // expected 100 each
}

}  // namespace
}  // namespace hcube
