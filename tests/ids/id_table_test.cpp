// The interner behind NodeId: canonical dense refs, exact round-trips over
// the whole IdParams envelope, and handle stability across the churn
// pattern the overlay leans on (crash -> restart -> rejoin re-interns the
// same digit string and must get the same handle back).
#include "ids/id_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "ids/node_id.h"
#include "util/rng.h"

namespace hcube {
namespace {

// The interner is a process-global singleton shared by every test in this
// binary, so assertions are phrased relative to its state at test entry
// (size deltas, not absolute sizes).

TEST(IdTable, RoundTripAcrossIdParamsShapes) {
  // The corners and interiors of the supported envelope: base in [2, 256],
  // num_digits in [1, 64]. 16x8 and 16x40 are the paper's experiment
  // shapes.
  const IdParams shapes[] = {{2, 1},  {2, 64},  {4, 5},   {16, 8},
                             {16, 40}, {36, 12}, {256, 4}, {256, 64}};
  Rng rng(0xed1e5);
  for (const IdParams& params : shapes) {
    params.validate();
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<Digit> digits(params.num_digits);
      for (Digit& d : digits)
        d = static_cast<Digit>(rng.next_below(params.base));
      const NodeId id(digits, params);
      ASSERT_TRUE(id.is_valid());
      ASSERT_EQ(id.num_digits(), params.num_digits);
      for (std::size_t i = 0; i < digits.size(); ++i)
        ASSERT_EQ(id.digit(i), digits[i]) << "shape " << params.base << "x"
                                          << params.num_digits;
      // String round-trip goes through the interner twice and must land on
      // the same canonical handle.
      const auto parsed = NodeId::from_string(id.to_string(params), params);
      ASSERT_TRUE(parsed.has_value());
      ASSERT_EQ(parsed->ref(), id.ref());
    }
  }
}

TEST(IdTable, InterningIsCanonicalAndDense) {
  IdTable& table = IdTable::instance();
  const IdParams params{16, 8};
  const std::size_t before = table.size();
  UniqueIdGenerator gen(params, 0xabcdeULL);

  std::vector<NodeId> ids;
  for (int i = 0; i < 2000; ++i) ids.push_back(gen.next());

  // Distinct digit strings -> distinct refs (no collisions under churn),
  // every ref below the current table size (dense, first-intern order).
  std::vector<bool> seen(table.size(), false);
  for (const NodeId& id : ids) {
    ASSERT_LT(id.ref(), table.size());
    ASSERT_FALSE(seen[id.ref()]) << "two distinct strings shared a ref";
    seen[id.ref()] = true;
  }
  // The generator interned exactly its output (UniqueIdGenerator dedups
  // by ref, so retries re-intern existing strings without growing).
  EXPECT_GE(table.size(), before + ids.size());

  // Re-interning every string is a no-op returning the canonical handle.
  const std::size_t after = table.size();
  for (const NodeId& id : ids) {
    const std::vector<Digit> digits(id.digits().begin(), id.digits().end());
    const NodeId again(digits, params);
    EXPECT_EQ(again.ref(), id.ref());
  }
  EXPECT_EQ(table.size(), after);
}

TEST(IdTable, ChurnRestartRejoinReusesHandles) {
  // The overlay's crash -> restart -> rejoin loop destroys every NodeId a
  // node held and rebuilds them from the wire or from persisted digit
  // strings. Handles must come back identical, or the dense registries
  // (Overlay's HostId vector, FlatNodeSet slots) would grow without bound
  // across churn.
  IdTable& table = IdTable::instance();
  const IdParams params{16, 8};
  UniqueIdGenerator gen(params, 0x5eedULL);

  std::vector<std::vector<Digit>> strings;
  std::vector<IdTable::Ref> first_refs;
  for (int i = 0; i < 500; ++i) {
    const NodeId id = gen.next();
    strings.emplace_back(id.digits().begin(), id.digits().end());
    first_refs.push_back(id.ref());
  }
  const std::size_t size_after_first_life = table.size();
  const std::size_t bytes_after_first_life = table.bytes_used();

  for (int round = 0; round < 3; ++round) {  // three crash/rejoin cycles
    for (std::size_t i = 0; i < strings.size(); ++i) {
      const NodeId reborn(strings[i], params);
      ASSERT_EQ(reborn.ref(), first_refs[i]) << "round " << round;
    }
  }
  // No growth: neither entries nor slab bytes.
  EXPECT_EQ(table.size(), size_after_first_life);
  EXPECT_EQ(table.bytes_used(), bytes_after_first_life);
}

TEST(IdTable, HandleShapeIsFixed) {
  static_assert(sizeof(NodeId) == 8);
  static_assert(std::is_trivially_copyable_v<NodeId>);
  // Equality is a ref compare; ordering matches the digit strings.
  const IdParams params{4, 5};
  const NodeId a = NodeId::from_string("21233", params).value();
  const NodeId b = NodeId::from_string("21233", params).value();
  const NodeId c = NodeId::from_string("21230", params).value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ref(), b.ref());
  EXPECT_NE(a, c);
  EXPECT_EQ(a.csuf_len(b), 5u);
}

}  // namespace
}  // namespace hcube
