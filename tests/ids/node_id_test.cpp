#include "ids/node_id.h"

#include <gtest/gtest.h>

#include <set>

namespace hcube {
namespace {

const IdParams kHex5{16, 5};
const IdParams kOct5{8, 5};

TEST(NodeId, RoundTripString) {
  // The paper's running example node 21233 (b = 4, d = 5).
  const IdParams params{4, 5};
  const auto id = NodeId::from_string("21233", params);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->to_string(params), "21233");
  // Digit 0 is the RIGHTMOST digit.
  EXPECT_EQ(id->digit(0), 3);
  EXPECT_EQ(id->digit(1), 3);
  EXPECT_EQ(id->digit(2), 2);
  EXPECT_EQ(id->digit(3), 1);
  EXPECT_EQ(id->digit(4), 2);
}

TEST(NodeId, FromStringRejectsBadInput) {
  EXPECT_FALSE(NodeId::from_string("1234", kHex5).has_value());    // short
  EXPECT_FALSE(NodeId::from_string("123456", kHex5).has_value());  // long
  EXPECT_FALSE(NodeId::from_string("12z45", kHex5).has_value());   // digit
  EXPECT_FALSE(NodeId::from_string("99999", kOct5).has_value());   // base
}

TEST(NodeId, HexDigitsParse) {
  const auto id = NodeId::from_string("0afe9", kHex5);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->digit(0), 9);
  EXPECT_EQ(id->digit(1), 14);
  EXPECT_EQ(id->digit(2), 15);
  EXPECT_EQ(id->digit(3), 10);
  EXPECT_EQ(id->digit(4), 0);
  EXPECT_EQ(id->to_string(kHex5), "0afe9");
}

TEST(NodeId, LargeBaseUsesDottedNotation) {
  const IdParams params{100, 3};
  std::vector<Digit> digits{7, 42, 99};  // LSB first
  const NodeId id(digits, params);
  EXPECT_EQ(id.to_string(params), "99.42.7");
  const auto parsed = NodeId::from_string("99.42.7", params);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, id);
}

TEST(NodeId, CsufLen) {
  // csuf("21233", "03233") per the paper's Figure 1 vicinity: common suffix
  // "233" -> length 3.
  const IdParams params{4, 5};
  const auto a = NodeId::from_string("21233", params);
  const auto b = NodeId::from_string("03233", params);
  EXPECT_EQ(a->csuf_len(*b), 3u);
  EXPECT_EQ(b->csuf_len(*a), 3u);
  EXPECT_EQ(a->csuf_len(*a), 5u);
}

TEST(NodeId, CsufLenZero) {
  const IdParams params{4, 5};
  const auto a = NodeId::from_string("21233", params);
  const auto b = NodeId::from_string("21232", params);
  EXPECT_EQ(a->csuf_len(*b), 0u);
}

TEST(NodeId, HasSuffix) {
  const IdParams params{8, 5};
  const auto id = NodeId::from_string("10261", params);
  // Suffixes are LSB-first digit vectors: "261" is {1, 6, 2}.
  EXPECT_TRUE(id->has_suffix(Suffix{}));
  EXPECT_TRUE(id->has_suffix(Suffix{1}));
  EXPECT_TRUE(id->has_suffix(Suffix{1, 6}));
  EXPECT_TRUE(id->has_suffix(Suffix{1, 6, 2}));
  EXPECT_FALSE(id->has_suffix(Suffix{6}));
  EXPECT_FALSE(id->has_suffix(Suffix{1, 6, 3}));
}

TEST(NodeId, SuffixOfLen) {
  const IdParams params{8, 5};
  const auto id = NodeId::from_string("10261", params);
  EXPECT_EQ(id->suffix_of_len(0), Suffix{});
  EXPECT_EQ(id->suffix_of_len(3), (Suffix{1, 6, 2}));
  EXPECT_EQ(suffix_to_string(id->suffix_of_len(3), params), "261");
}

TEST(NodeId, OrderingAndEquality) {
  const IdParams params{4, 3};
  const auto a = NodeId::from_string("123", params);
  const auto b = NodeId::from_string("123", params);
  const auto c = NodeId::from_string("223", params);
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
  EXPECT_EQ(a->hash(), b->hash());
}

TEST(NodeId, InvalidDefaultConstructed) {
  NodeId id;
  EXPECT_FALSE(id.is_valid());
}

TEST(NodeId, RandomIdsRespectParams) {
  Rng rng(3);
  const IdParams params{5, 7};
  for (int i = 0; i < 200; ++i) {
    const NodeId id = random_id(rng, params);
    ASSERT_EQ(id.num_digits(), 7u);
    for (std::size_t j = 0; j < 7; ++j) ASSERT_LT(id.digit(j), 5);
  }
}

TEST(UniqueIdGenerator, NeverRepeats) {
  const IdParams params{2, 8};  // only 256 possible IDs
  UniqueIdGenerator gen(params, 5);
  std::set<NodeId> seen;
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(seen.insert(gen.next()).second);
}

TEST(UniqueIdGenerator, ReserveBlocksCollision) {
  const IdParams params{2, 4};  // 16 possible IDs
  UniqueIdGenerator gen(params, 5);
  std::set<NodeId> seen;
  // Reserve half the space manually, then exhaust the rest via next().
  for (std::uint32_t v = 0; v < 8; ++v) {
    std::vector<Digit> digits(4);
    for (int j = 0; j < 4; ++j) digits[j] = (v >> j) & 1;
    NodeId id(digits, params);
    EXPECT_TRUE(gen.reserve(id));
    EXPECT_FALSE(gen.reserve(id));  // second reserve reports duplicate
    seen.insert(id);
  }
  for (int i = 0; i < 8; ++i) {
    const NodeId id = gen.next();
    EXPECT_TRUE(seen.insert(id).second) << "collision with reserved ID";
  }
}

TEST(IdParams, Log2SpaceSize) {
  EXPECT_DOUBLE_EQ((IdParams{16, 40}).log2_space_size(), 160.0);
  EXPECT_DOUBLE_EQ((IdParams{2, 8}).log2_space_size(), 8.0);
}

}  // namespace
}  // namespace hcube
