#include "ids/suffix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "test_util.h"

namespace hcube {
namespace {

using testing::id_of;
using testing::make_ids;

const IdParams kOct5{8, 5};

TEST(SuffixTrie, InsertAndCount) {
  SuffixTrie trie(kOct5);
  EXPECT_TRUE(trie.insert(id_of("10261", kOct5)));
  EXPECT_TRUE(trie.insert(id_of("00261", kOct5)));
  EXPECT_TRUE(trie.insert(id_of("47051", kOct5)));
  EXPECT_FALSE(trie.insert(id_of("10261", kOct5)));  // duplicate
  EXPECT_EQ(trie.size(), 3u);

  EXPECT_EQ(trie.count_with_suffix(Suffix{}), 3u);
  EXPECT_EQ(trie.count_with_suffix(Suffix{1}), 3u);        // *1
  EXPECT_EQ(trie.count_with_suffix(Suffix{1, 6}), 2u);     // *61
  EXPECT_EQ(trie.count_with_suffix(Suffix{1, 6, 2}), 2u);  // *261
  EXPECT_EQ(trie.count_with_suffix(Suffix{1, 5}), 1u);     // *51
  EXPECT_EQ(trie.count_with_suffix(Suffix{2}), 0u);
}

TEST(SuffixTrie, Contains) {
  SuffixTrie trie(kOct5);
  trie.insert(id_of("10261", kOct5));
  EXPECT_TRUE(trie.contains(id_of("10261", kOct5)));
  EXPECT_FALSE(trie.contains(id_of("10262", kOct5)));
  EXPECT_TRUE(trie.contains_suffix(Suffix{1, 6}));
  EXPECT_FALSE(trie.contains_suffix(Suffix{2, 6}));
}

TEST(SuffixTrie, AnyWithSuffixReturnsFirstInserted) {
  SuffixTrie trie(kOct5);
  trie.insert(id_of("10261", kOct5));
  trie.insert(id_of("00261", kOct5));
  const auto any = trie.any_with_suffix(Suffix{1, 6, 2});
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(*any, id_of("10261", kOct5));
  EXPECT_FALSE(trie.any_with_suffix(Suffix{7}).has_value());
}

TEST(SuffixTrie, AllWithSuffix) {
  SuffixTrie trie(kOct5);
  trie.insert(id_of("10261", kOct5));
  trie.insert(id_of("00261", kOct5));
  trie.insert(id_of("47051", kOct5));
  auto all = trie.all_with_suffix(Suffix{1, 6, 2});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NE(std::find(all.begin(), all.end(), id_of("10261", kOct5)),
            all.end());
  EXPECT_NE(std::find(all.begin(), all.end(), id_of("00261", kOct5)),
            all.end());
  EXPECT_EQ(trie.all_with_suffix(Suffix{}).size(), 3u);
}

TEST(SuffixTrie, NotifySuffixLenMatchesDefinition34) {
  // V = {72430, 10353, 62332, 13141, 31701} (the paper's example).
  SuffixTrie trie(kOct5);
  for (const char* s : {"72430", "10353", "62332", "13141", "31701"})
    trie.insert(id_of(s, kOct5));
  // 10261: V_1 != 0 (three IDs end in 1), V_61 = 0 -> k = 1.
  EXPECT_EQ(trie.notify_suffix_len(id_of("10261", kOct5)), 1u);
  // 67320: V_0 != 0 (72430), V_20 = 0 -> k = 1.
  EXPECT_EQ(trie.notify_suffix_len(id_of("67320", kOct5)), 1u);
  // 11445: no ID ends in 5 -> k = 0 (notification set is V itself).
  EXPECT_EQ(trie.notify_suffix_len(id_of("11445", kOct5)), 0u);
  // 10341: V_41 != 0 (13141), V_341 = 0 -> k = 2.
  EXPECT_EQ(trie.notify_suffix_len(id_of("10341", kOct5)), 2u);
}

TEST(SuffixTrie, CountsAgreeWithBruteForce) {
  const IdParams params{4, 6};
  auto ids = make_ids(params, 300, 77);
  SuffixTrie trie(params);
  for (const auto& id : ids) trie.insert(id);

  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = rng.next_below(7);
    Suffix suffix(len);
    for (auto& d : suffix) d = static_cast<Digit>(rng.next_below(4));
    std::size_t brute = 0;
    for (const auto& id : ids)
      if (id.has_suffix(suffix)) ++brute;
    EXPECT_EQ(trie.count_with_suffix(suffix), brute)
        << "suffix " << suffix_to_string(suffix, params);
  }
}

TEST(SuffixTrie, ForEachEntryCandidateEnumeratesConsistentEntries) {
  const IdParams params{4, 6};
  auto ids = make_ids(params, 120, 13);
  SuffixTrie trie(params);
  for (const auto& id : ids) trie.insert(id);

  const NodeId& x = ids[7];
  // Collect candidates via the walk.
  std::map<std::pair<std::size_t, Digit>, NodeId> walked;
  trie.for_each_entry_candidate(
      x, [&](std::size_t level, Digit j, const NodeId& first) {
        EXPECT_TRUE(walked.emplace(std::make_pair(level, j), first).second);
      });

  // Brute force: entry (i, j) should be offered iff some member has suffix
  // j . x[i-1..0], and the offered node must have that suffix.
  for (std::size_t i = 0; i < params.num_digits; ++i) {
    for (Digit j = 0; j < 4; ++j) {
      Suffix want = x.suffix_of_len(i);
      want.push_back(j);
      const bool exists = std::any_of(
          ids.begin(), ids.end(),
          [&](const NodeId& id) { return id.has_suffix(want); });
      const auto it = walked.find({i, j});
      EXPECT_EQ(it != walked.end(), exists)
          << "level " << i << " digit " << int(j);
      if (it != walked.end()) {
        EXPECT_TRUE(it->second.has_suffix(want));
      }
    }
  }
}

TEST(SuffixTrie, NotifySuffixLenZeroWhenNoSharedDigit) {
  const IdParams params{4, 4};
  SuffixTrie trie(params);
  trie.insert(id_of("1230", params));
  EXPECT_EQ(trie.notify_suffix_len(id_of("0001", params)), 0u);
}

}  // namespace
}  // namespace hcube
