// FlatNodeSet / FlatNodeMap: insertion-ordered semantics, and the at-rest
// representation behind shrink_to_fit() — after the offline builder parks a
// set, lookups run off a linear scan (the open-addressed index is dropped)
// and the first mutation must rebuild the index at its load-factor size in
// one step, not by doubling from the 8-slot seed (which would never
// terminate placement for a large parked set).
#include "ids/node_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "ids/node_id.h"

namespace hcube {
namespace {

std::vector<NodeId> make_ids(std::size_t n, std::uint64_t seed) {
  const IdParams params{16, 8};
  UniqueIdGenerator gen(params, seed);
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(gen.next());
  return ids;
}

TEST(FlatNodeSet, InsertContainsEraseKeepInsertionOrder) {
  const auto ids = make_ids(20, 0x5e7a);
  FlatNodeSet set;
  for (const NodeId& id : ids) ASSERT_TRUE(set.insert(id));
  for (const NodeId& id : ids) ASSERT_FALSE(set.insert(id));  // dedup
  ASSERT_EQ(set.size(), ids.size());

  std::size_t i = 0;
  for (const NodeId& id : set) ASSERT_EQ(id, ids[i++]);

  ASSERT_TRUE(set.erase(ids[7]));
  ASSERT_FALSE(set.erase(ids[7]));
  ASSERT_FALSE(set.contains(ids[7]));
  // Order of the survivors is unchanged.
  i = 0;
  for (const NodeId& id : set) {
    if (i == 7) ++i;  // skip the erased rank
    ASSERT_EQ(id, ids[i++]);
  }
}

TEST(FlatNodeSet, ShrinkToFitPreservesLookupsAndReleasesMemory) {
  const auto ids = make_ids(67, 0xa7e57);  // a reverse-set-sized population
  const auto absent = make_ids(67, 0x0ddba11);
  FlatNodeSet set;
  for (const NodeId& id : ids) set.insert(id);

  const std::size_t before = set.bytes_used();
  set.shrink_to_fit();
  // Exact-fit items + no index: strictly smaller than items-slack + index.
  ASSERT_LT(set.bytes_used(), before);
  ASSERT_EQ(set.bytes_used(), ids.size() * sizeof(NodeId));

  // Linear-scan lookups agree with the indexed answers.
  ASSERT_EQ(set.size(), ids.size());
  for (const NodeId& id : ids) ASSERT_TRUE(set.contains(id));
  for (const NodeId& id : absent) ASSERT_FALSE(set.contains(id));
  std::size_t i = 0;
  for (const NodeId& id : set) ASSERT_EQ(id, ids[i++]);
}

TEST(FlatNodeSet, InsertAfterShrinkRebuildsIndexAtLoadFactorSize) {
  // A parked set far above the 8-slot seed capacity: the rebuild must size
  // the index for the full population in one step (a plain doubling from 8
  // would loop forever placing 200 items into 8 slots).
  const auto ids = make_ids(200, 0xb16);
  const auto more = make_ids(50, 0xf00d);
  FlatNodeSet set;
  for (const NodeId& id : ids) set.insert(id);
  set.shrink_to_fit();

  for (const NodeId& id : more) ASSERT_TRUE(set.insert(id));
  ASSERT_EQ(set.size(), ids.size() + more.size());
  for (const NodeId& id : ids) ASSERT_TRUE(set.contains(id));
  for (const NodeId& id : more) ASSERT_TRUE(set.contains(id));
  // Re-inserts still dedup through the rebuilt index.
  for (const NodeId& id : ids) ASSERT_FALSE(set.insert(id));
}

TEST(FlatNodeSet, EraseWhileAtRestStaysUnindexedAndCorrect) {
  const auto ids = make_ids(30, 0xdead);
  FlatNodeSet set;
  for (const NodeId& id : ids) set.insert(id);
  set.shrink_to_fit();

  ASSERT_TRUE(set.erase(ids[0]));
  ASSERT_TRUE(set.erase(ids[29]));
  ASSERT_FALSE(set.contains(ids[0]));
  ASSERT_FALSE(set.contains(ids[29]));
  ASSERT_EQ(set.size(), 28u);
  std::size_t i = 1;
  for (const NodeId& id : set) ASSERT_EQ(id, ids[i++]);
  // ...and the set still accepts new members afterwards.
  const auto more = make_ids(5, 0xbeef);
  for (const NodeId& id : more) ASSERT_TRUE(set.insert(id));
  for (const NodeId& id : more) ASSERT_TRUE(set.contains(id));
}

TEST(FlatNodeMap, PutFindEraseKeepInsertionOrder) {
  const auto ids = make_ids(12, 0x3a9);
  FlatNodeMap<int> map;
  for (std::size_t i = 0; i < ids.size(); ++i)
    map.put(ids[i], static_cast<int>(i));
  map.put(ids[3], 333);  // overwrite keeps rank
  ASSERT_EQ(map.size(), ids.size());
  ASSERT_EQ(map.at(ids[3]), 333);

  std::size_t i = 0;
  for (const auto& [key, value] : map) ASSERT_EQ(key, ids[i++]);

  ASSERT_TRUE(map.erase(ids[5]));
  ASSERT_EQ(map.find(ids[5]), nullptr);
  ASSERT_EQ(map.size(), ids.size() - 1);
}

}  // namespace
}  // namespace hcube
