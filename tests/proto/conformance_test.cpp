// Protocol conformance registry (proto/conformance.h): table-driven checks
// that every MessageType round-trips through the name table, the size
// model and the codec, and that deliveries with no declared
// (status, type) contract are rejected and counted at every layer
// (node, overlay, trace).
#include "proto/conformance.h"

#include <string>

#include <gtest/gtest.h>

#include "core/trace.h"
#include "proto/codec.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::make_ids;

const IdParams kHex8{16, 8};

TableSnapshot tiny_snapshot(const IdParams& params) {
  UniqueIdGenerator gen(params, 99);
  const NodeId n = gen.next();
  TableSnapshot snap;
  snap.add(0, static_cast<std::uint8_t>(n.digit(0)), n, NeighborState::kS);
  return snap;
}

// One sample body per MessageType, in enum order. The static_asserts in
// conformance.h pin the registry to the enum; this pins the *test* to it:
// adding a message type without extending this list fails the size check.
std::vector<MessageBody> sample_bodies(const IdParams& params) {
  UniqueIdGenerator gen(params, 7);
  const NodeId a = gen.next();
  const NodeId b = gen.next();
  const TableSnapshot snap = tiny_snapshot(params);
  JoinNotiMsg noti;
  noti.table = snap;
  noti.sender_noti_level = 2;
  return {
      CpRstMsg{},
      CpRlyMsg{snap},
      JoinWaitMsg{},
      JoinWaitRlyMsg{true, a, snap},
      noti,
      JoinNotiRlyMsg{true, snap, false},
      InSysNotiMsg{},
      SpeNotiMsg{a, b},
      SpeNotiRlyMsg{a, b},
      RvNghNotiMsg{NeighborState::kT},
      RvNghNotiRlyMsg{NeighborState::kS},
      LeaveMsg{snap},
      LeaveRlyMsg{},
      NghDropMsg{},
      PingMsg{},
      PongMsg{},
      RepairQueryMsg{1, 2},
      RepairRlyMsg{1, 2, a},
      AnnounceMsg{snap},
      RelAckMsg{17},
  };
}

TEST(ConformanceRegistry, TableCoversEveryTypeInOrder) {
  for (std::size_t i = 0; i < kNumMessageTypes; ++i) {
    const auto t = static_cast<MessageType>(i);
    EXPECT_EQ(conformance_of(t).type, t) << i;
  }
}

TEST(ConformanceRegistry, EveryTypeRoundTripsThroughNameSizeAndCodec) {
  const std::vector<MessageBody> bodies = sample_bodies(kHex8);
  ASSERT_EQ(bodies.size(), kNumMessageTypes);
  UniqueIdGenerator gen(kHex8, 11);
  const NodeId sender = gen.next();

  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const MessageType t = type_of(bodies[i]);
    EXPECT_EQ(static_cast<std::size_t>(t), i) << "sample body out of order";
    EXPECT_STRNE(type_name(t), "UnknownMsg") << i;

    const Message msg{sender, bodies[i], 0, 5};
    const auto bytes = encode_message(msg, kHex8);
    EXPECT_EQ(bytes.size(), wire_size_bytes(msg, kHex8)) << type_name(t);
    const auto decoded = decode_message(bytes, kHex8);
    ASSERT_TRUE(decoded.has_value()) << type_name(t);
    EXPECT_EQ(type_of(decoded->body), t);
    EXPECT_EQ(decoded->gen, 5u);
  }
}

TEST(ConformanceRegistry, PredicatesAgreeWithRegistry) {
  std::size_t big = 0;
  for (std::size_t i = 0; i < kNumMessageTypes; ++i) {
    const auto t = static_cast<MessageType>(i);
    EXPECT_EQ(is_big_request(t), conformance_of(t).big_request) << i;
    EXPECT_EQ(echoes_request_gen(t), conformance_of(t).echoes_gen) << i;
    if (conformance_of(t).big_request) ++big;
  }
  EXPECT_EQ(big, 3u);  // §5.2: CpRst, JoinWait, JoinNoti
}

TEST(ConformanceRegistry, RepliesEchoTheRequestGeneration) {
  for (std::size_t i = 0; i < kNumMessageTypes; ++i) {
    const auto t = static_cast<MessageType>(i);
    const MessageContract& c = conformance_of(t);
    if (c.has_reply) {
      EXPECT_TRUE(conformance_of(c.reply).echoes_gen) << i;
    }
  }
}

// ---- runtime rejection paths ----

TEST(ConformanceRuntime, UndeclaredDeliveryIsRejectedAndCounted) {
  const IdParams params{4, 4};
  World world(params, 8);
  auto ids = make_ids(params, 2, 21);
  build_consistent_network(world.overlay, ids);
  Node& victim = world.overlay.at(ids[0]);
  ASSERT_TRUE(victim.is_s_node());

  // RelAckMsg is transport-internal: the registry declares no status in
  // which the protocol layer may handle it. Delivery must be dropped and
  // counted, not crash.
  const HostId from = world.overlay.host_of(ids[1]);
  victim.handle(from, Message{ids[1], RelAckMsg{3}});
  EXPECT_EQ(victim.conformance_stats().rejected_of(MessageType::kRelAck), 1u);
  EXPECT_EQ(victim.conformance_stats().total_rejected(), 1u);
  EXPECT_EQ(world.overlay.conformance().rejected_of(MessageType::kRelAck), 1u);
  EXPECT_TRUE(victim.is_s_node());  // state untouched

  // A declared pair is not counted.
  victim.handle(from, Message{ids[1], PingMsg{}});
  EXPECT_EQ(victim.conformance_stats().total_rejected(), 1u);
}

TEST(ConformanceRuntime, DepartedNodeRejectsJoinTraffic) {
  const IdParams params{4, 4};
  World world(params, 8);
  auto ids = make_ids(params, 3, 23);
  build_consistent_network(world.overlay, ids);
  leave_and_drain(world.overlay, ids[0]);
  Node& gone = world.overlay.at(ids[0]);
  ASSERT_EQ(gone.status(), NodeStatus::kDeparted);

  // kCpRst is only legal at S/L nodes; a departed receiver drops it.
  const HostId from = world.overlay.host_of(ids[1]);
  gone.handle(from, Message{ids[1], CpRstMsg{}});
  EXPECT_EQ(gone.conformance_stats().rejected_of(MessageType::kCpRst), 1u);
  // But a departed node still acks Leave (declared contract).
  gone.handle(from, Message{ids[1], LeaveMsg{tiny_snapshot(params)}});
  EXPECT_EQ(gone.conformance_stats().total_rejected(), 1u);
}

TEST(ConformanceRuntime, TraceAndHookObserveRejections) {
  const IdParams params{4, 4};
  World world(params, 8);
  auto ids = make_ids(params, 2, 27);
  build_consistent_network(world.overlay, ids);

  MessageTrace trace;
  trace.attach(world.overlay);
  std::size_t hook_calls = 0;
  // Chained after the trace's own subscription: both must fire.
  auto prev = world.overlay.on_conformance_reject;
  world.overlay.on_conformance_reject =
      [&, prev](const NodeId& at, NodeStatus st, MessageType t) {
        if (prev) prev(at, st, t);
        ++hook_calls;
        EXPECT_EQ(at, ids[0]);
        EXPECT_EQ(st, NodeStatus::kInSystem);
        EXPECT_EQ(t, MessageType::kRelAck);
      };

  Node& victim = world.overlay.at(ids[0]);
  const HostId from = world.overlay.host_of(ids[1]);
  victim.handle(from, Message{ids[1], RelAckMsg{}});
  victim.handle(from, Message{ids[1], RelAckMsg{}});

  EXPECT_EQ(hook_calls, 2u);
  EXPECT_EQ(trace.conformance_rejects(), 2u);
  EXPECT_EQ(trace.conformance().rejected_of(MessageType::kRelAck), 2u);
  trace.clear();
  EXPECT_EQ(trace.conformance_rejects(), 0u);
}

TEST(ConformanceRuntime, NormalJoinProducesNoRejections) {
  const IdParams params{4, 5};
  World world(params, 24);
  auto ids = make_ids(params, 20, 31);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 10);
  const std::vector<NodeId> w(ids.begin() + 10, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(4);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());
  EXPECT_EQ(world.overlay.conformance().total_rejected(), 0u);
  for (const auto& node : world.overlay.nodes())
    EXPECT_EQ(node->conformance_stats().total_rejected(), 0u);
}

}  // namespace
}  // namespace hcube
