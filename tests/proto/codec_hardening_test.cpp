// Codec hardening (robustness): decode_message() must be total. For every
// one of the twenty message types, every strict-prefix truncation returns
// nullopt and seeded random bit flips never abort — decode may succeed or
// fail, but it never CHECKs or crashes. Also pins the reliability
// envelope: rel_seq and gen survive the round trip.
#include "proto/codec.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"
#include "util/rng.h"

namespace hcube {
namespace {

const IdParams kHex8{16, 8};

TableSnapshot sample_snapshot(const IdParams& params, std::uint64_t seed) {
  TableSnapshot snap;
  UniqueIdGenerator gen(params, seed);
  const NodeId owner = gen.next();
  for (std::uint32_t i = 0; i < params.num_digits; ++i)
    snap.add(static_cast<std::uint8_t>(i),
             static_cast<std::uint8_t>(owner.digit(i)), owner,
             NeighborState::kS);
  for (int k = 0; k < 4; ++k) {
    const NodeId other = gen.next();
    const auto lvl = static_cast<std::uint8_t>(owner.csuf_len(other));
    const auto dig = static_cast<std::uint8_t>(other.digit(lvl));
    bool dup = false;
    for (const auto& e : snap.entries)
      if (e.level == lvl && e.digit == dig) dup = true;
    if (!dup) snap.add(lvl, dig, other, NeighborState::kT);
  }
  return snap;
}

// One representative message per type, non-trivial payloads where the type
// has any.
std::vector<Message> one_of_each(const IdParams& params) {
  UniqueIdGenerator gen(params, 99);
  const NodeId sender = gen.next();
  const NodeId a = gen.next(), b = gen.next();
  const TableSnapshot snap = sample_snapshot(params, 101);

  JoinNotiMsg noti;
  noti.table = snap;
  noti.sender_noti_level = 2;
  BitVec filled(params.num_digits * params.base);
  filled.set(1);
  filled.set(params.num_digits * params.base - 1);
  noti.filled = filled;

  std::vector<Message> all;
  all.push_back({sender, CpRstMsg{}});
  all.push_back({sender, CpRlyMsg{snap}});
  all.push_back({sender, JoinWaitMsg{}});
  all.push_back({sender, JoinWaitRlyMsg{true, a, snap}});
  all.push_back({sender, noti});
  all.push_back({sender, JoinNotiRlyMsg{true, snap, true}});
  all.push_back({sender, InSysNotiMsg{}});
  all.push_back({sender, SpeNotiMsg{a, b}});
  all.push_back({sender, SpeNotiRlyMsg{a, b}});
  all.push_back({sender, RvNghNotiMsg{NeighborState::kT}});
  all.push_back({sender, RvNghNotiRlyMsg{NeighborState::kS}});
  all.push_back({sender, LeaveMsg{snap}});
  all.push_back({sender, LeaveRlyMsg{}});
  all.push_back({sender, NghDropMsg{}});
  all.push_back({sender, PingMsg{}});
  all.push_back({sender, PongMsg{}});
  all.push_back({sender, RepairQueryMsg{2, 5}});
  all.push_back({sender, RepairRlyMsg{2, 5, a}});
  all.push_back({sender, AnnounceMsg{snap}});
  all.push_back({sender, RelAckMsg{12345}});
  return all;
}

TEST(CodecHardening, CoversEveryMessageType) {
  const auto all = one_of_each(kHex8);
  ASSERT_EQ(all.size(), kNumMessageTypes);
  std::vector<bool> seen(kNumMessageTypes, false);
  for (const Message& m : all)
    seen[static_cast<std::size_t>(type_of(m.body))] = true;
  for (std::size_t t = 0; t < kNumMessageTypes; ++t)
    EXPECT_TRUE(seen[t]) << type_name(static_cast<MessageType>(t));
}

TEST(CodecHardening, EveryStrictPrefixIsRejected) {
  // The format is self-delimiting with no trailing slack, so no strict
  // prefix of a valid encoding can itself be valid — and none may abort.
  for (const Message& msg : one_of_each(kHex8)) {
    const auto bytes = encode_message(msg, kHex8);
    ASSERT_TRUE(decode_message(bytes, kHex8).has_value())
        << type_name(type_of(msg.body));
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::vector<std::uint8_t> cut(
          bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_FALSE(decode_message(cut, kHex8).has_value())
          << type_name(type_of(msg.body)) << " truncated to " << len;
    }
  }
}

TEST(CodecHardening, RandomBitFlipsNeverAbort) {
  // Corruption may be detected (nullopt) or land on another valid message;
  // either way decode must return, and a successful decode must re-encode
  // without aborting (the decoded message is structurally valid).
  Rng rng(2026);
  for (const Message& msg : one_of_each(kHex8)) {
    const auto bytes = encode_message(msg, kHex8);
    for (int trial = 0; trial < 300; ++trial) {
      auto corrupt = bytes;
      const int flips = 1 + static_cast<int>(rng.next_below(3));
      for (int f = 0; f < flips; ++f) {
        const std::size_t bit = rng.next_below(corrupt.size() * 8);
        corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      const auto decoded = decode_message(corrupt, kHex8);
      if (decoded.has_value()) (void)encode_message(*decoded, kHex8);
    }
  }
}

TEST(CodecHardening, ReliabilityEnvelopeRoundTrips) {
  UniqueIdGenerator gen(kHex8, 7);
  Message msg{gen.next(), JoinWaitMsg{}};
  msg.rel_seq = 0x00C0FFEE;
  msg.gen = 42;
  const auto bytes = encode_message(msg, kHex8);
  const auto decoded = decode_message(bytes, kHex8);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rel_seq, 0x00C0FFEEu);
  EXPECT_EQ(decoded->gen, 42u);
  // The envelope is part of the byte format, not ignored padding.
  Message other = msg;
  other.rel_seq = 7;
  EXPECT_NE(encode_message(other, kHex8), bytes);
}

}  // namespace
}  // namespace hcube
