// Wire codec: round trips for all eleven message types, byte-exactness
// against the size model, and rejection of malformed inputs.
#include "proto/codec.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hcube {
namespace {

using testing::id_of;

const IdParams kHex8{16, 8};
const IdParams kOct5{8, 5};
const IdParams kTern6{3, 6};  // non-power-of-two base: 2 bits per digit

TableSnapshot sample_snapshot(const IdParams& params) {
  TableSnapshot snap;
  UniqueIdGenerator gen(params, 77);
  const NodeId owner = gen.next();
  // Own entries on every level, plus a few cross entries.
  for (std::uint32_t i = 0; i < params.num_digits; ++i)
    snap.add(static_cast<std::uint8_t>(i),
             static_cast<std::uint8_t>(owner.digit(i)), owner,
             NeighborState::kS);
  for (int k = 0; k < 5; ++k) {
    const NodeId other = gen.next();
    const auto lvl = static_cast<std::uint8_t>(owner.csuf_len(other));
    const auto dig = static_cast<std::uint8_t>(other.digit(lvl));
    bool dup = false;
    for (const auto& e : snap.entries)
      if (e.level == lvl && e.digit == dig) dup = true;
    if (!dup) snap.add(lvl, dig, other, NeighborState::kT);
  }
  return snap;
}

void expect_roundtrip(const Message& msg, const IdParams& params) {
  const auto bytes = encode_message(msg, params);
  EXPECT_EQ(bytes.size(), wire_size_bytes(msg, params));
  const auto decoded = decode_message(bytes, params);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, msg.sender);
  EXPECT_EQ(type_of(decoded->body), type_of(msg.body));
  EXPECT_EQ(wire_size_bytes(*decoded, params), bytes.size());
  // Re-encoding the decoded message must be byte-identical.
  EXPECT_EQ(encode_message(*decoded, params), bytes);
}

TEST(Codec, EmptyBodiedMessages) {
  UniqueIdGenerator gen(kHex8, 1);
  const NodeId sender = gen.next();
  expect_roundtrip({sender, CpRstMsg{}}, kHex8);
  expect_roundtrip({sender, JoinWaitMsg{}}, kHex8);
  expect_roundtrip({sender, InSysNotiMsg{}}, kHex8);
}

TEST(Codec, SnapshotCarryingMessages) {
  UniqueIdGenerator gen(kHex8, 2);
  const NodeId sender = gen.next();
  const TableSnapshot snap = sample_snapshot(kHex8);

  expect_roundtrip({sender, CpRlyMsg{snap}}, kHex8);
  expect_roundtrip({sender, JoinWaitRlyMsg{true, gen.next(), snap}}, kHex8);
  expect_roundtrip({sender, JoinWaitRlyMsg{false, gen.next(), snap}}, kHex8);
  expect_roundtrip({sender, JoinNotiRlyMsg{true, snap, false}}, kHex8);
  expect_roundtrip({sender, JoinNotiRlyMsg{false, snap, true}}, kHex8);

  JoinNotiMsg noti;
  noti.table = snap;
  noti.sender_noti_level = 3;
  expect_roundtrip({sender, noti}, kHex8);
}

TEST(Codec, SnapshotContentsSurvive) {
  UniqueIdGenerator gen(kOct5, 3);
  const NodeId sender = gen.next();
  const TableSnapshot snap = sample_snapshot(kOct5);
  const auto bytes = encode_message({sender, CpRlyMsg{snap}}, kOct5);
  const auto decoded = decode_message(bytes, kOct5);
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<CpRlyMsg>(decoded->body).table;
  ASSERT_EQ(got.size(), snap.size());
  // Both are in (level, digit) order after the codec's bitmap ordering;
  // compare as sets of tuples.
  for (const auto& e : snap.entries) {
    bool found = false;
    for (const auto& g : got.entries) {
      if (g.level == e.level && g.digit == e.digit) {
        EXPECT_EQ(g.node, e.node);
        EXPECT_EQ(g.state, e.state);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "entry (" << int(e.level) << "," << int(e.digit)
                       << ") lost";
  }
}

TEST(Codec, JoinNotiWithBitVector) {
  UniqueIdGenerator gen(kHex8, 4);
  const NodeId sender = gen.next();
  JoinNotiMsg noti;
  noti.table = sample_snapshot(kHex8);
  noti.sender_noti_level = 2;
  BitVec filled(kHex8.num_digits * kHex8.base);
  filled.set(3);
  filled.set(64);
  filled.set(127);
  noti.filled = filled;

  const auto bytes = encode_message({sender, noti}, kHex8);
  EXPECT_EQ(bytes.size(), wire_size_bytes(Message{sender, noti}, kHex8));
  const auto decoded = decode_message(bytes, kHex8);
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<JoinNotiMsg>(decoded->body);
  EXPECT_EQ(got.sender_noti_level, 2);
  ASSERT_TRUE(got.filled.has_value());
  EXPECT_EQ(*got.filled, filled);
}

TEST(Codec, SpeNotiAndReverseMessages) {
  UniqueIdGenerator gen(kHex8, 5);
  const NodeId sender = gen.next();
  expect_roundtrip({sender, SpeNotiMsg{gen.next(), gen.next()}}, kHex8);
  expect_roundtrip({sender, SpeNotiRlyMsg{gen.next(), gen.next()}}, kHex8);
  expect_roundtrip({sender, RvNghNotiMsg{NeighborState::kT}}, kHex8);
  expect_roundtrip({sender, RvNghNotiMsg{NeighborState::kS}}, kHex8);
  expect_roundtrip({sender, RvNghNotiRlyMsg{NeighborState::kS}}, kHex8);
}

TEST(Codec, SpeNotiPayloadSurvives) {
  UniqueIdGenerator gen(kHex8, 6);
  const NodeId sender = gen.next();
  const NodeId x = gen.next(), y = gen.next();
  const auto decoded =
      decode_message(encode_message({sender, SpeNotiMsg{x, y}}, kHex8), kHex8);
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<SpeNotiMsg>(decoded->body);
  EXPECT_EQ(got.x, x);
  EXPECT_EQ(got.y, y);
}

TEST(Codec, LeaveProtocolMessages) {
  UniqueIdGenerator gen(kHex8, 14);
  const NodeId sender = gen.next();
  expect_roundtrip({sender, LeaveMsg{sample_snapshot(kHex8)}}, kHex8);
  expect_roundtrip({sender, LeaveMsg{}}, kHex8);  // empty candidate set
  expect_roundtrip({sender, LeaveRlyMsg{}}, kHex8);
  expect_roundtrip({sender, NghDropMsg{}}, kHex8);
}

TEST(Codec, RecoveryMessages) {
  UniqueIdGenerator gen(kHex8, 15);
  const NodeId sender = gen.next();
  expect_roundtrip({sender, PingMsg{}}, kHex8);
  expect_roundtrip({sender, PongMsg{}}, kHex8);
  expect_roundtrip({sender, RepairQueryMsg{3, 7}}, kHex8);
  expect_roundtrip({sender, RepairRlyMsg{3, 7, NodeId{}}}, kHex8);
  expect_roundtrip({sender, RepairRlyMsg{2, 5, gen.next()}}, kHex8);
  expect_roundtrip({sender, AnnounceMsg{sample_snapshot(kHex8)}}, kHex8);

  // Payload integrity.
  const NodeId cand = gen.next();
  const auto decoded = decode_message(
      encode_message({sender, RepairRlyMsg{2, cand.digit(2), cand}}, kHex8),
      kHex8);
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<RepairRlyMsg>(decoded->body);
  EXPECT_EQ(got.level, 2);
  EXPECT_EQ(got.candidate, cand);
}

TEST(Codec, NonPowerOfTwoBase) {
  UniqueIdGenerator gen(kTern6, 7);
  const NodeId sender = gen.next();
  expect_roundtrip({sender, CpRlyMsg{sample_snapshot(kTern6)}}, kTern6);
}

TEST(Codec, LargeIdSpace) {
  const IdParams params{16, 40};
  UniqueIdGenerator gen(params, 8);
  const NodeId sender = gen.next();
  expect_roundtrip({sender, JoinWaitRlyMsg{true, gen.next(),
                                           sample_snapshot(params)}},
                   params);
}

TEST(Codec, RejectsMalformedInput) {
  UniqueIdGenerator gen(kHex8, 9);
  const NodeId sender = gen.next();
  auto bytes = encode_message({sender, CpRlyMsg{sample_snapshot(kHex8)}},
                              kHex8);

  // Truncation at every prefix length must fail, not crash.
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(decode_message(cut, kHex8).has_value()) << "len " << len;
  }
  // Bad magic.
  auto bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(decode_message(bad, kHex8).has_value());
  // Bad version.
  bad = bytes;
  bad[4] = 99;
  EXPECT_FALSE(decode_message(bad, kHex8).has_value());
  // Unknown type.
  bad = bytes;
  bad[5] = 42;
  EXPECT_FALSE(decode_message(bad, kHex8).has_value());
  // Trailing garbage.
  bad = bytes;
  bad.push_back(0);
  EXPECT_FALSE(decode_message(bad, kHex8).has_value());
}

TEST(Codec, RejectsWrongParams) {
  // A message encoded for one ID shape must not decode under another.
  UniqueIdGenerator gen(kHex8, 10);
  const auto bytes = encode_message({gen.next(), JoinWaitMsg{}}, kHex8);
  EXPECT_FALSE(decode_message(bytes, IdParams{16, 12}).has_value());
}

TEST(Codec, FuzzRandomBytesNeverCrash) {
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    // Valid-ish header sometimes, to reach deeper parse paths.
    if (junk.size() >= 6 && trial % 3 == 0) {
      junk[0] = 'H';
      junk[1] = 'C';
      junk[2] = 'U';
      junk[3] = 'B';
      junk[4] = 1;
      junk[5] = static_cast<std::uint8_t>(rng.next_below(11));
    }
    (void)decode_message(junk, kHex8);  // must not crash or CHECK-fail
  }
  SUCCEED();
}

TEST(Codec, SimulatedJoinTrafficRoundTrips) {
  // Every message the protocol actually produces during a join wave must
  // round-trip bit-exactly (codec completeness against real traffic).
  using testing::World;
  using testing::make_ids;
  const IdParams params{4, 6};
  ProtocolOptions options;
  options.snapshot_policy = SnapshotPolicy::kBitVector;
  World world(params, 40, options);
  auto ids = make_ids(params, 30, 12);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 20);
  const std::vector<NodeId> w(ids.begin() + 20, ids.end());
  build_consistent_network(world.overlay, v);

  std::size_t checked = 0;
  world.overlay.on_message = [&](const NodeId& from, const NodeId&,
                                 const MessageBody& body) {
    const Message msg{from, body};
    const auto bytes = encode_message(msg, params);
    ASSERT_EQ(bytes.size(), wire_size_bytes(msg, params));
    const auto decoded = decode_message(bytes, params);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(encode_message(*decoded, params), bytes);
    ++checked;
  };
  Rng rng(13);
  join_concurrently(world.overlay, w, v, rng);
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace hcube
