#include "proto/messages.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hcube {
namespace {

using testing::id_of;

const IdParams kHex8{16, 8};
const IdParams kHex40{16, 40};

TEST(Messages, TypeOfCoversAllVariants) {
  EXPECT_EQ(type_of(CpRstMsg{}), MessageType::kCpRst);
  EXPECT_EQ(type_of(CpRlyMsg{}), MessageType::kCpRly);
  EXPECT_EQ(type_of(JoinWaitMsg{}), MessageType::kJoinWait);
  EXPECT_EQ(type_of(JoinWaitRlyMsg{}), MessageType::kJoinWaitRly);
  EXPECT_EQ(type_of(JoinNotiMsg{}), MessageType::kJoinNoti);
  EXPECT_EQ(type_of(JoinNotiRlyMsg{}), MessageType::kJoinNotiRly);
  EXPECT_EQ(type_of(InSysNotiMsg{}), MessageType::kInSysNoti);
  EXPECT_EQ(type_of(SpeNotiMsg{}), MessageType::kSpeNoti);
  EXPECT_EQ(type_of(SpeNotiRlyMsg{}), MessageType::kSpeNotiRly);
  EXPECT_EQ(type_of(RvNghNotiMsg{}), MessageType::kRvNghNoti);
  EXPECT_EQ(type_of(RvNghNotiRlyMsg{}), MessageType::kRvNghNotiRly);
  EXPECT_EQ(type_of(LeaveMsg{}), MessageType::kLeave);
  EXPECT_EQ(type_of(LeaveRlyMsg{}), MessageType::kLeaveRly);
  EXPECT_EQ(type_of(NghDropMsg{}), MessageType::kNghDrop);
  EXPECT_EQ(type_of(PingMsg{}), MessageType::kPing);
  EXPECT_EQ(type_of(PongMsg{}), MessageType::kPong);
  EXPECT_EQ(type_of(RepairQueryMsg{}), MessageType::kRepairQuery);
  EXPECT_EQ(type_of(RepairRlyMsg{}), MessageType::kRepairRly);
  EXPECT_EQ(type_of(AnnounceMsg{}), MessageType::kAnnounce);
}

TEST(Messages, TypeNamesMatchFigure4) {
  EXPECT_STREQ(type_name(MessageType::kCpRst), "CpRstMsg");
  EXPECT_STREQ(type_name(MessageType::kJoinWait), "JoinWaitMsg");
  EXPECT_STREQ(type_name(MessageType::kJoinNoti), "JoinNotiMsg");
  EXPECT_STREQ(type_name(MessageType::kSpeNoti), "SpeNotiMsg");
  EXPECT_STREQ(type_name(MessageType::kRvNghNotiRly), "RvNghNotiRlyMsg");
}

TEST(Messages, BigRequestClassification) {
  // Section 5.2: CpRstMsg, JoinWaitMsg and JoinNotiMsg (and their replies)
  // are the "big" messages; everything else is small.
  EXPECT_TRUE(is_big_request(MessageType::kCpRst));
  EXPECT_TRUE(is_big_request(MessageType::kJoinWait));
  EXPECT_TRUE(is_big_request(MessageType::kJoinNoti));
  EXPECT_FALSE(is_big_request(MessageType::kInSysNoti));
  EXPECT_FALSE(is_big_request(MessageType::kSpeNoti));
  EXPECT_FALSE(is_big_request(MessageType::kRvNghNoti));
}

TEST(Messages, IdWireBytes) {
  EXPECT_EQ(id_wire_bytes(kHex8), 4u);    // 8 * 4 bits
  EXPECT_EQ(id_wire_bytes(kHex40), 20u);  // 40 * 4 bits = 160 bits
  EXPECT_EQ(id_wire_bytes(IdParams{2, 8}), 1u);
  EXPECT_EQ(id_wire_bytes(IdParams{3, 8}), 2u);  // 2 bits per digit
  EXPECT_EQ(node_ref_wire_bytes(kHex8), 10u);    // id + IPv4:port
}

TEST(Messages, SnapshotSizeGrowsWithEntries) {
  TableSnapshot snap;
  const std::size_t empty_size = snapshot_wire_bytes(snap, kHex8);
  EXPECT_EQ(empty_size, (8u * 16u + 7u) / 8u);  // presence bitmap only
  snap.add(0, 1, id_of("00000001", kHex8), NeighborState::kS);
  EXPECT_EQ(snapshot_wire_bytes(snap, kHex8),
            empty_size + node_ref_wire_bytes(kHex8) + 1);
}

TEST(Messages, SmallMessagesAreSmall) {
  const NodeId sender = id_of("00000001", kHex8);
  const std::size_t small =
      wire_size_bytes(Message{sender, InSysNotiMsg{}}, kHex8);
  EXPECT_LT(small, 64u);
  EXPECT_EQ(wire_size_bytes(Message{sender, RvNghNotiMsg{}}, kHex8),
            small + 1);
}

TEST(Messages, BigMessageDominatedByTable) {
  const NodeId sender = id_of("00000001", kHex8);
  JoinNotiMsg noti;
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 16; ++j)
      noti.table.add(static_cast<std::uint8_t>(i),
                     static_cast<std::uint8_t>(j),
                     id_of("00000001", kHex8), NeighborState::kS);
  const std::size_t big = wire_size_bytes(Message{sender, noti}, kHex8);
  const std::size_t small =
      wire_size_bytes(Message{sender, JoinWaitMsg{}}, kHex8);
  EXPECT_GT(big, 10 * small);
}

TEST(Messages, BitVectorAddsItsBytes) {
  const NodeId sender = id_of("00000001", kHex8);
  JoinNotiMsg without;
  JoinNotiMsg with;
  with.filled = BitVec(8 * 16);
  EXPECT_EQ(wire_size_bytes(Message{sender, with}, kHex8),
            wire_size_bytes(Message{sender, without}, kHex8) + 16);
}

TEST(Messages, EnvelopeScalesWithIdLength) {
  // Same body, larger d: the envelope grows by the difference in sender
  // reference size (the ID is longer).
  const NodeId s8 = id_of("00000001", kHex8);
  const NodeId s40 =
      id_of(std::string(39, '0') + "1", kHex40);
  const std::size_t sz8 = wire_size_bytes(Message{s8, JoinWaitMsg{}}, kHex8);
  const std::size_t sz40 =
      wire_size_bytes(Message{s40, JoinWaitMsg{}}, kHex40);
  EXPECT_EQ(sz40 - sz8, id_wire_bytes(kHex40) - id_wire_bytes(kHex8));
}

}  // namespace
}  // namespace hcube
