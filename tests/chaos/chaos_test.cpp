// End-to-end tests of the deterministic chaos engine (src/chaos/): schedule
// sampling and serialization, mixed-churn convergence under the invariant
// oracles, bit-reproducibility, and the shrink -> serialize -> replay loop
// on a deliberately broken fixture.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/engine.h"
#include "chaos/oracles.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"
#include "test_util.h"

namespace hcube::chaos {
namespace {

TEST(Profiles, BuiltinsResolveByName) {
  ASSERT_FALSE(profiles().empty());
  EXPECT_NE(find_profile("mixed"), nullptr);
  EXPECT_NE(find_profile("partition"), nullptr);
  EXPECT_EQ(find_profile("no-such-profile"), nullptr);
}

TEST(Sampler, IsDeterministicAndEndsWithBarrier) {
  const ChurnProfile& mixed = *find_profile("mixed");
  const ChurnScript a = sample_script(7, mixed, 30);
  const ChurnScript b = sample_script(7, mixed, 30);
  EXPECT_EQ(a.serialize(), b.serialize());
  ASSERT_FALSE(a.steps.empty());
  EXPECT_EQ(a.steps.back().kind, StepKind::kBarrier);
  // A different seed yields a different schedule.
  EXPECT_NE(a.serialize(), sample_script(8, mixed, 30).serialize());
}

TEST(Serialization, RoundTripsExactly) {
  const ChurnScript script = sample_script(11, *find_profile("partition"), 25);
  std::string error;
  const auto parsed = ChurnScript::parse(script.serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->serialize(), script.serialize());
  EXPECT_EQ(parsed->steps.size(), script.steps.size());
  EXPECT_EQ(parsed->config.n_seed, script.config.n_seed);
  EXPECT_EQ(parsed->config.heal_rounds, script.config.heal_rounds);
}

TEST(Serialization, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ChurnScript::parse("not a schedule", &error).has_value());
  EXPECT_FALSE(error.empty());

  // Truncation (missing "end" terminator) must not parse as a valid script.
  std::string text = sample_script(1, *find_profile("mixed"), 10).serialize();
  text.resize(text.rfind("end"));
  EXPECT_FALSE(ChurnScript::parse(text, &error).has_value());

  // Unknown step kind.
  EXPECT_FALSE(
      ChurnScript::parse("hchaos v1\nstep frobnicate 1 0 0 0\nend\n", &error)
          .has_value());
}

// The ISSUE acceptance run: >= 3 seeds of mixed churn — joins, leaves,
// crashes, restarts, and at least one partition window per run — ending
// with every oracle clean (Definition 3.8 consistency over the settled
// membership, reverse-neighbor symmetry, liveness, zero leaked join state,
// transport layering).
TEST(MixedChurn, ConvergesCleanAcrossSeeds) {
  StepCounts total;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    ChurnScript script = sample_script(seed, *find_profile("mixed"), 28);
    // Guarantee one partition window per run regardless of what the sampler
    // drew: splice it in early so later churn overlaps the cut.
    ChurnStep cut;
    cut.kind = StepKind::kPartition;
    cut.gap_ms = 5.0;
    cut.pick = seed * 1000003ULL + 17;
    cut.duration_ms = 800.0;
    script.steps.insert(script.steps.begin() + 1, cut);

    const ChaosResult result = run_script(script);
    EXPECT_TRUE(result.ok) << "seed " << seed << "\n" << result.summary();
    ASSERT_FALSE(result.barriers.empty());
    EXPECT_TRUE(result.barriers.back().ok());
    EXPECT_GE(result.counts.partitions, 1u) << "seed " << seed;
    EXPECT_GT(result.faults_injected, 0u) << "seed " << seed;
    total.joins += result.counts.joins;
    total.leaves += result.counts.leaves;
    total.crashes += result.counts.crashes;
    total.restarts += result.counts.restarts;
    total.partitions += result.counts.partitions;
  }
  // Across the three seeds every churn kind must actually have fired.
  EXPECT_GT(total.joins, 0u);
  EXPECT_GT(total.leaves, 0u);
  EXPECT_GT(total.crashes, 0u);
  EXPECT_GT(total.restarts, 0u);
  EXPECT_GE(total.partitions, 3u);
}

// Bit-reproducibility: the engine is a pure function of the script, so two
// executions agree on every counter, every verdict, and the folded digest.
TEST(Determinism, SameScriptSameDigest) {
  const ChurnScript script = sample_script(3, *find_profile("partition"), 40);
  const ChaosResult a = run_script(script);
  const ChaosResult b = run_script(script);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.partition_drops, b.partition_drops);
  ASSERT_EQ(a.barriers.size(), b.barriers.size());
  for (std::size_t i = 0; i < a.barriers.size(); ++i) {
    EXPECT_EQ(a.barriers[i].at_ms, b.barriers[i].at_ms);
    EXPECT_EQ(a.barriers[i].failures, b.barriers[i].failures);
  }
}

// Oracles directly: a consistent network passes; crashing a node without
// running repair leaves dangling references the consistency oracle flags.
TEST(Oracles, DetectUnrepairedCrashDamage) {
  const IdParams params{16, 8};
  testing::World world(params, 16);
  const auto ids = testing::make_ids(params, 16, 21);
  build_consistent_network(world.overlay, ids);
  EXPECT_TRUE(run_oracles(world.overlay).ok());

  world.overlay.crash(ids[5]);
  const OracleReport damaged = run_oracles(world.overlay);
  EXPECT_FALSE(damaged.ok());

  // Repair reclaims the dangling entries; the oracles go clean again.
  world.overlay.repair_all();
  world.queue.run();
  EXPECT_TRUE(run_oracles(world.overlay).ok()) << run_oracles(world.overlay)
                                                      .failures.front();
}

// The deliberately seeded bug fixture of the ISSUE: heal_rounds = 0 turns
// barrier-time repair off, so a crash leaves dangling neighbors and the
// consistency oracle fails. The shrinker must reduce the noisy schedule to
// the one step that matters, and the serialized artifact must replay to the
// same failure.
ChurnScript broken_fixture() {
  ChurnScript script;
  script.config.n_seed = 16;
  script.config.heal_rounds = 0;  // the seeded bug: barriers never repair
  script.config.drop = 0.0;       // keep the transport clean so the crash is
  script.config.duplicate = 0.0;  // provably the only source of damage
  auto step = [](StepKind kind, std::uint32_t id_index, std::uint64_t pick) {
    ChurnStep s;
    s.kind = kind;
    s.gap_ms = 10.0;
    s.id_index = id_index;
    s.pick = pick;
    return s;
  };
  script.steps = {
      step(StepKind::kJoin, 0, 7),   step(StepKind::kJoin, 1, 13),
      step(StepKind::kBarrier, 0, 0), step(StepKind::kLeave, 0, 21),
      step(StepKind::kCrash, 0, 5),  step(StepKind::kJoin, 2, 31),
      step(StepKind::kBarrier, 0, 0),
  };
  return script;
}

TEST(ShrinkAndReplay, MinimizedScheduleReproducesTheFailure) {
  const ChurnScript fixture = broken_fixture();
  ASSERT_FALSE(run_script(fixture).ok)
      << "fixture is supposed to fail the consistency oracle";

  const ShrinkResult shrunk = shrink_script(fixture);
  EXPECT_TRUE(shrunk.input_failed);
  EXPECT_FALSE(shrunk.minimal_result.ok);
  EXPECT_GT(shrunk.runs, 0u);
  // With a clean transport and graceful leaves, the crash is the only step
  // able to break consistency — ddmin's 1-minimal schedule is exactly it.
  ASSERT_EQ(shrunk.minimal.steps.size(), 1u);
  EXPECT_EQ(shrunk.minimal.steps[0].kind, StepKind::kCrash);

  // Artifact loop: serialize -> parse -> run reproduces the failure bit for
  // bit (same digest, same first failing oracle line).
  std::string error;
  const auto parsed = ChurnScript::parse(shrunk.minimal.serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const ChaosResult replayed = run_script(*parsed);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.digest, shrunk.minimal_result.digest);
  EXPECT_EQ(replayed.first_failure(), shrunk.minimal_result.first_failure());
}

TEST(Shrink, PassingInputIsReturnedUnshrunk) {
  ChurnScript script = broken_fixture();
  script.config.heal_rounds = 2;  // repair on: the same schedule passes
  ASSERT_TRUE(run_script(script).ok);
  const ShrinkResult result = shrink_script(script);
  EXPECT_FALSE(result.input_failed);
  EXPECT_EQ(result.minimal.steps.size(), script.steps.size());
}

}  // namespace
}  // namespace hcube::chaos
