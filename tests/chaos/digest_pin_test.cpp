// Pinned chaos digests: the engine is a pure function of (seed, profile,
// steps), so these exact FNV-1a folds must reproduce on every build. A
// mismatch means event ordering changed somewhere — a new container with a
// different iteration order, a scheduling tweak, a protocol edit — and is
// either a bug or a deliberate change that must re-pin these constants and
// say so in its change notes.
//
// Current values date from the dense-index storage refactor (interned
// NodeIds + flat insertion-ordered containers), which replaced the
// allocator-order iteration of the old unordered_map/set storage and
// legitimately moved every digest.
#include <gtest/gtest.h>

#include <cstdint>

#include "chaos/engine.h"
#include "chaos/schedule.h"

namespace hcube::chaos {
namespace {

struct PinnedRun {
  const char* profile;
  std::uint64_t seed;
  std::uint64_t digest;
};

constexpr PinnedRun kPins[] = {
    {"mixed", 1, 0x4e708fdad6a6665cULL},
    {"mixed", 2, 0x6bbc038815a4f76dULL},
    {"mixed", 3, 0xe06503c059d04504ULL},
    {"mixed", 4, 0xc3f27e3891256abcULL},
    {"partition", 1, 0x2c4a2dd36f6c6c6aULL},
    {"partition", 2, 0xf5616b696e009800ULL},
    {"partition", 3, 0x9a1af6644c43f196ULL},
    {"partition", 4, 0x09752f6f7ab1f620ULL},
};

TEST(DigestPin, FortyStepRunsMatchPinnedValues) {
  for (const PinnedRun& pin : kPins) {
    const ChurnProfile* profile = find_profile(pin.profile);
    ASSERT_NE(profile, nullptr) << pin.profile;
    const ChurnScript script = sample_script(pin.seed, *profile, 40);
    const ChaosResult result = run_script(script);
    EXPECT_EQ(result.digest, pin.digest)
        << pin.profile << " seed " << pin.seed << ": got 0x" << std::hex
        << result.digest << ", pinned 0x" << pin.digest
        << " — see the header comment before re-pinning";
  }
}

}  // namespace
}  // namespace hcube::chaos
