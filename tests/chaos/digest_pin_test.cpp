// Pinned chaos digests: the engine is a pure function of (seed, profile,
// steps), so these exact FNV-1a folds must reproduce on every build. A
// mismatch means event ordering changed somewhere — a new container with a
// different iteration order, a scheduling tweak, a protocol edit — and is
// either a bug or a deliberate change that must re-pin these constants and
// say so in its change notes.
//
// Current values date from the misbehaving-node tier: the run digest now
// folds the five adversary counters (zero in these fail-stop profiles, but
// folded unconditionally so adversary runs pin too), which legitimately
// moved every digest. Previous re-pin: the dense-index storage refactor.
#include <gtest/gtest.h>

#include <cstdint>

#include "chaos/engine.h"
#include "chaos/schedule.h"

namespace hcube::chaos {
namespace {

struct PinnedRun {
  const char* profile;
  std::uint64_t seed;
  std::uint64_t digest;
};

constexpr PinnedRun kPins[] = {
    {"mixed", 1, 0x91aa0e9c022864bcULL},
    {"mixed", 2, 0x4926379a57c3fb6dULL},
    {"mixed", 3, 0x87a0f3e3f6163a64ULL},
    {"mixed", 4, 0xc18b141a4606d53cULL},
    {"partition", 1, 0xb3567441201b056aULL},
    {"partition", 2, 0x16139a2f8149d6e0ULL},
    {"partition", 3, 0xb959f1e4d5916d36ULL},
    {"partition", 4, 0x46b05fe0f3689660ULL},
};

TEST(DigestPin, FortyStepRunsMatchPinnedValues) {
  for (const PinnedRun& pin : kPins) {
    const ChurnProfile* profile = find_profile(pin.profile);
    ASSERT_NE(profile, nullptr) << pin.profile;
    const ChurnScript script = sample_script(pin.seed, *profile, 40);
    const ChaosResult result = run_script(script);
    EXPECT_EQ(result.digest, pin.digest)
        << pin.profile << " seed " << pin.seed << ": got 0x" << std::hex
        << result.digest << ", pinned 0x" << pin.digest
        << " — see the header comment before re-pinning";
  }
}

}  // namespace
}  // namespace hcube::chaos
