// Crash -> restart -> rejoin under the same NodeId.
//
// The crash-recovery lifecycle (Node::restart) revives a crashed node at
// its original transport endpoint and re-enters the join protocol under a
// bumped attempt generation. The tests pin the two properties that make
// that sound:
//   * stale rejection — replies sent to the pre-crash incarnation that are
//     still in flight when the node restarts carry the dead attempt's
//     generation and are rejected (JoinStats::stale_rejected), and
//   * convergence — the restarted node settles again and the full
//     consistency audit passes, including for builder-installed seed nodes
//     whose ID saturates the network's tables before their first join ever
//     runs (the generation floor in NodeCore::reset_for_restart).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/builder.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::make_ids;
using testing::World;

TEST(CrashRestart, StalePreCrashRepliesAreRejected) {
  const IdParams params{16, 8};
  World world(params, 20);
  const auto ids = make_ids(params, 17, 31);
  const std::vector<NodeId> seeds(ids.begin(), ids.begin() + 16);
  build_consistent_network(world.overlay, seeds);
  const NodeId& joiner = ids[16];

  // Crash the joiner mid-copy-walk, restart it almost immediately: every
  // reply the first attempt solicited is still in flight (latencies run
  // 5-120ms per hop) and arrives at the new incarnation, whose generation
  // filter must reject it.
  world.overlay.schedule_join(joiner, seeds[0], 0.0);
  world.queue.schedule_at(30.0, [&] { world.overlay.crash(joiner); });
  world.overlay.schedule_restart(joiner, seeds[1], 31.0);
  world.queue.run();

  const Node& node = world.overlay.at(joiner);
  EXPECT_TRUE(node.is_s_node());
  EXPECT_GE(node.join_stats().stale_rejected, 1u)
      << "no stale pre-crash reply was rejected; the generation filter "
         "never fired";
  EXPECT_TRUE(world.overlay.all_in_system());
  const ConsistencyReport report = testing::audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params, 3);
}

TEST(CrashRestart, SettledNodeRejoinsAfterRepair) {
  const IdParams params{16, 8};
  World world(params, 24);
  const auto ids = make_ids(params, 20, 32);
  const std::vector<NodeId> seeds(ids.begin(), ids.begin() + 16);
  build_consistent_network(world.overlay, seeds);
  // Grow the network past the builder so the crash victim has joined
  // normally (non-trivial join state, reverse neighbors registered).
  for (int k = 0; k < 4; ++k)
    world.overlay.schedule_join(ids[16 + k], seeds[k], 10.0 * k);
  world.queue.run();
  ASSERT_TRUE(world.overlay.all_in_system());

  const NodeId& victim = ids[17];
  world.overlay.crash(victim);
  world.overlay.repair_all();
  world.queue.run();
  ASSERT_TRUE(testing::audit(world.overlay).consistent());

  world.overlay.restart(victim, seeds[3]);
  world.queue.run();
  EXPECT_TRUE(world.overlay.at(victim).is_s_node());
  EXPECT_TRUE(world.overlay.all_in_system());
  const ConsistencyReport report = testing::audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params, 3);
}

TEST(CrashRestart, SeedNodeRejoinsWithoutPriorRepair) {
  // A builder-installed seed node never ran a join, so its attempt
  // generation is still 0 at crash time — yet its ID is all over the
  // network. The restart must not run at generation 1 (the join protocol's
  // virgin-first-attempt marker, which asserts the ID appears in no table);
  // NodeCore::reset_for_restart floors the generation so the rejoin
  // tolerates meeting its own stale entries mid-copy-walk.
  const IdParams params{16, 8};
  World world(params, 16);
  const auto ids = make_ids(params, 16, 33);
  build_consistent_network(world.overlay, ids);

  world.overlay.crash(ids[3]);
  world.overlay.restart(ids[3], ids[0]);  // deliberately no repair first
  world.queue.run();
  EXPECT_TRUE(world.overlay.at(ids[3]).is_s_node());

  world.overlay.repair_all();
  world.queue.run();
  EXPECT_TRUE(world.overlay.all_in_system());
  const ConsistencyReport report = testing::audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params, 3);
}

}  // namespace
}  // namespace hcube
