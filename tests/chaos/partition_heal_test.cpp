// Partition-heal: a two-group network partition during concurrent joins.
//
// While the cut is active no join whose path crosses it can complete — the
// first copy request to the far-side gateway is dropped by the partition,
// and the ARQ layer's retransmissions keep being dropped until the window
// closes. After the heal the buffered retransmissions flow, every join
// completes, and the full consistency audit passes. Run under two distinct
// seeds (different latencies, different fault-RNG streams) per the ISSUE.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/builder.h"
#include "net/fault_plan.h"
#include "net/reliable_transport.h"
#include "net/sim_transport.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::make_ids;

// The chaos engine's transport stack, assembled by hand so the test can
// reach into each layer: lossy SimTransport + FaultPlan partition windows
// under a ReliableTransport ARQ decorator.
struct PartitionWorld {
  EventQueue queue;
  SyntheticLatency latency;
  SimTransport inner;
  FaultPlan plan;
  ReliableTransport rel;
  Overlay overlay;

  PartitionWorld(const IdParams& params, std::uint32_t max_hosts,
                 std::uint64_t seed)
      : latency(max_hosts, 5.0, 120.0, seed),
        inner(queue, latency),
        plan(seed + 1),
        rel(inner, ReliabilityConfig{/*rto_ms=*/100.0, /*backoff=*/2.0,
                                     /*max_retries=*/8}),
        overlay(IdParams{params}, ProtocolOptions{}, rel) {
    plan.attach(inner);
  }
};

void run_partition_heal(std::uint64_t seed) {
  const IdParams params{16, 8};
  constexpr std::uint32_t kSeedNodes = 16;
  constexpr std::uint32_t kJoiners = 3;
  constexpr SimTime kWindowEnd = 1500.0;

  PartitionWorld w(params, kSeedNodes + kJoiners, seed);
  const auto ids = make_ids(params, kSeedNodes + kJoiners, seed);
  const std::vector<NodeId> seeds(ids.begin(), ids.begin() + kSeedNodes);
  build_consistent_network(w.overlay, seeds);

  // Cut every host (including the joiners' future endpoints, assigned in
  // registration order) into two groups by parity for [0, 1500).
  std::vector<std::vector<HostId>> groups(2);
  for (HostId h = 0; h < kSeedNodes + kJoiners; ++h)
    groups[h & 1].push_back(h);
  w.plan.partition(groups, 0.0, kWindowEnd);

  // Every joiner gets a gateway on the other side of the cut, so its very
  // first copy request must cross the partition.
  for (std::uint32_t k = 0; k < kJoiners; ++k) {
    const std::uint32_t joiner_host = kSeedNodes + k;
    const std::uint32_t gateway = 2 * k + ((joiner_host & 1) ^ 1);
    ASSERT_NE(joiner_host & 1, gateway & 1);
    w.overlay.schedule_join(ids[joiner_host], seeds[gateway],
                            10.0 + static_cast<SimTime>(k));
  }

  // Probe just before the window closes: no join may have completed across
  // the cut.
  std::uint32_t settled_mid_window = 0;
  w.queue.schedule_at(kWindowEnd - 1.0, [&] {
    for (std::uint32_t k = 0; k < kJoiners; ++k)
      if (w.overlay.at(ids[kSeedNodes + k]).is_s_node()) ++settled_mid_window;
  });

  w.queue.run();

  EXPECT_EQ(settled_mid_window, 0u) << "a join completed across the cut";
  EXPECT_GT(w.plan.partition_drops(), 0u) << "the cut never dropped anything";
  EXPECT_GT(w.rel.rstats().retransmits, 0u);
  // The ARQ retry span (100ms * 2^k, 8 retries ~ 25s) dwarfs the 1.5s
  // window, so nothing may have been abandoned.
  EXPECT_EQ(w.rel.rstats().give_ups, 0u);

  // After the heal every join completed and the network is consistent.
  for (std::uint32_t k = 0; k < kJoiners; ++k)
    EXPECT_TRUE(w.overlay.at(ids[kSeedNodes + k]).is_s_node()) << "joiner " << k;
  EXPECT_TRUE(w.overlay.all_in_system());
  const ConsistencyReport report = testing::audit(w.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params, 3);
}

TEST(PartitionHeal, NoJoinCompletesAcrossTheCutSeedA) {
  run_partition_heal(11);
}

TEST(PartitionHeal, NoJoinCompletesAcrossTheCutSeedB) {
  run_partition_heal(12);
}

}  // namespace
}  // namespace hcube
