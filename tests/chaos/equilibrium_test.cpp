// Equilibrium-churn tier: open-loop rate windows, steady-state health
// oracles, and graceful degradation.
//
// The properties pinned here:
//   * rate-window scripts serialize/parse losslessly (the replay contract
//     extends to the new step kinds and config keys),
//   * window_arrivals is a pure function of the step alone (the shrink-
//     soundness property for rate windows),
//   * a moderate-rate equilibrium run passes every steady-state and drain
//     oracle, and is bit-reproducible with degradation enabled — the
//     backoff jitter draws from the overlay's seeded stream, never a fresh
//     one,
//   * the quarantine oracles hold through equilibrium with a 10%
//     reply-dropper population,
//   * a spike's backlog recovery lands within a stated budget, and
//   * the backlog bound oracle actually bites when set absurdly low.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "chaos/adversary.h"
#include "chaos/engine.h"
#include "chaos/schedule.h"
#include "core/builder.h"
#include "core/overlay.h"
#include "ids/node_id.h"
#include "sim/event_queue.h"
#include "topology/latency.h"

namespace hcube::chaos {
namespace {

EquilibriumSpec moderate_spec() {
  EquilibriumSpec spec;
  spec.rate_join = 4.0;
  spec.rate_leave = 2.0;
  spec.steady_windows = 3;
  spec.config = find_profile("equilibrium")->config;
  return spec;
}

TEST(EquilibriumSchedule, SerializationRoundTripsRateWindows) {
  EquilibriumSpec spec = moderate_spec();
  spec.spike_mult = 3.0;
  const ChurnScript script = sample_equilibrium_script(7, spec);
  ASSERT_TRUE(script.has_rate_steps());

  const std::string text = script.serialize();
  std::string error;
  const auto parsed = ChurnScript::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->serialize(), text);
  EXPECT_EQ(parsed->config.degrade, script.config.degrade);
  EXPECT_EQ(parsed->config.max_backlog, script.config.max_backlog);
  EXPECT_EQ(parsed->config.probe_every_ms, script.config.probe_every_ms);
  ASSERT_EQ(parsed->steps.size(), script.steps.size());
  bool saw_spike = false;
  for (std::size_t i = 0; i < script.steps.size(); ++i) {
    EXPECT_EQ(parsed->steps[i].kind, script.steps[i].kind);
    EXPECT_EQ(parsed->steps[i].rate_join, script.steps[i].rate_join);
    EXPECT_EQ(parsed->steps[i].rate_leave, script.steps[i].rate_leave);
    saw_spike = saw_spike || script.steps[i].kind == StepKind::kSpike;
  }
  EXPECT_TRUE(saw_spike);

  // A rate line without its two trailing rate fields must be rejected, not
  // silently defaulted — the artifact would replay a different world.
  const std::size_t at = text.find("step rate ");
  ASSERT_NE(at, std::string::npos);
  const std::size_t eol = text.find('\n', at);
  std::string line = text.substr(at, eol - at);
  for (int drop = 0; drop < 2; ++drop)
    line = line.substr(0, line.find_last_of(' '));
  const std::string damaged =
      text.substr(0, at) + line + text.substr(eol);
  EXPECT_FALSE(ChurnScript::parse(damaged).has_value());
}

TEST(EquilibriumSchedule, WindowArrivalsArePureAndPoolDisjoint) {
  const ChurnScript script = sample_equilibrium_script(3, moderate_spec());
  std::uint32_t max_pool = 0;
  std::uint32_t rate_steps = 0;
  for (const ChurnStep& step : script.steps) {
    if (!is_rate_window(step.kind)) continue;
    ++rate_steps;
    const auto a = window_arrivals(step);
    const auto b = window_arrivals(step);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].at_ms, b[i].at_ms);
      EXPECT_EQ(a[i].is_join, b[i].is_join);
      EXPECT_EQ(a[i].join_ordinal, b[i].join_ordinal);
      EXPECT_EQ(a[i].pick, b[i].pick);
    }
    // Join ordinals are dense from 0, arrivals are time-ordered, and the
    // window's ID allotment starts past every earlier window's.
    std::uint32_t joins = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) {
        EXPECT_GE(a[i].at_ms, a[i - 1].at_ms);
      }
      EXPECT_LT(a[i].at_ms, step.duration_ms);
      if (a[i].is_join) {
        EXPECT_EQ(a[i].join_ordinal, joins++);
      }
    }
    EXPECT_EQ(joins, window_join_count(step));
    EXPECT_GE(step.id_index, max_pool);
    max_pool = step.id_index + joins;
  }
  EXPECT_GT(rate_steps, 0u);
  EXPECT_GE(script.num_join_ids(), max_pool);
}

TEST(EquilibriumRun, ModerateRatePassesSteadyStateAndDrainOracles) {
  const ChaosResult r =
      run_script(sample_equilibrium_script(1, moderate_spec()));
  EXPECT_TRUE(r.ok) << r.first_failure();
  EXPECT_GT(r.eq.probes, 0u);
  EXPECT_GT(r.eq.join_arrivals, 0u);
  EXPECT_GT(r.eq.leave_arrivals, 0u);
  EXPECT_GT(r.eq.completed, 0u);
  EXPECT_GE(r.eq.completion_rate(), 0.99);
  EXPECT_EQ(r.eq.backlog.count(), r.eq.probes);
}

TEST(EquilibriumRun, DegradationRunsAreBitReproducible) {
  // The satellite contract: same seed + rates => bit-identical digest, with
  // the degradation machinery (jittered backoff, admission deferral) on.
  // Holding this proves the jitter draws from the overlay's seeded stream —
  // any unseeded randomness would diverge the two worlds.
  EquilibriumSpec spec = moderate_spec();
  spec.rate_join = 8.0;  // hot enough that watchdog restarts actually fire
  spec.rate_leave = 4.0;
  spec.config.degrade = 1;
  const ChurnScript script = sample_equilibrium_script(5, spec);
  const ChaosResult a = run_script(script);
  const ChaosResult b = run_script(script);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.eq.completed, b.eq.completed);
  EXPECT_EQ(a.eq.probes, b.eq.probes);
  // And the digest is sensitive to the seed (the fold is not vacuous).
  EXPECT_NE(a.digest, run_script(sample_equilibrium_script(6, spec)).digest);
}

TEST(EquilibriumRun, QuarantineOraclesHoldUnderReplyDroppers) {
  // 10% of the seed population swallows protocol replies. With the
  // defensive hardening on (the equilibrium profile's default), honest
  // joins must keep completing and every barrier/probe oracle must excuse
  // exactly the marked set — no false alarms, no honest-liveness loss.
  EquilibriumSpec spec = moderate_spec();
  ChurnScript script = sample_equilibrium_script(2, spec);
  const auto k = static_cast<std::size_t>(spec.config.n_seed / 10);
  ASSERT_GT(k, 0u);
  std::vector<ChurnStep> steps;
  for (std::size_t i = 0; i < k; ++i) {
    steps.push_back({.kind = StepKind::kMisbehave,
                     .gap_ms = 1.0,
                     .id_index = AdversaryEngine::kReplyDropper,
                     .pick = i,
                     .duration_ms = 0.0});
  }
  steps.insert(steps.end(), script.steps.begin(), script.steps.end());
  script.steps = std::move(steps);
  const ChaosResult r = run_script(script);
  EXPECT_TRUE(r.ok) << r.first_failure();
  EXPECT_EQ(r.counts.misbehaves, k);
  EXPECT_GT(r.eq.completed, 0u);
}

TEST(EquilibriumRun, SpikeRecoveryWithinBudget) {
  // Budget: after a 3x rate spike at a comfortably sub-knee rate, the
  // backlog must return to its pre-spike baseline within two join-watchdog
  // periods (2 x 2000ms) of the spike window closing. The measured values
  // sit around one probe period (250ms); the budget leaves deterministic
  // headroom, not slack for nondeterminism — the run is seeded.
  EquilibriumSpec spec = moderate_spec();
  spec.spike_mult = 3.0;
  const ChaosResult r = run_script(sample_equilibrium_script(1, spec));
  EXPECT_TRUE(r.ok) << r.first_failure();
  ASSERT_GE(r.eq.recovery_ms, 0.0) << "backlog never returned to baseline";
  EXPECT_LE(r.eq.recovery_ms, 2.0 * spec.config.join_watchdog_ms);
}

TEST(EquilibriumRun, BacklogBoundOracleBites) {
  // An absurdly low bound must trip the steady-state probe oracle: this is
  // the oracle's smoke test, proving equilibrium failures are detectable
  // mid-run rather than only at the drain.
  EquilibriumSpec spec = moderate_spec();
  spec.rate_join = 12.0;
  spec.rate_leave = 6.0;
  spec.config.max_backlog = 1;
  const ChaosResult r = run_script(sample_equilibrium_script(1, spec));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_failure().find("backlog"), std::string::npos)
      << r.first_failure();
}

TEST(EquilibriumOverlay, JoinBacklogCounterTracksJoinLifecycle) {
  const IdParams params{16, 8};
  EventQueue queue;
  SyntheticLatency latency(20, 5.0, 120.0, 1);
  Overlay overlay(params, {}, queue, latency);
  UniqueIdGenerator gen(params, 9);
  std::vector<NodeId> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(gen.next());
  build_consistent_network(overlay, ids);
  EXPECT_EQ(overlay.join_backlog(), 0u);

  const NodeId joiner = gen.next();
  overlay.add_node(joiner).start_join(ids[0]);
  EXPECT_EQ(overlay.join_backlog(), 1u);
  overlay.run_to_quiescence();
  EXPECT_EQ(overlay.join_backlog(), 0u);
  EXPECT_TRUE(overlay.at(joiner).is_s_node());

  // Departures never touch the join backlog.
  leave_and_drain(overlay, joiner);
  EXPECT_EQ(overlay.join_backlog(), 0u);
}

TEST(EquilibriumOverlay, GatewayDefersAdmissionAboveBacklogThreshold) {
  // Load-shedding leg of graceful degradation: with the overlay-wide join
  // backlog above the threshold, a settled gateway defers its CpRly by
  // overload_defer_ms instead of answering immediately. Three simultaneous
  // joins against a threshold of 1 must record deferrals on the gateways —
  // and deferral is deferral, not denial: every join still completes.
  const IdParams params{16, 8};
  EventQueue queue;
  SyntheticLatency latency(20, 5.0, 120.0, 1);
  ProtocolOptions options;
  options.overload_defer_threshold = 1;
  Overlay overlay(params, options, queue, latency);
  UniqueIdGenerator gen(params, 11);
  std::vector<NodeId> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(gen.next());
  build_consistent_network(overlay, ids);

  std::vector<NodeId> joiners;
  for (int i = 0; i < 3; ++i) joiners.push_back(gen.next());
  for (std::size_t i = 0; i < joiners.size(); ++i)
    overlay.add_node(joiners[i]).start_join(ids[i]);
  EXPECT_EQ(overlay.join_backlog(), 3u);
  overlay.run_to_quiescence();

  std::uint64_t deferrals = 0;
  for (const NodeId& id : ids)
    deferrals += overlay.at(id).join_stats().admission_deferrals;
  EXPECT_GT(deferrals, 0u);
  for (const NodeId& id : joiners) {
    EXPECT_TRUE(overlay.at(id).is_s_node())
        << id.to_string(params) << " did not complete";
  }
}

TEST(EquilibriumOverlay, WatchdogRestartsWaitOutJitteredBackoff) {
  // Backoff leg: with join_backoff_base_ms set, every watchdog-driven
  // restart first waits out a jittered exponential delay (counted in
  // JoinStats::backoff_waits). A crashed gateway never answers, so the
  // joiner burns its whole restart budget — one backoff wait per restart —
  // and backoff time is not attempt time: the restarts land strictly
  // later than the undegraded watchdog cadence alone would put them.
  const IdParams params{16, 8};
  EventQueue queue;
  SyntheticLatency latency(12, 5.0, 120.0, 1);
  ProtocolOptions options;
  options.join_watchdog_ms = 500.0;
  options.join_max_restarts = 2;
  options.join_backoff_base_ms = 100.0;
  Overlay overlay(params, options, queue, latency);
  UniqueIdGenerator gen(params, 13);
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(gen.next());
  build_consistent_network(overlay, ids);
  overlay.at(ids[0]).mark_crashed();

  const NodeId joiner = gen.next();
  overlay.add_node(joiner).start_join(ids[0]);
  overlay.run_to_quiescence();

  const JoinStats& s = overlay.at(joiner).join_stats();
  EXPECT_EQ(s.watchdog_restarts, 2u);
  EXPECT_EQ(s.backoff_waits, 2u);
  // 2 watchdog periods + backoff waits of >= 0.5 * 100ms and >= 0.5 * 200ms
  // + the final (budget-exhausted) watchdog period.
  EXPECT_GE(queue.now(), 3 * 500.0 + 0.5 * 100.0 + 0.5 * 200.0);
}

TEST(EquilibriumOverlay, BackoffJitterStreamIsSeededPerOverlay) {
  const IdParams params{16, 8};
  EventQueue queue;
  SyntheticLatency latency(4, 5.0, 120.0, 1);
  ProtocolOptions options;
  Overlay a(params, options, queue, latency);
  Overlay b(params, options, queue, latency);
  options.backoff_seed ^= 0x1234;
  Overlay c(params, options, queue, latency);
  bool diverged = false;
  for (int i = 0; i < 16; ++i) {
    const double ja = a.backoff_jitter();
    EXPECT_GE(ja, 0.5);
    EXPECT_LT(ja, 1.5);
    EXPECT_EQ(ja, b.backoff_jitter());  // same seed, same stream
    diverged = diverged || ja != c.backoff_jitter();
  }
  EXPECT_TRUE(diverged);  // different seed, different stream
}

}  // namespace
}  // namespace hcube::chaos
