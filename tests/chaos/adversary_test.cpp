// Misbehaving-node tier, end to end: kMisbehave schedule steps round-trip
// through the text artifact form, the quarantine oracles hold the honest
// remainder to Definition 3.8 around stale-responders and reply-droppers
// under sustained churn (the ISSUE acceptance run), the ddmin shrinker
// minimizes adversary-bearing schedules without losing the failure, and
// the planet-scale profiles stay deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/adversary.h"
#include "chaos/engine.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"
#include "topology/latency.h"
#include "util/rng.h"

namespace hcube::chaos {
namespace {

ChurnStep step(StepKind kind, SimTime gap_ms, std::uint32_t id_index,
               std::uint64_t pick, SimTime duration_ms = 0.0) {
  ChurnStep s;
  s.kind = kind;
  s.gap_ms = gap_ms;
  s.id_index = id_index;
  s.pick = pick;
  s.duration_ms = duration_ms;
  return s;
}

TEST(AdversaryProfiles, BuiltinsResolveAndSampleMisbehaves) {
  ASSERT_NE(find_profile("adversary"), nullptr);
  ASSERT_NE(find_profile("flashcrowd"), nullptr);
  EXPECT_EQ(find_profile("adversary")->config.defend, 1u);
  EXPECT_EQ(find_profile("adversary")->config.latency_model, 1u);

  const ChurnScript script =
      sample_script(5, *find_profile("adversary"), 60);
  std::uint32_t misbehaves = 0;
  for (const ChurnStep& s : script.steps) {
    if (s.kind != StepKind::kMisbehave) continue;
    ++misbehaves;
    // The sampler draws only the two headline profiles, 2:1.
    EXPECT_TRUE(s.id_index == AdversaryEngine::kStaleTable ||
                s.id_index == AdversaryEngine::kReplyDropper);
  }
  EXPECT_GT(misbehaves, 0u);
}

TEST(AdversarySerialization, MisbehaveStepsAndConfigKeysRoundTrip) {
  ChurnScript script = sample_script(9, *find_profile("adversary"), 30);
  script.config.adv_drop_mask = AdversaryEngine::kDefaultDropMask;
  script.config.adv_slow_ms = 17.5;
  script.steps.insert(
      script.steps.begin(),
      step(StepKind::kMisbehave, 2.0, AdversaryEngine::kAllProfiles, 3, 55.0));

  std::string error;
  const auto parsed = ChurnScript::parse(script.serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->serialize(), script.serialize());
  EXPECT_EQ(parsed->config.defend, 1u);
  EXPECT_EQ(parsed->config.adv_drop_mask, AdversaryEngine::kDefaultDropMask);
  EXPECT_EQ(parsed->config.adv_slow_ms, 17.5);
  EXPECT_EQ(parsed->config.latency_model, 1u);
  ASSERT_FALSE(parsed->steps.empty());
  EXPECT_EQ(parsed->steps[0].kind, StepKind::kMisbehave);
  EXPECT_EQ(parsed->steps[0].id_index, AdversaryEngine::kAllProfiles);
  EXPECT_EQ(parsed->steps[0].duration_ms, 55.0);
}

TEST(AdversarySerialization, PreAdversaryArtifactsParseWithDefaults) {
  // A replay artifact written before the misbehaving-node tier existed has
  // none of the four new config keys; it must parse to the documented
  // defaults (tier off, synthetic latency) — new keys are serializer-
  // always, parser-optional.
  const std::string old_form =
      "hchaos v1\n"
      "base 4\n"
      "digits 8\n"
      "nseed 12\n"
      "step join 5 0 3 0\n"
      "step barrier 5 0 0 0\n"
      "end\n";
  std::string error;
  const auto parsed = ChurnScript::parse(old_form, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->config.defend, 0u);
  EXPECT_EQ(parsed->config.adv_drop_mask, 0u);
  EXPECT_EQ(parsed->config.adv_slow_ms, 40.0);
  EXPECT_EQ(parsed->config.latency_model, 0u);
  // And the modern serialization of it round-trips.
  const auto again = ChurnScript::parse(parsed->serialize(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->serialize(), parsed->serialize());
}

// The ISSUE acceptance run: a 30-node network where 10% of the settled
// nodes serve stale tables and 5% silently drop notification traffic,
// under sustained churn over planet latencies with the defensive hardening
// on, across three seeds. The quarantine oracles must pass at every
// barrier — the honest remainder reaches Definition 3.8 consistency and
// every honest join completes within its watchdog budget — and the run
// digest must be bit-reproducible, both re-run and through the
// serialize -> parse -> run artifact loop.
ChurnScript acceptance_script(std::uint64_t seed) {
  ChurnScript script;
  script.config.n_seed = 30;
  script.config.drop = 0.01;
  script.config.duplicate = 0.005;
  script.config.defend = 1;
  script.config.latency_model = 1;
  std::uint64_t sm = seed;
  script.config.id_seed = splitmix64_next(sm);
  script.config.latency_seed = splitmix64_next(sm);
  script.config.fault_seed = splitmix64_next(sm);

  // 10% stale responders + 5% reply-droppers of the 30 settled seeds.
  for (int i = 0; i < 3; ++i)
    script.steps.push_back(step(StepKind::kMisbehave, 5.0,
                                AdversaryEngine::kStaleTable, seed + i));
  for (int i = 0; i < 2; ++i)
    script.steps.push_back(step(StepKind::kMisbehave, 5.0,
                                AdversaryEngine::kReplyDropper, seed + 7 + i));
  // Sustained churn around them: joins, leaves, crashes, restarts, with a
  // barrier after each block of eight.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::uint32_t next_join = 0;
  for (int block = 0; block < 3; ++block) {
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t draw = rng.next_below(8);
      StepKind kind = StepKind::kJoin;
      if (draw >= 4 && draw < 6) kind = StepKind::kLeave;
      if (draw == 6) kind = StepKind::kCrash;
      if (draw == 7) kind = StepKind::kRestart;
      ChurnStep s = step(kind, rng.next_exponential(25.0), 0, rng());
      if (kind == StepKind::kJoin) s.id_index = next_join++;
      script.steps.push_back(s);
    }
    script.steps.push_back(step(StepKind::kBarrier, 25.0, 0, 0));
  }
  return script;
}

TEST(QuarantineConvergence, HonestRemainderConvergesAcrossSeeds) {
  std::uint64_t total_intercepted = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const ChurnScript script = acceptance_script(seed);
    const ChaosResult result = run_script(script);
    EXPECT_TRUE(result.ok) << "seed " << seed << "\n" << result.summary();
    EXPECT_EQ(result.counts.misbehaves, 5u) << "seed " << seed;
    EXPECT_EQ(result.adversaries, 5u) << "seed " << seed;
    // Liveness around faults: no honest join burned its restart budget.
    EXPECT_EQ(result.abandoned_joins, 0u)
        << "seed " << seed << "\n" << result.summary();
    total_intercepted += result.adv_intercepted;

    // Bit-reproducible: re-run, and replay through the text artifact.
    const ChaosResult rerun = run_script(script);
    EXPECT_EQ(rerun.digest, result.digest) << "seed " << seed;
    std::string error;
    const auto parsed = ChurnScript::parse(script.serialize(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const ChaosResult replayed = run_script(*parsed);
    EXPECT_EQ(replayed.digest, result.digest) << "seed " << seed;
  }
  // The tier genuinely fired somewhere across the sweep: marked nodes
  // intercepted real traffic, the runs were not vacuously clean.
  EXPECT_GT(total_intercepted, 0u);
}

// Shrinker fixture: every seed node swallows JoinWaitMsg, so the one join
// can never anchor its suffix class — the watchdog spends its budget and
// the barrier flags the abandoned *honest* join as a quarantine failure.
// ddmin must minimize the schedule without losing that failure, and the
// minimized artifact must replay to the identical digest.
ChurnScript dropper_wall_fixture() {
  ChurnScript script;
  script.config.n_seed = 16;
  script.config.drop = 0.0;       // clean transport: the droppers are
  script.config.duplicate = 0.0;  // provably the only source of silence
  script.config.adv_drop_mask =
      1u << static_cast<std::uint32_t>(MessageType::kJoinWait);
  script.config.join_watchdog_ms = 2000.0;
  script.config.join_max_restarts = 3;
  // pick = 0 resolves against the *unmarked* settled population, so step k
  // marks the k-th seed in registration order — any subset of these steps
  // marks a prefix-of-a-subset deterministically, which keeps ddmin sound.
  for (int i = 0; i < 16; ++i)
    script.steps.push_back(
        step(StepKind::kMisbehave, 1.0, AdversaryEngine::kReplyDropper, 0));
  script.steps.push_back(step(StepKind::kJoin, 10.0, 0, 5));
  script.steps.push_back(step(StepKind::kBarrier, 10.0, 0, 0));
  return script;
}

TEST(AdversaryShrink, MinimizedScheduleStillFailsQuarantineOracle) {
  const ChurnScript fixture = dropper_wall_fixture();
  const ChaosResult broken = run_script(fixture);
  ASSERT_FALSE(broken.ok) << broken.summary();
  EXPECT_EQ(broken.abandoned_joins, 1u);
  EXPECT_NE(broken.first_failure().find("quarantine"), std::string::npos)
      << broken.first_failure();

  const ShrinkResult shrunk = shrink_script(fixture);
  EXPECT_TRUE(shrunk.input_failed);
  EXPECT_FALSE(shrunk.minimal_result.ok);
  // The join and at least one misbehave marking must have survived — a
  // schedule without either passes.
  EXPECT_LT(shrunk.minimal.steps.size(), fixture.steps.size());
  std::uint32_t joins = 0, misbehaves = 0;
  for (const ChurnStep& s : shrunk.minimal.steps) {
    if (s.kind == StepKind::kJoin) ++joins;
    if (s.kind == StepKind::kMisbehave) ++misbehaves;
  }
  EXPECT_EQ(joins, 1u);
  EXPECT_GE(misbehaves, 1u);

  // Artifact loop: the minimized schedule replays bit-for-bit.
  std::string error;
  const auto parsed = ChurnScript::parse(shrunk.minimal.serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const ChaosResult replayed = run_script(*parsed);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.digest, shrunk.minimal_result.digest);
  EXPECT_EQ(replayed.first_failure(), shrunk.minimal_result.first_failure());
}

TEST(FlashCrowd, QuickModeConvergesClean) {
  // The CI chaos-matrix quick mode: 32 joins (m = 4·n_seed) flooding an
  // 8-node overlay over planet latencies.
  const ChurnScript script =
      sample_script(2, *find_profile("flashcrowd"), 32);
  EXPECT_EQ(script.config.n_seed, 8u);
  const ChaosResult result = run_script(script);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.counts.joins, 32u);
  EXPECT_EQ(run_script(script).digest, result.digest);
}

TEST(PlanetLatency, DeterministicSymmetricAndRegionClustered) {
  PlanetLatency a(64, 11), b(64, 11), other(64, 12);
  double intra_max = 0.0;
  for (HostId x = 0; x < 16; ++x) {
    for (HostId y = 0; y < 16; ++y) {
      if (x == y) {
        EXPECT_EQ(a.latency_ms(x, y), 0.0);
        continue;
      }
      const double ms = a.latency_ms(x, y);
      EXPECT_GT(ms, 0.0);
      EXPECT_EQ(ms, a.latency_ms(y, x));  // symmetric, bit for bit
      EXPECT_EQ(ms, b.latency_ms(x, y));  // pure function of the seed
      if (a.region_of(x) == a.region_of(y))
        intra_max = std::max(intra_max, ms);
    }
  }
  // The map is strongly bimodal: the farthest same-region pair is still
  // bounded by access jitter + intra-region base, far below the antipodal
  // bases; a uniform band (SyntheticLatency) has no such gap.
  EXPECT_LT(intra_max, 40.0);
  // Distinct seeds remap the planet.
  bool any_differs = false;
  for (HostId x = 1; x < 16 && !any_differs; ++x)
    any_differs = other.latency_ms(0, x) != a.latency_ms(0, x);
  EXPECT_TRUE(any_differs);
}

}  // namespace
}  // namespace hcube::chaos
