// The analytic model of Section 5.2 (Theorems 4 and 5): internal
// consistency, agreement with Monte-Carlo, agreement with an independent
// closed form, and agreement with the simulated protocol.
#include "analysis/join_cost.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "test_util.h"
#include "util/logmath.h"
#include "util/stats.h"

namespace hcube {
namespace {

using testing::World;
using testing::make_ids;

TEST(JoinCost, DistributionSumsToOne) {
  for (auto [b, d, n] :
       {std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>{16, 8, 1000},
        {16, 40, 1000}, {16, 40, 100000}, {2, 10, 100}, {4, 6, 500},
        {16, 8, 1}, {8, 5, 3000}}) {
    const IdParams params{b, d};
    const auto p = notification_level_distribution(params, n);
    const double sum = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "b=" << b << " d=" << d << " n=" << n;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(JoinCost, MatchesIndependentClosedForm) {
  // P[level = i] = P[no sharer of >= i+1 digits] - P[no sharer of >= i
  // digits]; an independent derivation the paper's per-k sum must agree
  // with.
  for (auto [b, d, n] :
       {std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>{16, 8, 1000},
        {4, 6, 200}, {2, 12, 50}, {16, 40, 20000}}) {
    const IdParams params{b, d};
    const double space = std::pow(double(b), double(d));
    const auto p = notification_level_distribution(params, n);
    auto p_no_sharer_at_least = [&](std::uint32_t len) {
      // P[V avoids all IDs sharing >= len suffix digits with x].
      const double sharers = std::pow(double(b), double(d - len)) - 1.0;
      return std::exp(log_binomial(space - 1.0 - sharers, n) -
                      log_binomial(space - 1.0, n));
    };
    for (std::uint32_t i = 0; i + 1 < d; ++i) {
      const double closed =
          p_no_sharer_at_least(i + 1) - p_no_sharer_at_least(i);
      EXPECT_NEAR(p[i], closed, 1e-8 + 1e-6 * closed)
          << "b=" << b << " d=" << d << " n=" << n << " i=" << i;
    }
  }
}

TEST(JoinCost, MatchesMonteCarlo) {
  const IdParams params{4, 6};
  const std::uint64_t n = 60;
  const auto analytic = notification_level_distribution(params, n);
  Rng rng(77);
  const auto mc =
      notification_level_distribution_mc(params, n, /*trials=*/20000, rng);
  for (std::uint32_t i = 0; i < params.num_digits; ++i) {
    EXPECT_NEAR(analytic[i], mc[i], 0.015) << "level " << i;
  }
}

TEST(JoinCost, ExpectedJoinNotiModest) {
  // Theorem 4's E[J] uses n/b^i as the expected notification-set size given
  // level i, which slightly undershoots for degenerate n (at n = 1 the
  // formula gives ~ -0.06); it must always stay within [-1, O(b log_b n)].
  for (std::uint64_t n : {1ull, 10ull, 100ull, 10000ull, 100000ull}) {
    for (auto [b, d] : {std::pair<std::uint32_t, std::uint32_t>{16, 8},
                        {16, 40}}) {
      const double e = expected_join_noti_single(IdParams{b, d}, n);
      EXPECT_GE(e, -1.0) << "n=" << n;
      EXPECT_LT(e, 64.0) << "n=" << n;
      if (n >= 100) {
        EXPECT_GT(e, 0.0) << "n=" << n;
      }
    }
  }
}

TEST(JoinCost, PaperFigure15aValues) {
  // Section 5.2 reports Theorem 5 upper bounds of 8.001 (n = 3096,
  // m = 1000) and 6.986 (n = 7192, m = 1000) for b = 16, at both d = 8 and
  // d = 40.
  for (std::uint32_t d : {8u, 40u}) {
    const IdParams params{16, d};
    EXPECT_NEAR(expected_join_noti_concurrent_bound(params, 3096, 1000),
                8.001, 0.01)
        << "d=" << d;
    EXPECT_NEAR(expected_join_noti_concurrent_bound(params, 7192, 1000),
                6.986, 0.01)
        << "d=" << d;
  }
}

TEST(JoinCost, BoundGrowsSlowlyWithN) {
  // Figure 15(a)'s shape: the bound is increasing-but-flattening in n
  // (roughly b/(b-1)-periodic sawtooth around log_b growth; across decades
  // it must stay within a small band).
  const IdParams params{16, 40};
  const double e1 = expected_join_noti_concurrent_bound(params, 10000, 500);
  const double e2 = expected_join_noti_concurrent_bound(params, 100000, 500);
  EXPECT_GT(e2, 2.0);
  EXPECT_LT(e2 / e1, 2.0);  // 10x nodes, far less than 2x messages
}

TEST(JoinCost, ConcurrentBoundExceedsSingleExpectation) {
  const IdParams params{16, 8};
  for (std::uint64_t n : {1000ull, 5000ull}) {
    EXPECT_GT(expected_join_noti_concurrent_bound(params, n, 500),
              expected_join_noti_single(params, n));
  }
}

TEST(JoinCost, MoreJoinersRaiseTheBound) {
  const IdParams params{16, 8};
  EXPECT_GT(expected_join_noti_concurrent_bound(params, 10000, 1000),
            expected_join_noti_concurrent_bound(params, 10000, 500));
}

TEST(JoinCost, SimulationRespectsTheorem5Bound) {
  // End-to-end: measured average JoinNotiMsg per joiner stays below the
  // Theorem 5 bound (and is positive for non-trivial networks).
  const IdParams params{4, 6};
  const std::size_t n = 120, m = 60;
  World world(params, n + m);
  auto ids = make_ids(params, n + m, 2024);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + n);
  const std::vector<NodeId> w(ids.begin() + n, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(6);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());

  double total = 0.0;
  for (const NodeId& x : w)
    total += static_cast<double>(
        world.overlay.at(x).join_stats().sent_of(MessageType::kJoinNoti));
  const double avg = total / static_cast<double>(m);
  const double bound = expected_join_noti_concurrent_bound(params, n, m);
  EXPECT_LE(avg, bound * 1.05) << "avg=" << avg << " bound=" << bound;
}

TEST(JoinCost, SingleJoinAverageTracksTheorem4) {
  // Many independent single joins into same-sized networks: the measured
  // mean should be within a few standard errors of Theorem 4's E[J].
  const IdParams params{4, 5};
  const std::size_t n = 100;
  const double expected = expected_join_noti_single(params, n);
  StreamingStats stats;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    World world(params, n + 1, {}, seed);
    auto ids = make_ids(params, n + 1, 5000 + seed);
    const std::vector<NodeId> v(ids.begin(), ids.begin() + n);
    build_consistent_network(world.overlay, v);
    world.overlay.schedule_join(ids[n], v[seed % n], 0.0);
    world.overlay.run_to_quiescence();
    ASSERT_TRUE(world.overlay.all_in_system());
    stats.add(static_cast<double>(
        world.overlay.at(ids[n]).join_stats().sent_of(
            MessageType::kJoinNoti)));
  }
  const double stderr_est = stats.stddev() / std::sqrt(40.0) + 0.3;
  EXPECT_NEAR(stats.mean(), expected, 4.0 * stderr_est)
      << "measured " << stats.mean() << " expected " << expected;
}

}  // namespace
}  // namespace hcube
