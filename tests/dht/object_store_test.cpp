#include "dht/object_store.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::make_ids;

// Builds "prefix<i>" without operator+(const char*, std::string&&), which
// trips a GCC 12 -Wrestrict false positive under -Werror.
std::string key(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

class ObjectStoreTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 40;
  const IdParams params_{4, 6};

  ObjectStoreTest() : world_(params_, kNodes) {
    ids_ = make_ids(params_, kNodes, 8);
    build_consistent_network(world_.overlay, ids_);
  }

  World world_;
  std::vector<NodeId> ids_;
};

TEST_F(ObjectStoreTest, PublishThenLookupFromAnywhere) {
  ObjectStore store(view_of(world_.overlay));
  const auto pub = store.publish(ids_[0], "song.mp3", "payload-bytes");
  ASSERT_TRUE(pub.success);
  for (std::size_t i = 0; i < ids_.size(); i += 5) {
    std::string value;
    const auto got = store.lookup(ids_[i], "song.mp3", &value);
    ASSERT_TRUE(got.success) << "from " << ids_[i].to_string(params_);
    EXPECT_EQ(value, "payload-bytes");
    EXPECT_EQ(got.root, pub.root);  // deterministic location (P1)
  }
}

TEST_F(ObjectStoreTest, MissingObjectFailsButResolvesRoot) {
  ObjectStore store(view_of(world_.overlay));
  const auto got = store.lookup(ids_[1], "never-published");
  EXPECT_FALSE(got.success);
  EXPECT_TRUE(got.root.is_valid());
}

TEST_F(ObjectStoreTest, PublishOverwrites) {
  ObjectStore store(view_of(world_.overlay));
  ASSERT_TRUE(store.publish(ids_[0], "k", "v1").success);
  ASSERT_TRUE(store.publish(ids_[3], "k", "v2").success);
  std::string value;
  ASSERT_TRUE(store.lookup(ids_[9], "k", &value).success);
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(store.objects_stored(), 1u);
}

TEST_F(ObjectStoreTest, HopsBoundedByDigits) {
  ObjectStore store(view_of(world_.overlay));
  for (int i = 0; i < 50; ++i) {
    const auto r =
        store.publish(ids_[i % ids_.size()], key("obj", i), "v");
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.hops, params_.num_digits);
  }
}

TEST_F(ObjectStoreTest, LoadSpreadsAcrossNodes) {
  // Property P3 (load balance): with many objects, no node should hold
  // almost everything. This is a sanity bound, not a tight one — root
  // assignment is proportional to ID-space coverage.
  ObjectStore store(view_of(world_.overlay));
  constexpr int kObjects = 400;
  for (int i = 0; i < kObjects; ++i)
    ASSERT_TRUE(
        store.publish(ids_[0], key("obj", i), "v").success);
  EXPECT_EQ(store.objects_stored(), kObjects);
  std::size_t peak = 0, roots = 0;
  for (const NodeId& id : ids_) {
    peak = std::max(peak, store.load_of(id));
    if (store.load_of(id) > 0) ++roots;
  }
  EXPECT_LT(peak, kObjects / 4u);
  EXPECT_GT(roots, ids_.size() / 4);
}

TEST_F(ObjectStoreTest, ObjectIdDeterministic) {
  ObjectStore store(view_of(world_.overlay));
  EXPECT_EQ(store.object_id("abc"), store.object_id("abc"));
  EXPECT_NE(store.object_id("abc"), store.object_id("abd"));
}

TEST(ObjectStoreRebalance, ObjectsFollowTheirRootsAcrossJoins) {
  const IdParams params{4, 6};
  World world(params, 80);
  auto ids = make_ids(params, 80, 77);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 30);
  const std::vector<NodeId> w(ids.begin() + 30, ids.end());
  build_consistent_network(world.overlay, v);

  ObjectStore store(view_of(world.overlay));
  constexpr int kObjects = 200;
  for (int i = 0; i < kObjects; ++i)
    ASSERT_TRUE(store.publish(v[0], key("obj", i), "v").success);

  // 50 joins shift many surrogate roots.
  Rng rng(6);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());

  const std::size_t moved = store.rebalance(view_of(world.overlay));
  EXPECT_GT(moved, 0u);  // new nodes must take over some roots
  EXPECT_EQ(store.objects_stored(), kObjects);

  // Every object is findable from everywhere, no republish needed.
  for (int i = 0; i < kObjects; i += 13) {
    for (std::size_t p = 0; p < ids.size(); p += 11) {
      std::string value;
      ASSERT_TRUE(
          store.lookup(ids[p], key("obj", i), &value).success);
      EXPECT_EQ(value, "v");
    }
  }
}

TEST(ObjectStoreRebalance, SurvivesLeaves) {
  const IdParams params{4, 6};
  World world(params, 40);
  auto ids = make_ids(params, 40, 88);
  build_consistent_network(world.overlay, ids);
  ObjectStore store(view_of(world.overlay));
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(store.publish(ids[0], key("o", i), "v").success);

  // The heaviest-loaded node departs; its objects must find new roots.
  NodeId heaviest = ids[0];
  for (const NodeId& id : ids)
    if (store.load_of(id) > store.load_of(heaviest)) heaviest = id;
  ASSERT_GT(store.load_of(heaviest), 0u);
  leave_and_drain(world.overlay, heaviest);
  ASSERT_TRUE(check_consistency(view_of(world.overlay)).consistent());

  const std::size_t moved = store.rebalance(view_of(world.overlay));
  EXPECT_GE(moved, 1u);
  EXPECT_EQ(store.load_of(heaviest), 0u);
  EXPECT_EQ(store.objects_stored(), 100u);
  for (int i = 0; i < 100; i += 9) {
    NodeId origin = ids[1] == heaviest ? ids[2] : ids[1];
    EXPECT_TRUE(store.lookup(origin, key("o", i)).success);
  }
}

TEST(ObjectStoreRebalance, NoMembershipChangeNoMoves) {
  const IdParams params{4, 5};
  World world(params, 20);
  auto ids = make_ids(params, 20, 99);
  build_consistent_network(world.overlay, ids);
  ObjectStore store(view_of(world.overlay));
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(store.publish(ids[0], key("k", i), "v").success);
  EXPECT_EQ(store.rebalance(view_of(world.overlay)), 0u);
}

TEST(ObjectStoreAfterJoins, LookupsSurviveMembershipGrowth) {
  // Publish on the grown network: roots must be deterministic on the new
  // membership too (tables are consistent after the join wave).
  const IdParams params{4, 6};
  World world(params, 60);
  auto ids = make_ids(params, 60, 44);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 30);
  const std::vector<NodeId> w(ids.begin() + 30, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(4);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());

  ObjectStore store(view_of(world.overlay));
  ASSERT_TRUE(store.publish(w[0], "post-join-object", "value").success);
  std::string value;
  EXPECT_TRUE(store.lookup(v[0], "post-join-object", &value).success);
  EXPECT_EQ(value, "value");
}

}  // namespace
}  // namespace hcube
