#include "topology/transit_stub.h"

#include <gtest/gtest.h>

#include "topology/latency.h"

namespace hcube {
namespace {

TEST(TransitStub, RouterCountMatchesParams) {
  TransitStubParams p;
  p.transit_domains = 2;
  p.transit_nodes_per_domain = 3;
  p.stub_domains_per_transit_node = 2;
  p.stub_nodes_per_domain = 4;
  EXPECT_EQ(p.total_routers(), 2u * 3u * (1u + 2u * 4u));

  Rng rng(1);
  const auto topo = generate_transit_stub(p, rng);
  EXPECT_EQ(topo.graph.num_vertices(), p.total_routers());
}

TEST(TransitStub, Connected) {
  TransitStubParams p;
  Rng rng(2);
  const auto topo = generate_transit_stub(p, rng);
  EXPECT_TRUE(topo.graph.is_connected());
}

TEST(TransitStub, TransitAndStubClassification) {
  TransitStubParams p;
  Rng rng(3);
  const auto topo = generate_transit_stub(p, rng);
  const std::uint32_t num_transit =
      p.transit_domains * p.transit_nodes_per_domain;
  std::uint32_t transit_count = 0;
  for (bool t : topo.is_transit)
    if (t) ++transit_count;
  EXPECT_EQ(transit_count, num_transit);
  EXPECT_EQ(topo.stub_routers.size(), p.total_routers() - num_transit);
  for (auto r : topo.stub_routers) EXPECT_FALSE(topo.is_transit[r]);
}

TEST(TransitStub, DeterministicGivenSeed) {
  TransitStubParams p;
  Rng rng1(7), rng2(7);
  const auto a = generate_transit_stub(p, rng1);
  const auto b = generate_transit_stub(p, rng2);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  const auto da = a.graph.shortest_paths_from(0);
  const auto db = b.graph.shortest_paths_from(0);
  EXPECT_EQ(da, db);
}

TEST(TransitStub, SingleDomainDegenerate) {
  TransitStubParams p;
  p.transit_domains = 1;
  p.transit_nodes_per_domain = 1;
  p.stub_domains_per_transit_node = 1;
  p.stub_nodes_per_domain = 2;
  Rng rng(9);
  const auto topo = generate_transit_stub(p, rng);
  EXPECT_TRUE(topo.graph.is_connected());
  EXPECT_EQ(topo.graph.num_vertices(), 3u);
}

TEST(TransitStub, PaperScaleGenerates) {
  // Close to the paper's 8320-router GT-ITM topology:
  // 4 domains x 10 transit routers x (1 + 4 stubs x 51 nodes) ... we use the
  // default bench scale here (about 2k routers) to keep the test fast, and
  // only assert structural health.
  TransitStubParams p;
  p.transit_domains = 4;
  p.transit_nodes_per_domain = 8;
  p.stub_domains_per_transit_node = 4;
  p.stub_nodes_per_domain = 16;
  Rng rng(11);
  const auto topo = generate_transit_stub(p, rng);
  EXPECT_EQ(topo.graph.num_vertices(), 2080u);
  EXPECT_TRUE(topo.graph.is_connected());
}

TEST(TopologyLatency, SymmetricPositiveAndZeroSelf) {
  TransitStubParams p;
  p.transit_domains = 2;
  p.transit_nodes_per_domain = 2;
  p.stub_domains_per_transit_node = 2;
  p.stub_nodes_per_domain = 4;
  Rng rng(5);
  auto model = make_transit_stub_latency(p, /*num_hosts=*/50, rng);
  ASSERT_EQ(model->num_hosts(), 50u);
  for (HostId a = 0; a < 10; ++a) {
    EXPECT_DOUBLE_EQ(model->latency_ms(a, a), 0.0);
    for (HostId b = 0; b < 10; ++b) {
      if (a == b) continue;
      const double ab = model->latency_ms(a, b);
      EXPECT_GT(ab, 0.0);
      EXPECT_DOUBLE_EQ(ab, model->latency_ms(b, a));
    }
  }
}

TEST(TopologyLatency, HeterogeneousAcrossPairs) {
  TransitStubParams p;
  Rng rng(6);
  auto model = make_transit_stub_latency(p, /*num_hosts=*/40, rng);
  double lo = 1e18, hi = 0.0;
  for (HostId a = 0; a < 40; ++a)
    for (HostId b = static_cast<HostId>(a + 1); b < 40; ++b) {
      const double l = model->latency_ms(a, b);
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
  EXPECT_GT(hi, 2.0 * lo) << "latencies should be heterogeneous";
}

TEST(SyntheticLatency, SymmetricDeterministicBounded) {
  SyntheticLatency model(100, 5.0, 50.0, 42);
  for (HostId a = 0; a < 20; ++a) {
    EXPECT_DOUBLE_EQ(model.latency_ms(a, a), 0.0);
    for (HostId b = 0; b < 20; ++b) {
      if (a == b) continue;
      const double l = model.latency_ms(a, b);
      EXPECT_GE(l, 5.0);
      EXPECT_LE(l, 50.0);
      EXPECT_DOUBLE_EQ(l, model.latency_ms(b, a));
      EXPECT_DOUBLE_EQ(l, model.latency_ms(a, b));  // stable across calls
    }
  }
}

TEST(ConstantLatency, Constant) {
  ConstantLatency model(4, 7.5);
  EXPECT_DOUBLE_EQ(model.latency_ms(0, 3), 7.5);
  EXPECT_EQ(model.num_hosts(), 4u);
}

}  // namespace
}  // namespace hcube
