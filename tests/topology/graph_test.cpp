#include "topology/graph.h"

#include <gtest/gtest.h>

#include <limits>

namespace hcube {
namespace {

TEST(Graph, EmptyGraphIsConnected) {
  Graph g(0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, SingleVertex) {
  Graph g(1);
  EXPECT_TRUE(g.is_connected());
  const auto dist = g.shortest_paths_from(0);
  EXPECT_EQ(dist[0], 0.0f);
}

TEST(Graph, DisconnectedDetected) {
  Graph g(3);
  g.add_edge(0, 1, 1.0f);
  EXPECT_FALSE(g.is_connected());
  const auto dist = g.shortest_paths_from(0);
  EXPECT_EQ(dist[2], std::numeric_limits<float>::infinity());
}

TEST(Graph, ShortestPathPicksCheaperRoute) {
  // 0 -(10)- 1 -(10)- 2  versus  0 -(3)- 3 -(3)- 4 -(3)- 2
  Graph g(5);
  g.add_edge(0, 1, 10.0f);
  g.add_edge(1, 2, 10.0f);
  g.add_edge(0, 3, 3.0f);
  g.add_edge(3, 4, 3.0f);
  g.add_edge(4, 2, 3.0f);
  const auto dist = g.shortest_paths_from(0);
  EXPECT_FLOAT_EQ(dist[2], 9.0f);
  EXPECT_FLOAT_EQ(dist[1], 10.0f);
}

TEST(Graph, ParallelEdgesUseCheaper) {
  Graph g(2);
  g.add_edge(0, 1, 5.0f);
  g.add_edge(0, 1, 2.0f);
  EXPECT_FLOAT_EQ(g.shortest_paths_from(0)[1], 2.0f);
}

TEST(Graph, SymmetricDistances) {
  Graph g(6);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(1, 2, 2.0f);
  g.add_edge(2, 3, 3.0f);
  g.add_edge(3, 4, 4.0f);
  g.add_edge(4, 5, 5.0f);
  g.add_edge(0, 5, 20.0f);
  for (std::uint32_t u = 0; u < 6; ++u) {
    const auto du = g.shortest_paths_from(u);
    for (std::uint32_t v = 0; v < 6; ++v) {
      const auto dv = g.shortest_paths_from(v);
      EXPECT_FLOAT_EQ(du[v], dv[u]);
    }
  }
}

TEST(Graph, TriangleInequalityHolds) {
  Graph g(4);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(1, 2, 1.0f);
  g.add_edge(2, 3, 1.0f);
  g.add_edge(0, 3, 10.0f);  // direct edge worse than the path
  const auto d0 = g.shortest_paths_from(0);
  EXPECT_FLOAT_EQ(d0[3], 3.0f);
}

TEST(Graph, NeighborsSpan) {
  Graph g(3);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(0, 2, 2.0f);
  EXPECT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.num_edges(), 2u);
}

}  // namespace
}  // namespace hcube
