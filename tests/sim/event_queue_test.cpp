#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "topology/latency.h"

namespace hcube {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TieBreaksByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(10.0, [&] {
    q.schedule_after(5.0, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) q.schedule_after(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(q.now(), 99.0);
  EXPECT_EQ(q.events_processed(), 100u);
}

TEST(EventQueue, RunWithEventCap) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [] {});
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(q.pending(), 6u);
  EXPECT_EQ(q.run(), 6u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  q.run_until(4.0);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, TimersAndDeliveriesShareTheTieBreak) {
  // Both event flavors draw from one sequence counter: at the same instant
  // they run in exactly the order they were scheduled, however interleaved.
  EventQueue q;
  std::vector<int> order;
  struct OrderSink : DeliverySink {
    std::vector<int>* order;
    void deliver(HostId, HostId, std::uint32_t slot) override {
      order->push_back(static_cast<int>(slot));
    }
  } sink;
  sink.order = &order;
  q.schedule_at(5.0, [&] { order.push_back(0); });
  q.schedule_delivery_at(5.0, &sink, 0, 0, 1);
  q.schedule_at(5.0, [&] { order.push_back(2); });
  q.schedule_delivery_at(5.0, &sink, 0, 0, 3);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, DeliveryCarriesEndpointsAndSlot) {
  EventQueue q;
  struct CaptureSink : DeliverySink {
    HostId from = 0, to = 0;
    std::uint32_t slot = 0;
    void deliver(HostId f, HostId t, std::uint32_t s) override {
      from = f;
      to = t;
      slot = s;
    }
  } sink;
  q.schedule_delivery_after(2.0, &sink, 7, 9, 13);
  q.run();
  EXPECT_EQ(sink.from, 7u);
  EXPECT_EQ(sink.to, 9u);
  EXPECT_EQ(sink.slot, 13u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, TimerPoolSlotsAreRecycled) {
  EventQueue q;
  int fired = 0;
  // Sequential timers: each closure slot is freed at dispatch, so a single
  // slot serves the whole stream.
  for (int i = 0; i < 100; ++i) {
    q.schedule_after(1.0, [&] { ++fired; });
    q.run();
  }
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(q.timer_pool_size(), 1u);
  EXPECT_EQ(q.timer_pool_free(), 1u);
  // A burst of 10 pending timers grows the pool to 10 and no further.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) q.schedule_after(1.0, [&] { ++fired; });
    q.run();
  }
  EXPECT_EQ(q.timer_pool_size(), 10u);
  EXPECT_EQ(q.timer_pool_free(), 10u);
}

TEST(EventQueue, TimerMaySafelyScheduleFromItsOwnSlot) {
  // dispatch() moves the closure out of the pool before invoking it, so a
  // timer that schedules another timer (possibly reusing its freed slot)
  // must not corrupt itself.
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 50) q.schedule_after(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(count, 50);
  EXPECT_EQ(q.timer_pool_size(), 1u);
}

TEST(SimNetwork, DeliversWithLatency) {
  EventQueue q;
  ConstantLatency latency(2, 10.0);
  SimNetwork<int> net(q, latency);
  std::vector<std::pair<double, int>> received;
  const HostId a = net.add_endpoint([](HostId, const int&) {});
  const HostId b = net.add_endpoint(
      [&](HostId, const int& v) { received.push_back({q.now(), v}); });
  net.send(a, b, 7);
  q.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_DOUBLE_EQ(received[0].first, 10.0);
  EXPECT_EQ(received[0].second, 7);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(SimNetwork, PerPairFifo) {
  EventQueue q;
  ConstantLatency latency(2, 5.0);
  SimNetwork<int> net(q, latency);
  std::vector<int> received;
  const HostId a = net.add_endpoint([](HostId, const int&) {});
  const HostId b =
      net.add_endpoint([&](HostId, const int& v) { received.push_back(v); });
  for (int i = 0; i < 20; ++i) net.send(a, b, i);
  q.run();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[i], i);
}

TEST(SimNetwork, DropFilterDropsAndCounts) {
  EventQueue q;
  ConstantLatency latency(2, 1.0);
  SimNetwork<int> net(q, latency);
  int delivered = 0;
  const HostId a = net.add_endpoint([](HostId, const int&) {});
  const HostId b = net.add_endpoint([&](HostId, const int&) { ++delivered; });
  net.drop_filter = [](HostId, HostId, const int& v) { return v % 2 == 0; };
  for (int i = 0; i < 10; ++i) net.send(a, b, i);
  q.run();
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(net.messages_dropped(), 5u);
  EXPECT_EQ(net.messages_sent(), 5u);
}

TEST(SimNetwork, OnSendHookSeesEverything) {
  EventQueue q;
  ConstantLatency latency(2, 1.0);
  SimNetwork<int> net(q, latency);
  const HostId a = net.add_endpoint([](HostId, const int&) {});
  const HostId b = net.add_endpoint([](HostId, const int&) {});
  int observed = 0;
  net.on_send = [&](HostId, HostId, const int&) { ++observed; };
  net.drop_filter = [](HostId, HostId, const int&) { return true; };
  for (int i = 0; i < 4; ++i) net.send(a, b, i);
  EXPECT_EQ(observed, 4);  // hook fires before drop filtering
}

TEST(SimNetwork, SelfSendDeliversAtSameTimeLater) {
  EventQueue q;
  ConstantLatency latency(1, 9.0);
  SimNetwork<int> net(q, latency);
  bool delivered = false;
  HostId a_id = 0;
  SimNetwork<int>* netp = &net;
  a_id = net.add_endpoint([&](HostId, const int&) { delivered = true; });
  (void)netp;
  net.send(a_id, a_id, 1);
  q.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);  // self-latency is zero
}

}  // namespace
}  // namespace hcube
