// Differential determinism of the sharded simulator (DESIGN.md §16).
//
// The chaos engine's digest is a fold over the run's complete observable
// history — event counts, traffic totals, fault accounting, membership
// outcome, every oracle verdict with its timestamp, and (for rate-step
// scripts) the whole equilibrium ledger. The sharded driver's claim is that
// this history is a pure function of the script, independent of the shard
// count: K=1 executes the original sequential engine verbatim, and any
// K > 1 must reproduce its digest bit for bit, along with the identical
// hcube.metrics.v1 JSON after the per-lane counter stripes merge.
//
// Three script classes cover the regimes the engine has: fail-stop churn
// with partition windows (the original tier), adversary-profile churn with
// the defensive hardening on (misbehave markings, planet latency), and an
// open-loop equilibrium run with rate windows, a spike, and steady-state
// probes. All three are run with drop = dup = 0 — the one fault family the
// sharded engine rejects by contract, since a shared probabilistic RNG
// stream has no canonical order across lanes (chaos/schedule.h, `shards`).
//
// The cross_shard_messages assertion keeps the test honest: a run whose
// hosts all hashed onto one lane would pass the digest check vacuously, so
// every K > 1 run must prove it actually exercised the mailbox path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "chaos/engine.h"
#include "chaos/schedule.h"
#include "obs/collect.h"
#include "obs/metrics.h"

namespace hcube::chaos {
namespace {

std::string metrics_json(const ChaosResult& result) {
  obs::MetricsRegistry reg;
  obs::collect_counters(result, reg);
  return reg.to_json();
}

// Runs the script at K = 1 (the sequential engine) and K in {2, 4, 8},
// asserting bit-identical digests, identical merged metrics JSON, and a
// genuinely exercised cross-shard path.
void expect_shard_invariant(ChurnScript script, const char* label) {
  script.config.shards = 1;
  const ChaosResult ref = run_script(script);
  const std::string ref_json = metrics_json(ref);
  EXPECT_EQ(ref.shards, 1u);
  EXPECT_EQ(ref.cross_shard_messages, 0u);
  for (std::uint32_t k : {2u, 4u, 8u}) {
    script.config.shards = k;
    const ChaosResult run = run_script(script);
    EXPECT_EQ(run.digest, ref.digest)
        << label << " K=" << k << ": got 0x" << std::hex << run.digest
        << ", sequential 0x" << ref.digest;
    EXPECT_EQ(metrics_json(run), ref_json) << label << " K=" << k;
    EXPECT_EQ(run.shards, k) << label;
    EXPECT_GT(run.cross_shard_messages, 0u)
        << label << " K=" << k
        << ": no cross-shard traffic — the digest check proved nothing";
    // The structured outcome matches too, not just its hash.
    EXPECT_EQ(run.ok, ref.ok) << label << " K=" << k;
    EXPECT_EQ(run.barriers.size(), ref.barriers.size()) << label;
    EXPECT_EQ(run.settled, ref.settled) << label << " K=" << k;
    EXPECT_EQ(run.events, ref.events) << label << " K=" << k;
  }
}

// Lossless variant of a sampled profile script: the shard contract forbids
// probabilistic drop/duplicate streams, so the differential runs disable
// them (in *both* modes — the digest comparison needs identical configs).
ChurnScript lossless(ChurnScript script) {
  script.config.drop = 0.0;
  script.config.duplicate = 0.0;
  return script;
}

TEST(ShardDeterminism, FailStopChurnWithPartitions) {
  const ChurnProfile* profile = find_profile("partition");
  ASSERT_NE(profile, nullptr);
  expect_shard_invariant(lossless(sample_script(11, *profile, 32)),
                         "partition");
}

TEST(ShardDeterminism, MixedChurn) {
  const ChurnProfile* profile = find_profile("mixed");
  ASSERT_NE(profile, nullptr);
  expect_shard_invariant(lossless(sample_script(3, *profile, 32)), "mixed");
}

TEST(ShardDeterminism, AdversaryProfile) {
  const ChurnProfile* profile = find_profile("adversary");
  ASSERT_NE(profile, nullptr);
  expect_shard_invariant(lossless(sample_script(7, *profile, 32)),
                         "adversary");
}

TEST(ShardDeterminism, EquilibriumRateWindowsWithSpike) {
  EquilibriumSpec spec;
  spec.rate_join = 12.0;
  spec.rate_leave = 6.0;
  spec.window_ms = 800.0;
  spec.ramp_windows = 1;
  spec.steady_windows = 2;
  spec.spike_mult = 3.0;
  spec.recovery_windows = 1;
  ChurnScript script = sample_equilibrium_script(5, spec);
  ASSERT_TRUE(script.has_rate_steps());
  expect_shard_invariant(lossless(std::move(script)), "equilibrium");
}

// Repeating the same sharded run must also be self-identical (thread
// scheduling must not leak into the result): two K=4 executions of one
// script, same digest. This is weaker than the differential checks above
// but fails with a clearer message when nondeterminism is *internal* to
// the sharded engine rather than a divergence from the sequential one.
TEST(ShardDeterminism, ShardedRunIsSelfReproducible) {
  const ChurnProfile* profile = find_profile("mixed");
  ASSERT_NE(profile, nullptr);
  ChurnScript script = lossless(sample_script(9, *profile, 24));
  script.config.shards = 4;
  const ChaosResult a = run_script(script);
  const ChaosResult b = run_script(script);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.cross_shard_messages, b.cross_shard_messages);
}

// The `shards` config key round-trips through the replay artifact, so a
// failing sharded CI run replays in the same mode.
TEST(ShardDeterminism, ShardCountSerializes) {
  const ChurnProfile* profile = find_profile("mixed");
  ASSERT_NE(profile, nullptr);
  ChurnScript script = lossless(sample_script(2, *profile, 8));
  script.config.shards = 4;
  const std::string text = script.serialize();
  std::string error;
  const auto parsed = ChurnScript::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->config.shards, 4u);
  EXPECT_EQ(parsed->serialize(), text);
}

}  // namespace
}  // namespace hcube::chaos
