// Model-based tests for the SPSC epoch mailbox (sim/mailbox.h) and the
// canonical barrier drain order it feeds (sim/shard_driver.h).
//
// The mailbox's contract is FIFO across its two storage regimes: a
// lock-free ring for the fast path and a mutex-guarded overflow vector once
// the ring fills, with a sticky spill flag so every ring entry precedes
// every overflow entry. The model tests drive seeded random interleavings
// of producer bursts and consumer drains — the shapes an epoch/barrier
// schedule actually produces — against a plain std::deque reference, with a
// deliberately tiny ring so the overflow path and the flag reset are
// exercised constantly, not just at pathological sizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <tuple>
#include <vector>

#include "sim/mailbox.h"
#include "util/rng.h"

namespace hcube {
namespace {

// One epoch-shaped interleaving: alternating producer bursts ("the epoch")
// and consumer drains ("the barrier"), both of seeded random size, with
// occasional partial drains (a barrier commits everything in practice, but
// the structure must not depend on that).
void run_model(std::uint64_t seed, int ops, std::size_t ring_capacity) {
  SpscMailbox<std::uint64_t> mail(ring_capacity);
  std::deque<std::uint64_t> reference;
  Rng rng(seed);
  std::uint64_t next_value = 0;
  std::uint64_t popped = 0;
  for (int op = 0; op < ops; ++op) {
    if (rng.next_bool(0.55)) {
      // Producer epoch: a burst of 1..2*ring pushes, so a single burst can
      // overfill the ring and spill mid-burst.
      const std::uint64_t burst = rng.next_in(1, 2 * ring_capacity);
      for (std::uint64_t i = 0; i < burst; ++i) {
        mail.push(next_value);
        reference.push_back(next_value);
        ++next_value;
      }
    } else {
      // Barrier drain: usually full, sometimes partial.
      const bool full = rng.next_bool(0.7);
      std::uint64_t budget =
          full ? ~std::uint64_t{0}
               : static_cast<std::uint64_t>(rng.next_in(0, 8));
      std::uint64_t v;
      while (budget-- > 0 && mail.pop(v)) {
        ASSERT_FALSE(reference.empty())
            << "pop yielded a value the model never pushed";
        EXPECT_EQ(v, reference.front()) << "FIFO violated at value " << v;
        reference.pop_front();
        ++popped;
      }
      if (full) {
        EXPECT_TRUE(reference.empty())
            << "mailbox reported empty while the model still holds "
            << reference.size() << " value(s)";
        EXPECT_TRUE(mail.empty());
      }
    }
  }
  // Final barrier: drain everything and reconcile the ledgers.
  std::uint64_t v;
  while (mail.pop(v)) {
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(v, reference.front());
    reference.pop_front();
    ++popped;
  }
  EXPECT_TRUE(reference.empty());
  EXPECT_TRUE(mail.empty());
  EXPECT_EQ(mail.pushed(), next_value);
  EXPECT_EQ(popped, next_value) << "every push must be popped exactly once";
}

TEST(MailboxModel, SeededInterleavingsMatchReferenceQueue) {
  // >= 3 seeds x 1000 ops, tiny ring: the overflow spill, the sticky flag,
  // and its reset on a draining pop all fire many times per run.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 0xdecafULL}) {
    SCOPED_TRACE(seed);
    run_model(seed, 1000, /*ring_capacity=*/8);
  }
}

TEST(MailboxModel, LargeRingNeverOverflows) {
  // Same interleavings against a ring big enough to never spill: the fast
  // path alone must uphold the identical FIFO contract.
  for (std::uint64_t seed : {5ULL, 6ULL, 7ULL}) {
    SCOPED_TRACE(seed);
    run_model(seed, 1000, /*ring_capacity=*/4096);
  }
}

TEST(MailboxModel, OverflowPreservesOrderAcrossRegimeBoundary) {
  // Directed probe of the exact boundary: fill the ring, spill past it,
  // then drain — the pop sequence must cross ring -> overflow seamlessly.
  SpscMailbox<std::uint64_t> mail(4);
  const std::uint64_t n = mail.ring_capacity() + 5;
  for (std::uint64_t i = 0; i < n; ++i) mail.push(i);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(mail.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(mail.pop(v));
  EXPECT_TRUE(mail.empty());
  // The sticky flag reset: after a full drain the ring fast path is back.
  mail.push(99);
  ASSERT_TRUE(mail.pop(v));
  EXPECT_EQ(v, 99u);
}

// Pins the canonical barrier drain order the driver promises: entries
// arrive tagged (epoch, src_shard, seq) and the merged commit sequence is
// exactly the lexicographic order of those tags — epochs ordered by the
// barriers themselves, sources by ascending lane index within a barrier,
// and pushes FIFO within a (epoch, src) pair. This is the order
// ShardedNet::commit_mailboxes implements; the test models one destination
// lane's view across two epochs.
TEST(MailboxModel, BarrierDrainFollowsCanonicalOrder) {
  using Tag = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;
  constexpr std::uint32_t kSources = 3;
  std::vector<SpscMailbox<Tag>> from_src(kSources);
  std::vector<Tag> committed;
  // The barrier: for each source lane ascending, drain FIFO.
  const auto barrier = [&] {
    for (std::uint32_t src = 0; src < kSources; ++src) {
      Tag t;
      while (from_src[src].pop(t)) committed.push_back(t);
    }
  };
  // Epoch 0: sources push out of lane order, interleaved.
  from_src[2].push({0, 2, 0});
  from_src[0].push({0, 0, 0});
  from_src[1].push({0, 1, 0});
  from_src[0].push({0, 0, 1});
  from_src[2].push({0, 2, 1});
  barrier();
  // Epoch 1: a different shape (source 1 silent, source 0 bursty).
  from_src[0].push({1, 0, 0});
  from_src[0].push({1, 0, 1});
  from_src[0].push({1, 0, 2});
  from_src[2].push({1, 2, 0});
  barrier();
  const std::vector<Tag> expected = {
      {0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {0, 2, 0}, {0, 2, 1},
      {1, 0, 0}, {1, 0, 1}, {1, 0, 2}, {1, 2, 0},
  };
  EXPECT_EQ(committed, expected);
  // The invariant in one line: the commit sequence is sorted by tag.
  EXPECT_TRUE(std::is_sorted(committed.begin(), committed.end()));
}

}  // namespace
}  // namespace hcube
