// Fixture-driven tests for tools/hclint: every violation class the linter
// knows is seeded in exactly one file under tests/fixtures/hclint/, and the
// scanner must flag it — while staying silent on the real src/ tree.
//
// Fixtures are linted one file at a time: each is a self-contained mini
// "protocol tree", and linting them together would splice their enums.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace hclint {
namespace {

std::vector<Issue> lint_fixture(const std::string& name) {
  return lint_paths({std::string(HCLINT_FIXTURE_DIR) + "/" + name});
}

bool has_rule(const std::vector<Issue>& issues, const std::string& rule) {
  for (const Issue& i : issues)
    if (i.rule == rule) return true;
  return false;
}

std::size_t count_rule(const std::vector<Issue>& issues,
                       const std::string& rule) {
  std::size_t n = 0;
  for (const Issue& i : issues)
    if (i.rule == rule) ++n;
  return n;
}

// ---- the real tree is clean ----

TEST(HclintRealTree, SrcIsClean) {
  const std::vector<Issue> issues = lint_paths({HCLINT_SRC_DIR});
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
}

TEST(HclintRealTree, BinaryExitsZeroOnSrc) {
  const std::string cmd =
      std::string(HCLINT_BIN) + " " + HCLINT_SRC_DIR + " > /dev/null 2>&1";
  EXPECT_EQ(0, std::system(cmd.c_str()));
}

TEST(HclintRealTree, BinaryExitsNonZeroOnSeededViolation) {
  const std::string cmd = std::string(HCLINT_BIN) + " " + HCLINT_FIXTURE_DIR +
                          "/rand_in_src.cpp > /dev/null 2>&1";
  EXPECT_NE(0, std::system(cmd.c_str()));
}

TEST(HclintRealTree, NoWaiversInSrc) {
  // The stale-waiver audit: src/ carries zero waivers today, and any new
  // one must suppress a real finding (waiver-unused) — this pins the
  // "zero waivers" baseline the thread-safety acceptance relies on.
  const LintResult result = lint_paths_full({HCLINT_SRC_DIR});
  EXPECT_TRUE(result.waivers.empty()) << format_waivers(result.waivers);
}

TEST(HclintRealTree, BinaryFailsOnInjectedLayerBackEdge) {
  const std::string cmd = std::string(HCLINT_BIN) + " " + HCLINT_FIXTURE_DIR +
                          "/src/core/layer_backedge.cpp > /dev/null 2>&1";
  EXPECT_NE(0, std::system(cmd.c_str()));
}

TEST(HclintRealTree, BinaryReportWaiversExitsZero) {
  // --report-waivers is a report, not a gate: exits 0 even when the
  // scanned file's waiver inventory is non-empty.
  const std::string cmd = std::string(HCLINT_BIN) + " --report-waivers " +
                          HCLINT_FIXTURE_DIR +
                          "/suppressed_rand.cpp > /dev/null 2>&1";
  EXPECT_EQ(0, std::system(cmd.c_str()));
}

// ---- one fixture per violation class ----

TEST(HclintFixtures, MissingCodecDecodeCase) {
  const auto issues = lint_fixture("missing_codec_case.cpp");
  EXPECT_TRUE(has_rule(issues, "codec-decode-missing"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MissingTypeNameArm) {
  const auto issues = lint_fixture("missing_type_name_arm.cpp");
  EXPECT_TRUE(has_rule(issues, "type-name-missing")) << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MissingEncodeCase) {
  const auto issues = lint_fixture("missing_encode_case.cpp");
  EXPECT_TRUE(has_rule(issues, "codec-encode-missing"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MissingWireSizeCase) {
  const auto issues = lint_fixture("missing_wire_size_case.cpp");
  EXPECT_TRUE(has_rule(issues, "wire-size-missing")) << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MissingStatusToStringArm) {
  const auto issues = lint_fixture("missing_status_arm.cpp");
  EXPECT_TRUE(has_rule(issues, "status-to-string-missing"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, CountMismatch) {
  const auto issues = lint_fixture("count_mismatch.cpp");
  EXPECT_EQ(2u, count_rule(issues, "msg-count-mismatch"))
      << format_issues(issues);
}

TEST(HclintFixtures, RandInSrc) {
  const auto issues = lint_fixture("rand_in_src.cpp");
  EXPECT_TRUE(has_rule(issues, "no-rand")) << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, WallClock) {
  const auto issues = lint_fixture("wall_clock.cpp");
  EXPECT_EQ(2u, count_rule(issues, "no-wall-clock")) << format_issues(issues);
  EXPECT_EQ(2u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, NakedNewAndDelete) {
  const auto issues = lint_fixture("naked_new.cpp");
  EXPECT_EQ(1u, count_rule(issues, "no-naked-new")) << format_issues(issues);
  EXPECT_EQ(1u, count_rule(issues, "no-naked-delete")) << format_issues(issues);
  // "= delete" / "= default" must not be flagged.
  EXPECT_EQ(2u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, DcheckSideEffect) {
  const auto issues = lint_fixture("dcheck_side_effect.cpp");
  EXPECT_TRUE(has_rule(issues, "dcheck-side-effect")) << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, AllowCommentSuppresses) {
  const auto issues = lint_fixture("suppressed_rand.cpp");
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
}

TEST(HclintFixtures, DenseIdHeapMapInCore) {
  // The fixture lives under .../src/core/ so the path gate puts it in
  // scope. Four NodeId-keyed containers are flagged; uint64-keyed maps,
  // NodeIdSet and the waived line are not.
  const auto issues = lint_fixture("src/core/dense_id_heap_map.cpp");
  EXPECT_EQ(4u, count_rule(issues, "dense-id-no-heap-map"))
      << format_issues(issues);
  EXPECT_EQ(4u, issues.size()) << format_issues(issues);
}

TEST(HclintScanner, DenseIdRuleScopedToCore) {
  // The same text outside src/core/ is none of the rule's business (other
  // layers may keep NodeId-keyed heap maps until they migrate).
  const std::vector<SourceFile> files = {
      {"src/dht/store.h", "std::unordered_map<NodeId, int> by_node;\n"}};
  EXPECT_TRUE(lint_files(files).empty());
}

TEST(HclintFixtures, MetricBadName) {
  const auto issues = lint_fixture("metric_bad_name.cpp");
  EXPECT_EQ(1u, count_rule(issues, "obs-metric-registered"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MetricDuplicateName) {
  const auto issues = lint_fixture("metric_duplicate.cpp");
  EXPECT_EQ(1u, count_rule(issues, "obs-metric-registered"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintScanner, MetricDuplicateAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"a.h", "HCUBE_METRIC(kA, \"net.messages\");"},
      {"b.h", "HCUBE_METRIC(kB, \"net.messages\");"}};
  const auto issues = lint_files(files);
  EXPECT_EQ(1u, count_rule(issues, "obs-metric-registered"))
      << format_issues(issues);
  EXPECT_EQ("b.h", issues.at(0).file);
}

TEST(HclintScanner, MetricNameMustBeLiteral) {
  const std::vector<SourceFile> files = {
      {"a.h", "HCUBE_METRIC(kA, kSomeOtherName);"}};
  EXPECT_TRUE(has_rule(lint_files(files), "obs-metric-registered"));
}

// ---- v2 rule families ----

TEST(HclintFixtures, LayeringBackEdge) {
  const auto issues = lint_fixture("src/core/layer_backedge.cpp");
  EXPECT_EQ(1u, count_rule(issues, "layering-acyclic-includes"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, LayeringBackEdgeWaived) {
  const auto issues = lint_fixture("src/core/layer_backedge_waived.cpp");
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
}

TEST(HclintScanner, SameLayerIncludeCycleFlagged) {
  // net (3) <-> sim (3): legal individually, a cycle together. Both
  // include sites are flagged.
  const std::vector<SourceFile> files = {
      {"src/net/a.h", "#include \"sim/b.h\"\n"},
      {"src/sim/b.h", "#include \"net/a.h\"\n"}};
  const auto issues = lint_files(files);
  EXPECT_EQ(2u, count_rule(issues, "layering-acyclic-includes"))
      << format_issues(issues);
}

TEST(HclintScanner, SameLayerAcyclicIncludeIsFine) {
  const std::vector<SourceFile> files = {
      {"src/net/a.h", "#include \"sim/b.h\"\n"},
      {"src/obs/c.h", "#include \"analysis/d.h\"\n"}};
  EXPECT_TRUE(lint_files(files).empty());
}

TEST(HclintScanner, LayeringIgnoresFilesOutsideSrc) {
  // tools/ and tests/ may include anything; only src/ modules are ranked.
  const std::vector<SourceFile> files = {
      {"tools/bench.cpp", "#include \"chaos/engine.h\"\n"}};
  EXPECT_TRUE(lint_files(files).empty());
}

TEST(HclintFixtures, ScratchNoEscape) {
  const auto issues = lint_fixture("scratch_escape.cpp");
  EXPECT_EQ(5u, count_rule(issues, "scratch-no-escape"))
      << format_issues(issues);
  EXPECT_EQ(5u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, ScratchNoEscapeWaived) {
  const auto issues = lint_fixture("scratch_escape_waived.cpp");
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
}

TEST(HclintFixtures, SharedStateAnnotated) {
  const auto issues = lint_fixture("src/sim/shared_state.cpp");
  EXPECT_EQ(3u, count_rule(issues, "shared-state-annotated"))
      << format_issues(issues);
  EXPECT_EQ(3u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, SharedStateAnnotatedOrWaivedIsQuiet) {
  const auto issues = lint_fixture("src/sim/shared_state_waived.cpp");
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
}

TEST(HclintScanner, SharedStateScopedToSrc) {
  // The same text outside a src/ tree is out of scope (tests and tools
  // keep their local statics).
  const std::vector<SourceFile> files = {
      {"tests/helper.cpp", "static int g_counter = 0;\n"}};
  EXPECT_TRUE(lint_files(files).empty());
}

TEST(HclintFixtures, DigestNondeterminism) {
  const auto issues = lint_fixture("src/obs/digest_nondet.cpp");
  EXPECT_EQ(2u, count_rule(issues, "digest-nondeterminism"))
      << format_issues(issues);
  EXPECT_EQ(2u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, DigestNondeterminismWaived) {
  const auto issues = lint_fixture("src/obs/digest_nondet_waived.cpp");
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
}

TEST(HclintFixtures, StaleWaiverFlagged) {
  const auto issues = lint_fixture("stale_waiver.cpp");
  EXPECT_EQ(1u, count_rule(issues, "waiver-unused")) << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintScanner, WaiverUsageTrackedPerLine) {
  // Line 1's waiver suppresses a real finding; line 2's suppresses
  // nothing and is flagged as stale.
  const std::vector<SourceFile> files = {
      {"f.cpp",
       "int a = std::rand();  // hclint: allow(no-rand)\n"
       "int b = 0;  // hclint: allow(no-rand)\n"}};
  const LintResult result = lint_files_full(files);
  EXPECT_EQ(1u, count_rule(result.issues, "waiver-unused"))
      << format_issues(result.issues);
  ASSERT_EQ(2u, result.waivers.size());
  EXPECT_TRUE(result.waivers[0].used);
  EXPECT_FALSE(result.waivers[1].used);
}

// ---- scanner unit tests ----

TEST(HclintStripper, RemovesCommentsAndLiteralBodies) {
  const std::string out = strip_comments_and_strings(
      "int a; // new delete\n/* rand( */ int b = 0;\nconst char* s = "
      "\"std::rand()\";\n");
  EXPECT_EQ(std::string::npos, out.find("new"));
  EXPECT_EQ(std::string::npos, out.find("rand"));
  EXPECT_NE(std::string::npos, out.find("int a;"));
  EXPECT_NE(std::string::npos, out.find("int b = 0;"));
}

TEST(HclintStripper, PreservesLineStructure) {
  const std::string src = "a\n/* x\n y */\nb\n";
  const std::string out = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
}

TEST(HclintStripper, HandlesEscapedQuotes) {
  const std::string out =
      strip_comments_and_strings("const char* s = \"a\\\"new\\\"b\"; int x;");
  EXPECT_EQ(std::string::npos, out.find("new"));
  EXPECT_NE(std::string::npos, out.find("int x;"));
}

TEST(HclintScanner, FlagsCompoundAssignmentInDcheck) {
  const std::vector<SourceFile> files = {
      {"f.cpp", "void f(int a) { HCUBE_DCHECK(a += 1); }"}};
  EXPECT_TRUE(has_rule(lint_files(files), "dcheck-side-effect"));
}

TEST(HclintScanner, AcceptsComparisonsInDcheck) {
  const std::vector<SourceFile> files = {
      {"f.cpp",
       "void f(int a, int b) { HCUBE_DCHECK(a == b); HCUBE_DCHECK(a <= b); "
       "HCUBE_DCHECK(a >= b); HCUBE_DCHECK(a != b); }"}};
  EXPECT_TRUE(lint_files(files).empty());
}

}  // namespace
}  // namespace hclint
