// Fixture-driven tests for tools/hclint: every violation class the linter
// knows is seeded in exactly one file under tests/fixtures/hclint/, and the
// scanner must flag it — while staying silent on the real src/ tree.
//
// Fixtures are linted one file at a time: each is a self-contained mini
// "protocol tree", and linting them together would splice their enums.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace hclint {
namespace {

std::vector<Issue> lint_fixture(const std::string& name) {
  return lint_paths({std::string(HCLINT_FIXTURE_DIR) + "/" + name});
}

bool has_rule(const std::vector<Issue>& issues, const std::string& rule) {
  for (const Issue& i : issues)
    if (i.rule == rule) return true;
  return false;
}

std::size_t count_rule(const std::vector<Issue>& issues,
                       const std::string& rule) {
  std::size_t n = 0;
  for (const Issue& i : issues)
    if (i.rule == rule) ++n;
  return n;
}

// ---- the real tree is clean ----

TEST(HclintRealTree, SrcIsClean) {
  const std::vector<Issue> issues = lint_paths({HCLINT_SRC_DIR});
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
}

TEST(HclintRealTree, BinaryExitsZeroOnSrc) {
  const std::string cmd =
      std::string(HCLINT_BIN) + " " + HCLINT_SRC_DIR + " > /dev/null 2>&1";
  EXPECT_EQ(0, std::system(cmd.c_str()));
}

TEST(HclintRealTree, BinaryExitsNonZeroOnSeededViolation) {
  const std::string cmd = std::string(HCLINT_BIN) + " " + HCLINT_FIXTURE_DIR +
                          "/rand_in_src.cpp > /dev/null 2>&1";
  EXPECT_NE(0, std::system(cmd.c_str()));
}

// ---- one fixture per violation class ----

TEST(HclintFixtures, MissingCodecDecodeCase) {
  const auto issues = lint_fixture("missing_codec_case.cpp");
  EXPECT_TRUE(has_rule(issues, "codec-decode-missing"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MissingTypeNameArm) {
  const auto issues = lint_fixture("missing_type_name_arm.cpp");
  EXPECT_TRUE(has_rule(issues, "type-name-missing")) << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MissingEncodeCase) {
  const auto issues = lint_fixture("missing_encode_case.cpp");
  EXPECT_TRUE(has_rule(issues, "codec-encode-missing"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MissingWireSizeCase) {
  const auto issues = lint_fixture("missing_wire_size_case.cpp");
  EXPECT_TRUE(has_rule(issues, "wire-size-missing")) << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MissingStatusToStringArm) {
  const auto issues = lint_fixture("missing_status_arm.cpp");
  EXPECT_TRUE(has_rule(issues, "status-to-string-missing"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, CountMismatch) {
  const auto issues = lint_fixture("count_mismatch.cpp");
  EXPECT_EQ(2u, count_rule(issues, "msg-count-mismatch"))
      << format_issues(issues);
}

TEST(HclintFixtures, RandInSrc) {
  const auto issues = lint_fixture("rand_in_src.cpp");
  EXPECT_TRUE(has_rule(issues, "no-rand")) << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, WallClock) {
  const auto issues = lint_fixture("wall_clock.cpp");
  EXPECT_EQ(2u, count_rule(issues, "no-wall-clock")) << format_issues(issues);
  EXPECT_EQ(2u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, NakedNewAndDelete) {
  const auto issues = lint_fixture("naked_new.cpp");
  EXPECT_EQ(1u, count_rule(issues, "no-naked-new")) << format_issues(issues);
  EXPECT_EQ(1u, count_rule(issues, "no-naked-delete")) << format_issues(issues);
  // "= delete" / "= default" must not be flagged.
  EXPECT_EQ(2u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, DcheckSideEffect) {
  const auto issues = lint_fixture("dcheck_side_effect.cpp");
  EXPECT_TRUE(has_rule(issues, "dcheck-side-effect")) << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, AllowCommentSuppresses) {
  const auto issues = lint_fixture("suppressed_rand.cpp");
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
}

TEST(HclintFixtures, DenseIdHeapMapInCore) {
  // The fixture lives under .../src/core/ so the path gate puts it in
  // scope. Four NodeId-keyed containers are flagged; uint64-keyed maps,
  // NodeIdSet and the waived line are not.
  const auto issues = lint_fixture("src/core/dense_id_heap_map.cpp");
  EXPECT_EQ(4u, count_rule(issues, "dense-id-no-heap-map"))
      << format_issues(issues);
  EXPECT_EQ(4u, issues.size()) << format_issues(issues);
}

TEST(HclintScanner, DenseIdRuleScopedToCore) {
  // The same text outside src/core/ is none of the rule's business (other
  // layers may keep NodeId-keyed heap maps until they migrate).
  const std::vector<SourceFile> files = {
      {"src/dht/store.h", "std::unordered_map<NodeId, int> by_node;\n"}};
  EXPECT_TRUE(lint_files(files).empty());
}

TEST(HclintFixtures, MetricBadName) {
  const auto issues = lint_fixture("metric_bad_name.cpp");
  EXPECT_EQ(1u, count_rule(issues, "obs-metric-registered"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintFixtures, MetricDuplicateName) {
  const auto issues = lint_fixture("metric_duplicate.cpp");
  EXPECT_EQ(1u, count_rule(issues, "obs-metric-registered"))
      << format_issues(issues);
  EXPECT_EQ(1u, issues.size()) << format_issues(issues);
}

TEST(HclintScanner, MetricDuplicateAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"a.h", "HCUBE_METRIC(kA, \"net.messages\");"},
      {"b.h", "HCUBE_METRIC(kB, \"net.messages\");"}};
  const auto issues = lint_files(files);
  EXPECT_EQ(1u, count_rule(issues, "obs-metric-registered"))
      << format_issues(issues);
  EXPECT_EQ("b.h", issues.at(0).file);
}

TEST(HclintScanner, MetricNameMustBeLiteral) {
  const std::vector<SourceFile> files = {
      {"a.h", "HCUBE_METRIC(kA, kSomeOtherName);"}};
  EXPECT_TRUE(has_rule(lint_files(files), "obs-metric-registered"));
}

// ---- scanner unit tests ----

TEST(HclintStripper, RemovesCommentsAndLiteralBodies) {
  const std::string out = strip_comments_and_strings(
      "int a; // new delete\n/* rand( */ int b = 0;\nconst char* s = "
      "\"std::rand()\";\n");
  EXPECT_EQ(std::string::npos, out.find("new"));
  EXPECT_EQ(std::string::npos, out.find("rand"));
  EXPECT_NE(std::string::npos, out.find("int a;"));
  EXPECT_NE(std::string::npos, out.find("int b = 0;"));
}

TEST(HclintStripper, PreservesLineStructure) {
  const std::string src = "a\n/* x\n y */\nb\n";
  const std::string out = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
}

TEST(HclintStripper, HandlesEscapedQuotes) {
  const std::string out =
      strip_comments_and_strings("const char* s = \"a\\\"new\\\"b\"; int x;");
  EXPECT_EQ(std::string::npos, out.find("new"));
  EXPECT_NE(std::string::npos, out.find("int x;"));
}

TEST(HclintScanner, FlagsCompoundAssignmentInDcheck) {
  const std::vector<SourceFile> files = {
      {"f.cpp", "void f(int a) { HCUBE_DCHECK(a += 1); }"}};
  EXPECT_TRUE(has_rule(lint_files(files), "dcheck-side-effect"));
}

TEST(HclintScanner, AcceptsComparisonsInDcheck) {
  const std::vector<SourceFile> files = {
      {"f.cpp",
       "void f(int a, int b) { HCUBE_DCHECK(a == b); HCUBE_DCHECK(a <= b); "
       "HCUBE_DCHECK(a >= b); HCUBE_DCHECK(a != b); }"}};
  EXPECT_TRUE(lint_files(files).empty());
}

}  // namespace
}  // namespace hclint
