// ReliableTransport: the ARQ decorator must heal drops, duplicates and
// delays injected below it (FaultPlan), stay exactly-once toward handlers,
// and — on a clean network — never retransmit, never suppress, and recycle
// its in-flight slab instead of allocating.
#include "net/reliable_transport.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/fault_plan.h"
#include "net/loopback_transport.h"
#include "net/sim_transport.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::make_ids;

Message ping(const NodeId& sender) { return Message{sender, PingMsg{}}; }

TEST(ReliableTransport, CleanPathDeliversOnceWithZeroRetransmits) {
  EventQueue q;
  LoopbackTransport inner(q, 2);
  ReliableTransport rel(inner);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 1, 1);
  int delivered = 0;
  const HostId a = rel.add_endpoint([](HostId, const Message&) {});
  const HostId b = rel.add_endpoint([&](HostId, const Message&) { ++delivered; });
  for (int i = 0; i < 50; ++i) rel.send(a, b, ping(ids[0]));
  q.run();
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(rel.messages_delivered(), 50u);
  EXPECT_EQ(rel.rstats().tracked_sent, 50u);
  EXPECT_EQ(rel.rstats().retransmits, 0u);
  EXPECT_EQ(rel.rstats().dup_suppressed, 0u);
  EXPECT_EQ(rel.rstats().acks_sent, 50u);
  EXPECT_EQ(rel.rstats().give_ups, 0u);
  EXPECT_EQ(rel.in_flight(), 0u);
  // Inner transport saw the data plus one ack per message, nothing more.
  EXPECT_EQ(inner.messages_sent(), 100u);
}

TEST(ReliableTransport, RetransmissionHealsADroppedMessage) {
  EventQueue q;
  ConstantLatency latency(2, 10.0);
  SimTransport inner(q, latency);
  ReliabilityConfig cfg;
  cfg.rto_ms = 50.0;
  ReliableTransport rel(inner, cfg);
  FaultPlan plan(7);
  plan.set_default({.drop = 1.0, .max_drops = 1});
  plan.attach(inner);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 1, 2);
  std::vector<SimTime> delivered_at;
  const HostId a = rel.add_endpoint([](HostId, const Message&) {});
  const HostId b = rel.add_endpoint(
      [&](HostId, const Message&) { delivered_at.push_back(q.now()); });
  rel.send(a, b, ping(ids[0]));
  q.run();
  ASSERT_EQ(delivered_at.size(), 1u);
  // Lost at t=0, retransmitted at the RTO, delivered one latency later.
  EXPECT_DOUBLE_EQ(delivered_at[0], 60.0);
  EXPECT_EQ(plan.drops_injected(), 1u);
  EXPECT_EQ(rel.rstats().retransmits, 1u);
  EXPECT_EQ(rel.rstats().dup_suppressed, 0u);
  EXPECT_EQ(rel.in_flight(), 0u);
}

TEST(ReliableTransport, LostAckHealedByDuplicateSuppression) {
  EventQueue q;
  ConstantLatency latency(2, 10.0);
  SimTransport inner(q, latency);
  ReliabilityConfig cfg;
  cfg.rto_ms = 50.0;
  ReliableTransport rel(inner, cfg);
  FaultPlan plan(8);
  plan.set_for_type(MessageType::kRelAck, {.drop = 1.0, .max_drops = 1});
  plan.attach(inner);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 1, 3);
  int delivered = 0;
  const HostId a = rel.add_endpoint([](HostId, const Message&) {});
  const HostId b = rel.add_endpoint([&](HostId, const Message&) { ++delivered; });
  rel.send(a, b, ping(ids[0]));
  q.run();
  // The data message arrived once; its ack was lost, so the sender
  // retransmitted and the receiver suppressed the copy but re-acked it.
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(rel.rstats().retransmits, 1u);
  EXPECT_EQ(rel.rstats().dup_suppressed, 1u);
  EXPECT_EQ(rel.rstats().acks_sent, 2u);
  EXPECT_EQ(rel.in_flight(), 0u);
}

TEST(ReliableTransport, NetworkDuplicatesAreSuppressed) {
  EventQueue q;
  ConstantLatency latency(2, 10.0);
  SimTransport inner(q, latency);
  ReliableTransport rel(inner);
  FaultPlan plan(9);
  plan.set_for_type(MessageType::kPing, {.duplicate = 1.0});
  plan.attach(inner);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 1, 4);
  int delivered = 0;
  const HostId a = rel.add_endpoint([](HostId, const Message&) {});
  const HostId b = rel.add_endpoint([&](HostId, const Message&) { ++delivered; });
  rel.send(a, b, ping(ids[0]));
  q.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(plan.duplicates_injected(), 1u);
  EXPECT_EQ(rel.rstats().dup_suppressed, 1u);
  // Both copies were acked (the first ack might have been the lost one).
  EXPECT_EQ(rel.rstats().acks_sent, 2u);
  EXPECT_EQ(rel.rstats().retransmits, 0u);
  EXPECT_EQ(rel.in_flight(), 0u);
}

TEST(ReliableTransport, InjectedDelayIsAddedOnTopOfLatency) {
  EventQueue q;
  ConstantLatency latency(2, 10.0);
  SimTransport inner(q, latency);
  ReliableTransport rel(inner);  // default RTO 500 > 40: no retransmit
  FaultPlan plan(10);
  plan.set_for_type(MessageType::kPing,
                    {.delay = 1.0, .extra_delay_ms = 30.0});
  plan.attach(inner);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 1, 5);
  std::vector<SimTime> delivered_at;
  const HostId a = rel.add_endpoint([](HostId, const Message&) {});
  const HostId b = rel.add_endpoint(
      [&](HostId, const Message&) { delivered_at.push_back(q.now()); });
  rel.send(a, b, ping(ids[0]));
  q.run();
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_DOUBLE_EQ(delivered_at[0], 40.0);
  EXPECT_EQ(plan.delays_injected(), 1u);
  EXPECT_EQ(rel.rstats().retransmits, 0u);
  EXPECT_EQ(rel.in_flight(), 0u);
}

TEST(ReliableTransport, GiveUpAfterRetryBudget) {
  EventQueue q;
  ConstantLatency latency(2, 10.0);
  SimTransport inner(q, latency);
  ReliabilityConfig cfg;
  cfg.rto_ms = 20.0;
  cfg.backoff = 2.0;
  cfg.max_retries = 2;
  ReliableTransport rel(inner, cfg);
  FaultPlan plan(11);
  plan.set_for_pair(0, 1, {.drop = 1.0});  // a -> b is a black hole
  plan.attach(inner);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 1, 6);
  int delivered = 0;
  int gave_up = 0;
  const HostId a = rel.add_endpoint([](HostId, const Message&) {});
  const HostId b = rel.add_endpoint([&](HostId, const Message&) { ++delivered; });
  rel.on_give_up = [&](HostId from, HostId to, const Message& msg) {
    ++gave_up;
    EXPECT_EQ(from, a);
    EXPECT_EQ(to, b);
    EXPECT_EQ(type_of(msg.body), MessageType::kPing);
  };
  rel.send(a, b, ping(ids[0]));
  q.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(gave_up, 1);
  EXPECT_EQ(rel.rstats().retransmits, 2u);
  EXPECT_EQ(rel.rstats().give_ups, 1u);
  EXPECT_EQ(rel.in_flight(), 0u);
  // The abandoned message's slab slot was reclaimed.
  EXPECT_EQ(rel.inflight_pool_free(), rel.inflight_pool_size());
}

TEST(ReliableTransport, InFlightSlabIsRecycled) {
  EventQueue q;
  LoopbackTransport inner(q, 2);
  ReliableTransport rel(inner);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 2, 7);
  const HostId a = rel.add_endpoint([](HostId, const Message&) {});
  const HostId b = rel.add_endpoint([](HostId, const Message&) {});
  // Sequential sends: the ack frees the slot before the next send, so one
  // slot serves the whole stream.
  for (int i = 0; i < 100; ++i) {
    rel.send(a, b, ping(ids[0]));
    q.run();
  }
  EXPECT_EQ(rel.inflight_pool_size(), 1u);
  EXPECT_EQ(rel.inflight_pool_free(), 1u);
  // A burst of 10 unacked messages grows the slab to 10 and no further.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) rel.send(a, b, ping(ids[1]));
    q.run();
  }
  EXPECT_EQ(rel.inflight_pool_size(), 10u);
  EXPECT_EQ(rel.inflight_pool_free(), 10u);
  EXPECT_EQ(rel.rstats().retransmits, 0u);
}

TEST(ReliableTransport, DecoratorDropFilterMeansNeverSent) {
  // A drop at the decorator's own seam is "the app never sent it": no
  // sequence number, no retransmission, no inner traffic.
  EventQueue q;
  LoopbackTransport inner(q, 2);
  ReliableTransport rel(inner);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 1, 8);
  int delivered = 0;
  const HostId a = rel.add_endpoint([](HostId, const Message&) {});
  const HostId b = rel.add_endpoint([&](HostId, const Message&) { ++delivered; });
  rel.drop_filter = [](HostId, HostId, const Message&) { return true; };
  EXPECT_FALSE(rel.send(a, b, ping(ids[0])));
  q.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rel.messages_dropped(), 1u);
  EXPECT_EQ(rel.rstats().tracked_sent, 0u);
  EXPECT_EQ(inner.messages_sent(), 0u);
}

TEST(FaultPlanRules, PairBeatsTypeBeatsDefault) {
  FaultPlan plan(12);
  plan.set_default({.drop = 1.0});
  plan.set_for_type(MessageType::kPing, {});  // clean override for pings
  plan.set_for_pair(3, 4, {.drop = 1.0});     // but this pair is a black hole
  const IdParams params{4, 4};
  auto ids = make_ids(params, 1, 9);
  const Message ping_msg = ping(ids[0]);
  const Message pong_msg{ids[0], PongMsg{}};
  EXPECT_EQ(plan.decide(0, 1, ping_msg).action, FaultAction::kDeliver);
  EXPECT_EQ(plan.decide(0, 1, pong_msg).action, FaultAction::kDrop);
  EXPECT_EQ(plan.decide(3, 4, ping_msg).action, FaultAction::kDrop);
}

TEST(FaultPlanRules, SeededRunsAreReproducible) {
  const IdParams params{4, 4};
  auto ids = make_ids(params, 1, 10);
  const Message msg = ping(ids[0]);
  auto run = [&](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.set_default({.drop = 0.3, .duplicate = 0.3, .delay = 0.3,
                      .extra_delay_ms = 5.0});
    std::vector<int> outcome;
    for (int i = 0; i < 200; ++i) {
      const FaultDecision d = plan.decide(0, 1, msg);
      outcome.push_back(static_cast<int>(d.action) * 2 +
                        (d.extra_delay_ms > 0.0 ? 1 : 0));
    }
    return outcome;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace hcube
