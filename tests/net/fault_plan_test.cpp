// FaultPlan unit tests: time-windowed rules with tier fall-through, the
// first-class partition primitive, per-rule budgets and stats attribution,
// and the pair > type > default precedence order.
#include "net/fault_plan.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"

namespace hcube {
namespace {

using testing::make_ids;

Message ping(const NodeId& sender) { return Message{sender, PingMsg{}}; }

FaultPlan::Spec drop_always() {
  FaultPlan::Spec spec;
  spec.drop = 1.0;
  return spec;
}

TEST(FaultPlanWindows, RuleAppliesOnlyInsideItsWindow) {
  EventQueue queue;
  FaultPlan plan(1);
  plan.bind_clock(queue);
  FaultPlan::Spec spec = drop_always();
  spec.active_from_ms = 100.0;
  spec.active_until_ms = 200.0;
  plan.set_for_type(MessageType::kPing, spec);

  const IdParams params{4, 4};
  const auto ids = make_ids(params, 1, 1);
  std::vector<FaultAction> actions;
  for (const SimTime t : {50.0, 150.0, 199.0, 200.0, 250.0}) {
    queue.schedule_at(t,
                      [&] { actions.push_back(plan.decide(0, 1, ping(ids[0])).action); });
  }
  queue.run();
  ASSERT_EQ(actions.size(), 5u);
  EXPECT_EQ(actions[0], FaultAction::kDeliver);  // before the window
  EXPECT_EQ(actions[1], FaultAction::kDrop);     // inside
  EXPECT_EQ(actions[2], FaultAction::kDrop);     // inside (half-open end)
  EXPECT_EQ(actions[3], FaultAction::kDeliver);  // at active_until: closed
  EXPECT_EQ(actions[4], FaultAction::kDeliver);  // after the window
  EXPECT_EQ(plan.drops_injected(), 2u);
}

TEST(FaultPlanWindows, InactiveRuleFallsThroughToNextTier) {
  // A pair rule outside its window is skipped during matching, so the
  // always-on type rule underneath decides — and the charge lands on the
  // type rule's stats, not the pair's.
  EventQueue queue;
  FaultPlan plan(2);
  plan.bind_clock(queue);
  FaultPlan::Spec pair = drop_always();
  pair.active_until_ms = 100.0;
  plan.set_for_pair(0, 1, pair);
  plan.set_for_type(MessageType::kPing, drop_always());

  const IdParams params{4, 4};
  const auto ids = make_ids(params, 1, 2);
  queue.schedule_at(150.0, [&] {
    EXPECT_EQ(plan.decide(0, 1, ping(ids[0])).action, FaultAction::kDrop);
  });
  queue.run();
  const FaultPlan::Stats stats = plan.stats();
  ASSERT_EQ(stats.rules.size(), 3u);  // default, type kPing, pair 0->1
  for (const FaultPlan::RuleStats& rule : stats.rules) {
    if (rule.scope.rfind("pair", 0) == 0) {
      EXPECT_EQ(rule.drops_charged, 0u);
    }
    if (rule.scope.rfind("type", 0) == 0) {
      EXPECT_EQ(rule.drops_charged, 1u);
    }
  }
}

TEST(FaultPlanBudgets, ChargeExactlyTheBudget) {
  FaultPlan plan(3);
  FaultPlan::Spec spec = drop_always();
  spec.max_drops = 3;
  plan.set_default(spec);

  const IdParams params{4, 4};
  const auto ids = make_ids(params, 1, 3);
  int dropped = 0;
  for (int i = 0; i < 10; ++i) {
    if (plan.decide(0, 1, ping(ids[0])).action == FaultAction::kDrop) {
      ++dropped;
      EXPECT_LT(i, 3) << "budget exceeded";  // exactly the first three
    }
  }
  EXPECT_EQ(dropped, 3);
  EXPECT_EQ(plan.drops_injected(), 3u);
  const FaultPlan::Stats stats = plan.stats();
  ASSERT_FALSE(stats.rules.empty());
  EXPECT_EQ(stats.rules[0].scope, "default");
  EXPECT_EQ(stats.rules[0].drops_charged, 3u);
}

TEST(FaultPlanPrecedence, PairBeatsTypeBeatsDefault) {
  FaultPlan plan(4);
  plan.set_default(drop_always());
  plan.set_for_type(MessageType::kPing, drop_always());
  plan.set_for_pair(0, 1, FaultPlan::Spec{});  // explicit deliver-everything

  const IdParams params{4, 4};
  const auto ids = make_ids(params, 1, 4);
  // Pair rule wins for 0->1 (deliver) — and it is directional.
  EXPECT_EQ(plan.decide(0, 1, ping(ids[0])).action, FaultAction::kDeliver);
  EXPECT_EQ(plan.decide(1, 0, ping(ids[0])).action, FaultAction::kDrop);
  // No pair and no type rule: the default decides.
  EXPECT_EQ(plan.decide(2, 3, Message{ids[0], PongMsg{}}).action,
            FaultAction::kDrop);
  const FaultPlan::Stats stats = plan.stats();
  std::uint64_t default_drops = 0, type_drops = 0;
  for (const FaultPlan::RuleStats& rule : stats.rules) {
    if (rule.scope == "default") default_drops = rule.drops_charged;
    if (rule.scope.rfind("type", 0) == 0) type_drops = rule.drops_charged;
  }
  EXPECT_EQ(type_drops, 1u);     // 1->0 ping
  EXPECT_EQ(default_drops, 1u);  // 2->3 pong
}

TEST(FaultPlanPartition, CutsCrossGroupTrafficForTheWindow) {
  EventQueue queue;
  FaultPlan plan(5);
  plan.bind_clock(queue);
  plan.partition({{0, 1}, {2, 3}}, 100.0, 200.0);

  const IdParams params{4, 4};
  const auto ids = make_ids(params, 1, 5);
  queue.schedule_at(150.0, [&] {
    EXPECT_TRUE(plan.partitioned(0, 2));
    EXPECT_FALSE(plan.partitioned(0, 1));
    // Cross-group: dropped, charged to the partition counter.
    EXPECT_EQ(plan.decide(0, 2, ping(ids[0])).action, FaultAction::kDrop);
    EXPECT_EQ(plan.decide(3, 1, ping(ids[0])).action, FaultAction::kDrop);
    // Same group: unaffected.
    EXPECT_EQ(plan.decide(0, 1, ping(ids[0])).action, FaultAction::kDeliver);
    // A host absent from every group is unaffected.
    EXPECT_EQ(plan.decide(0, 7, ping(ids[0])).action, FaultAction::kDeliver);
  });
  queue.schedule_at(250.0, [&] {
    // The window closed: the partition healed by itself.
    EXPECT_FALSE(plan.partitioned(0, 2));
    EXPECT_EQ(plan.decide(0, 2, ping(ids[0])).action, FaultAction::kDeliver);
  });
  queue.run();
  EXPECT_EQ(plan.partition_drops(), 2u);
  EXPECT_EQ(plan.drops_injected(), 0u)
      << "partition drops must not be charged to per-rule fault budgets";
}

TEST(FaultPlanWindows, WindowEdgesAreHalfOpen) {
  // Regression pin for the exact closing-edge semantics: every time window
  // in the plan — rule activation and partition alike — is half-open
  // [start, end). In particular t == start is inside, t == end is outside,
  // and back-to-back windows [a, b) + [b, c) hand off at the seam with
  // neither a gap nor a double-match. All three layers are exercised at the
  // exact edges: the shared helper, a windowed rule, and a partition.
  EXPECT_FALSE(FaultPlan::window_contains(99.999, 100.0, 200.0));
  EXPECT_TRUE(FaultPlan::window_contains(100.0, 100.0, 200.0));   // open edge
  EXPECT_FALSE(FaultPlan::window_contains(200.0, 100.0, 200.0));  // close edge
  EXPECT_FALSE(FaultPlan::window_contains(200.001, 100.0, 200.0));

  EventQueue queue;
  FaultPlan plan(8);
  plan.bind_clock(queue);
  FaultPlan::Spec rule = drop_always();
  rule.active_from_ms = 100.0;
  rule.active_until_ms = 200.0;
  plan.set_for_type(MessageType::kPing, rule);
  plan.partition({{0}, {1}}, 100.0, 200.0);

  const IdParams params{4, 4};
  const auto ids = make_ids(params, 1, 8);
  queue.schedule_at(100.0, [&] {  // opening edge: both layers active
    EXPECT_TRUE(plan.partitioned(0, 1));
    EXPECT_EQ(plan.decide(2, 3, ping(ids[0])).action, FaultAction::kDrop);
  });
  queue.schedule_at(200.0, [&] {  // closing edge: both layers inactive
    EXPECT_FALSE(plan.partitioned(0, 1));
    EXPECT_EQ(plan.decide(2, 3, ping(ids[0])).action, FaultAction::kDeliver);
  });
  queue.run();
  EXPECT_EQ(plan.drops_injected(), 1u);
}

TEST(FaultPlanWindows, BackToBackWindowsHandOffAtTheSeam) {
  // [0, 100) drops, [100, 200) delivers explicitly: exactly one rule owns
  // t == 100. Were the close edge inclusive, both would match and tier
  // order would decide — the half-open contract makes the seam unambiguous.
  EventQueue queue;
  FaultPlan plan(9);
  plan.bind_clock(queue);
  FaultPlan::Spec first = drop_always();
  first.active_until_ms = 100.0;
  plan.set_for_pair(0, 1, first);
  FaultPlan::Spec second;  // deliver-everything
  second.active_from_ms = 100.0;
  second.active_until_ms = 200.0;
  plan.set_for_type(MessageType::kPing, second);
  plan.set_default(drop_always());

  const IdParams params{4, 4};
  const auto ids = make_ids(params, 1, 9);
  queue.schedule_at(100.0, [&] {
    // Pair rule just closed; the type rule just opened and wins the seam.
    EXPECT_EQ(plan.decide(0, 1, ping(ids[0])).action, FaultAction::kDeliver);
  });
  queue.schedule_at(200.0, [&] {
    // Type rule closed too: fall through to the always-on default.
    EXPECT_EQ(plan.decide(0, 1, ping(ids[0])).action, FaultAction::kDrop);
  });
  queue.run();
}

TEST(FaultPlanPartition, OverlappingWindowsEachSeparate) {
  EventQueue queue;
  FaultPlan plan(6);
  plan.bind_clock(queue);
  plan.partition({{0}, {1}}, 0.0, 300.0);
  plan.partition({{0}, {2}}, 100.0, 200.0);

  queue.schedule_at(150.0, [&] {
    EXPECT_TRUE(plan.partitioned(0, 1));
    EXPECT_TRUE(plan.partitioned(0, 2));
    EXPECT_FALSE(plan.partitioned(1, 2));  // never separated by one window
  });
  queue.schedule_at(250.0, [&] {
    EXPECT_TRUE(plan.partitioned(0, 1));   // long window still open
    EXPECT_FALSE(plan.partitioned(0, 2));  // short window healed
  });
  queue.run();
}

TEST(FaultPlanDecisions, DuplicateAndDelay) {
  FaultPlan plan(7);
  FaultPlan::Spec spec;
  spec.duplicate = 1.0;
  spec.delay = 1.0;
  spec.extra_delay_ms = 25.0;
  plan.set_default(spec);

  const IdParams params{4, 4};
  const auto ids = make_ids(params, 1, 7);
  const FaultDecision decision = plan.decide(0, 1, ping(ids[0]));
  EXPECT_EQ(decision.action, FaultAction::kDuplicate);
  EXPECT_DOUBLE_EQ(decision.extra_delay_ms, 25.0);
  EXPECT_EQ(plan.duplicates_injected(), 1u);
  EXPECT_EQ(plan.delays_injected(), 1u);
}

}  // namespace
}  // namespace hcube
