#include "net/loopback_transport.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/sim_transport.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::make_ids;

Message ping(const NodeId& sender) { return Message{sender, PingMsg{}}; }

TEST(LoopbackTransport, DeliversAtCurrentTime) {
  EventQueue q;
  LoopbackTransport t(q, 2);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 2, 1);
  std::vector<double> delivered_at;
  const HostId a = t.add_endpoint([](HostId, const Message&) {});
  t.add_endpoint(
      [&](HostId, const Message&) { delivered_at.push_back(q.now()); });
  q.schedule_at(7.0, [&] { t.send(a, 1, ping(ids[0])); });
  q.run();
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_DOUBLE_EQ(delivered_at[0], 7.0);  // zero latency, same instant
}

TEST(LoopbackTransport, DeliveryIsAsynchronous) {
  // Zero latency must not mean reentrant: a send from inside a handler is
  // delivered after the handler returns, through the event queue.
  EventQueue q;
  LoopbackTransport t(q, 2);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 2, 2);
  std::vector<int> order;
  const HostId a = t.add_endpoint([&](HostId, const Message&) {
    order.push_back(2);  // reply arrives
  });
  const HostId b = t.add_endpoint([&](HostId from, const Message&) {
    order.push_back(0);
    t.send(1, from, ping(ids[1]));
    order.push_back(1);  // runs before the reply is handled
  });
  t.send(a, b, ping(ids[0]));
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(LoopbackTransport, PerPairFifo) {
  EventQueue q;
  LoopbackTransport t(q, 2);
  const IdParams params{16, 8};
  auto ids = make_ids(params, 20, 3);
  std::vector<NodeId> received;
  const HostId a = t.add_endpoint([](HostId, const Message&) {});
  const HostId b = t.add_endpoint(
      [&](HostId, const Message& m) { received.push_back(m.sender); });
  for (int i = 0; i < 20; ++i) t.send(a, b, ping(ids[i]));
  q.run();
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[i], ids[i]);
}

TEST(LoopbackTransport, InterleavedPairsEachStayFifo) {
  EventQueue q;
  LoopbackTransport t(q, 3);
  const IdParams params{16, 8};
  auto ids = make_ids(params, 40, 4);
  std::vector<NodeId> from_a, from_b;
  const HostId a = t.add_endpoint([](HostId, const Message&) {});
  const HostId b = t.add_endpoint([](HostId, const Message&) {});
  t.add_endpoint([&](HostId from, const Message& m) {
    (from == 0 ? from_a : from_b).push_back(m.sender);
  });
  for (int i = 0; i < 20; ++i) {
    t.send(a, 2, ping(ids[i]));
    t.send(b, 2, ping(ids[20 + i]));
  }
  q.run();
  ASSERT_EQ(from_a.size(), 20u);
  ASSERT_EQ(from_b.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(from_a[i], ids[i]);
    EXPECT_EQ(from_b[i], ids[20 + i]);
  }
}

TEST(SimTransport, DeliversWithModelLatencyAndFifo) {
  EventQueue q;
  ConstantLatency latency(2, 10.0);
  SimTransport t(q, latency);
  const IdParams params{16, 8};
  auto ids = make_ids(params, 20, 5);
  std::vector<std::pair<double, NodeId>> received;
  const HostId a = t.add_endpoint([](HostId, const Message&) {});
  const HostId b = t.add_endpoint([&](HostId, const Message& m) {
    received.push_back({q.now(), m.sender});
  });
  for (int i = 0; i < 20; ++i) t.send(a, b, ping(ids[i]));
  q.run();
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(received[i].first, 10.0);
    EXPECT_EQ(received[i].second, ids[i]);
  }
  EXPECT_EQ(t.messages_sent(), 20u);
  EXPECT_EQ(t.messages_delivered(), 20u);
}

TEST(PooledTransport, DropFilterAndOnSendHooks) {
  EventQueue q;
  LoopbackTransport t(q, 2);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 10, 6);
  int delivered = 0, observed = 0;
  const HostId a = t.add_endpoint([](HostId, const Message&) {});
  const HostId b = t.add_endpoint([&](HostId, const Message&) { ++delivered; });
  t.on_send = [&](HostId, HostId, const Message&) { ++observed; };
  int n = 0;
  t.drop_filter = [&n](HostId, HostId, const Message&) {
    return n++ % 2 == 0;
  };
  for (int i = 0; i < 10; ++i) t.send(a, b, ping(ids[i]));
  q.run();
  EXPECT_EQ(observed, 10);  // hook fires before drop filtering
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(t.messages_dropped(), 5u);
  EXPECT_EQ(t.messages_sent(), 5u);
}

TEST(PooledTransport, PayloadSlabIsRecycled) {
  EventQueue q;
  LoopbackTransport t(q, 2);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 2, 7);
  const HostId a = t.add_endpoint([](HostId, const Message&) {});
  const HostId b = t.add_endpoint([](HostId, const Message&) {});
  // Sequential sends: each delivery frees its slot before the next send, so
  // one slot serves the whole stream.
  for (int i = 0; i < 100; ++i) {
    t.send(a, b, ping(ids[0]));
    q.run();
  }
  EXPECT_EQ(t.payload_pool_size(), 1u);
  EXPECT_EQ(t.payload_pool_free(), 1u);
  // A burst of 10 in-flight messages grows the slab to 10 and no further.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) t.send(a, b, ping(ids[1]));
    q.run();
  }
  EXPECT_EQ(t.payload_pool_size(), 10u);
  EXPECT_EQ(t.payload_pool_free(), 10u);
}

TEST(OverlayOnLoopback, JoinWaveConvergesConsistently) {
  // The whole protocol runs over the zero-latency transport: every message
  // still goes through the queue (causality preserved), latencies are just
  // zero, so the network converges in simulated time 0.
  const IdParams params{4, 5};
  EventQueue queue;
  LoopbackTransport transport(queue, 24);
  Overlay overlay(params, {}, transport);
  auto ids = make_ids(params, 24, 8);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 16);
  build_consistent_network(overlay, v);
  Rng rng(9);
  const std::vector<NodeId> w(ids.begin() + 16, ids.end());
  join_concurrently(overlay, w, v, rng, /*window_ms=*/0.0);
  overlay.run_to_quiescence();

  EXPECT_TRUE(overlay.all_in_system());
  EXPECT_TRUE(check_consistency(view_of(overlay)).consistent());
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
  EXPECT_EQ(transport.messages_delivered(), transport.messages_sent());
  EXPECT_EQ(transport.payload_pool_free(), transport.payload_pool_size());
}

TEST(OverlayOnLoopback, RunsAreDeterministic) {
  // All deliveries land at t=0; ordering rests entirely on the queue's
  // sequence-number tie-break, so two identical runs must match exactly.
  const IdParams params{4, 5};
  auto run_once = [&] {
    EventQueue queue;
    LoopbackTransport transport(queue, 20);
    Overlay overlay(params, {}, transport);
    auto ids = make_ids(params, 20, 12);
    const std::vector<NodeId> v(ids.begin(), ids.begin() + 12);
    build_consistent_network(overlay, v);
    Rng rng(13);
    const std::vector<NodeId> w(ids.begin() + 12, ids.end());
    join_concurrently(overlay, w, v, rng, /*window_ms=*/0.0);
    overlay.run_to_quiescence();
    EXPECT_TRUE(overlay.all_in_system());
    return std::pair{overlay.totals().messages, overlay.totals().bytes};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hcube
