// ReliableTransport retry exhaustion against a *permanently* silent peer.
// The ARQ layer's contract is bounded: after max_retries RTO expiries the
// message is abandoned, on_give_up fires, and recovery belongs to the
// protocol tier — the join-stall watchdog. These tests pin that whole
// hand-off chain: bounded retries -> give-up callback -> watchdog restarts
// -> (when every restart hits the same dead wire) a clean bounded abort
// that leaves the rest of the network consistent and the transport empty.
// Companion to reliable_join_test.cpp, where the silence is transient and
// the watchdog's restart actually completes.
#include <gtest/gtest.h>

#include <vector>

#include "core/consistency.h"
#include "core/view.h"
#include "net/fault_plan.h"
#include "net/reliable_transport.h"
#include "net/sim_transport.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::make_ids;

struct ReliableWorld {
  EventQueue queue;
  SyntheticLatency latency;
  SimTransport inner;
  ReliableTransport transport;
  Overlay overlay;

  ReliableWorld(const IdParams& params, std::uint32_t max_hosts,
                const ProtocolOptions& options, ReliabilityConfig cfg,
                std::uint64_t latency_seed)
      : latency(max_hosts, 5.0, 120.0, latency_seed),
        inner(queue, latency),
        transport(inner, cfg),
        overlay(params, options, transport) {}
};

TEST(RetryExhaustion, SilentGatewayGivesUpThenWatchdogAbortsCleanly) {
  for (const std::uint64_t seed : {7ULL, 8ULL}) {
    const IdParams params{4, 6};
    ProtocolOptions options;
    options.join_watchdog_ms = 20000.0;  // > the full retry span per attempt
    options.join_max_restarts = 3;
    ReliabilityConfig cfg;
    cfg.rto_ms = 500.0;
    cfg.backoff = 2.0;
    cfg.max_retries = 2;
    ReliableWorld world(params, 20, options, cfg, seed);

    auto ids = make_ids(params, 17, seed);
    const std::vector<NodeId> v(ids.begin(), ids.begin() + 16);
    const NodeId joiner = ids.back();
    build_consistent_network(world.overlay, v);

    // The joiner's one entry point is a host that never answers it again:
    // both directions of the pair are blackholed (data, replies and acks
    // alike), so every attempt through it must exhaust the retry budget.
    world.overlay.schedule_join(joiner, v[0], 0.0);
    const HostId hj = world.overlay.host_of(joiner);
    const HostId hg = world.overlay.host_of(v[0]);
    FaultPlan plan(seed);
    plan.set_for_pair(hj, hg, {.drop = 1.0});
    plan.set_for_pair(hg, hj, {.drop = 1.0});
    plan.attach(world.inner);

    std::uint64_t give_ups_from_joiner = 0;
    world.transport.on_give_up = [&](HostId from, HostId to, const Message&) {
      if (from == hj && to == hg) ++give_ups_from_joiner;
    };

    world.overlay.run_to_quiescence();

    const Node& jn = world.overlay.at(joiner);
    const JoinStats& s = jn.join_stats();
    // Bounded retries ended in give-ups, reported through the callback …
    EXPECT_GE(give_ups_from_joiner, 1u) << "seed " << seed;
    EXPECT_GE(world.transport.rstats().give_ups, give_ups_from_joiner)
        << "seed " << seed;
    // … and the watchdog took over: one restart per abandoned attempt,
    // until the whole restart budget was spent on the same dead wire.
    EXPECT_EQ(s.watchdog_restarts, options.join_max_restarts)
        << "seed " << seed;
    EXPECT_NE(jn.status(), NodeStatus::kInSystem) << "seed " << seed;
    // Clean abort, not a wedge: the queue drained, nothing is still in
    // flight, and the seed network the joiner never reached is untouched.
    EXPECT_EQ(world.transport.in_flight(), 0u) << "seed " << seed;
    NetworkView settled(params);
    for (const auto& node : world.overlay.nodes())
      if (node->is_s_node()) settled.add(&node->table());
    const auto report = check_consistency(settled);
    EXPECT_TRUE(report.consistent())
        << "seed " << seed << "\n" << report.summary(params);
  }
}

TEST(RetryExhaustion, GiveUpCountsMatchAttemptAccounting) {
  // Same dead wire, one seed, tighter accounting: attempts = 1 original +
  // join_max_restarts restarts, and each attempt's CpRstMsg is abandoned
  // exactly once, so the transport's give-up counter from the joiner's
  // side equals the attempt count.
  const IdParams params{4, 6};
  ProtocolOptions options;
  options.join_watchdog_ms = 20000.0;
  options.join_max_restarts = 2;
  ReliabilityConfig cfg;
  cfg.rto_ms = 400.0;
  cfg.backoff = 2.0;
  cfg.max_retries = 1;
  ReliableWorld world(params, 20, options, cfg, 9);

  auto ids = make_ids(params, 17, 9);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 16);
  const NodeId joiner = ids.back();
  build_consistent_network(world.overlay, v);

  world.overlay.schedule_join(joiner, v[0], 0.0);
  const HostId hj = world.overlay.host_of(joiner);
  const HostId hg = world.overlay.host_of(v[0]);
  FaultPlan plan(9);
  plan.set_for_pair(hj, hg, {.drop = 1.0});
  plan.set_for_pair(hg, hj, {.drop = 1.0});
  plan.attach(world.inner);

  std::uint64_t give_ups_from_joiner = 0;
  world.transport.on_give_up = [&](HostId from, HostId, const Message&) {
    if (from == hj) ++give_ups_from_joiner;
  };
  world.overlay.run_to_quiescence();

  EXPECT_EQ(give_ups_from_joiner, options.join_max_restarts + 1u);
  EXPECT_EQ(world.overlay.at(joiner).join_stats().watchdog_restarts,
            options.join_max_restarts);
  EXPECT_EQ(world.transport.in_flight(), 0u);
}

}  // namespace
}  // namespace hcube
