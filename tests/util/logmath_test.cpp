#include "util/logmath.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hcube {
namespace {

TEST(LogMath, FactorialSmall) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogMath, BinomialMatchesExactSmall) {
  for (std::uint64_t n = 0; n <= 30; ++n) {
    for (std::uint64_t k = 0; k <= n; ++k) {
      const double expected =
          std::log(static_cast<double>(binomial_exact(n, k)));
      EXPECT_NEAR(log_binomial(static_cast<double>(n), k), expected,
                  1e-9 * std::max(1.0, std::abs(expected)))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogMath, BinomialMatchesExactLarge) {
  // C(60, 30) = 118264581564861424; still exact in __int128.
  const double expected =
      std::log(static_cast<double>(binomial_exact(60, 30)));
  EXPECT_NEAR(log_binomial(60.0, 30), expected, 1e-8);
}

TEST(LogMath, BinomialZeroChoose) {
  EXPECT_DOUBLE_EQ(log_binomial(0.0, 0), 0.0);
  EXPECT_EQ(log_binomial(0.0, 1), -std::numeric_limits<double>::infinity());
}

TEST(LogMath, BinomialKGreaterThanN) {
  EXPECT_EQ(log_binomial(5.0, 6), -std::numeric_limits<double>::infinity());
}

TEST(LogMath, BinomialHugePopulation) {
  // For N >> k, C(N, k) ~ N^k / k!: check the asymptotic form at the
  // magnitudes Theorem 4 needs (N = 16^40 ~ 1.46e48).
  const double N = std::pow(16.0, 40.0);
  const std::uint64_t k = 1000;
  const double expected =
      static_cast<double>(k) * std::log(N) - log_factorial(k);
  EXPECT_NEAR(log_binomial(N, k), expected, 1e-6 * std::abs(expected));
}

TEST(LogMath, BinomialPascalIdentity) {
  // C(N, k) = C(N-1, k-1) + C(N-1, k) in log space for a mid-size N.
  const double N = 5000.0;
  for (std::uint64_t k : {1ull, 7ull, 100ull, 2500ull}) {
    const double lhs = log_binomial(N, k);
    const double rhs = log_add_exp(log_binomial(N - 1, k - 1),
                                   log_binomial(N - 1, k));
    EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs)) << "k=" << k;
  }
}

TEST(LogMath, LogAddExpBasics) {
  EXPECT_NEAR(log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0),
              1e-12);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_add_exp(neg_inf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_add_exp(1.5, neg_inf), 1.5);
  EXPECT_EQ(log_add_exp(neg_inf, neg_inf), neg_inf);
}

TEST(LogMath, LogAddExpNoOverflow) {
  // Both operands far beyond exp() range.
  EXPECT_NEAR(log_add_exp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(log_add_exp(-1000.0, -1000.0), -1000.0 + std::log(2.0), 1e-9);
}

TEST(LogMath, LogSumExp) {
  EXPECT_EQ(log_sum_exp({}), -std::numeric_limits<double>::infinity());
  EXPECT_NEAR(log_sum_exp({std::log(1.0), std::log(2.0), std::log(3.0)}),
              std::log(6.0), 1e-12);
}

TEST(LogMath, BinomialExactSymmetry) {
  for (std::uint64_t n = 1; n <= 40; ++n)
    for (std::uint64_t k = 0; k <= n; ++k)
      EXPECT_EQ(binomial_exact(n, k), binomial_exact(n, n - k));
}

TEST(LogMath, BinomialExactRowSums) {
  // sum_k C(n, k) = 2^n.
  for (std::uint64_t n = 0; n <= 20; ++n) {
    unsigned __int128 sum = 0;
    for (std::uint64_t k = 0; k <= n; ++k) sum += binomial_exact(n, k);
    EXPECT_EQ(static_cast<std::uint64_t>(sum), 1ull << n);
  }
}

}  // namespace
}  // namespace hcube
