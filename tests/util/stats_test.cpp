#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hcube {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(StreamingStats, NumericalStabilityWithLargeOffset) {
  StreamingStats s;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) s.add(offset + x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(EmpiricalDistribution, MeanAndExtremes) {
  EmpiricalDistribution d;
  for (int v : {1, 2, 2, 3, 3, 3}) d.add(v);
  EXPECT_EQ(d.count(), 6u);
  EXPECT_NEAR(d.mean(), 14.0 / 6.0, 1e-12);
  EXPECT_EQ(d.min(), 1);
  EXPECT_EQ(d.max(), 3);
}

TEST(EmpiricalDistribution, Cdf) {
  EmpiricalDistribution d;
  for (int v : {1, 2, 2, 3, 3, 3, 10}) d.add(v);
  EXPECT_DOUBLE_EQ(d.cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1), 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(d.cdf(2), 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(d.cdf(3), 6.0 / 7.0);
  EXPECT_DOUBLE_EQ(d.cdf(9), 6.0 / 7.0);
  EXPECT_DOUBLE_EQ(d.cdf(10), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(1000), 1.0);
}

TEST(EmpiricalDistribution, Quantiles) {
  EmpiricalDistribution d;
  for (int v = 1; v <= 100; ++v) d.add(v);
  EXPECT_EQ(d.quantile(0.01), 1);
  EXPECT_EQ(d.quantile(0.5), 50);
  EXPECT_EQ(d.quantile(0.99), 99);
  EXPECT_EQ(d.quantile(1.0), 100);
}

TEST(EmpiricalDistribution, CdfPointsAreMonotone) {
  EmpiricalDistribution d;
  for (int v : {5, 1, 9, 1, 5, 5, 2}) d.add(v);
  const auto points = d.cdf_points();
  ASSERT_EQ(points.size(), 4u);  // distinct values 1, 2, 5, 9
  double prev = 0.0;
  for (const auto& [value, p] : points) {
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // bin 0
  h.add(0.999);  // bin 0
  h.add(5.0);    // bin 5
  h.add(9.999);  // bin 9
  h.add(10.0);   // overflow
  h.add(-0.1);   // underflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[5], 1u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(Histogram, BinBoundaries) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 75.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 100.0);
}

TEST(Histogram, ToStringMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

}  // namespace
}  // namespace hcube
