#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hcube {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBound = 10;
  constexpr int kTrials = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kTrials; ++i) ++counts[rng.next_below(kBound)];
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kTrials / kBound, 500)
        << "value " << v << " count " << counts[v];
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kTrials, 5.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(17);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);  // probability of identity is astronomically small
}

TEST(Rng, SampleWithoutReplacementDistinctAndSorted) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  std::set<std::uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(21);
  const auto sample = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(33);
  Rng child = a.fork();
  // The child should not replay the parent's stream.
  Rng reference(33);
  (void)reference();  // align with the fork's consumption
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (child() == reference()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(44);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(44);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[i]);
}

}  // namespace
}  // namespace hcube
