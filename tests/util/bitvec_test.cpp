#include "util/bitvec.h"

#include <gtest/gtest.h>

namespace hcube {
namespace {

TEST(BitVec, StartsCleared) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, SetAndClear) {
  BitVec v(100);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, SizeBytesRoundsUp) {
  EXPECT_EQ(BitVec(0).size_bytes(), 0u);
  EXPECT_EQ(BitVec(1).size_bytes(), 1u);
  EXPECT_EQ(BitVec(8).size_bytes(), 1u);
  EXPECT_EQ(BitVec(9).size_bytes(), 2u);
  EXPECT_EQ(BitVec(640).size_bytes(), 80u);  // d=40, b=16 table bitmap
}

TEST(BitVec, Equality) {
  BitVec a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_NE(a, b);
  b.set(3);
  EXPECT_EQ(a, b);
}

TEST(BitVec, SetIdempotent) {
  BitVec v(16);
  v.set(5);
  v.set(5);
  EXPECT_EQ(v.popcount(), 1u);
}

}  // namespace
}  // namespace hcube
