// Shared fixtures/helpers for the hcube test suite.
#pragma once

#include <memory>
#include <vector>

#include "core/builder.h"
#include "core/consistency.h"
#include "core/overlay.h"
#include "core/routing.h"
#include "ids/node_id.h"
#include "sim/event_queue.h"
#include "topology/latency.h"
#include "util/rng.h"

namespace hcube::testing {

// A simulation world: event queue + heterogeneous synthetic latencies +
// overlay, wired together. max_hosts bounds how many nodes may ever be
// added.
struct World {
  EventQueue queue;
  SyntheticLatency latency;
  Overlay overlay;

  explicit World(const IdParams& params, std::uint32_t max_hosts,
                 const ProtocolOptions& options = {},
                 std::uint64_t latency_seed = 42)
      : latency(max_hosts, 5.0, 120.0, latency_seed),
        overlay(params, options, queue, latency) {}
};

inline std::vector<NodeId> make_ids(const IdParams& params, std::size_t n,
                                    std::uint64_t seed) {
  UniqueIdGenerator gen(params, seed);
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(gen.next());
  return ids;
}

inline NodeId id_of(const std::string& text, const IdParams& params) {
  auto id = NodeId::from_string(text, params);
  HCUBE_CHECK_MSG(id.has_value(), "bad literal node ID in test");
  return *id;
}

// Full audit: Definition 3.8 (a) + (b) plus stale-state detection (at
// quiescence every neighbor must be known to be an S-node).
inline ConsistencyReport audit(const Overlay& overlay) {
  ConsistencyCheckOptions options;
  options.check_states = true;
  return check_consistency(view_of(overlay), options);
}

}  // namespace hcube::testing
