// Theorem-bound regression tests, driven by the join-lifecycle span tracer.
//
// Promotes Theorem 3 to tier-1: in a 128-node network absorbing 128
// concurrent joins, every completed join attempt must satisfy
//   #CpRstMsg + #JoinWaitMsg <= d + 1            (Theorem 3)
// measured per attempt by its span (not per node lifetime), and the mean
// #JoinNotiMsg across completed joins must stay under the Theorem 5
// concurrent-join bound. Three seeds; the worlds are deterministic, so a
// violation is a protocol regression, not flakiness.
//
// The negative half seeds a fault by hand: a synthetic span trajectory
// with one CpRstMsg retry too many must be flagged by
// theorem3_violations() — the check that the CI bench-trend job and this
// test stand on actually fires when the bound is crossed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/join_cost.h"
#include "core/builder.h"
#include "obs/join_span.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace hcube::obs {
namespace {

using hcube::testing::World;
using hcube::testing::make_ids;

class TheoremBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremBounds, ConcurrentJoinsRespectTheorem3AndTheorem5) {
  const std::uint64_t seed = GetParam();
  const IdParams params{16, 8};
  constexpr std::size_t kSeeds = 128;
  constexpr std::size_t kJoiners = 128;

  World world(params, kSeeds + kJoiners);
  const auto ids = make_ids(params, kSeeds + kJoiners, seed);
  const std::vector<NodeId> v_ids(ids.begin(),
                                  ids.begin() + static_cast<long>(kSeeds));
  const std::vector<NodeId> w_ids(ids.begin() + static_cast<long>(kSeeds),
                                  ids.end());
  build_consistent_network(world.overlay, v_ids);

  JoinSpanTracer tracer;
  tracer.attach(world.overlay);

  Rng rng(seed ^ 0x5eed);
  join_concurrently(world.overlay, w_ids, v_ids, rng, /*window_ms=*/0.0);
  ASSERT_TRUE(world.overlay.all_in_system());

  // Exactly one span per joiner, all completed, none leaked open.
  EXPECT_EQ(kJoiners, tracer.spans().size());
  EXPECT_EQ(0u, tracer.open_count());
  std::size_t completed = 0;
  for (const JoinSpan& span : tracer.spans()) {
    EXPECT_EQ(SpanTerminal::kCompleted, span.terminal)
        << "unterminated join attempt for a node the overlay reports "
           "in-system";
    if (span.terminal == SpanTerminal::kCompleted) ++completed;
    // Theorem 3, per attempt.
    EXPECT_LE(span.copy_plus_wait(), theorem3_bound(params))
        << "join exceeded the d+1 copy/wait budget (seed " << seed << ")";
  }
  EXPECT_EQ(kJoiners, completed);
  EXPECT_TRUE(tracer.theorem3_violations(params).empty());

  // Theorem 5: mean JoinNotiMsg under the concurrent-join bound.
  const double bound =
      expected_join_noti_concurrent_bound(params, kSeeds, kJoiners);
  EXPECT_LE(tracer.mean_noti_sent(), bound)
      << "mean JoinNoti " << tracer.mean_noti_sent() << " exceeds Theorem 5 "
      << bound << " (seed " << seed << ")";

  // The span summary export agrees with the raw spans.
  MetricsRegistry reg;
  tracer.summary_to(reg);
  EXPECT_EQ(completed, reg.counter_value(kMetricSpanCompleted));
  ASSERT_NE(nullptr, reg.histogram_named(kMetricSpanCopyWaitSent));
  EXPECT_LE(reg.histogram_named(kMetricSpanCopyWaitSent)->max(),
            static_cast<double>(theorem3_bound(params)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremBounds,
                         ::testing::Values(1u, 2u, 3u));

// Seeded fault: a join trajectory that sends one CpRstMsg per level plus a
// forced extra retry without backoff accounting — d+2 copy-phase requests,
// past the d+1 budget. theorem3_violations() must flag it.
TEST(TheoremBoundsNegative, ForcedExtraCpRstRetryIsFlagged) {
  const IdParams params{16, 8};
  const NodeId node = hcube::testing::id_of("00000000", params);

  JoinSpanTracer tracer;
  tracer.record_status(0.0, node, NodeStatus::kCopying, /*gen=*/1);
  for (std::uint64_t i = 0; i < theorem3_bound(params) + 1; ++i)
    tracer.record_send(node, MessageType::kCpRst);
  tracer.record_status(10.0, node, NodeStatus::kWaiting, 1);
  tracer.record_status(20.0, node, NodeStatus::kNotifying, 1);
  tracer.record_status(30.0, node, NodeStatus::kInSystem, 1);

  ASSERT_EQ(1u, tracer.spans().size());
  EXPECT_EQ(SpanTerminal::kCompleted, tracer.spans().front().terminal);
  const auto violations = tracer.theorem3_violations(params);
  ASSERT_EQ(1u, violations.size());
  EXPECT_EQ(theorem3_bound(params) + 1, violations.front()->copy_plus_wait());
}

// The same budget split across CpRst and JoinWait, exactly at the bound:
// not a violation. One more JoinWait: a violation.
TEST(TheoremBoundsNegative, BoundIsTightAtDPlusOne) {
  const IdParams params{16, 8};
  const NodeId node = hcube::testing::id_of("00000001", params);

  JoinSpanTracer tracer;
  tracer.record_status(0.0, node, NodeStatus::kCopying, 1);
  for (std::uint64_t i = 0; i < theorem3_bound(params) - 1; ++i)
    tracer.record_send(node, MessageType::kCpRst);
  tracer.record_send(node, MessageType::kJoinWait);
  tracer.record_status(5.0, node, NodeStatus::kInSystem, 1);
  EXPECT_TRUE(tracer.theorem3_violations(params).empty());

  JoinSpanTracer over;
  over.record_status(0.0, node, NodeStatus::kCopying, 1);
  for (std::uint64_t i = 0; i < theorem3_bound(params); ++i)
    over.record_send(node, MessageType::kCpRst);
  over.record_send(node, MessageType::kJoinWait);
  over.record_status(5.0, node, NodeStatus::kInSystem, 1);
  EXPECT_EQ(1u, over.theorem3_violations(params).size());
}

}  // namespace
}  // namespace hcube::obs
