// Metrics core: log-histogram bucket geometry, merge associativity,
// quantile monotonicity, the counter reset-on-restart semantics of a
// crash-recovered node, and the JSON export against the checked-in golden
// schema.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/builder.h"
#include "obs/collect.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "util/rng.h"

namespace hcube::obs {
namespace {

using hcube::testing::make_ids;
using hcube::testing::World;

// ---- LogHistogram ----

TEST(LogHistogram, BucketBoundaries) {
  // Bucket 0 is [0, 1); bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(0u, LogHistogram::bucket_of(0.0));
  EXPECT_EQ(0u, LogHistogram::bucket_of(0.5));
  EXPECT_EQ(0u, LogHistogram::bucket_of(-3.0));  // clamped
  EXPECT_EQ(1u, LogHistogram::bucket_of(1.0));
  EXPECT_EQ(1u, LogHistogram::bucket_of(1.99));
  EXPECT_EQ(2u, LogHistogram::bucket_of(2.0));
  EXPECT_EQ(2u, LogHistogram::bucket_of(3.0));
  EXPECT_EQ(3u, LogHistogram::bucket_of(4.0));
  EXPECT_EQ(11u, LogHistogram::bucket_of(1024.0));

  for (std::size_t i = 1; i < 50; ++i) {
    EXPECT_EQ(std::ldexp(1.0, static_cast<int>(i) - 1),
              LogHistogram::bucket_lo(i));
    EXPECT_EQ(std::ldexp(1.0, static_cast<int>(i)),
              LogHistogram::bucket_hi(i));
    // The lower edge lands in the bucket; the upper edge in the next.
    EXPECT_EQ(i, LogHistogram::bucket_of(LogHistogram::bucket_lo(i)));
    EXPECT_EQ(i + 1, LogHistogram::bucket_of(LogHistogram::bucket_hi(i)));
  }
  // Far beyond 2^63: absorbed by the last bucket, no overflow.
  EXPECT_EQ(LogHistogram::kBuckets - 1, LogHistogram::bucket_of(1e300));
}

TEST(LogHistogram, MergeIsAssociative) {
  Rng rng(7);
  std::vector<LogHistogram> parts(3);
  for (LogHistogram& h : parts)
    for (int i = 0; i < 200; ++i) h.observe(rng.next_double() * 1e6);

  LogHistogram left;  // (a + b) + c
  left.merge_from(parts[0]);
  left.merge_from(parts[1]);
  left.merge_from(parts[2]);

  LogHistogram bc;  // a + (b + c)
  bc.merge_from(parts[1]);
  bc.merge_from(parts[2]);
  LogHistogram right;
  right.merge_from(parts[0]);
  right.merge_from(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i)
    EXPECT_EQ(left.bucket(i), right.bucket(i)) << "bucket " << i;
}

TEST(LogHistogram, QuantileIsMonotoneAndClampedToMax) {
  Rng rng(11);
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.observe(rng.next_double() * 5000.0);

  double prev = -1.0;
  for (int step = 0; step <= 100; ++step) {
    const double q = static_cast<double>(step) / 100.0;
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
    prev = v;
  }
  EXPECT_EQ(h.max(), h.quantile(1.0));
  // The estimate is exact to within one octave: the true quantile's bucket
  // upper edge bounds it from above, its lower edge from below.
  EXPECT_LE(h.quantile(0.5), h.max());
  EXPECT_GE(h.quantile(0.5), 0.0);

  LogHistogram empty;
  EXPECT_EQ(0.0, empty.quantile(0.5));
}

// ---- MetricsRegistry ----

TEST(MetricsRegistry, HotPathIdsAndNamedAccessors) {
  MetricsRegistry reg;
  const auto c = reg.counter("net.messages");
  const auto g = reg.gauge("overlay.nodes");
  const auto h = reg.histogram("join.duration_ms");
  reg.add(c);
  reg.add(c, 9);
  reg.set(g, 128.0);
  reg.observe(h, 250.0);

  EXPECT_EQ(10u, reg.counter_value("net.messages"));
  EXPECT_EQ(128.0, reg.gauge_value("overlay.nodes"));
  ASSERT_NE(nullptr, reg.histogram_named("join.duration_ms"));
  EXPECT_EQ(1u, reg.histogram_named("join.duration_ms")->count());
  // Re-registration returns the same id; a kind clash would CHECK-fail.
  EXPECT_EQ(c, reg.counter("net.messages"));
}

TEST(MetricsRegistry, MergeAccumulatesCountersAndHistograms) {
  MetricsRegistry a, b;
  a.add_named("net.messages", 5);
  b.add_named("net.messages", 7);
  b.add_named("net.bytes", 100);
  a.set_named("overlay.nodes", 3.0);
  b.set_named("overlay.nodes", 9.0);
  a.observe_named("join.duration_ms", 10.0);
  b.observe_named("join.duration_ms", 1000.0);

  a.merge_from(b);
  EXPECT_EQ(12u, a.counter_value("net.messages"));
  EXPECT_EQ(100u, a.counter_value("net.bytes"));
  EXPECT_EQ(9.0, a.gauge_value("overlay.nodes"));  // gauges take theirs
  EXPECT_EQ(2u, a.histogram_named("join.duration_ms")->count());
  EXPECT_EQ(1000.0, a.histogram_named("join.duration_ms")->max());
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsIds) {
  MetricsRegistry reg;
  const auto c = reg.counter("net.messages");
  reg.add(c, 42);
  reg.observe_named("join.duration_ms", 3.0);
  reg.reset();
  EXPECT_EQ(0u, reg.counter_value("net.messages"));
  EXPECT_EQ(0u, reg.histogram_named("join.duration_ms")->count());
  EXPECT_EQ(c, reg.counter("net.messages"));  // registration survives
  reg.add(c);
  EXPECT_EQ(1u, reg.counter_value("net.messages"));
}

// A restarted node must not carry pre-crash join counters into its new
// generation: the new incarnation's CpRst count starts at one (the rejoin's
// own first message), not wherever the dead attempt left off — while the
// lifetime robustness counters (stale_rejected, watchdog_restarts) survive.
TEST(MetricsRegistry, CounterResetOnRestartSemantics) {
  const IdParams params{16, 8};
  World world(params, 20);
  const auto ids = make_ids(params, 17, 31);
  const std::vector<NodeId> seeds(ids.begin(), ids.begin() + 16);
  build_consistent_network(world.overlay, seeds);
  const NodeId& joiner = ids[16];

  // Crash mid-copy-walk: the first attempt has sent its CpRst (plus
  // whatever else the walk reached) when the crash lands.
  world.overlay.schedule_join(joiner, seeds[0], 0.0);
  world.queue.schedule_at(30.0, [&] { world.overlay.crash(joiner); });
  world.queue.run();
  ASSERT_TRUE(world.overlay.at(joiner).is_crashed());
  ASSERT_GE(world.overlay.at(joiner).join_stats().sent_of(MessageType::kCpRst),
            1u);

  // Restart sends the rejoin's CpRst synchronously: if pre-crash counters
  // leaked into the new incarnation this would read >= 2.
  world.overlay.restart(joiner, seeds[1]);
  EXPECT_EQ(
      1u, world.overlay.at(joiner).join_stats().sent_of(MessageType::kCpRst));

  world.queue.run();
  const Node& node = world.overlay.at(joiner);
  EXPECT_TRUE(node.is_s_node());
  // The fresh incarnation respects the per-attempt Theorem 3 budget.
  EXPECT_LE(node.join_stats().copy_plus_wait(), params.num_digits + 1);
}

// ---- JSON export ----

MetricsRegistry golden_registry() {
  MetricsRegistry reg;
  reg.add_named("net.messages", 1234);
  reg.add_named("net.bytes", 567890);
  reg.set_named("overlay.nodes", 128.0);
  reg.set_named("bench.msgs_per_sec", 2.5e6);
  for (int i = 0; i < 16; ++i)
    reg.observe_named("join.duration_ms", static_cast<double>(1 << i));
  return reg;
}

TEST(MetricsJson, RoundTripsExactly) {
  const MetricsRegistry reg = golden_registry();
  const std::string json = reg.to_json();
  std::string error;
  const auto back = MetricsRegistry::from_json(json, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(json, back->to_json());
}

TEST(MetricsJson, MatchesGoldenSchema) {
  const std::string path = std::string(OBS_GOLDEN_DIR) + "/golden_metrics.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream content;
  content << in.rdbuf();
  std::string golden = content.str();
  while (!golden.empty() && (golden.back() == '\n' || golden.back() == '\r'))
    golden.pop_back();

  EXPECT_EQ(golden, golden_registry().to_json())
      << "the hcube.metrics.v1 export schema changed; if that is "
         "intentional, bump the schema version and regenerate the golden";
}

TEST(MetricsJson, RejectsBadDocuments) {
  std::string error;
  EXPECT_FALSE(MetricsRegistry::from_json("{", &error).has_value());
  EXPECT_FALSE(MetricsRegistry::from_json("{}", &error).has_value());
  EXPECT_FALSE(
      MetricsRegistry::from_json(
          R"({"schema":"hcube.metrics.v2","metrics":[]})", &error)
          .has_value());
  EXPECT_FALSE(
      MetricsRegistry::from_json(
          R"({"schema":"hcube.metrics.v1","metrics":[{"name":"BAD","kind":"counter","value":1}]})",
          &error)
          .has_value());
  EXPECT_TRUE(
      MetricsRegistry::from_json(R"({"schema":"hcube.metrics.v1","metrics":[]})")
          .has_value());
}

}  // namespace
}  // namespace hcube::obs
