// Span pairing under churn: every span_begin gets exactly one terminal
// event, even when the chaos engine crashes nodes mid-join, restarts them
// with bumped attempt generations, and partitions the network. A leaked
// span (terminal still kOpen after the run settles) is a tracer bug or a
// protocol state machine that skipped a terminal transition — both fail.
//
// The tracer rides along via run_script()'s observer hook, which must not
// perturb the run: the observed digest has to equal the unobserved one.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>

#include "chaos/engine.h"
#include "chaos/schedule.h"
#include "core/overlay.h"
#include "obs/join_span.h"
#include "obs/metrics.h"

namespace hcube::obs {
namespace {

class SpanPairing : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpanPairing, EveryBeginHasExactlyOneTerminalUnderChurn) {
  const std::uint64_t seed = GetParam();
  const chaos::ChurnProfile* profile = chaos::find_profile("mixed");
  ASSERT_NE(nullptr, profile);
  const chaos::ChurnScript script = chaos::sample_script(seed, *profile, 30);

  JoinSpanTracer tracer;
  const chaos::ChaosResult observed =
      chaos::run_script(script, [&](Overlay& overlay) {
        tracer.attach(overlay);
      });
  ASSERT_TRUE(observed.ok);

  // No leaked spans: the script's final settle barrier drives every live
  // join to kInSystem and every dead one through kCrashed/kDeparted.
  EXPECT_EQ(0u, tracer.open_count());
  ASSERT_FALSE(tracer.spans().empty());
  std::set<std::pair<NodeId, std::uint32_t>> keys;
  for (const JoinSpan& span : tracer.spans()) {
    EXPECT_NE(SpanTerminal::kOpen, span.terminal)
        << "leaked span, gen " << span.gen << " (seed " << seed << ")";
    EXPECT_GE(span.t_end, span.t_begin);
    // One span per (node, attempt generation) — a duplicate means a begin
    // event was double-counted or a terminal re-opened a closed span.
    EXPECT_TRUE(keys.emplace(span.node, span.gen).second)
        << "duplicate span for gen " << span.gen << " (seed " << seed << ")";
  }

  // Watchdog restarts show up as superseded spans, never as leaks; the
  // summary counters partition the span population exactly.
  MetricsRegistry reg;
  tracer.summary_to(reg);
  EXPECT_EQ(tracer.spans().size(), reg.counter_value(kMetricSpanOpened));
  EXPECT_EQ(tracer.spans().size(),
            reg.counter_value(kMetricSpanCompleted) +
                reg.counter_value(kMetricSpanSuperseded) +
                reg.counter_value(kMetricSpanForcedDepartures));

  // Observation is free: the tracer must not have perturbed the schedule.
  const chaos::ChaosResult baseline = chaos::run_script(script);
  EXPECT_EQ(baseline.digest, observed.digest)
      << "attaching the span tracer changed the simulation";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanPairing,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace hcube::obs
