// Concurrent joins — the paper's headline result (Theorem 1): an arbitrary
// number of concurrent joins into a consistent network leaves the network
// consistent, and every joiner terminates as an S-node (Theorem 2).
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/join_cost.h"
#include "core/cset_tree.h"
#include "ids/suffix_trie.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::audit;
using testing::id_of;
using testing::make_ids;

TEST(JoinConcurrent, PaperSection33Example) {
  // The worked example of Section 3.3: b = 8, d = 5,
  // V = {72430, 10353, 62332, 13141, 31701}, W = {10261, 47051, 00261}.
  // 10261 and 00261 share suffix 261 and join dependently.
  const IdParams params{8, 5};
  World world(params, 16);
  std::vector<NodeId> v_ids;
  for (const char* s : {"72430", "10353", "62332", "13141", "31701"})
    v_ids.push_back(id_of(s, params));
  std::vector<NodeId> w_ids;
  for (const char* s : {"10261", "47051", "00261"})
    w_ids.push_back(id_of(s, params));

  build_consistent_network(world.overlay, v_ids);
  Rng rng(4);
  join_concurrently(world.overlay, w_ids, v_ids, rng, /*window_ms=*/0.0);

  EXPECT_TRUE(world.overlay.all_in_system());
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);

  // All three joiners notify within V_1 (the paper's C-set tree example):
  // their notification sets regarding V share the root V_1.
  SuffixTrie v_trie(params);
  for (const NodeId& id : v_ids) v_trie.insert(id);
  EXPECT_EQ(notify_suffix(v_trie, id_of("10261", params)),
            (Suffix{1}));
  EXPECT_EQ(notify_suffix(v_trie, id_of("00261", params)),
            (Suffix{1}));
  EXPECT_EQ(notify_suffix(v_trie, id_of("47051", params)),
            (Suffix{1}));

  // And the realized C-set tree satisfies conditions (1)-(3).
  const auto violations = check_cset_conditions(
      view_of(world.overlay), v_trie, Suffix{1}, w_ids);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

struct ConcurrentCase {
  std::uint32_t base;
  std::uint32_t digits;
  std::size_t n;  // initial network size
  std::size_t m;  // concurrent joiners
  std::uint64_t seed;
};

class ConcurrentJoinSweep : public ::testing::TestWithParam<ConcurrentCase> {};

TEST_P(ConcurrentJoinSweep, ConsistentAndTerminates) {
  const auto& c = GetParam();
  const IdParams params{c.base, c.digits};
  World world(params, static_cast<std::uint32_t>(c.n + c.m), {}, c.seed);
  auto ids = make_ids(params, c.n + c.m, c.seed);
  const std::vector<NodeId> v_ids(ids.begin(),
                                  ids.begin() + static_cast<long>(c.n));
  const std::vector<NodeId> w_ids(ids.begin() + static_cast<long>(c.n),
                                  ids.end());
  build_consistent_network(world.overlay, v_ids);

  Rng rng(c.seed ^ 0xabcd);
  join_concurrently(world.overlay, w_ids, v_ids, rng, /*window_ms=*/0.0);

  // Theorem 2: every joiner becomes an S-node.
  EXPECT_TRUE(world.overlay.all_in_system());
  // Theorem 1: the final network is consistent (and no stale T states).
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
  // Theorem 3: per-joiner copy+wait message bound.
  for (const NodeId& w : w_ids) {
    EXPECT_LE(world.overlay.at(w).join_stats().copy_plus_wait(),
              theorem3_bound(params));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcurrentJoinSweep,
    ::testing::Values(
        // Dense ID spaces (b=2) maximize suffix collisions => dependent
        // joins; sparse spaces (b=16) exercise independent joins.
        ConcurrentCase{2, 10, 20, 20, 1}, ConcurrentCase{2, 10, 50, 30, 2},
        ConcurrentCase{2, 12, 100, 60, 3}, ConcurrentCase{4, 6, 30, 30, 4},
        ConcurrentCase{4, 8, 80, 40, 5}, ConcurrentCase{4, 8, 10, 60, 6},
        ConcurrentCase{8, 5, 40, 25, 7}, ConcurrentCase{16, 4, 50, 25, 8},
        ConcurrentCase{16, 8, 5, 40, 9}, ConcurrentCase{16, 8, 100, 50, 10},
        ConcurrentCase{3, 7, 25, 25, 11}, ConcurrentCase{5, 5, 30, 35, 12}));

TEST(JoinConcurrent, AllJoinersShareOneGateway) {
  // Stress the seed: a 1-node network with 40 simultaneous joiners, all
  // bootstrapping through the seed (Section 6.1 network initialization,
  // concurrent flavor).
  const IdParams params{4, 6};
  World world(params, 48);
  auto ids = make_ids(params, 41, /*seed=*/31);
  Rng rng(9);
  initialize_network(world.overlay, ids, rng, /*concurrent=*/true);

  EXPECT_TRUE(world.overlay.all_in_system());
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

TEST(JoinConcurrent, SameSuffixClusterJoinsDependently) {
  // Force heavy dependence: every joiner shares a 3-digit suffix absent
  // from V, so all of them fight over the same C-set tree.
  const IdParams params{4, 8};
  World world(params, 96);

  UniqueIdGenerator gen(params, 77);
  std::vector<NodeId> v_ids;
  // V avoids the suffix 3.3.3 (LSB digits 3,3,3).
  while (v_ids.size() < 40) {
    NodeId id = gen.next();
    if (id.digit(0) == 3 && id.digit(1) == 3 && id.digit(2) == 3) continue;
    v_ids.push_back(id);
  }
  std::vector<NodeId> w_ids;
  while (w_ids.size() < 12) {
    NodeId id = gen.next();
    if (!(id.digit(0) == 3 && id.digit(1) == 3 && id.digit(2) == 3)) continue;
    w_ids.push_back(id);
  }
  // Manufacture enough suffix-3.3.3 ids if the generator was unlucky.
  Rng rng(123);
  while (w_ids.size() < 12) {
    std::vector<Digit> digits(params.num_digits);
    digits[0] = digits[1] = digits[2] = 3;
    for (std::size_t i = 3; i < digits.size(); ++i)
      digits[i] = static_cast<Digit>(rng.next_below(params.base));
    NodeId id(digits, params);
    if (gen.reserve(id)) w_ids.push_back(id);
  }

  build_consistent_network(world.overlay, v_ids);
  join_concurrently(world.overlay, w_ids, v_ids, rng, /*window_ms=*/0.0);

  EXPECT_TRUE(world.overlay.all_in_system());
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);

  // They all landed in the same dependent group (same C-set tree family).
  SuffixTrie v_trie(params);
  for (const NodeId& id : v_ids) v_trie.insert(id);
  const auto groups = group_dependent(v_trie, w_ids);
  EXPECT_EQ(groups.size(), 1u);

  // And the C-set tree conditions hold for each notify-set group.
  for (const auto& [omega, members] : group_by_notify_set(v_trie, w_ids)) {
    const auto violations =
        check_cset_conditions(view_of(world.overlay), v_trie, omega, members);
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations.front());
  }
}

TEST(JoinConcurrent, StaggeredStartsOverlapJoiningPeriods) {
  // Joins start within a window comparable to a join's duration, producing
  // genuinely overlapping joining periods (Definition 3.3) rather than a
  // single burst.
  const IdParams params{4, 6};
  World world(params, 96);
  auto ids = make_ids(params, 80, /*seed=*/55);
  const std::vector<NodeId> v_ids(ids.begin(), ids.begin() + 30);
  const std::vector<NodeId> w_ids(ids.begin() + 30, ids.end());
  build_consistent_network(world.overlay, v_ids);

  Rng rng(8);
  join_concurrently(world.overlay, w_ids, v_ids, rng, /*window_ms=*/800.0);

  EXPECT_TRUE(world.overlay.all_in_system());
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

}  // namespace
}  // namespace hcube
