// End-to-end robustness: the full join protocol over a lossy network healed
// by the ReliableTransport decorator, plus the join-stall watchdog for the
// losses the ARQ layer gives up on. Companion to the FailureInjection tests
// in protocol_invariants_test.cpp, which show the same losses *without* the
// reliable layer stalling joins forever.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/trace.h"
#include "net/fault_plan.h"
#include "net/reliable_transport.h"
#include "net/sim_transport.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::make_ids;

// A World (test_util.h) whose overlay runs over ReliableTransport-over-
// SimTransport instead of a bare SimTransport. Faults attach to `inner`.
struct ReliableWorld {
  EventQueue queue;
  SyntheticLatency latency;
  SimTransport inner;
  ReliableTransport transport;
  Overlay overlay;

  ReliableWorld(const IdParams& params, std::uint32_t max_hosts,
                const ProtocolOptions& options, ReliabilityConfig cfg = {},
                std::uint64_t latency_seed = 42)
      : latency(max_hosts, 5.0, 120.0, latency_seed),
        inner(queue, latency),
        transport(inner, cfg),
        overlay(params, options, transport) {}
};

TEST(ReliableJoin, LossyConcurrentJoinsConvergeAcrossSeeds) {
  // Acceptance scenario: 64 concurrent joins into a 256-node network under
  // 5% loss + 5% duplication, repeated for three seeds. Every join must
  // terminate and the final network must satisfy Definition 3.8. CI's
  // fault-matrix job widens the sweep via HCUBE_FAULT_SEED.
  std::vector<std::uint64_t> seeds{11, 22, 33};
  if (const char* extra = std::getenv("HCUBE_FAULT_SEED"))
    seeds.push_back(std::strtoull(extra, nullptr, 10));
  for (const std::uint64_t seed : seeds) {
    const IdParams params{4, 8};
    ProtocolOptions options;
    options.join_watchdog_ms = 60000.0;  // >> the ARQ layer's worst span
    ReliableWorld world(params, 320, options, {}, /*latency_seed=*/seed);

    FaultPlan plan(seed);
    plan.set_default({.drop = 0.05, .duplicate = 0.05});
    plan.attach(world.inner);

    auto ids = make_ids(params, 320, seed);
    const std::vector<NodeId> v(ids.begin(), ids.begin() + 256);
    const std::vector<NodeId> w(ids.begin() + 256, ids.end());
    build_consistent_network(world.overlay, v);

    Rng rng(seed);
    join_concurrently(world.overlay, w, v, rng, /*window_ms=*/1000.0);

    EXPECT_TRUE(world.overlay.all_in_system()) << "seed " << seed;
    const auto report = check_consistency(view_of(world.overlay));
    EXPECT_TRUE(report.consistent())
        << "seed " << seed << "\n" << report.summary(params);
    // The run was genuinely lossy and the ARQ layer genuinely worked.
    EXPECT_GT(plan.drops_injected(), 0u);
    EXPECT_GT(plan.duplicates_injected(), 0u);
    EXPECT_GT(world.transport.rstats().retransmits, 0u);
    EXPECT_GT(world.transport.rstats().dup_suppressed, 0u);
    EXPECT_EQ(world.transport.in_flight(), 0u);
  }
}

TEST(ReliableJoin, WatchdogRestartsAJoinTheArqLayerGaveUpOn) {
  // Drop the joiner's JoinWaitMsg beyond the retry budget (original + both
  // retransmissions): the ARQ layer abandons it and the join would stall in
  // kWaiting forever. The watchdog aborts the attempt and the restarted one
  // completes (its JoinWaitMsg is the 4th match, past the drop budget).
  const IdParams params{4, 6};
  ProtocolOptions options;
  options.join_watchdog_ms = 10000.0;
  ReliabilityConfig cfg;
  cfg.rto_ms = 500.0;
  cfg.backoff = 2.0;
  cfg.max_retries = 2;
  ReliableWorld world(params, 20, options, cfg);

  FaultPlan plan(5);
  plan.set_for_type(MessageType::kJoinWait, {.drop = 1.0, .max_drops = 3});
  plan.attach(world.inner);

  auto ids = make_ids(params, 17, 21);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 16);
  const NodeId joiner = ids.back();
  build_consistent_network(world.overlay, v);

  world.overlay.schedule_join(joiner, v[0], 0.0);
  world.overlay.run_to_quiescence();

  EXPECT_TRUE(world.overlay.all_in_system());
  const JoinStats& s = world.overlay.at(joiner).join_stats();
  EXPECT_EQ(s.watchdog_restarts, 1u);
  EXPECT_EQ(world.transport.rstats().give_ups, 1u);
  const auto report = check_consistency(view_of(world.overlay));
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

TEST(ReliableJoin, StaleReplyFromAbortedAttemptIsRejected) {
  // Delay the first JoinWaitRlyMsg — and every ARQ retransmission of it
  // (copies go out at T, T+500, T+1500, T+3500, T+7500 before the first
  // delayed arrival is acked; budget 6 leaves margin) — past the watchdog
  // deadline: the joiner restarts (generation 2) before any generation-1
  // reply arrives. The restarted attempt's reply is undelayed (budget
  // spent), so the join completes; the late generation-1 reply must be
  // rejected as stale — but its positive outcome (the replier stored the
  // joiner) must still register as a reverse neighbor, so the replier gets
  // its InSysNotiMsg.
  const IdParams params{4, 6};
  ProtocolOptions options;
  options.join_watchdog_ms = 10000.0;
  ReliableWorld world(params, 20, options);

  FaultPlan plan(6);
  plan.set_for_type(MessageType::kJoinWaitRly,
                    {.delay = 1.0, .extra_delay_ms = 12000.0, .max_delays = 6});
  plan.attach(world.inner);

  auto ids = make_ids(params, 17, 23);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 16);
  const NodeId joiner = ids.back();
  build_consistent_network(world.overlay, v);

  world.overlay.schedule_join(joiner, v[0], 0.0);
  world.overlay.run_to_quiescence();

  EXPECT_TRUE(world.overlay.all_in_system());
  const JoinStats& s = world.overlay.at(joiner).join_stats();
  EXPECT_EQ(s.watchdog_restarts, 1u);
  EXPECT_GE(s.stale_rejected, 1u);
  // Full audit: states must have reconciled too (the replier learned the
  // joiner switched, via the reverse-neighbor registration kept from the
  // stale positive).
  const auto report = testing::audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

TEST(ReliableJoin, CleanNetworkHasExactlyZeroRobustnessOverhead) {
  // Acceptance criterion: with no faults injected, the reliable layer must
  // be invisible — zero retransmissions, zero duplicate suppressions, zero
  // give-ups, zero watchdog restarts, and the wire carries exactly one
  // RelAckMsg per tracked data message.
  const IdParams params{4, 6};
  ProtocolOptions options;
  options.join_watchdog_ms = 60000.0;
  ReliableWorld world(params, 80, options);
  MessageTrace trace;
  trace.attach_wire(world.inner);

  auto ids = make_ids(params, 80, 31);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 64);
  const std::vector<NodeId> w(ids.begin() + 64, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(31);
  join_concurrently(world.overlay, w, v, rng, /*window_ms=*/500.0);

  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(testing::audit(world.overlay).consistent());
  EXPECT_EQ(world.transport.rstats().retransmits, 0u);
  EXPECT_EQ(world.transport.rstats().dup_suppressed, 0u);
  EXPECT_EQ(world.transport.rstats().give_ups, 0u);
  EXPECT_EQ(world.transport.in_flight(), 0u);
  EXPECT_EQ(trace.wire_count_of(MessageType::kRelAck),
            world.transport.rstats().tracked_sent);
  for (const NodeId& x : w) {
    const JoinStats& s = world.overlay.at(x).join_stats();
    EXPECT_EQ(s.watchdog_restarts, 0u);
    EXPECT_EQ(s.stale_rejected, 0u);
  }
}

}  // namespace
}  // namespace hcube
