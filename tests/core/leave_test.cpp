// The leave protocol (this library's extension of the paper's framework;
// the paper defers leaving to future work). The invariant under test is the
// same Definition 3.8 consistency, now over the *remaining* membership:
// after a graceful leave every entry that can be filled is filled with a
// live node, every entry whose class emptied is null, and no table or
// reverse-neighbor set references the departed node.
#include <gtest/gtest.h>

#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::audit;
using testing::make_ids;

void expect_no_trace_of(const Overlay& overlay, const NodeId& gone) {
  for (const auto& node : overlay.nodes()) {
    if (node->has_departed()) continue;
    node->table().for_each_filled([&](std::uint32_t i, std::uint32_t j,
                                      const NodeId& n, NeighborState) {
      EXPECT_NE(n, gone) << "entry (" << i << "," << j << ") of "
                         << node->id().to_string(overlay.params())
                         << " still points at the departed node";
    });
    EXPECT_FALSE(node->table().reverse_neighbors().contains(gone))
        << node->id().to_string(overlay.params())
        << " still tracks the departed node as a reverse neighbor";
  }
}

TEST(Leave, SingleLeaveKeepsNetworkConsistent) {
  const IdParams params{4, 6};
  World world(params, 50);
  auto ids = make_ids(params, 50, 3);
  build_consistent_network(world.overlay, ids);

  leave_and_drain(world.overlay, ids[7]);

  EXPECT_TRUE(world.overlay.at(ids[7]).has_departed());
  EXPECT_EQ(world.overlay.live_size(), 49u);
  expect_no_trace_of(world.overlay, ids[7]);
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

TEST(Leave, LastOfClassNullsEntries) {
  // Craft a network where exactly one node has a given rightmost digit; its
  // departure must leave every (0, digit) entry null (false-positive-free).
  const IdParams params{4, 5};
  UniqueIdGenerator gen(params, 9);
  std::vector<NodeId> ids;
  NodeId loner;
  while (ids.size() < 30) {
    NodeId id = gen.next();
    if (id.digit(0) == 3) {
      if (!loner.is_valid()) {
        loner = id;
        ids.push_back(id);
      }
      continue;  // only one node ending in 3
    }
    ids.push_back(id);
  }
  ASSERT_TRUE(loner.is_valid());

  World world(params, 32);
  build_consistent_network(world.overlay, ids);
  leave_and_drain(world.overlay, loner);

  ASSERT_TRUE(world.overlay.at(loner).has_departed());
  for (const auto& node : world.overlay.nodes()) {
    if (node->has_departed()) continue;
    EXPECT_TRUE(node->table().is_empty(0, 3));
  }
  EXPECT_TRUE(audit(world.overlay).consistent());
}

TEST(Leave, SequentialLeavesDownToOneNode) {
  const IdParams params{4, 5};
  World world(params, 24);
  auto ids = make_ids(params, 24, 11);
  build_consistent_network(world.overlay, ids);

  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    leave_and_drain(world.overlay, ids[i]);
    ASSERT_TRUE(world.overlay.at(ids[i]).has_departed());
    const auto report = audit(world.overlay);
    ASSERT_TRUE(report.consistent())
        << "after leave " << i << ": " << report.summary(params);
  }
  EXPECT_EQ(world.overlay.live_size(), 1u);
}

TEST(Leave, LeaveThenJoinReusesTheGap) {
  // Churn cycle: a node leaves, a different node with the same notification
  // neighborhood joins; the network must be consistent throughout.
  const IdParams params{4, 6};
  World world(params, 64);
  auto ids = make_ids(params, 45, 17);
  const std::vector<NodeId> members(ids.begin(), ids.begin() + 40);
  build_consistent_network(world.overlay, members);

  Rng rng(5);
  for (std::size_t i = 0; i < 5; ++i) {
    leave_and_drain(world.overlay, members[i * 3]);
    ASSERT_TRUE(audit(world.overlay).consistent());

    // A fresh node joins via a random live member.
    const NodeId& newcomer = ids[40 + i];
    NodeId gateway;
    for (const auto& node : world.overlay.nodes()) {
      if (!node->has_departed() && node->is_s_node()) {
        gateway = node->id();
        break;
      }
    }
    world.overlay.schedule_join(newcomer, gateway, world.overlay.now());
    world.overlay.run_to_quiescence();
    ASSERT_TRUE(world.overlay.at(newcomer).is_s_node());
    const auto report = audit(world.overlay);
    ASSERT_TRUE(report.consistent())
        << "cycle " << i << ": " << report.summary(params);
  }
}

TEST(Leave, TwoNodeNetworkCollapsesGracefully) {
  const IdParams params{4, 4};
  World world(params, 4);
  auto ids = make_ids(params, 2, 21);
  build_consistent_network(world.overlay, ids);

  leave_and_drain(world.overlay, ids[0]);
  EXPECT_TRUE(world.overlay.at(ids[0]).has_departed());
  EXPECT_TRUE(audit(world.overlay).consistent());
  // The survivor's table holds only itself.
  const NeighborTable& t = world.overlay.at(ids[1]).table();
  t.for_each_filled([&](std::uint32_t, std::uint32_t, const NodeId& n,
                        NeighborState) { EXPECT_EQ(n, ids[1]); });
}

TEST(Leave, ConcurrentLeavesInDisjointClasses) {
  // Two nodes leave at the same instant. Their suffix neighborhoods are
  // disjoint (no shared digits at level 0), and — to stay within the
  // supported regime — neither may serve as the other's repair candidate.
  const IdParams params{8, 5};
  UniqueIdGenerator gen(params, 31);
  std::vector<NodeId> ids;
  NodeId a, b;
  while (ids.size() < 40) {
    NodeId id = gen.next();
    if (!a.is_valid() && id.digit(0) == 1) a = id;
    else if (!b.is_valid() && id.digit(0) == 5) b = id;
    ids.push_back(id);
  }
  ASSERT_TRUE(a.is_valid() && b.is_valid());

  World world(params, 48);
  build_consistent_network(world.overlay, ids);
  Node* na = &world.overlay.at(a);
  Node* nb = &world.overlay.at(b);
  world.queue.schedule_at(0.0, [na] { na->start_leave(); });
  world.queue.schedule_at(0.0, [nb] { nb->start_leave(); });
  world.overlay.run_to_quiescence();

  EXPECT_TRUE(na->has_departed());
  EXPECT_TRUE(nb->has_departed());
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
  expect_no_trace_of(world.overlay, a);
  expect_no_trace_of(world.overlay, b);
}

TEST(Leave, RoutingWorksAfterLeaves) {
  const IdParams params{4, 6};
  World world(params, 60);
  auto ids = make_ids(params, 60, 41);
  build_consistent_network(world.overlay, ids);
  for (std::size_t i = 0; i < 12; ++i) {
    leave_and_drain(world.overlay, ids[i * 4]);
  }
  const NetworkView net = view_of(world.overlay);
  EXPECT_EQ(net.size(), 48u);
  Rng rng(2);
  EXPECT_EQ(check_reachability_sample(net, 10000, rng), 0u);
}

TEST(Leave, OnlySNodesMayLeave) {
  const IdParams params{4, 4};
  World world(params, 8);
  auto ids = make_ids(params, 3, 51);
  build_consistent_network(world.overlay, {ids[0], ids[1]});
  Node& joiner = world.overlay.schedule_join(ids[2], ids[0], 10.0);
  // Before the join even starts, the node is a T-node in status copying.
  EXPECT_DEATH(joiner.start_leave(), "S-node");
}

TEST(Leave, LeaveStatsAccounted) {
  const IdParams params{4, 5};
  World world(params, 24);
  auto ids = make_ids(params, 24, 61);
  build_consistent_network(world.overlay, ids);
  leave_and_drain(world.overlay, ids[0]);
  const JoinStats& s = world.overlay.at(ids[0]).join_stats();
  const auto leaves = s.sent_of(MessageType::kLeave);
  EXPECT_GT(leaves, 0u);
  // One ack per LeaveMsg.
  EXPECT_EQ(s.received[static_cast<std::size_t>(MessageType::kLeaveRly)],
            leaves);
}

}  // namespace
}  // namespace hcube
