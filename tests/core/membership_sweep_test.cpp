// Property sweeps over the full membership lifecycle: randomized sequences
// of join waves, graceful leaves, crashes, and repairs across ID-space
// shapes and seeds. The invariant after every settled phase is always the
// same: Definition 3.8 consistency over the live membership.
#include <gtest/gtest.h>

#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::make_ids;

struct SweepCase {
  std::uint32_t base;
  std::uint32_t digits;
  std::uint32_t backups;
  std::uint64_t seed;
};

class MembershipSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MembershipSweep, RandomLifecycleStaysConsistent) {
  const auto& c = GetParam();
  const IdParams params{c.base, c.digits};
  constexpr std::size_t kStart = 60;
  constexpr int kPhases = 8;
  constexpr SimTime kPingTimeout = 500.0;

  ProtocolOptions options;
  options.backups_per_entry = c.backups;
  World world(params, 400, options, c.seed);
  UniqueIdGenerator gen(params, c.seed * 977 + 3);
  Rng rng(c.seed);

  std::vector<NodeId> live;
  for (std::size_t i = 0; i < kStart; ++i) live.push_back(gen.next());
  build_consistent_network(world.overlay, live, c.backups);

  for (int phase = 0; phase < kPhases; ++phase) {
    switch (rng.next_below(3)) {
      case 0: {  // concurrent join wave
        const std::size_t m = 5 + rng.next_below(20);
        std::vector<NodeId> joiners;
        for (std::size_t i = 0; i < m; ++i) joiners.push_back(gen.next());
        join_concurrently(world.overlay, joiners, live, rng,
                          /*window_ms=*/rng.next_below(2) ? 0.0 : 300.0);
        live.insert(live.end(), joiners.begin(), joiners.end());
        break;
      }
      case 1: {  // graceful leaves, serialized
        const std::size_t departures =
            std::min<std::size_t>(3 + rng.next_below(8), live.size() - 5);
        for (std::size_t i = 0; i < departures; ++i) {
          const std::size_t victim = rng.next_below(live.size());
          leave_and_drain(world.overlay, live[victim]);
          live.erase(live.begin() + static_cast<long>(victim));
        }
        break;
      }
      case 2: {  // crashes + repair
        const std::size_t kills =
            std::min<std::size_t>(1 + rng.next_below(5), live.size() - 5);
        for (std::size_t i = 0; i < kills; ++i) {
          const std::size_t victim = rng.next_below(live.size());
          world.overlay.crash(live[victim]);
          live.erase(live.begin() + static_cast<long>(victim));
        }
        world.overlay.repair_all(kPingTimeout, /*rounds=*/3);
        break;
      }
    }
    ASSERT_TRUE(world.overlay.all_in_system()) << "phase " << phase;
    const auto report = check_consistency(view_of(world.overlay));
    ASSERT_TRUE(report.consistent())
        << "phase " << phase << " (b=" << c.base << " d=" << c.digits
        << " seed=" << c.seed << ")\n"
        << report.summary(params);
  }

  // Final global checks: reachability and (when configured) backup sanity.
  const NetworkView net = view_of(world.overlay);
  Rng sample(c.seed ^ 0xf00d);
  EXPECT_EQ(check_reachability_sample(net, 4000, sample), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MembershipSweep,
    ::testing::Values(SweepCase{4, 6, 0, 1}, SweepCase{4, 6, 0, 2},
                      SweepCase{4, 6, 2, 3}, SweepCase{2, 10, 0, 4},
                      SweepCase{2, 10, 1, 5}, SweepCase{8, 5, 0, 6},
                      SweepCase{16, 4, 0, 7}, SweepCase{16, 8, 2, 8},
                      SweepCase{16, 8, 0, 9}, SweepCase{3, 7, 1, 10}));

}  // namespace
}  // namespace hcube
