// Model-based equivalence for the SoA NeighborTable: a randomized op
// sequence is applied in lockstep to
//
//   (a) a NeighborTable with private exact-fit column storage,
//   (b) a NeighborTable whose columns live in a shared Arena (the Overlay
//       configuration), and
//   (c) a deliberately naive array-of-structs reference model,
//
// and every observable — entries, states, hosts, fill count, backups,
// reverse set, distinct-neighbor order, snapshots — must agree at every
// step. This is the refactor's safety net: any divergence between the
// column layout and the obvious semantics is a bug in the columns.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/neighbor_table.h"
#include "test_util.h"
#include "util/rng.h"

namespace hcube {
namespace {

constexpr std::size_t kMaxBackups = 3;

// The reference model: one struct per entry, std::vectors everywhere,
// written for obviousness rather than speed.
struct ModelEntry {
  NodeId node;  // invalid = empty
  NeighborState state = NeighborState::kT;
  HostId host = kNoHost;
  std::vector<NodeId> backups;
};

struct Model {
  explicit Model(const IdParams& p, NodeId o)
      : params(p),
        owner(o),
        entries(static_cast<std::size_t>(p.num_digits) * p.base) {}

  ModelEntry& at(std::uint32_t level, std::uint32_t digit) {
    return entries[static_cast<std::size_t>(level) * params.base + digit];
  }

  void set(std::uint32_t level, std::uint32_t digit, const NodeId& node,
           NeighborState state, HostId host) {
    ModelEntry& e = at(level, digit);
    e.node = node;
    e.state = state;
    e.host = host;
  }

  bool offer_backup(std::uint32_t level, std::uint32_t digit,
                    const NodeId& node) {
    ModelEntry& e = at(level, digit);
    if (node == owner || node == e.node) return false;
    if (std::find(e.backups.begin(), e.backups.end(), node) !=
        e.backups.end())
      return false;
    if (e.backups.size() >= kMaxBackups) return false;
    e.backups.push_back(node);
    return true;
  }

  std::vector<NodeId> distinct() const {
    std::vector<NodeId> out;
    for (const ModelEntry& e : entries) {
      if (!e.node.is_valid() || e.node == owner) continue;
      if (std::find(out.begin(), out.end(), e.node) == out.end())
        out.push_back(e.node);
    }
    return out;
  }

  IdParams params;
  NodeId owner;
  std::vector<ModelEntry> entries;  // level-major
  std::vector<NodeId> reverse;      // insertion order
};

class SoaEquivalenceTest : public ::testing::Test {
 protected:
  static constexpr IdParams kParams{4, 5};

  SoaEquivalenceTest()
      : owner_(testing::id_of("21233", kParams)),
        self_table_(kParams, owner_),
        arena_table_(kParams, owner_, &arena_),
        model_(kParams, owner_),
        rng_(0x50a) {}

  // A random ID legal for entry (level, digit): shares `level` digits of
  // suffix with the owner and has digit(level) == digit.
  NodeId random_member(std::uint32_t level, std::uint32_t digit) {
    std::vector<Digit> digits(kParams.num_digits);
    for (std::uint32_t i = 0; i < kParams.num_digits; ++i)
      digits[i] = static_cast<Digit>(rng_.next_below(kParams.base));
    for (std::uint32_t i = 0; i < level; ++i) digits[i] = owner_.digit(i);
    digits[level] = static_cast<Digit>(digit);
    return NodeId(digits, kParams);
  }

  void check_agreement() {
    const NeighborTable* tables[] = {&self_table_, &arena_table_};
    for (const NeighborTable* t : tables) {
      ASSERT_EQ(t->filled_count(), count_filled_model());
      for (std::uint32_t i = 0; i < kParams.num_digits; ++i) {
        for (std::uint32_t j = 0; j < kParams.base; ++j) {
          const ModelEntry& e = model_.at(i, j);
          ASSERT_EQ(t->is_empty(i, j), !e.node.is_valid()) << i << "," << j;
          if (e.node.is_valid()) {
            ASSERT_EQ(*t->neighbor(i, j), e.node) << i << "," << j;
            ASSERT_EQ(t->state(i, j), e.state) << i << "," << j;
            ASSERT_EQ(t->host(i, j), e.host) << i << "," << j;
          }
          const std::span<const NodeId> b = t->backups(i, j);
          ASSERT_EQ(std::vector<NodeId>(b.begin(), b.end()), e.backups)
              << i << "," << j;
        }
      }
      // distinct_neighbors: level-major first-appearance order, exactly.
      const std::span<const NodeId> d = t->distinct_neighbors();
      ASSERT_EQ(std::vector<NodeId>(d.begin(), d.end()), model_.distinct());
      // Reverse set: same membership, same insertion order.
      ASSERT_EQ(t->reverse_neighbors().size(), model_.reverse.size());
      std::size_t k = 0;
      for (const NodeId& v : t->reverse_neighbors())
        ASSERT_EQ(v, model_.reverse[k++]);
      // Snapshot agrees with for_each_filled and with the model.
      const TableSnapshot snap = t->snapshot_full();
      std::size_t idx = 0;
      t->for_each_filled([&](std::uint32_t i, std::uint32_t j,
                             const NodeId& n, NeighborState s) {
        ASSERT_EQ(model_.at(i, j).node, n);
        ASSERT_EQ(model_.at(i, j).state, s);
        ASSERT_LT(idx, snap.entries.size());
        ASSERT_EQ(snap.entries[idx].node, n);
        ++idx;
      });
      ASSERT_EQ(idx, snap.entries.size());
    }
  }

  std::size_t count_filled_model() const {
    std::size_t n = 0;
    for (const ModelEntry& e : model_.entries)
      if (e.node.is_valid()) ++n;
    return n;
  }

  NodeId owner_;
  Arena arena_;
  NeighborTable self_table_;
  NeighborTable arena_table_;
  Model model_;
  Rng rng_;
};

TEST_F(SoaEquivalenceTest, RandomOpSequenceStaysEquivalent) {
  for (int step = 0; step < 3000; ++step) {
    const auto level =
        static_cast<std::uint32_t>(rng_.next_below(kParams.num_digits));
    const auto digit =
        static_cast<std::uint32_t>(rng_.next_below(kParams.base));
    switch (rng_.next_below(8)) {
      case 0:
      case 1: {  // fill / overwrite
        const NodeId n = random_member(level, digit);
        const auto st =
            rng_.next_bool(0.5) ? NeighborState::kS : NeighborState::kT;
        const HostId h = static_cast<HostId>(rng_.next_below(100));
        self_table_.set(level, digit, n, st, h);
        arena_table_.set(level, digit, n, st, h);
        model_.set(level, digit, n, st, h);
        break;
      }
      case 2: {  // clear
        self_table_.clear(level, digit);
        arena_table_.clear(level, digit);
        ModelEntry& e = model_.at(level, digit);
        if (e.node.is_valid()) {
          e.node = NodeId();
          e.host = kNoHost;
          e.state = NeighborState::kT;
        }
        break;
      }
      case 3: {  // offer a backup
        const NodeId n = random_member(level, digit);
        const bool a = self_table_.offer_backup(level, digit, n, kMaxBackups);
        const bool b = arena_table_.offer_backup(level, digit, n, kMaxBackups);
        const bool m = model_.offer_backup(level, digit, n);
        ASSERT_EQ(a, m);
        ASSERT_EQ(b, m);
        break;
      }
      case 4: {  // purge one backup (maybe absent)
        const ModelEntry& e = model_.at(level, digit);
        const NodeId victim = e.backups.empty()
                                  ? random_member(level, digit)
                                  : e.backups[rng_.next_below(
                                        e.backups.size())];
        self_table_.purge_backup(level, digit, victim);
        arena_table_.purge_backup(level, digit, victim);
        ModelEntry& me = model_.at(level, digit);
        me.backups.erase(
            std::remove(me.backups.begin(), me.backups.end(), victim),
            me.backups.end());
        break;
      }
      case 5: {  // promote the first backup
        const NodeId a = self_table_.take_first_backup(level, digit);
        const NodeId b = arena_table_.take_first_backup(level, digit);
        ModelEntry& e = model_.at(level, digit);
        NodeId m;
        if (!e.backups.empty()) {
          m = e.backups.front();
          e.backups.erase(e.backups.begin());
        }
        ASSERT_EQ(a.is_valid(), m.is_valid());
        ASSERT_EQ(b.is_valid(), m.is_valid());
        if (m.is_valid()) {
          ASSERT_EQ(a, m);
          ASSERT_EQ(b, m);
        }
        break;
      }
      case 6: {  // register a reverse neighbor
        const NodeId v = random_member(level, digit);
        self_table_.add_reverse_neighbor(v);
        arena_table_.add_reverse_neighbor(v);
        if (v != owner_ &&
            std::find(model_.reverse.begin(), model_.reverse.end(), v) ==
                model_.reverse.end())
          model_.reverse.push_back(v);
        break;
      }
      case 7: {  // drop a reverse neighbor (maybe absent)
        const NodeId v = model_.reverse.empty()
                             ? random_member(level, digit)
                             : model_.reverse[rng_.next_below(
                                   model_.reverse.size())];
        self_table_.remove_reverse_neighbor(v);
        arena_table_.remove_reverse_neighbor(v);
        model_.reverse.erase(
            std::remove(model_.reverse.begin(), model_.reverse.end(), v),
            model_.reverse.end());
        break;
      }
    }
    if (step % 250 == 0) check_agreement();
  }
  check_agreement();

  // reset() must return both tables to the pristine state in place.
  self_table_.reset();
  arena_table_.reset();
  model_ = Model(kParams, owner_);
  check_agreement();
}

TEST_F(SoaEquivalenceTest, StateUpdateAndMemoHost) {
  const NodeId n = random_member(1, 0);
  self_table_.set(1, 0, n, NeighborState::kT);
  arena_table_.set(1, 0, n, NeighborState::kT);
  model_.set(1, 0, n, NeighborState::kT, kNoHost);
  check_agreement();

  self_table_.set_state(1, 0, NeighborState::kS);
  arena_table_.set_state(1, 0, NeighborState::kS);
  model_.at(1, 0).state = NeighborState::kS;
  check_agreement();

  self_table_.memo_host(1, 0, HostId{42});
  arena_table_.memo_host(1, 0, HostId{42});
  model_.at(1, 0).host = HostId{42};
  check_agreement();
}

}  // namespace
}  // namespace hcube
