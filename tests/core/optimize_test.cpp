// Nearest-neighbor table optimization (core/optimize.h).
#include "core/optimize.h"

#include <gtest/gtest.h>

#include "core/routing.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::audit;
using testing::make_ids;

TEST(Optimize, PreservesConsistency) {
  const IdParams params{4, 6};
  World world(params, 120);
  build_consistent_network(world.overlay, make_ids(params, 120, 5));
  const auto result = optimize_tables(world.overlay, world.latency);
  EXPECT_GT(result.entries_examined, 0u);
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

TEST(Optimize, EveryEntryIsNearestAmongScannedCandidates) {
  const IdParams params{4, 5};
  World world(params, 60);
  auto ids = make_ids(params, 60, 7);
  build_consistent_network(world.overlay, ids);
  optimize_tables(world.overlay, world.latency, /*max_candidates=*/1000);

  SuffixTrie members(params);
  for (const NodeId& id : ids) members.insert(id);

  for (const auto& node : world.overlay.nodes()) {
    const NodeId& x = node->id();
    const HostId xh = world.overlay.host_of(x);
    node->table().for_each_filled([&](std::uint32_t i, std::uint32_t j,
                                      const NodeId& current, NeighborState) {
      if (current == x) return;
      Suffix want = x.suffix_of_len(i);
      want.push_back(static_cast<Digit>(j));
      const double chosen =
          world.latency.latency_ms(xh, world.overlay.host_of(current));
      for (const NodeId& c : members.all_with_suffix(want)) {
        if (c == x) continue;
        EXPECT_GE(world.latency.latency_ms(xh, world.overlay.host_of(c)),
                  chosen - 1e-9)
            << "entry (" << i << "," << j << ") of " << x.to_string(params)
            << " is not nearest";
      }
    });
  }
}

TEST(Optimize, ReverseNeighborBookkeepingStaysExact) {
  const IdParams params{4, 6};
  World world(params, 80);
  auto ids = make_ids(params, 80, 11);
  build_consistent_network(world.overlay, ids);
  optimize_tables(world.overlay, world.latency);

  // u in reverse set of v  <=>  u stores v somewhere.
  for (const auto& v : world.overlay.nodes()) {
    for (const NodeId& u : v->table().reverse_neighbors()) {
      bool stores = false;
      world.overlay.at(u).table().for_each_filled(
          [&](std::uint32_t, std::uint32_t, const NodeId& n, NeighborState) {
            if (n == v->id()) stores = true;
          });
      EXPECT_TRUE(stores) << u.to_string(params) << " registered at "
                          << v->id().to_string(params) << " but stores it nowhere";
    }
  }
  for (const auto& u : world.overlay.nodes()) {
    u->table().for_each_filled([&](std::uint32_t, std::uint32_t,
                                   const NodeId& n, NeighborState) {
      if (n == u->id()) return;
      EXPECT_TRUE(world.overlay.at(n).table().reverse_neighbors().contains(
          u->id()))
          << u->id().to_string(params) << " stores " << n.to_string(params)
          << " without registration";
    });
  }
}

TEST(Optimize, IdempotentSecondPass) {
  const IdParams params{4, 6};
  World world(params, 60);
  build_consistent_network(world.overlay, make_ids(params, 60, 13));
  optimize_tables(world.overlay, world.latency, 1000);
  const auto second = optimize_tables(world.overlay, world.latency, 1000);
  EXPECT_EQ(second.entries_rebound, 0u);
}

TEST(Optimize, JoinsStillWorkAfterOptimization) {
  const IdParams params{4, 6};
  World world(params, 70);
  auto ids = make_ids(params, 70, 17);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 50);
  const std::vector<NodeId> w(ids.begin() + 50, ids.end());
  build_consistent_network(world.overlay, v);
  optimize_tables(world.overlay, world.latency);
  Rng rng(3);
  join_concurrently(world.overlay, w, v, rng);
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(audit(world.overlay).consistent());
}

TEST(Optimize, LeavesStillWorkAfterOptimization) {
  const IdParams params{4, 6};
  World world(params, 50);
  auto ids = make_ids(params, 50, 19);
  build_consistent_network(world.overlay, ids);
  optimize_tables(world.overlay, world.latency);
  for (int i = 0; i < 8; ++i) {
    leave_and_drain(world.overlay, ids[i * 5]);
    ASSERT_TRUE(audit(world.overlay).consistent());
  }
}

TEST(Optimize, SingleNodeNoop) {
  const IdParams params{4, 4};
  World world(params, 2);
  build_consistent_network(world.overlay, make_ids(params, 1, 23));
  const auto result = optimize_tables(world.overlay, world.latency);
  EXPECT_EQ(result.entries_examined, 0u);  // only own entries exist
  EXPECT_EQ(result.entries_rebound, 0u);
}

}  // namespace
}  // namespace hcube
