// Repair under clustered failure: one pull phase vacates every pointer at
// the dead (all pings time out in the same round), but refilling the holes
// is epidemic — the lone survivor of a decimated suffix class propagates
// one announce hop per round, so a clustered crash needs multiple rounds
// before the network is consistent again. Also covers the stale
// ping-timeout path: a start_repair that overlaps an outstanding probe
// bumps the generation, and the superseded timeout must do nothing.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::make_ids;

constexpr SimTime kPingTimeout = 500.0;

// Does any live node still store (or reverse-track) one of `dead`?
bool references_any(const Overlay& overlay, const std::vector<NodeId>& dead) {
  bool found = false;
  for (const auto& node : overlay.nodes()) {
    if (node->is_crashed()) continue;
    node->table().for_each_filled([&](std::uint32_t, std::uint32_t,
                                      const NodeId& n, NeighborState) {
      for (const NodeId& d : dead)
        if (n == d) found = true;
    });
    for (const NodeId& d : dead)
      if (node->table().reverse_neighbors().contains(d)) found = true;
  }
  return found;
}

TEST(RepairRounds, ClusteredClassCrashNeedsMultipleRounds) {
  // Crash every member but one of the largest level-0 suffix class. The
  // pull phase of round 1 detects and vacates every dead pointer at once
  // (queries flow, but peers answer from already-cleaned tables), yet most
  // survivors are left with an empty (0, d) entry and no idea the class
  // still has a member: the survivor re-advertises itself one announce hop
  // per round, so consistency takes more than one round to restore.
  const IdParams params{4, 6};
  World world(params, 60);
  auto ids = make_ids(params, 60, 5);
  build_consistent_network(world.overlay, ids);

  std::map<std::uint32_t, std::vector<NodeId>> classes;
  for (const NodeId& id : ids)
    classes[static_cast<std::uint32_t>(id.digit(0))].push_back(id);
  const std::vector<NodeId>* biggest = nullptr;
  for (const auto& [digit, members] : classes)
    if (biggest == nullptr || members.size() > biggest->size())
      biggest = &members;
  ASSERT_GE(biggest->size(), 3u);
  const std::vector<NodeId> dead(biggest->begin(), biggest->end() - 1);
  for (const NodeId& d : dead) world.overlay.crash(d);

  // Round 1: the pull phase issues queries and scrubs every dead pointer —
  // but cannot yet have re-filled every hole.
  const auto q1 = world.overlay.repair_all(kPingTimeout, 1);
  EXPECT_GT(q1, 0u);
  EXPECT_FALSE(references_any(world.overlay, dead));
  const bool consistent_after_one =
      check_consistency(view_of(world.overlay)).consistent();

  int rounds = 1;
  while (rounds < 10 &&
         !check_consistency(view_of(world.overlay)).consistent()) {
    world.overlay.repair_all(kPingTimeout, 1);
    ++rounds;
  }
  EXPECT_FALSE(consistent_after_one)
      << "clustered crash unexpectedly healed in a single round";
  EXPECT_GE(rounds, 2);
  const auto report = check_consistency(view_of(world.overlay));
  EXPECT_TRUE(report.consistent())
      << "still inconsistent after " << rounds << " rounds\n"
      << report.summary(params);
  EXPECT_FALSE(references_any(world.overlay, dead));
}

TEST(RepairRounds, SupersededPingTimeoutIsIgnored) {
  // Two overlapping repair waves: the second start_repair (t=100) bumps the
  // probe generation for every pending ping, so the first wave's timeouts
  // (t=500) hit the generation-mismatch branch and must not vacate or
  // repair anything — the second wave's own timeouts (t=600) do the single
  // repair. Pongs answering wave-1 pings that arrive after wave 2 began
  // also exercise the probe-already-erased branch. A normal settling round
  // afterwards propagates the announce phase (same reason a single crash
  // needs two rounds, see recovery_test.cpp).
  const IdParams params{4, 5};
  World world(params, 30);
  auto ids = make_ids(params, 30, 17);
  build_consistent_network(world.overlay, ids);
  world.overlay.crash(ids[4]);

  for (const auto& node : world.overlay.nodes())
    if (node->is_s_node()) node->start_repair(kPingTimeout);
  world.overlay.queue().schedule_after(100.0, [&] {
    for (const auto& node : world.overlay.nodes())
      if (node->is_s_node()) node->start_repair(kPingTimeout);
  });
  world.overlay.run_to_quiescence();
  for (const auto& node : world.overlay.nodes()) {
    EXPECT_FALSE(node->repair_in_progress());
    if (node->is_s_node()) node->announce_table();
  }
  world.overlay.run_to_quiescence();
  world.overlay.repair_all(kPingTimeout, 1);

  EXPECT_FALSE(references_any(world.overlay, {ids[4]}));
  const auto report = check_consistency(view_of(world.overlay));
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

}  // namespace
}  // namespace hcube
