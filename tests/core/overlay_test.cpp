// Overlay runtime: registry, scheduling, metrics accounting, views.
#include "core/overlay.h"

#include <gtest/gtest.h>

#include "core/routing.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::make_ids;

TEST(Overlay, RegistryLookups) {
  const IdParams params{4, 4};
  World world(params, 8);
  auto ids = make_ids(params, 3, 1);
  build_consistent_network(world.overlay, {ids[0], ids[1]});
  EXPECT_NE(world.overlay.find(ids[0]), nullptr);
  EXPECT_EQ(world.overlay.find(ids[2]), nullptr);
  EXPECT_EQ(world.overlay.at(ids[1]).id(), ids[1]);
  EXPECT_DEATH(world.overlay.at(ids[2]), "unknown");
  EXPECT_NE(world.overlay.host_of(ids[0]), world.overlay.host_of(ids[1]));
}

TEST(Overlay, ScheduleJoinHonorsStartTime) {
  const IdParams params{4, 4};
  World world(params, 8);
  auto ids = make_ids(params, 2, 2);
  world.overlay.add_node(ids[0]).become_seed();
  Node& joiner = world.overlay.schedule_join(ids[1], ids[0], 250.0);
  world.queue.run_until(249.0);
  EXPECT_EQ(joiner.status(), NodeStatus::kCopying);  // not yet started
  const JoinStats& s = joiner.join_stats();
  EXPECT_LT(s.t_begin, 0.0);  // unset
  world.overlay.run_to_quiescence();
  EXPECT_TRUE(joiner.is_s_node());
  EXPECT_DOUBLE_EQ(joiner.join_stats().t_begin, 250.0);
}

TEST(Overlay, TotalsMatchPerNodeStats) {
  const IdParams params{4, 5};
  World world(params, 40);
  auto ids = make_ids(params, 35, 3);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 20);
  const std::vector<NodeId> w(ids.begin() + 20, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(1);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());

  Overlay::Totals recomputed;
  for (const auto& node : world.overlay.nodes()) {
    const JoinStats& s = node->join_stats();
    for (std::size_t t = 0; t < kNumMessageTypes; ++t) {
      recomputed.sent[t] += s.sent[t];
      recomputed.messages += s.sent[t];
    }
    recomputed.bytes += s.bytes_sent;
  }
  EXPECT_EQ(world.overlay.totals().messages, recomputed.messages);
  EXPECT_EQ(world.overlay.totals().bytes, recomputed.bytes);
  for (std::size_t t = 0; t < kNumMessageTypes; ++t)
    EXPECT_EQ(world.overlay.totals().sent[t], recomputed.sent[t]) << t;
}

TEST(Overlay, EverySentMessageIsEventuallyReceived) {
  const IdParams params{4, 5};
  World world(params, 30);
  auto ids = make_ids(params, 25, 5);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 15);
  const std::vector<NodeId> w(ids.begin() + 15, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(2);
  join_concurrently(world.overlay, w, v, rng);

  std::uint64_t received = 0;
  for (const auto& node : world.overlay.nodes())
    for (std::size_t t = 0; t < kNumMessageTypes; ++t)
      received += node->join_stats().received[t];
  EXPECT_EQ(received, world.overlay.totals().messages);
}

TEST(Overlay, OnMessageHookSeesEveryMessage) {
  const IdParams params{4, 4};
  World world(params, 10);
  auto ids = make_ids(params, 8, 7);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 7);
  build_consistent_network(world.overlay, v);
  std::uint64_t seen = 0;
  world.overlay.on_message = [&](const NodeId&, const NodeId&,
                                 const MessageBody&) { ++seen; };
  world.overlay.schedule_join(ids[7], v[0], 0.0);
  world.overlay.run_to_quiescence();
  EXPECT_EQ(seen, world.overlay.totals().messages);
}

TEST(Overlay, LiveSizeTracksMembershipChanges) {
  const IdParams params{4, 5};
  World world(params, 20);
  auto ids = make_ids(params, 20, 9);
  build_consistent_network(world.overlay, ids);
  EXPECT_EQ(world.overlay.live_size(), 20u);
  leave_and_drain(world.overlay, ids[0]);
  EXPECT_EQ(world.overlay.live_size(), 19u);
  world.overlay.crash(ids[1]);
  EXPECT_EQ(world.overlay.live_size(), 18u);
  EXPECT_TRUE(world.overlay.all_in_system());  // departed/crashed excluded
  const NetworkView net = view_of(world.overlay);
  EXPECT_EQ(net.size(), 18u);
  EXPECT_FALSE(net.contains(ids[0]));
  EXPECT_FALSE(net.contains(ids[1]));
}

TEST(Overlay, DropFilterCanBeCleared) {
  const IdParams params{4, 4};
  World world(params, 8);
  auto ids = make_ids(params, 4, 11);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 3);
  build_consistent_network(world.overlay, v);
  world.overlay.set_drop_filter(
      [](const NodeId&, const NodeId&, const MessageBody&) { return true; });
  world.overlay.set_drop_filter(nullptr);  // back to reliable delivery
  world.overlay.schedule_join(ids[3], v[0], 0.0);
  world.overlay.run_to_quiescence();
  EXPECT_TRUE(world.overlay.all_in_system());
}

TEST(SuffixTrieSome, CapIsRespected) {
  const IdParams params{2, 8};
  SuffixTrie trie(params);
  auto ids = make_ids(params, 120, 13);
  for (const auto& id : ids) trie.insert(id);
  const Suffix empty;
  EXPECT_EQ(trie.some_with_suffix(empty, 0).size(), 0u);
  EXPECT_EQ(trie.some_with_suffix(empty, 5).size(), 5u);
  EXPECT_EQ(trie.some_with_suffix(empty, 10000).size(), 120u);
  // Capped results are a prefix of the full digit-order enumeration.
  const auto all = trie.all_with_suffix(empty);
  const auto some = trie.some_with_suffix(empty, 7);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(some[i], all[i]);
}

}  // namespace
}  // namespace hcube
