// Cross-cutting protocol properties: monotone reachability, entry
// immutability, status transitions, the paper's assumptions as guard rails,
// and failure injection (the checker must detect damage from lost messages,
// since the protocol itself assumes reliable delivery).
#include <gtest/gtest.h>

#include <map>

#include "core/cset_tree.h"
#include "net/fault_plan.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::audit;
using testing::make_ids;

TEST(ProtocolInvariants, EntriesNeverChangeOnceFilledDuringJoins) {
  // "Nodes in V will fill x into a table entry only if that entry is empty"
  // (Section 3.2). We watch every message and snapshot entries of existing
  // nodes after quiescence-at-each-step, checking the filled set only grows
  // and never rebinds.
  const IdParams params{4, 6};
  World world(params, 80);
  auto ids = make_ids(params, 70, 66);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 35);
  const std::vector<NodeId> w(ids.begin() + 35, ids.end());
  build_consistent_network(world.overlay, v);

  Rng rng(1);
  for (const NodeId& id : w) {
    world.overlay.schedule_join(id, v[rng.next_below(v.size())],
                                world.overlay.now());
  }
  // Run in small bursts; after each burst verify no existing V entry lost
  // or changed its occupant.
  std::map<std::tuple<NodeId, std::uint32_t, std::uint32_t>, NodeId> seen;
  auto scan = [&]() {
    for (const auto& node : world.overlay.nodes()) {
      node->table().for_each_filled([&](std::uint32_t i, std::uint32_t j,
                                        const NodeId& n, NeighborState) {
        // Own-digit entries are legitimately rebound once: at the end of the
        // copying phase x installs itself as its own (i, x[i])-neighbor
        // (Section 2.2), replacing whatever was copied there.
        if (j == node->id().digit(i)) return;
        auto key = std::make_tuple(node->id(), i, j);
        auto it = seen.find(key);
        if (it == seen.end()) {
          seen.emplace(key, n);
        } else {
          EXPECT_EQ(it->second, n)
              << "entry (" << i << "," << j << ") of "
              << node->id().to_string(params) << " was rebound";
        }
      });
    }
  };
  scan();
  while (world.overlay.run_to_quiescence(50) > 0) scan();
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(audit(world.overlay).consistent());
}

TEST(ProtocolInvariants, ReachabilityIsMonotone) {
  // "Our join protocol is designed to expand the network monotonically and
  // preserve reachability of existing nodes" — once a pair of S-nodes can
  // reach each other, they always can.
  const IdParams params{4, 5};
  World world(params, 48);
  auto ids = make_ids(params, 40, 91);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 20);
  const std::vector<NodeId> w(ids.begin() + 20, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(3);
  for (const NodeId& id : w)
    world.overlay.schedule_join(id, v[rng.next_below(v.size())], 0.0);

  std::set<std::pair<NodeId, NodeId>> reachable_pairs;
  auto scan = [&]() {
    const NetworkView net = view_of(world.overlay);
    // Previously reachable pairs must stay reachable.
    for (const auto& [a, b] : reachable_pairs)
      EXPECT_TRUE(reachable(net, a, b))
          << a.to_string(params) << " lost " << b.to_string(params);
    // Record newly reachable pairs among a sample.
    for (std::size_t i = 0; i < ids.size(); i += 3)
      for (std::size_t j = 0; j < ids.size(); j += 5) {
        if (i == j) continue;
        if (!world.overlay.find(ids[i]) || !world.overlay.find(ids[j]))
          continue;
        if (reachable(net, ids[i], ids[j]))
          reachable_pairs.insert({ids[i], ids[j]});
      }
  };
  scan();
  while (world.overlay.run_to_quiescence(120) > 0) scan();
  EXPECT_TRUE(world.overlay.all_in_system());
}

TEST(ProtocolInvariants, StatusNeverRegresses) {
  const IdParams params{4, 5};
  World world(params, 40);
  auto ids = make_ids(params, 30, 17);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 15);
  const std::vector<NodeId> w(ids.begin() + 15, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(9);
  for (const NodeId& id : w)
    world.overlay.schedule_join(id, v[rng.next_below(v.size())], 0.0);

  std::map<NodeId, NodeStatus> last;
  while (world.overlay.run_to_quiescence(25) > 0) {
    for (const auto& node : world.overlay.nodes()) {
      auto it = last.find(node->id());
      if (it != last.end()) {
        EXPECT_GE(static_cast<int>(node->status()),
                  static_cast<int>(it->second))
            << node->id().to_string(params) << " regressed";
      }
      last[node->id()] = node->status();
    }
  }
  EXPECT_TRUE(world.overlay.all_in_system());
}

TEST(ProtocolInvariants, JoiningPeriodsAreRecorded) {
  const IdParams params{4, 5};
  World world(params, 24);
  auto ids = make_ids(params, 20, 53);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 10);
  const std::vector<NodeId> w(ids.begin() + 10, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(5);
  join_concurrently(world.overlay, w, v, rng, /*window_ms=*/100.0);
  ASSERT_TRUE(world.overlay.all_in_system());
  for (const NodeId& x : w) {
    const JoinStats& s = world.overlay.at(x).join_stats();
    EXPECT_GE(s.t_begin, 0.0);
    EXPECT_GT(s.t_end, s.t_begin);  // a join takes at least one round trip
  }
}

TEST(ProtocolInvariants, BigMessagesHaveMatchingReplies) {
  // "For each message of type CpRstMsg, JoinWaitMsg, or JoinNotiMsg, there
  // is one and only one corresponding reply" (Section 5.2).
  const IdParams params{4, 6};
  World world(params, 60);
  auto ids = make_ids(params, 50, 29);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 25);
  const std::vector<NodeId> w(ids.begin() + 25, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(8);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());

  const auto& totals = world.overlay.totals();
  auto count = [&](MessageType t) {
    return totals.sent[static_cast<std::size_t>(t)];
  };
  EXPECT_EQ(count(MessageType::kCpRst), count(MessageType::kCpRly));
  EXPECT_EQ(count(MessageType::kJoinWait), count(MessageType::kJoinWaitRly));
  EXPECT_EQ(count(MessageType::kJoinNoti), count(MessageType::kJoinNotiRly));
  EXPECT_EQ(count(MessageType::kSpeNoti) > 0,
            count(MessageType::kSpeNotiRly) > 0);
  // SpeNotiMsg may be forwarded, so sends >= replies; every chain ends in
  // exactly one reply.
  EXPECT_GE(count(MessageType::kSpeNoti), count(MessageType::kSpeNotiRly));
}

TEST(FailureInjection, DroppedRepliesStallJoins) {
  // The protocol assumes reliable delivery (assumption (iii) in Section
  // 3.1). A seeded FaultPlan drops a slice of JoinNotiRlyMsg traffic on the
  // bare transport (no ReliableTransport underneath): affected joiners wait
  // in Q_r forever and never become S-nodes — exactly the failure mode the
  // assumption exists to exclude, and the one reliable_join_test.cpp shows
  // the ARQ layer healing.
  const IdParams params{2, 8};
  World world(params, 50);
  auto ids = make_ids(params, 40, 3);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 20);
  const std::vector<NodeId> w(ids.begin() + 20, ids.end());
  build_consistent_network(world.overlay, v);

  FaultPlan plan(12);
  plan.set_for_type(MessageType::kJoinNotiRly, {.drop = 0.2});
  plan.attach(world.overlay.transport());

  Rng rng(12);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_GT(plan.drops_injected(), 0u);
  // The event queue drained (quiescence) yet joins did not complete: a
  // joiner whose reply was lost waits forever.
  EXPECT_TRUE(world.queue.empty());
  EXPECT_FALSE(world.overlay.all_in_system());
}

TEST(FailureInjection, DroppedJoinWaitStallsInWaiting) {
  const IdParams params{4, 6};
  World world(params, 24);
  auto ids = make_ids(params, 21, 9);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 20);
  const NodeId joiner = ids.back();
  build_consistent_network(world.overlay, v);

  FaultPlan plan(9);
  plan.set_for_type(MessageType::kJoinWait, {.drop = 1.0});
  plan.attach(world.overlay.transport());
  world.overlay.schedule_join(joiner, v[0], 0.0);
  world.overlay.run_to_quiescence();
  EXPECT_EQ(world.overlay.at(joiner).status(), NodeStatus::kWaiting);

  // Clearing the filter and replaying the join is not part of the protocol;
  // just confirm the rest of the network was not corrupted.
  NetworkView view(params);
  for (const auto& node : world.overlay.nodes())
    if (node->id() != joiner) view.add(&node->table());
  EXPECT_TRUE(check_consistency(view).consistent());
}

}  // namespace
}  // namespace hcube
