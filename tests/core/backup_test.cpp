// Redundant neighbors per entry (Section 2.1's "extra neighbors ... for
// fault tolerant routing") and the machinery that uses them: fault-tolerant
// routing over stale tables and backup promotion during recovery.
#include <gtest/gtest.h>

#include "core/routing.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::audit;
using testing::id_of;
using testing::make_ids;

TEST(Backups, TableStoresAndValidates) {
  const IdParams params{4, 5};
  const NodeId owner = id_of("21233", params);
  NeighborTable table(params, owner);
  table.set(1, 0, id_of("13103", params), NeighborState::kS);

  // Valid backup for entry (1, 0): another *03 node.
  EXPECT_TRUE(table.offer_backup(1, 0, id_of("22203", params), 2));
  // Duplicates, the primary, the owner, and overflow are all rejected.
  EXPECT_FALSE(table.offer_backup(1, 0, id_of("22203", params), 2));
  EXPECT_FALSE(table.offer_backup(1, 0, id_of("13103", params), 2));
  EXPECT_TRUE(table.offer_backup(1, 0, id_of("33303", params), 2));
  EXPECT_FALSE(table.offer_backup(1, 0, id_of("11103", params), 2));  // full
  EXPECT_EQ(table.backups(1, 0).size(), 2u);
  EXPECT_EQ(table.total_backups(), 2u);

  // Wrong suffix dies.
  EXPECT_DEATH(table.offer_backup(1, 0, id_of("22212", params), 2), "suffix");
}

TEST(Backups, PurgeAndTake) {
  const IdParams params{4, 5};
  const NodeId owner = id_of("21233", params);
  NeighborTable table(params, owner);
  table.set(1, 0, id_of("13103", params), NeighborState::kS);
  table.offer_backup(1, 0, id_of("22203", params), 3);
  table.offer_backup(1, 0, id_of("33303", params), 3);

  table.purge_backup(1, 0, id_of("22203", params));
  EXPECT_EQ(table.backups(1, 0).size(), 1u);
  EXPECT_EQ(table.take_first_backup(1, 0), id_of("33303", params));
  EXPECT_TRUE(table.backups(1, 0).empty());
  EXPECT_FALSE(table.take_first_backup(1, 0).is_valid());
  EXPECT_EQ(table.total_backups(), 0u);
}

TEST(Backups, JoinsPopulateBackupsOpportunistically) {
  // Dense ID space + many joins: occupied entries see later class members
  // and remember them.
  const IdParams params{2, 10};
  ProtocolOptions options;
  options.backups_per_entry = 2;
  World world(params, 140, options);
  auto ids = make_ids(params, 120, 7);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 40);
  const std::vector<NodeId> w(ids.begin() + 40, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(3);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());
  ASSERT_TRUE(audit(world.overlay).consistent());

  std::size_t total = 0;
  for (const auto& node : world.overlay.nodes())
    total += node->table().total_backups();
  EXPECT_GT(total, 50u);  // plenty of redundancy accumulated

  // Every backup satisfies its entry's suffix constraint and names a
  // member (NeighborTable enforces the former; check membership here).
  for (const auto& node : world.overlay.nodes()) {
    node->table().for_each_filled([&](std::uint32_t i, std::uint32_t j,
                                      const NodeId&, NeighborState) {
      for (const NodeId& b : node->table().backups(i, j))
        EXPECT_NE(world.overlay.find(b), nullptr);
    });
  }
}

TEST(Backups, FaultTolerantRoutingSurvivesCrashesBeforeRepair) {
  const IdParams params{16, 8};
  World world(params, 600);
  auto ids = make_ids(params, 600, 11);
  build_consistent_network(world.overlay, ids, /*backups_per_entry=*/3);

  // Crash 10% and do NOT repair.
  Rng rng(5);
  for (const auto idx : rng.sample_without_replacement(600, 60))
    world.overlay.crash(ids[idx]);
  const NetworkView live = view_of(world.overlay);

  std::uint64_t plain_ok = 0, ft_ok = 0, trials = 0;
  for (int i = 0; i < 2000; ++i) {
    const NodeId& a = ids[rng.next_below(ids.size())];
    const NodeId& b = ids[rng.next_below(ids.size())];
    if (a == b || !live.contains(a) || !live.contains(b)) continue;
    ++trials;
    if (route(live, a, b).success) ++plain_ok;
    if (route_fault_tolerant(live, a, b).success) ++ft_ok;
  }
  ASSERT_GT(trials, 500u);
  EXPECT_GT(ft_ok, plain_ok);  // backups must help
  // With 3 backups per entry and 10% failures, nearly everything routes.
  EXPECT_GT(static_cast<double>(ft_ok) / static_cast<double>(trials), 0.99);
  EXPECT_LT(static_cast<double>(plain_ok) / static_cast<double>(trials),
            0.98);
}

TEST(Backups, RecoveryPromotesBackups) {
  const IdParams params{4, 6};
  World world(params, 80);
  auto ids = make_ids(params, 80, 13);
  build_consistent_network(world.overlay, ids, /*backups_per_entry=*/2);

  Rng rng(2);
  for (const auto idx : rng.sample_without_replacement(80, 8))
    world.overlay.crash(ids[idx]);
  const auto queries = world.overlay.repair_all(500.0, 2);

  const auto report = check_consistency(view_of(world.overlay));
  EXPECT_TRUE(report.consistent()) << report.summary(params);
  // With backups, many repairs resolve by promotion instead of querying:
  // compare against a backup-less twin of the same world.
  World bare(params, 80);
  build_consistent_network(bare.overlay, ids, 0);
  Rng rng2(2);
  for (const auto idx : rng2.sample_without_replacement(80, 8))
    bare.overlay.crash(ids[idx]);
  const auto bare_queries = bare.overlay.repair_all(500.0, 2);
  EXPECT_TRUE(check_consistency(view_of(bare.overlay)).consistent());
  EXPECT_LT(queries, bare_queries);
}

TEST(Backups, LeavePurgesLeaverFromBackups) {
  const IdParams params{4, 6};
  World world(params, 40);
  auto ids = make_ids(params, 40, 17);
  build_consistent_network(world.overlay, ids, /*backups_per_entry=*/2);

  const NodeId& leaver = ids[4];
  leave_and_drain(world.overlay, leaver);
  ASSERT_TRUE(world.overlay.at(leaver).has_departed());
  ASSERT_TRUE(audit(world.overlay).consistent());

  // The leaver must not appear as a PRIMARY anywhere (protocol guarantee);
  // it may linger as a backup only in entries it was never announced for —
  // those are skipped by fault-tolerant routing. Verify primaries here.
  for (const auto& node : world.overlay.nodes()) {
    if (node->has_departed()) continue;
    node->table().for_each_filled([&](std::uint32_t, std::uint32_t,
                                      const NodeId& n,
                                      NeighborState) { EXPECT_NE(n, leaver); });
  }
}

TEST(Backups, ZeroBackupsConfigIsPaperBehavior) {
  const IdParams params{4, 6};
  World world(params, 60);  // default options: backups_per_entry = 0
  auto ids = make_ids(params, 50, 19);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 25);
  const std::vector<NodeId> w(ids.begin() + 25, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(1);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());
  for (const auto& node : world.overlay.nodes())
    EXPECT_EQ(node->table().total_backups(), 0u);
}

}  // namespace
}  // namespace hcube
