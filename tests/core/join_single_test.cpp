// Single-join behaviour: Figure 5's copy chain, Lemma 5.1 consistency, and
// Theorem 3's message bound for one joiner at a time.
#include <gtest/gtest.h>

#include "analysis/join_cost.h"
#include "core/cset_tree.h"
#include "ids/suffix_trie.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::audit;
using testing::make_ids;

TEST(JoinSingle, JoinIntoSeedOnlyNetwork) {
  const IdParams params{4, 6};
  World world(params, 8);
  auto ids = make_ids(params, 2, /*seed=*/1);
  world.overlay.add_node(ids[0]).become_seed();

  world.overlay.schedule_join(ids[1], ids[0], 0.0);
  world.overlay.run_to_quiescence();

  EXPECT_TRUE(world.overlay.all_in_system());
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

TEST(JoinSingle, JoinIntoBuiltNetworkIsConsistent) {
  const IdParams params{4, 6};
  World world(params, 64);
  auto ids = make_ids(params, 41, /*seed=*/7);
  const NodeId joiner = ids.back();
  ids.pop_back();
  build_consistent_network(world.overlay, ids);
  ASSERT_TRUE(audit(world.overlay).consistent());

  world.overlay.schedule_join(joiner, ids[3], 0.0);
  world.overlay.run_to_quiescence();

  EXPECT_TRUE(world.overlay.all_in_system());
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

TEST(JoinSingle, Theorem3BoundHolds) {
  const IdParams params{4, 6};
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    World world(params, 64, {}, seed);
    auto ids = make_ids(params, 50, seed);
    const NodeId joiner = ids.back();
    ids.pop_back();
    build_consistent_network(world.overlay, ids);
    world.overlay.schedule_join(joiner, ids[seed % ids.size()], 0.0);
    world.overlay.run_to_quiescence();

    const JoinStats& stats = world.overlay.at(joiner).join_stats();
    EXPECT_LE(stats.copy_plus_wait(), theorem3_bound(params));
    EXPECT_TRUE(audit(world.overlay).consistent());
  }
}

TEST(JoinSingle, JoinerNotifiesEntireNotificationSet) {
  // After a single join, every node in V that shares the joiner's
  // notification suffix must have been told about it: Definition 3.4 +
  // Section 3.2 ("nodes in V_{x[k-1..0]} need to be notified").
  const IdParams params{2, 8};  // binary digits force suffix collisions
  World world(params, 64);
  auto ids = make_ids(params, 33, /*seed=*/23);
  const NodeId joiner = ids.back();
  ids.pop_back();
  build_consistent_network(world.overlay, ids);

  SuffixTrie v_trie(params);
  for (const NodeId& id : ids) v_trie.insert(id);
  const std::size_t k = v_trie.notify_suffix_len(joiner);
  const auto noti_set = v_trie.all_with_suffix(joiner.suffix_of_len(k));
  ASSERT_FALSE(noti_set.empty());

  world.overlay.schedule_join(joiner, ids[0], 0.0);
  world.overlay.run_to_quiescence();

  EXPECT_EQ(world.overlay.at(joiner).noti_level(), k);
  for (const NodeId& v : noti_set) {
    const NeighborTable& t = world.overlay.at(v).table();
    EXPECT_TRUE(t.holds(static_cast<std::uint32_t>(k), joiner.digit(k),
                        joiner))
        << "node " << v.to_string(params) << " was not updated";
  }
}

TEST(JoinSingle, SequentialJoinsStayConsistentAtEveryStep) {
  const IdParams params{4, 5};
  World world(params, 64);
  auto ids = make_ids(params, 40, /*seed=*/99);
  world.overlay.add_node(ids[0]).become_seed();

  Rng rng(5);
  std::vector<NodeId> members{ids[0]};
  for (std::size_t i = 1; i < ids.size(); ++i) {
    const NodeId gw = members[rng.next_below(members.size())];
    world.overlay.schedule_join(ids[i], gw, world.overlay.now());
    world.overlay.run_to_quiescence();
    members.push_back(ids[i]);
    const auto report = audit(world.overlay);
    ASSERT_TRUE(report.consistent())
        << "after join " << i << ": " << report.summary(params);
  }
  EXPECT_TRUE(world.overlay.all_in_system());
}

TEST(JoinSingle, ReachabilityAfterJoins) {
  const IdParams params{4, 5};
  World world(params, 48);
  auto ids = make_ids(params, 30, /*seed=*/3);
  Rng rng(17);
  initialize_network(world.overlay, ids, rng, /*concurrent=*/false);

  const NetworkView net = view_of(world.overlay);
  Rng sample_rng(1);
  EXPECT_EQ(check_reachability_sample(net, 5000, sample_rng), 0u);
}

}  // namespace
}  // namespace hcube
