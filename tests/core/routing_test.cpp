#include "core/routing.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::id_of;
using testing::make_ids;

TEST(Routing, ResolvesOneDigitPerHop) {
  const IdParams params{4, 5};
  World world(params, 64);
  auto ids = make_ids(params, 60, 12);
  build_consistent_network(world.overlay, ids);
  const NetworkView net = view_of(world.overlay);

  for (std::size_t i = 0; i < 10; ++i) {
    const auto result = route(net, ids[i], ids[ids.size() - 1 - i]);
    ASSERT_TRUE(result.success);
    EXPECT_LE(result.hops(), params.num_digits);
    // Each hop extends the common suffix with the destination.
    const NodeId& dst = ids[ids.size() - 1 - i];
    std::size_t prev = result.path.front().csuf_len(dst);
    for (std::size_t h = 1; h < result.path.size(); ++h) {
      const std::size_t cur = result.path[h].csuf_len(dst);
      EXPECT_GT(cur, prev);
      prev = cur;
    }
  }
}

TEST(Routing, RouteToSelfIsZeroHops) {
  const IdParams params{4, 4};
  World world(params, 8);
  auto ids = make_ids(params, 5, 3);
  build_consistent_network(world.overlay, ids);
  const auto result = route(view_of(world.overlay), ids[0], ids[0]);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.hops(), 0u);
}

TEST(Routing, FailsForNonexistentDestination) {
  const IdParams params{4, 4};
  World world(params, 16);
  UniqueIdGenerator gen(params, 4);
  std::vector<NodeId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(gen.next());
  build_consistent_network(world.overlay, ids);
  const NodeId outsider = gen.next();
  const auto result = route(view_of(world.overlay), ids[0], outsider);
  EXPECT_FALSE(result.success);  // false-positive freedom: no path leads there
}

TEST(Routing, StartsAtCsufLevel) {
  // Section 2.2: a node that already shares k digits with the destination
  // needs at most d - k hops.
  const IdParams params{2, 8};
  World world(params, 64);
  auto ids = make_ids(params, 50, 8);
  build_consistent_network(world.overlay, ids);
  const NetworkView net = view_of(world.overlay);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (i == j) continue;
      const auto result = route(net, ids[i], ids[j]);
      ASSERT_TRUE(result.success);
      EXPECT_LE(result.hops(),
                params.num_digits - ids[i].csuf_len(ids[j]));
    }
  }
}

TEST(SurrogateRouting, AllOriginsAgreeOnRoot) {
  const IdParams params{4, 6};
  World world(params, 64);
  auto ids = make_ids(params, 50, 5);
  build_consistent_network(world.overlay, ids);
  const NetworkView net = view_of(world.overlay);

  Rng rng(6);
  for (int obj = 0; obj < 40; ++obj) {
    const NodeId object_id = random_id(rng, params);
    const auto first = surrogate_route(net, ids[0], object_id);
    ASSERT_TRUE(first.has_value());
    for (std::size_t i = 1; i < ids.size(); i += 7) {
      const auto other = surrogate_route(net, ids[i], object_id);
      ASSERT_TRUE(other.has_value());
      EXPECT_EQ(other->root, first->root)
          << "origins disagree on the root of "
          << object_id.to_string(params);
    }
  }
}

TEST(SurrogateRouting, ExactMatchRootsAtThatNode) {
  const IdParams params{4, 5};
  World world(params, 32);
  auto ids = make_ids(params, 20, 9);
  build_consistent_network(world.overlay, ids);
  const NetworkView net = view_of(world.overlay);
  // An "object" whose ID equals a member ID must root exactly there.
  for (const NodeId& member : ids) {
    const auto result = surrogate_route(net, ids[0], member);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->root, member);
  }
}

TEST(SurrogateRouting, SingleNodeNetworkRootsEverything) {
  const IdParams params{4, 5};
  World world(params, 4);
  auto ids = make_ids(params, 1, 13);
  build_consistent_network(world.overlay, ids);
  const NetworkView net = view_of(world.overlay);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const auto result = surrogate_route(net, ids[0], random_id(rng, params));
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->root, ids[0]);
  }
}

TEST(SurrogateRouting, RootsStayConsistentAfterJoins) {
  // Root assignment before and after a join wave: objects may move to new
  // nodes, but all origins must still agree afterwards.
  const IdParams params{4, 6};
  World world(params, 64);
  auto ids = make_ids(params, 50, 15);
  const std::vector<NodeId> v_ids(ids.begin(), ids.begin() + 30);
  const std::vector<NodeId> w_ids(ids.begin() + 30, ids.end());
  build_consistent_network(world.overlay, v_ids);
  Rng rng(2);
  join_concurrently(world.overlay, w_ids, v_ids, rng);
  ASSERT_TRUE(world.overlay.all_in_system());

  const NetworkView net = view_of(world.overlay);
  for (int obj = 0; obj < 25; ++obj) {
    const NodeId object_id = random_id(rng, params);
    const auto a = surrogate_route(net, ids[0], object_id);
    const auto b = surrogate_route(net, ids[40], object_id);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->root, b->root);
  }
}

}  // namespace
}  // namespace hcube
