// Reproducibility and realization-variety properties.
//
// 1. The simulation is bit-reproducible: identical seeds produce identical
//    message sequences (the foundation every pinned regression test in this
//    suite stands on).
// 2. Different interleavings realize the SAME C-set tree template
//    differently ("For different sequences of protocol message exchange,
//    different nodes could be filled into each C-set", Section 3.3) — yet
//    every realization is consistent.
#include <gtest/gtest.h>

#include "core/cset_tree.h"
#include "core/trace.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::audit;
using testing::id_of;
using testing::make_ids;

std::vector<TraceRecord> run_traced(std::uint64_t latency_seed,
                                    std::uint64_t workload_seed) {
  const IdParams params{4, 6};
  World world(params, 80, {}, latency_seed);
  auto ids = make_ids(params, 70, 1234);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 35);
  const std::vector<NodeId> w(ids.begin() + 35, ids.end());
  build_consistent_network(world.overlay, v);
  MessageTrace trace(1 << 20);
  trace.attach(world.overlay);
  Rng rng(workload_seed);
  join_concurrently(world.overlay, w, v, rng, /*window_ms=*/200.0);
  HCUBE_CHECK(world.overlay.all_in_system());
  return trace.all();
}

TEST(Determinism, IdenticalSeedsProduceIdenticalMessageSequences) {
  const auto a = run_traced(7, 11);
  const auto b = run_traced(7, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << i;
    EXPECT_EQ(a[i].from, b[i].from) << i;
    EXPECT_EQ(a[i].to, b[i].to) << i;
    EXPECT_EQ(a[i].type, b[i].type) << i;
    EXPECT_EQ(a[i].wire_bytes, b[i].wire_bytes) << i;
  }
}

TEST(Determinism, DifferentLatencySeedsDiverge) {
  const auto a = run_traced(7, 11);
  const auto b = run_traced(8, 11);
  // Same workload, different delivery timings: the traces must differ
  // (identical traces would mean latency had no effect at all).
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].time != b[i].time || a[i].from != b[i].from ||
              a[i].to != b[i].to || a[i].type != b[i].type;
  EXPECT_TRUE(differs);
}

TEST(Determinism, DifferentInterleavingsRealizeTheTemplateDifferently) {
  // The paper's Section 3.3 example under two latency seeds: the template
  // is fixed by (V, W); the realization depends on message order. Seeds 1
  // and 2 (probed) fill C_261 with 00261 and 10261 respectively.
  const IdParams params{8, 5};
  std::vector<NodeId> realized_members;
  for (const std::uint64_t seed : {1u, 2u}) {
    World world(params, 16, {}, seed);
    std::vector<NodeId> v, w;
    for (const char* s : {"72430", "10353", "62332", "13141", "31701"})
      v.push_back(id_of(s, params));
    for (const char* s : {"10261", "47051", "00261"})
      w.push_back(id_of(s, params));
    build_consistent_network(world.overlay, v);
    Rng rng(seed);
    join_concurrently(world.overlay, w, v, rng);
    ASSERT_TRUE(world.overlay.all_in_system());
    ASSERT_TRUE(audit(world.overlay).consistent());

    SuffixTrie v_trie(params);
    for (const auto& id : v) v_trie.insert(id);
    const auto tree =
        CSetTree::realize(view_of(world.overlay), v_trie, Suffix{1}, w);
    EXPECT_TRUE(tree.all_nonempty());
    for (const auto& s : tree.sets()) {
      if (suffix_to_string(s.suffix, params) == "261") {
        ASSERT_EQ(s.members.size(), 1u);
        realized_members.push_back(s.members[0]);
      }
    }
  }
  ASSERT_EQ(realized_members.size(), 2u);
  EXPECT_NE(realized_members[0], realized_members[1])
      << "expected distinct realizations of C_261 across interleavings";
}

TEST(Determinism, PaperScaleD40Soak) {
  // The paper's wide-table configuration (d = 40) end to end at reduced n:
  // exercises 160-bit IDs, 640-entry tables and the log-space analysis
  // path through the whole protocol stack.
  const IdParams params{16, 40};
  World world(params, 900, {}, 99);
  auto ids = make_ids(params, 900, 99);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 700);
  const std::vector<NodeId> w(ids.begin() + 700, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(9);
  join_concurrently(world.overlay, w, v, rng);
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(audit(world.overlay).consistent());
}

}  // namespace
}  // namespace hcube
