// Targeted coverage of the protocol's rarer code paths, plus edge-of-the-
// parameter-space cases and a paper-scale soak.
#include <gtest/gtest.h>

#include "analysis/join_cost.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::audit;
using testing::make_ids;

TEST(ProtocolPaths, SpeNotiPathExercisedAndRare) {
  // Seed 62 of this exact workload drives a joiner through the
  // SpeNotiMsg/SpeNotiRlyMsg path (Figures 10-12): an S-node y sets the
  // flag because the notifier's entry holds a competitor, and the notifier
  // announces y to that competitor. The paper's footnote 8 observes that
  // "SpeNotiMsg is rarely sent" — across the first 100 seeds of this
  // workload we see it on exactly two, reproducing that rarity. (The
  // triggering seed is ordering-sensitive; the dense-index storage refactor
  // changed container iteration orders and moved it from 29 to 62.)
  const IdParams params{4, 6};
  World world(params, 120, {}, 62);
  UniqueIdGenerator gen(params, 6200);
  std::vector<NodeId> v, w;
  for (int i = 0; i < 30; ++i) v.push_back(gen.next());
  for (int i = 0; i < 60; ++i) w.push_back(gen.next());
  build_consistent_network(world.overlay, v);
  Rng rng(62);
  join_concurrently(world.overlay, w, v, rng);

  EXPECT_GT(world.overlay.sent_of(MessageType::kSpeNoti), 0u);
  EXPECT_EQ(world.overlay.sent_of(MessageType::kSpeNoti),
            world.overlay.sent_of(MessageType::kSpeNotiRly));
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(audit(world.overlay).consistent());
}

TEST(ProtocolPaths, JoinWaitDeferralsHappenAndResolve) {
  // Figure 6's "else Q_j := Q_j ∪ {x}" branch: a JoinWaitMsg landing at a
  // T-node is parked until the receiver becomes an S-node (Figure 13 then
  // answers it). Under a concurrent wave this is common; every deferral
  // must still be answered exactly once (JoinWait == JoinWaitRly totals).
  const IdParams params{4, 6};
  World world(params, 120, {}, 5);
  UniqueIdGenerator gen(params, 500);
  std::vector<NodeId> v, w;
  for (int i = 0; i < 30; ++i) v.push_back(gen.next());
  for (int i = 0; i < 60; ++i) w.push_back(gen.next());

  std::uint64_t deferrals = 0;
  world.overlay.on_message = [&](const NodeId&, const NodeId& to,
                                 const MessageBody& body) {
    if (type_of(body) != MessageType::kJoinWait) return;
    const Node* receiver = world.overlay.find(to);
    if (receiver != nullptr && !receiver->is_s_node()) ++deferrals;
  };
  build_consistent_network(world.overlay, v);
  Rng rng(5);
  join_concurrently(world.overlay, w, v, rng);

  EXPECT_GT(deferrals, 0u);
  EXPECT_EQ(world.overlay.sent_of(MessageType::kJoinWait),
            world.overlay.sent_of(MessageType::kJoinWaitRly));
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(audit(world.overlay).consistent());
}

TEST(ProtocolPaths, NegativeJoinWaitChains) {
  // Two joiners with the same notification entry race: the loser receives
  // a negative JoinWaitRlyMsg naming the winner and re-waits on it
  // (Figure 7's negative branch). Force the race with identical-suffix
  // joiners and simultaneous starts.
  const IdParams params{4, 8};
  UniqueIdGenerator gen(params, 7);
  std::vector<NodeId> v;
  while (v.size() < 20) {
    NodeId id = gen.next();
    if (id.digit(0) == 2 && id.digit(1) == 2) continue;  // keep 22* free
    v.push_back(id);
  }
  std::vector<NodeId> w;
  Rng digit_rng(3);
  while (w.size() < 6) {
    std::vector<Digit> digits(params.num_digits);
    digits[0] = digits[1] = 2;
    for (std::size_t i = 2; i < digits.size(); ++i)
      digits[i] = static_cast<Digit>(digit_rng.next_below(4));
    NodeId id(digits, params);
    if (gen.reserve(id)) w.push_back(id);
  }

  World world(params, 32);
  build_consistent_network(world.overlay, v);
  std::uint64_t negatives = 0;
  world.overlay.on_message = [&](const NodeId&, const NodeId&,
                                 const MessageBody& body) {
    if (const auto* rly = std::get_if<JoinWaitRlyMsg>(&body))
      if (!rly->positive) ++negatives;
  };
  Rng rng(9);
  join_concurrently(world.overlay, w, v, rng, /*window_ms=*/0.0);

  EXPECT_GT(negatives, 0u);  // the race actually happened
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(audit(world.overlay).consistent());
}

TEST(ProtocolPaths, CopyChainEndsAtTNode) {
  // Figure 5's "s == T" exit: a joiner's copy chain reaches a table entry
  // holding a T-node, and the JoinWaitMsg goes to that T-node (which parks
  // it in Q_j). Detect via a JoinWaitMsg received by a node in status
  // copying or waiting.
  const IdParams params{2, 8};  // dense: suffix collisions guaranteed
  World world(params, 80, {}, 3);
  auto ids = make_ids(params, 70, 33);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 20);
  const std::vector<NodeId> w(ids.begin() + 20, ids.end());

  bool wait_hit_tnode = false;
  world.overlay.on_message = [&](const NodeId&, const NodeId& to,
                                 const MessageBody& body) {
    if (type_of(body) != MessageType::kJoinWait) return;
    const Node* receiver = world.overlay.find(to);
    if (receiver != nullptr && (receiver->status() == NodeStatus::kCopying ||
                                receiver->status() == NodeStatus::kWaiting ||
                                receiver->status() == NodeStatus::kNotifying))
      wait_hit_tnode = true;
  };
  build_consistent_network(world.overlay, v);
  Rng rng(13);
  join_concurrently(world.overlay, w, v, rng, /*window_ms=*/0.0);
  EXPECT_TRUE(wait_hit_tnode);
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(audit(world.overlay).consistent());
}

TEST(ProtocolPaths, SingleDigitIdSpace) {
  // d = 1: the ID space holds exactly b nodes; every join's notification
  // set is all of V and tables are a single level.
  const IdParams params{16, 1};
  World world(params, 16);
  auto ids = make_ids(params, 16, 3);  // the full space
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 4);
  const std::vector<NodeId> w(ids.begin() + 4, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(1);
  join_concurrently(world.overlay, w, v, rng);
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(audit(world.overlay).consistent());
}

TEST(ProtocolPaths, LargeBase) {
  const IdParams params{64, 3};
  World world(params, 80);
  auto ids = make_ids(params, 80, 9);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 40);
  const std::vector<NodeId> w(ids.begin() + 40, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(2);
  join_concurrently(world.overlay, w, v, rng);
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(audit(world.overlay).consistent());
}

TEST(ProtocolPaths, MisuseIsRejected) {
  const IdParams params{4, 4};
  World world(params, 8);
  auto ids = make_ids(params, 3, 41);
  build_consistent_network(world.overlay, {ids[0], ids[1]});
  // Duplicate membership.
  EXPECT_DEATH(world.overlay.add_node(ids[0]), "duplicate");
  // Joining via itself.
  Node& joiner = world.overlay.add_node(ids[2]);
  EXPECT_DEATH(joiner.start_join(ids[2]), "self");
  // Starting twice.
  joiner.start_join(ids[0]);
  EXPECT_DEATH(joiner.start_join(ids[1]), "already started");
}

TEST(ProtocolPaths, PaperScaleSoak) {
  // The paper's smaller simulation setup end to end: n = 3096 members,
  // m = 1000 concurrent joiners, b = 16, d = 8 (synthetic latencies keep
  // this under a second). Theorems 1-3 all checked.
  const IdParams params{16, 8};
  World world(params, 4200, {}, 2003);
  auto ids = make_ids(params, 4096, 2003);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 3096);
  const std::vector<NodeId> w(ids.begin() + 3096, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(5);
  join_concurrently(world.overlay, w, v, rng, /*window_ms=*/0.0);

  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(check_consistency(view_of(world.overlay)).consistent());
  double total_noti = 0.0;
  for (const NodeId& x : w) {
    const JoinStats& s = world.overlay.at(x).join_stats();
    EXPECT_LE(s.copy_plus_wait(), theorem3_bound(params));
    total_noti += static_cast<double>(s.sent_of(MessageType::kJoinNoti));
  }
  const double avg = total_noti / static_cast<double>(w.size());
  const double bound =
      expected_join_noti_concurrent_bound(params, v.size(), w.size());
  EXPECT_LT(avg, bound);
  EXPECT_GT(avg, 1.0);  // sanity: concurrent joins do real notification work
}

}  // namespace
}  // namespace hcube
