#include "core/trace.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::make_ids;

TEST(MessageTrace, RecordsEveryMessageOfAJoin) {
  const IdParams params{4, 5};
  World world(params, 20);
  auto ids = make_ids(params, 16, 3);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 15);
  build_consistent_network(world.overlay, v);

  MessageTrace trace;
  trace.attach(world.overlay);
  world.overlay.schedule_join(ids[15], v[0], 0.0);
  world.overlay.run_to_quiescence();

  EXPECT_EQ(trace.size(), world.overlay.totals().messages);
  EXPECT_EQ(trace.total_bytes(), world.overlay.totals().bytes);
  EXPECT_EQ(trace.dropped(), 0u);
  // The first record of any join is the CpRstMsg to the gateway.
  const auto records = trace.all();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().type, MessageType::kCpRst);
  EXPECT_EQ(records.front().from, ids[15]);
  EXPECT_EQ(records.front().to, v[0]);
  // Timestamps are non-decreasing (hook fires in simulation order).
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_GE(records[i].time, records[i - 1].time);
}

TEST(MessageTrace, FiltersByNodeAndType) {
  const IdParams params{4, 5};
  World world(params, 20);
  auto ids = make_ids(params, 16, 5);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 15);
  build_consistent_network(world.overlay, v);
  MessageTrace trace;
  trace.attach(world.overlay);
  world.overlay.schedule_join(ids[15], v[2], 0.0);
  world.overlay.run_to_quiescence();

  const auto joiner_records = trace.involving(ids[15]);
  EXPECT_FALSE(joiner_records.empty());
  for (const auto& r : joiner_records)
    EXPECT_TRUE(r.from == ids[15] || r.to == ids[15]);

  const auto cprst = trace.of_type(MessageType::kCpRst);
  EXPECT_EQ(cprst.size(), trace.count_of(MessageType::kCpRst));
  for (const auto& r : cprst) EXPECT_EQ(r.type, MessageType::kCpRst);
}

TEST(MessageTrace, AttachChainsPreviousObserver) {
  // attach() must not silently disconnect an observer a test installed
  // first: both the existing hook and the trace see every message.
  const IdParams params{4, 5};
  World world(params, 20);
  auto ids = make_ids(params, 16, 13);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 15);
  build_consistent_network(world.overlay, v);

  std::uint64_t observed = 0;
  world.overlay.on_message = [&](const NodeId&, const NodeId&,
                                 const MessageBody&) { ++observed; };
  MessageTrace trace;
  trace.attach(world.overlay);

  world.overlay.schedule_join(ids[15], v[0], 0.0);
  world.overlay.run_to_quiescence();

  EXPECT_GT(observed, 0u);
  EXPECT_EQ(observed, world.overlay.totals().messages);
  EXPECT_EQ(trace.size(), world.overlay.totals().messages);
}

TEST(MessageTrace, TwoTracesBothRecord) {
  const IdParams params{4, 5};
  World world(params, 20);
  auto ids = make_ids(params, 16, 17);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 15);
  build_consistent_network(world.overlay, v);

  MessageTrace first, second;
  first.attach(world.overlay);
  second.attach(world.overlay);
  world.overlay.schedule_join(ids[15], v[0], 0.0);
  world.overlay.run_to_quiescence();

  EXPECT_EQ(first.size(), world.overlay.totals().messages);
  EXPECT_EQ(second.size(), world.overlay.totals().messages);
}

TEST(MessageTrace, RingBufferDropsOldest) {
  MessageTrace trace(/*capacity=*/4);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 2, 7);
  for (int i = 0; i < 10; ++i)
    trace.record(static_cast<SimTime>(i), ids[0], ids[1],
                 MessageType::kPing, 46);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.count_of(MessageType::kPing), 10u);  // counts are global
  EXPECT_DOUBLE_EQ(trace.all().front().time, 6.0);     // oldest kept
}

TEST(MessageTrace, ToStringMentionsTypesAndOmissions) {
  MessageTrace trace(/*capacity=*/2);
  const IdParams params{4, 4};
  auto ids = make_ids(params, 2, 9);
  for (int i = 0; i < 5; ++i)
    trace.record(i, ids[0], ids[1], MessageType::kJoinWait, 50);
  const std::string s = trace.to_string(params);
  EXPECT_NE(s.find("JoinWaitMsg"), std::string::npos);
  EXPECT_NE(s.find("omitted"), std::string::npos);
}

TEST(MessageTrace, ClearResets) {
  MessageTrace trace;
  const IdParams params{4, 4};
  auto ids = make_ids(params, 2, 11);
  trace.record(1.0, ids[0], ids[1], MessageType::kPong, 46);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_bytes(), 0u);
  EXPECT_EQ(trace.count_of(MessageType::kPong), 0u);
}

}  // namespace
}  // namespace hcube
