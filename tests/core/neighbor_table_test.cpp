#include "core/neighbor_table.h"

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/shard_context.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::id_of;

const IdParams kQuad5{4, 5};

class NeighborTableTest : public ::testing::Test {
 protected:
  NeighborTableTest() : owner_(id_of("21233", kQuad5)), table_(kQuad5, owner_) {}

  NodeId owner_;
  NeighborTable table_;
};

TEST_F(NeighborTableTest, StartsEmpty) {
  EXPECT_EQ(table_.filled_count(), 0u);
  for (std::uint32_t i = 0; i < 5; ++i)
    for (std::uint32_t j = 0; j < 4; ++j)
      EXPECT_TRUE(table_.is_empty(i, j));
}

TEST_F(NeighborTableTest, SetAndGet) {
  // (1, 0)-entry of 21233 needs suffix "03": 13103 has it.
  const NodeId n = id_of("13103", kQuad5);
  table_.set(1, 0, n, NeighborState::kT);
  ASSERT_FALSE(table_.is_empty(1, 0));
  EXPECT_EQ(*table_.neighbor(1, 0), n);
  EXPECT_EQ(table_.state(1, 0), NeighborState::kT);
  EXPECT_TRUE(table_.holds(1, 0, n));
  EXPECT_FALSE(table_.holds(1, 0, owner_));
  EXPECT_EQ(table_.filled_count(), 1u);
}

TEST_F(NeighborTableTest, SetRejectsWrongSuffix) {
  // (2, 0)-entry needs suffix "033"; 13103 ends in "103".
  EXPECT_DEATH(table_.set(2, 0, id_of("13103", kQuad5), NeighborState::kT),
               "suffix");
}

TEST_F(NeighborTableTest, SetRejectsWrongDigit) {
  // 13103 has digit(1) = 0, so it cannot sit in entry (1, 2).
  EXPECT_DEATH(table_.set(1, 2, id_of("13103", kQuad5), NeighborState::kT),
               "digit");
}

TEST_F(NeighborTableTest, OwnerFitsItsOwnEntries) {
  for (std::uint32_t i = 0; i < 5; ++i)
    table_.set(i, owner_.digit(i), owner_, NeighborState::kS);
  EXPECT_EQ(table_.filled_count(), 5u);
  EXPECT_TRUE(table_.holds(0, 3, owner_));
  EXPECT_TRUE(table_.holds(4, 2, owner_));
}

TEST_F(NeighborTableTest, SetStateRequiresFilledEntry) {
  EXPECT_DEATH(table_.set_state(0, 0, NeighborState::kS), "empty");
  table_.set(0, 0, id_of("00000", kQuad5), NeighborState::kT);
  table_.set_state(0, 0, NeighborState::kS);
  EXPECT_EQ(table_.state(0, 0), NeighborState::kS);
}

TEST_F(NeighborTableTest, OverwriteSameEntryKeepsCount) {
  table_.set(0, 0, id_of("00000", kQuad5), NeighborState::kT);
  table_.set(0, 0, id_of("11110", kQuad5), NeighborState::kS);
  EXPECT_EQ(table_.filled_count(), 1u);
  EXPECT_TRUE(table_.holds(0, 0, id_of("11110", kQuad5)));
}

TEST_F(NeighborTableTest, ForEachFilledVisitsInOrder) {
  table_.set(0, 0, id_of("00000", kQuad5), NeighborState::kT);
  table_.set(1, 0, id_of("13103", kQuad5), NeighborState::kS);
  table_.set(0, 2, id_of("11112", kQuad5), NeighborState::kT);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> visited;
  table_.for_each_filled([&](std::uint32_t i, std::uint32_t j, const NodeId&,
                             NeighborState) { visited.push_back({i, j}); });
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], (std::pair<std::uint32_t, std::uint32_t>{0, 0}));
  EXPECT_EQ(visited[1], (std::pair<std::uint32_t, std::uint32_t>{0, 2}));
  EXPECT_EQ(visited[2], (std::pair<std::uint32_t, std::uint32_t>{1, 0}));
}

TEST_F(NeighborTableTest, SnapshotLevels) {
  table_.set(0, 0, id_of("00000", kQuad5), NeighborState::kT);
  table_.set(1, 0, id_of("13103", kQuad5), NeighborState::kS);
  table_.set(3, 0, id_of("10233", kQuad5), NeighborState::kS);
  EXPECT_EQ(table_.snapshot_full().size(), 3u);
  EXPECT_EQ(table_.snapshot(1, 3).size(), 2u);
  EXPECT_EQ(table_.snapshot(2, 2).size(), 0u);
  const auto snap = table_.snapshot(1, 1);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.entries[0].level, 1);
  EXPECT_EQ(snap.entries[0].digit, 0);
  EXPECT_EQ(snap.entries[0].state, NeighborState::kS);
}

TEST_F(NeighborTableTest, FilledBitvecMatchesEntries) {
  table_.set(0, 1, id_of("00001", kQuad5), NeighborState::kT);
  table_.set(2, 2, id_of("11233", kQuad5), NeighborState::kT);
  const BitVec bits = table_.filled_bitvec();
  EXPECT_EQ(bits.size(), 20u);  // 5 levels * 4 digits
  EXPECT_EQ(bits.popcount(), 2u);
  EXPECT_TRUE(bits.get(0 * 4 + 1));
  EXPECT_TRUE(bits.get(2 * 4 + 2));
}

TEST_F(NeighborTableTest, ReverseNeighbors) {
  const NodeId v = id_of("13103", kQuad5);
  table_.add_reverse_neighbor(v);
  table_.add_reverse_neighbor(v);  // idempotent
  table_.add_reverse_neighbor(owner_);  // self is ignored
  EXPECT_EQ(table_.reverse_neighbors().size(), 1u);
  EXPECT_TRUE(table_.reverse_neighbors().contains(v));
}

TEST_F(NeighborTableTest, DistinctNeighborsExcludesOwner) {
  table_.set(0, 3, owner_, NeighborState::kS);
  table_.set(0, 0, id_of("00000", kQuad5), NeighborState::kT);
  table_.set(1, 0, id_of("13103", kQuad5), NeighborState::kS);
  const auto distinct = table_.distinct_neighbors();
  EXPECT_EQ(distinct.size(), 2u);
}

TEST_F(NeighborTableTest, DistinctNeighborsSecondCallInvalidatesFirstSpan) {
  // The span aliases a thread_local scratch buffer shared by ALL tables:
  // the next call — on any table — rewrites the storage the first span
  // points into. This pins the invalidation contract the header documents
  // and hclint's scratch-no-escape rule enforces at call sites: anything
  // held across a second call must be a copy.
  table_.set(0, 0, id_of("00000", kQuad5), NeighborState::kT);
  table_.set(1, 0, id_of("13103", kQuad5), NeighborState::kS);
  const std::span<const NodeId> first = table_.distinct_neighbors();
  ASSERT_EQ(first.size(), 2u);
  const std::vector<NodeId> copy(first.begin(), first.end());

  // A second table with a single, different neighbor. Its distinct set is
  // no larger than the first, so the scratch vector cannot reallocate and
  // both spans provably alias the same storage.
  const NodeId other_owner = id_of("00321", kQuad5);
  NeighborTable other(kQuad5, other_owner);
  other.set(0, 1, id_of("33331", kQuad5), NeighborState::kT);
  const std::span<const NodeId> second = other.distinct_neighbors();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first.data(), second.data());

  // The first span now shows the second table's data: it is invalid, and
  // only the copy still holds the original set.
  EXPECT_EQ(first.front(), id_of("33331", kQuad5));
  EXPECT_NE(first.front(), copy.front());
  EXPECT_EQ(copy[0], id_of("00000", kQuad5));
  EXPECT_EQ(copy[1], id_of("13103", kQuad5));
}

TEST_F(NeighborTableTest, LaneScopedCallsDoNotClobberOtherLanes) {
  // Sharded-execution regression: at an epoch barrier the DRIVER thread
  // impersonates several lanes back to back (LaneScope), so two lanes'
  // distinct_neighbors() calls interleave on one thread. With a single
  // thread_local buffer, lane 1's call would rewrite the storage behind
  // the span lane 0's repair pass is still iterating — a clobber no purely
  // sequential schedule can produce. The scratch is therefore indexed by
  // lane_scratch_slot(): same-lane calls still invalidate each other
  // (the test above), cross-lane calls never do.
  table_.set(0, 0, id_of("00000", kQuad5), NeighborState::kT);
  table_.set(1, 0, id_of("13103", kQuad5), NeighborState::kS);
  const NodeId other_owner = id_of("00321", kQuad5);
  NeighborTable other(kQuad5, other_owner);
  other.set(0, 1, id_of("33331", kQuad5), NeighborState::kT);

  EventQueue lane0_queue;
  EventQueue lane1_queue;
  std::span<const NodeId> lane0_view;
  {
    LaneScope scope(&lane0_queue, 0);
    lane0_view = table_.distinct_neighbors();
    ASSERT_EQ(lane0_view.size(), 2u);
    {
      // The driver switches to lane 1 and runs another node's protocol
      // code there; its scratch is a different slot.
      LaneScope inner(&lane1_queue, 1);
      const std::span<const NodeId> lane1_view = other.distinct_neighbors();
      ASSERT_EQ(lane1_view.size(), 1u);
      EXPECT_NE(lane0_view.data(), lane1_view.data());
    }
    // Back on lane 0: the span still shows lane 0's data.
    EXPECT_EQ(lane0_view[0], id_of("00000", kQuad5));
    EXPECT_EQ(lane0_view[1], id_of("13103", kQuad5));
    // And the no-lane spare slot is yet another buffer, so legacy callers
    // cannot clobber a lane's scratch either.
  }
  const std::span<const NodeId> legacy_view = other.distinct_neighbors();
  ASSERT_EQ(legacy_view.size(), 1u);
  EXPECT_NE(legacy_view.data(), lane0_view.data());
  EXPECT_EQ(lane0_view[0], id_of("00000", kQuad5));
}

TEST_F(NeighborTableTest, ToStringShowsEntries) {
  table_.set(1, 0, id_of("13103", kQuad5), NeighborState::kS);
  const std::string s = table_.to_string();
  EXPECT_NE(s.find("21233"), std::string::npos);
  EXPECT_NE(s.find("13103"), std::string::npos);
  EXPECT_NE(s.find("/S"), std::string::npos);
}

}  // namespace
}  // namespace hcube
