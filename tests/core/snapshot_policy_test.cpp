// Section 6.2 message-size reductions: both enhancements must preserve
// consistency while shrinking bytes on the wire.
#include <gtest/gtest.h>

#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::audit;
using testing::make_ids;

class SnapshotPolicyTest : public ::testing::TestWithParam<SnapshotPolicy> {};

TEST_P(SnapshotPolicyTest, ConcurrentJoinsStayConsistent) {
  const IdParams params{4, 6};
  ProtocolOptions options;
  options.snapshot_policy = GetParam();
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    World world(params, 120, options, seed);
    auto ids = make_ids(params, 100, seed * 31);
    const std::vector<NodeId> v(ids.begin(), ids.begin() + 50);
    const std::vector<NodeId> w(ids.begin() + 50, ids.end());
    build_consistent_network(world.overlay, v);
    Rng rng(seed);
    join_concurrently(world.overlay, w, v, rng);
    ASSERT_TRUE(world.overlay.all_in_system())
        << "policy " << to_string(GetParam());
    const auto report = audit(world.overlay);
    EXPECT_TRUE(report.consistent())
        << "policy " << to_string(GetParam()) << "\n"
        << report.summary(params);
  }
}

TEST_P(SnapshotPolicyTest, SequentialJoinsStayConsistent) {
  const IdParams params{8, 5};
  ProtocolOptions options;
  options.snapshot_policy = GetParam();
  World world(params, 64, options);
  auto ids = make_ids(params, 50, 17);
  Rng rng(7);
  initialize_network(world.overlay, ids, rng, /*concurrent=*/false);
  EXPECT_TRUE(audit(world.overlay).consistent());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SnapshotPolicyTest,
                         ::testing::Values(SnapshotPolicy::kFullTable,
                                           SnapshotPolicy::kPartialLevels,
                                           SnapshotPolicy::kBitVector),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case SnapshotPolicy::kFullTable:
                               return "FullTable";
                             case SnapshotPolicy::kPartialLevels:
                               return "PartialLevels";
                             case SnapshotPolicy::kBitVector:
                               return "BitVector";
                           }
                           return "Unknown";
                         });

// The §6.2 size reductions and the §2.1 redundant neighbors are orthogonal
// options; every combination must keep concurrent joins consistent.
struct ComboCase {
  SnapshotPolicy policy;
  std::uint32_t backups;
};
class OptionComboTest : public ::testing::TestWithParam<ComboCase> {};

TEST_P(OptionComboTest, ConcurrentJoinsConsistentUnderAnyCombination) {
  const IdParams params{4, 6};
  ProtocolOptions options;
  options.snapshot_policy = GetParam().policy;
  options.backups_per_entry = GetParam().backups;
  World world(params, 100, options, 77);
  auto ids = make_ids(params, 90, 555);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 45);
  const std::vector<NodeId> w(ids.begin() + 45, ids.end());
  build_consistent_network(world.overlay, v, options.backups_per_entry);
  Rng rng(9);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());
  const auto report = audit(world.overlay);
  EXPECT_TRUE(report.consistent()) << report.summary(params);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, OptionComboTest,
    ::testing::Values(ComboCase{SnapshotPolicy::kFullTable, 1},
                      ComboCase{SnapshotPolicy::kFullTable, 3},
                      ComboCase{SnapshotPolicy::kPartialLevels, 2},
                      ComboCase{SnapshotPolicy::kBitVector, 1},
                      ComboCase{SnapshotPolicy::kBitVector, 3}));

std::uint64_t joiner_bytes(const IdParams& params, SnapshotPolicy policy,
                           std::uint64_t seed) {
  ProtocolOptions options;
  options.snapshot_policy = policy;
  World world(params, 120, options, seed);
  auto ids = make_ids(params, 100, 1234);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 60);
  const std::vector<NodeId> w(ids.begin() + 60, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(seed);
  join_concurrently(world.overlay, w, v, rng);
  HCUBE_CHECK(world.overlay.all_in_system());
  HCUBE_CHECK(check_consistency(view_of(world.overlay)).consistent());
  // Network-wide bytes: the bit-vector enhancement saves on *reply* tables
  // (sent by the notified nodes), so count everyone.
  return world.overlay.totals().bytes;
}

TEST(SnapshotPolicyAblation, EnhancementsReduceBytes) {
  // Identical workload (same IDs, gateways, latencies) under the three
  // policies: partial levels must beat full tables, and the bit-vector
  // policy must not exceed partial levels.
  const IdParams params{16, 8};
  const std::uint64_t full =
      joiner_bytes(params, SnapshotPolicy::kFullTable, 5);
  const std::uint64_t partial =
      joiner_bytes(params, SnapshotPolicy::kPartialLevels, 5);
  const std::uint64_t bitvec =
      joiner_bytes(params, SnapshotPolicy::kBitVector, 5);
  EXPECT_LT(partial, full);
  // The bit vector costs bytes in the request but prunes reply tables,
  // which dominate; network-wide it must beat partial levels too.
  EXPECT_LT(bitvec, partial);
}

}  // namespace
}  // namespace hcube
